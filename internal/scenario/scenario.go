// Package scenario generates deterministic large-scale workloads on a
// transport.DESNet: every client is a handler-mode attachment whose
// logic runs inside virtual-clock events, so a seeded run of 100k
// clients is single-threaded, reproducible byte for byte, and costs
// wall-clock seconds-to-minutes instead of the simulated session's
// real length.  Four generators cover the workload shapes the paper's
// adaptation machinery must survive: a flash-crowd join ramp, a
// lecture-hall broadcast, mobility churn with link degradation, and a
// diurnal load curve.
//
// The output is a Result: end-to-end delivery latency quantiles, loss,
// a per-time-bucket curve of both, and a running event hash over the
// network trace that the determinism test (and CI gate) compares
// across runs.
package scenario

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/timeline"
	"adaptiveqos/internal/transport"
)

// Kind names a workload generator.
type Kind string

// The workload generators.
const (
	FlashCrowd  Kind = "flash"   // ramp joins while publishers broadcast
	LectureHall Kind = "lecture" // one speaker, N silent subscribers
	Churn       Kind = "churn"   // join/leave cycling + link degradation
	Diurnal     Kind = "diurnal" // sinusoidal publish rate over the day
)

// Kinds lists every generator.
func Kinds() []Kind { return []Kind{FlashCrowd, LectureHall, Churn, Diurnal} }

// Config parameterizes one scenario run.
type Config struct {
	Kind Kind
	// Clients is the subscriber population (default 1000).
	Clients int
	// Publishers is the broadcasting population (default 1 for
	// lecture, 4 otherwise).
	Publishers int
	// Seed drives both the network model and the workload (0 means 1).
	Seed int64
	// Duration is the simulated session length (default 60s).
	Duration time.Duration
	// Rate is each publisher's steady publish rate in msgs/s (default
	// 2; the diurnal generator modulates around it).
	Rate float64
	// PayloadBytes sizes each published frame (default 256; minimum 16
	// for the embedded timestamp header).
	PayloadBytes int
	// Link is the per-client downlink model (zero = ideal links —
	// usually you want some Delay/Jitter/Loss here).
	Link transport.Link
	// CurveBuckets is the number of time buckets in the latency/loss
	// curves (default 12).
	CurveBuckets int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1000
	}
	if c.Publishers <= 0 {
		if c.Kind == LectureHall {
			c.Publishers = 1
		} else {
			c.Publishers = 4
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Minute
	}
	if c.Rate <= 0 {
		c.Rate = 2
	}
	if c.PayloadBytes < 16 {
		c.PayloadBytes = 256
	}
	if c.CurveBuckets <= 0 {
		c.CurveBuckets = 12
	}
	return c
}

// CurvePoint is one time bucket of the delivery latency / loss curves.
type CurvePoint struct {
	// StartMS/EndMS bound the bucket, in simulated ms from run start.
	StartMS int64 `json:"start_ms"`
	EndMS   int64 `json:"end_ms"`

	Sent      uint64 `json:"sent"`      // copies scheduled toward receivers
	Delivered uint64 `json:"delivered"` // copies that arrived
	Dropped   uint64 `json:"dropped"`   // copies lost on the link

	P50MS float64 `json:"p50_ms"` // delivery latency quantiles
	P99MS float64 `json:"p99_ms"`
	Loss  float64 `json:"loss"` // dropped / (delivered + dropped)
}

// Result is one scenario run's outcome.  Every field except WallMS is
// a pure function of (Config, code): the determinism gate runs the
// same config twice and requires identical JSON with WallMS cleared.
type Result struct {
	Scenario   Kind  `json:"scenario"`
	Clients    int   `json:"clients"`
	Publishers int   `json:"publishers"`
	Seed       int64 `json:"seed"`
	SimMS      int64 `json:"sim_ms"` // simulated duration

	Published uint64 `json:"published"` // frames published
	Sent      uint64 `json:"sent"`      // per-receiver copies attempted
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`

	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMeanMS float64 `json:"latency_mean_ms"`
	Loss          float64 `json:"loss"`

	Curve []CurvePoint `json:"curve"`

	// EventHash is a running FNV-1a hash over the ordered network
	// trace (deliveries and drops, with virtual timestamps) — the
	// cheapest byte-identical fingerprint of the whole run.
	EventHash string `json:"event_hash"`

	// WallMS is the real time the run took; excluded from determinism
	// comparisons.
	WallMS int64 `json:"wall_ms"`
}

// Deterministic returns a copy with the wall-clock field cleared, for
// run-to-run comparison.
func (r Result) Deterministic() Result {
	r.WallMS = 0
	return r
}

// run carries one executing scenario's state.  All mutation happens on
// the driving goroutine (inside virtual-clock events), so plain fields
// suffice.
type run struct {
	cfg     Config
	net     *transport.DESNet
	clk     *clock.Virtual
	rng     *rand.Rand // workload randomness, separate from the net's
	startNS int64
	endNS   int64

	hash uint64 // FNV-1a over the trace

	// Run-local counters and the delivery-latency histogram: the totals
	// for Result, and the metrics the run's timeline windows into the
	// latency/loss curves.
	published metrics.Counter
	sent      metrics.Counter
	delivered metrics.Counter
	dropped   metrics.Counter
	joins     uint64
	leaves    uint64

	overall obs.Histogram
	tl      *timeline.Timeline

	pubs []transport.Conn
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (r *run) hashBytes(b []byte) {
	h := r.hash
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	r.hash = h
}

func (r *run) hashEvent(ev transport.TraceEvent) {
	var buf [18]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(ev.AtNS))
	binary.LittleEndian.PutUint32(buf[8:], uint32(ev.Size))
	buf[12] = byte(ev.Kind)
	if ev.Unicast {
		buf[13] = 1
	}
	binary.LittleEndian.PutUint32(buf[14:], fnv32(ev.From)^fnv32(ev.To))
	r.hashBytes(buf[:])
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// setupTimeline creates the run's curve store and schedules one
// SampleNow event at every bucket boundary.  These events are scheduled
// before any workload event, so at a shared instant the virtual clock
// fires the window close first (lowest sequence number wins) and
// boundary traffic lands in the *next* window — the same bucketing the
// old per-bucket histograms used.  Deliveries at the exact session end
// close after the last window and appear only in the totals.
func (r *run) setupTimeline() {
	window := time.Duration(int64(r.cfg.Duration) / int64(r.cfg.CurveBuckets))
	r.tl = timeline.New(timeline.Config{
		Window:    window,
		Retention: r.cfg.CurveBuckets,
		Clock:     r.clk,
	})
	r.tl.TrackCounter("sim_published", &r.published)
	r.tl.TrackCounter("sim_sent", &r.sent)
	r.tl.TrackCounter("sim_delivered", &r.delivered)
	r.tl.TrackCounter("sim_dropped", &r.dropped)
	r.tl.TrackHistogram("sim_delivery_latency_ns", &r.overall)
	var prevDel, prevDrop uint64
	r.tl.TrackFunc("sim_loss", func() float64 {
		del, drop := r.delivered.Load(), r.dropped.Load()
		dDel, dDrop := del-prevDel, drop-prevDrop
		prevDel, prevDrop = del, drop
		if dDel+dDrop == 0 {
			return 0
		}
		return float64(dDrop) / float64(dDel+dDrop)
	})
	r.tl.TrackFunc("sim_subscribers", func() float64 {
		return float64(r.joins) - float64(r.leaves)
	})
	for i := 1; i <= r.cfg.CurveBuckets; i++ {
		at := time.Duration(int64(i) * int64(r.cfg.Duration) / int64(r.cfg.CurveBuckets))
		r.clk.ScheduleFunc(at, func(time.Time) { r.tl.SampleNow() })
	}
}

// Run executes the scenario to completion and returns its Result.
func Run(cfg Config) (Result, error) {
	res, _, err := RunWithTimeline(cfg)
	return res, err
}

// RunWithTimeline is Run, also returning the run's timeline so callers
// (qossim's -timeline flag) can export the full per-window series set
// beyond the curve baked into the Result.
func RunWithTimeline(cfg Config) (Result, *timeline.Timeline, error) {
	cfg = cfg.withDefaults()
	clk := clock.NewVirtual(time.Time{})
	net := transport.NewDESNet(transport.DESNetConfig{
		Seed:        cfg.Seed,
		DefaultLink: cfg.Link,
		Clock:       clk,
	})
	r := &run{
		cfg:     cfg,
		net:     net,
		clk:     clk,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5eed5eed)),
		startNS: clk.Now().UnixNano(),
		endNS:   clk.Now().Add(cfg.Duration).UnixNano(),
		hash:    fnvOffset,
	}
	// Window-boundary events must be scheduled before any workload event
	// so boundary bucketing is deterministic (see setupTimeline).
	r.setupTimeline()
	net.SetTrace(func(ev transport.TraceEvent) {
		r.hashEvent(ev)
		// Publishers receive each other's multicasts too; only copies
		// bound for subscribers count toward the curves, so Sent,
		// Delivered and Dropped stay mutually consistent.
		if !strings.HasPrefix(ev.To, "sub") {
			return
		}
		switch ev.Kind {
		case transport.TraceDrop, transport.TraceOverflow:
			r.dropped.Inc()
			r.sent.Inc()
		case transport.TraceDeliver:
			r.sent.Inc()
		}
	})

	// Publishers are ordinary handler-mode nodes that ignore inbound
	// traffic (subscribers do not publish, so they receive nothing of
	// their own).
	r.pubs = make([]transport.Conn, cfg.Publishers)
	for i := range r.pubs {
		conn, err := net.AttachHandler(fmt.Sprintf("pub%03d", i), func(transport.Packet) {})
		if err != nil {
			return Result{}, nil, err
		}
		r.pubs[i] = conn
	}

	var joinErr error
	joinClient := func(i int) {
		id := fmt.Sprintf("sub%06d", i)
		_, err := net.AttachHandler(id, r.onDeliver)
		if err != nil && joinErr == nil {
			joinErr = fmt.Errorf("scenario: join %s: %w", id, err)
		}
		r.joins++
	}

	switch cfg.Kind {
	case FlashCrowd:
		r.setupFlash(joinClient)
	case LectureHall:
		r.setupLecture(joinClient)
	case Churn:
		r.setupChurn()
	case Diurnal:
		r.setupDiurnal(joinClient)
	default:
		return Result{}, nil, fmt.Errorf("scenario: unknown kind %q", cfg.Kind)
	}
	if joinErr != nil {
		return Result{}, nil, joinErr
	}

	wallStart := clock.Wall.Now()
	clk.AdvanceTo(time.Unix(0, r.endNS))
	wall := clock.Wall.Since(wallStart)
	net.Close()

	return r.result(wall), r.tl, nil
}

// onDeliver is every subscriber's packet handler: recover the embedded
// virtual send timestamp and record the delivery latency.
func (r *run) onDeliver(p transport.Packet) {
	if len(p.Data) < 16 {
		return
	}
	sentNS := int64(binary.LittleEndian.Uint64(p.Data[8:16]))
	lat := p.At.UnixNano() - sentNS
	r.delivered.Inc()
	r.overall.Observe(lat)
}

// publish sends one frame from publisher p: sequence number and the
// virtual send instant lead the payload.
func (r *run) publish(p transport.Conn, seq uint64) {
	frame := make([]byte, r.cfg.PayloadBytes)
	binary.LittleEndian.PutUint64(frame[0:], seq)
	binary.LittleEndian.PutUint64(frame[8:], uint64(r.clk.Now().UnixNano()))
	if err := p.Multicast(frame); err == nil {
		r.published.Inc()
	}
}

// startPublisher schedules p's periodic publishing.  rate is a
// function of the current instant so generators can modulate it; a
// zero/negative instantaneous rate pauses for one base interval.
func (r *run) startPublisher(p transport.Conn, rate func(atNS int64) float64) {
	base := time.Duration(float64(time.Second) / r.cfg.Rate)
	var seq uint64
	var step func(now time.Time)
	step = func(now time.Time) {
		if now.UnixNano() >= r.endNS {
			return
		}
		rt := rate(now.UnixNano())
		if rt > 0 {
			seq++
			r.publish(p, seq)
			r.clk.ScheduleFunc(time.Duration(float64(time.Second)/rt), step)
		} else {
			r.clk.ScheduleFunc(base, step)
		}
	}
	// Stagger starts so publishers do not fire in lockstep.
	r.clk.ScheduleFunc(time.Duration(r.rng.Int63n(int64(base))), step)
}

func (r *run) steadyRate(int64) float64 { return r.cfg.Rate }

// setupLecture: the whole hall is seated at t=0, the speakers talk at
// a steady rate for the full session.
func (r *run) setupLecture(join func(int)) {
	for i := 0; i < r.cfg.Clients; i++ {
		join(i)
	}
	for _, p := range r.pubs {
		r.startPublisher(p, r.steadyRate)
	}
}

// setupFlash: publishers broadcast from t=0 while the crowd joins in a
// ramp over the first half of the session — the delivery fan-out grows
// under the publishers' feet.
func (r *run) setupFlash(join func(int)) {
	ramp := r.cfg.Duration / 2
	for i := 0; i < r.cfg.Clients; i++ {
		i := i
		at := time.Duration(float64(ramp) * float64(i) / float64(r.cfg.Clients))
		r.clk.ScheduleFunc(at, func(time.Time) { join(i) })
	}
	for _, p := range r.pubs {
		r.startPublisher(p, r.steadyRate)
	}
}

// setupChurn: the population cycles — every client leaves and rejoins
// on its own period — while a mobility process degrades and restores
// random clients' downlinks (delay up, loss up), as SIR shifts would.
func (r *run) setupChurn() {
	for i := 0; i < r.cfg.Clients; i++ {
		r.churnClient(i)
	}
	for _, p := range r.pubs {
		r.startPublisher(p, r.steadyRate)
	}
	// Mobility: each tick degrades one present client's downlink for a
	// while.  Seeded rng keeps the victim sequence reproducible.
	tick := r.cfg.Duration / 64
	var mob func(now time.Time)
	mob = func(now time.Time) {
		if now.UnixNano() >= r.endNS {
			return
		}
		victim := fmt.Sprintf("sub%06d", r.rng.Intn(r.cfg.Clients))
		bad := r.cfg.Link
		bad.Delay += 50 * time.Millisecond
		bad.Loss = math.Min(1, bad.Loss+0.2)
		for _, p := range r.pubs {
			r.net.SetLink(p.ID(), victim, bad)
		}
		heal := victim
		r.clk.ScheduleFunc(4*tick, func(time.Time) {
			for _, p := range r.pubs {
				r.net.SetLink(p.ID(), heal, r.cfg.Link)
			}
		})
		r.clk.ScheduleFunc(tick, mob)
	}
	r.clk.ScheduleFunc(tick, mob)
}

// churnClient gives client i an on/off membership cycle: present for
// onFor, gone for offFor, repeating.  Phases are rng-spread so the
// population breathes instead of stampeding.
func (r *run) churnClient(i int) {
	id := fmt.Sprintf("sub%06d", i)
	onFor := r.cfg.Duration/4 + time.Duration(r.rng.Int63n(int64(r.cfg.Duration/4)))
	offFor := r.cfg.Duration / 8
	var conn transport.Conn
	var cycle func(now time.Time)
	joinNow := func() {
		c, err := r.net.AttachHandler(id, r.onDeliver)
		if err == nil {
			conn = c
			r.joins++
		}
	}
	cycle = func(now time.Time) {
		if now.UnixNano() >= r.endNS {
			return
		}
		if conn != nil {
			conn.Close()
			conn = nil
			r.leaves++
			r.clk.ScheduleFunc(offFor, cycle)
		} else {
			joinNow()
			r.clk.ScheduleFunc(onFor, cycle)
		}
	}
	// Spread initial joins over the first 5% of the session.
	r.clk.ScheduleFunc(time.Duration(r.rng.Int63n(int64(r.cfg.Duration/20)+1)), func(now time.Time) {
		joinNow()
		r.clk.ScheduleFunc(onFor, cycle)
	})
}

// setupDiurnal: full population, publish rate swinging sinusoidally
// between 0.2x and 1.8x the configured rate over the session — a day's
// load compressed into one run.
func (r *run) setupDiurnal(join func(int)) {
	for i := 0; i < r.cfg.Clients; i++ {
		join(i)
	}
	span := float64(r.endNS - r.startNS)
	for _, p := range r.pubs {
		r.startPublisher(p, func(atNS int64) float64 {
			phase := 2 * math.Pi * float64(atNS-r.startNS) / span
			return r.cfg.Rate * (1 + 0.8*math.Sin(phase))
		})
	}
}

func (r *run) result(wall time.Duration) Result {
	snap := r.overall.Snapshot()
	res := Result{
		Scenario:      r.cfg.Kind,
		Clients:       r.cfg.Clients,
		Publishers:    r.cfg.Publishers,
		Seed:          r.cfg.Seed,
		SimMS:         r.cfg.Duration.Milliseconds(),
		Published:     r.published.Load(),
		Sent:          r.sent.Load(),
		Delivered:     r.delivered.Load(),
		Dropped:       r.dropped.Load(),
		LatencyP50MS:  snap.Quantile(0.50) / 1e6,
		LatencyP90MS:  snap.Quantile(0.90) / 1e6,
		LatencyP99MS:  snap.Quantile(0.99) / 1e6,
		LatencyMeanMS: snap.Mean() / 1e6,
		EventHash:     fmt.Sprintf("%016x", r.hash),
		WallMS:        wall.Milliseconds(),
	}
	if total := res.Delivered + res.Dropped; total > 0 {
		res.Loss = float64(res.Dropped) / float64(total)
	}
	res.Curve = r.curve()
	return res
}

// curve materializes the CurvePoints as a view over the run's
// timeline: counter windows supply the per-bucket traffic, histogram
// windows the windowed latency quantiles.
func (r *run) curve() []CurvePoint {
	byName := make(map[string][]timeline.Point)
	for _, sd := range r.tl.Query(timeline.Query{Series: []string{
		"sim_sent", "sim_delivered", "sim_dropped", "sim_delivery_latency_ns",
	}}) {
		byName[sd.Name] = sd.Points
	}
	sent, delivered, dropped := byName["sim_sent"], byName["sim_delivered"], byName["sim_dropped"]
	lat := byName["sim_delivery_latency_ns"]
	curve := make([]CurvePoint, 0, len(sent))
	for i := range sent {
		cp := CurvePoint{
			StartMS:   (sent[i].StartNS - r.startNS) / 1e6,
			EndMS:     (sent[i].EndNS - r.startNS) / 1e6,
			Sent:      uint64(sent[i].Value),
			Delivered: uint64(delivered[i].Value),
			Dropped:   uint64(dropped[i].Value),
			P50MS:     lat[i].P50 / 1e6,
			P99MS:     lat[i].P99 / 1e6,
		}
		if total := cp.Delivered + cp.Dropped; total > 0 {
			cp.Loss = float64(cp.Dropped) / float64(total)
		}
		curve = append(curve, cp)
	}
	return curve
}
