package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"adaptiveqos/internal/transport"
)

func testConfig(kind Kind, clients int, seed int64) Config {
	return Config{
		Kind:     kind,
		Clients:  clients,
		Seed:     seed,
		Duration: 30 * time.Second,
		Rate:     2,
		Link: transport.Link{
			Delay:  20 * time.Millisecond,
			Jitter: 10 * time.Millisecond,
			Loss:   0.01,
		},
	}
}

// TestScenarioDeterminism1k is the CI determinism gate: the same
// seeded 1000-client churn scenario (the generator exercising joins,
// leaves and link mutation on top of delivery) run twice must produce
// byte-identical event logs (EventHash) and metric snapshots.
func TestScenarioDeterminism1k(t *testing.T) {
	cfg := testConfig(Churn, 1000, 42)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventHash != b.EventHash {
		t.Fatalf("event hashes differ across identical runs: %s vs %s", a.EventHash, b.EventHash)
	}
	ja, _ := json.Marshal(a.Deterministic())
	jb, _ := json.Marshal(b.Deterministic())
	if string(ja) != string(jb) {
		t.Fatalf("metric snapshots differ across identical runs:\n%s\n%s", ja, jb)
	}
	if a.Delivered == 0 || a.Published == 0 {
		t.Fatalf("degenerate run: %+v", a.Deterministic())
	}
}

// TestScenarioAllKindsDeterministic repeats the two-run comparison for
// every generator at a smaller population.
func TestScenarioAllKindsDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := testConfig(kind, 200, 7)
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Deterministic(), b.Deterministic()) {
				t.Fatalf("results differ:\n%+v\n%+v", a.Deterministic(), b.Deterministic())
			}
			if a.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

// TestScenarioSeedSensitivity: a different seed must change the event
// stream — otherwise the rng is wired up wrong and "deterministic"
// just means "constant".
func TestScenarioSeedSensitivity(t *testing.T) {
	a, err := Run(testConfig(LectureHall, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(LectureHall, 200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.EventHash == b.EventHash {
		t.Fatal("different seeds produced identical event streams")
	}
}

// TestScenarioShapes sanity-checks each generator's signature
// behaviour rather than exact numbers.
func TestScenarioShapes(t *testing.T) {
	t.Run("flash ramp", func(t *testing.T) {
		res, err := Run(testConfig(FlashCrowd, 400, 3))
		if err != nil {
			t.Fatal(err)
		}
		// The crowd joins over the first half: the last bucket must see
		// far more deliveries than the first.
		first := res.Curve[0].Delivered
		last := res.Curve[len(res.Curve)-1].Delivered
		if last <= first*2 {
			t.Fatalf("no join ramp visible: first bucket %d, last %d", first, last)
		}
	})
	t.Run("diurnal swing", func(t *testing.T) {
		res, err := Run(testConfig(Diurnal, 200, 3))
		if err != nil {
			t.Fatal(err)
		}
		// Rate swings 0.2x..1.8x: peak bucket traffic must clearly
		// exceed trough bucket traffic.
		var min, max uint64 = ^uint64(0), 0
		for _, p := range res.Curve {
			if p.Sent < min {
				min = p.Sent
			}
			if p.Sent > max {
				max = p.Sent
			}
		}
		if max < min*2 {
			t.Fatalf("no diurnal swing visible: min %d, max %d per bucket", min, max)
		}
	})
	t.Run("lecture steady", func(t *testing.T) {
		res, err := Run(testConfig(LectureHall, 200, 3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Publishers != 1 {
			t.Fatalf("lecture hall wants one speaker, got %d", res.Publishers)
		}
		if res.LatencyP50MS < 20 || res.LatencyP99MS > 35 {
			t.Fatalf("latency outside the configured 20ms+[0,10ms] link: p50=%.2f p99=%.2f",
				res.LatencyP50MS, res.LatencyP99MS)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		if _, err := Run(Config{Kind: "bogus"}); err == nil {
			t.Fatal("unknown kind should error")
		}
	})
}
