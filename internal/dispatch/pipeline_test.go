package dispatch

import (
	"errors"
	"testing"

	"adaptiveqos/internal/message"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/transport"
)

func TestPipelineStageOrderAndSkip(t *testing.T) {
	var order []string
	p := NewPipeline(
		func(t *Task) error { order = append(order, "match"); return nil },
		func(t *Task) error { order = append(order, "tier"); t.Tier = 2; return nil },
		func(t *Task) error { order = append(order, "transform"); return nil },
		func(t *Task) error { order = append(order, "transmit"); return nil },
	)
	if err := p.Run(&Task{To: "w1"}); err != nil {
		t.Fatal(err)
	}
	want := []string{"match", "tier", "transform", "transmit"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}

	// A skipping stage halts the pipeline without error.
	order = nil
	p = NewPipeline(
		func(t *Task) error { order = append(order, "a"); return ErrSkip },
		func(t *Task) error { order = append(order, "b"); return nil },
	)
	if err := p.Run(&Task{}); err != nil {
		t.Fatalf("skip surfaced as error: %v", err)
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("skip did not halt: %v", order)
	}

	// A failing stage surfaces its error.
	boom := errors.New("boom")
	p = NewPipeline(func(t *Task) error { return boom })
	if err := p.Run(&Task{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMatchStage(t *testing.T) {
	flats := map[string]selector.Attributes{
		"yes": {"media": selector.S("image")},
		"no":  {"media": selector.S("audio")},
	}
	stage := Match(func(id string) (selector.Attributes, bool) {
		f, ok := flats[id]
		return f, ok
	})
	m := &message.Message{Kind: message.KindEvent, Selector: `media == "image"`}

	task := Task{To: "yes", Msg: m}
	if err := stage(&task); err != nil {
		t.Fatalf("matching client skipped: %v", err)
	}
	if task.Flat == nil {
		t.Fatal("flat profile not threaded onto the task")
	}
	if err := stage(&Task{To: "no", Msg: m}); !errors.Is(err, ErrSkip) {
		t.Fatal("non-matching client not skipped")
	}
	if err := stage(&Task{To: "ghost", Msg: m}); !errors.Is(err, ErrSkip) {
		t.Fatal("unknown client not skipped")
	}
}

// The transmit adapters envelope messages identically for multicast
// and unicast and land them on the right transport path.
func TestTransmitAdapters(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 5})
	defer net.Close()
	a, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Attach("c")
	if err != nil {
		t.Fatal(err)
	}

	var env message.Enveloper
	m := &message.Message{Kind: message.KindEvent, Sender: "a", Seq: 1, Body: []byte("hi")}

	mc := &Multicaster{Env: &env, Conn: a}
	if err := mc.Deliver("", m); err != nil {
		t.Fatal(err)
	}
	for _, conn := range []transport.Conn{b, c} {
		select {
		case pkt := <-conn.Recv():
			if pkt.From != "a" {
				t.Errorf("multicast from %q", pkt.From)
			}
		default:
			// SimNet delivery is asynchronous; poll briefly.
			pkt := <-conn.Recv()
			if pkt.From != "a" {
				t.Errorf("multicast from %q", pkt.From)
			}
		}
	}

	var sent []string
	uc := &Unicaster{Env: &env, Conn: a, OnSend: func(to string) { sent = append(sent, to) }}
	m2 := &message.Message{Kind: message.KindEvent, Sender: "a", Seq: 2, Body: []byte("yo")}
	if err := uc.Deliver("b", m2); err != nil {
		t.Fatal(err)
	}
	if pkt := <-b.Recv(); pkt.From != "a" {
		t.Errorf("unicast from %q", pkt.From)
	}
	if len(sent) != 1 || sent[0] != "b" {
		t.Errorf("OnSend observed %v", sent)
	}
}
