// Package dispatch is the broker's delivery-pipeline layer: a sharded
// worker pool with bounded queues and recorded backpressure, a
// composable per-client pipeline (match → infer-tier → transform →
// transmit), and the transmit adapters that give the wired multicast
// and per-client wireless unicast paths one interface.  It is the
// middle of the three broker layers (registry → dispatch → transmit;
// DESIGN.md §9) and is deliberately ignorant of media formats and
// radio physics: tier inference and modality transforms are injected
// as stages by the layer that owns them.
package dispatch

import (
	"errors"
	"sync"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// ErrQueueFull is reported (and the affected clients skipped) when a
// shard's bounded queue is full: the broker sheds the newest work for
// the overloaded shard rather than stalling the relay loop.  Every
// shed client is counted (CtrDispatchQueueDrops →
// aqos_dispatch_queue_drops) and recorded in the obs trace ring.
var ErrQueueFull = errors.New("dispatch: shard queue full")

var (
	ctrBatches    = metrics.C(metrics.CtrDispatchBatches)
	ctrJobs       = metrics.C(metrics.CtrDispatchJobs)
	ctrQueueDrops = metrics.C(metrics.CtrDispatchQueueDrops)
)

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Name labels the pool in metrics and trace events.
	Name string
	// Workers is the shard count: each shard is one queue drained by
	// one worker goroutine, so work for a given client (which always
	// hashes to the same shard) is executed in submission order.
	// <= 1 runs every batch inline on the caller's goroutine.
	Workers int
	// QueueDepth bounds each shard's queue (default 256).  A full
	// queue sheds work: see ErrQueueFull.
	QueueDepth int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Name == "" {
		c.Name = "dispatch"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// job is one unit of per-client work flowing through a shard queue.
type job struct {
	id  string
	fn  func(id string) error
	b   *batch
	qsp obs.Span // queue-wait span (enqueue → dequeue)
}

// batch tracks one Each call: outstanding jobs and the first error.
type batch struct {
	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
}

func (b *batch) setErr(err error) {
	b.mu.Lock()
	if b.firstErr == nil {
		b.firstErr = err
	}
	b.mu.Unlock()
}

// Pool is a sharded worker pool.  Clients are routed to shards by ID
// hash, so per-client execution order follows submission order even
// across batches; distinct clients proceed in parallel across shards.
// The zero-worker configuration degrades to inline execution with the
// same semantics minus the concurrency.
type Pool struct {
	cfg    PoolConfig
	shards []chan job

	mu     sync.RWMutex // guards shards against Close during Each
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts the pool's workers.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg}
	if cfg.Workers > 1 {
		p.shards = make([]chan job, cfg.Workers)
		for i := range p.shards {
			p.shards[i] = make(chan job, cfg.QueueDepth)
			p.wg.Add(1)
			go p.worker(p.shards[i])
		}
	}
	return p
}

// Close drains the shard queues and stops the workers.  Each calls
// racing with Close fall back to inline execution.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, sh := range p.shards {
		close(sh)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker(q chan job) {
	defer p.wg.Done()
	for j := range q {
		j.qsp.End()
		if err := j.fn(j.id); err != nil {
			j.b.setErr(err)
		}
		j.b.wg.Done()
	}
}

func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Each runs fn once per client ID and waits for completion, returning
// the first error while still attempting every client (one slow or
// failed peer must not starve the rest — the contract the old
// base-station fan-out established).  Work is routed to per-shard
// queues; a full shard queue sheds that client's job with a recorded
// drop and ErrQueueFull folded into the batch error.  msgID threads
// the message's trace identity into queue-wait spans and drop events.
func (p *Pool) Each(msgID uint64, ids []string, fn func(id string) error) error {
	ctrBatches.Inc()
	ctrJobs.Add(uint64(len(ids)))
	if len(ids) == 0 {
		return nil
	}
	// One queue hop per batch (not per client): the flight recorder
	// tracks the message's passage through the pool, the per-client
	// queue-wait latency is the span histogram's job.
	obs.AppendHop(msgID, p.cfg.Name, obs.StageQueue)
	// Single-client batches and worker-less pools run inline: the
	// relay loops process one message at a time, so ordering versus
	// queued work is preserved by Each's completion barrier.
	if len(p.shards) == 0 || len(ids) == 1 {
		var firstErr error
		for _, id := range ids {
			if err := fn(id); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		var firstErr error
		for _, id := range ids {
			if err := fn(id); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var b batch
	b.wg.Add(len(ids))
	mask := uint32(len(p.shards))
	for _, id := range ids {
		sh := p.shards[fnv32a(id)%mask]
		select {
		case sh <- job{id: id, fn: fn, b: &b, qsp: obs.StartStage(msgID, obs.StageQueue)}:
		default:
			b.wg.Done()
			ctrQueueDrops.Inc()
			if obs.Enabled() {
				obs.Drop(msgID, obs.StageQueue,
					"dispatch "+p.cfg.Name+": shard queue full, shedding "+id)
			}
			b.setErr(ErrQueueFull)
		}
	}
	p.mu.RUnlock()
	b.wg.Wait()
	return b.firstErr
}

// SampleQoS feeds per-shard queue depths into the gauge set; the
// signature matches obs.SamplerFunc so the telemetry collector (or a
// broker embedding the pool) can wire it directly.
func (p *Pool) SampleQoS(set func(name string, value float64)) {
	for i, sh := range p.shards {
		set(`dispatch_queue_depth{pool="`+metrics.EscapeLabel(p.cfg.Name)+`",shard="`+shardLabel(i)+`"}`, float64(len(sh)))
	}
}

// shardLabel formats a shard index without fmt (hot-path-adjacent).
func shardLabel(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
