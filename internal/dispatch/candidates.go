package dispatch

import (
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/selector"
)

// Membership is the slice of the registry layer the dispatch path
// needs for candidate enumeration: the full population and the
// selector-matching subset.  *registry.Registry implements it.
type Membership interface {
	// IDs returns every registered client ID.
	IDs() []string
	// MatchIDs returns the IDs of the clients matching sel exactly
	// (index-first when the registry has one, brute-force otherwise).
	MatchIDs(sel *selector.Selector) []string
}

// Candidates returns the client IDs a message's per-client pipelines
// should be offered to.  With useIndex set it enumerates index-first:
// only the clients whose profiles satisfy the message selector are
// returned, so the per-message fan-out cost tracks the matching subset
// instead of the registered population.  Without it (or for a message
// with no selector) it returns the whole population — the pipeline's
// Match stage then pays one evaluation per registered client, the
// pre-index behavior.
//
// Either way the delivered set is identical: Candidates is a pruning
// pre-filter, and the Match stage re-verifies each candidate against
// its live flattened profile (clients may depart or mutate between
// enumeration and delivery).  An unparsable selector returns no
// candidates, mirroring MatchProfile's fail-closed contract.
func Candidates(reg Membership, m *message.Message, useIndex bool) []string {
	if m == nil || m.Selector == "" {
		return reg.IDs()
	}
	if !useIndex {
		return reg.IDs()
	}
	sel, err := m.CompiledSelector()
	if err != nil {
		return nil // fail-closed, like the brute path delivering to no one
	}
	if sel == nil {
		return reg.IDs()
	}
	return reg.MatchIDs(sel)
}
