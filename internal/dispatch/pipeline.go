package dispatch

import (
	"errors"

	"adaptiveqos/internal/message"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/selector"
)

// ErrSkip stops the pipeline for the current client without error: the
// client is simply not a recipient of this message (selector mismatch,
// tier below service, departed mid-delivery).  Pipeline.Run maps it to
// nil so skips never surface as batch failures.
var ErrSkip = errors.New("dispatch: skip client")

// Task is one per-client delivery in flight: the message being
// relayed, the client it is for, and the state the stages accumulate
// on the way to the transmit adapter.  Tier is broker policy expressed
// as an opaque ordinal here (the radio layer owns its meaning); Obj
// carries stage-specific payload (e.g. the media object a transform
// stage degrades) without this package depending on media types.
type Task struct {
	MsgID uint64
	To    string
	Msg   *message.Message
	Flat  selector.Attributes
	Tier  int
	Obj   any
	// Node names the broker executing this pipeline in flight-recorder
	// hop records; empty disables hop recording for the task.
	Node string
}

// Stage is one step of a delivery pipeline.  A stage may mutate the
// task, return ErrSkip to drop the client silently, or return another
// error to fail this client's delivery (reported to the batch, other
// clients still attempted).
type Stage func(*Task) error

// Pipeline chains stages over one Task.  The canonical broker
// pipeline is match → infer-tier → transform → transmit, but callers
// compose whatever subset a path needs.
type Pipeline struct {
	stages []Stage
}

// NewPipeline builds a pipeline from stages, run in order.
func NewPipeline(stages ...Stage) Pipeline {
	return Pipeline{stages: stages}
}

// Run executes the stages until one skips or fails.
func (p Pipeline) Run(t *Task) error {
	for _, s := range p.stages {
		if err := s(t); err != nil {
			if errors.Is(err, ErrSkip) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Match returns the selector-match stage: it resolves the client's
// flattened profile through lookup (the registry layer) and evaluates
// the message selector against it, skipping non-matching clients.
// The span feeds the match-stage latency histogram.
func Match(lookup func(id string) (selector.Attributes, bool)) Stage {
	return func(t *Task) error {
		sp := obs.StartStage(t.MsgID, obs.StageMatch)
		flat, ok := lookup(t.To)
		if !ok {
			sp.End()
			return ErrSkip
		}
		t.Flat = flat
		if t.Msg != nil && !t.Msg.MatchProfile(flat) {
			sp.End()
			return ErrSkip
		}
		sp.End()
		if t.Node != "" {
			obs.AppendHop(t.MsgID, t.Node, obs.StageMatch)
		}
		return nil
	}
}

// Transmit returns the terminal stage: hand the task's message to a
// transmit adapter addressed to the task's client.
func Transmit(d Deliverer) Stage {
	return func(t *Task) error {
		if t.Node != "" {
			obs.AppendHop(t.MsgID, t.Node, obs.StageTransmit)
		}
		return d.Deliver(t.To, t.Msg)
	}
}
