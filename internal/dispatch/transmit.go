package dispatch

import (
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/transport"
)

// Deliverer is the transmit adapter interface: it moves one framework
// message to a destination.  The base station's wired multicast and
// per-client wireless unicast paths, the core client's session sends
// and test doubles all implement it, so pipelines and relay code
// program against one seam regardless of segment.
type Deliverer interface {
	Deliver(to string, m *message.Message) error
}

// DeliverFunc adapts a function to the Deliverer interface.
type DeliverFunc func(to string, m *message.Message) error

// Deliver calls f.
func (f DeliverFunc) Deliver(to string, m *message.Message) error { return f(to, m) }

// Multicaster is the wired-segment transmit adapter: it envelopes the
// message (fragmenting to the MTU, reusing pooled encode buffers) and
// multicasts every datagram to the session.  The destination argument
// is ignored — multicast has no single addressee.
type Multicaster struct {
	Env  *message.Enveloper
	Conn transport.Conn
}

// Deliver envelopes m and multicasts its datagrams.
func (mc *Multicaster) Deliver(_ string, m *message.Message) error {
	datagrams, err := mc.Env.WrapMessage(m)
	if err != nil {
		return err
	}
	for _, d := range datagrams {
		if err := mc.Conn.Multicast(d); err != nil {
			return err
		}
	}
	return nil
}

// Unicaster is the per-client transmit adapter: it envelopes the
// message and unicasts every datagram to the addressed peer.  OnSend,
// when set, observes each delivered message (the base station counts
// downlink unicasts through it).
type Unicaster struct {
	Env    *message.Enveloper
	Conn   transport.Conn
	OnSend func(to string)
}

// Deliver envelopes m and unicasts its datagrams to to.
func (uc *Unicaster) Deliver(to string, m *message.Message) error {
	datagrams, err := uc.Env.WrapMessage(m)
	if err != nil {
		return err
	}
	if uc.OnSend != nil {
		uc.OnSend(to)
	}
	for _, d := range datagrams {
		if err := uc.Conn.Unicast(to, d); err != nil {
			return err
		}
	}
	return nil
}
