package dispatch

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// Each must call fn exactly once per ID for every pool shape, and the
// inline (workers <= 1) and sharded paths must agree on semantics.
func TestEachCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 32} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := NewPool(PoolConfig{Workers: workers})
			defer p.Close()
			ids := make([]string, 200)
			for i := range ids {
				ids[i] = fmt.Sprintf("client-%d", i)
			}
			var mu sync.Mutex
			seen := make(map[string]int)
			if err := p.Each(0, ids, func(id string) error {
				mu.Lock()
				seen[id]++
				mu.Unlock()
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(ids) {
				t.Fatalf("saw %d ids, want %d", len(seen), len(ids))
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("id %s handled %d times", id, n)
				}
			}
		})
	}
}

// First-error-attempt-all: an error from one client must be reported
// without starving the remaining clients.
func TestEachFirstErrorAttemptAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := NewPool(PoolConfig{Workers: workers})
			defer p.Close()
			ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
			boom := errors.New("boom")
			var handled atomic.Int64
			err := p.Each(0, ids, func(id string) error {
				handled.Add(1)
				if id == "c" || id == "f" {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			if handled.Load() != int64(len(ids)) {
				t.Fatalf("handled %d of %d", handled.Load(), len(ids))
			}
		})
	}
}

// Per-client ordering: two sequential batches touching the same client
// must observe their submissions in order (same shard, FIFO queue,
// Each's completion barrier).
func TestEachPerClientOrdering(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 8})
	defer p.Close()
	ids := []string{"w1", "w2", "w3", "w4"}
	var mu sync.Mutex
	got := make(map[string][]int)
	for round := 0; round < 50; round++ {
		r := round
		if err := p.Each(0, ids, func(id string) error {
			mu.Lock()
			got[id] = append(got[id], r)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for id, rounds := range got {
		for i := 1; i < len(rounds); i++ {
			if rounds[i] < rounds[i-1] {
				t.Fatalf("client %s observed rounds out of order: %v", id, rounds)
			}
		}
	}
}

// Backpressure: filling a bounded shard queue sheds the overflow with
// ErrQueueFull, a metrics counter tick (the aqos_dispatch_queue_drops
// exposition series) and a drop event in the obs trace ring.
func TestEachBackpressureDropRecorded(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	drops := metrics.C(metrics.CtrDispatchQueueDrops)
	dropsBefore := drops.Load()

	p := NewPool(PoolConfig{Name: "bp-test", Workers: 2, QueueDepth: 1})
	defer p.Close()

	// All IDs hash to whatever shard they hash to; with one worker per
	// shard held hostage and depth 1, a large enough batch must
	// overflow at least one queue.
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	ids := make([]string, 64)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%d", i)
	}
	var handled atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Each(7, ids, func(id string) error {
			once.Do(started.Done)
			<-release // every worker blocks until the queues overflow
			handled.Add(1)
			return nil
		})
	}()
	started.Wait() // at least one worker is inside fn, queues are filling
	// With every worker parked in fn and depth-1 queues, the enqueue
	// loop must shed; wait for the first recorded drop before letting
	// the workers drain so the overflow is guaranteed to have happened.
	for drops.Load() == dropsBefore {
		runtime.Gosched()
	}
	close(release)
	err := <-errCh
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	dropped := drops.Load() - dropsBefore
	if dropped == 0 {
		t.Fatal("no queue drops counted")
	}
	if got := handled.Load() + int64(dropped); got != int64(len(ids)) {
		t.Fatalf("handled %d + dropped %d != %d submitted", handled.Load(), dropped, len(ids))
	}
	// The trace ring holds the shed clients' drop events at the queue
	// stage, tagged with the batch's message identity.
	var traced int
	for _, ev := range obs.Events(0) {
		if ev.Kind == obs.EventDrop && ev.Stage == obs.StageQueue && ev.MsgID == 7 &&
			strings.Contains(ev.Detail, "bp-test") {
			traced++
		}
	}
	if traced != int(dropped) {
		t.Fatalf("trace ring has %d queue-drop events, counter says %d", traced, dropped)
	}
}

// Close must drain in-flight batches, and Each after Close must fall
// back to inline execution rather than panic.
func TestPoolCloseSafety(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 4})
	var n atomic.Int64
	ids := []string{"a", "b", "c", "d", "e"}
	if err := p.Each(0, ids, func(string) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Each(0, ids, func(string) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2*int64(len(ids)) {
		t.Fatalf("handled %d, want %d", n.Load(), 2*len(ids))
	}
}

// Concurrent batches from many goroutines must stay race-clean and
// fully covered (exercised under -race in CI).
func TestEachConcurrentBatches(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 4, QueueDepth: 1024})
	defer p.Close()
	ids := make([]string, 32)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%d", i)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 25; round++ {
				p.Each(0, ids, func(string) error { total.Add(1); return nil })
			}
		}()
	}
	wg.Wait()
	if total.Load() != 8*25*int64(len(ids)) {
		t.Fatalf("total = %d, want %d", total.Load(), 8*25*len(ids))
	}
}
