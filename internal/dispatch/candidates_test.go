package dispatch

import (
	"sort"
	"testing"

	"adaptiveqos/internal/message"
	"adaptiveqos/internal/selector"
)

// stubMembership records which enumeration path Candidates took.
type stubMembership struct {
	all      []string
	matching []string
	lastSel  *selector.Selector
	idCalls  int
}

func (s *stubMembership) IDs() []string {
	s.idCalls++
	return s.all
}

func (s *stubMembership) MatchIDs(sel *selector.Selector) []string {
	s.lastSel = sel
	return s.matching
}

func TestCandidates(t *testing.T) {
	reg := &stubMembership{
		all:      []string{"w0", "w1", "w2", "w3"},
		matching: []string{"w2"},
	}

	// No message and no selector both mean the whole population.
	if got := Candidates(reg, nil, true); len(got) != 4 {
		t.Errorf("nil message: %v", got)
	}
	if got := Candidates(reg, &message.Message{}, true); len(got) != 4 {
		t.Errorf("empty selector: %v", got)
	}

	// Index off: whole population, regardless of selector.
	m := &message.Message{Selector: `media == "video"`}
	if got := Candidates(reg, m, false); len(got) != 4 {
		t.Errorf("index off: %v", got)
	}
	if reg.lastSel != nil {
		t.Error("index off still called MatchIDs")
	}

	// Index on: only the matching subset, via MatchIDs.
	got := Candidates(reg, m, true)
	sort.Strings(got)
	if len(got) != 1 || got[0] != "w2" {
		t.Errorf("index on: %v", got)
	}
	if reg.lastSel == nil || reg.lastSel.Source() != m.Selector {
		t.Errorf("MatchIDs saw selector %v", reg.lastSel)
	}

	// An unparsable selector is fail-closed: no candidates, matching
	// MatchProfile's behavior of delivering to no one.
	bad := &message.Message{Selector: `media ==`}
	if got := Candidates(reg, bad, true); got != nil {
		t.Errorf("unparsable selector: %v", got)
	}
}
