package hostagent

import (
	"fmt"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/snmp"
)

// RateSampler derives a bit-rate from a cumulative SNMP octet counter
// by differentiating successive polls — how a management station turns
// ifInOctets into bandwidth-in-use.
type RateSampler struct {
	// Client queries the element.
	Client *snmp.Client
	// OID is the counter instance (e.g. OIDIfInOctets(1)).
	OID snmp.OID

	// Clock times the polls (tests and simulations inject one); nil
	// means the wall clock.
	Clock clock.Clock

	started   bool
	lastValue float64
	lastAt    time.Time
}

// SampleBps polls the counter and returns the average rate in bits/s
// since the previous call.  The first call primes the sampler and
// reports ok=false.  A counter that moved backwards (agent restart or
// 32-bit wrap) re-primes rather than reporting a negative rate.
func (r *RateSampler) SampleBps() (bps float64, ok bool, err error) {
	v, err := r.Client.GetNumber(r.OID)
	if err != nil {
		return 0, false, fmt.Errorf("hostagent: rate sample: %w", err)
	}
	now := clock.Or(r.Clock).Now()
	defer func() {
		r.lastValue = v
		r.lastAt = now
		r.started = true
	}()
	if !r.started {
		return 0, false, nil
	}
	dt := now.Sub(r.lastAt).Seconds()
	if dt <= 0 {
		return 0, false, nil
	}
	if v < r.lastValue {
		return 0, false, nil // wrap or restart: re-prime
	}
	return (v - r.lastValue) * 8 / dt, true, nil
}
