// Package hostagent implements the specialized embedded extension
// agent that runs on each monitored host, serviced by instrumentation
// routines, plus the synthetic workload generator that stands in for
// the paper's Windows NT performance counters.
//
// The paper's testbed read CPU load and page faults from live NT
// workstations; this reproduction drives the same SNMP MIB variables
// from configurable schedules (ramps, traces, noise), so the
// experiments sweep exactly the ranges the paper sweeps (page faults
// 30→100, CPU load 30→100 %) while remaining deterministic.
package hostagent

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/snmp"
)

// The private enterprise arc used by the embedded extension agent.
// (1.3.6.1.4.1.54321 — a placeholder enterprise number for the
// reproduction; the paper does not name one.)
var (
	oidEnterprise = snmp.MustOID("1.3.6.1.4.1.54321")

	// OIDCPULoad is the host CPU load in percent (Gauge32).
	OIDCPULoad = oidEnterprise.Append(1, 1)
	// OIDPageFaults is the recent page-fault rate in faults/s (Gauge32).
	OIDPageFaults = oidEnterprise.Append(1, 2)
	// OIDFreeMemory is free memory in KiB (Gauge32).
	OIDFreeMemory = oidEnterprise.Append(1, 3)
	// OIDBandwidth is available network bandwidth in bit/s (Gauge32).
	OIDBandwidth = oidEnterprise.Append(1, 4)
	// OIDLatencyMicros is measured path latency in µs (Gauge32).
	OIDLatencyMicros = oidEnterprise.Append(1, 5)
	// OIDJitterMicros is measured path jitter in µs (Gauge32).
	OIDJitterMicros = oidEnterprise.Append(1, 6)
	// OIDSignalStrength is wireless signal strength in dB ×10 (Integer,
	// may be negative).
	OIDSignalStrength = oidEnterprise.Append(1, 7)

	// OIDSysDescr and OIDSysUpTime are the standard MIB-2 system group
	// objects the agent also answers.
	OIDSysDescr  = snmp.MustOID("1.3.6.1.2.1.1.1")
	OIDSysUpTime = snmp.MustOID("1.3.6.1.2.1.1.3")
)

// Parameter names used by schedules and the framework's state space.
const (
	ParamCPULoad    = "cpu-load"
	ParamPageFaults = "page-faults"
	ParamFreeMem    = "free-memory"
	ParamBandwidth  = "bandwidth"
	ParamLatency    = "latency"
	ParamJitter     = "jitter"
	ParamSignal     = "signal"
)

// instrument maps parameter names to MIB instances.
var instruments = []struct {
	param string
	oid   snmp.OID
	kind  func(float64) snmp.Value
}{
	{ParamCPULoad, OIDCPULoad, gauge},
	{ParamPageFaults, OIDPageFaults, gauge},
	{ParamFreeMem, OIDFreeMemory, gauge},
	{ParamBandwidth, OIDBandwidth, gauge},
	{ParamLatency, OIDLatencyMicros, gauge},
	{ParamJitter, OIDJitterMicros, gauge},
	{ParamSignal, OIDSignalStrength, func(v float64) snmp.Value {
		return snmp.Integer(int64(math.Round(v * 10)))
	}},
}

func gauge(v float64) snmp.Value {
	if v < 0 {
		v = 0
	}
	if v > math.MaxUint32 {
		v = math.MaxUint32
	}
	return snmp.Gauge32(uint32(math.Round(v)))
}

// Schedule produces a parameter value for each workload step.
type Schedule interface {
	// At returns the value at step (0-based).
	At(step int) float64
}

// Constant is a flat schedule.
type Constant float64

// At implements Schedule.
func (c Constant) At(int) float64 { return float64(c) }

// Ramp linearly interpolates From→To over Steps steps, then holds To.
type Ramp struct {
	From, To float64
	Steps    int
}

// At implements Schedule.
func (r Ramp) At(step int) float64 {
	if r.Steps <= 1 || step >= r.Steps-1 {
		return r.To
	}
	if step <= 0 {
		return r.From
	}
	f := float64(step) / float64(r.Steps-1)
	return r.From + (r.To-r.From)*f
}

// Trace replays an explicit value sequence, holding the last value.
type Trace []float64

// At implements Schedule.
func (tr Trace) At(step int) float64 {
	if len(tr) == 0 {
		return 0
	}
	if step >= len(tr) {
		return tr[len(tr)-1]
	}
	if step < 0 {
		return tr[0]
	}
	return tr[step]
}

// Noisy perturbs a base schedule with deterministic uniform noise in
// [-Amplitude, +Amplitude].
type Noisy struct {
	Base      Schedule
	Amplitude float64
	Seed      int64
}

// At implements Schedule.
func (n Noisy) At(step int) float64 {
	r := rand.New(rand.NewSource(n.Seed + int64(step)))
	return n.Base.At(step) + (2*r.Float64()-1)*n.Amplitude
}

// Sawtooth cycles From→To over Period steps, repeating.
type Sawtooth struct {
	From, To float64
	Period   int
}

// At implements Schedule.
func (s Sawtooth) At(step int) float64 {
	if s.Period <= 1 {
		return s.To
	}
	pos := step % s.Period
	f := float64(pos) / float64(s.Period-1)
	return s.From + (s.To-s.From)*f
}

// Host is a simulated monitored host: a set of named parameters driven
// by schedules, exposed through SNMP instrumentation routines.  It is
// safe for concurrent use (the SNMP agent reads while the experiment
// driver steps the workload).
type Host struct {
	Name string

	mu        sync.RWMutex
	step      int
	ticks     uint32
	values    map[string]float64
	schedules map[string]Schedule
}

// NewHost creates a host with every parameter at zero.
func NewHost(name string) *Host {
	return &Host{
		Name:      name,
		values:    make(map[string]float64),
		schedules: make(map[string]Schedule),
	}
}

// SetSchedule attaches a schedule to a parameter and applies its step-0
// value immediately.
func (h *Host) SetSchedule(param string, s Schedule) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.schedules[param] = s
	h.values[param] = s.At(h.step)
}

// Set forces a parameter to a fixed value (clearing any schedule).
func (h *Host) Set(param string, v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.schedules, param)
	h.values[param] = v
}

// Get returns the current value of a parameter.
func (h *Host) Get(param string) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.values[param]
}

// SampleQoS feeds every current host parameter into the QoS gauge
// set (the system-state side of the telemetry the contract adapts
// to).  The signature matches obs.SamplerFunc so the telemetry
// collector can register the host directly.
func (h *Host) SampleQoS(set func(name string, value float64)) {
	h.mu.RLock()
	params := make(map[string]float64, len(h.values))
	for param, v := range h.values {
		params[param] = v
	}
	h.mu.RUnlock()
	for param, v := range params {
		set(`host_param{host="`+metrics.EscapeLabel(h.Name)+`",param="`+metrics.EscapeLabel(param)+`"}`, v)
	}
}

// Step advances the workload one step, re-evaluating every schedule.
// It returns the new step index.
func (h *Host) Step() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.step++
	h.ticks += 100 // pretend each step is one second of uptime
	for param, s := range h.schedules {
		h.values[param] = s.At(h.step)
	}
	return h.step
}

// StepN advances n steps.
func (h *Host) StepN(n int) {
	for i := 0; i < n; i++ {
		h.Step()
	}
}

// CurrentStep returns the current step index.
func (h *Host) CurrentStep() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.step
}

// NewAgent builds an SNMP agent whose MIB is instrumented from the
// host's parameters — the embedded extension agent.
func NewAgent(h *Host) *snmp.Agent {
	mib := snmp.NewMIB()
	register := func(oid snmp.OID, get func() snmp.Value) {
		if err := mib.RegisterScalar(oid, get); err != nil {
			// Registration of the static instrument table cannot fail
			// unless the table itself is broken; make that loud.
			panic(fmt.Sprintf("hostagent: %v", err))
		}
	}
	register(OIDSysDescr, func() snmp.Value {
		return snmp.String8("adaptiveqos simulated host " + h.Name)
	})
	register(OIDSysUpTime, func() snmp.Value {
		h.mu.RLock()
		defer h.mu.RUnlock()
		return snmp.TimeTicks(h.ticks)
	})
	for _, inst := range instruments {
		inst := inst
		register(inst.oid, func() snmp.Value {
			return inst.kind(h.Get(inst.param))
		})
	}
	return snmp.NewAgent(mib)
}

// Monitor polls a host's agent through an SNMP client and exposes the
// sampled parameters as plain numbers — the manager-side half of the
// network state interface.
type Monitor struct {
	Client *snmp.Client
}

// Sample fetches the named parameters in one GET.  Unknown names are
// an error; the caller controls the parameter set.
func (m *Monitor) Sample(params ...string) (map[string]float64, error) {
	oids := make([]snmp.OID, len(params))
	for i, p := range params {
		oid, ok := paramOID(p)
		if !ok {
			return nil, fmt.Errorf("hostagent: unknown parameter %q", p)
		}
		oids[i] = oid.Append(0)
	}
	vbs, err := m.Client.Get(oids...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(params))
	for i, vb := range vbs {
		if vb.Value.IsException() {
			return nil, fmt.Errorf("hostagent: %s: %s", params[i], vb.Value.Type)
		}
		n, ok := vb.Value.Number()
		if !ok {
			return nil, fmt.Errorf("hostagent: %s has non-numeric value", params[i])
		}
		if params[i] == ParamSignal {
			n /= 10 // stored as dB ×10
		}
		out[params[i]] = n
	}
	return out, nil
}

func paramOID(p string) (snmp.OID, bool) {
	for _, inst := range instruments {
		if inst.param == p {
			return inst.oid, true
		}
	}
	return nil, false
}
