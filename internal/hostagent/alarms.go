package hostagent

import (
	"fmt"
	"sync"

	"adaptiveqos/internal/snmp"
)

// ParamForOID maps an instrument OID (with or without the trailing .0
// instance arc) back to its parameter name — the inverse of the MIB
// registration, used by trap receivers.
func ParamForOID(oid snmp.OID) (string, bool) {
	trimmed := oid
	if n := len(oid); n > 0 && oid[n-1] == 0 {
		trimmed = oid[:n-1]
	}
	for _, inst := range instruments {
		if inst.oid.Equal(trimmed) {
			return inst.param, true
		}
	}
	return "", false
}

// Alarm is one threshold watch on a host parameter.
type Alarm struct {
	// Param is the watched parameter name.
	Param string
	// Level is the threshold.
	Level float64
	// Rising fires when the value crosses upward through Level;
	// otherwise it fires on a downward crossing.
	Rising bool
}

// Alarms evaluates threshold alarms against a host and pushes SNMPv2
// traps through a Notifier when a crossing occurs — the push half of
// the instrumentation story, complementing the manager's polling.
// Alarms are edge-triggered: a trap fires on the crossing, not on
// every sample beyond the threshold.
type Alarms struct {
	host     *Host
	notifier *snmp.Notifier

	mu     sync.Mutex
	alarms []Alarm
	armed  []bool // true when the alarm may fire on its next crossing
}

// NewAlarms creates an alarm evaluator pushing traps via notifier.
func NewAlarms(host *Host, notifier *snmp.Notifier) *Alarms {
	return &Alarms{host: host, notifier: notifier}
}

// Add installs an alarm.  The alarm arms against the current value:
// if the value is already beyond the threshold no trap fires until the
// value returns and crosses again.
func (a *Alarms) Add(alarm Alarm) error {
	if _, ok := paramOID(alarm.Param); !ok {
		return fmt.Errorf("hostagent: unknown alarm parameter %q", alarm.Param)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.host.Get(alarm.Param)
	a.alarms = append(a.alarms, alarm)
	a.armed = append(a.armed, !beyond(alarm, cur))
	return nil
}

func beyond(al Alarm, v float64) bool {
	if al.Rising {
		return v >= al.Level
	}
	return v <= al.Level
}

// Check evaluates every alarm against the host's current values and
// fires traps for new crossings.  It returns the number of traps sent.
func (a *Alarms) Check() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fired := 0
	for i, al := range a.alarms {
		v := a.host.Get(al.Param)
		over := beyond(al, v)
		switch {
		case over && a.armed[i]:
			a.armed[i] = false
			oid, _ := paramOID(al.Param)
			vbs := []snmp.VarBind{{OID: oid.Append(0), Value: snmp.Gauge32(uint32(clamp32(v)))}}
			if err := a.notifier.Notify(vbs); err != nil {
				return fired, err
			}
			fired++
		case !over && !a.armed[i]:
			a.armed[i] = true // re-arm once the value retreats
		}
	}
	return fired, nil
}

func clamp32(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 4294967295 {
		return 4294967295
	}
	return v
}
