package hostagent

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/transport"
)

func TestElementAgentServesIfTable(t *testing.T) {
	var inOctets atomic.Uint64
	provider := func() []IfEntry {
		return []IfEntry{
			{Index: 1, Descr: "uplink", SpeedBps: 100_000_000, InOctets: inOctets.Load()},
			{Index: 2, Descr: "lan", SpeedBps: 1_000_000_000, OutOctets: 777},
		}
	}
	agent, err := NewElementAgent("switch-1", provider)
	if err != nil {
		t.Fatal(err)
	}
	client := snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "public")

	n, err := client.GetNumber(OIDIfNumber.Append(0))
	if err != nil || n != 2 {
		t.Errorf("ifNumber = %g, %v", n, err)
	}

	// Live counters: the provider's state shows through.
	inOctets.Store(1234)
	v, err := client.GetNumber(OIDIfInOctets(1))
	if err != nil || v != 1234 {
		t.Errorf("ifInOctets.1 = %g, %v", v, err)
	}
	inOctets.Store(99_999)
	v, _ = client.GetNumber(OIDIfInOctets(1))
	if v != 99_999 {
		t.Errorf("counter did not advance: %g", v)
	}

	d, err := client.GetOne(OIDIfDescr(2))
	if err != nil || string(d.Bytes) != "lan" {
		t.Errorf("ifDescr.2 = %v, %v", d, err)
	}
	v, _ = client.GetNumber(OIDIfSpeed(1))
	if v != 100_000_000 {
		t.Errorf("ifSpeed.1 = %g", v)
	}
	v, _ = client.GetNumber(OIDIfOutOctets(2))
	if v != 777 {
		t.Errorf("ifOutOctets.2 = %g", v)
	}

	// Walking the interfaces subtree visits every registered instance:
	// 1 ifNumber + 6 columns × 2 rows.
	var walked []string
	if err := client.Walk(snmp.MustOID("1.3.6.1.2.1.2"), func(vb snmp.VarBind) bool {
		walked = append(walked, vb.OID.String())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(walked) != 1+6*2 {
		t.Errorf("walk visited %d instances: %v", len(walked), walked)
	}

	// Counter saturation at 2^32-1.
	inOctets.Store(1 << 40)
	v, _ = client.GetNumber(OIDIfInOctets(1))
	if v != 4294967295 {
		t.Errorf("saturated counter = %g", v)
	}

	if _, err := NewElementAgent("empty", func() []IfEntry { return nil }); err == nil {
		t.Error("element with no interfaces accepted")
	}
}

// TestElementAgentOverSimNet wires the element agent to live SimNet
// statistics: the management station observes the bytes the simulated
// network actually carried.
func TestElementAgentOverSimNet(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 81})
	defer net.Close()
	a, _ := net.Attach("alice")
	net.Attach("bob")

	provider := func() []IfEntry {
		sa := net.Stats("alice")
		sb := net.Stats("bob")
		return []IfEntry{
			{Index: 1, Descr: "node:alice", SpeedBps: 10_000_000,
				InOctets: sa.Bytes, OutOctets: uint64(sa.Sent), InErrors: sa.Dropped},
			{Index: 2, Descr: "node:bob", SpeedBps: 10_000_000,
				InOctets: sb.Bytes, OutOctets: uint64(sb.Sent), InErrors: sb.Dropped},
		}
	}
	agent, err := NewElementAgent("simnet", provider)
	if err != nil {
		t.Fatal(err)
	}
	client := snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "")

	before, _ := client.GetNumber(OIDIfInOctets(2))
	payload := make([]byte, 500)
	for i := 0; i < 4; i++ {
		if err := a.Multicast(payload); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	after, err := client.GetNumber(OIDIfInOctets(2))
	if err != nil {
		t.Fatal(err)
	}
	if after-before != 2000 {
		t.Errorf("bob's ifInOctets moved %g, want 2000", after-before)
	}

	// sysDescr names the element.
	d, _ := client.GetOne(OIDSysDescr.Append(0))
	if !strings.Contains(string(d.Bytes), "simnet") {
		t.Errorf("sysDescr = %q", d.Bytes)
	}
}
