package hostagent

import (
	"testing"

	"adaptiveqos/internal/snmp"
)

type captureSink struct{ frames [][]byte }

func (s *captureSink) Trap(frame []byte) { s.frames = append(s.frames, frame) }

func TestParamForOID(t *testing.T) {
	if p, ok := ParamForOID(OIDCPULoad); !ok || p != ParamCPULoad {
		t.Errorf("bare OID: %q %v", p, ok)
	}
	if p, ok := ParamForOID(OIDCPULoad.Append(0)); !ok || p != ParamCPULoad {
		t.Errorf("instanced OID: %q %v", p, ok)
	}
	if _, ok := ParamForOID(snmp.MustOID("1.3.6.1.2.1.1.1.0")); ok {
		t.Error("sysDescr should not map to a parameter")
	}
}

func TestAlarmsEdgeTriggered(t *testing.T) {
	host := NewHost("h")
	host.Set(ParamCPULoad, 50)
	sink := &captureSink{}
	notifier := snmp.NewNotifier("traps")
	notifier.AddSink(sink)
	alarms := NewAlarms(host, notifier)

	if err := alarms.Add(Alarm{Param: ParamCPULoad, Level: 90, Rising: true}); err != nil {
		t.Fatal(err)
	}
	if err := alarms.Add(Alarm{Param: "bogus", Level: 1, Rising: true}); err == nil {
		t.Error("unknown parameter accepted")
	}

	// Below threshold: nothing fires.
	if n, err := alarms.Check(); err != nil || n != 0 {
		t.Fatalf("below threshold: %d, %v", n, err)
	}

	// Crossing fires exactly once.
	host.Set(ParamCPULoad, 95)
	if n, _ := alarms.Check(); n != 1 {
		t.Fatalf("crossing fired %d traps", n)
	}
	if n, _ := alarms.Check(); n != 0 {
		t.Fatal("repeated check re-fired without re-arming")
	}
	// Retreat re-arms, next crossing fires again.
	host.Set(ParamCPULoad, 40)
	alarms.Check()
	host.Set(ParamCPULoad, 99)
	if n, _ := alarms.Check(); n != 1 {
		t.Fatal("re-armed alarm did not fire")
	}

	// The trap carries the instrument OID and value.
	msg, err := snmp.DecodeMessage(sink.frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if msg.PDU.Type != snmp.TrapV2 {
		t.Errorf("trap type: %v", msg.PDU.Type)
	}
	param, ok := ParamForOID(msg.PDU.VarBinds[0].OID)
	if !ok || param != ParamCPULoad {
		t.Errorf("trap OID: %v", msg.PDU.VarBinds[0].OID)
	}
	if msg.PDU.VarBinds[0].Value.Uint != 95 {
		t.Errorf("trap value: %v", msg.PDU.VarBinds[0].Value)
	}
}

func TestAlarmsArmAgainstCurrentValue(t *testing.T) {
	host := NewHost("h")
	host.Set(ParamPageFaults, 150) // already over
	notifier := snmp.NewNotifier("t")
	sink := &captureSink{}
	notifier.AddSink(sink)
	alarms := NewAlarms(host, notifier)
	alarms.Add(Alarm{Param: ParamPageFaults, Level: 100, Rising: true})

	if n, _ := alarms.Check(); n != 0 {
		t.Fatal("pre-existing condition fired a trap")
	}
	host.Set(ParamPageFaults, 50)
	alarms.Check() // re-arm
	host.Set(ParamPageFaults, 120)
	if n, _ := alarms.Check(); n != 1 {
		t.Fatal("crossing after re-arm did not fire")
	}
}

func TestFallingAlarm(t *testing.T) {
	host := NewHost("h")
	host.Set(ParamBandwidth, 1e6)
	notifier := snmp.NewNotifier("t")
	sink := &captureSink{}
	notifier.AddSink(sink)
	alarms := NewAlarms(host, notifier)
	alarms.Add(Alarm{Param: ParamBandwidth, Level: 64_000, Rising: false})

	host.Set(ParamBandwidth, 32_000)
	if n, _ := alarms.Check(); n != 1 {
		t.Fatal("falling crossing did not fire")
	}
}
