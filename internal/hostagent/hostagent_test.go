package hostagent

import (
	"math"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/snmp"
)

func TestSchedules(t *testing.T) {
	if Constant(42).At(0) != 42 || Constant(42).At(100) != 42 {
		t.Error("Constant")
	}

	r := Ramp{From: 30, To: 100, Steps: 8}
	if r.At(0) != 30 {
		t.Errorf("ramp start = %g", r.At(0))
	}
	if r.At(7) != 100 || r.At(100) != 100 {
		t.Errorf("ramp end = %g / %g", r.At(7), r.At(100))
	}
	mid := r.At(3)
	if mid <= 30 || mid >= 100 {
		t.Errorf("ramp mid = %g", mid)
	}
	for s := 1; s < 8; s++ {
		if r.At(s) < r.At(s-1) {
			t.Errorf("ramp not monotone at %d", s)
		}
	}
	if (Ramp{From: 1, To: 2, Steps: 1}).At(0) != 2 {
		t.Error("degenerate ramp should hold To")
	}

	tr := Trace{10, 20, 30}
	if tr.At(-1) != 10 || tr.At(0) != 10 || tr.At(2) != 30 || tr.At(99) != 30 {
		t.Error("Trace")
	}
	if (Trace{}).At(5) != 0 {
		t.Error("empty Trace")
	}

	n := Noisy{Base: Constant(50), Amplitude: 5, Seed: 7}
	for s := 0; s < 50; s++ {
		v := n.At(s)
		if v < 45 || v > 55 {
			t.Errorf("noisy out of band at %d: %g", s, v)
		}
		if n.At(s) != v {
			t.Error("Noisy must be deterministic per step")
		}
	}

	sw := Sawtooth{From: 0, To: 10, Period: 5}
	if sw.At(0) != 0 || sw.At(4) != 10 || sw.At(5) != 0 {
		t.Errorf("sawtooth: %g %g %g", sw.At(0), sw.At(4), sw.At(5))
	}
	if (Sawtooth{From: 1, To: 9, Period: 1}).At(3) != 9 {
		t.Error("degenerate sawtooth")
	}
}

func TestHostStepAndSchedules(t *testing.T) {
	h := NewHost("wired-1")
	h.SetSchedule(ParamPageFaults, Ramp{From: 30, To: 100, Steps: 5})
	h.SetSchedule(ParamCPULoad, Constant(40))
	h.Set(ParamBandwidth, 1e6)

	if got := h.Get(ParamPageFaults); got != 30 {
		t.Errorf("step-0 page faults = %g", got)
	}
	h.Step()
	if h.CurrentStep() != 1 {
		t.Error("step index")
	}
	if got := h.Get(ParamPageFaults); got <= 30 {
		t.Errorf("page faults after step = %g", got)
	}
	if h.Get(ParamCPULoad) != 40 {
		t.Error("constant schedule changed")
	}
	if h.Get(ParamBandwidth) != 1e6 {
		t.Error("fixed value changed")
	}
	h.StepN(10)
	if got := h.Get(ParamPageFaults); got != 100 {
		t.Errorf("page faults at end = %g", got)
	}
	// Set clears a schedule.
	h.Set(ParamPageFaults, 55)
	h.Step()
	if h.Get(ParamPageFaults) != 55 {
		t.Error("Set did not clear schedule")
	}
}

func TestAgentServesInstrumentation(t *testing.T) {
	h := NewHost("h1")
	h.Set(ParamCPULoad, 72.4)
	h.Set(ParamPageFaults, 88)
	h.Set(ParamSignal, -7.5)
	agent := NewAgent(h)
	client := snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "public")

	v, err := client.GetNumber(OIDCPULoad.Append(0))
	if err != nil || v != 72 { // gauge rounds
		t.Errorf("cpu = %g, %v", v, err)
	}
	v, err = client.GetNumber(OIDPageFaults.Append(0))
	if err != nil || v != 88 {
		t.Errorf("page faults = %g, %v", v, err)
	}
	// Signal is Integer dB ×10, may be negative.
	v, err = client.GetNumber(OIDSignalStrength.Append(0))
	if err != nil || v != -75 {
		t.Errorf("signal = %g, %v", v, err)
	}

	// sysDescr/sysUpTime respond.
	sd, err := client.GetOne(OIDSysDescr.Append(0))
	if err != nil || len(sd.Bytes) == 0 {
		t.Errorf("sysDescr: %v %v", sd, err)
	}
	h.Step()
	up, err := client.GetOne(OIDSysUpTime.Append(0))
	if err != nil || up.Uint != 100 {
		t.Errorf("sysUpTime: %v %v", up, err)
	}

	// A full walk covers the registered instruments + 2 system objects.
	var count int
	if err := client.Walk(snmp.MustOID("1.3.6.1"), func(snmp.VarBind) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(instruments)+2 {
		t.Errorf("walk visited %d, want %d", count, len(instruments)+2)
	}
}

func TestGaugeClamping(t *testing.T) {
	h := NewHost("h")
	h.Set(ParamCPULoad, -5)
	h.Set(ParamBandwidth, 1e12)
	agent := NewAgent(h)
	client := snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "")

	v, err := client.GetNumber(OIDCPULoad.Append(0))
	if err != nil || v != 0 {
		t.Errorf("negative gauge = %g", v)
	}
	v, err = client.GetNumber(OIDBandwidth.Append(0))
	if err != nil || v != math.MaxUint32 {
		t.Errorf("overflow gauge = %g", v)
	}
}

func TestMonitorSample(t *testing.T) {
	h := NewHost("h")
	h.Set(ParamCPULoad, 60)
	h.Set(ParamPageFaults, 45)
	h.Set(ParamSignal, -3.2)
	m := &Monitor{Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: NewAgent(h)}, snmp.V2c, "")}

	got, err := m.Sample(ParamCPULoad, ParamPageFaults, ParamSignal)
	if err != nil {
		t.Fatal(err)
	}
	if got[ParamCPULoad] != 60 || got[ParamPageFaults] != 45 {
		t.Errorf("sample: %v", got)
	}
	if got[ParamSignal] != -3.2 {
		t.Errorf("signal rescale: %g", got[ParamSignal])
	}

	if _, err := m.Sample("no-such-param"); err == nil {
		t.Error("unknown parameter should fail")
	}
}

// TestQuickRampMonotone: ramps are monotone between their endpoints
// for arbitrary parameters.
func TestQuickRampMonotone(t *testing.T) {
	f := func(from, to float64, steps int) bool {
		if math.IsNaN(from) || math.IsNaN(to) || math.IsInf(from, 0) || math.IsInf(to, 0) {
			return true
		}
		// Constrain to the schedule's realistic domain (loads, rates,
		// byte counts); astronomically large magnitudes overflow the
		// interpolation arithmetic and are not meaningful workloads.
		from = math.Mod(from, 1e9)
		to = math.Mod(to, 1e9)
		steps = steps%100 + 2
		if steps < 2 {
			steps = 2
		}
		r := Ramp{From: from, To: to, Steps: steps}
		up := to >= from
		prev := r.At(0)
		if prev != from {
			return false
		}
		for s := 1; s < steps; s++ {
			cur := r.At(s)
			if up && cur < prev-1e-9 {
				return false
			}
			if !up && cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return r.At(steps-1) == to
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
