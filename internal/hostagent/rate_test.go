package hostagent

import (
	"sync/atomic"
	"testing"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/snmp"
)

func TestRateSampler(t *testing.T) {
	var octets atomic.Uint64
	agent, err := NewElementAgent("e", func() []IfEntry {
		return []IfEntry{{Index: 1, Descr: "if", SpeedBps: 1e6, InOctets: octets.Load()}}
	})
	if err != nil {
		t.Fatal(err)
	}
	client := snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "")

	vc := clock.NewVirtual(time.Unix(1000, 0))
	s := &RateSampler{
		Client: client,
		OID:    OIDIfInOctets(1),
		Clock:  vc,
	}

	// First call primes.
	if _, ok, err := s.SampleBps(); err != nil || ok {
		t.Fatalf("prime: ok=%v err=%v", ok, err)
	}

	// 1000 bytes over 2 seconds = 4000 bit/s.
	octets.Add(1000)
	vc.Advance(2 * time.Second)
	bps, ok, err := s.SampleBps()
	if err != nil || !ok {
		t.Fatalf("sample: ok=%v err=%v", ok, err)
	}
	if bps != 4000 {
		t.Errorf("bps = %g, want 4000", bps)
	}

	// Zero elapsed time: not a valid sample.
	if _, ok, _ := s.SampleBps(); ok {
		t.Error("zero-dt sample reported ok")
	}

	// Counter restart (moves backwards): re-prime, no negative rate.
	octets.Store(10)
	vc.Advance(time.Second)
	if _, ok, _ := s.SampleBps(); ok {
		t.Error("backwards counter reported ok")
	}
	octets.Store(510) // 500 bytes over 1s = 4000 bps again
	vc.Advance(time.Second)
	bps, ok, _ = s.SampleBps()
	if !ok || bps != 4000 {
		t.Errorf("post-restart bps = %g ok=%v", bps, ok)
	}

	// Transport errors surface.
	bad := &RateSampler{
		Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent, Drop: func() bool { return true }}, snmp.V2c, ""),
		OID:    OIDIfInOctets(1),
	}
	if _, _, err := bad.SampleBps(); err == nil {
		t.Error("dropped sample should error")
	}
}
