package hostagent

import (
	"fmt"

	"adaptiveqos/internal/snmp"
)

// Network elements (routers, switches) come with standard agents: the
// management station queries their interface table for bandwidth and
// traffic counters.  ElementAgent serves a MIB-2-style interfaces
// group whose counters are read live from a provider function, so a
// simulated switch can expose the traffic actually crossing the
// simulated network.

// Standard interfaces-group OIDs (MIB-2, RFC 1213 subset).
var (
	// OIDIfNumber is the interface count scalar.
	OIDIfNumber = snmp.MustOID("1.3.6.1.2.1.2.1")
	// OIDIfTable is the interface table; columns are indexed
	// ifEntry.column.row.
	oidIfEntry = snmp.MustOID("1.3.6.1.2.1.2.2.1")
)

// ifEntry columns served by the element agent.
const (
	colIfIndex     = 1
	colIfDescr     = 2
	colIfSpeed     = 5
	colIfInOctets  = 10
	colIfInErrors  = 14
	colIfOutOctets = 16
)

// IfEntry is one interface row: a snapshot of its configuration and
// counters.
type IfEntry struct {
	// Index is the 1-based interface index.
	Index int
	// Descr names the interface ("eth0", "node:alice").
	Descr string
	// SpeedBps is the configured bandwidth in bit/s.
	SpeedBps uint64
	// InOctets and OutOctets are cumulative byte counters.
	InOctets, OutOctets uint64
	// InErrors counts inbound drops/errors.
	InErrors uint64
}

// IfProvider returns the current interface rows.  The row set (count
// and order) must be stable across calls; counters may change freely.
type IfProvider func() []IfEntry

// NewElementAgent builds an SNMP agent serving sysDescr plus the
// interfaces group for the rows the provider reports at creation time.
func NewElementAgent(name string, provider IfProvider) (*snmp.Agent, error) {
	rows := provider()
	if len(rows) == 0 {
		return nil, fmt.Errorf("hostagent: element %q has no interfaces", name)
	}
	mib := snmp.NewMIB()
	if err := mib.RegisterScalar(OIDSysDescr, func() snmp.Value {
		return snmp.String8("adaptiveqos simulated element " + name)
	}); err != nil {
		return nil, err
	}
	if err := mib.RegisterScalar(OIDIfNumber, func() snmp.Value {
		return snmp.Integer(int64(len(provider())))
	}); err != nil {
		return nil, err
	}

	// row lookup by position; the provider's order is its identity.
	rowAt := func(i int) (IfEntry, bool) {
		cur := provider()
		if i < 0 || i >= len(cur) {
			return IfEntry{}, false
		}
		return cur[i], true
	}
	for i, row := range rows {
		i := i
		idx := uint32(row.Index)
		register := func(col uint32, get func(IfEntry) snmp.Value) error {
			return mib.Register(oidIfEntry.Append(col, idx), snmp.Object{
				Get: func() snmp.Value {
					r, ok := rowAt(i)
					if !ok {
						return snmp.Null()
					}
					return get(r)
				},
			})
		}
		if err := register(colIfIndex, func(r IfEntry) snmp.Value {
			return snmp.Integer(int64(r.Index))
		}); err != nil {
			return nil, err
		}
		if err := register(colIfDescr, func(r IfEntry) snmp.Value {
			return snmp.String8(r.Descr)
		}); err != nil {
			return nil, err
		}
		if err := register(colIfSpeed, func(r IfEntry) snmp.Value {
			return snmp.Gauge32(clampU32(r.SpeedBps))
		}); err != nil {
			return nil, err
		}
		if err := register(colIfInOctets, func(r IfEntry) snmp.Value {
			return snmp.Counter32(clampU32(r.InOctets))
		}); err != nil {
			return nil, err
		}
		if err := register(colIfInErrors, func(r IfEntry) snmp.Value {
			return snmp.Counter32(clampU32(r.InErrors))
		}); err != nil {
			return nil, err
		}
		if err := register(colIfOutOctets, func(r IfEntry) snmp.Value {
			return snmp.Counter32(clampU32(r.OutOctets))
		}); err != nil {
			return nil, err
		}
	}
	return snmp.NewAgent(mib), nil
}

func clampU32(v uint64) uint32 {
	if v > 0xFFFFFFFF {
		return 0xFFFFFFFF // counters wrap in real agents; we saturate
	}
	return uint32(v)
}

// IfOID returns the instance OID for a column of interface index
// (e.g. IfOID(colIfInOctets, 1)); exported helpers cover the columns
// managers need.
func ifOID(col, index uint32) snmp.OID { return oidIfEntry.Append(col, index) }

// OIDIfInOctets returns ifInOctets.{index}.
func OIDIfInOctets(index int) snmp.OID { return ifOID(colIfInOctets, uint32(index)) }

// OIDIfOutOctets returns ifOutOctets.{index}.
func OIDIfOutOctets(index int) snmp.OID { return ifOID(colIfOutOctets, uint32(index)) }

// OIDIfSpeed returns ifSpeed.{index}.
func OIDIfSpeed(index int) snmp.OID { return ifOID(colIfSpeed, uint32(index)) }

// OIDIfDescr returns ifDescr.{index}.
func OIDIfDescr(index int) snmp.OID { return ifOID(colIfDescr, uint32(index)) }

// OIDIfInErrors returns ifInErrors.{index}.
func OIDIfInErrors(index int) snmp.OID { return ifOID(colIfInErrors, uint32(index)) }
