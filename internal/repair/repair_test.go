package repair

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeStream is a hand-driven Gap source.
type fakeStream struct {
	mu     sync.Mutex
	wait   uint64
	parked int
}

func (f *fakeStream) Gap() (uint64, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wait, f.parked
}

func (f *fakeStream) set(wait uint64, parked int) {
	f.mu.Lock()
	f.wait = wait
	f.parked = parked
	f.mu.Unlock()
}

// recorder captures engine callbacks.
type recorder struct {
	mu        sync.Mutex
	requests  []uint64 // afterSeq per request
	attempts  []int
	abandoned []uint64
	err       error
	onAbandon func(waitingFor uint64) // e.g. skip the fake stream
}

func (r *recorder) request(stream string, after uint64, attempt int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests = append(r.requests, after)
	r.attempts = append(r.attempts, attempt)
	return r.err
}

func (r *recorder) abandon(stream string, waitingFor uint64) {
	r.mu.Lock()
	r.abandoned = append(r.abandoned, waitingFor)
	hook := r.onAbandon
	r.mu.Unlock()
	if hook != nil {
		hook(waitingFor)
	}
}

func newTestEngine(rec *recorder, cfg Config) *Engine {
	return New(cfg, rec.request, rec.abandon)
}

func TestNoRequestBeforeStallTimeout(t *testing.T) {
	rec := &recorder{}
	e := newTestEngine(rec, Config{StallTimeout: 100 * time.Millisecond, JitterFrac: -1})
	s := &fakeStream{wait: 5, parked: 3}
	e.Watch("a", s)

	base := time.Unix(1000, 0)
	e.Poll(base)                                // first sighting of the stall
	e.Poll(base.Add(50 * time.Millisecond))     // not stalled long enough
	if n := len(rec.requests); n != 0 {
		t.Fatalf("requested before stall timeout: %d", n)
	}
	e.Poll(base.Add(110 * time.Millisecond))
	if n := len(rec.requests); n != 1 {
		t.Fatalf("requests = %d, want 1", n)
	}
	if rec.requests[0] != 4 {
		t.Errorf("afterSeq = %d, want 4 (waitingFor-1)", rec.requests[0])
	}
}

func TestIdleTailNeverRequests(t *testing.T) {
	rec := &recorder{}
	e := newTestEngine(rec, Config{StallTimeout: 10 * time.Millisecond, JitterFrac: -1})
	s := &fakeStream{wait: 7, parked: 0} // gap position but nothing parked
	e.Watch("a", s)
	base := time.Unix(1000, 0)
	for i := 0; i < 50; i++ {
		e.Poll(base.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	if len(rec.requests) != 0 {
		t.Fatalf("idle tail must not trigger repair: %d requests", len(rec.requests))
	}
}

func TestBackoffScheduleAndAbandon(t *testing.T) {
	rec := &recorder{err: errors.New("request lost")}
	e := newTestEngine(rec, Config{
		StallTimeout: 100 * time.Millisecond,
		BaseBackoff:  100 * time.Millisecond,
		MaxBackoff:   time.Second,
		MaxRetries:   3,
		JitterFrac:   -1, // deterministic schedule
	})
	s := &fakeStream{wait: 10, parked: 2}
	// Abandoning skips the stream past the gap, like the real wiring.
	rec.onAbandon = func(w uint64) { s.set(w+1, 0) }
	e.Watch("a", s)

	base := time.Unix(1000, 0)
	e.Poll(base)
	// Walk simulated time forward in 10ms steps; with base backoff
	// 100ms doubling, requests land ~100ms, ~200ms, ~400ms after the
	// previous, then the gap is abandoned ~800ms later.
	for i := 1; i <= 200; i++ {
		e.Poll(base.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.requests) != 3 {
		t.Fatalf("requests = %d, want 3 (the retry budget)", len(rec.requests))
	}
	for i, a := range rec.attempts {
		if a != i+1 {
			t.Errorf("attempt %d numbered %d", i, a)
		}
	}
	if len(rec.abandoned) != 1 || rec.abandoned[0] != 10 {
		t.Fatalf("abandoned = %v, want [10]", rec.abandoned)
	}
}

func TestProgressResetsAttempts(t *testing.T) {
	rec := &recorder{}
	e := newTestEngine(rec, Config{
		StallTimeout: 100 * time.Millisecond,
		BaseBackoff:  100 * time.Millisecond,
		MaxRetries:   2,
		JitterFrac:   -1,
	})
	s := &fakeStream{wait: 3, parked: 1}
	e.Watch("a", s)

	base := time.Unix(1000, 0)
	e.Poll(base)
	e.Poll(base.Add(110 * time.Millisecond)) // request 1 for gap at 3
	if len(rec.requests) != 1 {
		t.Fatalf("requests = %d, want 1", len(rec.requests))
	}
	// The gap fills (replay landed): waitingFor advances, a new gap
	// appears later; the attempt counter must restart.
	s.set(8, 1)
	e.Poll(base.Add(200 * time.Millisecond))
	st := e.Status()["a"]
	if st.Repaired != 1 {
		t.Errorf("repaired = %d, want 1", st.Repaired)
	}
	if st.Attempts != 0 {
		t.Errorf("attempts = %d, want 0 after progress", st.Attempts)
	}
	// New gap stalls → fresh request cycle starting at attempt 1.
	e.Poll(base.Add(310 * time.Millisecond))
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.requests) != 2 || rec.attempts[1] != 1 {
		t.Fatalf("requests = %v attempts = %v, want a fresh attempt 1", rec.requests, rec.attempts)
	}
	if rec.requests[1] != 7 {
		t.Errorf("second request afterSeq = %d, want 7", rec.requests[1])
	}
}

func TestJitterSpreadsBackoffDeterministically(t *testing.T) {
	// Same seed → same schedule; different seeds → (almost surely)
	// different schedules.
	schedule := func(seed int64) []time.Duration {
		e := New(Config{
			StallTimeout: 100 * time.Millisecond,
			BaseBackoff:  100 * time.Millisecond,
			JitterFrac:   0.5,
			Seed:         seed,
		}, func(string, uint64, int) error { return nil }, nil)
		var out []time.Duration
		for i := 1; i <= 4; i++ {
			out = append(out, e.backoffLocked(i))
		}
		return out
	}
	a1, a2, b := schedule(7), schedule(7), schedule(8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged: %v vs %v", a1, a2)
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical jitter: %v", a1)
	}
	// Jitter must stay within ±50% of the deterministic backoff.
	det := []time.Duration{100, 200, 400, 800}
	for i, d := range a1 {
		base := det[i] * time.Millisecond
		if d < base/2 || d > base*3/2 {
			t.Errorf("backoff %d = %v outside ±50%% of %v", i+1, d, base)
		}
	}
}

func TestStartStopLifecycle(t *testing.T) {
	rec := &recorder{}
	e := newTestEngine(rec, Config{
		StallTimeout: 5 * time.Millisecond,
		Interval:     time.Millisecond,
		JitterFrac:   -1,
	})
	s := &fakeStream{wait: 2, parked: 1}
	e.Watch("a", s)
	e.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		rec.mu.Lock()
		n := len(rec.requests)
		rec.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	rec.mu.Lock()
	n := len(rec.requests)
	rec.mu.Unlock()
	if n == 0 {
		t.Fatal("running engine never issued a request")
	}
	// Stop is idempotent and Status still works afterwards.
	e.Stop()
	if _, ok := e.Status()["a"]; !ok {
		t.Error("status lost after stop")
	}
}

func TestStopWithoutStart(t *testing.T) {
	e := newTestEngine(&recorder{}, Config{})
	done := make(chan struct{})
	go func() { e.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start deadlocked")
	}
}

func TestUnwatchStopsRepair(t *testing.T) {
	rec := &recorder{}
	e := newTestEngine(rec, Config{StallTimeout: 10 * time.Millisecond, JitterFrac: -1})
	s := &fakeStream{wait: 4, parked: 1}
	e.Watch("a", s)
	e.Unwatch("a")
	base := time.Unix(1000, 0)
	for i := 0; i < 20; i++ {
		e.Poll(base.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	if len(rec.requests) != 0 {
		t.Fatalf("unwatched stream still repaired: %d requests", len(rec.requests))
	}
}
