// Package repair closes session-event gaps automatically.  The
// multicast substrate promises only limited in-order delivery
// assurance, so a replica's per-sender order buffer can stall forever
// on one lost frame.  The engine here watches each monitored stream's
// Gap() and, when a gap persists past a stall timeout, issues
// NACK-style history requests (the coordinator replays the original
// frames) with exponential backoff plus jitter and a bounded retry
// budget.  When the budget is exhausted the gap is abandoned: the
// stream is asked to skip past it (liveness over completeness), the
// abandonment is counted, and an obs trace entry records what was
// given up.
//
// The engine is transport-agnostic: it sees streams as Gap() sources
// and acts through two callbacks, so core.Client wires it to
// per-sender session.OrderBuffers and Coordinator history replay, but
// any gap-detecting consumer can reuse it.
package repair

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/slo"
)

// Stream is one monitored in-order stream: Gap reports the first
// missing sequence number and how many events are parked behind it
// (session.OrderBuffer satisfies this).
type Stream interface {
	Gap() (waitingFor uint64, parked int)
}

// Requester issues one NACK-style repair request: "replay stream's
// events with sequence numbers greater than afterSeq".  attempt is
// 1-based.  Errors are tolerated — the engine retries on its backoff
// schedule either way, since a failed send and a lost reply look the
// same from here.
type Requester func(stream string, afterSeq uint64, attempt int) error

// Abandoner is told a gap has exhausted its retry budget; it should
// skip the stream past waitingFor so delivery resumes.
type Abandoner func(stream string, waitingFor uint64)

// Config parameterizes the engine.
type Config struct {
	// StallTimeout is how long a gap must hold parked events before
	// the first repair request (default 200ms).
	StallTimeout time.Duration
	// MaxRetries is the total request budget per gap; after that many
	// requests and one more backoff without progress the gap is
	// abandoned (default 6, minimum 1).
	MaxRetries int
	// BaseBackoff is the wait after the first request; it doubles per
	// attempt (default StallTimeout).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 16 × BaseBackoff).
	MaxBackoff time.Duration
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of
	// itself so replicas repairing the same loss don't synchronize
	// their NACKs (default 0.2; set negative for none).
	JitterFrac float64
	// Interval is the gap-poll cadence (default StallTimeout/4).
	Interval time.Duration
	// Seed makes the jitter reproducible (0 means 1).
	Seed int64
	// Owner names the client this engine repairs for; repair
	// convergence latencies are attributed to it in the SLO engine
	// (empty = unattributed, SLO feed skipped).
	Owner string
	// Clock drives the Start loop's ticker (nil = wall clock).  Poll
	// itself takes explicit times and stays clock-free.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.StallTimeout <= 0 {
		c.StallTimeout = 200 * time.Millisecond
	}
	if c.MaxRetries < 1 {
		c.MaxRetries = 6
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = c.StallTimeout
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 16 * c.BaseBackoff
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	} else if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	if c.Interval <= 0 {
		c.Interval = c.StallTimeout / 4
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// StreamStatus is one stream's repair state snapshot.
type StreamStatus struct {
	WaitingFor uint64 // first missing seq the stream is stalled on
	Parked     int    // events held behind the gap
	Attempts   int    // requests issued for the current gap
	Requests   uint64 // total requests issued for this stream
	Repaired   uint64 // gaps closed after at least one request
	Abandoned  uint64 // gaps given up on
}

// streamState is the per-stream gap state machine.
type streamState struct {
	src Stream

	waitingFor   uint64    // gap seq as of the last poll
	parkedSince  time.Time // when the current gap first held parked events
	attempts     int       // requests issued for the current gap
	nextAction   time.Time // when to retry or abandon
	firstRequest time.Time // start of the repair-latency measurement

	requests  uint64
	repaired  uint64
	abandoned uint64
}

// Engine runs the gap-repair loop over a set of monitored streams.
type Engine struct {
	cfg     Config
	request Requester
	abandon Abandoner

	mu      sync.Mutex
	rng     *rand.Rand
	streams map[string]*streamState

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	loopDone  chan struct{}
}

// New creates an engine.  request must be non-nil; abandon may be nil
// (gaps then stall until repaired, with abandonment only counted).
func New(cfg Config, request Requester, abandon Abandoner) *Engine {
	cfg = cfg.withDefaults()
	// (Counter families are pre-touched by metrics.TouchDefaults at
	// init, so aqos_repair_* expose at zero without any per-engine
	// registration here.)
	return &Engine{
		cfg:      cfg,
		request:  request,
		abandon:  abandon,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		streams:  make(map[string]*streamState),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
}

// Watch adds (or replaces) a monitored stream.  Safe concurrently
// with the poll loop.
func (e *Engine) Watch(name string, s Stream) {
	w, _ := s.Gap()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.streams[name] = &streamState{src: s, waitingFor: w}
}

// Unwatch removes a monitored stream.
func (e *Engine) Unwatch(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.streams, name)
}

// Start launches the background poll loop.
func (e *Engine) Start() {
	e.startOnce.Do(func() {
		go func() {
			defer close(e.loopDone)
			ticker := clock.Or(e.cfg.Clock).NewTicker(e.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-e.done:
					return
				case now := <-ticker.C():
					e.Poll(now)
				}
			}
		}()
	})
}

// Stop halts the poll loop (idempotent; safe if Start was never
// called).
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.done) })
	e.startOnce.Do(func() { close(e.loopDone) }) // never started: nothing to wait for
	<-e.loopDone
}

// Status snapshots every monitored stream's repair state.
func (e *Engine) Status() map[string]StreamStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]StreamStatus, len(e.streams))
	for name, st := range e.streams {
		w, parked := st.src.Gap()
		out[name] = StreamStatus{
			WaitingFor: w,
			Parked:     parked,
			Attempts:   st.attempts,
			Requests:   st.requests,
			Repaired:   st.repaired,
			Abandoned:  st.abandoned,
		}
	}
	return out
}

// actionKind discriminates deferred callback work (callbacks run
// outside the engine lock: they send on the network and re-enter
// stream state).
type actionKind uint8

const (
	actRequest actionKind = iota
	actAbandon
)

type action struct {
	kind    actionKind
	stream  string
	seq     uint64
	attempt int
}

// Poll runs one scan of every stream's gap state machine at time now.
// Exported so tests can drive the machine deterministically; the
// Start loop calls it on every tick.
func (e *Engine) Poll(now time.Time) {
	var actions []action
	e.mu.Lock()
	// Scan in sorted stream order: map iteration would randomize both
	// the jitter-rng draw order and the callback order, making replay
	// runs diverge (counterfactual replay needs byte-identical reruns).
	names := make([]string, 0, len(e.streams))
	for name := range e.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := e.streams[name]
		w, parked := st.src.Gap()
		if w != st.waitingFor {
			// The gap moved: delivery progressed.  If we had asked for
			// help, this gap was closed by a replay — count the repair
			// and record stall-to-fill latency on the repair stage.
			if st.attempts > 0 {
				st.repaired++
				metrics.C(metrics.CtrRepairSuccess).Inc()
				obs.StageHistogram(obs.StageRepair).Observe(now.Sub(st.firstRequest).Nanoseconds())
				if e.cfg.Owner != "" {
					slo.ObserveRepair(e.cfg.Owner, now.Sub(st.firstRequest))
				}
				if obs.Enabled() {
					obs.Note(0, obs.StageRepair, fmt.Sprintf(
						"stream %s: gap at %d repaired after %d request(s)", name, st.waitingFor, st.attempts))
				}
			}
			st.waitingFor = w
			st.attempts = 0
			if parked > 0 {
				st.parkedSince = now
			} else {
				st.parkedSince = time.Time{}
			}
			continue
		}
		if parked == 0 {
			// Idle at the stream tail: nothing is missing that we can
			// see (tail loss is invisible until a later event parks).
			st.parkedSince = time.Time{}
			st.attempts = 0
			continue
		}
		if st.parkedSince.IsZero() {
			st.parkedSince = now
			continue
		}
		if st.attempts == 0 {
			if now.Sub(st.parkedSince) >= e.cfg.StallTimeout {
				st.attempts = 1
				st.firstRequest = now
				st.requests++
				st.nextAction = now.Add(e.backoffLocked(1))
				actions = append(actions, action{actRequest, name, w - 1, 1})
			}
			continue
		}
		if now.Before(st.nextAction) {
			continue
		}
		if st.attempts >= e.cfg.MaxRetries {
			st.abandoned++
			st.attempts = 0
			st.parkedSince = time.Time{}
			actions = append(actions, action{actAbandon, name, w, 0})
			continue
		}
		st.attempts++
		st.requests++
		st.nextAction = now.Add(e.backoffLocked(st.attempts))
		actions = append(actions, action{actRequest, name, w - 1, st.attempts})
	}
	e.mu.Unlock()

	for _, a := range actions {
		switch a.kind {
		case actRequest:
			metrics.C(metrics.CtrRepairRequests).Inc()
			if err := e.request(a.stream, a.seq, a.attempt); err != nil && obs.Enabled() {
				obs.Note(0, obs.StageRepair, fmt.Sprintf(
					"stream %s: repair request %d failed: %v", a.stream, a.attempt, err))
			}
		case actAbandon:
			metrics.C(metrics.CtrRepairAbandoned).Inc()
			if obs.Enabled() {
				obs.Note(0, obs.StageRepair, fmt.Sprintf(
					"stream %s: gap at %d abandoned after %d requests, skipping",
					a.stream, a.seq, e.cfg.MaxRetries))
			}
			if e.abandon != nil {
				e.abandon(a.stream, a.seq)
			}
		}
	}
}

// backoffLocked returns the wait before attempt n+1 given that
// attempt n was just issued: BaseBackoff doubled per attempt, capped
// at MaxBackoff, spread by ±JitterFrac.
func (e *Engine) backoffLocked(attempt int) time.Duration {
	d := e.cfg.BaseBackoff
	for i := 1; i < attempt && d < e.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > e.cfg.MaxBackoff {
		d = e.cfg.MaxBackoff
	}
	if f := e.cfg.JitterFrac; f > 0 {
		j := 1 + f*(2*e.rng.Float64()-1)
		d = time.Duration(float64(d) * j)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
