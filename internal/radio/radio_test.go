package radio

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	return NewChannel(Params{})
}

func TestJoinLeave(t *testing.T) {
	c := newTestChannel(t)
	if err := c.Join("a", 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Join("a", 50, 1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate join: %v", err)
	}
	if err := c.Join("b", -1, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative distance: %v", err)
	}
	if err := c.Join("b", 10, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero power: %v", err)
	}
	c.Join("b", 80, 0.5)
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	ids := c.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("ids = %v", ids)
	}
	if !c.Leave("a") || c.Leave("a") {
		t.Error("leave semantics")
	}
	if _, err := c.SIR("a"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("SIR after leave: %v", err)
	}
	if _, err := c.Get("zzz"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("Get unknown: %v", err)
	}
	if err := c.SetDistance("zzz", 10); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("SetDistance unknown: %v", err)
	}
	if err := c.SetPower("b", math.NaN()); !errors.Is(err, ErrBadParam) {
		t.Errorf("NaN power: %v", err)
	}
}

func TestGainFollowsPathLoss(t *testing.T) {
	c := NewChannel(Params{PathLossExponent: 2, RefGain: 1})
	c.Join("a", 10, 1)
	g10, _ := c.Gain("a")
	c.SetDistance("a", 20)
	g20, _ := c.Gain("a")
	// α = 2: doubling distance quarters the gain.
	if math.Abs(g10/g20-4) > 1e-9 {
		t.Errorf("gain ratio = %g, want 4", g10/g20)
	}
	// MinDistance clamps.
	c.SetDistance("a", 0)
	g0, _ := c.Gain("a")
	c.SetDistance("a", 1)
	g1, _ := c.Gain("a")
	if g0 != g1 {
		t.Errorf("distance clamp: %g vs %g", g0, g1)
	}
}

func TestSingleClientSIRIsNoiseLimited(t *testing.T) {
	c := NewChannel(Params{PathLossExponent: 2, NoiseExp: 3})
	c.Join("a", 10, 1)
	// SIR = P·G / (P/10³) = G·10³ = (1/100)·1000 = 10 → 10 dB.
	sir, err := c.SIR("a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sir-10) > 1e-9 {
		t.Errorf("single-client SIR = %g, want 10", sir)
	}
	db, _ := c.SIRdB("a")
	if math.Abs(db-10) > 1e-9 {
		t.Errorf("SIRdB = %g, want 10", db)
	}
}

func TestInterferenceDominates(t *testing.T) {
	c := newTestChannel(t)
	c.Join("a", 50, 1)
	alone, _ := c.SIR("a")

	c.Join("b", 50, 1)
	with1, _ := c.SIR("a")
	if with1 >= alone {
		t.Errorf("SIR did not drop with interferer: %g -> %g", alone, with1)
	}
	// The paper's Fig 10 shape: the first interferer causes a large
	// relative drop (~90 % there); an equal second interferer causes a
	// smaller relative drop.
	drop1 := (alone - with1) / alone
	c.Join("c", 50, 1)
	with2, _ := c.SIR("a")
	drop2 := (with1 - with2) / with1
	if drop1 < 0.5 {
		t.Errorf("first interferer drop = %.2f, want large", drop1)
	}
	if drop2 >= drop1 {
		t.Errorf("second drop %.2f should be smaller than first %.2f", drop2, drop1)
	}

	// Moving the interferer away helps the victim — the Fig 8 effect
	// (in the paper client A moves closer so its own SIR improves; the
	// mirror effect is that B's interference at A changes with B's
	// gain).
	c.Leave("c")
	c.SetDistance("b", 200)
	far, _ := c.SIR("a")
	if far <= with1 {
		t.Errorf("moving interferer away should raise SIR: %g -> %g", with1, far)
	}
}

func TestMovingCloserImprovesOwnSIR(t *testing.T) {
	// Fig 8: client A's distance is reduced 100 m → 50 m; A's SIR at
	// the BS improves (its gain rises while interference is unchanged).
	c := newTestChannel(t)
	c.Join("a", 100, 1)
	c.Join("b", 80, 1)
	before, _ := c.SIRdB("a")
	bBefore, _ := c.SIRdB("b")
	c.SetDistance("a", 50)
	after, _ := c.SIRdB("a")
	bAfter, _ := c.SIRdB("b")
	if after <= before {
		t.Errorf("A closer: SIR %g -> %g should rise", before, after)
	}
	// ... while B's SIR falls (A now interferes more strongly).
	if bAfter >= bBefore {
		t.Errorf("B's SIR %g -> %g should fall when A closes in", bBefore, bAfter)
	}
}

func TestPowerVsDistanceEffectiveness(t *testing.T) {
	// The paper observes varying distance is more effective than
	// varying power.  Halving distance (α=3) multiplies gain by 8;
	// doubling power only doubles the signal — and with
	// power-proportional noise the self-noise doubles too.
	c := NewChannel(Params{PathLossExponent: 3})
	c.Join("a", 100, 1)
	c.Join("b", 80, 1)
	base, _ := c.SIR("a")

	c.SetPower("a", 2)
	viaPower, _ := c.SIR("a")
	c.SetPower("a", 1)
	c.SetDistance("a", 50)
	viaDistance, _ := c.SIR("a")

	if viaPower <= base {
		t.Errorf("more power should not hurt: %g -> %g", base, viaPower)
	}
	gainPower := viaPower / base
	gainDistance := viaDistance / base
	if gainDistance <= gainPower {
		t.Errorf("distance gain %.2fx should beat power gain %.2fx", gainDistance, gainPower)
	}
}

func TestScaleInvariance(t *testing.T) {
	// With power-proportional noise (no floor), a uniform power
	// scale-down leaves every SIR unchanged.
	c := newTestChannel(t)
	c.Join("a", 100, 2)
	c.Join("b", 60, 1)
	c.Join("c", 150, 4)
	before := c.AllSIRdB()
	if err := c.ScaleAllPowers(0.5); err != nil {
		t.Fatal(err)
	}
	after := c.AllSIRdB()
	for id := range before {
		if math.Abs(before[id]-after[id]) > 1e-9 {
			t.Errorf("%s: SIR changed under uniform scaling: %g -> %g", id, before[id], after[id])
		}
	}
	// Powers really dropped.
	a, _ := c.Get("a")
	if a.Power != 1 {
		t.Errorf("power after scaling = %g", a.Power)
	}
	if err := c.ScaleAllPowers(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero factor: %v", err)
	}

	// With a noise floor the invariance breaks: scaling down lowers SIR.
	cf := NewChannel(Params{NoiseFloor: 1e-9})
	cf.Join("a", 100, 1)
	b1, _ := cf.SIR("a")
	cf.ScaleAllPowers(0.1)
	b2, _ := cf.SIR("a")
	if b2 >= b1 {
		t.Errorf("with a noise floor, scaling down should lower SIR: %g -> %g", b1, b2)
	}
}

func TestPowerControlConvergesTowardTarget(t *testing.T) {
	// An absolute noise floor gives the iteration a finite equilibrium
	// (with purely power-proportional noise the whole power vector just
	// scales down until it hits a clamp).
	c := NewChannel(Params{NoiseFloor: 1e-9})
	c.Join("a", 100, 5)
	c.Join("b", 60, 0.05)

	// For two clients in an interference-limited uplink the product of
	// SIRs is at most 1, so both targets must sit below 0 dB to be
	// jointly feasible.
	const target = -4.0 // dB
	for i := 0; i < 40; i++ {
		if _, err := c.PowerControlStep(target, 1e-6, 100); err != nil {
			t.Fatal(err)
		}
	}
	for id, db := range c.AllSIRdB() {
		if math.Abs(db-target) > 0.5 {
			t.Errorf("%s: SIR %g dB after control, want ~%g", id, db, target)
		}
	}
	// Clamping works.
	if _, err := c.PowerControlStep(0, 0, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad clamp params: %v", err)
	}
}

func TestPowerControlConservesBattery(t *testing.T) {
	// A client far above target is asked to reduce power (the paper's
	// example: image threshold 4 dB, achieved 7 dB → transmit lower).
	c := NewChannel(Params{NoiseFloor: 1e-12})
	c.Join("a", 10, 5) // very close and loud: high SIR
	c.Join("b", 100, 1)
	dbBefore, _ := c.SIRdB("a")
	if dbBefore < 4 {
		t.Skip("geometry should give a high SIR")
	}
	before, _ := c.Get("a")
	c.PowerControlStep(4, 1e-6, 100)
	after, _ := c.Get("a")
	if after.Power >= before.Power {
		t.Errorf("over-target client power %g -> %g should fall", before.Power, after.Power)
	}
}

func TestTiers(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		db   float64
		want Tier
	}{
		{10, TierImage},
		{4, TierImage},
		{3.9, TierSketch},
		{0, TierSketch},
		{-0.1, TierText},
		{-6, TierText},
		{-10, TierNone},
	}
	for _, tc := range cases {
		if got := th.TierFor(tc.db); got != tc.want {
			t.Errorf("TierFor(%g) = %s, want %s", tc.db, got, tc.want)
		}
	}
	for _, tier := range []Tier{TierNone, TierText, TierSketch, TierImage, Tier(9)} {
		if tier.String() == "" {
			t.Errorf("empty name for tier %d", tier)
		}
	}
}

func TestUtility(t *testing.T) {
	c := newTestChannel(t)
	c.Join("a", 10, 1)
	u1, err := c.Utility("a", 80, 10_000)
	if err != nil || u1 <= 0 {
		t.Fatalf("utility: %g, %v", u1, err)
	}
	// Same SIR at lower power → higher utility (bits per joule).
	c.ScaleAllPowers(0.5)
	u2, _ := c.Utility("a", 80, 10_000)
	if u2 <= u1 {
		t.Errorf("utility after uniform scale-down: %g -> %g should rise", u1, u2)
	}
	if _, err := c.Utility("ghost", 80, 1); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("unknown client: %v", err)
	}
	// Default frame bits path.
	if _, err := c.Utility("a", 0, 1); err != nil {
		t.Errorf("default frame bits: %v", err)
	}
}

func TestAdmissionLimit(t *testing.T) {
	c := newTestChannel(t)
	// Equal clients at 50 m, 1 W: compute the limit, then verify by
	// populating the channel.
	limit := c.AdmissionLimit(50, 1, 0 /* dB */)
	if limit < 1 {
		t.Fatalf("admission limit = %d", limit)
	}
	for i := 0; i < limit; i++ {
		c.Join(string(rune('a'+i)), 50, 1)
	}
	db, _ := c.SIRdB("a")
	if db < -0.01 {
		t.Errorf("SIR at the limit = %g dB, want >= 0", db)
	}
	c.Join("overflow", 50, 1)
	db, _ = c.SIRdB("a")
	if db >= 0 {
		t.Errorf("SIR beyond the limit = %g dB, want < 0", db)
	}
}

func TestSortedSIRs(t *testing.T) {
	c := newTestChannel(t)
	c.Join("far", 200, 1)
	c.Join("near", 20, 1)
	c.Join("mid", 80, 1)
	sorted := c.SortedSIRs()
	if len(sorted) != 3 || sorted[0].ID != "near" || sorted[2].ID != "far" {
		t.Errorf("sorted: %v", sorted)
	}
}

// TestQuickSIRScaleInvariance: for arbitrary client sets (no noise
// floor), uniform power scaling preserves every SIR.
func TestQuickSIRScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewChannel(Params{PathLossExponent: 2 + r.Float64()*2})
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			c.Join(string(rune('a'+i)), 5+r.Float64()*200, 0.1+r.Float64()*5)
		}
		before := c.AllSIRdB()
		factor := 0.1 + r.Float64()*3
		c.ScaleAllPowers(factor)
		after := c.AllSIRdB()
		for id := range before {
			if math.Abs(before[id]-after[id]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMoreInterferersNeverHelp: adding a client never raises an
// existing client's SIR.
func TestQuickMoreInterferersNeverHelp(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewChannel(Params{})
		c.Join("victim", 5+r.Float64()*200, 0.1+r.Float64()*5)
		prev, _ := c.SIR("victim")
		for i := 0; i < 1+r.Intn(5); i++ {
			c.Join(string(rune('a'+i)), 5+r.Float64()*200, 0.1+r.Float64()*5)
			cur, _ := c.SIR("victim")
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTierMonotone: higher SIR never yields a poorer tier.
func TestQuickTierMonotone(t *testing.T) {
	th := DefaultThresholds()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return th.TierFor(a) <= th.TierFor(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
