package radio

import (
	"fmt"
	"math"
)

// Battery tracking: wireless devices are limited by battery power, and
// the base station's power management exists largely to conserve it.
// Each client can carry an energy budget; Drain advances time, and the
// framework can observe remaining capacity and predicted lifetime.

// SetBattery assigns a client's remaining energy in joules.
func (c *Channel) SetBattery(id string, joules float64) error {
	if joules < 0 || math.IsNaN(joules) {
		return fmt.Errorf("%w: battery %g", ErrBadParam, joules)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	cl.Battery = joules
	cl.hasBattery = true
	return nil
}

// Battery returns a client's remaining energy.  Clients without an
// assigned budget report ok=false (mains powered, effectively).
func (c *Channel) Battery(id string) (joules float64, ok bool, err error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, found := c.clients[id]
	if !found {
		return 0, false, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	return cl.Battery, cl.hasBattery, nil
}

// Drain advances time by dt seconds: every battery-powered client
// spends TxPower·dt joules (transmit-dominated consumption).  Clients
// whose battery empties have their transmit power forced to the
// minimum representable level — they effectively fall silent.  Drain
// returns the IDs of clients that emptied during this step, sorted.
func (c *Channel) Drain(dt float64) ([]string, error) {
	if dt < 0 || math.IsNaN(dt) {
		return nil, fmt.Errorf("%w: dt %g", ErrBadParam, dt)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var emptied []string
	for id, cl := range c.clients {
		if !cl.hasBattery || cl.Battery == 0 {
			continue
		}
		cl.Battery -= cl.Power * dt
		if cl.Battery <= 0 {
			cl.Battery = 0
			cl.Power = minSilentPower
			emptied = append(emptied, id)
		}
	}
	sortStrings(emptied)
	return emptied, nil
}

// minSilentPower is the power assigned to an exhausted client: small
// enough to be negligible interference, non-zero to keep the SIR
// arithmetic well-defined.
const minSilentPower = 1e-9

// Lifetime predicts how many seconds of transmission a client's
// remaining battery sustains at its current power.
func (c *Channel) Lifetime(id string) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.clients[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	if !cl.hasBattery {
		return math.Inf(1), nil
	}
	if cl.Power <= 0 {
		return math.Inf(1), nil
	}
	return cl.Battery / cl.Power, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
