// Package radio implements the simulated wireless channel used by the
// base-station experiments: distance-based path gain, the paper's SIR
// equation (eq. 1), SIR-threshold modality tiers, and power control in
// the spirit of Goodman–Mandayam's "Power Control for Wireless Data".
//
// For client i transmitting to the base station,
//
//	SIR_i = P_i·G_i / (Σ_{j≠i} P_j·G_j + σ²_i)
//
// where P is transmit power, G is path gain, and the noise factor σ²_i
// is derived from the client's transmit power (σ² = P/10^k, as in the
// paper) plus an optional absolute noise floor.  With the
// power-proportional noise term and no floor, scaling every client's
// power by the same factor leaves every SIR unchanged — the property
// behind the paper's claim that a uniform power reduction raises net
// utility (same SIR, less energy) for all clients.
package radio

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Channel errors.
var (
	ErrUnknownClient = errors.New("radio: unknown client")
	ErrDuplicate     = errors.New("radio: client already present")
	ErrBadParam      = errors.New("radio: invalid parameter")
)

// Params configures the channel model.
type Params struct {
	// PathLossExponent is α in G = RefGain · d^−α (default 3, an urban
	// micro-cell value).
	PathLossExponent float64
	// RefGain is the path gain at 1 m (default 1).
	RefGain float64
	// NoiseExp is k in σ² = P/10^k (default 10: the self-noise term sits
	// 100 dB below the transmit power, so multi-client scenarios are
	// interference-limited while a lone client still sees finite SIR).
	NoiseExp float64
	// NoiseFloor is an absolute additive noise term in watts (default 0).
	NoiseFloor float64
	// MinDistance clamps distances to avoid the d→0 singularity
	// (default 1 m).
	MinDistance float64
}

func (p Params) withDefaults() Params {
	if p.PathLossExponent == 0 {
		p.PathLossExponent = 3
	}
	if p.RefGain == 0 {
		p.RefGain = 1
	}
	if p.NoiseExp == 0 {
		p.NoiseExp = 10
	}
	if p.MinDistance == 0 {
		p.MinDistance = 1
	}
	return p
}

// Client is one wireless transmitter.
type Client struct {
	ID string
	// Distance from the base station in meters.
	Distance float64
	// Power is the transmit power in watts.
	Power float64
	// Battery is the remaining energy in joules; meaningful only when
	// hasBattery is set (see Channel.SetBattery).
	Battery    float64
	hasBattery bool
}

// Channel is the interference-limited uplink shared by the wireless
// clients of one base station.  It is safe for concurrent use.
type Channel struct {
	mu      sync.RWMutex
	params  Params
	clients map[string]*Client
}

// NewChannel creates a channel with the given parameters.
func NewChannel(p Params) *Channel {
	return &Channel{params: p.withDefaults(), clients: make(map[string]*Client)}
}

// Params returns the channel parameters.
func (c *Channel) Params() Params {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.params
}

// Join adds a client.
func (c *Channel) Join(id string, distance, power float64) error {
	if distance < 0 || power <= 0 || math.IsNaN(distance) || math.IsNaN(power) {
		return fmt.Errorf("%w: distance %g, power %g", ErrBadParam, distance, power)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.clients[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	c.clients[id] = &Client{ID: id, Distance: distance, Power: power}
	return nil
}

// Leave removes a client, reporting whether it was present.
func (c *Channel) Leave(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.clients[id]
	delete(c.clients, id)
	return ok
}

// Len returns the number of clients.
func (c *Channel) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.clients)
}

// IDs returns the client IDs, sorted.
func (c *Channel) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.clients))
	for id := range c.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SetDistance moves a client (mobility).
func (c *Channel) SetDistance(id string, d float64) error {
	if d < 0 || math.IsNaN(d) {
		return fmt.Errorf("%w: distance %g", ErrBadParam, d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	cl.Distance = d
	return nil
}

// SetPower changes a client's transmit power.
func (c *Channel) SetPower(id string, p float64) error {
	if p <= 0 || math.IsNaN(p) {
		return fmt.Errorf("%w: power %g", ErrBadParam, p)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	cl.Power = p
	return nil
}

// Get returns a copy of a client's state.
func (c *Channel) Get(id string) (Client, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.clients[id]
	if !ok {
		return Client{}, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	return *cl, nil
}

// Gain returns the path gain for a client at its current distance.
func (c *Channel) Gain(id string) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.clients[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	return c.gainLocked(cl), nil
}

func (c *Channel) gainLocked(cl *Client) float64 {
	d := cl.Distance
	if d < c.params.MinDistance {
		d = c.params.MinDistance
	}
	return c.params.RefGain * math.Pow(d, -c.params.PathLossExponent)
}

// SIR returns the linear signal-to-interference ratio for a client per
// the paper's eq. 1.
func (c *Channel) SIR(id string) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.clients[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	signal := cl.Power * c.gainLocked(cl)
	var interference float64
	for _, other := range c.clients {
		if other.ID == id {
			continue
		}
		interference += other.Power * c.gainLocked(other)
	}
	noise := c.params.NoiseFloor + cl.Power/math.Pow(10, c.params.NoiseExp)
	return signal / (interference + noise), nil
}

// SIRdB returns the SIR in decibels.
func (c *Channel) SIRdB(id string) (float64, error) {
	sir, err := c.SIR(id)
	if err != nil {
		return 0, err
	}
	return 10 * math.Log10(sir), nil
}

// AllSIRdB returns every client's SIR in dB, keyed by ID.
func (c *Channel) AllSIRdB() map[string]float64 {
	out := make(map[string]float64)
	for _, id := range c.IDs() {
		if db, err := c.SIRdB(id); err == nil {
			out[id] = db
		}
	}
	return out
}
