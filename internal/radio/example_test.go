package radio_test

import (
	"fmt"

	"adaptiveqos/internal/radio"
)

// SIR at the base station follows the paper's eq. 1: interference from
// other clients dominates as the cell fills, and the modality tier the
// BS can forward degrades with it.
func Example() {
	ch := radio.NewChannel(radio.Params{})
	th := radio.DefaultThresholds()

	ch.Join("A", 60, 1)
	db, _ := ch.SIRdB("A")
	fmt.Printf("alone:        %5.1f dB → %s\n", db, th.TierFor(db))

	ch.Join("B", 40, 1.5)
	db, _ = ch.SIRdB("A")
	fmt.Printf("one rival:    %5.1f dB → %s\n", db, th.TierFor(db))

	ch.Join("C", 50, 1.5)
	db, _ = ch.SIRdB("A")
	fmt.Printf("two rivals:   %5.1f dB → %s\n", db, th.TierFor(db))
	// Output:
	// alone:         46.7 dB → full-image
	// one rival:     -7.0 dB → none
	// two rivals:    -8.8 dB → none
}
