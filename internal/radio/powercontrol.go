package radio

import (
	"math"
	"sort"
)

// Tier is the modality level a client's uplink SIR supports.  The base
// station sets SIR thresholds for text description only, text plus
// base-image sketch, and the full image description, and forwards the
// richest tier the received SIR admits.
type Tier int

// Tiers in increasing richness.
const (
	// TierNone: the SIR supports no reliable reception.
	TierNone Tier = iota
	// TierText: text description only.
	TierText
	// TierSketch: text plus the base-image sketch.
	TierSketch
	// TierImage: the full image description.
	TierImage
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierText:
		return "text"
	case TierSketch:
		return "text+sketch"
	case TierImage:
		return "full-image"
	default:
		return "tier(?)"
	}
}

// Thresholds are the SIR levels (dB) gating each tier.
type Thresholds struct {
	TextDB   float64 `json:"text_db"`   // minimum SIR for text
	SketchDB float64 `json:"sketch_db"` // minimum SIR for text + sketch
	ImageDB  float64 `json:"image_db"`  // minimum SIR for the full image
}

// DefaultThresholds are the reproduction's standard tiers: the paper
// mentions an image threshold around 4 dB.
func DefaultThresholds() Thresholds {
	return Thresholds{TextDB: -6, SketchDB: 0, ImageDB: 4}
}

// TierFor maps a received SIR (dB) to the richest admissible tier.
func (th Thresholds) TierFor(sirDB float64) Tier {
	switch {
	case sirDB >= th.ImageDB:
		return TierImage
	case sirDB >= th.SketchDB:
		return TierSketch
	case sirDB >= th.TextDB:
		return TierText
	default:
		return TierNone
	}
}

// ScaleAllPowers multiplies every client's transmit power by factor
// (>0).  With power-proportional noise and no noise floor this leaves
// every SIR unchanged while reducing energy — the Goodman–Mandayam
// observation the base station exploits to conserve client batteries.
func (c *Channel) ScaleAllPowers(factor float64) error {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return ErrBadParam
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Power *= factor
	}
	return nil
}

// PowerControlStep runs one iteration of distributed target-SIR power
// control (Foschini–Miljanic): each client multiplies its power by
// target/current, clamped to [minPower, maxPower].  The base station
// issues these adjustments; a client above target reduces power
// (conserving battery and lowering interference for everyone else),
// one below target raises it.  Returns the per-client powers applied.
func (c *Channel) PowerControlStep(targetDB, minPower, maxPower float64) (map[string]float64, error) {
	if minPower <= 0 || maxPower < minPower {
		return nil, ErrBadParam
	}
	target := math.Pow(10, targetDB/10)

	c.mu.Lock()
	defer c.mu.Unlock()
	// Compute all SIRs against the *current* power vector first, then
	// apply updates synchronously (the standard parallel iteration).
	type upd struct {
		cl  *Client
		sir float64
	}
	updates := make([]upd, 0, len(c.clients))
	for _, cl := range c.clients {
		signal := cl.Power * c.gainLocked(cl)
		var interference float64
		for _, other := range c.clients {
			if other.ID != cl.ID {
				interference += other.Power * c.gainLocked(other)
			}
		}
		noise := c.params.NoiseFloor + cl.Power/math.Pow(10, c.params.NoiseExp)
		updates = append(updates, upd{cl, signal / (interference + noise)})
	}
	out := make(map[string]float64, len(updates))
	for _, u := range updates {
		p := u.cl.Power * target / u.sir
		if p < minPower {
			p = minPower
		}
		if p > maxPower {
			p = maxPower
		}
		u.cl.Power = p
		out[u.cl.ID] = p
	}
	return out, nil
}

// Utility computes the Goodman–Mandayam style utility for a client:
// throughput-per-watt, modeled as efficiency(SIR)·R / P where the
// efficiency function f(γ) = (1 − e^{−γ/2})^M approximates the frame
// success rate for M-bit frames.
func (c *Channel) Utility(id string, frameBits int, rateBps float64) (float64, error) {
	sir, err := c.SIR(id)
	if err != nil {
		return 0, err
	}
	cl, err := c.Get(id)
	if err != nil {
		return 0, err
	}
	if frameBits < 1 {
		frameBits = 80
	}
	eff := math.Pow(1-math.Exp(-sir/2), float64(frameBits))
	return eff * rateBps / cl.Power, nil
}

// AdmissionLimit estimates the maximum number of equal clients (same
// distance d, same power p) that can sustain at least minSIRdB: beyond
// this, no transformation or change of distance, power or modality
// improves performance noticeably — the session's upper size limit
// from the paper's Fig 10 discussion.
func (c *Channel) AdmissionLimit(d, p, minSIRdB float64) int {
	params := c.Params()
	dd := d
	if dd < params.MinDistance {
		dd = params.MinDistance
	}
	g := params.RefGain * math.Pow(dd, -params.PathLossExponent)
	noise := params.NoiseFloor + p/math.Pow(10, params.NoiseExp)
	minSIR := math.Pow(10, minSIRdB/10)
	// SIR with n equal clients: pg / ((n-1)pg + noise) >= minSIR
	// → n <= 1 + (pg/minSIR - noise)/pg.
	pg := p * g
	if pg <= 0 {
		return 0
	}
	n := 1 + (pg/minSIR-noise)/pg
	if n < 0 {
		return 0
	}
	return int(n)
}

// SortedSIRs returns (id, sirDB) pairs sorted by descending SIR — the
// base station's view of who can receive what.
func (c *Channel) SortedSIRs() []struct {
	ID    string
	SIRdB float64
} {
	all := c.AllSIRdB()
	out := make([]struct {
		ID    string
		SIRdB float64
	}, 0, len(all))
	for id, db := range all {
		out = append(out, struct {
			ID    string
			SIRdB float64
		}{id, db})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SIRdB != out[j].SIRdB {
			return out[i].SIRdB > out[j].SIRdB
		}
		return out[i].ID < out[j].ID
	})
	return out
}
