package radio

import (
	"errors"
	"math"
	"testing"
)

func TestBatteryBasics(t *testing.T) {
	c := NewChannel(Params{})
	c.Join("a", 50, 2)

	// Mains powered until a battery is assigned.
	j, ok, err := c.Battery("a")
	if err != nil || ok || j != 0 {
		t.Errorf("mains: %g %v %v", j, ok, err)
	}
	if lt, err := c.Lifetime("a"); err != nil || !math.IsInf(lt, 1) {
		t.Errorf("mains lifetime: %g %v", lt, err)
	}

	if err := c.SetBattery("a", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBattery("ghost", 1); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("unknown client: %v", err)
	}
	if err := c.SetBattery("a", -1); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative battery: %v", err)
	}

	if lt, _ := c.Lifetime("a"); lt != 50 { // 100 J at 2 W
		t.Errorf("lifetime = %g, want 50", lt)
	}

	// Draining consumes P·dt.
	if _, err := c.Drain(10); err != nil {
		t.Fatal(err)
	}
	j, ok, _ = c.Battery("a")
	if !ok || j != 80 {
		t.Errorf("battery after 10s = %g", j)
	}
	if _, err := c.Drain(-1); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative dt: %v", err)
	}
}

func TestBatteryExhaustionSilencesClient(t *testing.T) {
	c := NewChannel(Params{})
	c.Join("loud", 50, 2)
	c.Join("victim", 60, 1)
	c.SetBattery("loud", 10) // 5 seconds at 2 W

	sirBefore, _ := c.SIR("victim")
	emptied, err := c.Drain(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(emptied) != 1 || emptied[0] != "loud" {
		t.Fatalf("emptied: %v", emptied)
	}
	cl, _ := c.Get("loud")
	if cl.Power >= 1e-6 {
		t.Errorf("exhausted client power = %g", cl.Power)
	}
	// The victim's SIR improves dramatically once the interferer dies.
	sirAfter, _ := c.SIR("victim")
	if sirAfter <= sirBefore*10 {
		t.Errorf("victim SIR %g -> %g: interferer not silenced", sirBefore, sirAfter)
	}
	// A second drain does not re-empty.
	emptied, _ = c.Drain(1)
	if len(emptied) != 0 {
		t.Errorf("re-emptied: %v", emptied)
	}
}

// TestPowerControlExtendsBatteryLife quantifies the paper's battery
// claim: with the uniform scale-down (SIR-preserving) the same battery
// sustains transmission proportionally longer.
func TestPowerControlExtendsBatteryLife(t *testing.T) {
	lifetime := func(scale float64) float64 {
		c := NewChannel(Params{})
		c.Join("a", 50, 2)
		c.Join("b", 70, 2)
		c.SetBattery("a", 100)
		c.SetBattery("b", 100)
		if scale != 1 {
			if err := c.ScaleAllPowers(scale); err != nil {
				t.Fatal(err)
			}
		}
		// SIR must be unchanged by the scaling (the no-free-lunch check).
		steps := 0.0
		for {
			emptied, err := c.Drain(1)
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if len(emptied) > 0 {
				return steps
			}
			if steps > 1000 {
				t.Fatal("battery never emptied")
			}
		}
	}
	full := lifetime(1)
	halved := lifetime(0.5)
	if halved < full*1.8 {
		t.Errorf("lifetime at half power = %g steps vs %g: expected ~2x", halved, full)
	}
}
