package wavelet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"math"
)

// Stream header: magic(4) | W uint16 | H uint16 | levels uint8 |
// maxPlane uint8.  Everything after the header is the embedded
// bit-plane code; any prefix decodes.
var streamMagic = [4]byte{'E', 'Z', 'W', '1'}

const headerLen = 4 + 2 + 2 + 1 + 1

// Codec errors.
var (
	ErrStreamHeader = errors.New("wavelet: bad stream header")
	ErrImageSize    = errors.New("wavelet: image dimensions unsupported")
)

// maxDim bounds W and H (uint16 on the wire).
const maxDim = 1 << 15

// Encode produces the full embedded stream for the image: a
// coarse-to-fine bit-plane code of its wavelet coefficients.  Decoding
// the whole stream is lossless; decoding any prefix is a progressively
// better approximation.  levels ≤ 0 selects the maximum decomposition.
func Encode(im *Image, levels int) ([]byte, error) {
	return EncodeFilter(im, levels, Filter53)
}

// EncodeFilter is Encode with an explicit wavelet filter.  The filter
// choice travels in the stream header, so decoders need no side
// information.
func EncodeFilter(im *Image, levels int, filter Filter) ([]byte, error) {
	if im.W < 1 || im.H < 1 || im.W > maxDim || im.H > maxDim {
		return nil, fmt.Errorf("%w: %dx%d", ErrImageSize, im.W, im.H)
	}
	if filter != Filter53 && filter != FilterHaar {
		return nil, fmt.Errorf("%w: unknown filter %d", ErrImageSize, filter)
	}
	if levels <= 0 {
		levels = MaxLevels(im.W, im.H)
	}
	c := ForwardFilter(im, levels, filter)
	order := c.scanOrder()

	// Highest significant bit plane across all coefficients.
	var maxMag int32
	for _, v := range c.Data {
		m := v
		if m < 0 {
			m = -m
		}
		if m > maxMag {
			maxMag = m
		}
	}
	maxPlane := 0
	for t := maxMag; t > 1; t >>= 1 {
		maxPlane++
	}

	header := make([]byte, headerLen)
	copy(header, streamMagic[:])
	binary.BigEndian.PutUint16(header[4:], uint16(im.W))
	binary.BigEndian.PutUint16(header[6:], uint16(im.H))
	// Levels occupy the low nibble; bit 7 selects the Haar filter.
	header[8] = byte(c.Levels)
	if filter == FilterHaar {
		header[8] |= 0x80
	}
	header[9] = byte(maxPlane)

	w := &bitWriter{}
	significant := make([]bool, len(order))
	// insig holds positions (into order) still insignificant, compacted
	// each plane so zero runs shorten as coefficients become significant.
	insig := make([]int, len(order))
	for i := range insig {
		insig[i] = i
	}
	var refine []int // positions in order, in the order they became significant

	for plane := maxPlane; plane >= 0; plane-- {
		t := int32(1) << uint(plane)

		// Refinement pass: one bit (bit `plane`) per previously
		// significant coefficient.
		for _, pos := range refine {
			mag := c.Data[order[pos]]
			if mag < 0 {
				mag = -mag
			}
			w.writeBit(int(mag >> uint(plane) & 1))
		}

		// Significance pass with gamma-coded zero runs.
		newSig := refine[len(refine):]
		pos := 0
		for pos < len(insig) {
			// Find the next coefficient crossing the threshold.
			q := pos
			for q < len(insig) {
				mag := c.Data[order[insig[q]]]
				if mag < 0 {
					mag = -mag
				}
				if mag >= t {
					break
				}
				q++
			}
			if q == len(insig) {
				w.writeGamma(uint32(len(insig) - pos + 1)) // run to end
				break
			}
			w.writeGamma(uint32(q - pos + 1))
			if c.Data[order[insig[q]]] < 0 {
				w.writeBit(1)
			} else {
				w.writeBit(0)
			}
			significant[insig[q]] = true
			newSig = append(newSig, insig[q])
			pos = q + 1
		}
		refine = append(refine, newSig...)

		// Compact the insignificant list.
		keep := insig[:0]
		for _, p := range insig {
			if !significant[p] {
				keep = append(keep, p)
			}
		}
		insig = keep
	}
	return append(header, w.bytes()...), nil
}

// DecodeResult is a progressive decode outcome.
type DecodeResult struct {
	// Image is the reconstruction (clamped to 8-bit range).
	Image *Image
	// BitsUsed counts code bits actually consumed (excluding header).
	BitsUsed int
	// Lossless reports whether the full stream was present (bit plane 0
	// completed), making the reconstruction exact.
	Lossless bool
	// PlanesDecoded counts fully decoded bit planes.
	PlanesDecoded int
}

// Decode reconstructs an image from a (possibly truncated) prefix of
// an Encode stream, clamping pixels to the 8-bit display range.  At
// minimum the header must be present.
func Decode(stream []byte) (*DecodeResult, error) {
	return decode(stream, true)
}

// DecodeSigned is Decode without the 8-bit clamp, for planes whose
// sample range is signed (the chroma planes of a color stream).
func DecodeSigned(stream []byte) (*DecodeResult, error) {
	return decode(stream, false)
}

func decode(stream []byte, clamp bool) (*DecodeResult, error) {
	if len(stream) < headerLen {
		return nil, ErrStreamHeader
	}
	if [4]byte(stream[:4]) != streamMagic {
		return nil, ErrStreamHeader
	}
	w := int(binary.BigEndian.Uint16(stream[4:]))
	h := int(binary.BigEndian.Uint16(stream[6:]))
	filter := Filter53
	if stream[8]&0x80 != 0 {
		filter = FilterHaar
	}
	levels := int(stream[8] &^ 0x80)
	maxPlane := int(stream[9])
	if w < 1 || h < 1 || w > maxDim || h > maxDim || levels > 8 || maxPlane > 31 {
		return nil, ErrStreamHeader
	}
	if levels > MaxLevels(w, h) {
		return nil, ErrStreamHeader
	}

	c := &Coeffs{W: w, H: h, Levels: levels, Filter: filter, Data: make([]int32, w*h)}
	order := c.scanOrder()
	r := &bitReader{buf: stream[headerLen:]}

	mag := make([]int32, len(order)) // known magnitude bits
	sign := make([]int8, len(order)) // -1, +1, or 0 (insignificant)
	significant := make([]bool, len(order))
	insig := make([]int, len(order))
	for i := range insig {
		insig[i] = i
	}
	var refine []int

	planesDone := 0
	lastPlane := maxPlane
	truncated := false

decode:
	for plane := maxPlane; plane >= 0; plane-- {
		lastPlane = plane
		t := int32(1) << uint(plane)

		for _, pos := range refine {
			b, err := r.readBit()
			if err != nil {
				truncated = true
				break decode
			}
			if b == 1 {
				mag[pos] |= t
			}
		}

		newSig := refine[len(refine):]
		pos := 0
		for pos < len(insig) {
			run, err := r.readGamma()
			if err != nil {
				truncated = true
				break decode
			}
			pos += int(run) - 1
			if pos >= len(insig) {
				break // run to end of pass
			}
			sb, err := r.readBit()
			if err != nil {
				truncated = true
				break decode
			}
			p := insig[pos]
			mag[p] = t
			if sb == 1 {
				sign[p] = -1
			} else {
				sign[p] = 1
			}
			significant[p] = true
			newSig = append(newSig, p)
			pos++
		}
		refine = append(refine, newSig...)

		keep := insig[:0]
		for _, p := range insig {
			if !significant[p] {
				keep = append(keep, p)
			}
		}
		insig = keep
		planesDone++
	}

	// Reconstruct: significant coefficients get the midpoint of their
	// remaining uncertainty interval unless the stream was complete.
	half := int32(0)
	if truncated || lastPlane > 0 {
		half = (int32(1) << uint(lastPlane)) >> 1
	}
	for i, p := range order {
		if sign[i] == 0 {
			continue
		}
		v := mag[i] + half
		if sign[i] < 0 {
			v = -v
		}
		c.Data[p] = v
	}

	im := Inverse(c)
	if clamp {
		im.Clamp8()
	}
	return &DecodeResult{
		Image:         im,
		BitsUsed:      r.pos,
		Lossless:      !truncated && lastPlane == 0,
		PlanesDecoded: planesDone,
	}, nil
}

// Metrics quantifies a coded representation of an image.
type Metrics struct {
	// Bytes is the coded size in bytes.
	Bytes int
	// BPP is bits per pixel of the coded representation.
	BPP float64
	// CompressionRatio is original (8 bpp) size over coded size.
	CompressionRatio float64
	// PSNR is reconstruction quality in dB (+Inf when lossless).
	PSNR float64
}

// MeasurePrefix decodes the first n bytes of stream (clamped to at
// least the header and at most the whole stream) against the original
// image and reports rate/quality metrics.
func MeasurePrefix(original *Image, stream []byte, n int) (Metrics, error) {
	if n < headerLen {
		n = headerLen
	}
	if n > len(stream) {
		n = len(stream)
	}
	res, err := Decode(stream[:n])
	if err != nil {
		return Metrics{}, err
	}
	psnr, err := PSNR(original, res.Image)
	if err != nil {
		return Metrics{}, err
	}
	pixels := float64(original.W * original.H)
	codeBytes := n
	bpp := float64(codeBytes*8) / pixels
	cr := math.Inf(1)
	if codeBytes > 0 {
		cr = pixels * 8 / float64(codeBytes*8)
	}
	return Metrics{Bytes: codeBytes, BPP: bpp, CompressionRatio: cr, PSNR: psnr}, nil
}
