package wavelet

// The integer Haar wavelet (S-transform), the second reversible filter
// offered by the coder.  It is cheaper than the 5/3 filter and has no
// inter-coefficient prediction, which makes it preferable for already
// blocky content (whiteboard rasters, document scans); the 5/3 filter
// wins on smooth imagery.

// Filter selects the lifting kernel used by the transform and coder.
type Filter uint8

// Available filters.
const (
	// Filter53 is the LeGall 5/3 integer lifting filter (default).
	Filter53 Filter = iota
	// FilterHaar is the integer Haar / S-transform.
	FilterHaar
)

// String names the filter.
func (f Filter) String() string {
	switch f {
	case Filter53:
		return "5/3"
	case FilterHaar:
		return "haar"
	default:
		return "filter(?)"
	}
}

// fwdHaar1d: s[i] = floor((x[2i] + x[2i+1]) / 2), d[i] = x[2i] - x[2i+1].
// Odd-length signals pass the last sample through as a low coefficient.
func fwdHaar1d(x, out []int32) {
	n := len(x)
	if n == 1 {
		out[0] = x[0]
		return
	}
	half := (n + 1) / 2
	nd := n / 2
	lo, hi := out[:half], out[half:half+nd]
	for i := 0; i < nd; i++ {
		a, b := x[2*i], x[2*i+1]
		hi[i] = a - b
		lo[i] = b + (hi[i] >> 1) // == floor((a+b)/2), exactly invertible
	}
	if n%2 == 1 {
		lo[half-1] = x[n-1]
	}
}

// invHaar1d inverts fwdHaar1d.
func invHaar1d(c, out []int32) {
	n := len(c)
	if n == 1 {
		out[0] = c[0]
		return
	}
	half := (n + 1) / 2
	nd := n / 2
	lo, hi := c[:half], c[half:half+nd]
	for i := 0; i < nd; i++ {
		b := lo[i] - (hi[i] >> 1)
		out[2*i+1] = b
		out[2*i] = b + hi[i]
	}
	if n%2 == 1 {
		out[n-1] = lo[half-1]
	}
}

// kernels returns the forward and inverse 1-D kernels for a filter.
func (f Filter) kernels() (fwd, inv func(x, out []int32)) {
	if f == FilterHaar {
		return fwdHaar1d, invHaar1d
	}
	return fwd1d, inv1d
}

// ForwardFilter computes a levels-deep 2-D transform with the chosen
// filter.  Forward(im, levels) is ForwardFilter(im, levels, Filter53).
func ForwardFilter(im *Image, levels int, filter Filter) *Coeffs {
	if max := MaxLevels(im.W, im.H); levels > max {
		levels = max
	}
	if levels < 0 {
		levels = 0
	}
	fwd, _ := filter.kernels()
	c := &Coeffs{W: im.W, H: im.H, Levels: levels, Filter: filter,
		Data: append([]int32(nil), im.Pix...)}

	w, h := im.W, im.H
	rowIn := make([]int32, im.W)
	rowOut := make([]int32, im.W)
	colIn := make([]int32, im.H)
	colOut := make([]int32, im.H)
	for lv := 0; lv < levels; lv++ {
		for y := 0; y < h; y++ {
			base := y * im.W
			copy(rowIn[:w], c.Data[base:base+w])
			fwd(rowIn[:w], rowOut[:w])
			copy(c.Data[base:base+w], rowOut[:w])
		}
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				colIn[y] = c.Data[y*im.W+x]
			}
			fwd(colIn[:h], colOut[:h])
			for y := 0; y < h; y++ {
				c.Data[y*im.W+x] = colOut[y]
			}
		}
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return c
}
