package wavelet

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeLossless(t *testing.T) {
	images := map[string]*Image{
		"gradient": Gradient(64, 64),
		"circles":  Circles(64, 64),
		"blocks":   Blocks(48, 48, 8, 1),
		"medical":  Medical(64, 64, 2),
		"noise":    Noise(32, 32, 3),
		"flat":     NewImage(16, 16),
		"odd":      Circles(37, 29),
	}
	for name, im := range images {
		stream, err := Encode(im, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Decode(stream)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Lossless {
			t.Errorf("%s: full stream not flagged lossless", name)
		}
		if !res.Image.Equal(im) {
			t.Errorf("%s: full decode differs from original", name)
		}
	}
}

func TestEncodeCompresses(t *testing.T) {
	// Structured content must compress well below 8 bpp losslessly.
	im := Blocks(128, 128, 16, 7)
	stream, err := Encode(im, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := im.W * im.H // 1 byte per pixel
	if len(stream) >= raw {
		t.Errorf("lossless stream %d B >= raw %d B for blocky content", len(stream), raw)
	}
}

func TestProgressiveQualityMonotone(t *testing.T) {
	im := Medical(96, 96, 5)
	stream, err := Encode(im, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prevPSNR float64
	fractions := []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0}
	for i, f := range fractions {
		n := int(float64(len(stream)) * f)
		m, err := MeasurePrefix(im, stream, n)
		if err != nil {
			t.Fatalf("prefix %g: %v", f, err)
		}
		if i > 0 && m.PSNR+0.5 < prevPSNR { // tiny tolerance for mid-plane cuts
			t.Errorf("PSNR not monotone: %.2f dB at %g after %.2f dB", m.PSNR, f, prevPSNR)
		}
		prevPSNR = m.PSNR
	}
	// The full prefix must be lossless (infinite PSNR).
	m, _ := MeasurePrefix(im, stream, len(stream))
	if !isInf(m.PSNR) {
		t.Errorf("full prefix PSNR = %g, want +Inf", m.PSNR)
	}
}

func TestPrefixMetricsShape(t *testing.T) {
	// More bytes → higher BPP, lower compression ratio: the exact
	// relationship the Fig 6/7 experiments plot.
	im := Circles(128, 128)
	stream, _ := Encode(im, 0)
	var prev Metrics
	for i, f := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		m, err := MeasurePrefix(im, stream, int(float64(len(stream))*f))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if m.BPP <= prev.BPP {
				t.Errorf("BPP not increasing: %g after %g", m.BPP, prev.BPP)
			}
			if m.CompressionRatio >= prev.CompressionRatio {
				t.Errorf("CR not decreasing: %g after %g", m.CompressionRatio, prev.CompressionRatio)
			}
		}
		prev = m
	}
}

func TestDecodeTruncationsNeverPanic(t *testing.T) {
	im := Medical(48, 48, 9)
	stream, _ := Encode(im, 0)
	for n := 0; n <= len(stream); n++ {
		res, err := Decode(stream[:n])
		if n < headerLen {
			if !errors.Is(err, ErrStreamHeader) {
				t.Fatalf("truncation %d: %v", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("truncation %d: %v", n, err)
		}
		if res.Image.W != im.W || res.Image.H != im.H {
			t.Fatalf("truncation %d: bad dimensions", n)
		}
	}
}

func TestDecodeHeaderValidation(t *testing.T) {
	im := Gradient(8, 8)
	stream, _ := Encode(im, 0)

	bad := append([]byte(nil), stream...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrStreamHeader) {
		t.Errorf("bad magic: %v", err)
	}

	bad = append([]byte(nil), stream...)
	bad[4], bad[5] = 0, 0 // W = 0
	if _, err := Decode(bad); !errors.Is(err, ErrStreamHeader) {
		t.Errorf("zero width: %v", err)
	}

	bad = append([]byte(nil), stream...)
	bad[8] = 9 // levels > 8
	if _, err := Decode(bad); !errors.Is(err, ErrStreamHeader) {
		t.Errorf("levels: %v", err)
	}

	bad = append([]byte(nil), stream...)
	bad[8] = 7 // more levels than 8x8 supports
	if _, err := Decode(bad); !errors.Is(err, ErrStreamHeader) {
		t.Errorf("levels vs size: %v", err)
	}

	bad = append([]byte(nil), stream...)
	bad[9] = 40 // maxPlane > 31
	if _, err := Decode(bad); !errors.Is(err, ErrStreamHeader) {
		t.Errorf("maxPlane: %v", err)
	}

	if _, err := Encode(NewImage(1, 1), 0); err != nil {
		t.Errorf("1x1 encode: %v", err)
	}
}

// TestQuickCodecLossless: arbitrary images round-trip exactly through
// the full embedded stream.
func TestQuickCodecLossless(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(40)
		h := 1 + r.Intn(40)
		im := NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = int32(r.Intn(256))
		}
		stream, err := Encode(im, r.Intn(5))
		if err != nil {
			return false
		}
		res, err := Decode(stream)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return res.Lossless && res.Image.Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruncatedDecodeSafe: random prefixes of valid streams (and
// random corruptions of the body) decode without panicking and yield
// correctly sized images.
func TestQuickTruncatedDecodeSafe(t *testing.T) {
	im := Circles(32, 32)
	stream, _ := Encode(im, 0)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		frame := append([]byte(nil), stream[:headerLen+r.Intn(len(stream)-headerLen+1)]...)
		if len(frame) > headerLen && r.Intn(2) == 0 {
			frame[headerLen+r.Intn(len(frame)-headerLen)] ^= byte(1 + r.Intn(255))
		}
		res, err := Decode(frame)
		if err != nil {
			return true // rejected is fine; panicking is not
		}
		return res.Image.W == 32 && res.Image.H == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitIO(t *testing.T) {
	w := &bitWriter{}
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.writeBit(b)
	}
	if w.bitLen() != len(bits) {
		t.Errorf("bitLen = %d", w.bitLen())
	}
	r := &bitReader{buf: w.bytes()}
	for i, want := range bits {
		got, err := r.readBit()
		if err != nil || got != want {
			t.Fatalf("bit %d: %d, %v", i, got, err)
		}
	}

	// Gamma round trip.
	w = &bitWriter{}
	vals := []uint32{1, 2, 3, 4, 5, 100, 1000, 1 << 20, 1<<31 - 1}
	for _, v := range vals {
		w.writeGamma(v)
	}
	r = &bitReader{buf: w.bytes()}
	for _, want := range vals {
		got, err := r.readGamma()
		if err != nil || got != want {
			t.Fatalf("gamma %d: %d, %v", want, got, err)
		}
	}

	// Reading past the end errors.
	r = &bitReader{buf: nil}
	if _, err := r.readBit(); err == nil {
		t.Error("read past end should error")
	}
	if _, err := r.readGamma(); err == nil {
		t.Error("gamma past end should error")
	}
	// All-zero buffer: gamma sees >31 zeros and gives up.
	r = &bitReader{buf: make([]byte, 8)}
	if _, err := r.readGamma(); err == nil {
		t.Error("gamma over zeros should error")
	}

	defer func() {
		if recover() == nil {
			t.Error("writeGamma(0) should panic")
		}
	}()
	(&bitWriter{}).writeGamma(0)
}

func TestSketch(t *testing.T) {
	im := Medical(512, 512, 4)
	s := ExtractSketch(im, "chest scan, lesion upper-left quadrant")
	if s.W > SketchMaxDim || s.H > SketchMaxDim {
		t.Fatalf("sketch raster %dx%d too large", s.W, s.H)
	}
	if s.EdgeCount() == 0 {
		t.Fatal("medical image should have edges")
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// The headline claim: the sketch is orders of magnitude smaller
	// than the original (paper: up to 2000×; we require ≥ 500× for the
	// 512×512 corpus with its verbal tag included).
	ratio := float64(im.W*im.H) / float64(len(data))
	if ratio < 500 {
		t.Errorf("sketch ratio = %.0fx (sketch %d B), want >= 500x", ratio, len(data))
	}

	got, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != s.W || got.H != s.H || got.Description != s.Description {
		t.Errorf("round trip header: %+v", got)
	}
	for i := range s.Edges {
		if got.Edges[i] != s.Edges[i] {
			t.Fatalf("edge bitmap differs at %d", i)
		}
	}

	r := s.Render(64, 64)
	if r.W != 64 || r.H != 64 {
		t.Error("render size")
	}

	// Flat image: no edges, still valid.
	flat := ExtractSketch(NewImage(100, 100), "")
	if flat.EdgeCount() != 0 {
		t.Error("flat image should have no edges")
	}
	d2, err := flat.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSketch(d2)
	if err != nil || back.EdgeCount() != 0 {
		t.Errorf("flat round trip: %v", err)
	}

	// Malformed inputs.
	for _, bad := range [][]byte{nil, []byte("SK01"), []byte("XX01\x04\x04\x00\x00")} {
		if _, err := UnmarshalSketch(bad); err == nil {
			t.Errorf("bad sketch %q decoded", bad)
		}
	}
	if _, err := (&Sketch{W: 300, H: 1}).Marshal(); err == nil {
		t.Error("oversized sketch should fail to marshal")
	}
	if _, err := (&Sketch{W: 2, H: 2, Edges: make([]bool, 3)}).Marshal(); err == nil {
		t.Error("wrong bitmap size should fail")
	}
	if _, err := (&Sketch{W: 2, H: 2, Edges: make([]bool, 4), Description: strings.Repeat("x", 1<<16)}).Marshal(); err == nil {
		t.Error("oversized description should fail")
	}
}

// TestQuickSketchRoundTrip: random bitmaps survive marshal/unmarshal.
func TestQuickSketchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(32)
		h := 1 + r.Intn(32)
		s := &Sketch{W: w, H: h, Edges: make([]bool, w*h), Description: randDesc(r)}
		for i := range s.Edges {
			s.Edges[i] = r.Intn(3) == 0
		}
		data, err := s.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalSketch(data)
		if err != nil || got.W != w || got.H != h || got.Description != s.Description {
			return false
		}
		for i := range s.Edges {
			if got.Edges[i] != s.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randDesc(r *rand.Rand) string {
	b := make([]byte, r.Intn(40))
	for i := range b {
		b[i] = byte(32 + r.Intn(95))
	}
	return string(b)
}
