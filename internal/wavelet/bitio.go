package wavelet

import "io"

// bitWriter accumulates bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint8
}

func (w *bitWriter) writeBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// writeGamma emits v >= 1 in Elias gamma code: floor(log2 v) zeros,
// then the binary representation of v.
func (w *bitWriter) writeGamma(v uint32) {
	if v == 0 {
		panic("wavelet: gamma code requires v >= 1")
	}
	nbits := 0
	for t := v; t > 1; t >>= 1 {
		nbits++
	}
	for i := 0; i < nbits; i++ {
		w.writeBit(0)
	}
	for i := nbits; i >= 0; i-- {
		w.writeBit(int(v >> uint(i) & 1))
	}
}

// bytes flushes any partial byte (zero-padded) and returns the stream.
func (w *bitWriter) bytes() []byte {
	out := w.buf
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// bitLen returns the number of bits written so far.
func (w *bitWriter) bitLen() int { return len(w.buf)*8 + int(w.nCur) }

// bitReader consumes bits MSB-first from a byte slice.  Reads past the
// end return io.ErrUnexpectedEOF, which the progressive decoder treats
// as "stream truncated here".
type bitReader struct {
	buf []byte
	pos int // bit position
}

func (r *bitReader) readBit() (int, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	bit := int(r.buf[byteIdx] >> (7 - uint(r.pos&7)) & 1)
	r.pos++
	return bit, nil
}

// readGamma decodes one Elias gamma value.
func (r *bitReader) readGamma() (uint32, error) {
	zeros := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 31 {
			return 0, io.ErrUnexpectedEOF // corrupt; treat as truncation
		}
	}
	v := uint32(1)
	for i := 0; i < zeros; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}
