package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFwdInv1D(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 17, 100, 101} {
		x := make([]int32, n)
		for i := range x {
			x[i] = int32((i*37 + 11) % 256)
		}
		c := make([]int32, n)
		fwd1d(x, c)
		y := make([]int32, n)
		inv1d(c, y)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("n=%d: perfect reconstruction failed at %d: %d != %d", n, i, y[i], x[i])
			}
		}
	}
}

func TestMaxLevels(t *testing.T) {
	cases := []struct {
		w, h, want int
	}{
		{1, 1, 0},
		{2, 2, 1},
		{4, 4, 2},
		{3, 8, 2}, // limited by the narrow dimension: 3→2 (level 1), 2→1 (level 2)
		{256, 256, 8},
		{1024, 1024, 8}, // capped at 8
		{1, 100, 0},
	}
	for _, tc := range cases {
		if got := MaxLevels(tc.w, tc.h); got != tc.want {
			t.Errorf("MaxLevels(%d, %d) = %d, want %d", tc.w, tc.h, got, tc.want)
		}
	}
}

func TestForwardInverse2D(t *testing.T) {
	images := map[string]*Image{
		"gradient":  Gradient(64, 64),
		"circles":   Circles(48, 32),
		"blocks":    Blocks(33, 31, 8, 1),
		"noise":     Noise(17, 23, 2),
		"medical":   Medical(40, 56, 3),
		"tiny":      Gradient(2, 2),
		"one-pixel": Gradient(1, 1),
		"row":       Gradient(64, 1),
		"column":    Gradient(1, 64),
	}
	for name, im := range images {
		for _, levels := range []int{0, 1, 3, 99} {
			c := Forward(im, levels)
			back := Inverse(c)
			if !im.Equal(back) {
				t.Errorf("%s (levels=%d): reconstruction differs", name, levels)
			}
		}
	}
}

func TestScanOrderIsPermutation(t *testing.T) {
	for _, size := range [][2]int{{8, 8}, {7, 5}, {33, 17}, {1, 1}, {2, 3}} {
		im := Gradient(size[0], size[1])
		c := Forward(im, MaxLevels(size[0], size[1]))
		order := c.scanOrder()
		if len(order) != size[0]*size[1] {
			t.Fatalf("%v: scan order has %d entries, want %d", size, len(order), size[0]*size[1])
		}
		seen := make([]bool, len(order))
		for _, idx := range order {
			if idx < 0 || idx >= len(seen) || seen[idx] {
				t.Fatalf("%v: scan order not a permutation (index %d)", size, idx)
			}
			seen[idx] = true
		}
	}
}

func TestScanOrderCoarseFirst(t *testing.T) {
	// The first entries must cover the deepest LL band (top-left block).
	im := Gradient(64, 64)
	c := Forward(im, 3)
	order := c.scanOrder()
	llW, llH := 8, 8 // 64 >> 3
	for i := 0; i < llW*llH; i++ {
		x, y := order[i]%64, order[i]/64
		if x >= llW || y >= llH {
			t.Fatalf("scan position %d = (%d,%d) outside deepest LL %dx%d", i, x, y, llW, llH)
		}
	}
}

// TestQuickPerfectReconstruction: arbitrary images at arbitrary sizes
// and levels reconstruct exactly.
func TestQuickPerfectReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(70)
		h := 1 + r.Intn(70)
		im := NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = int32(r.Intn(256))
		}
		levels := r.Intn(MaxLevels(w, h) + 1)
		back := Inverse(Forward(im, levels))
		return im.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuick1DReconstruction: the 1-D lifting kernel is exactly
// invertible for arbitrary signals, including extreme values.
func TestQuick1DReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		x := make([]int32, n)
		for i := range x {
			x[i] = int32(r.Intn(1<<16)) - 1<<15
		}
		c := make([]int32, n)
		y := make([]int32, n)
		fwd1d(x, c)
		inv1d(c, y)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestImageHelpers(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 300)
	im.Set(1, 2, -5)
	if im.At(2, 1) != 300 {
		t.Error("At/Set")
	}
	c := im.Clone()
	c.Set(0, 0, 9)
	if im.At(0, 0) == 9 {
		t.Error("Clone shares pixels")
	}
	im.Clamp8()
	if im.At(2, 1) != 255 || im.At(1, 2) != 0 {
		t.Error("Clamp8")
	}

	a, b := Gradient(8, 8), Gradient(8, 8)
	if mse, err := MSE(a, b); err != nil || mse != 0 {
		t.Errorf("MSE identical = %g, %v", mse, err)
	}
	if p, err := PSNR(a, b); err != nil || !isInf(p) {
		t.Errorf("PSNR identical = %g, %v", p, err)
	}
	b.Set(0, 0, b.At(0, 0)+10)
	p, err := PSNR(a, b)
	if err != nil || isInf(p) || p <= 0 {
		t.Errorf("PSNR perturbed = %g, %v", p, err)
	}
	if _, err := MSE(a, Gradient(4, 4)); err == nil {
		t.Error("MSE size mismatch should error")
	}

	defer func() {
		if recover() == nil {
			t.Error("NewImage(0,0) should panic")
		}
	}()
	NewImage(0, 0)
}

func isInf(f float64) bool { return f > 1e308 }
