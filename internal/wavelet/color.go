package wavelet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Color support: the paper's Figure 3 negotiates over color video (a
// B/W-only client rejects it; a color-capable one accepts).  The coder
// extends to color with the reversible YCoCg-R transform: luma is
// coded first, then the two chroma planes, so a truncated color stream
// degrades toward grayscale before it degrades in resolution.

// ColorImage is an RGB raster with 8-bit nominal channels.
type ColorImage struct {
	W, H    int
	R, G, B []int32
}

// NewColorImage allocates a zero color image.
func NewColorImage(w, h int) *ColorImage {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("wavelet: invalid image size %dx%d", w, h))
	}
	n := w * h
	return &ColorImage{W: w, H: h, R: make([]int32, n), G: make([]int32, n), B: make([]int32, n)}
}

// SetRGB writes one pixel.
func (c *ColorImage) SetRGB(x, y int, r, g, b int32) {
	i := y*c.W + x
	c.R[i], c.G[i], c.B[i] = r, g, b
}

// AtRGB reads one pixel.
func (c *ColorImage) AtRGB(x, y int) (r, g, b int32) {
	i := y*c.W + x
	return c.R[i], c.G[i], c.B[i]
}

// Equal reports pixel-exact equality.
func (c *ColorImage) Equal(o *ColorImage) bool {
	if c.W != o.W || c.H != o.H {
		return false
	}
	for i := range c.R {
		if c.R[i] != o.R[i] || c.G[i] != o.G[i] || c.B[i] != o.B[i] {
			return false
		}
	}
	return true
}

// YCoCg converts to the reversible YCoCg-R representation: three
// same-sized planes (luma, orange chroma, green chroma).
func (c *ColorImage) YCoCg() (y, co, cg *Image) {
	y = NewImage(c.W, c.H)
	co = NewImage(c.W, c.H)
	cg = NewImage(c.W, c.H)
	for i := range c.R {
		r, g, b := c.R[i], c.G[i], c.B[i]
		coV := r - b
		tmp := b + (coV >> 1)
		cgV := g - tmp
		yV := tmp + (cgV >> 1)
		y.Pix[i], co.Pix[i], cg.Pix[i] = yV, coV, cgV
	}
	return y, co, cg
}

// FromYCoCg inverts YCoCg exactly.
func FromYCoCg(y, co, cg *Image) (*ColorImage, error) {
	if y.W != co.W || y.W != cg.W || y.H != co.H || y.H != cg.H {
		return nil, errors.New("wavelet: YCoCg plane sizes differ")
	}
	out := NewColorImage(y.W, y.H)
	for i := range y.Pix {
		tmp := y.Pix[i] - (cg.Pix[i] >> 1)
		g := cg.Pix[i] + tmp
		b := tmp - (co.Pix[i] >> 1)
		r := b + co.Pix[i]
		out.R[i], out.G[i], out.B[i] = r, g, b
	}
	return out, nil
}

// Luma returns the Y plane alone — the grayscale rendition.
func (c *ColorImage) Luma() *Image {
	y, _, _ := c.YCoCg()
	return y
}

// Color container: magic "EZC1" | 3 × (length u32 | embedded stream),
// plane order Y, Co, Cg.
var colorMagic = [4]byte{'E', 'Z', 'C', '1'}

// ErrColorStream reports a malformed color container.
var ErrColorStream = errors.New("wavelet: bad color stream")

// EncodeColor produces the color embedded stream.  levels ≤ 0 selects
// the maximum decomposition; the filter applies to all three planes.
func EncodeColor(c *ColorImage, levels int, filter Filter) ([]byte, error) {
	y, co, cg := c.YCoCg()
	out := append([]byte(nil), colorMagic[:]...)
	for _, plane := range []*Image{y, co, cg} {
		stream, err := EncodeFilter(plane, levels, filter)
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(stream)))
		out = append(out, stream...)
	}
	return out, nil
}

// ColorDecodeResult is a progressive color decode outcome.
type ColorDecodeResult struct {
	// Image is the reconstruction (channels clamped to 8-bit range).
	Image *ColorImage
	// Lossless reports whether all three planes decoded exactly.
	Lossless bool
	// PlanesPresent counts planes with at least a header in the prefix
	// (missing chroma planes decode as zero → grayscale rendition).
	PlanesPresent int
}

// DecodeColor reconstructs a color image from a (possibly truncated)
// prefix of an EncodeColor stream.  Truncation costs chroma first:
// with only the luma plane present the result is the grayscale
// rendition of the image.
func DecodeColor(stream []byte) (*ColorDecodeResult, error) {
	if len(stream) < 8 || [4]byte(stream[:4]) != colorMagic {
		return nil, ErrColorStream
	}
	off := 4
	planes := make([]*Image, 0, 3)
	lossless := true
	present := 0
	var w, h int
	for p := 0; p < 3; p++ {
		if len(stream) < off+4 {
			break // plane length itself truncated
		}
		n := int(binary.BigEndian.Uint32(stream[off:]))
		off += 4
		end := off + n
		if end > len(stream) {
			end = len(stream)
		}
		res, err := DecodeSigned(stream[off:end])
		if err != nil {
			break // plane header truncated: stop here
		}
		if p == 0 {
			w, h = res.Image.W, res.Image.H
		} else if res.Image.W != w || res.Image.H != h {
			return nil, fmt.Errorf("%w: plane %d is %dx%d", ErrColorStream, p, res.Image.W, res.Image.H)
		}
		planes = append(planes, res.Image)
		present++
		if !res.Lossless {
			lossless = false
		}
		off = end
		if end == len(stream) {
			break
		}
	}
	if present == 0 {
		return nil, ErrColorStream
	}
	lossless = lossless && present == 3
	for len(planes) < 3 {
		planes = append(planes, NewImage(w, h)) // zero chroma = grayscale
	}
	// Chroma planes are signed; only clamp after color reconstruction.
	img, err := FromYCoCg(planes[0], planes[1], planes[2])
	if err != nil {
		return nil, err
	}
	clamp := func(p []int32) {
		for i, v := range p {
			if v < 0 {
				p[i] = 0
			} else if v > 255 {
				p[i] = 255
			}
		}
	}
	clamp(img.R)
	clamp(img.G)
	clamp(img.B)
	return &ColorDecodeResult{Image: img, Lossless: lossless, PlanesPresent: present}, nil
}

// ColorPSNR averages the per-channel PSNR (dB); +Inf when identical.
func ColorPSNR(a, b *ColorImage) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, errors.New("wavelet: ColorPSNR of differently sized images")
	}
	var sum float64
	for _, pair := range [][2][]int32{{a.R, b.R}, {a.G, b.G}, {a.B, b.B}} {
		for i := range pair[0] {
			d := float64(pair[0][i] - pair[1][i])
			sum += d * d
		}
	}
	mse := sum / float64(3*a.W*a.H)
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// ColorScene renders a synthetic color test scene: a sky gradient,
// a textured terrain band and a bright marker region.
func ColorScene(w, h int, seed int64) *ColorImage {
	r := rand.New(rand.NewSource(seed))
	im := NewColorImage(w, h)
	horizon := h * 2 / 3
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if y < horizon {
				f := float64(y) / float64(horizon)
				im.SetRGB(x, y, int32(90+60*f), int32(140+40*f), int32(220-30*f))
			} else {
				n := int32(r.Intn(24))
				im.SetRGB(x, y, 90+n, 70+n, 40+n/2)
			}
		}
	}
	// Marker: a red cross near the center.
	cx, cy := w/2, h/2
	for d := -w / 8; d <= w/8; d++ {
		if x := cx + d; x >= 0 && x < w {
			im.SetRGB(x, cy, 220, 30, 30)
		}
		if y := cy + d; y >= 0 && y < h {
			im.SetRGB(cx, y, 220, 30, 30)
		}
	}
	return im
}
