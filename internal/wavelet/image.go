// Package wavelet implements the progressive image coding module used
// by the information transformer: a 2-D integer 5/3 lifting wavelet
// transform, an embedded (prefix-decodable) bit-plane coder in the
// spirit of zerotree coding [Shapiro 1992; Lamboray 1997], a
// packetizer, and the robust sketch extractor that reduces an image to
// a tiny edge sketch (≈2000× less data) with an attached verbal
// description.
//
// The embedded property is what the QoS framework exploits: any prefix
// of the coded stream decodes to a valid image whose quality grows
// with the prefix length, so the inference engine can bound quality by
// bounding "the number of image packets to be received".
package wavelet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Image is a grayscale image with 8-bit nominal range (values may
// exceed it transiently during processing).
type Image struct {
	W, H int
	Pix  []int32 // row-major, len W*H
}

// NewImage allocates a zero image.
func NewImage(w, h int) *Image {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("wavelet: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]int32, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) int32 { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v int32) { im.Pix[y*im.W+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Clamp8 limits every pixel to [0, 255].
func (im *Image) Clamp8() {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 255 {
			im.Pix[i] = 255
		}
	}
}

// Equal reports pixel-exact equality.
func (im *Image) Equal(o *Image) bool {
	if im.W != o.W || im.H != o.H {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// MSE returns the mean squared error between two same-sized images.
func MSE(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, errors.New("wavelet: MSE of differently sized images")
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i] - b.Pix[i])
		sum += d * d
	}
	return sum / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB for 8-bit images;
// identical images yield +Inf.
func PSNR(a, b *Image) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// --- Synthetic image generators (the reproduction's image corpus) ---

// Gradient renders a diagonal luminance ramp.
func Gradient(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, int32((x+y)*255/(w+h-2+1)))
		}
	}
	return im
}

// Circles renders concentric rings, a classic compression test target
// with strong edges at all orientations.
func Circles(w, h int) *Image {
	im := NewImage(w, h)
	cx, cy := float64(w)/2, float64(h)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			v := 127.5 + 127.5*math.Sin(d/6)
			im.Set(x, y, int32(v))
		}
	}
	return im
}

// Blocks renders a checkerboard of random-intensity tiles (seeded),
// standing in for document/whiteboard content.
func Blocks(w, h, tile int, seed int64) *Image {
	if tile < 1 {
		tile = 8
	}
	r := rand.New(rand.NewSource(seed))
	tilesX := (w + tile - 1) / tile
	tilesY := (h + tile - 1) / tile
	levels := make([]int32, tilesX*tilesY)
	for i := range levels {
		levels[i] = int32(r.Intn(256))
	}
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, levels[(y/tile)*tilesX+(x/tile)])
		}
	}
	return im
}

// Medical renders a synthetic "scan": a bright elliptical region with
// internal texture on a dark background — the telediagnosis workload.
func Medical(w, h int, seed int64) *Image {
	r := rand.New(rand.NewSource(seed))
	im := NewImage(w, h)
	cx, cy := float64(w)/2, float64(h)/2
	rx, ry := float64(w)*0.35, float64(h)*0.42
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			d := dx*dx + dy*dy
			var v float64
			switch {
			case d < 0.55:
				v = 170 + 40*math.Sin(float64(x)/7)*math.Cos(float64(y)/9) + float64(r.Intn(14))
			case d < 1:
				v = 120 + 30*(1-d)
			default:
				v = 18 + float64(r.Intn(8))
			}
			im.Set(x, y, int32(math.Max(0, math.Min(255, v))))
		}
	}
	return im
}

// Noise renders uniform noise (worst case for transform coding).
func Noise(w, h int, seed int64) *Image {
	r := rand.New(rand.NewSource(seed))
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = int32(r.Intn(256))
	}
	return im
}
