package wavelet

// Integer 5/3 (LeGall) lifting wavelet, the reversible transform of
// JPEG 2000.  Both lifting steps use floor division (Go's arithmetic
// shift), so forward followed by inverse reconstructs exactly.

// fwd1d transforms one signal of length n: low-pass coefficients land
// in out[0:ceil(n/2)], high-pass in out[ceil(n/2):n].  x is not
// modified.  n == 1 copies through.
func fwd1d(x, out []int32) {
	n := len(x)
	if n == 1 {
		out[0] = x[0]
		return
	}
	half := (n + 1) / 2 // number of low-pass coefficients
	nd := n / 2         // number of high-pass coefficients
	lo, hi := out[:half], out[half:half+nd]

	// Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2),
	// with symmetric extension x[n] = x[n-2].
	for i := 0; i < nd; i++ {
		left := x[2*i]
		var right int32
		if 2*i+2 < n {
			right = x[2*i+2]
		} else {
			right = x[2*i]
		}
		hi[i] = x[2*i+1] - ((left + right) >> 1)
	}
	// Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4),
	// with symmetric extension d[-1] = d[0], d[nd] = d[nd-1].
	for i := 0; i < half; i++ {
		var dl, dr int32
		if i-1 >= 0 {
			dl = hi[i-1]
		} else {
			dl = hi[0]
		}
		if i < nd {
			dr = hi[i]
		} else {
			dr = hi[nd-1]
		}
		lo[i] = x[2*i] + ((dl + dr + 2) >> 2)
	}
}

// inv1d inverts fwd1d: coefficients in c (lo|hi layout) are transformed
// back into the signal out.  c is not modified.
func inv1d(c, out []int32) {
	n := len(c)
	if n == 1 {
		out[0] = c[0]
		return
	}
	half := (n + 1) / 2
	nd := n / 2
	lo, hi := c[:half], c[half:half+nd]

	// Undo update: x[2i] = s[i] - floor((d[i-1] + d[i] + 2) / 4).
	for i := 0; i < half; i++ {
		var dl, dr int32
		if i-1 >= 0 {
			dl = hi[i-1]
		} else {
			dl = hi[0]
		}
		if i < nd {
			dr = hi[i]
		} else {
			dr = hi[nd-1]
		}
		out[2*i] = lo[i] - ((dl + dr + 2) >> 2)
	}
	// Undo predict: x[2i+1] = d[i] + floor((x[2i] + x[2i+2]) / 2).
	for i := 0; i < nd; i++ {
		left := out[2*i]
		var right int32
		if 2*i+2 < n {
			right = out[2*i+2]
		} else {
			right = out[2*i]
		}
		out[2*i+1] = hi[i] + ((left + right) >> 1)
	}
}

// Coeffs holds a multi-level 2-D wavelet decomposition in the standard
// Mallat layout: the w×h coefficient plane with the LL band of the
// deepest level in the top-left corner.
type Coeffs struct {
	W, H   int
	Levels int
	Filter Filter
	Data   []int32
}

// MaxLevels returns the deepest decomposition the given size supports
// (each level needs both dimensions of the current LL band ≥ 2).
func MaxLevels(w, h int) int {
	levels := 0
	for w >= 2 && h >= 2 && levels < 8 {
		w = (w + 1) / 2
		h = (h + 1) / 2
		levels++
	}
	return levels
}

// Forward computes a levels-deep 2-D transform of the image with the
// default 5/3 filter.  levels is clamped to the maximum the image size
// supports (and to ≥ 0).
func Forward(im *Image, levels int) *Coeffs {
	return ForwardFilter(im, levels, Filter53)
}

// Inverse reconstructs the image from the decomposition.
func Inverse(c *Coeffs) *Image {
	im := &Image{W: c.W, H: c.H, Pix: append([]int32(nil), c.Data...)}

	// Precompute the band sizes per level, then undo deepest-first.
	ws := make([]int, c.Levels+1)
	hs := make([]int, c.Levels+1)
	ws[0], hs[0] = c.W, c.H
	for lv := 1; lv <= c.Levels; lv++ {
		ws[lv] = (ws[lv-1] + 1) / 2
		hs[lv] = (hs[lv-1] + 1) / 2
	}

	_, inv := c.Filter.kernels()
	rowIn := make([]int32, c.W)
	rowOut := make([]int32, c.W)
	colIn := make([]int32, c.H)
	colOut := make([]int32, c.H)
	for lv := c.Levels - 1; lv >= 0; lv-- {
		w, h := ws[lv], hs[lv]
		// Columns first (inverse order of Forward).
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				colIn[y] = im.Pix[y*c.W+x]
			}
			inv(colIn[:h], colOut[:h])
			for y := 0; y < h; y++ {
				im.Pix[y*c.W+x] = colOut[y]
			}
		}
		// Rows.
		for y := 0; y < h; y++ {
			base := y * c.W
			copy(rowIn[:w], im.Pix[base:base+w])
			inv(rowIn[:w], rowOut[:w])
			copy(im.Pix[base:base+w], rowOut[:w])
		}
	}
	return im
}

// scanOrder returns coefficient indices ordered coarse-to-fine: the
// deepest LL band first, then each level's HL, LH, HH from deepest to
// finest.  Early stream prefixes therefore carry the visually dominant
// low-frequency content — the "sketch first, detail later" hierarchy.
func (c *Coeffs) scanOrder() []int {
	order := make([]int, 0, c.W*c.H)
	ws := make([]int, c.Levels+1)
	hs := make([]int, c.Levels+1)
	ws[0], hs[0] = c.W, c.H
	for lv := 1; lv <= c.Levels; lv++ {
		ws[lv] = (ws[lv-1] + 1) / 2
		hs[lv] = (hs[lv-1] + 1) / 2
	}
	appendRect := func(x0, y0, x1, y1 int) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				order = append(order, y*c.W+x)
			}
		}
	}
	// Deepest LL.
	appendRect(0, 0, ws[c.Levels], hs[c.Levels])
	// Detail bands from deepest level outwards.
	for lv := c.Levels; lv >= 1; lv-- {
		lw, lh := ws[lv], hs[lv]     // low sizes at this level
		pw, ph := ws[lv-1], hs[lv-1] // parent (full) sizes
		appendRect(lw, 0, pw, lh)    // HL (high in x)
		appendRect(0, lh, lw, ph)    // LH (high in y)
		appendRect(lw, lh, pw, ph)   // HH
	}
	return order
}
