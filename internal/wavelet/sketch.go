package wavelet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The robust sketch: a tiny edge map extracted from the image that
// preserves the essential structure for collaboration while requiring
// on the order of 2000× less data than the original, with an attached
// verbal description so minimal-capability clients (text-only wireless
// participants) can still follow the session.

// SketchMaxDim is the maximum sketch raster dimension; the image is
// downsampled until both dimensions fit.
const SketchMaxDim = 32

// Sketch is the compact structural summary of an image.
type Sketch struct {
	// W, H are the sketch raster dimensions.
	W, H int
	// Edges is a W×H bitmap of detected edges (row-major).
	Edges []bool
	// Description is the verbal tag carried with the sketch.
	Description string
}

// Sketch errors.
var (
	ErrSketchFormat = errors.New("wavelet: malformed sketch")
)

// ExtractSketch downsamples the image, runs a Sobel edge detector and
// thresholds the gradient magnitude, producing the base sketch layer.
func ExtractSketch(im *Image, description string) *Sketch {
	// Downsample by box averaging to ≤ SketchMaxDim per side.
	factor := 1
	for (im.W+factor-1)/factor > SketchMaxDim || (im.H+factor-1)/factor > SketchMaxDim {
		factor++
	}
	sw := (im.W + factor - 1) / factor
	sh := (im.H + factor - 1) / factor
	small := make([]int32, sw*sh)
	for sy := 0; sy < sh; sy++ {
		for sx := 0; sx < sw; sx++ {
			var sum, n int32
			for y := sy * factor; y < (sy+1)*factor && y < im.H; y++ {
				for x := sx * factor; x < (sx+1)*factor && x < im.W; x++ {
					sum += im.At(x, y)
					n++
				}
			}
			small[sy*sw+sx] = sum / n
		}
	}

	// Sobel gradient magnitude with border clamp.
	at := func(x, y int) int32 {
		if x < 0 {
			x = 0
		}
		if x >= sw {
			x = sw - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= sh {
			y = sh - 1
		}
		return small[y*sw+x]
	}
	grad := make([]int32, sw*sh)
	var maxGrad int32
	for y := 0; y < sh; y++ {
		for x := 0; x < sw; x++ {
			gx := -at(x-1, y-1) - 2*at(x-1, y) - at(x-1, y+1) +
				at(x+1, y-1) + 2*at(x+1, y) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			g := gx + gy
			grad[y*sw+x] = g
			if g > maxGrad {
				maxGrad = g
			}
		}
	}

	s := &Sketch{W: sw, H: sh, Edges: make([]bool, sw*sh), Description: description}
	if maxGrad == 0 {
		return s // flat image: no edges
	}
	threshold := maxGrad / 4
	for i, g := range grad {
		s.Edges[i] = g >= threshold
	}
	return s
}

// Marshal encodes the sketch:
//
//	magic "SK01" | W uint8 | H uint8 | descLen uint16 | desc |
//	RLE edge bitmap: alternating run lengths (gamma), starting with a
//	run of zeros (possibly gamma(1) = empty run when starting with 1).
func (s *Sketch) Marshal() ([]byte, error) {
	if s.W < 1 || s.H < 1 || s.W > 255 || s.H > 255 {
		return nil, fmt.Errorf("%w: %dx%d", ErrSketchFormat, s.W, s.H)
	}
	if len(s.Edges) != s.W*s.H {
		return nil, fmt.Errorf("%w: bitmap size", ErrSketchFormat)
	}
	if len(s.Description) > 1<<16-1 {
		return nil, fmt.Errorf("%w: description too long", ErrSketchFormat)
	}
	out := []byte{'S', 'K', '0', '1', byte(s.W), byte(s.H)}
	out = binary.BigEndian.AppendUint16(out, uint16(len(s.Description)))
	out = append(out, s.Description...)

	w := &bitWriter{}
	cur := false // runs alternate starting with zeros
	run := uint32(0)
	for _, e := range s.Edges {
		if e == cur {
			run++
			continue
		}
		w.writeGamma(run + 1)
		cur = !cur
		run = 1
	}
	w.writeGamma(run + 1)
	return append(out, w.bytes()...), nil
}

// UnmarshalSketch decodes a marshaled sketch.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	if len(data) < 8 || string(data[:4]) != "SK01" {
		return nil, ErrSketchFormat
	}
	w, h := int(data[4]), int(data[5])
	if w < 1 || h < 1 {
		return nil, ErrSketchFormat
	}
	descLen := int(binary.BigEndian.Uint16(data[6:]))
	if len(data) < 8+descLen {
		return nil, ErrSketchFormat
	}
	s := &Sketch{W: w, H: h, Description: string(data[8 : 8+descLen])}
	s.Edges = make([]bool, w*h)

	r := &bitReader{buf: data[8+descLen:]}
	cur := false
	pos := 0
	for pos < len(s.Edges) {
		run, err := r.readGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSketchFormat, err)
		}
		n := int(run) - 1
		if pos+n > len(s.Edges) {
			return nil, fmt.Errorf("%w: run overflows bitmap", ErrSketchFormat)
		}
		for i := 0; i < n; i++ {
			s.Edges[pos+i] = cur
		}
		pos += n
		cur = !cur
	}
	return s, nil
}

// EdgeCount returns the number of edge pixels.
func (s *Sketch) EdgeCount() int {
	n := 0
	for _, e := range s.Edges {
		if e {
			n++
		}
	}
	return n
}

// Render expands the sketch to an image of the given size for display:
// edge pixels white on black, nearest-neighbour upsampling.
func (s *Sketch) Render(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := x * s.W / w
			sy := y * s.H / h
			if s.Edges[sy*s.W+sx] {
				im.Set(x, y, 255)
			}
		}
	}
	return im
}
