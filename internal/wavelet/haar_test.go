package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHaar1DReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 17, 100, 101} {
		x := make([]int32, n)
		for i := range x {
			x[i] = int32((i*91 + 7) % 256)
		}
		c := make([]int32, n)
		y := make([]int32, n)
		fwdHaar1d(x, c)
		invHaar1d(c, y)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("n=%d: haar reconstruction failed at %d", n, i)
			}
		}
	}
}

func TestHaar2DPerfectReconstruction(t *testing.T) {
	for name, im := range map[string]*Image{
		"gradient": Gradient(48, 48),
		"blocks":   Blocks(33, 31, 8, 1),
		"noise":    Noise(17, 23, 2),
		"row":      Gradient(64, 1),
	} {
		for _, levels := range []int{0, 1, 3, 99} {
			c := ForwardFilter(im, levels, FilterHaar)
			if c.Filter != FilterHaar {
				t.Fatalf("%s: filter not recorded", name)
			}
			if !Inverse(c).Equal(im) {
				t.Errorf("%s (levels=%d): haar reconstruction differs", name, levels)
			}
		}
	}
}

func TestEncodeFilterHaarRoundTrip(t *testing.T) {
	im := Blocks(64, 64, 16, 3)
	stream, err := EncodeFilter(im, 0, FilterHaar)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless || !res.Image.Equal(im) {
		t.Error("haar stream should decode losslessly")
	}

	// Prefix decoding works with the haar filter too.
	m, err := MeasurePrefix(im, stream, len(stream)/4)
	if err != nil {
		t.Fatal(err)
	}
	if m.PSNR <= 10 {
		t.Errorf("haar quarter-prefix PSNR = %.1f", m.PSNR)
	}

	// Unknown filter rejected.
	if _, err := EncodeFilter(im, 0, Filter(9)); err == nil {
		t.Error("unknown filter accepted")
	}
	for _, f := range []Filter{Filter53, FilterHaar, Filter(9)} {
		if f.String() == "" {
			t.Errorf("empty name for filter %d", f)
		}
	}
}

func TestHaarWinsOnBlockyContent(t *testing.T) {
	// Piecewise-constant content has no gradients for the 5/3 predictor
	// to exploit; haar's pairwise differences are mostly zero.  The
	// haar stream should not be meaningfully larger (and is usually
	// smaller) on blocky inputs.
	im := Blocks(128, 128, 16, 11)
	s53, err := Encode(im, 0)
	if err != nil {
		t.Fatal(err)
	}
	sHaar, err := EncodeFilter(im, 0, FilterHaar)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(sHaar)) > 1.1*float64(len(s53)) {
		t.Errorf("haar %dB much larger than 5/3 %dB on blocky content", len(sHaar), len(s53))
	}

	// And conversely the 5/3 filter should win on smooth gradients.
	smooth := Gradient(128, 128)
	g53, _ := Encode(smooth, 0)
	gHaar, _ := EncodeFilter(smooth, 0, FilterHaar)
	if len(g53) >= len(gHaar) {
		t.Logf("note: 5/3 %dB vs haar %dB on smooth content", len(g53), len(gHaar))
	}
}

// TestQuickHaarReconstruction: arbitrary signals and images survive the
// haar transform exactly.
func TestQuickHaarReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		if r.Intn(2) == 0 {
			n := 1 + r.Intn(150)
			x := make([]int32, n)
			for i := range x {
				x[i] = int32(r.Intn(1<<16)) - 1<<15
			}
			c := make([]int32, n)
			y := make([]int32, n)
			fwdHaar1d(x, c)
			invHaar1d(c, y)
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		w := 1 + r.Intn(50)
		h := 1 + r.Intn(50)
		im := NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = int32(r.Intn(256))
		}
		return Inverse(ForwardFilter(im, r.Intn(6), FilterHaar)).Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHaarCodecLossless: the embedded coder is lossless over the
// haar filter for arbitrary images.
func TestQuickHaarCodecLossless(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(33)
		h := 1 + r.Intn(33)
		im := NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = int32(r.Intn(256))
		}
		stream, err := EncodeFilter(im, 0, FilterHaar)
		if err != nil {
			return false
		}
		res, err := Decode(stream)
		return err == nil && res.Lossless && res.Image.Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
