package wavelet

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomColor(seed int64, w, h int) *ColorImage {
	r := rand.New(rand.NewSource(seed))
	im := NewColorImage(w, h)
	for i := range im.R {
		im.R[i] = int32(r.Intn(256))
		im.G[i] = int32(r.Intn(256))
		im.B[i] = int32(r.Intn(256))
	}
	return im
}

func TestYCoCgRoundTrip(t *testing.T) {
	im := randomColor(1, 37, 29)
	y, co, cg := im.YCoCg()
	back, err := FromYCoCg(y, co, cg)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(im) {
		t.Fatal("YCoCg-R is not reversible")
	}
	// Gray input has zero chroma.
	gray := NewColorImage(8, 8)
	for i := range gray.R {
		gray.R[i], gray.G[i], gray.B[i] = 77, 77, 77
	}
	_, co, cg = gray.YCoCg()
	for i := range co.Pix {
		if co.Pix[i] != 0 || cg.Pix[i] != 0 {
			t.Fatal("gray pixels must have zero chroma")
		}
	}
	// Mismatched planes rejected.
	if _, err := FromYCoCg(NewImage(4, 4), NewImage(5, 4), NewImage(4, 4)); err == nil {
		t.Error("mismatched planes accepted")
	}
}

func TestEncodeDecodeColorLossless(t *testing.T) {
	for name, im := range map[string]*ColorImage{
		"scene":  ColorScene(48, 48, 2),
		"random": randomColor(3, 31, 17),
		"tiny":   randomColor(4, 1, 1),
	} {
		stream, err := EncodeColor(im, 0, Filter53)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := DecodeColor(stream)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Lossless || res.PlanesPresent != 3 || !res.Image.Equal(im) {
			t.Errorf("%s: lossless=%v planes=%d equal=%v",
				name, res.Lossless, res.PlanesPresent, res.Image.Equal(im))
		}
	}
}

func TestColorTruncationDegradesToGrayscale(t *testing.T) {
	im := ColorScene(64, 64, 5)
	stream, err := EncodeColor(im, 0, Filter53)
	if err != nil {
		t.Fatal(err)
	}
	// Keep just past the luma plane: 4 magic + 4 len + plane 0.
	lumaLen := int(uint32(stream[4])<<24 | uint32(stream[5])<<16 | uint32(stream[6])<<8 | uint32(stream[7]))
	prefix := stream[:8+lumaLen]
	res, err := DecodeColor(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanesPresent != 1 || res.Lossless {
		t.Fatalf("luma-only prefix: planes=%d lossless=%v", res.PlanesPresent, res.Lossless)
	}
	// Zero chroma means R=G=B everywhere (the grayscale rendition).
	for i := range res.Image.R {
		if res.Image.R[i] != res.Image.G[i] || res.Image.G[i] != res.Image.B[i] {
			t.Fatalf("luma-only decode is not gray at %d: %d %d %d",
				i, res.Image.R[i], res.Image.G[i], res.Image.B[i])
		}
	}

	// PSNR improves monotonically with more of the stream.
	var prev float64 = -1
	for _, frac := range []float64{0.2, 0.5, 1.0} {
		res, err := DecodeColor(stream[:int(float64(len(stream))*frac)])
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		psnr, err := ColorPSNR(im, res.Image)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < prev-0.5 {
			t.Errorf("PSNR fell with more data: %.1f after %.1f", psnr, prev)
		}
		prev = psnr
	}
	if !math.IsInf(prev, 1) {
		t.Errorf("full stream PSNR = %g, want +Inf", prev)
	}
}

func TestDecodeColorRejects(t *testing.T) {
	for _, bad := range [][]byte{nil, []byte("EZC1"), []byte("XXXX....")} {
		if _, err := DecodeColor(bad); !errors.Is(err, ErrColorStream) {
			t.Errorf("bad stream %q: %v", bad, err)
		}
	}
	// A stream whose luma header itself is cut returns an error.
	im := ColorScene(16, 16, 1)
	stream, _ := EncodeColor(im, 0, Filter53)
	if _, err := DecodeColor(stream[:10]); err == nil {
		t.Error("cut luma header accepted")
	}
}

// TestQuickYCoCgReversible: arbitrary (even out-of-range) channel
// values survive the color transform exactly.
func TestQuickYCoCgReversible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := NewColorImage(1+r.Intn(20), 1+r.Intn(20))
		for i := range im.R {
			im.R[i] = int32(r.Intn(1<<12)) - 1<<11
			im.G[i] = int32(r.Intn(1<<12)) - 1<<11
			im.B[i] = int32(r.Intn(1<<12)) - 1<<11
		}
		y, co, cg := im.YCoCg()
		back, err := FromYCoCg(y, co, cg)
		return err == nil && back.Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickColorPrefixSafe: every prefix of a color stream either
// decodes to a correctly sized image or reports a clean error.
func TestQuickColorPrefixSafe(t *testing.T) {
	im := ColorScene(32, 32, 9)
	stream, err := EncodeColor(im, 0, FilterHaar)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint16) bool {
		prefix := stream[:int(n)%(len(stream)+1)]
		res, err := DecodeColor(prefix)
		if err != nil {
			return true
		}
		return res.Image.W == 32 && res.Image.H == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
