package registry

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

// populate installs n clients with a media interest cycling over four
// values and a region interest with the given cardinality.
func populate(r *Registry, n, regions int) {
	medias := []string{"video", "audio", "image", "text"}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		p := profile.New(id)
		p.Interests.SetString("media", medias[i%len(medias)])
		p.Interests.SetNumber("region", float64(i%regions))
		p.Interests.SetNumber("size", float64((i%100)*1000))
		r.Put(p)
	}
}

func sortedIDs(ids []string) []string { sort.Strings(ids); return ids }

func TestMatchIDsIndexAgreesWithBrute(t *testing.T) {
	indexed := NewWithIndex(8, true)
	brute := NewWithIndex(8, false)
	populate(indexed, 200, 25)
	populate(brute, 200, 25)
	if !indexed.Indexed() || brute.Indexed() {
		t.Fatal("Indexed() wiring")
	}

	for _, src := range []string{
		`media == "video" and region == 3`,
		`media in ["audio", "image"] and size <= 20000`,
		`region >= 20 or media == "text"`,
		`exists(region) and not media == "video"`,
		`client like "w1?"`,
		`true`,
		`false`,
		`media == "nope"`,
	} {
		sel := selector.MustCompile(src)
		got := sortedIDs(indexed.MatchIDs(sel))
		want := sortedIDs(brute.MatchIDs(sel))
		if len(got) != len(want) {
			t.Errorf("%q: indexed %d ids, brute %d", src, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%q: indexed[%d]=%s brute[%d]=%s", src, i, got[i], i, want[i])
				break
			}
		}
	}

	// MatchIDs(nil) is the whole population on both.
	if got := len(indexed.MatchIDs(nil)); got != 200 {
		t.Errorf("MatchIDs(nil) = %d ids", got)
	}
}

func TestMatchIDsSeesMutations(t *testing.T) {
	r := New(4)
	populate(r, 32, 8)
	sel := selector.MustCompile(`state.sir >= 0`)
	if got := r.MatchIDs(sel); len(got) != 0 {
		t.Fatalf("unexpected matches before assessments: %v", got)
	}

	if err := r.PutAssessment("w3", Assessment{SIRdB: 4, Power: 1, Distance: 10}); err != nil {
		t.Fatal(err)
	}
	if got := r.MatchIDs(sel); len(got) != 1 || got[0] != "w3" {
		t.Fatalf("after assessment: %v", got)
	}

	// Re-assessing the same geometry must not reindex (no version
	// bump), and a changed geometry must be re-observed.
	if err := r.PutAssessment("w3", Assessment{SIRdB: 4, Power: 1, Distance: 10}); err != nil {
		t.Fatal(err)
	}
	if err := r.PutAssessment("w3", Assessment{SIRdB: -7, Power: 1, Distance: 10}); err != nil {
		t.Fatal(err)
	}
	if got := r.MatchIDs(sel); len(got) != 0 {
		t.Fatalf("stale SIR still matching: %v", got)
	}

	// A wholesale Put with different interests under the same version
	// must be re-observed (Invalidate, not generation-checked).
	p, _ := r.Get("w5")
	p.Interests.SetString("media", "replaced")
	r.Put(p)
	if got := r.MatchIDs(selector.MustCompile(`media == "replaced"`)); len(got) != 1 || got[0] != "w5" {
		t.Fatalf("after Put: %v", got)
	}

	// Departure drops the postings.
	r.Remove("w5")
	if got := r.MatchIDs(selector.MustCompile(`media == "replaced"`)); len(got) != 0 {
		t.Fatalf("departed client still matching: %v", got)
	}
}

// TestMatchIDsConcurrentChurn races index-first matching against
// joins, departures, assessments and profile replacement; the race
// detector (ci.sh runs this with -race -count=1) is the assertion.
func TestMatchIDsConcurrentChurn(t *testing.T) {
	r := New(8)
	populate(r, 64, 8)
	sels := []*selector.Selector{
		selector.MustCompile(`media == "video" and region <= 3`),
		selector.MustCompile(`state.sir >= 0`),
		selector.MustCompile(`media in ["audio", "text"] or client like "w1*"`),
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("w%d", (g*16+i)%64)
				switch i % 5 {
				case 0:
					_ = r.PutAssessment(id, Assessment{SIRdB: float64(i%9 - 4), Power: 1, Distance: 50})
				case 1:
					if p, ok := r.Get(id); ok {
						p.Interests.SetNumber("region", float64(i%8))
						r.Put(p)
					}
				case 2:
					r.Remove(id)
				case 3:
					p := profile.New(id)
					p.Interests.SetString("media", "video")
					p.Interests.SetNumber("region", float64(i%8))
					r.Put(p)
				default:
					_, _ = r.UpdateState(id, "sir", selector.N(float64(i%7)))
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ids := r.MatchIDs(sels[(g+i)%len(sels)])
				for _, id := range ids {
					if id == "" {
						t.Error("empty id matched")
						return
					}
				}
			}
		}(g)
	}
	close(stop)
	wg.Wait()
}
