//go:build race

package registry

// raceDetectorEnabled reports whether this test binary was built with
// -race; timing guards skip themselves under the detector because its
// per-access instrumentation distorts every budget.
const raceDetectorEnabled = true
