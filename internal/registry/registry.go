// Package registry is the broker's membership layer: it owns the
// client profiles, their memoized flattened attribute views and the
// per-client radio state (the service assessments the base station
// folds back into each profile) behind N hash-sharded locks, so that
// concurrent joins, departures, assessments and per-frame snapshot
// reads contend only within a shard instead of on one broker-wide
// mutex.  It is the first of the three broker layers (registry →
// dispatch pipeline → transmit adapters; DESIGN.md §9) and is
// deliberately ignorant of media formats and radio physics: it stores
// what the upper layers tell it, keyed by client ID.
package registry

import (
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

// Radio-state attribute names.  The membership layer stores the
// broker's last service assessment of each client in the profile's
// state section under these keys, making signal state semantically
// selectable (`state.sir >= -3`) exactly as the paper's Figure 3
// profiles do.
const (
	StateSIR      = "sir"
	StatePower    = "power"
	StateDistance = "distance"
)

// DefaultShards is the shard count used when Config.Shards is zero.
// Sixteen keeps per-shard population small at the paper's cell sizes
// while still winning at 512 clients (see BenchmarkRegistryContention).
const DefaultShards = 16

// fnv32a hashes a client ID for shard routing.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Registry is a sharded collection of client profiles.  Each shard is
// an independent profile.Registry (with its own lock and memoized
// flattened views); a client's shard is fixed by the FNV-1a hash of
// its ID.  All methods are safe for concurrent use.
type Registry struct {
	shards []*profile.Registry
	mask   uint32
}

// New returns a registry with the given shard count, rounded up to a
// power of two; shards <= 0 selects DefaultShards.
func New(shards int) *Registry {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry{shards: make([]*profile.Registry, n), mask: uint32(n - 1)}
	for i := range r.shards {
		r.shards[i] = profile.NewRegistry()
	}
	return r
}

// Shards returns the shard count (diagnostics, benchmarks).
func (r *Registry) Shards() int { return len(r.shards) }

func (r *Registry) shard(id string) *profile.Registry {
	return r.shards[fnv32a(id)&r.mask]
}

// Put installs (or replaces) a profile snapshot.
func (r *Registry) Put(p *profile.Profile) { r.shard(p.ID).Put(p) }

// Get returns a copy of the profile for id.
func (r *Registry) Get(id string) (*profile.Profile, bool) {
	return r.shard(id).Get(id)
}

// Remove deletes the profile for id, reporting whether it was present.
func (r *Registry) Remove(id string) bool { return r.shard(id).Remove(id) }

// Len returns the number of registered profiles across all shards.
func (r *Registry) Len() int {
	n := 0
	for _, s := range r.shards {
		n += s.Len()
	}
	return n
}

// IDs returns the registered client IDs in unspecified order.
func (r *Registry) IDs() []string {
	var ids []string
	for _, s := range r.shards {
		ids = append(ids, s.IDs()...)
	}
	return ids
}

// FlatSnapshot returns the memoized flattened attribute view of the
// profile for id and its version.  The returned map is shared and
// immutable by contract: callers MUST NOT mutate it.
func (r *Registry) FlatSnapshot(id string) (selector.Attributes, uint64, bool) {
	return r.shard(id).FlatSnapshot(id)
}

// UpdateState mutates one state attribute of a registered profile.
func (r *Registry) UpdateState(id, name string, v selector.Value) (*profile.Profile, error) {
	return r.shard(id).UpdateState(id, name, v)
}

// MatchAll returns copies of every profile satisfying sel, evaluated
// against the memoized flattened views shard by shard.
func (r *Registry) MatchAll(sel *selector.Selector) []*profile.Profile {
	var out []*profile.Profile
	for _, s := range r.shards {
		out = append(out, s.MatchAll(sel)...)
	}
	return out
}

// Assessment is the per-client radio state the broker folds into the
// registry after assessing a client: received signal quality and the
// power-control geometry it was derived from.  The service tier is
// deliberately absent — it is policy (thresholds over SIR) owned by
// the layer above, not membership state.
type Assessment struct {
	SIRdB    float64
	Power    float64
	Distance float64
}

// PutAssessment folds a client's service assessment into its stored
// profile state (one lock pass; no version bump when the radio
// geometry is unchanged, keeping the memoized flattened view valid).
func (r *Registry) PutAssessment(id string, a Assessment) error {
	return r.shard(id).UpdateStates(id, []profile.StateKV{
		{Name: StateSIR, V: selector.N(a.SIRdB)},
		{Name: StatePower, V: selector.N(a.Power)},
		{Name: StateDistance, V: selector.N(a.Distance)},
	})
}
