// Package registry is the broker's membership layer: it owns the
// client profiles, their memoized flattened attribute views and the
// per-client radio state (the service assessments the base station
// folds back into each profile) behind N hash-sharded locks, so that
// concurrent joins, departures, assessments and per-frame snapshot
// reads contend only within a shard instead of on one broker-wide
// mutex.  It is the first of the three broker layers (registry →
// dispatch pipeline → transmit adapters; DESIGN.md §9) and is
// deliberately ignorant of media formats and radio physics: it stores
// what the upper layers tell it, keyed by client ID.
package registry

import (
	"adaptiveqos/internal/matchindex"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

// ctrMatchFallback counts brute-force selector evaluations performed
// when a match cannot go through the inverted index (disabled index or
// a FullScan plan); see matchindex and DESIGN.md §12.
var ctrMatchFallback = metrics.C(metrics.CtrMatchIndexFallback)

// Radio-state attribute names.  The membership layer stores the
// broker's last service assessment of each client in the profile's
// state section under these keys, making signal state semantically
// selectable (`state.sir >= -3`) exactly as the paper's Figure 3
// profiles do.
const (
	StateSIR      = "sir"
	StatePower    = "power"
	StateDistance = "distance"
)

// DefaultShards is the shard count used when Config.Shards is zero.
// Sixteen keeps per-shard population small at the paper's cell sizes
// while still winning at 512 clients (see BenchmarkRegistryContention).
const DefaultShards = 16

// fnv32a hashes a client ID for shard routing.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Registry is a sharded collection of client profiles.  Each shard is
// an independent profile.Registry (with its own lock and memoized
// flattened views); a client's shard is fixed by the FNV-1a hash of
// its ID.  All methods are safe for concurrent use.
//
// Unless constructed with NewWithIndex(shards, false), each profile
// shard is paired with an inverted predicate index shard
// (matchindex.Shard, routed by the same hash) so MatchIDs/MatchAll
// cost scales with the matching subset rather than the population.
// Mutations invalidate lazily: they record the client in the paired
// index shard's dirty set and the next match re-reads its flattened
// view, skipping the rebuild when the profile generation counter is
// unchanged.
type Registry struct {
	shards []*profile.Registry
	idx    []*matchindex.Shard // nil when the index is disabled
	mask   uint32
}

// New returns a registry with the given shard count, rounded up to a
// power of two; shards <= 0 selects DefaultShards.  The match index is
// enabled.
func New(shards int) *Registry { return NewWithIndex(shards, true) }

// NewWithIndex is New with the match index explicitly enabled or
// disabled; disabled, MatchIDs and MatchAll scan every profile
// brute-force (the pre-index behavior, kept for A/B benchmarking).
func NewWithIndex(shards int, indexed bool) *Registry {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry{shards: make([]*profile.Registry, n), mask: uint32(n - 1)}
	for i := range r.shards {
		r.shards[i] = profile.NewRegistry()
	}
	if indexed {
		r.idx = make([]*matchindex.Shard, n)
		for i := range r.idx {
			r.idx[i] = matchindex.NewShard()
		}
	}
	return r
}

// Indexed reports whether the match index is enabled.
func (r *Registry) Indexed() bool { return r.idx != nil }

// Shards returns the shard count (diagnostics, benchmarks).
func (r *Registry) Shards() int { return len(r.shards) }

func (r *Registry) shard(id string) *profile.Registry {
	return r.shards[fnv32a(id)&r.mask]
}

// idxShard returns the index shard paired with id's profile shard, or
// nil when the index is disabled.
func (r *Registry) idxShard(id string) *matchindex.Shard {
	if r.idx == nil {
		return nil
	}
	return r.idx[fnv32a(id)&r.mask]
}

// Put installs (or replaces) a profile snapshot.  A Put may install
// arbitrary attributes under an unchanged version, so the index entry
// is invalidated outright rather than generation-checked.
func (r *Registry) Put(p *profile.Profile) {
	r.shard(p.ID).Put(p)
	if ix := r.idxShard(p.ID); ix != nil {
		ix.Invalidate(p.ID)
	}
}

// Get returns a copy of the profile for id.
func (r *Registry) Get(id string) (*profile.Profile, bool) {
	return r.shard(id).Get(id)
}

// Remove deletes the profile for id, reporting whether it was present.
func (r *Registry) Remove(id string) bool {
	ok := r.shard(id).Remove(id)
	if ix := r.idxShard(id); ix != nil {
		ix.Invalidate(id)
	}
	return ok
}

// Len returns the number of registered profiles across all shards.
func (r *Registry) Len() int {
	n := 0
	for _, s := range r.shards {
		n += s.Len()
	}
	return n
}

// IDs returns the registered client IDs in unspecified order.
func (r *Registry) IDs() []string {
	var ids []string
	for _, s := range r.shards {
		ids = append(ids, s.IDs()...)
	}
	return ids
}

// FlatSnapshot returns the memoized flattened attribute view of the
// profile for id and its version.  The returned map is shared and
// immutable by contract: callers MUST NOT mutate it.
func (r *Registry) FlatSnapshot(id string) (selector.Attributes, uint64, bool) {
	return r.shard(id).FlatSnapshot(id)
}

// UpdateState mutates one state attribute of a registered profile.
func (r *Registry) UpdateState(id, name string, v selector.Value) (*profile.Profile, error) {
	p, err := r.shard(id).UpdateState(id, name, v)
	if err == nil {
		if ix := r.idxShard(id); ix != nil {
			// Equal-value writes do not bump the version; the dirty
			// drain's generation check turns those into one map lookup.
			ix.MarkDirty(id)
		}
	}
	return p, err
}

// MatchIDs returns the IDs of every registered profile satisfying sel,
// in unspecified order.  With the index enabled the selector is
// decomposed into an index plan and answered by each shard's counting
// match; plans the index cannot answer (match-all, or a disjunct with
// no indexable predicate) and disabled indexes fall back to the
// brute-force per-profile evaluation.  Either way the result is exact.
func (r *Registry) MatchIDs(sel *selector.Selector) []string {
	if sel == nil {
		return r.IDs()
	}
	if r.idx != nil {
		plan := matchindex.PlanSelector(sel)
		if plan.MatchAll {
			return r.IDs()
		}
		if plan.Indexable() {
			var out []string
			for i, s := range r.shards {
				out = r.idx[i].Match(plan, s.FlatSnapshot, out)
			}
			return out
		}
		if len(plan.Branches) == 0 && !plan.FullScan {
			return nil // constant-false selector
		}
	}
	ctrMatchFallback.Add(uint64(r.Len()))
	var out []string
	for _, s := range r.shards {
		out = append(out, s.MatchIDs(sel)...)
	}
	return out
}

// MatchAll returns copies of every profile satisfying sel.  With the
// index enabled, candidates come from MatchIDs and only the matching
// profiles pay the deep copy; otherwise every shard scans brute-force.
func (r *Registry) MatchAll(sel *selector.Selector) []*profile.Profile {
	if r.idx == nil {
		ctrMatchFallback.Add(uint64(r.Len()))
		var out []*profile.Profile
		for _, s := range r.shards {
			out = append(out, s.MatchAll(sel)...)
		}
		return out
	}
	ids := r.MatchIDs(sel)
	out := make([]*profile.Profile, 0, len(ids))
	for _, id := range ids {
		if p, ok := r.Get(id); ok {
			out = append(out, p)
		}
	}
	return out
}

// Assessment is the per-client radio state the broker folds into the
// registry after assessing a client: received signal quality and the
// power-control geometry it was derived from.  The service tier is
// deliberately absent — it is policy (thresholds over SIR) owned by
// the layer above, not membership state.
type Assessment struct {
	SIRdB    float64
	Power    float64
	Distance float64
}

// PutAssessment folds a client's service assessment into its stored
// profile state (one lock pass; no version bump when the radio
// geometry is unchanged, keeping the memoized flattened view valid).
// Only an actual change dirties the match index — the per-frame
// steady state (unchanged geometry re-assessed on every delivery)
// must not grow the dirty set the next match has to drain.
func (r *Registry) PutAssessment(id string, a Assessment) error {
	changed, err := r.shard(id).UpdateStates(id, []profile.StateKV{
		{Name: StateSIR, V: selector.N(a.SIRdB)},
		{Name: StatePower, V: selector.N(a.Power)},
		{Name: StateDistance, V: selector.N(a.Distance)},
	})
	if changed {
		if ix := r.idxShard(id); ix != nil {
			ix.MarkDirty(id)
		}
	}
	return err
}
