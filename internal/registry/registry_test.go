package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

func TestShardRoundingAndRouting(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := New(tc.in).Shards(); got != tc.want {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}

	// A client's operations must all land on one shard: install via
	// Put, read via Get/FlatSnapshot, mutate via UpdateState.
	r := New(8)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("client-%d", i)
		p := profile.New(id)
		p.Interests.SetString("media", "any")
		r.Put(p)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	if len(r.IDs()) != 100 {
		t.Fatalf("IDs = %d entries", len(r.IDs()))
	}
	p, ok := r.Get("client-42")
	if !ok || p.ID != "client-42" {
		t.Fatalf("Get: %v %v", p, ok)
	}
	if _, err := r.UpdateState("client-42", "sir", selector.N(3.5)); err != nil {
		t.Fatal(err)
	}
	flat, _, ok := r.FlatSnapshot("client-42")
	if !ok || flat[profile.SectionState+".sir"].Num() != 3.5 {
		t.Fatalf("FlatSnapshot after update: %v %v", flat, ok)
	}
	if !r.Remove("client-42") || r.Remove("client-42") {
		t.Fatal("Remove semantics")
	}
	if r.Len() != 99 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
}

func TestPutAssessmentFoldsRadioState(t *testing.T) {
	r := New(4)
	r.Put(profile.New("w1"))
	if err := r.PutAssessment("w1", Assessment{SIRdB: -2.5, Power: 0.8, Distance: 120}); err != nil {
		t.Fatal(err)
	}
	flat, ver, ok := r.FlatSnapshot("w1")
	if !ok {
		t.Fatal("no snapshot")
	}
	if flat[profile.SectionState+"."+StateSIR].Num() != -2.5 ||
		flat[profile.SectionState+"."+StatePower].Num() != 0.8 ||
		flat[profile.SectionState+"."+StateDistance].Num() != 120 {
		t.Fatalf("radio state not folded: %v", flat)
	}
	// Re-asserting identical geometry must not bump the version (the
	// memoized flattened view stays valid on the relay fast path).
	if err := r.PutAssessment("w1", Assessment{SIRdB: -2.5, Power: 0.8, Distance: 120}); err != nil {
		t.Fatal(err)
	}
	if _, ver2, _ := r.FlatSnapshot("w1"); ver2 != ver {
		t.Fatalf("unchanged assessment bumped version %d → %d", ver, ver2)
	}
	// A moved client does bump it.
	if err := r.PutAssessment("w1", Assessment{SIRdB: -4, Power: 0.8, Distance: 200}); err != nil {
		t.Fatal(err)
	}
	if _, ver3, _ := r.FlatSnapshot("w1"); ver3 == ver {
		t.Fatal("changed assessment did not bump version")
	}
	if err := r.PutAssessment("ghost", Assessment{}); err == nil {
		t.Fatal("assessment of unknown client should fail")
	}
}

func TestMatchAllAcrossShards(t *testing.T) {
	r := New(8)
	for i := 0; i < 40; i++ {
		p := profile.New(fmt.Sprintf("c%d", i))
		if i%2 == 0 {
			p.Interests.SetString("media", "image")
		} else {
			p.Interests.SetString("media", "audio")
		}
		r.Put(p)
	}
	sel, err := selector.Compile(`interest.media == "image"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.MatchAll(sel)); got != 20 {
		t.Fatalf("MatchAll = %d, want 20", got)
	}
}

// Concurrent Join/Leave/Assess/FlatSnapshot across shards must be
// race-clean (run under -race in CI) and leave the registry coherent.
func TestConcurrentChurnAndAssess(t *testing.T) {
	r := New(8)
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-c%d", w, i)
				p := profile.New(id)
				p.Interests.SetString("media", "any")
				r.Put(p)
				if err := r.PutAssessment(id, Assessment{SIRdB: float64(i), Power: 1, Distance: 50}); err != nil {
					t.Error(err)
				}
				if _, _, ok := r.FlatSnapshot(id); !ok {
					t.Errorf("no snapshot for %s", id)
				}
				if i%3 == 0 {
					r.Remove(id)
				}
			}
		}(w)
	}
	// Readers sweep the whole population while the churn runs.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range r.IDs() {
					r.FlatSnapshot(id)
					r.Get(id)
				}
				r.Len()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	want := 0
	for w := 0; w < 8; w++ {
		for i := 0; i < perWorker; i++ {
			if i%3 != 0 {
				want++
			}
		}
	}
	if r.Len() != want {
		t.Fatalf("Len after churn = %d, want %d", r.Len(), want)
	}
}

func TestCollectionsLifecycle(t *testing.T) {
	type meta struct{ Object string }
	c := NewCollections[meta](time.Minute)
	now := time.Now()

	// Packets parked before the announce come back with it, in order.
	if !c.Park("img", 2, []byte{2}, now) || !c.Park("img", 0, []byte{0}, now) {
		t.Fatal("parking rejected")
	}
	parked := c.Announce("img", meta{"img"}, now)
	if len(parked) != 2 || parked[0].Idx != 2 || parked[1].Idx != 0 {
		t.Fatalf("parked = %v", parked)
	}
	if m, ok := c.Meta("img"); !ok || m.Object != "img" {
		t.Fatalf("meta = %v %v", m, ok)
	}
	if _, ok := c.Meta("ghost"); ok {
		t.Fatal("ghost meta")
	}
	if !c.Purge("img") || c.Purge("img") {
		t.Fatal("purge semantics")
	}
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}

	// Parking bounds: per-object and across objects.
	for i := 0; i < 100; i++ {
		c.Park("one", i, []byte{byte(i)}, now)
	}
	if got := len(c.Announce("one", meta{}, now)); got != 64 {
		t.Fatalf("per-object bound: kept %d", got)
	}
	for i := 0; i < 100; i++ {
		c.Park(fmt.Sprintf("obj-%d", i), 0, nil, now)
	}
	kept := 0
	for i := 0; i < 100; i++ {
		if len(c.Announce(fmt.Sprintf("obj-%d", i), meta{}, now)) > 0 {
			kept++
		}
	}
	if kept != 32 {
		t.Fatalf("object bound: %d objects parked", kept)
	}
}

func TestCollectionsSweep(t *testing.T) {
	type meta struct{}
	c := NewCollections[meta](100 * time.Millisecond)
	t0 := time.Now()
	c.Announce("old", meta{}, t0)
	c.Park("parked-old", 0, nil, t0)
	c.Announce("fresh", meta{}, t0.Add(90*time.Millisecond))

	// Activity refreshes the clock: a touched transfer survives.
	c.Announce("busy", meta{}, t0)
	c.Touch("busy", t0.Add(95*time.Millisecond))

	evicted := c.Sweep(t0.Add(150 * time.Millisecond))
	if len(evicted) != 2 {
		t.Fatalf("evicted %v", evicted)
	}
	got := map[string]bool{}
	for _, o := range evicted {
		got[o] = true
	}
	if !got["old"] || !got["parked-old"] {
		t.Fatalf("evicted %v", evicted)
	}
	if c.Len() != 2 {
		t.Fatalf("len after sweep = %d", c.Len())
	}

	// After eviction the parked-object budget is released.
	for i := 0; i < 32; i++ {
		if !c.Park(fmt.Sprintf("p%d", i), 0, nil, t0.Add(200*time.Millisecond)) {
			t.Fatalf("budget not released at %d", i)
		}
	}

	// TTL <= 0 disables the sweep.
	d := NewCollections[meta](0)
	d.Announce("x", meta{}, t0)
	if ev := d.Sweep(t0.Add(time.Hour)); ev != nil {
		t.Fatalf("disabled sweep evicted %v", ev)
	}
}
