package registry

import (
	"sync"
	"time"

	"adaptiveqos/internal/metrics"
)

var ctrCollectEvictions = metrics.C(metrics.CtrCollectEvictions)

// Parking bounds: how many distinct not-yet-announced objects may hold
// parked packets, and how many packets each may park.  Beyond the
// bounds early packets are dropped (the announce-then-data protocol
// retransmits nothing, so parking is best-effort).
const (
	maxParkedObjects   = 32
	maxParkedPerObject = 64
)

// Packet is one parked early-arriving data packet of a collection.
type Packet struct {
	Idx  int
	Data []byte
}

// Collections tracks in-flight reassembly state for objects announced
// on the wired side: the announce metadata (generic: the registry
// layer does not interpret it), packets that arrived before their
// announce, and a last-activity timestamp driving TTL eviction of
// collections that never complete (a sender crashing mid-transfer, a
// lossy segment eating the tail packets).  Completed collections are
// purged eagerly by the caller; the sweep is the backstop that keeps
// the broker's memory bounded either way.
type Collections[M any] struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[string]*collEntry[M]
	parked  int // objects currently holding parked packets
}

type collEntry[M any] struct {
	meta    M
	hasMeta bool
	parked  []Packet
	touched time.Time
}

// NewCollections returns an empty tracker whose never-completed
// entries expire ttl after their last activity (ttl <= 0 disables the
// sweep: Sweep never evicts).
func NewCollections[M any](ttl time.Duration) *Collections[M] {
	return &Collections[M]{ttl: ttl, entries: make(map[string]*collEntry[M])}
}

// TTL returns the configured eviction horizon.
func (c *Collections[M]) TTL() time.Duration { return c.ttl }

// Announce records the metadata for object and returns (clearing) any
// packets that were parked waiting for it, in arrival order.
func (c *Collections[M]) Announce(object string, meta M, now time.Time) []Packet {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[object]
	if e == nil {
		e = &collEntry[M]{}
		c.entries[object] = e
	}
	e.meta, e.hasMeta = meta, true
	e.touched = now
	parked := e.parked
	if parked != nil {
		e.parked = nil
		c.parked--
	}
	return parked
}

// Meta returns the announced metadata for object.
func (c *Collections[M]) Meta(object string) (M, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[object]; ok && e.hasMeta {
		return e.meta, true
	}
	var zero M
	return zero, false
}

// Park stores an early-arriving data packet (one that overtook its
// announce), copying data.  It reports whether the packet was kept;
// packets beyond the parking bounds are dropped.
func (c *Collections[M]) Park(object string, idx int, data []byte, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, existed := c.entries[object]
	if !existed {
		if c.parked >= maxParkedObjects {
			return false
		}
		e = &collEntry[M]{}
		c.entries[object] = e
	}
	if len(e.parked) >= maxParkedPerObject {
		return false
	}
	if e.parked == nil {
		if existed && c.parked >= maxParkedObjects {
			return false
		}
		c.parked++
	}
	e.parked = append(e.parked, Packet{Idx: idx, Data: append([]byte(nil), data...)})
	e.touched = now
	return true
}

// Touch refreshes object's activity timestamp (an accepted in-order
// packet: the transfer is alive, keep it out of the sweep).
func (c *Collections[M]) Touch(object string, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[object]; ok {
		e.touched = now
	}
}

// Purge drops all state for object (called after the collected image
// has been delivered), reporting whether it was tracked.
func (c *Collections[M]) Purge(object string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[object]
	if !ok {
		return false
	}
	if e.parked != nil {
		c.parked--
	}
	delete(c.entries, object)
	return true
}

// Sweep evicts every entry idle longer than the TTL and returns the
// evicted object IDs (so the caller can drop its own per-object state,
// e.g. the image reassembler's packet buffers).  Evictions are counted
// in metrics (CtrCollectEvictions → aqos_registry_collect_evictions).
func (c *Collections[M]) Sweep(now time.Time) []string {
	if c.ttl <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var evicted []string
	for object, e := range c.entries {
		if now.Sub(e.touched) > c.ttl {
			if e.parked != nil {
				c.parked--
			}
			delete(c.entries, object)
			evicted = append(evicted, object)
		}
	}
	if len(evicted) > 0 {
		ctrCollectEvictions.Add(uint64(len(evicted)))
	}
	return evicted
}

// Len returns the number of tracked collections.
func (c *Collections[M]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
