package registry

import (
	"testing"
	"time"

	"adaptiveqos/internal/selector"
)

// guardRegistry builds an indexed registry of n clients where the
// matching subset of the guard selector is the same size at every
// scale: region cardinality grows with the population (n/8), so
// `region == 17` always selects exactly 8 clients whether n is one
// thousand or one hundred thousand.
func guardRegistry(n int) *Registry {
	r := NewWithIndex(16, true)
	populate(r, n, n/8)
	// Drain the join-time dirty set so timing measures steady-state
	// matching, not the initial index build.
	r.MatchIDs(selector.MustCompile(`region == 17`))
	return r
}

// TestFlatMatchGuard is the CI guard for the tentpole's scaling
// contract: with the inverted index on, the per-message match cost
// must depend on the matching subset, not the registered population.
// It times the same constant-selectivity selector against 1k and 100k
// clients and bounds the ratio.  Brute-force matching is ~100x here;
// the bound leaves room for per-shard fixed costs and cache effects
// while still catching any accidental O(population) term.
func TestFlatMatchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("race detector multiplies map-access cost; ratio is meaningless")
	}

	small := guardRegistry(1_000)
	large := guardRegistry(100_000)
	sel := selector.MustCompile(`region == 17 and exists(media)`)

	if got := len(small.MatchIDs(sel)); got != 8 {
		t.Fatalf("small population matches %d clients, want 8", got)
	}
	if got := len(large.MatchIDs(sel)); got != 8 {
		t.Fatalf("large population matches %d clients, want 8", got)
	}

	const iters = 200
	const rounds = 5
	minTime := func(r *Registry) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < rounds; round++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if ids := r.MatchIDs(sel); len(ids) != 8 {
					t.Fatalf("match returned %d ids mid-measurement", len(ids))
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Warm both, then interleave measurements; a shared CI host can
	// steal the core mid-round, so an over-budget reading is
	// re-measured before it fails the guard.
	minTime(small)
	minTime(large)
	const attempts = 3
	const maxRatio = 8.0
	var ratio float64
	for a := 1; a <= attempts; a++ {
		smallBest := minTime(small)
		largeBest := minTime(large)
		ratio = float64(largeBest) / float64(smallBest)
		t.Logf("attempt %d: 1k %v, 100k %v, ratio %.2fx", a, smallBest, largeBest, ratio)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("100k/1k match-cost ratio %.2fx exceeds the %.0fx flatness budget", ratio, maxRatio)
}
