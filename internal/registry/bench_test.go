package registry

import (
	"fmt"
	"sync/atomic"
	"testing"

	"adaptiveqos/internal/profile"
)

// BenchmarkRegistryContention measures the assess + snapshot hot path
// (the per-frame work the base station does for every wireless client)
// under parallel load, comparing the sharded registry against the
// single-lock baseline (shards=1) at the paper's small and large cell
// populations.  The sharded layout should pull ahead as the population
// grows: at 512 clients every assessment serializes on one mutex in
// the baseline but only 1/16th of them collide per shard here.
func BenchmarkRegistryContention(b *testing.B) {
	for _, shards := range []int{1, 16} {
		for _, clients := range []int{64, 512} {
			b.Run(fmt.Sprintf("shards=%d/clients=%d", shards, clients), func(b *testing.B) {
				benchContention(b, shards, clients)
			})
		}
	}
}

func benchContention(b *testing.B, shards, clients int) {
	r := New(shards)
	ids := make([]string, clients)
	for i := range ids {
		id := fmt.Sprintf("w%d", i)
		ids[i] = id
		p := profile.New(id)
		p.Interests.SetString("media", "any")
		r.Put(p)
	}
	var next atomic.Uint32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stripe each goroutine across the population so parallel
		// workers touch different clients, as real assessments do.
		// The steady state is lock-bound: most assessments find the
		// client hasn't moved (equal-value no-op, no clone) and every
		// relay decision reads a snapshot; only every 64th assessment
		// mutates.  On multi-core hosts the single lock serializes all
		// of it while shards collide 1/16th as often (single-core CI
		// runners show both variants flat — see DESIGN.md §9).
		i := int(next.Add(1)) * 7919
		for pb.Next() {
			id := ids[i%clients]
			// Each client keeps the same geometry for 8 consecutive
			// visits, so 7/8 of assessments take the equal-value no-op
			// path and the benchmark stays lock-bound, not clone-bound.
			a := Assessment{SIRdB: float64((i/(clients*8))%17) - 8, Power: 1, Distance: 50}
			i++
			if err := r.PutAssessment(id, a); err != nil {
				b.Fatal(err)
			}
			if _, _, ok := r.FlatSnapshot(id); !ok {
				b.Fatal("lost client")
			}
		}
	})
}
