//go:build !race

package registry

// raceDetectorEnabled reports whether this test binary was built with
// -race; see race_on_test.go.
const raceDetectorEnabled = false
