package apps

import (
	"encoding/binary"
	"fmt"
	"sync"

	"adaptiveqos/internal/media"
)

// AppMedia is the app name for direct media-object delivery: the base
// station uses it to hand tiered content (text description, sketch,
// speech, or a complete image object) to clients in one event.
const AppMedia = "media"

// EncodeMediaObject serializes a media object as an event payload:
//
//	kindLen u8 | kind | fmtLen u8 | format | descLen u16 | desc |
//	width u16 | height u16 | dataLen u32 | data
func EncodeMediaObject(o *media.Object) ([]byte, error) {
	if len(o.Kind) > 255 || len(o.Format) > 255 || len(o.Description) > 1<<16-1 {
		return nil, fmt.Errorf("%w: media object fields too long", ErrBadEvent)
	}
	out := []byte{byte(len(o.Kind))}
	out = append(out, o.Kind...)
	out = append(out, byte(len(o.Format)))
	out = append(out, o.Format...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(o.Description)))
	out = append(out, o.Description...)
	out = binary.BigEndian.AppendUint16(out, uint16(o.Width))
	out = binary.BigEndian.AppendUint16(out, uint16(o.Height))
	out = binary.BigEndian.AppendUint32(out, uint32(len(o.Data)))
	return append(out, o.Data...), nil
}

// DecodeMediaObject parses an EncodeMediaObject payload.
func DecodeMediaObject(payload []byte) (*media.Object, error) {
	fail := func(what string) (*media.Object, error) {
		return nil, fmt.Errorf("%w: media object %s", ErrBadEvent, what)
	}
	if len(payload) < 1 {
		return fail("empty")
	}
	off := 0
	n := int(payload[off])
	off++
	if len(payload) < off+n+1 {
		return fail("kind")
	}
	kind := media.Kind(payload[off : off+n])
	off += n
	n = int(payload[off])
	off++
	if len(payload) < off+n+2 {
		return fail("format")
	}
	format := string(payload[off : off+n])
	off += n
	n = int(binary.BigEndian.Uint16(payload[off:]))
	off += 2
	if len(payload) < off+n+8 {
		return fail("description")
	}
	desc := string(payload[off : off+n])
	off += n
	w := int(binary.BigEndian.Uint16(payload[off:]))
	h := int(binary.BigEndian.Uint16(payload[off+2:]))
	dataLen := int(binary.BigEndian.Uint32(payload[off+4:]))
	off += 8
	if len(payload) != off+dataLen {
		return fail("data length")
	}
	return &media.Object{
		Kind:        kind,
		Format:      format,
		Description: desc,
		Width:       w,
		Height:      h,
		Data:        append([]byte(nil), payload[off:]...),
	}, nil
}

// Delivery is one received media object with its sender.
type Delivery struct {
	Sender string
	Object *media.Object
}

// MediaInbox stores media objects delivered directly (tiered content
// from a base station or peers).
type MediaInbox struct {
	mu    sync.RWMutex
	items []Delivery
	// MaxItems bounds the inbox; 0 = unlimited.
	MaxItems int
}

// NewMediaInbox returns an empty inbox.
func NewMediaInbox() *MediaInbox { return &MediaInbox{} }

// Apply ingests a media delivery event.
func (b *MediaInbox) Apply(sender string, payload []byte) error {
	obj, err := DecodeMediaObject(payload)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.items = append(b.items, Delivery{Sender: sender, Object: obj})
	if b.MaxItems > 0 && len(b.items) > b.MaxItems {
		b.items = append([]Delivery(nil), b.items[len(b.items)-b.MaxItems:]...)
	}
	return nil
}

// Items returns a copy of the inbox contents.
func (b *MediaInbox) Items() []Delivery {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]Delivery(nil), b.items...)
}

// Len returns the number of stored deliveries.
func (b *MediaInbox) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.items)
}

// Latest returns the most recent delivery, if any.
func (b *MediaInbox) Latest() (Delivery, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.items) == 0 {
		return Delivery{}, false
	}
	return b.items[len(b.items)-1], true
}
