package apps

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/wavelet"
)

func TestMediaObjectCodecRoundTrip(t *testing.T) {
	objs := []*media.Object{
		media.NewText("plain text payload"),
		{Kind: media.KindSketch, Format: media.FormatSketch,
			Data: []byte{1, 2, 3}, Description: "a sketch", Width: 32, Height: 16},
		{Kind: media.KindSpeech, Format: media.FormatSpeech, Data: nil},
	}
	if im, err := media.EncodeImage(wavelet.Circles(16, 16), "rings"); err == nil {
		objs = append(objs, im)
	} else {
		t.Fatal(err)
	}
	for _, o := range objs {
		payload, err := EncodeMediaObject(o)
		if err != nil {
			t.Fatalf("%s: %v", o, err)
		}
		got, err := DecodeMediaObject(payload)
		if err != nil {
			t.Fatalf("%s: %v", o, err)
		}
		if got.Kind != o.Kind || got.Format != o.Format || got.Description != o.Description ||
			got.Width != o.Width || got.Height != o.Height || string(got.Data) != string(o.Data) {
			t.Errorf("round trip: %+v vs %+v", got, o)
		}
	}
}

func TestMediaObjectCodecRejects(t *testing.T) {
	long := strings.Repeat("x", 300)
	if _, err := EncodeMediaObject(&media.Object{Kind: media.Kind(long)}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("long kind: %v", err)
	}
	if _, err := EncodeMediaObject(&media.Object{Kind: "t", Format: long}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("long format: %v", err)
	}
	if _, err := EncodeMediaObject(&media.Object{Kind: "t",
		Description: strings.Repeat("d", 1<<16)}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("long description: %v", err)
	}

	good, _ := EncodeMediaObject(media.NewText("ok"))
	for _, bad := range [][]byte{
		nil,
		good[:3],
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0xFF),
	} {
		if _, err := DecodeMediaObject(bad); !errors.Is(err, ErrBadEvent) {
			t.Errorf("bad payload %v decoded: %v", bad, err)
		}
	}
}

func TestMediaInbox(t *testing.T) {
	b := NewMediaInbox()
	if _, ok := b.Latest(); ok {
		t.Error("empty inbox should have no latest")
	}
	p1, _ := EncodeMediaObject(media.NewText("first"))
	p2, _ := EncodeMediaObject(media.NewText("second"))
	if err := b.Apply("alice", p1); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply("bob", p2); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("len = %d", b.Len())
	}
	last, ok := b.Latest()
	if !ok || last.Sender != "bob" || string(last.Object.Data) != "second" {
		t.Errorf("latest: %+v", last)
	}
	items := b.Items()
	items[0].Sender = "mutated"
	if b.Items()[0].Sender == "mutated" {
		t.Error("Items aliases internal state")
	}

	if err := b.Apply("x", []byte("garbage")); !errors.Is(err, ErrBadEvent) {
		t.Errorf("garbage apply: %v", err)
	}

	// Bounded inbox keeps the most recent.
	b.MaxItems = 3
	for i := 0; i < 10; i++ {
		p, _ := EncodeMediaObject(media.NewText(strings.Repeat("z", i+1)))
		b.Apply("s", p)
	}
	if b.Len() != 3 {
		t.Errorf("bounded len = %d", b.Len())
	}
	last, _ = b.Latest()
	if len(last.Object.Data) != 10 {
		t.Errorf("latest after bound: %q", last.Object.Data)
	}
}

// TestQuickMediaObjectRoundTrip: arbitrary objects survive the codec.
func TestQuickMediaObjectRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		o := &media.Object{
			Kind:        media.Kind(randChars(r, 30)),
			Format:      randChars(r, 30),
			Description: randChars(r, 200),
			Width:       r.Intn(1 << 16),
			Height:      r.Intn(1 << 16),
			Data:        make([]byte, r.Intn(500)),
		}
		r.Read(o.Data)
		payload, err := EncodeMediaObject(o)
		if err != nil {
			return false
		}
		got, err := DecodeMediaObject(payload)
		return err == nil && got.Kind == o.Kind && got.Format == o.Format &&
			got.Description == o.Description && got.Width == o.Width &&
			got.Height == o.Height && string(got.Data) == string(o.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randChars(r *rand.Rand, max int) string {
	b := make([]byte, r.Intn(max+1))
	for i := range b {
		b[i] = byte(32 + r.Intn(95))
	}
	return string(b)
}
