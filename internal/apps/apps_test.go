package apps

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/wavelet"
)

func TestChatArea(t *testing.T) {
	c := NewChatArea()
	if err := c.Apply("a", EncodeSay("hello")); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply("b", EncodeSay("")); err != nil {
		t.Fatal(err)
	}
	lines := c.Lines()
	if len(lines) != 2 || lines[0].Sender != "a" || lines[0].Text != "hello" || lines[1].Text != "" {
		t.Errorf("lines: %v", lines)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	// History bound.
	c.MaxLines = 3
	for i := 0; i < 10; i++ {
		c.Apply("a", EncodeSay("x"))
	}
	if c.Len() != 3 {
		t.Errorf("bounded len = %d", c.Len())
	}
	// Malformed payloads.
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 5, 'a'}, append(EncodeSay("x"), 0)} {
		if err := c.Apply("a", bad); !errors.Is(err, ErrBadEvent) {
			t.Errorf("bad chat payload %v: %v", bad, err)
		}
	}
	// Returned slice is a copy.
	lines = c.Lines()
	lines[0].Text = "mutated"
	if c.Lines()[0].Text == "mutated" {
		t.Error("Lines aliases internal state")
	}
}

func TestWhiteboard(t *testing.T) {
	w := NewWhiteboard()
	s1 := Stroke{ID: w.NewStrokeID(), Color: 3, Width: 2,
		Points: []Point{{0, 0}, {10, 10}, {-5, 7}}}
	if err := w.Apply(EncodeStroke(s1)); err != nil {
		t.Fatal(err)
	}
	s2 := Stroke{ID: w.NewStrokeID(), Color: 1, Width: 1, Points: []Point{{1, 1}}}
	w.Apply(EncodeStroke(s2))

	strokes := w.Strokes()
	if len(strokes) != 2 || strokes[0].ID != s1.ID || strokes[1].ID != s2.ID {
		t.Fatalf("z-order: %v", strokes)
	}
	if strokes[0].Points[2] != (Point{-5, 7}) {
		t.Errorf("negative coordinates: %v", strokes[0].Points)
	}

	// Duplicate stroke events replace without duplicating z-order.
	w.Apply(EncodeStroke(s1))
	if w.Len() != 2 || len(w.Strokes()) != 2 {
		t.Error("duplicate stroke duplicated state")
	}

	if err := w.Apply(EncodeErase(s1.ID)); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 || w.Strokes()[0].ID != s2.ID {
		t.Error("erase")
	}
	// Erasing a missing stroke is a no-op.
	if err := w.Apply(EncodeErase(999)); err != nil {
		t.Errorf("erase missing: %v", err)
	}

	w.Apply(EncodeClear())
	if w.Len() != 0 || len(w.IDs()) != 0 {
		t.Error("clear")
	}

	for _, bad := range [][]byte{nil, {9}, {wbOpStroke, 0}, {wbOpErase, 0},
		append(EncodeClear(), 0), EncodeStroke(s1)[:12]} {
		if err := w.Apply(bad); !errors.Is(err, ErrBadEvent) {
			t.Errorf("bad whiteboard payload %v: %v", bad, err)
		}
	}
}

func TestImageMetaRoundTrip(t *testing.T) {
	m := ImageMeta{
		Object: "img-7", Width: 512, Height: 384,
		TotalPackets: 16, StreamBytes: 123456,
		Description: "site map, north entrance",
	}
	got, err := DecodeImageMeta(EncodeImageMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip: %+v vs %+v", got, m)
	}
	for _, bad := range [][]byte{nil, make([]byte, 10),
		EncodeImageMeta(m)[:20], append(EncodeImageMeta(m), 0)} {
		if _, err := DecodeImageMeta(bad); err == nil {
			t.Errorf("bad meta %v decoded", bad)
		}
	}
	zero := m
	zero.TotalPackets = 0
	if _, err := DecodeImageMeta(EncodeImageMeta(zero)); err == nil {
		t.Error("zero packets accepted")
	}
}

func TestSplitStream(t *testing.T) {
	stream := make([]byte, 100)
	for i := range stream {
		stream[i] = byte(i)
	}
	parts := SplitStream(stream, 16)
	if len(parts) != 16 {
		t.Fatalf("parts = %d", len(parts))
	}
	var total int
	for i, p := range parts {
		total += len(p)
		if i > 0 && len(parts[i-1]) == 0 {
			t.Error("empty early part")
		}
	}
	if total != 100 {
		t.Errorf("total = %d", total)
	}
	// Concatenation in order reproduces the stream.
	var cat []byte
	for _, p := range parts {
		cat = append(cat, p...)
	}
	for i := range stream {
		if cat[i] != stream[i] {
			t.Fatal("split/concat mismatch")
		}
	}
	// More packets than bytes collapses to byte-sized packets.
	if got := SplitStream(stream[:3], 10); len(got) != 3 {
		t.Errorf("tiny stream parts = %d", len(got))
	}
	if got := SplitStream(stream, 0); len(got) != 1 {
		t.Errorf("zero requested parts = %d", len(got))
	}
}

func shareTestImage(t *testing.T) (ImageMeta, [][]byte, *wavelet.Image) {
	t.Helper()
	im := wavelet.Medical(64, 64, 11)
	obj, err := media.EncodeImage(im, "scan")
	if err != nil {
		t.Fatal(err)
	}
	meta, packets, err := ShareImage("img-1", obj, 16)
	if err != nil {
		t.Fatal(err)
	}
	return meta, packets, im
}

func TestImageViewerFullDelivery(t *testing.T) {
	meta, packets, im := shareTestImage(t)
	v := NewImageViewer()
	v.Announce(meta)
	for i, p := range packets {
		if err := v.AddPacket("img-1", i, p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := v.Stats("img-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsAccepted != 16 || st.PacketsReceived != 16 {
		t.Errorf("stats: %+v", st)
	}
	res, err := v.Render("img-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless || !res.Image.Equal(im) {
		t.Error("full delivery should render losslessly")
	}
}

func TestImageViewerBudget(t *testing.T) {
	meta, packets, im := shareTestImage(t)
	v := NewImageViewer()
	v.SetBudget(4)
	v.Announce(meta)
	for i, p := range packets {
		v.AddPacket("img-1", i, p)
	}
	st, _ := v.Stats("img-1")
	if st.PacketsAccepted != 4 {
		t.Errorf("accepted = %d, want 4", st.PacketsAccepted)
	}
	if st.PacketsReceived != 16 {
		t.Errorf("received = %d", st.PacketsReceived)
	}
	if st.BPP <= 0 || st.BPP >= 8 {
		t.Errorf("BPP = %g", st.BPP)
	}
	if st.CompressionRatio <= 1 {
		t.Errorf("CR = %g", st.CompressionRatio)
	}
	res, err := v.Render("img-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Lossless {
		t.Error("4/16 packets cannot be lossless")
	}
	psnr, _ := wavelet.PSNR(im, res.Image)
	if psnr < 10 {
		t.Errorf("4-packet PSNR = %.1f dB, unusably low", psnr)
	}

	// Raising the budget mid-stream extends the accepted prefix.
	v.SetBudget(16)
	v.AddPacket("img-1", 0, packets[0]) // duplicate triggers re-advance... no: dup ignored
	// Re-advance happens on the next new packet; emulate by adding a
	// packet that was already there: prefix recomputation happens in
	// AddPacket only for new packets, so push the remaining ones again.
	st, _ = v.Stats("img-1")
	if st.PacketsAccepted != 4 {
		t.Errorf("accepted before new packet = %d", st.PacketsAccepted)
	}
	// A fresh viewer with the higher budget accepts everything.
	v2 := NewImageViewer()
	v2.Announce(meta)
	for i, p := range packets {
		v2.AddPacket("img-1", i, p)
	}
	st2, _ := v2.Stats("img-1")
	if st2.PacketsAccepted != 16 {
		t.Errorf("unlimited accepted = %d", st2.PacketsAccepted)
	}
}

func TestImageViewerZeroBudget(t *testing.T) {
	meta, packets, _ := shareTestImage(t)
	v := NewImageViewer()
	v.SetBudget(0)
	v.Announce(meta)
	for i, p := range packets {
		v.AddPacket("img-1", i, p)
	}
	st, _ := v.Stats("img-1")
	if st.PacketsAccepted != 0 || st.AcceptedBytes != 0 {
		t.Errorf("zero budget stats: %+v", st)
	}
	if !math.IsInf(st.CompressionRatio, 1) {
		t.Errorf("zero-budget CR = %g, want +Inf", st.CompressionRatio)
	}
}

func TestImageViewerOutOfOrderAndErrors(t *testing.T) {
	meta, packets, _ := shareTestImage(t)
	v := NewImageViewer()
	v.Announce(meta)

	// Out-of-order delivery: accepted prefix only advances contiguously.
	v.AddPacket("img-1", 2, packets[2])
	st, _ := v.Stats("img-1")
	if st.PacketsAccepted != 0 || st.PacketsReceived != 1 {
		t.Errorf("gap stats: %+v", st)
	}
	v.AddPacket("img-1", 0, packets[0])
	v.AddPacket("img-1", 1, packets[1])
	st, _ = v.Stats("img-1")
	if st.PacketsAccepted != 3 {
		t.Errorf("after gap fill: %+v", st)
	}
	// Duplicates ignored.
	v.AddPacket("img-1", 0, packets[0])
	st, _ = v.Stats("img-1")
	if st.PacketsReceived != 3 {
		t.Errorf("duplicate counted: %+v", st)
	}

	if err := v.AddPacket("ghost", 0, nil); !errors.Is(err, ErrUnknownImage) {
		t.Errorf("unknown image: %v", err)
	}
	if err := v.AddPacket("img-1", 99, nil); !errors.Is(err, ErrBadPacket) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := v.Stats("ghost"); !errors.Is(err, ErrUnknownImage) {
		t.Errorf("stats unknown: %v", err)
	}
	if _, err := v.Render("ghost"); !errors.Is(err, ErrUnknownImage) {
		t.Errorf("render unknown: %v", err)
	}
	if len(v.Objects()) != 1 {
		t.Errorf("objects: %v", v.Objects())
	}

	// Sharing a non-image object fails.
	if _, _, err := ShareImage("x", media.NewText("hi"), 4); err == nil {
		t.Error("sharing text as image should fail")
	}
}

// TestQuickMoreBudgetNeverWorse: with every packet delivered, a larger
// budget never yields lower PSNR.
func TestQuickMoreBudgetNeverWorse(t *testing.T) {
	im := wavelet.Circles(48, 48)
	obj, err := media.EncodeImage(im, "rings")
	if err != nil {
		t.Fatal(err)
	}
	meta, packets, err := ShareImage("o", obj, 16)
	if err != nil {
		t.Fatal(err)
	}
	renderAt := func(budget int) float64 {
		v := NewImageViewer()
		v.SetBudget(budget)
		v.Announce(meta)
		for i, p := range packets {
			v.AddPacket("o", i, p)
		}
		res, err := v.Render("o")
		if err != nil {
			t.Fatal(err)
		}
		psnr, _ := wavelet.PSNR(im, res.Image)
		return psnr
	}
	f := func(a, b uint8) bool {
		ba, bb := int(a%17), int(b%17)
		if ba > bb {
			ba, bb = bb, ba
		}
		return renderAt(ba) <= renderAt(bb)+0.6 // tolerance for mid-plane cuts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWhiteboardStrokeRoundTrip: arbitrary strokes survive the
// event codec.
func TestQuickWhiteboardStrokeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Stroke{
			ID:    r.Uint32(),
			Color: uint8(r.Intn(256)),
			Width: uint8(r.Intn(256)),
		}
		for i, n := 0, r.Intn(50); i < n; i++ {
			s.Points = append(s.Points, Point{int16(r.Intn(1 << 16)), int16(r.Intn(1 << 16))})
		}
		w := NewWhiteboard()
		if err := w.Apply(EncodeStroke(s)); err != nil {
			return false
		}
		got := w.Strokes()[0]
		if got.ID != s.ID || got.Color != s.Color || got.Width != s.Width || len(got.Points) != len(s.Points) {
			return false
		}
		for i := range s.Points {
			if got.Points[i] != s.Points[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
