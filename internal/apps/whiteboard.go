package apps

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Point is a whiteboard coordinate.
type Point struct{ X, Y int16 }

// Stroke is one drawn figure.
type Stroke struct {
	ID     uint32
	Color  uint8 // palette index
	Width  uint8
	Points []Point
}

// Whiteboard operation codes.
const (
	wbOpStroke = 1
	wbOpErase  = 2
	wbOpClear  = 3
)

// Whiteboard is the shared vector drawing surface.
type Whiteboard struct {
	mu      sync.RWMutex
	strokes map[uint32]Stroke
	zorder  []uint32
	nextID  uint32
}

// NewWhiteboard returns an empty whiteboard.
func NewWhiteboard() *Whiteboard {
	return &Whiteboard{strokes: make(map[uint32]Stroke)}
}

// NewStrokeID allocates a locally unique stroke identifier.  Callers
// combine it with their client ID in the session's object name to make
// it globally unique.
func (w *Whiteboard) NewStrokeID() uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	return w.nextID
}

// EncodeStroke builds the event payload adding a stroke.
func EncodeStroke(s Stroke) []byte {
	out := []byte{wbOpStroke, s.Color, s.Width}
	out = binary.BigEndian.AppendUint32(out, s.ID)
	out = binary.BigEndian.AppendUint16(out, uint16(len(s.Points)))
	for _, p := range s.Points {
		out = binary.BigEndian.AppendUint16(out, uint16(p.X))
		out = binary.BigEndian.AppendUint16(out, uint16(p.Y))
	}
	return out
}

// EncodeErase builds the event payload removing a stroke.
func EncodeErase(id uint32) []byte {
	return binary.BigEndian.AppendUint32([]byte{wbOpErase}, id)
}

// EncodeClear builds the event payload clearing the board.
func EncodeClear() []byte { return []byte{wbOpClear} }

// Apply ingests a whiteboard event.
func (w *Whiteboard) Apply(payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("%w: empty whiteboard payload", ErrBadEvent)
	}
	switch payload[0] {
	case wbOpStroke:
		if len(payload) < 3+4+2 {
			return fmt.Errorf("%w: short stroke", ErrBadEvent)
		}
		s := Stroke{Color: payload[1], Width: payload[2]}
		s.ID = binary.BigEndian.Uint32(payload[3:])
		n := int(binary.BigEndian.Uint16(payload[7:]))
		if len(payload) != 9+4*n {
			return fmt.Errorf("%w: stroke points %d vs payload %d", ErrBadEvent, n, len(payload))
		}
		s.Points = make([]Point, n)
		for i := 0; i < n; i++ {
			s.Points[i].X = int16(binary.BigEndian.Uint16(payload[9+4*i:]))
			s.Points[i].Y = int16(binary.BigEndian.Uint16(payload[11+4*i:]))
		}
		w.mu.Lock()
		if _, dup := w.strokes[s.ID]; !dup {
			w.zorder = append(w.zorder, s.ID)
		}
		w.strokes[s.ID] = s
		w.mu.Unlock()
		return nil
	case wbOpErase:
		if len(payload) != 5 {
			return fmt.Errorf("%w: erase payload", ErrBadEvent)
		}
		id := binary.BigEndian.Uint32(payload[1:])
		w.mu.Lock()
		if _, ok := w.strokes[id]; ok {
			delete(w.strokes, id)
			for i, z := range w.zorder {
				if z == id {
					w.zorder = append(w.zorder[:i], w.zorder[i+1:]...)
					break
				}
			}
		}
		w.mu.Unlock()
		return nil
	case wbOpClear:
		if len(payload) != 1 {
			return fmt.Errorf("%w: clear payload", ErrBadEvent)
		}
		w.mu.Lock()
		w.strokes = make(map[uint32]Stroke)
		w.zorder = nil
		w.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("%w: whiteboard op %d", ErrBadEvent, payload[0])
	}
}

// Strokes returns the strokes in z-order.
func (w *Whiteboard) Strokes() []Stroke {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]Stroke, 0, len(w.zorder))
	for _, id := range w.zorder {
		out = append(out, w.strokes[id])
	}
	return out
}

// Len returns the number of strokes on the board.
func (w *Whiteboard) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.strokes)
}

// IDs returns the stroke IDs, sorted (for deterministic tests/logs).
func (w *Whiteboard) IDs() []uint32 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]uint32, 0, len(w.strokes))
	for id := range w.strokes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
