package apps

import (
	"testing"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/wavelet"
)

func TestImageViewerColorShare(t *testing.T) {
	im := wavelet.ColorScene(48, 48, 3)
	obj, err := media.EncodeColorImage(im, "color scene")
	if err != nil {
		t.Fatal(err)
	}
	meta, packets, err := ShareImage("c-1", obj, 16)
	if err != nil {
		t.Fatal(err)
	}

	v := NewImageViewer()
	v.Announce(meta)
	for i, p := range packets {
		if err := v.AddPacket("c-1", i, p); err != nil {
			t.Fatal(err)
		}
	}

	// Full delivery: color render is lossless.
	cres, err := v.RenderColor("c-1")
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Lossless || !cres.Image.Equal(im) {
		t.Error("full color share should render losslessly")
	}
	// The grayscale Render view is the luma plane.
	gres, err := v.Render("c-1")
	if err != nil {
		t.Fatal(err)
	}
	if gres.Image.W != 48 || !gres.Lossless {
		t.Errorf("grayscale view: %dx%d lossless=%v", gres.Image.W, gres.Image.H, gres.Lossless)
	}

	// Constrained budget: partial planes, grayscale-or-worse but valid.
	v2 := NewImageViewer()
	v2.SetBudget(4)
	v2.Announce(meta)
	for i, p := range packets {
		v2.AddPacket("c-1", i, p)
	}
	cres, err = v2.RenderColor("c-1")
	if err != nil {
		t.Fatal(err)
	}
	if cres.Lossless {
		t.Error("4/16 packets cannot be lossless")
	}
	if cres.Image.W != 48 {
		t.Error("partial color dimensions")
	}

	// Zero budget: blank canvas.
	v3 := NewImageViewer()
	v3.SetBudget(0)
	v3.Announce(meta)
	for i, p := range packets {
		v3.AddPacket("c-1", i, p)
	}
	cres, err = v3.RenderColor("c-1")
	if err != nil {
		t.Fatal(err)
	}
	if cres.PlanesPresent != 0 || cres.Image.W != 48 {
		t.Errorf("zero-budget color render: %+v", cres)
	}

	if _, err := v.RenderColor("ghost"); err == nil {
		t.Error("unknown object accepted")
	}
}
