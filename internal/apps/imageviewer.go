package apps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/wavelet"
)

// ImageViewer is the shared progressive-image application whose
// behaviour the paper's first two experiments measure.  A share is
// announced with metadata, then its embedded stream arrives as a fixed
// number of packets.  The viewer accepts packets only up to the budget
// the inference engine set for the current system state; the accepted
// prefix decodes to an image whose bits-per-pixel and compression
// ratio are the Fig 6/Fig 7 quantities.

// ImageViewer errors.
var (
	ErrUnknownImage = errors.New("apps: unknown shared image")
	ErrBadPacket    = errors.New("apps: image packet out of range")
)

// ImageMeta announces a shared image.
type ImageMeta struct {
	// Object is the shared-object identifier.
	Object string
	// Width, Height are the raster dimensions.
	Width, Height int
	// TotalPackets is how many packets carry the embedded stream.
	TotalPackets int
	// StreamBytes is the full embedded stream length.
	StreamBytes int
	// Description is the verbal tag.
	Description string
}

// EncodeImageMeta builds the announce event payload.
func EncodeImageMeta(m ImageMeta) []byte {
	out := binary.BigEndian.AppendUint16(nil, uint16(m.Width))
	out = binary.BigEndian.AppendUint16(out, uint16(m.Height))
	out = binary.BigEndian.AppendUint16(out, uint16(m.TotalPackets))
	out = binary.BigEndian.AppendUint32(out, uint32(m.StreamBytes))
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Object)))
	out = append(out, m.Object...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Description)))
	return append(out, m.Description...)
}

// DecodeImageMeta parses an announce payload.
func DecodeImageMeta(payload []byte) (ImageMeta, error) {
	if len(payload) < 14 {
		return ImageMeta{}, fmt.Errorf("%w: short image meta", ErrBadEvent)
	}
	m := ImageMeta{
		Width:        int(binary.BigEndian.Uint16(payload)),
		Height:       int(binary.BigEndian.Uint16(payload[2:])),
		TotalPackets: int(binary.BigEndian.Uint16(payload[4:])),
		StreamBytes:  int(binary.BigEndian.Uint32(payload[6:])),
	}
	off := 10
	n := int(binary.BigEndian.Uint16(payload[off:]))
	off += 2
	if len(payload) < off+n+2 {
		return ImageMeta{}, fmt.Errorf("%w: image meta object", ErrBadEvent)
	}
	m.Object = string(payload[off : off+n])
	off += n
	d := int(binary.BigEndian.Uint16(payload[off:]))
	off += 2
	if len(payload) != off+d {
		return ImageMeta{}, fmt.Errorf("%w: image meta description", ErrBadEvent)
	}
	m.Description = string(payload[off:])
	if m.Width < 1 || m.Height < 1 || m.TotalPackets < 1 {
		return ImageMeta{}, fmt.Errorf("%w: image meta values", ErrBadEvent)
	}
	return m, nil
}

// SplitStream slices an embedded stream into n near-equal packets in
// stream order (packet i must precede packet i+1 for prefix decoding).
func SplitStream(stream []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	if n > len(stream) && len(stream) > 0 {
		n = len(stream)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		lo := len(stream) * i / n
		hi := len(stream) * (i + 1) / n
		out = append(out, stream[lo:hi])
	}
	return out
}

// ShareImage prepares an image object for sharing: the announce
// metadata plus the packetized stream.
func ShareImage(object string, obj *media.Object, totalPackets int) (ImageMeta, [][]byte, error) {
	if obj.Kind != media.KindImage ||
		(obj.Format != media.FormatEZW && obj.Format != media.FormatEZWColor) {
		return ImageMeta{}, nil, fmt.Errorf("%w: %s", media.ErrBadInput, obj)
	}
	packets := SplitStream(obj.Data, totalPackets)
	meta := ImageMeta{
		Object:       object,
		Width:        obj.Width,
		Height:       obj.Height,
		TotalPackets: len(packets),
		StreamBytes:  len(obj.Data),
		Description:  obj.Description,
	}
	return meta, packets, nil
}

// ImageStats are the image-viewer parameters the experiments plot.
type ImageStats struct {
	// PacketsReceived counts packets that arrived.
	PacketsReceived int
	// PacketsAccepted counts packets accepted under the budget.
	PacketsAccepted int
	// TotalPackets is the announced packet count.
	TotalPackets int
	// AcceptedBytes is the byte length of the accepted prefix.
	AcceptedBytes int
	// BPP is bits-per-pixel of the accepted representation.
	BPP float64
	// CompressionRatio is raw (8 bpp) size over accepted size; +Inf
	// when nothing was accepted.
	CompressionRatio float64
}

type sharedImage struct {
	meta     ImageMeta
	received map[int][]byte
	accepted int // contiguous prefix packets accepted
	budget   int
}

// ImageViewer tracks shared images and applies the packet budget.
type ImageViewer struct {
	mu     sync.RWMutex
	images map[string]*sharedImage
	budget int // default budget for new shares; <0 = unlimited
}

// NewImageViewer returns an empty viewer with an unlimited budget.
func NewImageViewer() *ImageViewer {
	return &ImageViewer{images: make(map[string]*sharedImage), budget: -1}
}

// SetBudget sets the packet budget applied to shares: the number of
// packets the viewer accepts per image (<0 = unlimited).  The budget
// applies to subsequent packets of existing shares as well.
func (v *ImageViewer) SetBudget(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.budget = n
	for _, si := range v.images {
		si.budget = n
	}
}

// Budget returns the current default budget.
func (v *ImageViewer) Budget() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.budget
}

// Announce registers a new shared image.
func (v *ImageViewer) Announce(meta ImageMeta) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.images[meta.Object] = &sharedImage{
		meta:     meta,
		received: make(map[int][]byte),
		budget:   v.budget,
	}
}

// AddPacket ingests packet idx of a shared image.  Packets beyond the
// budget are counted as received but not accepted; the accepted prefix
// only grows through contiguous, in-budget packets.
func (v *ImageViewer) AddPacket(object string, idx int, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	si, ok := v.images[object]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownImage, object)
	}
	if idx < 0 || idx >= si.meta.TotalPackets {
		return fmt.Errorf("%w: %d of %d", ErrBadPacket, idx, si.meta.TotalPackets)
	}
	if _, dup := si.received[idx]; dup {
		return nil
	}
	si.received[idx] = append([]byte(nil), data...)
	// Advance the accepted prefix under the budget.
	for {
		limit := si.meta.TotalPackets
		if si.budget >= 0 && si.budget < limit {
			limit = si.budget
		}
		if si.accepted >= limit {
			break
		}
		if _, ok := si.received[si.accepted]; !ok {
			break
		}
		si.accepted++
	}
	return nil
}

// Forget drops all state for a shared image (a completed collection
// that has been rendered and delivered, or one evicted by a TTL
// sweep).  Unknown objects are a no-op.
func (v *ImageViewer) Forget(object string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.images, object)
}

// Objects returns the shared-object IDs known to the viewer.
func (v *ImageViewer) Objects() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.images))
	for id := range v.images {
		out = append(out, id)
	}
	return out
}

// Stats reports the viewer parameters for a shared image.
func (v *ImageViewer) Stats(object string) (ImageStats, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	si, ok := v.images[object]
	if !ok {
		return ImageStats{}, fmt.Errorf("%w: %q", ErrUnknownImage, object)
	}
	st := ImageStats{
		PacketsReceived: len(si.received),
		PacketsAccepted: si.accepted,
		TotalPackets:    si.meta.TotalPackets,
	}
	for i := 0; i < si.accepted; i++ {
		st.AcceptedBytes += len(si.received[i])
	}
	pixels := float64(si.meta.Width * si.meta.Height)
	st.BPP = float64(st.AcceptedBytes*8) / pixels
	if st.AcceptedBytes > 0 {
		st.CompressionRatio = pixels / float64(st.AcceptedBytes)
	} else {
		st.CompressionRatio = math.Inf(1)
	}
	return st, nil
}

// Render decodes the accepted prefix of a shared image.
func (v *ImageViewer) Render(object string) (*wavelet.DecodeResult, error) {
	v.mu.RLock()
	si, ok := v.images[object]
	if !ok {
		v.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownImage, object)
	}
	var stream []byte
	for i := 0; i < si.accepted; i++ {
		stream = append(stream, si.received[i]...)
	}
	meta := si.meta
	v.mu.RUnlock()
	// Color streams render through the color decoder; the grayscale
	// Render view is the luma plane.
	if len(stream) >= 4 && string(stream[:4]) == "EZC1" {
		cres, err := wavelet.DecodeColor(stream)
		if err != nil {
			return nil, err
		}
		luma := cres.Image.Luma()
		luma.Clamp8()
		return &wavelet.DecodeResult{Image: luma, Lossless: cres.Lossless}, nil
	}
	res, err := wavelet.Decode(stream)
	if errors.Is(err, wavelet.ErrStreamHeader) {
		// Nothing (or less than a header) accepted yet: show a blank
		// canvas of the announced size rather than failing the render.
		return &wavelet.DecodeResult{Image: wavelet.NewImage(meta.Width, meta.Height)}, nil
	}
	return res, err
}

// RenderColor decodes the accepted prefix of a color share.  With no
// accepted data it returns a blank canvas; with a partial prefix the
// chroma may be missing (a grayscale rendition).
func (v *ImageViewer) RenderColor(object string) (*wavelet.ColorDecodeResult, error) {
	v.mu.RLock()
	si, ok := v.images[object]
	if !ok {
		v.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownImage, object)
	}
	var stream []byte
	for i := 0; i < si.accepted; i++ {
		stream = append(stream, si.received[i]...)
	}
	meta := si.meta
	v.mu.RUnlock()
	res, err := wavelet.DecodeColor(stream)
	if errors.Is(err, wavelet.ErrColorStream) && len(stream) < 16 {
		return &wavelet.ColorDecodeResult{
			Image: wavelet.NewColorImage(meta.Width, meta.Height),
		}, nil
	}
	return res, err
}
