// Package apps implements the collaboration applications the paper's
// user interface exposes — the chat area, the whiteboard and the image
// viewer — as headless state machines.  Each application consumes
// session events (remote actions replayed locally) and produces event
// payloads (local actions to be multicast), with a snapshotable state
// repository so the application interface can encode object state for
// late joiners.
package apps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// App names used in session events.
const (
	AppChat        = "chat"
	AppWhiteboard  = "whiteboard"
	AppImageViewer = "imageviewer"
)

// Application errors.
var (
	ErrBadEvent = errors.New("apps: malformed event payload")
)

// ChatLine is one utterance in the chat area.
type ChatLine struct {
	Sender string
	Text   string
}

// ChatArea is the shared text-chat application.
type ChatArea struct {
	mu    sync.RWMutex
	lines []ChatLine
	// MaxLines bounds history; 0 = unlimited.
	MaxLines int
}

// NewChatArea returns an empty chat area.
func NewChatArea() *ChatArea { return &ChatArea{} }

// EncodeSay builds the event payload for a chat line.
func EncodeSay(text string) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(text)))
	return append(out, text...)
}

// Apply ingests a chat event from sender.
func (c *ChatArea) Apply(sender string, payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("%w: chat payload %d bytes", ErrBadEvent, len(payload))
	}
	n := int(binary.BigEndian.Uint32(payload))
	if len(payload) != 4+n {
		return fmt.Errorf("%w: chat length %d vs %d", ErrBadEvent, n, len(payload)-4)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = append(c.lines, ChatLine{Sender: sender, Text: string(payload[4:])})
	if c.MaxLines > 0 && len(c.lines) > c.MaxLines {
		c.lines = append([]ChatLine(nil), c.lines[len(c.lines)-c.MaxLines:]...)
	}
	return nil
}

// Lines returns a copy of the history.
func (c *ChatArea) Lines() []ChatLine {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]ChatLine(nil), c.lines...)
}

// Len returns the number of stored lines.
func (c *ChatArea) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.lines)
}
