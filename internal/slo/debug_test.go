package slo

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptiveqos/internal/obs"
)

// TestDebugSLOEndpoint drives the registered /debug/slo handler end to
// end through the obs mux: the default engine's conformance view must
// come back over HTTP, including the ?client= filter.
func TestDebugSLOEndpoint(t *testing.T) {
	base := time.Unix(2000, 0)
	d := Default()
	d.Register("http-c1", testSpec())
	feed(d, "http-c1", base, 0.5, 8)
	d.Poll(base.Add(200 * time.Millisecond))

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return string(b)
	}

	body := get(srv.URL + "/debug/slo")
	for _, want := range []string{"slo conformance", "http-c1", "violated"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/slo missing %q:\n%s", want, body)
		}
	}

	// The filter drops other clients' rows.
	filtered := get(srv.URL + "/debug/slo?client=no-such-client")
	if strings.Contains(filtered, "http-c1") {
		t.Errorf("?client= filter leaked http-c1:\n%s", filtered)
	}

	// The debug index advertises the endpoint.
	index := get(srv.URL + "/debug")
	if !strings.Contains(index, "/debug/slo") {
		t.Errorf("debug index does not list /debug/slo:\n%s", index)
	}
}
