package slo

import (
	"sync"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// State is a client's conformance state.
type State uint8

// The conformance state machine.  Recovered is distinct from
// conforming so operators (and the effectiveness counters) can see
// that a client came back rather than never left.
const (
	StateConforming State = iota
	StateAtRisk
	StateViolated
	StateRecovered
	numStates
)

var stateNames = [numStates]string{"conforming", "at-risk", "violated", "recovered"}

// String returns the state label.
func (s State) String() string {
	if s < numStates {
		return stateNames[s]
	}
	return "state(?)"
}

// Transition is one recorded conformance-state change.
type Transition struct {
	AtNS      int64
	Client    string
	From, To  State
	Objective Objective // worst-burning objective at transition time
	BurnShort float64
	BurnLong  float64
}

// maxTransitions bounds the engine's transition log.
const maxTransitions = 256

// BurnPair is one objective's short/long-window burn at the last poll.
type BurnPair struct {
	Short, Long float64
}

// clientState is everything the engine tracks for one client.
type clientState struct {
	spec   Spec
	series [numObjectives]series

	state   State
	sinceNS int64

	violatedAtNS   int64
	deadlineScored bool
	violations     uint64

	burns     [numObjectives]BurnPair
	worst     Objective
	burnShort float64 // max over objectives
	burnLong  float64

	attributions []Attribution
}

// ClientStatus is a point-in-time conformance summary for one client
// (debug views, collab's session summary).
type ClientStatus struct {
	Client     string
	Class      string
	State      State
	SinceNS    int64
	Violations uint64
	Worst      Objective
	BurnShort  float64
	BurnLong   float64
	Burns      [numObjectives]BurnPair
}

// Engine evaluates per-client SLO specs over sliding windows and runs
// the conformance state machine.  All methods are safe for concurrent
// use.
type Engine struct {
	mu          sync.Mutex
	defaultSpec Spec
	clients     map[string]*clientState
	transitions []Transition
	sources     []RadioSource

	// clk times Register/Observe and the Run loop; nil means wall.
	clk clock.Clock

	// Poll idempotence: on a virtual clock many drive iterations can
	// land on the same instant; re-evaluating the state machine at an
	// unchanged time is pure waste, so Poll short-circuits it.
	polled     bool
	lastPollNS int64

	stop chan struct{}
	done chan struct{}
}

// SetClock pins the engine's timestamps and Run ticker to c (nil
// restores wall time).  Call before Run.
func (e *Engine) SetClock(c clock.Clock) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clk = c
}

// NewEngine creates an engine whose unregistered clients get spec
// (zero-value fields take defaults; a fully zero spec enables no
// objectives until clients are registered explicitly).
func NewEngine(spec Spec) *Engine {
	return &Engine{
		defaultSpec: spec.withDefaults(),
		clients:     make(map[string]*clientState),
	}
}

// SetDefaultSpec replaces the spec applied to clients first seen after
// this call; already-known clients keep theirs.
func (e *Engine) SetDefaultSpec(spec Spec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defaultSpec = spec.withDefaults()
}

// Register binds a client to a spec, resetting any prior window state.
func (e *Engine) Register(client string, spec Spec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clients[client] = newClientState(spec, clock.Or(e.clk).Now().UnixNano())
}

// RegisterRadioSource adds a radio-snapshot provider consulted when a
// violation attribution is captured.  Sources are called with the
// engine lock held and must not call back into the engine.  The
// returned function unregisters.
func (e *Engine) RegisterRadioSource(src RadioSource) func() {
	e.mu.Lock()
	e.sources = append(e.sources, src)
	idx := len(e.sources) - 1
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if idx < len(e.sources) {
			e.sources[idx] = nil
		}
	}
}

func newClientState(spec Spec, nowNS int64) *clientState {
	cs := &clientState{spec: spec.withDefaults(), sinceNS: nowNS}
	for i := range cs.series {
		cs.series[i] = newSeries(cs.spec.LongWindow)
	}
	return cs
}

// Observe records one observation for (client, objective) at the
// current time, auto-registering unknown clients with the default
// spec.  Classification against the spec target happens here; the
// window ring stores only counts.
func (e *Engine) Observe(client string, o Objective, v float64) {
	e.observeAt(client, o, v, clock.Or(e.clk).Now().UnixNano())
}

func (e *Engine) observeAt(client string, o Objective, v float64, nowNS int64) {
	if o >= numObjectives {
		return
	}
	e.mu.Lock()
	cs, ok := e.clients[client]
	if !ok {
		cs = newClientState(e.defaultSpec, nowNS)
		e.clients[client] = cs
	}
	cs.series[o].observe(nowNS, v, cs.spec.bad(o, v))
	e.mu.Unlock()
}

// Poll evaluates every client's windows at now and advances the
// conformance state machine.  Deterministic: tests drive it with
// synthetic clocks.  Idempotent per instant: a repeat Poll at exactly
// the time of the previous one (common when a virtual clock hasn't
// advanced between drive iterations) is a no-op.
func (e *Engine) Poll(now time.Time) {
	nowNS := now.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.polled && nowNS == e.lastPollNS {
		return
	}
	e.polled, e.lastPollNS = true, nowNS
	for client, cs := range e.clients {
		e.pollClient(client, cs, nowNS)
	}
}

func (e *Engine) pollClient(client string, cs *clientState, nowNS int64) {
	sp := cs.spec
	cs.burnShort, cs.burnLong = 0, 0
	cs.worst = ObjDelivery
	for o := Objective(0); o < numObjectives; o++ {
		bs := sp.burnRate(o, &cs.series[o], nowNS, sp.ShortWindow)
		bl := sp.burnRate(o, &cs.series[o], nowNS, sp.LongWindow)
		cs.burns[o] = BurnPair{Short: bs, Long: bl}
		if bs > cs.burnShort {
			cs.burnShort, cs.worst = bs, o
		}
		if bl > cs.burnLong {
			cs.burnLong = bl
		}
	}

	// Multi-window rule: the short window reacts, the long window
	// confirms — a violation needs both burning.
	violate := cs.burnShort >= sp.ViolateBurn && cs.burnLong >= sp.AtRiskBurn

	switch cs.state {
	case StateConforming:
		if violate {
			e.setState(client, cs, StateViolated, nowNS)
		} else if cs.burnShort >= sp.AtRiskBurn {
			e.setState(client, cs, StateAtRisk, nowNS)
		}
	case StateAtRisk:
		if violate {
			e.setState(client, cs, StateViolated, nowNS)
		} else if cs.burnShort < sp.RecoverBurn {
			e.setState(client, cs, StateConforming, nowNS)
		}
	case StateViolated:
		if !cs.deadlineScored && nowNS-cs.violatedAtNS > sp.RecoveryDeadline.Nanoseconds() {
			// Adaptation failed to restore conformance in time.
			cs.deadlineScored = true
			metrics.C(metrics.CtrAdaptationIneffective).Inc()
		}
		if cs.burnShort < sp.RecoverBurn {
			e.setState(client, cs, StateRecovered, nowNS)
		}
	case StateRecovered:
		if violate {
			e.setState(client, cs, StateViolated, nowNS)
		} else if cs.burnShort < sp.AtRiskBurn && nowNS-cs.sinceNS >= sp.HoldDown.Nanoseconds() {
			e.setState(client, cs, StateConforming, nowNS)
		}
	}

	label := `{client="` + metrics.EscapeLabel(client) + `"}`
	obs.SetGauge("slo_state"+label, float64(cs.state))
	obs.SetGauge("slo_burn_short"+label, cs.burnShort)
	obs.SetGauge("slo_burn_long"+label, cs.burnLong)
}

// setState performs one transition with all its side effects: the
// transition log, counters, gauges, the session record, and — on entry
// into violated — attribution capture and the effectiveness clock.
// Caller holds e.mu.
func (e *Engine) setState(client string, cs *clientState, to State, nowNS int64) {
	from := cs.state
	if from == to {
		return
	}
	cs.state = to
	cs.sinceNS = nowNS

	tr := Transition{
		AtNS:      nowNS,
		Client:    client,
		From:      from,
		To:        to,
		Objective: cs.worst,
		BurnShort: cs.burnShort,
		BurnLong:  cs.burnLong,
	}
	if len(e.transitions) >= maxTransitions {
		copy(e.transitions, e.transitions[1:])
		e.transitions = e.transitions[:maxTransitions-1]
	}
	e.transitions = append(e.transitions, tr)
	metrics.C(metrics.CtrSLOTransitions).Inc()

	switch to {
	case StateViolated:
		cs.violations++
		cs.violatedAtNS = nowNS
		cs.deadlineScored = false
		metrics.C(metrics.CtrSLOViolations).Inc()
		metrics.C(metrics.SLOClientViolations(client)).Inc()
		a := captureAttribution(client, cs.worst, cs.burnShort, cs.burnLong, nowNS, e.sources)
		if len(cs.attributions) >= maxAttributions {
			copy(cs.attributions, cs.attributions[1:])
			cs.attributions = cs.attributions[:maxAttributions-1]
		}
		cs.attributions = append(cs.attributions, a)
	case StateRecovered:
		if from == StateViolated {
			ttr := nowNS - cs.violatedAtNS
			obs.H("slo_time_to_recover_ns").Observe(ttr)
			metrics.C(metrics.CtrSLORecoveries).Inc()
			if !cs.deadlineScored {
				metrics.C(metrics.CtrAdaptationEffective).Inc()
			}
		}
	}

	obs.RecordEvent(obs.RecEvent{
		Type:   obs.RecTypeSLO,
		AtNS:   nowNS,
		Client: client,
		Name:   cs.worst.String(),
		Value:  cs.burnShort,
		Detail: from.String() + "->" + to.String(),
	})
}

// Status returns every tracked client's conformance summary.
func (e *Engine) Status() []ClientStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ClientStatus, 0, len(e.clients))
	for client, cs := range e.clients {
		st := ClientStatus{
			Client:     client,
			Class:      cs.spec.Class,
			State:      cs.state,
			SinceNS:    cs.sinceNS,
			Violations: cs.violations,
			Worst:      cs.worst,
			BurnShort:  cs.burnShort,
			BurnLong:   cs.burnLong,
		}
		copy(st.Burns[:], cs.burns[:])
		out = append(out, st)
	}
	return out
}

// Transitions returns up to max recorded transitions, oldest first
// (max <= 0 returns all).
func (e *Engine) Transitions(max int) []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	trs := e.transitions
	if max > 0 && len(trs) > max {
		trs = trs[len(trs)-max:]
	}
	return append([]Transition(nil), trs...)
}

// Attributions returns the client's retained violation bundles, oldest
// first.
func (e *Engine) Attributions(client string) []Attribution {
	e.mu.Lock()
	defer e.mu.Unlock()
	cs, ok := e.clients[client]
	if !ok {
		return nil
	}
	return append([]Attribution(nil), cs.attributions...)
}

// Run launches the periodic Poll loop (interval <= 0 defaults to 1s).
// A second Run without an intervening Stop is a no-op.
func (e *Engine) Run(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	clk := clock.Or(e.clk)
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := clk.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C():
				e.Poll(clk.Now())
			}
		}
	}(e.stop, e.done)
}

// Stop halts the Poll loop and waits for it to exit.
func (e *Engine) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
