package slo

import "time"

// Objective identifies one SLO dimension.
type Objective uint8

// The four contract objectives (DESIGN.md §13).
const (
	// ObjDelivery bounds delivery latency: at most 1% of deliveries
	// (p99) may exceed Spec.DeliveryP99 over a window.
	ObjDelivery Objective = iota
	// ObjLoss bounds the mean sampled loss fraction by Spec.LossMax.
	ObjLoss
	// ObjRepair bounds gap-repair convergence: at most
	// Spec.RepairSlowFrac of repairs may take longer than
	// Spec.RepairConverge.
	ObjRepair
	// ObjTier is the tier-residency floor: the client must sit at or
	// above Spec.TierFloor for at least Spec.TierResidency of samples.
	ObjTier
	numObjectives
)

var objectiveNames = [numObjectives]string{"delivery", "loss", "repair", "tier"}

// String returns the objective label (metric labels, debug views).
func (o Objective) String() string {
	if o < numObjectives {
		return objectiveNames[o]
	}
	return "objective(?)"
}

// Objectives lists every objective in order.
func Objectives() []Objective {
	out := make([]Objective, numObjectives)
	for i := range out {
		out[i] = Objective(i)
	}
	return out
}

// Spec is one client's declarative SLO: per-objective targets, the
// evaluation windows, and the state-machine thresholds.  Zero-valued
// objective targets disable that objective; zero-valued machinery
// fields take defaults.  SpecForClass returns per-contract-class
// presets.
type Spec struct {
	// Class names the contract class the spec was derived from.
	Class string

	// DeliveryP99 is the delivery-latency bound: at most 1% of
	// deliveries may exceed it (0 disables the objective).
	DeliveryP99 time.Duration
	// LossMax is the loss-fraction budget: the mean sampled loss over
	// a window may not exceed it (0 disables).
	LossMax float64
	// RepairConverge bounds repair convergence latency; RepairSlowFrac
	// is the tolerated fraction of slower repairs (default 0.1).
	RepairConverge time.Duration
	RepairSlowFrac float64
	// TierFloor is the minimum acceptable service tier ordinal;
	// TierResidency is the required fraction of samples at or above it
	// (default 0.9).  TierFloor 0 disables the objective.
	TierFloor     int
	TierResidency float64

	// ShortWindow and LongWindow are the sliding evaluation intervals
	// (defaults 5s and 4×ShortWindow).  The short window reacts, the
	// long window confirms: violation requires both to burn.
	ShortWindow, LongWindow time.Duration

	// Burn-rate thresholds: at-risk when shortBurn >= AtRiskBurn
	// (default 1), violated when shortBurn >= ViolateBurn (default 2)
	// AND longBurn >= AtRiskBurn, recovered when shortBurn falls below
	// RecoverBurn (default 0.5).
	AtRiskBurn, ViolateBurn, RecoverBurn float64

	// HoldDown is how long a recovered client must stay clean before
	// it is conforming again (default ShortWindow).
	HoldDown time.Duration

	// RecoveryDeadline bounds adaptation effectiveness: conformance
	// restored within it after a violation counts effective, a blown
	// deadline counts ineffective (default LongWindow).
	RecoveryDeadline time.Duration
}

func (s Spec) withDefaults() Spec {
	if s.Class == "" {
		s.Class = "interactive"
	}
	if s.RepairSlowFrac <= 0 || s.RepairSlowFrac > 1 {
		s.RepairSlowFrac = 0.1
	}
	if s.TierResidency <= 0 || s.TierResidency >= 1 {
		s.TierResidency = 0.9
	}
	if s.ShortWindow <= 0 {
		s.ShortWindow = 5 * time.Second
	}
	if s.LongWindow < s.ShortWindow {
		s.LongWindow = 4 * s.ShortWindow
	}
	if s.AtRiskBurn <= 0 {
		s.AtRiskBurn = 1
	}
	if s.ViolateBurn <= 0 {
		s.ViolateBurn = 2
	}
	if s.RecoverBurn <= 0 {
		s.RecoverBurn = 0.5
	}
	if s.HoldDown <= 0 {
		s.HoldDown = s.ShortWindow
	}
	if s.RecoveryDeadline <= 0 {
		s.RecoveryDeadline = s.LongWindow
	}
	return s
}

// budget returns the objective's error budget — the tolerated bad
// fraction burn rates are normalized against — and whether the
// objective is enabled by this spec.
func (s Spec) budget(o Objective) (float64, bool) {
	switch o {
	case ObjDelivery:
		return 0.01, s.DeliveryP99 > 0
	case ObjLoss:
		return s.LossMax, s.LossMax > 0
	case ObjRepair:
		return s.RepairSlowFrac, s.RepairConverge > 0
	case ObjTier:
		return 1 - s.TierResidency, s.TierFloor > 0
	}
	return 0, false
}

// Burn returns the burn rate implied by an observed bad fraction (for
// ObjLoss, the mean sampled loss fraction): frac divided by the
// objective's error budget, exactly the normalization the conformance
// state machine applies to its sliding windows.  Objectives the spec
// disables burn 0.  The counterfactual replay harness scores candidate
// policies with this (DESIGN.md §15), so replay fitness and live
// conformance agree on what "one budget's worth of badness" means.
func (s Spec) Burn(o Objective, frac float64) float64 {
	budget, enabled := s.withDefaults().budget(o)
	if !enabled || budget <= 0 {
		return 0
	}
	return frac / budget
}

// bad classifies one observation against the objective's target.
func (s Spec) bad(o Objective, v float64) bool {
	switch o {
	case ObjDelivery:
		return v > float64(s.DeliveryP99.Nanoseconds())
	case ObjLoss:
		return v > s.LossMax
	case ObjRepair:
		return v > float64(s.RepairConverge.Nanoseconds())
	case ObjTier:
		return v < float64(s.TierFloor)
	}
	return false
}

// SpecForClass returns the preset spec for a contract class:
//
//	realtime     tight latency and loss, full-image tier floor
//	interactive  the default collaboration profile
//	bulk         relaxed latency, loss-tolerant, text tier floor
//
// Unknown classes get the interactive preset under their own name.
func SpecForClass(class string) Spec {
	s := Spec{Class: class}
	switch class {
	case "realtime":
		s.DeliveryP99 = 20 * time.Millisecond
		s.LossMax = 0.01
		s.RepairConverge = 250 * time.Millisecond
		s.TierFloor = 3 // image
		s.TierResidency = 0.95
	case "bulk":
		s.DeliveryP99 = 2 * time.Second
		s.LossMax = 0.20
		s.RepairConverge = 5 * time.Second
		s.TierFloor = 1 // text
		s.TierResidency = 0.5
	default: // interactive
		s.DeliveryP99 = 100 * time.Millisecond
		s.LossMax = 0.05
		s.RepairConverge = time.Second
		s.TierFloor = 1 // text
		s.TierResidency = 0.9
	}
	return s.withDefaults()
}
