package slo

import "time"

// winBuckets is the bucket count behind each objective's sliding
// window pair: the long window spans all buckets, the short window a
// trailing subset, so one ring serves both without storing samples.
const winBuckets = 16

// wbucket accumulates one bucket interval's classified observations.
type wbucket struct {
	count uint64
	bad   uint64
	sum   float64
}

// series is a bucketed sliding window of observations for one
// objective of one client.  Buckets rotate on absolute time index;
// bucket p always holds the unique interval j in
// (head-winBuckets, head] with j ≡ p (mod winBuckets) — advance
// zeroes every interval it skips, so idle periods read as empty
// rather than stale.  Callers synchronize (the owning clientState's
// mutex).
type series struct {
	bucketNS int64
	head     int64 // absolute index of the newest bucket; 0 = unset
	buckets  [winBuckets]wbucket
}

func newSeries(long time.Duration) series {
	b := long.Nanoseconds() / winBuckets
	if b <= 0 {
		b = 1
	}
	return series{bucketNS: b}
}

// advance rotates the ring forward to the bucket covering nowNS.
func (s *series) advance(nowNS int64) {
	idx := nowNS / s.bucketNS
	if s.head == 0 {
		s.head = idx
		return
	}
	if idx <= s.head {
		return
	}
	steps := idx - s.head
	if steps > winBuckets {
		steps = winBuckets
	}
	for i := int64(1); i <= steps; i++ {
		s.buckets[(s.head+i)%winBuckets] = wbucket{}
	}
	s.head = idx
}

// observe records one classified observation at nowNS.
func (s *series) observe(nowNS int64, v float64, bad bool) {
	s.advance(nowNS)
	b := &s.buckets[s.head%winBuckets]
	b.count++
	if bad {
		b.bad++
	}
	b.sum += v
}

// window sums the trailing span ending at nowNS.
func (s *series) window(nowNS int64, span time.Duration) (count, bad uint64, sum float64) {
	if s.bucketNS == 0 || s.head == 0 {
		return
	}
	n := (span.Nanoseconds() + s.bucketNS - 1) / s.bucketNS
	if n < 1 {
		n = 1
	}
	if n > winBuckets {
		n = winBuckets
	}
	idx := nowNS / s.bucketNS
	for i := int64(0); i < n; i++ {
		j := idx - i
		if j <= 0 {
			break
		}
		if j > s.head {
			continue // not yet written: empty future bucket
		}
		if s.head-j >= winBuckets {
			break // rotated away
		}
		b := &s.buckets[j%winBuckets]
		count += b.count
		bad += b.bad
		sum += b.sum
	}
	return
}

// burn computes the objective's burn rate over the trailing span: the
// observed bad fraction (or, for the loss objective, the mean sampled
// fraction) divided by the spec's error budget.  No samples in the
// window reads as burn 0 — an idle client is not violating anything.
func (sp Spec) burnRate(o Objective, ser *series, nowNS int64, span time.Duration) float64 {
	budget, enabled := sp.budget(o)
	if !enabled || budget <= 0 {
		return 0
	}
	count, bad, sum := ser.window(nowNS, span)
	if count == 0 {
		return 0
	}
	if o == ObjLoss {
		return (sum / float64(count)) / budget
	}
	return (float64(bad) / float64(count)) / budget
}
