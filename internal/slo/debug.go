package slo

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"adaptiveqos/internal/obs"
)

// WriteSummary renders the engine's conformance view as text: the
// per-client table, the transition log, and the latest violation
// attributions.  client filters to one client when non-empty.  Shared
// by /debug/slo and collab's session summary.
func (e *Engine) WriteSummary(w io.Writer, client string) {
	status := e.Status()
	sort.Slice(status, func(i, j int) bool { return status[i].Client < status[j].Client })

	fmt.Fprintf(w, "slo conformance (%d clients, monitoring %s); filter with ?client=<id>\n\n",
		len(status), onOff(Enabled()))
	fmt.Fprintf(w, "%-12s %-12s %-11s %-10s %6s %10s %10s  %s\n",
		"CLIENT", "CLASS", "STATE", "WORST", "VIOL", "BURN-S", "BURN-L", "PER-OBJECTIVE BURN (short/long)")
	for _, st := range status {
		if client != "" && st.Client != client {
			continue
		}
		var per []string
		for o := Objective(0); o < numObjectives; o++ {
			b := st.Burns[o]
			if b.Short == 0 && b.Long == 0 {
				continue
			}
			per = append(per, fmt.Sprintf("%s=%.2f/%.2f", o, b.Short, b.Long))
		}
		fmt.Fprintf(w, "%-12s %-12s %-11s %-10s %6d %10.2f %10.2f  %s\n",
			st.Client, st.Class, st.State, st.Worst, st.Violations,
			st.BurnShort, st.BurnLong, strings.Join(per, " "))
	}

	trs := e.Transitions(0)
	fmt.Fprintf(w, "\ntransitions (%d recorded):\n", len(trs))
	for _, tr := range trs {
		if client != "" && tr.Client != client {
			continue
		}
		fmt.Fprintf(w, "  %s %-12s %s -> %s  (worst=%s burn=%.2f/%.2f)\n",
			time.Unix(0, tr.AtNS).Format("15:04:05.000"),
			tr.Client, tr.From, tr.To, tr.Objective, tr.BurnShort, tr.BurnLong)
	}

	for _, st := range status {
		if client != "" && st.Client != client {
			continue
		}
		for _, a := range e.Attributions(st.Client) {
			writeAttribution(w, a)
		}
	}
}

func writeAttribution(w io.Writer, a Attribution) {
	fmt.Fprintf(w, "\nviolation %s client=%s objective=%s burn=%.2f/%.2f\n",
		time.Unix(0, a.AtNS).Format("15:04:05.000"),
		a.Client, a.Objective, a.BurnShort, a.BurnLong)
	if len(a.Traces) == 0 {
		fmt.Fprintf(w, "  worst traces: (none retained)\n")
	}
	for _, t := range a.Traces {
		fmt.Fprintf(w, "  trace %s span=%dus hops=%d last=%s\n",
			obs.TraceHex(t.ID), t.SpanUS, t.Hops, t.LastStage)
	}
	for _, d := range a.Decisions {
		fired := strings.Join(d.Fired, ",")
		if fired == "" {
			fired = "(none)"
		}
		contract := "satisfied"
		if !d.Satisfied {
			contract = "violated"
		}
		fmt.Fprintf(w, "  decision %s budget=%d modality=%s %s fired=%s\n",
			time.Unix(0, d.At).Format("15:04:05.000"), d.Budget, orKeep(d.Modality), contract, fired)
	}
	if a.RadioOK {
		fmt.Fprintf(w, "  radio bs=%s sir=%.1fdB power=%.2f distance=%.0fm tier=%d\n",
			a.Radio.BS, a.Radio.SIRdB, a.Radio.Power, a.Radio.Distance, a.Radio.Tier)
	}
	for _, sd := range a.Curves {
		if len(sd.Points) == 0 {
			continue
		}
		last := sd.Points[len(sd.Points)-1]
		v := last.Value
		if sd.Kind == "histogram" {
			v = last.P99
		}
		fmt.Fprintf(w, "  curve %-40s windows=%d last=%.3f\n", sd.Name, len(sd.Points), v)
	}
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

func orKeep(m string) string {
	if m == "" {
		return "(keep)"
	}
	return m
}

func init() {
	obs.RegisterDebug("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		defaultEngine.WriteSummary(w, r.URL.Query().Get("client"))
	})
}
