package slo

import (
	"testing"
	"time"
)

func TestSeriesWindowBasics(t *testing.T) {
	s := newSeries(1600 * time.Millisecond) // 100ms buckets
	base := time.Unix(1000, 0).UnixNano()

	for i := 0; i < 4; i++ {
		s.observe(base+int64(i)*int64(100*time.Millisecond), 0.5, i%2 == 0)
	}
	now := base + int64(300*time.Millisecond)
	count, bad, sum := s.window(now, 400*time.Millisecond)
	if count != 4 || bad != 2 {
		t.Fatalf("window = count %d bad %d, want 4/2", count, bad)
	}
	if sum != 2.0 {
		t.Fatalf("window sum = %g, want 2.0", sum)
	}

	// A narrower span sees only the trailing buckets.
	count, bad, _ = s.window(now, 200*time.Millisecond)
	if count != 2 || bad != 1 {
		t.Fatalf("short window = count %d bad %d, want 2/1", count, bad)
	}
}

func TestSeriesRotationZeroesSkippedBuckets(t *testing.T) {
	s := newSeries(1600 * time.Millisecond)
	base := time.Unix(1000, 0).UnixNano()

	s.observe(base, 1, true)
	// Jump far past the ring: every bucket between must read empty.
	later := base + int64(10*time.Second)
	s.observe(later, 1, false)
	count, bad, _ := s.window(later, 1600*time.Millisecond)
	if count != 1 || bad != 0 {
		t.Fatalf("after long idle: count %d bad %d, want 1/0 (stale data leaked)", count, bad)
	}
}

func TestSeriesIdleWindowIsEmpty(t *testing.T) {
	s := newSeries(1600 * time.Millisecond)
	base := time.Unix(1000, 0).UnixNano()
	s.observe(base, 1, true)
	// Query two long-windows later without observing: all rotated away.
	count, _, _ := s.window(base+int64(4*time.Second), 1600*time.Millisecond)
	if count != 0 {
		t.Fatalf("idle window count = %d, want 0", count)
	}
}

func TestBurnRate(t *testing.T) {
	sp := Spec{DeliveryP99: 100 * time.Millisecond, LossMax: 0.1,
		ShortWindow: time.Second, LongWindow: 4 * time.Second}.withDefaults()
	base := time.Unix(1000, 0).UnixNano()

	// Delivery: bad fraction over the 1% budget.
	ser := newSeries(sp.LongWindow)
	for i := 0; i < 100; i++ {
		v := float64(10 * time.Millisecond)
		if i < 2 {
			v = float64(500 * time.Millisecond)
		}
		ser.observe(base, v, sp.bad(ObjDelivery, v))
	}
	if burn := sp.burnRate(ObjDelivery, &ser, base, sp.ShortWindow); burn < 1.9 || burn > 2.1 {
		t.Fatalf("delivery burn = %g, want ~2 (2%% bad over 1%% budget)", burn)
	}

	// Loss: mean sampled fraction over the budget.
	ls := newSeries(sp.LongWindow)
	ls.observe(base, 0.15, sp.bad(ObjLoss, 0.15))
	ls.observe(base, 0.25, sp.bad(ObjLoss, 0.25))
	if burn := sp.burnRate(ObjLoss, &ls, base, sp.ShortWindow); burn < 1.99 || burn > 2.01 {
		t.Fatalf("loss burn = %g, want 2.0 (mean 0.2 over 0.1 budget)", burn)
	}

	// Empty window burns nothing; disabled objective burns nothing.
	empty := newSeries(sp.LongWindow)
	if burn := sp.burnRate(ObjDelivery, &empty, base, sp.ShortWindow); burn != 0 {
		t.Fatalf("empty-window burn = %g, want 0", burn)
	}
	if burn := sp.burnRate(ObjRepair, &ser, base, sp.ShortWindow); burn != 0 {
		t.Fatalf("disabled-objective burn = %g, want 0", burn)
	}
}

func TestSpecPresetsAndClassification(t *testing.T) {
	for _, class := range []string{"realtime", "interactive", "bulk"} {
		sp := SpecForClass(class)
		if sp.Class != class {
			t.Errorf("SpecForClass(%q).Class = %q", class, sp.Class)
		}
		for _, o := range Objectives() {
			if _, enabled := sp.budget(o); !enabled {
				t.Errorf("%s: objective %s disabled in preset", class, o)
			}
		}
	}
	sp := SpecForClass("interactive")
	if !sp.bad(ObjDelivery, float64(200*time.Millisecond)) || sp.bad(ObjDelivery, float64(time.Millisecond)) {
		t.Error("delivery classification wrong")
	}
	if !sp.bad(ObjTier, 0) || sp.bad(ObjTier, 2) {
		t.Error("tier classification wrong")
	}
	if !sp.bad(ObjLoss, 0.5) || sp.bad(ObjLoss, 0.01) {
		t.Error("loss classification wrong")
	}
	if !sp.bad(ObjRepair, float64(5*time.Second)) || sp.bad(ObjRepair, float64(time.Millisecond)) {
		t.Error("repair classification wrong")
	}
}
