// Package slo closes the paper's adaptation loop with measurement:
// clients hold QoS contracts and the system adapts modality, tier and
// repair behaviour to keep them — this package is the part that says
// whether a contract is actually being met, for whom, and whether an
// adaptation fixed anything.
//
// Each client gets a declarative Spec (delivery-latency p99, loss
// fraction, repair time-to-converge, tier-residency floor — preset
// per contract class) evaluated over a short and a long sliding
// window as burn rates: observed badness divided by the objective's
// error budget, so burn 1.0 means "consuming exactly the budget" and
// anything above it is trouble.  A per-client conformance state
// machine (conforming → at-risk → violated → recovered) runs on the
// windowed burn rates; transitions are counted (aqos_slo_*), exported
// as gauges, appended to the session record, and — on entry into
// violated — decorated with an attribution bundle: exemplar
// flight-recorder trace IDs for the worst offending messages, the
// inference decisions audited in the surrounding window, and the
// client's radio/tier snapshot.  Violations also start an
// adaptation-effectiveness clock: conformance restored within the
// recovery deadline counts aqos_slo_adaptation_effective (plus a
// time-to-recover histogram), a blown deadline counts
// aqos_slo_adaptation_ineffective.
//
// Like the rest of the observability layer, the disabled path is one
// process-global atomic load and zero allocations (guarded by
// TestSLODisabledZeroAllocs and TestSLOOverheadGuard in CI).
package slo

import (
	"sync/atomic"
	"time"
)

// on is the process-global SLO evaluation switch; every Observe*
// entry point loads it once and returns when off.
var on atomic.Bool

// SetEnabled turns SLO conformance monitoring on or off at runtime.
func SetEnabled(v bool) { on.Store(v) }

// Enabled reports whether SLO conformance monitoring is on.
func Enabled() bool { return on.Load() }

// defaultEngine is the process-global engine the package-level
// Observe* functions feed, mirroring the obs package's globals: hot
// paths call slo.ObserveDelivery(...) without holding a handle.
var defaultEngine = NewEngine(Spec{})

// Default returns the process-global engine (registration, polling,
// debug views).
func Default() *Engine { return defaultEngine }

// ObserveDelivery records one message-delivery latency for client —
// publish timestamp to application apply, the user-visible delay the
// delivery objective bounds.  No-op (one atomic load, zero
// allocations) while monitoring is off.
func ObserveDelivery(client string, latency time.Duration) {
	if !on.Load() {
		return
	}
	defaultEngine.Observe(client, ObjDelivery, float64(latency.Nanoseconds()))
}

// ObserveLoss records one sampled loss fraction (0..1) for client.
func ObserveLoss(client string, fraction float64) {
	if !on.Load() {
		return
	}
	defaultEngine.Observe(client, ObjLoss, fraction)
}

// ObserveRepair records one gap-repair convergence latency (first
// NACK to gap filled) for client.
func ObserveRepair(client string, converge time.Duration) {
	if !on.Load() {
		return
	}
	defaultEngine.Observe(client, ObjRepair, float64(converge.Nanoseconds()))
}

// ObserveTier records one sampled service tier for client (the
// radio.Tier ordinal: 0 none, 1 text, 2 sketch, 3 image).
func ObserveTier(client string, tier int) {
	if !on.Load() {
		return
	}
	defaultEngine.Observe(client, ObjTier, float64(tier))
}
