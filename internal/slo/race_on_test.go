//go:build race

package slo

// raceDetectorEnabled reports whether this test binary was built with
// -race.  Timing guards skip under the race detector: instrumented
// atomics and locks make an overhead budget meaningless.
const raceDetectorEnabled = true
