package slo

import (
	"sort"

	"adaptiveqos/internal/inference"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/timeline"
)

// Attribution bounds: a bundle carries at most maxExemplars worst
// traces and maxDecisions audited inference decisions, and each client
// retains the last maxAttributions bundles.
const (
	maxExemplars    = 4
	maxDecisions    = 4
	maxAttributions = 4

	// Curve bounds: the windows leading up to the violation and how many
	// metric series a bundle may attach.
	maxCurveWindows = 16
	maxCurveSeries  = 12
)

// RadioSnapshot is a client's radio/tier state at violation time, as
// reported by a registered RadioSource (typically the base station).
type RadioSnapshot struct {
	BS       string
	SIRdB    float64
	Power    float64
	Distance float64
	Tier     int
}

// RadioSource reports the current radio snapshot for a client, and
// whether the source knows the client at all.
type RadioSource func(client string) (RadioSnapshot, bool)

// TraceExemplar references one flight-recorder trace that ended at the
// violating client — an entry point for /debug/trace forensics.
type TraceExemplar struct {
	ID        uint64
	Hops      int
	SpanUS    uint32
	LastStage string
}

// DecisionSummary condenses one audited inference decision from the
// window surrounding the violation.
type DecisionSummary struct {
	At        int64
	Fired     []string
	Budget    int
	Modality  string
	Satisfied bool
}

// Attribution is the evidence bundle captured when a client enters the
// violated state: what burned, which messages were worst, what the
// inference engine decided around that time, and what the radio looked
// like.
type Attribution struct {
	AtNS      int64
	Client    string
	Objective Objective
	BurnShort float64
	BurnLong  float64
	Traces    []TraceExemplar
	Decisions []DecisionSummary
	Radio     RadioSnapshot
	RadioOK   bool

	// Curves holds the metric windows surrounding the violation (the
	// client's own gauges, end-to-end latency and repair activity) when
	// a process-global timeline is enabled — the "what was trending when
	// it broke" view the flight-recorder exemplars cannot give.
	Curves []timeline.SeriesData
}

// captureAttribution assembles the bundle for a freshly violated
// client.  The engine calls it under its own lock, so sources must not
// call back into the engine (see RegisterRadioSource).
func captureAttribution(client string, worst Objective, burnShort, burnLong float64, nowNS int64, sources []RadioSource) Attribution {
	a := Attribution{
		AtNS:      nowNS,
		Client:    client,
		Objective: worst,
		BurnShort: burnShort,
		BurnLong:  burnLong,
	}

	// Worst messages: traces whose final hop landed on this client,
	// ranked by total span.
	var mine []obs.TraceSummary
	for _, t := range obs.TraceSummaries(0) {
		if t.Last.Node == client {
			mine = append(mine, t)
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].SpanUS > mine[j].SpanUS })
	if len(mine) > maxExemplars {
		mine = mine[:maxExemplars]
	}
	for _, t := range mine {
		a.Traces = append(a.Traces, TraceExemplar{
			ID:        t.ID,
			Hops:      t.Hops,
			SpanUS:    t.SpanUS,
			LastStage: t.Last.Stage.String(),
		})
	}

	// Surrounding inference decisions, newest first.
	for _, d := range inference.Audits(client, maxDecisions) {
		a.Decisions = append(a.Decisions, DecisionSummary{
			At:        d.At,
			Fired:     append([]string(nil), d.Fired...),
			Budget:    d.Budget,
			Modality:  d.Modality,
			Satisfied: d.Satisfied,
		})
	}

	for _, src := range sources {
		if src == nil {
			continue
		}
		if snap, ok := src(client); ok {
			a.Radio = snap
			a.RadioOK = true
			break
		}
	}

	a.Curves = captureCurves(client, nowNS)
	return a
}

// captureCurves pulls the recent metric windows relevant to client
// from the process-global timeline: the client's own labeled series,
// end-to-end latency and repair traffic.  Nil when no timeline is
// enabled — the bundle stays cheap by default.
func captureCurves(client string, nowNS int64) []timeline.SeriesData {
	tl := timeline.Active()
	if tl == nil {
		return nil
	}
	return tl.Query(timeline.Query{
		Contains: []string{
			`{client="` + metrics.EscapeLabel(client) + `"}`,
			"e2e_latency_ns",
			"repair.",
		},
		UntilNS:    nowNS,
		MaxWindows: maxCurveWindows,
		MaxSeries:  maxCurveSeries,
	})
}
