package slo

import (
	"testing"
	"time"
)

// guardWorkload mirrors the obs overhead guards: an FNV-1a pass over a
// buffer, the order of one message's real per-hop work.
func guardWorkload(buf []byte, seed uint64) uint64 {
	h := seed ^ 14695981039346656037
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// TestDisabledObserveZeroAllocs pins the tentpole's disabled-path
// contract: with SLO monitoring off, every Observe* entry point is one
// atomic load and allocates nothing.
func TestDisabledObserveZeroAllocs(t *testing.T) {
	SetEnabled(false)
	if n := testing.AllocsPerRun(1000, func() {
		ObserveDelivery("c", 10*time.Millisecond)
		ObserveLoss("c", 0.01)
		ObserveRepair("c", 100*time.Millisecond)
		ObserveTier("c", 2)
	}); n != 0 {
		t.Fatalf("disabled Observe* allocates %.1f per run, want 0", n)
	}
}

// TestEnabledObserveSteadyStateZeroAllocs checks the enabled hot path:
// once a client's state exists, an observation is a map lookup and a
// bucket update — no allocation.
func TestEnabledObserveSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine(SpecForClass("interactive"))
	e.Observe("c", ObjLoss, 0.01) // allocate the client state once
	if n := testing.AllocsPerRun(1000, func() {
		e.Observe("c", ObjLoss, 0.01)
		e.Observe("c", ObjDelivery, float64(10*time.Millisecond))
	}); n != 0 {
		t.Fatalf("steady-state Observe allocates %.1f per run, want 0", n)
	}
}

// TestEnabledObserveOverheadGuard is the CI gate on the ISSUE's <5%
// overhead budget for enabled SLO evaluation: wrapping a realistic
// per-message unit of work with an enabled Observe must add under 5%.
func TestEnabledObserveOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("race detector multiplies lock-access cost; budget is meaningless")
	}

	e := NewEngine(SpecForClass("interactive"))
	e.Observe("guard-client", ObjDelivery, float64(time.Millisecond))

	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = byte(i * 13)
	}
	const iters = 10_000
	const rounds = 5

	var sink uint64
	bare := func() {
		for i := 0; i < iters; i++ {
			sink += guardWorkload(buf, uint64(i))
		}
	}
	observed := func() {
		for i := 0; i < iters; i++ {
			sink += guardWorkload(buf, uint64(i))
			e.Observe("guard-client", ObjDelivery, float64(time.Millisecond))
		}
	}

	minTime := func(fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Warm both paths, then interleave; a shared CI host can steal the
	// core mid-round, so an over-budget reading is re-measured before
	// it fails the guard.
	bare()
	observed()
	const attempts = 3
	var overhead float64
	for a := 1; a <= attempts; a++ {
		bareBest := minTime(bare)
		obsBest := minTime(observed)
		if sink == 0 {
			t.Fatal("workload optimized away")
		}
		overhead = float64(obsBest-bareBest) / float64(bareBest)
		t.Logf("attempt %d: bare %v, observed %v, overhead %.2f%%",
			a, bareBest, obsBest, overhead*100)
		if overhead <= 0.05 {
			return
		}
	}
	t.Errorf("enabled Observe overhead %.2f%% exceeds the 5%% budget", overhead*100)
}

// TestConcurrentObservePoll shakes the engine under -race: observers,
// pollers and readers running together must not race or deadlock.
func TestConcurrentObservePoll(t *testing.T) {
	e := NewEngine(testSpec())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			client := []string{"a", "b"}[g%2]
			for i := 0; i < 2000; i++ {
				e.Observe(client, Objective(i%int(numObjectives)), 0.5)
			}
		}(g)
	}
	go func() {
		defer func() { done <- struct{}{} }()
		for i := 0; i < 200; i++ {
			e.Poll(time.Now())
			e.Status()
			e.Transitions(8)
			e.Attributions("a")
		}
	}()
	for i := 0; i < 5; i++ {
		<-done
	}
}
