//go:build !race

package slo

// raceDetectorEnabled reports whether this test binary was built with
// -race.
const raceDetectorEnabled = false
