package slo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/timeline"
)

// testSpec is a loss-objective-only spec with second-scale windows the
// tests can walk deterministically: budget 0.1, so burn = mean/0.1.
func testSpec() Spec {
	return Spec{
		Class:            "test",
		LossMax:          0.1,
		ShortWindow:      time.Second,
		LongWindow:       4 * time.Second,
		HoldDown:         time.Second,
		RecoveryDeadline: 4 * time.Second,
	}.withDefaults()
}

func counterDelta(t *testing.T, name string, before map[string]uint64) uint64 {
	t.Helper()
	return metrics.Counters()[name] - before[name]
}

// feed observes n loss samples of value v spread over the bucket at t.
func feed(e *Engine, client string, at time.Time, v float64, n int) {
	for i := 0; i < n; i++ {
		e.observeAt(client, ObjLoss, v, at.UnixNano())
	}
}

func TestConformanceStateMachineFullWalk(t *testing.T) {
	before := metrics.Counters()
	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)

	// Healthy: loss well under budget.
	feed(e, "c1", base, 0.01, 4)
	e.Poll(base.Add(200 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateConforming {
		t.Fatalf("healthy state = %s, want conforming", st.State)
	}

	// Short-window burn 1.5 (0.15/0.1): at-risk, not violated (short
	// burn below the violate threshold).
	feed(e, "c1", base.Add(1*time.Second), 0.15, 4)
	e.Poll(base.Add(1200 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateAtRisk {
		t.Fatalf("at-risk walk: state = %s (burn %.2f/%.2f)", st.State, st.BurnShort, st.BurnLong)
	}

	// Burn 5 short with the long window confirming: violated.
	feed(e, "c1", base.Add(2*time.Second), 0.5, 4)
	e.Poll(base.Add(2200 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateViolated || st.Violations != 1 {
		t.Fatalf("violated walk: state = %s violations = %d", st.State, st.Violations)
	}

	// Burn dies down: recovered (within the deadline → effective).
	feed(e, "c1", base.Add(3500*time.Millisecond), 0.01, 4)
	e.Poll(base.Add(3700 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateRecovered {
		t.Fatalf("recovery walk: state = %s (burn %.2f/%.2f)", st.State, st.BurnShort, st.BurnLong)
	}

	// Clean through the hold-down: conforming again.
	e.Poll(base.Add(5 * time.Second))
	if st := status(e, "c1"); st.State != StateConforming {
		t.Fatalf("hold-down walk: state = %s, want conforming", st.State)
	}

	trs := e.Transitions(0)
	want := []State{StateAtRisk, StateViolated, StateRecovered, StateConforming}
	if len(trs) != len(want) {
		t.Fatalf("transitions = %d, want %d (%+v)", len(trs), len(want), trs)
	}
	for i, tr := range trs {
		if tr.To != want[i] || tr.Client != "c1" {
			t.Errorf("transition %d = %s->%s, want to %s", i, tr.From, tr.To, want[i])
		}
	}

	if d := counterDelta(t, metrics.CtrSLOTransitions, before); d != 4 {
		t.Errorf("transition counter delta = %d, want 4", d)
	}
	if d := counterDelta(t, metrics.CtrSLOViolations, before); d != 1 {
		t.Errorf("violation counter delta = %d, want 1", d)
	}
	if d := counterDelta(t, metrics.SLOClientViolations("c1"), before); d != 1 {
		t.Errorf("per-client violation counter delta = %d, want 1", d)
	}
	if d := counterDelta(t, metrics.CtrSLORecoveries, before); d != 1 {
		t.Errorf("recovery counter delta = %d, want 1", d)
	}
	if d := counterDelta(t, metrics.CtrAdaptationEffective, before); d != 1 {
		t.Errorf("effective counter delta = %d, want 1", d)
	}
	if d := counterDelta(t, metrics.CtrAdaptationIneffective, before); d != 0 {
		t.Errorf("ineffective counter delta = %d, want 0", d)
	}
}

func status(e *Engine, client string) ClientStatus {
	for _, st := range e.Status() {
		if st.Client == client {
			return st
		}
	}
	return ClientStatus{}
}

func TestAtRiskRelaxesWithoutViolation(t *testing.T) {
	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)
	feed(e, "c1", base, 0.15, 4)
	e.Poll(base.Add(200 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateAtRisk {
		t.Fatalf("state = %s, want at-risk", st.State)
	}
	// Burn drains below RecoverBurn with no violation in between: back
	// to conforming directly, never through recovered.
	e.Poll(base.Add(3 * time.Second))
	if st := status(e, "c1"); st.State != StateConforming {
		t.Fatalf("state = %s, want conforming", st.State)
	}
	trs := e.Transitions(0)
	if len(trs) != 2 || trs[1].To != StateConforming {
		t.Fatalf("transitions = %+v", trs)
	}
}

func TestBlownRecoveryDeadlineScoresIneffective(t *testing.T) {
	before := metrics.Counters()
	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)

	feed(e, "c1", base, 0.5, 8)
	e.Poll(base.Add(200 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateViolated {
		t.Fatalf("state = %s, want violated", st.State)
	}
	// Keep it burning past the 4s recovery deadline.
	feed(e, "c1", base.Add(4*time.Second), 0.5, 8)
	e.Poll(base.Add(4500 * time.Millisecond))
	if d := counterDelta(t, metrics.CtrAdaptationIneffective, before); d != 1 {
		t.Fatalf("ineffective delta = %d, want 1", d)
	}
	// A second poll past the deadline must not double-score.
	feed(e, "c1", base.Add(5*time.Second), 0.5, 8)
	e.Poll(base.Add(5500 * time.Millisecond))
	if d := counterDelta(t, metrics.CtrAdaptationIneffective, before); d != 1 {
		t.Fatalf("ineffective delta after re-poll = %d, want 1 (double-scored)", d)
	}
	// Late recovery still counts as a recovery, but not as effective.
	e.Poll(base.Add(10 * time.Second))
	if st := status(e, "c1"); st.State != StateRecovered {
		t.Fatalf("state = %s, want recovered", st.State)
	}
	if d := counterDelta(t, metrics.CtrSLORecoveries, before); d != 1 {
		t.Errorf("recovery delta = %d, want 1", d)
	}
	if d := counterDelta(t, metrics.CtrAdaptationEffective, before); d != 0 {
		t.Errorf("effective delta = %d, want 0 (deadline was blown)", d)
	}
}

func TestViolationAttributionBundle(t *testing.T) {
	e := NewEngine(testSpec())
	unreg := e.RegisterRadioSource(func(client string) (RadioSnapshot, bool) {
		if client != "c1" {
			return RadioSnapshot{}, false
		}
		return RadioSnapshot{BS: "bs", SIRdB: 7.5, Power: 0.8, Distance: 60, Tier: 2}, true
	})
	defer unreg()

	// Retained flight-recorder traces ending at the violating client
	// become the exemplars.
	obs.SetTraceEnabled(true)
	defer func() {
		obs.SetTraceEnabled(false)
		obs.ResetFlight()
	}()
	obs.ResetFlight()
	slow := obs.MsgID("sender", 1)
	fast := obs.MsgID("sender", 2)
	other := obs.MsgID("sender", 3)
	obs.AppendHop(slow, "sender", obs.StagePublish)
	time.Sleep(2 * time.Millisecond)
	obs.AppendHop(slow, "c1", obs.StageDeliver)
	obs.AppendHop(fast, "sender", obs.StagePublish)
	obs.AppendHop(fast, "c1", obs.StageDeliver)
	obs.AppendHop(other, "sender", obs.StagePublish)
	obs.AppendHop(other, "c2", obs.StageDeliver)

	base := time.Unix(1000, 0)
	feed(e, "c1", base, 0.5, 8)
	e.Poll(base.Add(200 * time.Millisecond))

	atts := e.Attributions("c1")
	if len(atts) != 1 {
		t.Fatalf("attributions = %d, want 1", len(atts))
	}
	a := atts[0]
	if a.Objective != ObjLoss || a.BurnShort < 2 {
		t.Errorf("attribution objective/burn = %s %.2f", a.Objective, a.BurnShort)
	}
	if !a.RadioOK || a.Radio.BS != "bs" || a.Radio.Tier != 2 {
		t.Errorf("radio snapshot = %+v ok=%v", a.Radio, a.RadioOK)
	}
	if len(a.Traces) != 2 {
		t.Fatalf("trace exemplars = %+v, want the 2 traces ending at c1", a.Traces)
	}
	if a.Traces[0].ID != slow {
		t.Errorf("worst exemplar = %016x, want the slow trace %016x", a.Traces[0].ID, slow)
	}
	for _, ex := range a.Traces {
		if ex.ID == other {
			t.Errorf("exemplar includes a trace that ended at another client")
		}
	}
}

// TestViolationAttachesTimelineCurves pins the attribution→timeline
// integration: with a process-global timeline enabled, a fresh
// violation bundles the client's own labeled series and the shared
// latency curve (and nothing unrelated); with no timeline the bundle
// stays curve-free.
func TestViolationAttachesTimelineCurves(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(990, 0))
	tl := timeline.New(timeline.Config{Window: time.Second, Retention: 32, Clock: clk})
	var lossG obs.Gauge
	var lat obs.Histogram
	var cpu obs.Gauge
	tl.TrackGauge(`rtp_loss_fraction{client="c1"}`, &lossG)
	tl.TrackHistogram("e2e_latency_ns", &lat)
	tl.TrackGauge("cpu_load", &cpu) // unrelated: must not attach
	tl.Start()
	for i := 0; i < 5; i++ {
		lossG.Set(0.1 * float64(i))
		lat.Observe(int64(time.Millisecond))
		clk.Advance(time.Second)
	}
	timeline.Enable(tl)
	defer timeline.Disable()

	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)
	feed(e, "c1", base, 0.5, 8)
	e.Poll(base.Add(200 * time.Millisecond))

	atts := e.Attributions("c1")
	if len(atts) != 1 {
		t.Fatalf("attributions = %d, want 1", len(atts))
	}
	curves := atts[0].Curves
	names := make(map[string]int)
	for _, sd := range curves {
		names[sd.Name] = len(sd.Points)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %v, want the client gauge and the latency histogram", names)
	}
	if n := names[`rtp_loss_fraction{client="c1"}`]; n != 5 {
		t.Errorf("client gauge curve windows = %d, want 5", n)
	}
	if n := names["e2e_latency_ns"]; n != 5 {
		t.Errorf("latency curve windows = %d, want 5", n)
	}

	// The curves render in the debug dump.
	var sb strings.Builder
	e.WriteSummary(&sb, "c1")
	if !strings.Contains(sb.String(), "curve rtp_loss_fraction") {
		t.Errorf("debug dump missing curve lines:\n%s", sb.String())
	}

	// Without a timeline the bundle stays curve-free.
	timeline.Disable()
	e2 := NewEngine(testSpec())
	feed(e2, "c1", base, 0.5, 8)
	e2.Poll(base.Add(200 * time.Millisecond))
	if got := e2.Attributions("c1"); len(got) != 1 || got[0].Curves != nil {
		t.Errorf("curves without a timeline = %+v, want none", got)
	}
}

func TestRegisterResetsAndSpecPerClient(t *testing.T) {
	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)
	feed(e, "c1", base, 0.5, 8)
	// Re-register: prior window state is discarded.
	e.Register("c1", SpecForClass("bulk"))
	e.Poll(base.Add(200 * time.Millisecond))
	if st := status(e, "c1"); st.State != StateConforming || st.Class != "bulk" {
		t.Fatalf("after re-register: %+v", st)
	}
}

func TestTransitionLogBounded(t *testing.T) {
	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)
	// Oscillate conforming <-> at-risk far past the log bound.
	for i := 0; i < maxTransitions+40; i += 2 {
		at := base.Add(time.Duration(i) * 8 * time.Second)
		feed(e, "c1", at, 0.15, 4)
		e.Poll(at.Add(200 * time.Millisecond))
		e.Poll(at.Add(6 * time.Second)) // drained: back to conforming
	}
	if n := len(e.Transitions(0)); n != maxTransitions {
		t.Fatalf("transition log = %d entries, want capped at %d", n, maxTransitions)
	}
	if got := e.Transitions(4); len(got) != 4 {
		t.Fatalf("Transitions(4) = %d entries", len(got))
	}
}

func TestWriteSummaryRendersStateAndTransitions(t *testing.T) {
	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)
	feed(e, "c1", base, 0.5, 8)
	e.Poll(base.Add(200 * time.Millisecond))

	var sb strings.Builder
	e.WriteSummary(&sb, "")
	out := sb.String()
	for _, want := range []string{"c1", "violated", "conforming -> violated", "violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Client filter drops other clients.
	feed(e, "c2", base, 0.01, 1)
	sb.Reset()
	e.WriteSummary(&sb, "c2")
	if strings.Contains(sb.String(), "conforming -> violated") {
		t.Errorf("filtered summary leaked c1 transitions:\n%s", sb.String())
	}
}

func TestSLOTransitionsAppendToSessionRecord(t *testing.T) {
	var buf bytes.Buffer
	r := obs.NewRecorder(&buf, "test", 0)
	prev := obs.InstallRecorder(r)
	defer func() {
		obs.InstallRecorder(prev)
		r.Close()
	}()

	e := NewEngine(testSpec())
	base := time.Unix(1000, 0)
	feed(e, "c1", base, 0.5, 8)
	e.Poll(base.Add(200 * time.Millisecond))

	obs.InstallRecorder(prev)
	if err := r.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	sess, err := obs.LoadSession(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var slos int
	for _, ev := range sess.Events {
		if ev.Type == obs.RecTypeSLO {
			slos++
			if ev.Client != "c1" || !strings.Contains(ev.Detail, "violated") {
				t.Errorf("slo record event = %+v", ev)
			}
		}
	}
	if slos != 1 {
		t.Fatalf("recorded slo transitions = %d, want 1", slos)
	}
}
