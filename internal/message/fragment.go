package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Data messages containing information such as images are of high
// volume and must be carried in several packets.  Split breaks a
// payload into fragments that fit a transport MTU; Reassembler
// collects fragments (tolerating duplication and reordering) and
// reports completion.  Each fragment body is prefixed with a small
// header identifying the parent message and the fragment's position.

// Fragment header layout (big-endian), prepended to each chunk:
//
//	msgID uint64 | index uint16 | count uint16 | chunkLen uint32
const fragHeaderLen = 8 + 2 + 2 + 4

// Fragmentation errors.
var (
	ErrFragMTU      = errors.New("message: MTU too small for fragment header")
	ErrFragHeader   = errors.New("message: malformed fragment header")
	ErrFragMismatch = errors.New("message: fragment inconsistent with siblings")
	ErrFragTooMany  = errors.New("message: payload needs too many fragments")
)

// MaxFragments bounds the fragment count representable in the header.
const MaxFragments = 1<<16 - 1

// Fragment is one piece of a fragmented payload.
type Fragment struct {
	MsgID uint64
	Index uint16
	Count uint16
	Chunk []byte
}

// Split breaks payload into fragments whose encoded size (header +
// chunk) does not exceed mtu.  A nil/empty payload yields a single
// empty fragment so that zero-length messages still traverse the
// fragment path uniformly.
func Split(msgID uint64, payload []byte, mtu int) ([]Fragment, error) {
	chunkSize := mtu - fragHeaderLen
	if chunkSize <= 0 {
		return nil, fmt.Errorf("%w: mtu %d", ErrFragMTU, mtu)
	}
	n := (len(payload) + chunkSize - 1) / chunkSize
	if n == 0 {
		n = 1
	}
	if n > MaxFragments {
		return nil, fmt.Errorf("%w: %d fragments at mtu %d", ErrFragTooMany, n, mtu)
	}
	frags := make([]Fragment, 0, n)
	for i := 0; i < n; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(payload) {
			hi = len(payload)
		}
		frags = append(frags, Fragment{
			MsgID: msgID,
			Index: uint16(i),
			Count: uint16(n),
			Chunk: payload[lo:hi],
		})
	}
	return frags, nil
}

// Marshal encodes the fragment (header + chunk).
func (f *Fragment) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, fragHeaderLen+len(f.Chunk)))
}

// AppendMarshal encodes the fragment, appending to dst and returning
// the extended slice.  The envelope path marshals straight into each
// outbound datagram buffer, avoiding an intermediate allocation per
// fragment.
func (f *Fragment) AppendMarshal(dst []byte) []byte {
	var hdr [fragHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[:], f.MsgID)
	binary.BigEndian.PutUint16(hdr[8:], f.Index)
	binary.BigEndian.PutUint16(hdr[10:], f.Count)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(f.Chunk)))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Chunk...)
}

// UnmarshalFragment decodes a fragment frame.
func UnmarshalFragment(frame []byte) (Fragment, error) {
	if len(frame) < fragHeaderLen {
		return Fragment{}, ErrFragHeader
	}
	f := Fragment{
		MsgID: binary.BigEndian.Uint64(frame),
		Index: binary.BigEndian.Uint16(frame[8:]),
		Count: binary.BigEndian.Uint16(frame[10:]),
	}
	chunkLen := binary.BigEndian.Uint32(frame[12:])
	if int(chunkLen) != len(frame)-fragHeaderLen {
		return Fragment{}, fmt.Errorf("%w: chunk length %d vs frame %d",
			ErrFragHeader, chunkLen, len(frame)-fragHeaderLen)
	}
	if f.Count == 0 || f.Index >= f.Count {
		return Fragment{}, fmt.Errorf("%w: index %d of %d", ErrFragHeader, f.Index, f.Count)
	}
	f.Chunk = append([]byte(nil), frame[fragHeaderLen:]...)
	return f, nil
}

// Reassembler collects fragments for any number of concurrent messages
// and yields complete payloads.  It is safe for concurrent use.
//
// The progressive-image receive path intentionally consumes prefixes:
// PartialPayload returns the contiguous prefix received so far, which
// for prefix-decodable encodings (the wavelet coder) is directly
// renderable — the mechanism behind "the resolution threshold
// determines the number of image packets to be received".
type Reassembler struct {
	mu      sync.Mutex
	pending map[uint64]*pendingMsg
	// MaxPending bounds distinct in-flight messages; 0 means 64.
	MaxPending int
}

type pendingMsg struct {
	count  uint16
	chunks map[uint16][]byte
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint64]*pendingMsg)}
}

func (r *Reassembler) maxPending() int {
	if r.MaxPending <= 0 {
		return 64
	}
	return r.MaxPending
}

// Add ingests a fragment.  When the fragment completes its message the
// reassembled payload is returned with done=true and the message's
// state is released.  Duplicate fragments are ignored.
func (r *Reassembler) Add(f Fragment) (payload []byte, done bool, err error) {
	if f.Count == 0 || f.Index >= f.Count {
		return nil, false, fmt.Errorf("%w: index %d of %d", ErrFragHeader, f.Index, f.Count)
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	pm, ok := r.pending[f.MsgID]
	if !ok {
		if len(r.pending) >= r.maxPending() {
			r.evictLocked()
		}
		pm = &pendingMsg{count: f.Count, chunks: make(map[uint16][]byte, f.Count)}
		r.pending[f.MsgID] = pm
	}
	if pm.count != f.Count {
		return nil, false, fmt.Errorf("%w: count %d vs %d for msg %d",
			ErrFragMismatch, f.Count, pm.count, f.MsgID)
	}
	if _, dup := pm.chunks[f.Index]; !dup {
		pm.chunks[f.Index] = append([]byte(nil), f.Chunk...)
	}
	if len(pm.chunks) < int(pm.count) {
		return nil, false, nil
	}

	total := 0
	for _, c := range pm.chunks {
		total += len(c)
	}
	out := make([]byte, 0, total)
	for i := uint16(0); i < pm.count; i++ {
		out = append(out, pm.chunks[i]...)
	}
	delete(r.pending, f.MsgID)
	return out, true, nil
}

// PartialPayload returns the contiguous prefix (fragments 0..k-1)
// received so far for msgID and the number k of contiguous fragments.
func (r *Reassembler) PartialPayload(msgID uint64) ([]byte, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pm, ok := r.pending[msgID]
	if !ok {
		return nil, 0
	}
	var out []byte
	k := 0
	for i := uint16(0); i < pm.count; i++ {
		c, ok := pm.chunks[i]
		if !ok {
			break
		}
		out = append(out, c...)
		k++
	}
	return out, k
}

// Pending returns the number of incomplete messages being tracked.
func (r *Reassembler) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Discard drops any partial state for msgID.
func (r *Reassembler) Discard(msgID uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pending, msgID)
}

// evictLocked drops the least-complete pending message to bound memory
// under loss (fragments of abandoned messages would otherwise pin
// buffers forever).  Ties break on smaller msgID (older senders' IDs
// are typically smaller).
func (r *Reassembler) evictLocked() {
	type cand struct {
		id       uint64
		fraction float64
	}
	cands := make([]cand, 0, len(r.pending))
	for id, pm := range r.pending {
		cands = append(cands, cand{id, float64(len(pm.chunks)) / float64(pm.count)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].fraction != cands[j].fraction {
			return cands[i].fraction < cands[j].fraction
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > 0 {
		delete(r.pending, cands[0].id)
	}
}
