// Package message defines the semantic message format exchanged by the
// publisher/subscriber messaging substrate, its binary wire codec, and
// fragmentation/reassembly for high-volume payloads.
//
// Every message is a state-based multicast message: in addition to the
// body it carries a sender-specified semantic selector (a propositional
// expression over profile attributes specifying which clients are to
// receive it) and a set of descriptive attributes that receivers use to
// interpret the content under their current constraints (media type,
// encoding, size, resolution level, ...).
package message

import (
	"fmt"
	"time"

	"adaptiveqos/internal/selector"
)

// Kind classifies messages on the wire.
type Kind uint8

// Message kinds.
const (
	// KindEvent carries an application event (chat line, whiteboard
	// stroke, image-share announcement) to be replayed at receivers.
	KindEvent Kind = iota + 1
	// KindData carries bulk content, typically one fragment of a
	// progressive image stream.
	KindData
	// KindProfile announces a client's profile (used by base stations
	// and session archival; ordinary matching never needs rosters).
	KindProfile
	// KindControl carries framework control traffic (joins, leaves,
	// power-control requests, concurrency-control grants).
	KindControl
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindData:
		return "data"
	case KindProfile:
		return "profile"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// valid reports whether k is a known kind.
func (k Kind) valid() bool { return k >= KindEvent && k <= KindControl }

// Message is a semantic message.  Selector source text travels on the
// wire; receivers compile and evaluate it against their profiles.
type Message struct {
	// Kind classifies the message.
	Kind Kind
	// Sender is the originating client ID (diagnostics and unicast
	// relay bookkeeping; never used for matching).
	Sender string
	// Seq is a sender-scoped sequence number.
	Seq uint32
	// Timestamp is the send time.
	Timestamp time.Time
	// Selector is the semantic selector source specifying receiver
	// profiles.  Empty means "all" (equivalent to "true").
	Selector string
	// Attrs describes the content itself; receivers use these for
	// interpretation and transformation decisions.
	Attrs selector.Attributes
	// Body is the payload.
	Body []byte
}

// MatchProfile reports whether the message's selector admits the given
// flattened profile attributes.  The empty selector matches everything;
// an unparsable selector matches nothing (fail-closed: a malformed
// expression must not leak content to unintended receivers — Decode
// additionally rejects such frames up front, see ErrBadSelector).
//
// Compilation goes through the process-global selector cache, so each
// distinct selector is lexed and parsed once per process rather than
// once per delivered message.
func (m *Message) MatchProfile(flat selector.Attributes) bool {
	sel, err := m.CompiledSelector()
	if err != nil {
		return false
	}
	if sel == nil {
		return true
	}
	return sel.Matches(flat)
}

// CompiledSelector returns the message's selector compiled through the
// process-global cache.  A nil selector with nil error means the empty
// ("match all") selector.
func (m *Message) CompiledSelector() (*selector.Selector, error) {
	if m.Selector == "" {
		return nil, nil
	}
	return selector.CompileCached(m.Selector)
}

// Attr returns a content attribute.
func (m *Message) Attr(name string) (selector.Value, bool) {
	v, ok := m.Attrs[name]
	return v, ok
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	c := *m
	c.Attrs = m.Attrs.Clone()
	c.Body = append([]byte(nil), m.Body...)
	return &c
}

// String renders a compact description for logs.
func (m *Message) String() string {
	return fmt.Sprintf("msg(%s from=%s seq=%d sel=%q attrs=%s body=%dB)",
		m.Kind, m.Sender, m.Seq, m.Selector, m.Attrs, len(m.Body))
}

// Well-known content attribute names shared by senders and receivers.
const (
	// AttrMedia is the media type: "text", "image", "sketch", "speech",
	// "video", "stroke", ...
	AttrMedia = "media"
	// AttrEncoding is the content encoding (e.g. "MPEG2", "JPEG", "ezw").
	AttrEncoding = "encoding"
	// AttrSize is the full content size in bytes.
	AttrSize = "size"
	// AttrColor marks color (vs. monochrome) visual content.
	AttrColor = "color"
	// AttrApp is the originating application ("chat", "whiteboard",
	// "imageviewer").
	AttrApp = "app"
	// AttrObject identifies the shared object the message concerns.
	AttrObject = "object"
	// AttrLevel is the progressive refinement level of a data fragment
	// (0 = sketch/base layer).
	AttrLevel = "level"
	// AttrSession names the collaboration session/group.
	AttrSession = "session"
)
