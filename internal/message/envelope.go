package message

import (
	"fmt"
	"sync"
	"sync/atomic"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// Frame envelope: everything the framework puts on the wire is either
// a whole message frame or one fragment of a large one.  A one-byte
// discriminator keeps small messages (the vast majority) at almost
// zero overhead while letting large media events cross transports with
// datagram limits.
//
// The traced variants carry the flight recorder's wire extension — a
// length-prefixed blob of hop records (DESIGN.md §11) — between the
// tag and the payload.  The payload bytes are identical to the
// untraced form, so frames encoded before the extension existed decode
// unchanged, and a receiver with tracing disabled skips the blob
// without parsing it.
const (
	envWhole          = 0x00
	envFragment       = 0x01
	envWholeTraced    = 0x02
	envFragmentTraced = 0x03
)

// traceLenBytes is the u16 length prefix delimiting the trace blob in
// the traced envelope forms.
const traceLenBytes = 2

// Enveloper wraps outbound frames, fragmenting those that exceed the
// MTU.  It is safe for concurrent use.
type Enveloper struct {
	// MTU bounds each wire datagram (envelope byte included);
	// 0 means 8 KiB.
	MTU int
	// Node names this envelope endpoint in flight-recorder hop records
	// (a client's substrate ID, a base station's ID).  When set and the
	// recorder is on, WrapMessage appends a fragment-stage hop and
	// attaches the trace extension to outbound datagrams.
	Node   string
	nextID atomic.Uint64
}

func (e *Enveloper) mtu() int {
	if e.MTU <= 0 {
		return 8 << 10
	}
	return e.MTU
}

// Wrap converts one encoded message frame into wire datagrams.  The
// frame bytes are copied into the returned datagrams, so the caller may
// reuse frame's backing array immediately (see WrapMessage).
func (e *Enveloper) Wrap(frame []byte) ([][]byte, error) {
	if len(frame)+1 <= e.mtu() {
		out := make([]byte, 0, len(frame)+1)
		out = append(out, envWhole)
		return [][]byte{append(out, frame...)}, nil
	}
	frags, err := Split(e.nextID.Add(1), frame, e.mtu()-1)
	if err != nil {
		return nil, fmt.Errorf("message: envelope: %w", err)
	}
	out := make([][]byte, len(frags))
	for i := range frags {
		buf := make([]byte, 0, 1+fragHeaderLen+len(frags[i].Chunk))
		buf = append(buf, envFragment)
		out[i] = frags[i].AppendMarshal(buf)
	}
	return out, nil
}

// Encode-buffer pool for the send/relay hot path.  Buffers above
// maxPooledBuf (large media bodies) are not retained so a burst of big
// frames cannot pin memory behind the pool.
const maxPooledBuf = 64 << 10

var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

var (
	ctrEncBufReuse = metrics.C(metrics.CtrEncodeBufReuse)
	ctrEncBufAlloc = metrics.C(metrics.CtrEncodeBufAlloc)
)

// WrapMessage encodes m into a pooled scratch buffer and wraps the
// frame into wire datagrams.  Because Wrap copies the frame into the
// datagrams, the scratch buffer is recycled before returning — the
// per-message frame allocation that Encode+Wrap pays disappears from
// the send and relay paths.
func (e *Enveloper) WrapMessage(m *Message) ([][]byte, error) {
	sp := obs.StartStage(obs.MsgID(m.Sender, m.Seq), obs.StageFragment)
	bp := encBufPool.Get().(*[]byte)
	if cap(*bp) > 0 {
		ctrEncBufReuse.Inc()
	} else {
		ctrEncBufAlloc.Inc()
	}
	frame, err := AppendEncode((*bp)[:0], m)
	if err != nil {
		encBufPool.Put(bp)
		if sp.Active() {
			sp.EndErr("encode: " + err.Error())
		}
		return nil, err
	}
	*bp = frame[:0]
	var out [][]byte
	var werr error
	if obs.TraceEnabled() {
		id := obs.MsgID(m.Sender, m.Seq)
		if e.Node != "" {
			obs.AppendHop(id, e.Node, obs.StageFragment)
		}
		out, werr = e.WrapTraced(frame, id)
	} else {
		out, werr = e.Wrap(frame)
	}
	if cap(frame) <= maxPooledBuf {
		encBufPool.Put(bp)
	}
	sp.End()
	return out, werr
}

// WrapTraced wraps frame like Wrap, attaching the flight recorder's
// accumulated hop records for trace id as the envelope's trace
// extension.  Fragmented frames carry the extension on every datagram,
// so the trace context survives loss of any subset that repair later
// fills (the merge path deduplicates).  With the recorder off, or no
// hops recorded for id, it degrades to the untraced Wrap.
func (e *Enveloper) WrapTraced(frame []byte, id uint64) ([][]byte, error) {
	blob := obs.AppendWireTrace(nil, id)
	if len(blob) == 0 {
		return e.Wrap(frame)
	}
	overhead := 1 + traceLenBytes + len(blob)
	if len(frame)+overhead <= e.mtu() {
		out := make([]byte, 0, len(frame)+overhead)
		out = append(out, envWholeTraced)
		out = appendTraceBlob(out, blob)
		return [][]byte{append(out, frame...)}, nil
	}
	frags, err := Split(e.nextID.Add(1), frame, e.mtu()-overhead)
	if err != nil {
		return nil, fmt.Errorf("message: envelope: %w", err)
	}
	out := make([][]byte, len(frags))
	for i := range frags {
		buf := make([]byte, 0, overhead+fragHeaderLen+len(frags[i].Chunk))
		buf = append(buf, envFragmentTraced)
		buf = appendTraceBlob(buf, blob)
		out[i] = frags[i].AppendMarshal(buf)
	}
	return out, nil
}

func appendTraceBlob(dst, blob []byte) []byte {
	dst = append(dst, byte(len(blob)>>8), byte(len(blob)))
	return append(dst, blob...)
}

// splitTraceBlob slices a traced datagram body (everything after the
// tag byte) into its trace blob and payload.
func splitTraceBlob(body []byte) (blob, payload []byte, err error) {
	if len(body) < traceLenBytes {
		return nil, nil, ErrTruncated
	}
	n := int(body[0])<<8 | int(body[1])
	if len(body)-traceLenBytes < n {
		return nil, nil, ErrTruncated
	}
	return body[traceLenBytes : traceLenBytes+n], body[traceLenBytes+n:], nil
}

// WrapWhole envelopes a frame known to fit one datagram (test and
// tooling convenience; Enveloper.Wrap is the general path).
func WrapWhole(frame []byte) []byte {
	out := make([]byte, 0, len(frame)+1)
	out = append(out, envWhole)
	return append(out, frame...)
}

// Unwrapper reassembles inbound datagrams into message frames.  Each
// peer needs its own fragment space, so the unwrapper keys reassembly
// state by sender.  It is safe for concurrent use.
type Unwrapper struct {
	// Node names this endpoint in flight-recorder hop records; when
	// set, completing a traced fragmented message appends a
	// fragment-stage hop (reassembly done) at this node.
	Node  string
	mu    sync.Mutex
	peers map[string]*Reassembler
}

// NewUnwrapper returns an empty unwrapper.
func NewUnwrapper() *Unwrapper {
	return &Unwrapper{peers: make(map[string]*Reassembler)}
}

// Unwrap ingests one datagram from a peer.  It returns the completed
// message frame when one is available (a whole frame immediately, a
// fragmented one when its last piece arrives), or nil.
//
// Traced datagrams (tags 0x02/0x03) have their trace extension merged
// into the flight recorder when it is enabled, and skipped unparsed
// when it is not; either way the payload is handled exactly like the
// untraced form.
func (u *Unwrapper) Unwrap(peer string, datagram []byte) ([]byte, error) {
	if len(datagram) < 1 {
		return nil, ErrTruncated
	}
	tag := datagram[0]
	body := datagram[1:]
	var traceID uint64
	if tag == envWholeTraced || tag == envFragmentTraced {
		blob, payload, err := splitTraceBlob(body)
		if err != nil {
			return nil, err
		}
		if obs.TraceEnabled() {
			traceID, _ = obs.MergeWireTrace(blob)
		}
		body = payload
	}
	switch tag {
	case envWhole, envWholeTraced:
		return body, nil
	case envFragment, envFragmentTraced:
		frag, err := UnmarshalFragment(body)
		if err != nil {
			return nil, err
		}
		u.mu.Lock()
		r, ok := u.peers[peer]
		if !ok {
			r = NewReassembler()
			u.peers[peer] = r
		}
		u.mu.Unlock()
		frame, done, err := r.Add(frag)
		if err != nil || !done {
			return nil, err
		}
		if done && traceID != 0 && u.Node != "" {
			// Reassembly completed on a traced datagram: record the hop.
			obs.AppendHop(traceID, u.Node, obs.StageFragment)
		}
		return frame, nil
	default:
		return nil, fmt.Errorf("%w: envelope tag 0x%02X", ErrTruncated, tag)
	}
}

// Forget drops reassembly state for a departed peer.
func (u *Unwrapper) Forget(peer string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.peers, peer)
}
