package message

import (
	"fmt"
	"sync"
	"sync/atomic"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// Frame envelope: everything the framework puts on the wire is either
// a whole message frame or one fragment of a large one.  A one-byte
// discriminator keeps small messages (the vast majority) at almost
// zero overhead while letting large media events cross transports with
// datagram limits.
const (
	envWhole    = 0x00
	envFragment = 0x01
)

// Enveloper wraps outbound frames, fragmenting those that exceed the
// MTU.  It is safe for concurrent use.
type Enveloper struct {
	// MTU bounds each wire datagram (envelope byte included);
	// 0 means 8 KiB.
	MTU    int
	nextID atomic.Uint64
}

func (e *Enveloper) mtu() int {
	if e.MTU <= 0 {
		return 8 << 10
	}
	return e.MTU
}

// Wrap converts one encoded message frame into wire datagrams.  The
// frame bytes are copied into the returned datagrams, so the caller may
// reuse frame's backing array immediately (see WrapMessage).
func (e *Enveloper) Wrap(frame []byte) ([][]byte, error) {
	if len(frame)+1 <= e.mtu() {
		out := make([]byte, 0, len(frame)+1)
		out = append(out, envWhole)
		return [][]byte{append(out, frame...)}, nil
	}
	frags, err := Split(e.nextID.Add(1), frame, e.mtu()-1)
	if err != nil {
		return nil, fmt.Errorf("message: envelope: %w", err)
	}
	out := make([][]byte, len(frags))
	for i := range frags {
		buf := make([]byte, 0, 1+fragHeaderLen+len(frags[i].Chunk))
		buf = append(buf, envFragment)
		out[i] = frags[i].AppendMarshal(buf)
	}
	return out, nil
}

// Encode-buffer pool for the send/relay hot path.  Buffers above
// maxPooledBuf (large media bodies) are not retained so a burst of big
// frames cannot pin memory behind the pool.
const maxPooledBuf = 64 << 10

var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

var (
	ctrEncBufReuse = metrics.C(metrics.CtrEncodeBufReuse)
	ctrEncBufAlloc = metrics.C(metrics.CtrEncodeBufAlloc)
)

// WrapMessage encodes m into a pooled scratch buffer and wraps the
// frame into wire datagrams.  Because Wrap copies the frame into the
// datagrams, the scratch buffer is recycled before returning — the
// per-message frame allocation that Encode+Wrap pays disappears from
// the send and relay paths.
func (e *Enveloper) WrapMessage(m *Message) ([][]byte, error) {
	sp := obs.StartStage(obs.MsgID(m.Sender, m.Seq), obs.StageFragment)
	bp := encBufPool.Get().(*[]byte)
	if cap(*bp) > 0 {
		ctrEncBufReuse.Inc()
	} else {
		ctrEncBufAlloc.Inc()
	}
	frame, err := AppendEncode((*bp)[:0], m)
	if err != nil {
		encBufPool.Put(bp)
		if sp.Active() {
			sp.EndErr("encode: " + err.Error())
		}
		return nil, err
	}
	*bp = frame[:0]
	out, werr := e.Wrap(frame)
	if cap(frame) <= maxPooledBuf {
		encBufPool.Put(bp)
	}
	sp.End()
	return out, werr
}

// WrapWhole envelopes a frame known to fit one datagram (test and
// tooling convenience; Enveloper.Wrap is the general path).
func WrapWhole(frame []byte) []byte {
	out := make([]byte, 0, len(frame)+1)
	out = append(out, envWhole)
	return append(out, frame...)
}

// Unwrapper reassembles inbound datagrams into message frames.  Each
// peer needs its own fragment space, so the unwrapper keys reassembly
// state by sender.  It is safe for concurrent use.
type Unwrapper struct {
	mu    sync.Mutex
	peers map[string]*Reassembler
}

// NewUnwrapper returns an empty unwrapper.
func NewUnwrapper() *Unwrapper {
	return &Unwrapper{peers: make(map[string]*Reassembler)}
}

// Unwrap ingests one datagram from a peer.  It returns the completed
// message frame when one is available (a whole frame immediately, a
// fragmented one when its last piece arrives), or nil.
func (u *Unwrapper) Unwrap(peer string, datagram []byte) ([]byte, error) {
	if len(datagram) < 1 {
		return nil, ErrTruncated
	}
	switch datagram[0] {
	case envWhole:
		return datagram[1:], nil
	case envFragment:
		frag, err := UnmarshalFragment(datagram[1:])
		if err != nil {
			return nil, err
		}
		u.mu.Lock()
		r, ok := u.peers[peer]
		if !ok {
			r = NewReassembler()
			u.peers[peer] = r
		}
		u.mu.Unlock()
		frame, done, err := r.Add(frag)
		if err != nil || !done {
			return nil, err
		}
		return frame, nil
	default:
		return nil, fmt.Errorf("%w: envelope tag 0x%02X", ErrTruncated, datagram[0])
	}
}

// Forget drops reassembly state for a departed peer.
func (u *Unwrapper) Forget(peer string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.peers, peer)
}
