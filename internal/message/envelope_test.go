package message

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnvelopeWholeFrame(t *testing.T) {
	e := &Enveloper{MTU: 128}
	u := NewUnwrapper()
	frame := []byte("small frame")

	dgs, err := e.Wrap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(dgs) != 1 || len(dgs[0]) != len(frame)+1 {
		t.Fatalf("whole wrap: %d datagrams, %d bytes", len(dgs), len(dgs[0]))
	}
	got, err := u.Unwrap("peer", dgs[0])
	if err != nil || !bytes.Equal(got, frame) {
		t.Fatalf("unwrap: %q, %v", got, err)
	}
}

func TestEnvelopeFragmentsLargeFrame(t *testing.T) {
	e := &Enveloper{MTU: 100}
	u := NewUnwrapper()
	frame := make([]byte, 1000)
	for i := range frame {
		frame[i] = byte(i)
	}

	dgs, err := e.Wrap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(dgs) < 10 {
		t.Fatalf("expected many fragments, got %d", len(dgs))
	}
	for i, d := range dgs {
		if len(d) > 100 {
			t.Fatalf("datagram %d exceeds MTU: %d", i, len(d))
		}
	}
	// Deliver out of order; only the last completes.
	order := rand.New(rand.NewSource(1)).Perm(len(dgs))
	var got []byte
	for _, i := range order {
		f, err := u.Unwrap("peer", dgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			if got != nil {
				t.Fatal("completed twice")
			}
			got = f
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("reassembled frame differs")
	}
}

func TestEnvelopePeerIsolation(t *testing.T) {
	e1 := &Enveloper{MTU: 64}
	e2 := &Enveloper{MTU: 64}
	u := NewUnwrapper()
	f1 := bytes.Repeat([]byte{1}, 300)
	f2 := bytes.Repeat([]byte{2}, 300)
	d1, _ := e1.Wrap(f1)
	d2, _ := e2.Wrap(f2)
	// Both envelopers started at fragment ID 1: without per-peer state
	// their fragments would collide.  Interleave them.
	var got1, got2 []byte
	for i := range d1 {
		if f, _ := u.Unwrap("peer-1", d1[i]); f != nil {
			got1 = f
		}
		if f, _ := u.Unwrap("peer-2", d2[i]); f != nil {
			got2 = f
		}
	}
	if !bytes.Equal(got1, f1) || !bytes.Equal(got2, f2) {
		t.Fatal("cross-peer fragment interference")
	}

	u.Forget("peer-1")
	// After Forget, a lone tail fragment cannot complete anything.
	if f, _ := u.Unwrap("peer-1", d1[len(d1)-1]); f != nil {
		t.Fatal("completed from forgotten state")
	}
}

func TestEnvelopeRejects(t *testing.T) {
	u := NewUnwrapper()
	if _, err := u.Unwrap("p", nil); err == nil {
		t.Error("empty datagram accepted")
	}
	if _, err := u.Unwrap("p", []byte{0x7F, 1, 2}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := u.Unwrap("p", []byte{0x01, 1, 2}); err == nil {
		t.Error("malformed fragment accepted")
	}
	// Whole with empty frame is legal (decodes upstream as truncated).
	f, err := u.Unwrap("p", []byte{0x00})
	if err != nil || len(f) != 0 {
		t.Errorf("empty whole: %v, %v", f, err)
	}
}

// TestQuickEnvelopeRoundTrip: arbitrary frames at arbitrary MTUs
// survive wrap/unwrap under random delivery order.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mtu := 20 + r.Intn(500)
		frame := make([]byte, r.Intn(5000))
		r.Read(frame)
		e := &Enveloper{MTU: mtu}
		u := NewUnwrapper()
		dgs, err := e.Wrap(frame)
		if err != nil {
			return false
		}
		var got []byte
		for _, i := range r.Perm(len(dgs)) {
			out, err := u.Unwrap("p", dgs[i])
			if err != nil {
				return false
			}
			if out != nil {
				got = out
			}
		}
		return bytes.Equal(got, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
