package message

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/selector"
)

// withTraceRecorder runs the body with the flight recorder on and
// restores a clean disabled state afterwards.
func withTraceRecorder(t *testing.T, body func()) {
	t.Helper()
	obs.SetTraceEnabled(true)
	obs.ResetFlight()
	t.Cleanup(func() {
		obs.SetTraceEnabled(false)
		obs.ResetFlight()
	})
	body()
}

func traceTestMessage(sender string, seq uint32, size int) *Message {
	body := make([]byte, size)
	for i := range body {
		body[i] = byte(i * 31)
	}
	return &Message{
		Kind:      KindEvent,
		Sender:    sender,
		Seq:       seq,
		Timestamp: time.Unix(100, 0),
		Attrs:     selector.Attributes{"modality": selector.S("text")},
		Body:      body,
	}
}

// TestTraceRoundTripWhole covers the tagged envelope form for frames
// that fit one datagram: the trace extension rides the wire and the
// receiver merges the sender's hops.
func TestTraceRoundTripWhole(t *testing.T) {
	withTraceRecorder(t, func() {
		e := &Enveloper{MTU: 8 << 10, Node: "sender-node"}
		u := NewUnwrapper()
		u.Node = "recv-node"
		m := traceTestMessage("wired-0", 1, 32)
		id := obs.MsgID(m.Sender, m.Seq)
		obs.AppendHop(id, "sender-node", obs.StagePublish)

		dgs, err := e.WrapMessage(m)
		if err != nil || len(dgs) != 1 {
			t.Fatalf("WrapMessage: %d datagrams, %v", len(dgs), err)
		}
		if dgs[0][0] != envWholeTraced {
			t.Fatalf("tag = 0x%02x, want traced-whole", dgs[0][0])
		}

		// Decode through a fresh store, as a remote receiver would.
		obs.ResetFlight()
		frame, err := u.Unwrap("wired-0", dgs[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(frame)
		if err != nil || !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("decode: %v %v", got, err)
		}
		hops := obs.Hops(id)
		if len(hops) < 2 {
			t.Fatalf("receiver merged %d hops, want the sender's publish+fragment: %v", len(hops), hops)
		}
		if hops[0].Stage != obs.StagePublish || hops[0].Node != "sender-node" {
			t.Errorf("first merged hop = %+v", hops[0])
		}
	})
}

// TestTraceBackwardCompat: frames encoded without the extension must
// decode with tracing enabled, and traced frames must decode on a
// receiver with tracing disabled.
func TestTraceBackwardCompat(t *testing.T) {
	m := traceTestMessage("wired-0", 2, 32)

	// Old (untraced) datagram, receiver tracing ON.
	obs.SetTraceEnabled(false)
	e := &Enveloper{MTU: 8 << 10, Node: "sender-node"}
	plain, err := e.WrapMessage(m)
	if err != nil || len(plain) != 1 || plain[0][0] != envWhole {
		t.Fatalf("untraced wrap: %v %v", plain, err)
	}
	withTraceRecorder(t, func() {
		u := NewUnwrapper()
		u.Node = "recv-node"
		frame, err := u.Unwrap("wired-0", plain[0])
		if err != nil {
			t.Fatal(err)
		}
		if got, err := Decode(frame); err != nil || !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("old frame with tracing on: %v %v", got, err)
		}

		// Traced datagram, receiver tracing OFF: blob skipped unparsed.
		obs.AppendHop(obs.MsgID(m.Sender, m.Seq), "sender-node", obs.StagePublish)
		traced, err := e.WrapMessage(m)
		if err != nil || traced[0][0] != envWholeTraced {
			t.Fatalf("traced wrap: %v %v", traced, err)
		}
		obs.SetTraceEnabled(false)
		obs.ResetFlight()
		frame, err = u.Unwrap("wired-0", traced[0])
		if err != nil {
			t.Fatal(err)
		}
		if got, err := Decode(frame); err != nil || !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("traced frame with tracing off: %v %v", got, err)
		}
		if obs.Hops(obs.MsgID(m.Sender, m.Seq)) != nil {
			t.Error("disabled receiver should not have stored hops")
		}
		obs.SetTraceEnabled(true)
	})
}

// TestTraceSurvivesFragmentation: a large traced frame fragments, the
// datagrams arrive shuffled, and the receiver ends with the sender's
// hops exactly once (the extension rides every fragment; merge
// deduplicates) plus its own reassembly-completion hop.
func TestTraceSurvivesFragmentation(t *testing.T) {
	withTraceRecorder(t, func() {
		e := &Enveloper{MTU: 256, Node: "sender-node"}
		u := NewUnwrapper()
		u.Node = "recv-node"
		m := traceTestMessage("wired-0", 3, 4096)
		id := obs.MsgID(m.Sender, m.Seq)
		obs.AppendHop(id, "sender-node", obs.StagePublish)

		dgs, err := e.WrapMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(dgs) < 10 {
			t.Fatalf("expected many fragments, got %d", len(dgs))
		}
		for i, d := range dgs {
			if d[0] != envFragmentTraced {
				t.Fatalf("fragment %d tag = 0x%02x", i, d[0])
			}
			if len(d) > 256 {
				t.Fatalf("fragment %d exceeds MTU: %d bytes", i, len(d))
			}
		}

		obs.ResetFlight()
		var frame []byte
		for _, i := range rand.New(rand.NewSource(7)).Perm(len(dgs)) {
			f, err := u.Unwrap("wired-0", dgs[i])
			if err != nil {
				t.Fatal(err)
			}
			if f != nil {
				frame = f
			}
		}
		if got, err := Decode(frame); err != nil || !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("reassembled decode failed: %v", err)
		}

		hops := obs.Hops(id)
		publishes, reassemblies := 0, 0
		for _, h := range hops {
			if h.Stage == obs.StagePublish {
				publishes++
			}
			if h.Stage == obs.StageFragment && h.Node == "recv-node" {
				reassemblies++
			}
		}
		if publishes != 1 {
			t.Errorf("publish hop merged %d times, want exactly 1 (dedup): %v", publishes, hops)
		}
		if reassemblies != 1 {
			t.Errorf("reassembly hop recorded %d times, want 1: %v", reassemblies, hops)
		}
	})
}

// TestTraceUnwrapTruncatedBlob: a traced tag whose length prefix
// overruns the datagram must error, not panic or misparse.
func TestTraceUnwrapTruncatedBlob(t *testing.T) {
	u := NewUnwrapper()
	for _, dg := range [][]byte{
		{envWholeTraced},
		{envWholeTraced, 0xff},
		{envWholeTraced, 0x00, 0x10, 1, 2, 3},
		{envFragmentTraced, 0x00, 0x08, 1, 2},
	} {
		if _, err := u.Unwrap("peer", dg); err == nil {
			t.Errorf("truncated traced datagram %x accepted", dg)
		}
	}
}

// TestTraceDisabledWrapZeroAllocs guards the disabled path through the
// envelope layer: with the recorder off, Wrap and Unwrap of a whole
// frame must not allocate beyond the datagram copy itself (Unwrap of a
// whole datagram allocates nothing).
func TestTraceDisabledWrapZeroAllocs(t *testing.T) {
	obs.SetTraceEnabled(false)
	u := NewUnwrapper()
	dg := WrapWhole([]byte("zero-alloc probe"))
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := u.Unwrap("peer", dg); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Unwrap whole, tracing off: %g allocs/op, want 0", allocs)
	}
}
