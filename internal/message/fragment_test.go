package message

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitBasic(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 100) // 800 bytes
	frags, err := Split(7, payload, 128)
	if err != nil {
		t.Fatal(err)
	}
	chunk := 128 - fragHeaderLen
	wantCount := (len(payload) + chunk - 1) / chunk
	if len(frags) != wantCount {
		t.Fatalf("got %d fragments, want %d", len(frags), wantCount)
	}
	var total int
	for i, f := range frags {
		if f.MsgID != 7 || int(f.Index) != i || int(f.Count) != wantCount {
			t.Errorf("fragment %d header: %+v", i, f)
		}
		if len(f.Marshal()) > 128 {
			t.Errorf("fragment %d exceeds MTU: %d", i, len(f.Marshal()))
		}
		total += len(f.Chunk)
	}
	if total != len(payload) {
		t.Errorf("chunks total %d, want %d", total, len(payload))
	}
}

func TestSplitEdgeCases(t *testing.T) {
	if _, err := Split(1, []byte("x"), fragHeaderLen); !errors.Is(err, ErrFragMTU) {
		t.Errorf("tiny MTU: %v", err)
	}
	frags, err := Split(1, nil, 64)
	if err != nil || len(frags) != 1 || len(frags[0].Chunk) != 0 {
		t.Errorf("empty payload: %v, %v", frags, err)
	}
	// Exactly one chunk.
	frags, err = Split(1, make([]byte, 48), 48+fragHeaderLen)
	if err != nil || len(frags) != 1 {
		t.Errorf("exact fit: %d frags, %v", len(frags), err)
	}
	// Too many fragments for the header.
	if _, err := Split(1, make([]byte, (MaxFragments+1)*1), fragHeaderLen+1); !errors.Is(err, ErrFragTooMany) {
		t.Errorf("too many fragments: %v", err)
	}
}

func TestFragmentMarshalRoundTrip(t *testing.T) {
	f := Fragment{MsgID: 123456789, Index: 3, Count: 9, Chunk: []byte("hello")}
	got, err := UnmarshalFragment(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.MsgID != f.MsgID || got.Index != f.Index || got.Count != f.Count ||
		!bytes.Equal(got.Chunk, f.Chunk) {
		t.Errorf("round trip: %+v vs %+v", got, f)
	}

	if _, err := UnmarshalFragment(nil); !errors.Is(err, ErrFragHeader) {
		t.Errorf("nil frame: %v", err)
	}
	frame := f.Marshal()
	if _, err := UnmarshalFragment(frame[:len(frame)-1]); !errors.Is(err, ErrFragHeader) {
		t.Errorf("short frame: %v", err)
	}
	bad := Fragment{MsgID: 1, Index: 5, Count: 5, Chunk: nil} // index >= count
	if _, err := UnmarshalFragment(bad.Marshal()); !errors.Is(err, ErrFragHeader) {
		t.Errorf("bad index: %v", err)
	}
}

func TestReassemblerInOrder(t *testing.T) {
	payload := []byte("0123456789abcdefghij")
	frags, _ := Split(1, payload, fragHeaderLen+4)
	r := NewReassembler()
	for i, f := range frags {
		out, done, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 {
			if done {
				t.Fatalf("premature completion at fragment %d", i)
			}
		} else {
			if !done || !bytes.Equal(out, payload) {
				t.Fatalf("final: done=%v out=%q", done, out)
			}
		}
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d after completion", r.Pending())
	}
}

func TestReassemblerReorderAndDuplicates(t *testing.T) {
	payload := bytes.Repeat([]byte("xyz"), 50)
	frags, _ := Split(9, payload, fragHeaderLen+7)
	r := NewReassembler()
	order := rand.New(rand.NewSource(1)).Perm(len(frags))
	var got []byte
	for n, idx := range order {
		// Send each fragment twice: duplicates must be harmless.  Note a
		// duplicate arriving after completion starts a fresh partial
		// message (the reassembler cannot distinguish it from a
		// retransmission of a new message with a recycled ID), so only
		// the first completion carries the payload.
		for rep := 0; rep < 2; rep++ {
			out, done, err := r.Add(frags[idx])
			if err != nil {
				t.Fatal(err)
			}
			if done {
				if n != len(order)-1 {
					t.Fatal("premature completion")
				}
				got = out
			}
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reordered reassembly mismatch: %d vs %d bytes", len(got), len(payload))
	}
}

func TestReassemblerPartialPrefix(t *testing.T) {
	payload := []byte("AAAABBBBCCCCDDDD")
	frags, _ := Split(4, payload, fragHeaderLen+4)
	if len(frags) != 4 {
		t.Fatalf("want 4 fragments, got %d", len(frags))
	}
	r := NewReassembler()
	r.Add(frags[0])
	r.Add(frags[2]) // gap at 1: prefix stops after fragment 0

	prefix, k := r.PartialPayload(4)
	if k != 1 || string(prefix) != "AAAA" {
		t.Errorf("prefix = %q (k=%d), want AAAA (k=1)", prefix, k)
	}

	r.Add(frags[1])
	prefix, k = r.PartialPayload(4)
	if k != 3 || string(prefix) != "AAAABBBBCCCC" {
		t.Errorf("prefix = %q (k=%d), want 3 fragments", prefix, k)
	}

	if p, k := r.PartialPayload(999); p != nil || k != 0 {
		t.Error("unknown msgID should yield empty prefix")
	}

	r.Discard(4)
	if r.Pending() != 0 {
		t.Error("Discard did not release state")
	}
}

func TestReassemblerMismatchAndValidation(t *testing.T) {
	r := NewReassembler()
	r.Add(Fragment{MsgID: 1, Index: 0, Count: 3, Chunk: []byte("a")})
	if _, _, err := r.Add(Fragment{MsgID: 1, Index: 1, Count: 4, Chunk: []byte("b")}); !errors.Is(err, ErrFragMismatch) {
		t.Errorf("count mismatch: %v", err)
	}
	if _, _, err := r.Add(Fragment{MsgID: 2, Index: 0, Count: 0}); !errors.Is(err, ErrFragHeader) {
		t.Errorf("zero count: %v", err)
	}
	if _, _, err := r.Add(Fragment{MsgID: 2, Index: 7, Count: 3}); !errors.Is(err, ErrFragHeader) {
		t.Errorf("index out of range: %v", err)
	}
}

func TestReassemblerEviction(t *testing.T) {
	r := NewReassembler()
	r.MaxPending = 4
	// Four incomplete messages with varying completeness.
	for id := uint64(1); id <= 4; id++ {
		for i := uint16(0); i < uint16(id); i++ { // msg 1 is least complete
			r.Add(Fragment{MsgID: id, Index: i, Count: 10, Chunk: []byte{byte(id)}})
		}
	}
	if r.Pending() != 4 {
		t.Fatalf("pending = %d", r.Pending())
	}
	// A fifth message forces eviction of the least-complete (msg 1).
	r.Add(Fragment{MsgID: 5, Index: 0, Count: 2, Chunk: []byte("x")})
	if r.Pending() != 4 {
		t.Fatalf("pending after eviction = %d", r.Pending())
	}
	if _, k := r.PartialPayload(1); k != 0 {
		t.Error("least-complete message should have been evicted")
	}
	if _, k := r.PartialPayload(4); k == 0 {
		t.Error("most-complete message should survive eviction")
	}
}

// TestQuickSplitReassembleIdentity: for arbitrary payloads, MTUs and
// delivery orders (with duplication), reassembly reproduces the
// payload exactly.
func TestQuickSplitReassembleIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		payload := randBytes(r, 4096)
		mtu := fragHeaderLen + 1 + r.Intn(512)
		frags, err := Split(uint64(seed), payload, mtu)
		if err != nil {
			return false
		}
		ra := NewReassembler()
		order := r.Perm(len(frags))
		var out []byte
		var done bool
		for _, idx := range order {
			for reps := 1 + r.Intn(2); reps > 0; reps-- {
				o, d, err := ra.Add(frags[idx])
				if err != nil {
					return false
				}
				if d {
					out, done = o, true
				}
			}
		}
		return done && bytes.Equal(out, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFragmentMarshalRoundTrip: marshal/unmarshal is the identity
// on valid fragments.
func TestQuickFragmentMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		count := uint16(1 + r.Intn(1000))
		fr := Fragment{
			MsgID: r.Uint64(),
			Index: uint16(r.Intn(int(count))),
			Count: count,
			Chunk: randBytes(r, 300),
		}
		got, err := UnmarshalFragment(fr.Marshal())
		return err == nil && got.MsgID == fr.MsgID && got.Index == fr.Index &&
			got.Count == fr.Count && bytes.Equal(got.Chunk, fr.Chunk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
