package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"adaptiveqos/internal/selector"
)

// Wire format (all multi-byte integers big-endian):
//
//	magic     [4]byte  "AQM1"
//	kind      uint8
//	seq       uint32
//	timestamp int64    UnixNano
//	sender    string   (uint16 length + bytes)
//	selector  string   (uint16 length + bytes)
//	nattrs    uint16
//	attrs     nattrs × { name string, kind uint8, payload }
//	            payload: string → uint16 len + bytes
//	                     number → float64 bits
//	                     bool   → uint8
//	bodyLen   uint32
//	body      bodyLen bytes
//	crc       uint32   IEEE CRC-32 of everything before it
var magic = [4]byte{'A', 'Q', 'M', '1'}

// Codec limits; exceeding them is an encoding error, and decoders
// reject frames that claim larger sizes so a corrupt length field
// cannot drive huge allocations.
const (
	MaxStringLen = 1<<16 - 1
	MaxAttrs     = 1 << 12
	MaxBodyLen   = 1 << 26 // 64 MiB
)

// Codec errors.
var (
	ErrBadMagic    = errors.New("message: bad magic")
	ErrTruncated   = errors.New("message: truncated frame")
	ErrChecksum    = errors.New("message: checksum mismatch")
	ErrBadKind     = errors.New("message: unknown message kind")
	ErrTooLarge    = errors.New("message: field exceeds codec limit")
	ErrBadAttr     = errors.New("message: malformed attribute")
	ErrTrailing    = errors.New("message: trailing bytes after frame")
	ErrBadSelector = errors.New("message: uncompilable selector")
)

// Encode serializes the message to a self-delimiting binary frame.
func Encode(m *Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, encodedSizeHint(m)), m)
}

// encodedSizeHint estimates the frame size so a single allocation (or a
// pooled buffer of typical capacity) holds the whole encoding.
func encodedSizeHint(m *Message) int {
	return 64 + len(m.Sender) + len(m.Selector) + len(m.Body) + 32*len(m.Attrs)
}

// AppendEncode serializes the message, appending the frame to dst and
// returning the extended slice.  Callers reusing buffers across
// messages (the send and relay hot paths) avoid a per-message
// allocation; see Enveloper.WrapMessage.
func AppendEncode(dst []byte, m *Message) ([]byte, error) {
	if !m.Kind.valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, m.Kind)
	}
	if len(m.Sender) > MaxStringLen || len(m.Selector) > MaxStringLen {
		return nil, ErrTooLarge
	}
	if len(m.Attrs) > MaxAttrs {
		return nil, ErrTooLarge
	}
	if len(m.Body) > MaxBodyLen {
		return nil, ErrTooLarge
	}

	start := len(dst)
	buf := dst
	buf = append(buf, magic[:]...)
	buf = append(buf, byte(m.Kind))
	buf = binary.BigEndian.AppendUint32(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Timestamp.UnixNano()))
	buf = appendString(buf, m.Sender)
	buf = appendString(buf, m.Selector)

	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Attrs)))
	for _, name := range m.Attrs.Names() { // deterministic order
		if len(name) > MaxStringLen {
			return nil, ErrTooLarge
		}
		v := m.Attrs[name]
		buf = appendString(buf, name)
		buf = append(buf, byte(v.Kind()))
		switch v.Kind() {
		case selector.KindString:
			if len(v.Str()) > MaxStringLen {
				return nil, ErrTooLarge
			}
			buf = appendString(buf, v.Str())
		case selector.KindNumber:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Num()))
		case selector.KindBool:
			if v.Bool() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			return nil, fmt.Errorf("%w: attribute %q has invalid value", ErrBadAttr, name)
		}
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Body)))
	buf = append(buf, m.Body...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	return buf, nil
}

// Decode parses a frame produced by Encode.  The input must contain
// exactly one frame.
func Decode(frame []byte) (*Message, error) {
	const minLen = 4 + 1 + 4 + 8 + 2 + 2 + 2 + 4 + 4
	if len(frame) < minLen {
		return nil, ErrTruncated
	}
	payload, sum := frame[:len(frame)-4], binary.BigEndian.Uint32(frame[len(frame)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrChecksum
	}
	d := decoder{buf: payload}

	var mg [4]byte
	if err := d.bytes(mg[:]); err != nil {
		return nil, err
	}
	if mg != magic {
		return nil, ErrBadMagic
	}
	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	m := &Message{Kind: Kind(kind)}
	if !m.Kind.valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	if m.Seq, err = d.u32(); err != nil {
		return nil, err
	}
	ts, err := d.u64()
	if err != nil {
		return nil, err
	}
	m.Timestamp = time.Unix(0, int64(ts))
	if m.Sender, err = d.str(); err != nil {
		return nil, err
	}
	if m.Selector, err = d.str(); err != nil {
		return nil, err
	}
	// Reject uncompilable selectors at decode time: a corrupt selector
	// off the wire is a malformed frame, not a message every receiver
	// should carry to the dispatch layer and silently drop there.  The
	// selector cache (including its negative entries) makes this check a
	// map lookup on all but the first sighting.
	if m.Selector != "" {
		if _, serr := selector.CompileCached(m.Selector); serr != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSelector, serr)
		}
	}

	nattrs, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(nattrs) > MaxAttrs {
		return nil, ErrTooLarge
	}
	m.Attrs = make(selector.Attributes, nattrs)
	for i := 0; i < int(nattrs); i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		k, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch selector.Kind(k) {
		case selector.KindString:
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = selector.S(s)
		case selector.KindNumber:
			bits, err := d.u64()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = selector.N(math.Float64frombits(bits))
		case selector.KindBool:
			b, err := d.u8()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = selector.B(b != 0)
		default:
			return nil, fmt.Errorf("%w: attribute %q kind %d", ErrBadAttr, name, k)
		}
	}

	bodyLen, err := d.u32()
	if err != nil {
		return nil, err
	}
	if bodyLen > MaxBodyLen {
		return nil, ErrTooLarge
	}
	if int(bodyLen) > len(d.buf)-d.off {
		return nil, ErrTruncated
	}
	m.Body = append([]byte(nil), d.buf[d.off:d.off+int(bodyLen)]...)
	d.off += int(bodyLen)
	if d.off != len(d.buf) {
		return nil, ErrTrailing
	}
	return m, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked big-endian reader over a byte slice.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) need(n int) error {
	if len(d.buf)-d.off < n {
		return ErrTruncated
	}
	return nil
}

func (d *decoder) bytes(dst []byte) error {
	if err := d.need(len(dst)); err != nil {
		return err
	}
	copy(dst, d.buf[d.off:])
	d.off += len(dst)
	return nil
}

func (d *decoder) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}
