package message

import (
	"bytes"
	"errors"
	"testing"

	"adaptiveqos/internal/selector"
)

// A corrupt selector string arriving off the wire must be rejected at
// decode time, not carried to the dispatch layer.  Encode itself stays
// permissive (the wire format can represent any string), which is
// exactly how a corrupted-but-CRC-valid or maliciously crafted frame
// presents to a receiver.
func TestDecodeRejectsBadSelector(t *testing.T) {
	m := sampleMessage()
	m.Selector = `media == ` // truncated expression: lexes, fails to parse
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame); !errors.Is(err, ErrBadSelector) {
		t.Fatalf("decode of corrupt selector: got %v, want ErrBadSelector", err)
	}

	// Fail-closed at the dispatch layer too, for messages constructed
	// in-process rather than decoded.
	if m.MatchProfile(selector.Attributes{"media": selector.S("image")}) {
		t.Error("malformed selector must not match any profile")
	}
	if _, err := m.CompiledSelector(); err == nil {
		t.Error("CompiledSelector must surface the compile error")
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	m := sampleMessage()
	plain, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix")
	appended, err := AppendEncode(append([]byte(nil), prefix...), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[:len(prefix)], prefix) {
		t.Fatal("AppendEncode clobbered the destination prefix")
	}
	if !bytes.Equal(appended[len(prefix):], plain) {
		t.Fatal("AppendEncode frame differs from Encode frame")
	}
	if _, err := Decode(appended[len(prefix):]); err != nil {
		t.Fatalf("appended frame does not decode: %v", err)
	}
}

func TestFragmentAppendMarshal(t *testing.T) {
	f := Fragment{MsgID: 7, Index: 2, Count: 5, Chunk: []byte("hello")}
	if !bytes.Equal(f.Marshal(), f.AppendMarshal(nil)) {
		t.Fatal("AppendMarshal(nil) differs from Marshal")
	}
	out := f.AppendMarshal([]byte{0xAA})
	if out[0] != 0xAA {
		t.Fatal("AppendMarshal clobbered the destination prefix")
	}
	got, err := UnmarshalFragment(out[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.MsgID != 7 || got.Index != 2 || got.Count != 5 || string(got.Chunk) != "hello" {
		t.Fatalf("round trip = %+v", got)
	}
}

// WrapMessage recycles its scratch buffer between calls; the datagrams
// it returns must be fully independent copies, both on the whole-frame
// and the fragmented path.
func TestWrapMessagePooledBufferIsolation(t *testing.T) {
	for _, mtu := range []int{0, 256} { // 0 = whole frame; 256 forces fragmenting
		env := &Enveloper{MTU: mtu}
		unwrap := NewUnwrapper()

		m1 := sampleMessage()
		m1.Body = bytes.Repeat([]byte{1}, 900)
		d1, err := env.WrapMessage(m1)
		if err != nil {
			t.Fatal(err)
		}
		// A second wrap reuses the pooled scratch buffer; if the first
		// datagrams aliased it they would now be corrupt.
		m2 := sampleMessage()
		m2.Body = bytes.Repeat([]byte{2}, 900)
		if _, err := env.WrapMessage(m2); err != nil {
			t.Fatal(err)
		}

		var got *Message
		for _, d := range d1 {
			frame, err := unwrap.Unwrap("peer", d)
			if err != nil {
				t.Fatal(err)
			}
			if frame != nil {
				if got, err = Decode(frame); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got == nil {
			t.Fatalf("mtu %d: message never completed", mtu)
		}
		if !bytes.Equal(got.Body, m1.Body) {
			t.Fatalf("mtu %d: body corrupted by pooled-buffer reuse", mtu)
		}
	}
}

func TestWrapMessagePropagatesEncodeError(t *testing.T) {
	env := &Enveloper{}
	if _, err := env.WrapMessage(&Message{Kind: Kind(99)}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind through WrapMessage: %v", err)
	}
}
