package message

import (
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"adaptiveqos/internal/selector"
)

func sampleMessage() *Message {
	return &Message{
		Kind:      KindData,
		Sender:    "clientA",
		Seq:       42,
		Timestamp: time.Unix(1_000_000_000, 123456789),
		Selector:  `media == "image" and size <= 1048576`,
		Attrs: selector.Attributes{
			AttrMedia:    selector.S("image"),
			AttrEncoding: selector.S("ezw"),
			AttrSize:     selector.N(1 << 20),
			AttrColor:    selector.B(true),
		},
		Body: []byte("progressive image bits"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Sender != m.Sender || got.Seq != m.Seq {
		t.Errorf("header mismatch: %+v vs %+v", got, m)
	}
	if !got.Timestamp.Equal(m.Timestamp) {
		t.Errorf("timestamp %v != %v", got.Timestamp, m.Timestamp)
	}
	if got.Selector != m.Selector {
		t.Errorf("selector %q != %q", got.Selector, m.Selector)
	}
	if len(got.Attrs) != len(m.Attrs) {
		t.Fatalf("attrs %v != %v", got.Attrs, m.Attrs)
	}
	for k, v := range m.Attrs {
		if !got.Attrs[k].Equal(v) {
			t.Errorf("attr %q: %v != %v", k, got.Attrs[k], v)
		}
	}
	if string(got.Body) != string(m.Body) {
		t.Errorf("body %q != %q", got.Body, m.Body)
	}
}

func TestEncodeDecodeEmptyFields(t *testing.T) {
	m := &Message{Kind: KindControl, Timestamp: time.Unix(0, 0)}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sender != "" || got.Selector != "" || len(got.Attrs) != 0 || len(got.Body) != 0 {
		t.Errorf("empty message did not round-trip: %+v", got)
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := Encode(&Message{Kind: 0}); !errors.Is(err, ErrBadKind) {
		t.Errorf("zero kind: %v", err)
	}
	if _, err := Encode(&Message{Kind: 99}); !errors.Is(err, ErrBadKind) {
		t.Errorf("kind 99: %v", err)
	}
	big := strings.Repeat("x", MaxStringLen+1)
	if _, err := Encode(&Message{Kind: KindEvent, Sender: big}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized sender: %v", err)
	}
	if _, err := Encode(&Message{Kind: KindEvent, Selector: big}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized selector: %v", err)
	}
	m := &Message{Kind: KindEvent, Attrs: selector.Attributes{"v": {}}}
	if _, err := Encode(m); !errors.Is(err, ErrBadAttr) {
		t.Errorf("invalid attr value: %v", err)
	}
	m = &Message{Kind: KindEvent, Attrs: selector.Attributes{"v": selector.S(big)}}
	if _, err := Encode(m); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized attr: %v", err)
	}
	m = &Message{Kind: KindEvent, Body: make([]byte, MaxBodyLen+1)}
	if _, err := Encode(m); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized body: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frame, err := Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Decode(frame[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame: %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil frame: %v", err)
	}

	// Flip one byte anywhere before the CRC: must fail the checksum.
	for _, pos := range []int{0, 4, 9, len(frame) / 2, len(frame) - 5} {
		corrupt := append([]byte(nil), frame...)
		corrupt[pos] ^= 0xFF
		if _, err := Decode(corrupt); !errors.Is(err, ErrChecksum) {
			t.Errorf("corruption at %d: got %v, want checksum error", pos, err)
		}
	}

	// Bad magic with a recomputed CRC must be caught by the magic check.
	corrupt := append([]byte(nil), frame...)
	corrupt[0] = 'X'
	fixCRC(corrupt)
	if _, err := Decode(corrupt); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	// Bad kind with valid CRC.
	corrupt = append([]byte(nil), frame...)
	corrupt[4] = 200
	fixCRC(corrupt)
	if _, err := Decode(corrupt); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: %v", err)
	}

	// Trailing garbage inside the checksummed region.
	corrupt = append([]byte(nil), frame[:len(frame)-4]...)
	corrupt = append(corrupt, 0xAB)
	corrupt = append(corrupt, 0, 0, 0, 0)
	fixCRC(corrupt)
	if _, err := Decode(corrupt); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing bytes: %v", err)
	}
}

func fixCRC(frame []byte) {
	sum := crc32.ChecksumIEEE(frame[:len(frame)-4])
	frame[len(frame)-4] = byte(sum >> 24)
	frame[len(frame)-3] = byte(sum >> 16)
	frame[len(frame)-2] = byte(sum >> 8)
	frame[len(frame)-1] = byte(sum)
}

func TestMatchProfile(t *testing.T) {
	m := sampleMessage()
	match := selector.Attributes{"media": selector.S("image"), "size": selector.N(1024)}
	if !m.MatchProfile(match) {
		t.Error("expected selector match")
	}
	if m.MatchProfile(selector.Attributes{"media": selector.S("text")}) {
		t.Error("unexpected match")
	}
	m.Selector = ""
	if !m.MatchProfile(nil) {
		t.Error("empty selector should match everything")
	}
	m.Selector = "media =="
	if m.MatchProfile(match) {
		t.Error("malformed selector must fail closed")
	}
}

func TestCloneAndString(t *testing.T) {
	m := sampleMessage()
	c := m.Clone()
	c.Body[0] = 'X'
	c.Attrs[AttrMedia] = selector.S("text")
	if m.Body[0] == 'X' || m.Attrs[AttrMedia].Str() != "image" {
		t.Error("Clone shares state")
	}
	if s := m.String(); !strings.Contains(s, "clientA") || !strings.Contains(s, "data") {
		t.Errorf("String = %q", s)
	}
	if v, ok := m.Attr(AttrSize); !ok || v.Num() != 1<<20 {
		t.Error("Attr lookup failed")
	}
	for _, k := range []Kind{KindEvent, KindData, KindProfile, KindControl, Kind(77)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String empty", k)
		}
	}
}

// TestQuickCodecRoundTrip: arbitrary messages survive encode/decode.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Selectors must compile (Decode rejects uncompilable ones), so
		// draw from a pool of valid sources; corrupt selectors are
		// covered by TestDecodeRejectsBadSelector.
		validSelectors := []string{
			"",
			"true",
			`media == "image"`,
			`size <= 1048576 and exists(cap.display)`,
			`encoding in ["MPEG2", "JPEG"] or topic == "medical"`,
		}
		m := &Message{
			Kind:      Kind(1 + r.Intn(4)),
			Sender:    randStr(r, 20),
			Seq:       r.Uint32(),
			Timestamp: time.Unix(r.Int63n(1<<32), r.Int63n(1e9)),
			Selector:  validSelectors[r.Intn(len(validSelectors))],
			Attrs:     make(selector.Attributes),
			Body:      randBytes(r, 2000),
		}
		for i, n := 0, r.Intn(6); i < n; i++ {
			name := randStr(r, 12)
			if name == "" {
				name = "a"
			}
			switch r.Intn(3) {
			case 0:
				m.Attrs[name] = selector.S(randStr(r, 30))
			case 1:
				m.Attrs[name] = selector.N(math.Float64frombits(r.Uint64()))
			default:
				m.Attrs[name] = selector.B(r.Intn(2) == 0)
			}
		}
		// NaN attribute values are legal; normalize for comparison below.
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if got.Kind != m.Kind || got.Sender != m.Sender || got.Seq != m.Seq ||
			!got.Timestamp.Equal(m.Timestamp) || got.Selector != m.Selector ||
			string(got.Body) != string(m.Body) || len(got.Attrs) != len(m.Attrs) {
			return false
		}
		for k, v := range m.Attrs {
			if !got.Attrs[k].Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics: random garbage and random truncations of
// valid frames must produce errors, not panics or giant allocations.
func TestQuickDecodeNeverPanics(t *testing.T) {
	valid, err := Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var frame []byte
		if r.Intn(2) == 0 {
			frame = randBytes(r, 200)
		} else {
			frame = append([]byte(nil), valid[:r.Intn(len(valid)+1)]...)
		}
		_, _ = Decode(frame) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func randStr(r *rand.Rand, max int) string {
	b := make([]byte, r.Intn(max+1))
	for i := range b {
		b[i] = byte(32 + r.Intn(95))
	}
	return string(b)
}

func randBytes(r *rand.Rand, max int) []byte {
	b := make([]byte, r.Intn(max+1))
	r.Read(b)
	return b
}
