package experiments

import (
	"math"
	"testing"
)

// TestFig6Shape verifies the paper's Figure 6 shapes: as page faults
// rise 30→100, packets accepted fall 16→1 in powers of two, the
// compression ratio rises, and bits-per-pixel falls.
func TestFig6Shape(t *testing.T) {
	table, err := Fig6(8)
	if err != nil {
		t.Fatal(err)
	}
	packets := table.Series("packets")
	cr := table.Series("compression-ratio")
	bpp := table.Series("bpp")
	psnr := table.Series("psnr-db")

	if packets.YAt(30) != 16 {
		t.Errorf("packets at 30 faults = %g, want 16", packets.YAt(30))
	}
	if packets.YAt(100) != 1 {
		t.Errorf("packets at 100 faults = %g, want 1", packets.YAt(100))
	}
	for _, y := range packets.Y {
		n := int(y)
		if n < 1 || n&(n-1) != 0 {
			t.Errorf("packet count %d is not a power of two", n)
		}
	}
	if !packets.MonotoneNonIncreasing(0) {
		t.Errorf("packets not monotone: %v", packets.Y)
	}
	if !cr.MonotoneNonDecreasing(1e-9) {
		t.Errorf("compression ratio not rising: %v", cr.Y)
	}
	if !bpp.MonotoneNonIncreasing(1e-9) {
		t.Errorf("BPP not falling: %v", bpp.Y)
	}
	if !psnr.MonotoneNonIncreasing(0.6) {
		t.Errorf("PSNR should fall with fewer packets: %v", psnr.Y)
	}
	// The dynamic range is wide, as in the paper (3.6→131 there).
	if cr.Y[len(cr.Y)-1] < 4*cr.Y[0] {
		t.Errorf("compression ratio range too narrow: %g → %g", cr.Y[0], cr.Y[len(cr.Y)-1])
	}
}

// TestFig7Shape verifies Figure 7: CPU load 30→100 % drives packets
// 16→0 with the same inverse CR / direct BPP relationships.
func TestFig7Shape(t *testing.T) {
	table, err := Fig7(8)
	if err != nil {
		t.Fatal(err)
	}
	packets := table.Series("packets")
	cr := table.Series("compression-ratio")
	bpp := table.Series("bpp")

	if packets.YAt(30) != 16 {
		t.Errorf("packets at 30%% = %g, want 16", packets.YAt(30))
	}
	if packets.YAt(100) != 0 {
		t.Errorf("packets at 100%% = %g, want 0 (paper: drop to 0)", packets.YAt(100))
	}
	if !packets.MonotoneNonIncreasing(0) {
		t.Errorf("packets not monotone: %v", packets.Y)
	}
	if !bpp.MonotoneNonIncreasing(1e-9) {
		t.Errorf("BPP not falling: %v", bpp.Y)
	}
	if !cr.MonotoneNonDecreasing(1e-9) {
		t.Errorf("CR not rising: %v", cr.Y)
	}
	// At zero packets the compression ratio diverges (nothing accepted).
	if !math.IsInf(cr.YAt(100), 1) {
		t.Errorf("CR at 100%% load = %g, want +Inf", cr.YAt(100))
	}
}

// TestFig8Shape verifies Figure 8: as client A closes from 100 m to
// 50 m its SIR improves and B's degrades; the trend reverses on the
// way back out.  The BS tier for A follows its SIR.
func TestFig8Shape(t *testing.T) {
	table, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	sirA := table.Series("sir-A-db")
	sirB := table.Series("sir-B-db")
	if len(sirA.Y) != 6 {
		t.Fatalf("steps = %d", len(sirA.Y))
	}
	// Approach phase (0→3): A rises, B falls.
	for s := 1; s <= 3; s++ {
		if sirA.Y[s] <= sirA.Y[s-1] {
			t.Errorf("step %d: A's SIR should rise while closing (%.2f -> %.2f)",
				s, sirA.Y[s-1], sirA.Y[s])
		}
		if sirB.Y[s] >= sirB.Y[s-1] {
			t.Errorf("step %d: B's SIR should fall while A closes (%.2f -> %.2f)",
				s, sirB.Y[s-1], sirB.Y[s])
		}
	}
	// Retreat phase (3→5): reversed.
	for s := 4; s <= 5; s++ {
		if sirA.Y[s] >= sirA.Y[s-1] {
			t.Errorf("step %d: A's SIR should fall while retreating", s)
		}
		if sirB.Y[s] <= sirB.Y[s-1] {
			t.Errorf("step %d: B's SIR should recover while A retreats", s)
		}
	}
	// Tier tracks SIR.
	tierA := table.Series("tier-A")
	if tierA.Y[3] < tierA.Y[0] {
		t.Errorf("A's tier at closest approach (%g) below start (%g)", tierA.Y[3], tierA.Y[0])
	}
}

// TestFig9Shape verifies Figure 9: raising A's power improves A's SIR
// and hurts B's, and (the paper's observation) a distance change is
// more effective than a comparable power change.
func TestFig9Shape(t *testing.T) {
	table, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	sirA := table.Series("sir-A-db")
	sirB := table.Series("sir-B-db")
	for s := 1; s < sirA.Len(); s++ {
		if sirA.Y[s] <= sirA.Y[s-1] {
			t.Errorf("step %d: A's SIR should rise with power", s)
		}
		if sirB.Y[s] >= sirB.Y[s-1] {
			t.Errorf("step %d: B's SIR should fall as A gets louder", s)
		}
	}

	// Distance beats power (the paper's observation), compared fairly
	// per factor of two: halving distance yields ~α·3 dB (α = 3 here)
	// while doubling power yields at most 3 dB.
	fig8, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	distPerHalving := fig8.Series("sir-A-db").Y[3] - fig8.Series("sir-A-db").Y[0] // 100→50 m
	// The power sweep multiplies by 1.6 per step; rescale one step's
	// gain to a per-doubling basis.
	powerPerDoubling := (sirA.Y[1] - sirA.Y[0]) * (math.Log(2) / math.Log(1.6))
	if distPerHalving <= powerPerDoubling {
		t.Errorf("distance gain %.2f dB/halving should exceed power gain %.2f dB/doubling",
			distPerHalving, powerPerDoubling)
	}
}

// TestFig10Shape verifies Figure 10: every join degrades the existing
// clients' SIR; the first join causes a large relative drop and the
// second a smaller one (paper: ~90 % then ~23 %); a session-size limit
// exists.
func TestFig10Shape(t *testing.T) {
	res, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	sirA := res.Table.Series("sir-A-db")
	if sirA.Y[1] >= sirA.Y[0] {
		t.Errorf("A's SIR should drop when client 2 joins: %.2f -> %.2f", sirA.Y[0], sirA.Y[1])
	}
	if sirA.Y[2] >= sirA.Y[1] {
		t.Errorf("A's SIR should drop when client 3 joins: %.2f -> %.2f", sirA.Y[1], sirA.Y[2])
	}
	if res.DropOnSecondJoin < 0.80 || res.DropOnSecondJoin > 0.97 {
		t.Errorf("first-join drop = %.0f%%, paper reports ~90%%", res.DropOnSecondJoin*100)
	}
	if res.DropOnThirdJoin < 0.15 || res.DropOnThirdJoin > 0.35 {
		t.Errorf("second drop = %.0f%%, paper reports ~23%%", res.DropOnThirdJoin*100)
	}
	if res.DropOnThirdJoin >= res.DropOnSecondJoin {
		t.Errorf("second drop (%.0f%%) should be smaller than first (%.0f%%)",
			res.DropOnThirdJoin*100, res.DropOnSecondJoin*100)
	}
	if res.AdmissionLimit < 1 {
		t.Errorf("admission limit = %d", res.AdmissionLimit)
	}
	// Tier degradation appears in the table.
	tierA := res.Table.Series("tier-A")
	if tierA.Y[2] >= tierA.Y[0] {
		t.Errorf("A's tier should degrade as the cell fills: %v", tierA.Y)
	}
}

// TestTablesRender smoke-tests that every figure renders a non-empty
// table (the qosbench output path).
func TestTablesRender(t *testing.T) {
	for name, run := range map[string]func() (string, error){
		"fig6": func() (string, error) { tb, err := Fig6(4); return render(tb, err) },
		"fig7": func() (string, error) { tb, err := Fig7(4); return render(tb, err) },
		"fig8": func() (string, error) { tb, err := Fig8(); return render(tb, err) },
		"fig9": func() (string, error) { tb, err := Fig9(); return render(tb, err) },
		"fig10": func() (string, error) {
			res, err := Fig10()
			if err != nil {
				return "", err
			}
			return res.Table.String(), nil
		},
	} {
		out, err := run()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(out) < 50 {
			t.Errorf("%s: output too small: %q", name, out)
		}
	}
}

func render(tb interface{ String() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return tb.String(), nil
}
