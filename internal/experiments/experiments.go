// Package experiments regenerates the paper's evaluation figures.
//
// Figure 6: image-viewer parameters (packets accepted, compression
// ratio, bits per pixel) versus host page faults.
// Figure 7: the same parameters versus CPU load.
// Figure 8: SIR of two wireless clients while client A's distance
// varies (mobility).
// Figure 9: SIR while client A's transmit power varies.
// Figure 10: SIR of up to three wireless clients as clients join and
// distance/power vary, showing the session-size limit.
//
// Each experiment runs the real pipeline: the synthetic host feeds the
// embedded SNMP agent; the monitor samples it; the inference engine
// turns state into a packet budget; the image viewer accepts that
// budget's worth of a genuinely coded progressive image and reports
// the resulting rate/quality figures.  Absolute values depend on our
// coder and channel model; the shapes are what reproduce the paper.
package experiments

import (
	"fmt"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/inference"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/trace"
	"adaptiveqos/internal/wavelet"
)

// TotalPackets is the paper's image packetization (16 packets).
const TotalPackets = 16

// viewerPipeline is the wired-client measurement rig shared by the
// Fig 6 and Fig 7 sweeps.
type viewerPipeline struct {
	host    *hostagent.Host
	monitor *hostagent.Monitor
	engine  *inference.Engine
	meta    apps.ImageMeta
	packets [][]byte
	image   *wavelet.Image
}

func newViewerPipeline(imageSize int) (*viewerPipeline, error) {
	host := hostagent.NewHost("experiment-host")
	agent := hostagent.NewAgent(host)
	monitor := &hostagent.Monitor{
		Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "public"),
	}
	engine := inference.New(profile.MustContract("fig67",
		profile.Constraint{Param: inference.StateCPULoad, Min: 0, Max: 90, Hard: true},
		profile.Constraint{Param: inference.StatePageFaults, Min: 0, Max: 95},
	))
	if err := inference.DefaultPolicy(engine, TotalPackets, 64_000, 16_000); err != nil {
		return nil, err
	}

	im := wavelet.Medical(imageSize, imageSize, 7)
	obj, err := media.EncodeImage(im, "experiment image")
	if err != nil {
		return nil, err
	}
	meta, packets, err := apps.ShareImage("exp-img", obj, TotalPackets)
	if err != nil {
		return nil, err
	}
	return &viewerPipeline{
		host:    host,
		monitor: monitor,
		engine:  engine,
		meta:    meta,
		packets: packets,
		image:   im,
	}, nil
}

// measure runs one adaptation cycle at the host's current state and
// returns the viewer statistics plus reconstruction PSNR.
func (p *viewerPipeline) measure() (apps.ImageStats, float64, error) {
	sample, err := p.monitor.Sample(hostagent.ParamCPULoad, hostagent.ParamPageFaults)
	if err != nil {
		return apps.ImageStats{}, 0, err
	}
	state := make(selector.Attributes, len(sample))
	for k, v := range sample {
		state.SetNumber(k, v)
	}
	d := p.engine.Decide(state)

	viewer := apps.NewImageViewer()
	viewer.SetBudget(d.EffectiveBudget(TotalPackets))
	viewer.Announce(p.meta)
	for i, pkt := range p.packets {
		if err := viewer.AddPacket(p.meta.Object, i, pkt); err != nil {
			return apps.ImageStats{}, 0, err
		}
	}
	st, err := viewer.Stats(p.meta.Object)
	if err != nil {
		return apps.ImageStats{}, 0, err
	}
	res, err := viewer.Render(p.meta.Object)
	if err != nil {
		return apps.ImageStats{}, 0, err
	}
	psnr, err := wavelet.PSNR(p.image, res.Image)
	if err != nil {
		return apps.ImageStats{}, 0, err
	}
	return st, psnr, nil
}

// Fig6 sweeps host page faults from 30 to 100 and reports the image
// viewer parameters, reproducing the paper's Figure 6 (graphs 1–3).
func Fig6(steps int) (*metrics.Table, error) {
	if steps < 2 {
		steps = 8
	}
	p, err := newViewerPipeline(128)
	if err != nil {
		return nil, err
	}
	p.host.Set(hostagent.ParamCPULoad, 20) // CPU unconstrained in this sweep
	table := metrics.NewTable("page-faults")
	for s := 0; s < steps; s++ {
		pf := 30 + float64(s)*70/float64(steps-1)
		p.host.Set(hostagent.ParamPageFaults, pf)
		st, psnr, err := p.measure()
		if err != nil {
			return nil, fmt.Errorf("fig6 step %d: %w", s, err)
		}
		table.Add("packets", pf, float64(st.PacketsAccepted))
		table.Add("compression-ratio", pf, st.CompressionRatio)
		table.Add("bpp", pf, st.BPP)
		table.Add("psnr-db", pf, psnr)
	}
	return table, nil
}

// Fig7 sweeps host CPU load from 30 to 100 % and reports the image
// viewer parameters, reproducing the paper's Figure 7.
func Fig7(steps int) (*metrics.Table, error) {
	if steps < 2 {
		steps = 8
	}
	p, err := newViewerPipeline(128)
	if err != nil {
		return nil, err
	}
	p.host.Set(hostagent.ParamPageFaults, 10) // page faults unconstrained
	table := metrics.NewTable("cpu-load")
	for s := 0; s < steps; s++ {
		load := 30 + float64(s)*70/float64(steps-1)
		p.host.Set(hostagent.ParamCPULoad, load)
		st, psnr, err := p.measure()
		if err != nil {
			return nil, fmt.Errorf("fig7 step %d: %w", s, err)
		}
		table.Add("packets", load, float64(st.PacketsAccepted))
		table.Add("compression-ratio", load, st.CompressionRatio)
		table.Add("bpp", load, st.BPP)
		table.Add("psnr-db", load, psnr)
	}
	return table, nil
}

// tierNumber renders a tier as a plottable level (0..3).
func tierNumber(t radio.Tier) float64 { return float64(t) }

// Fig8 reproduces the varying-distance experiment: two wireless
// clients at fixed power; client A moves from 100 m to 50 m (points
// 0–3) and back out (points 3–5).  Series: each client's SIR at the BS
// and the modality tier the BS selects for A's uplink.
func Fig8() (*metrics.Table, error) {
	ch := radio.NewChannel(radio.Params{})
	if err := ch.Join("A", 100, 1); err != nil {
		return nil, err
	}
	if err := ch.Join("B", 80, 1); err != nil {
		return nil, err
	}
	th := radio.DefaultThresholds()
	path := trace.Fig8PathA()

	table := metrics.NewTable("step")
	for s := 0; s <= 5; s++ {
		if err := ch.SetDistance("A", path.At(s)); err != nil {
			return nil, err
		}
		sirA, err := ch.SIRdB("A")
		if err != nil {
			return nil, err
		}
		sirB, err := ch.SIRdB("B")
		if err != nil {
			return nil, err
		}
		x := float64(s)
		table.Add("distance-A-m", x, path.At(s))
		table.Add("sir-A-db", x, sirA)
		table.Add("sir-B-db", x, sirB)
		table.Add("tier-A", x, tierNumber(th.TierFor(sirA)))
		table.Add("tier-B", x, tierNumber(th.TierFor(sirB)))
	}
	return table, nil
}

// Fig9 reproduces the varying-power experiment: client A's transmit
// power is increased in steps at fixed distances.
func Fig9() (*metrics.Table, error) {
	ch := radio.NewChannel(radio.Params{})
	if err := ch.Join("A", 100, 0.5); err != nil {
		return nil, err
	}
	if err := ch.Join("B", 80, 1); err != nil {
		return nil, err
	}
	table := metrics.NewTable("step")
	power := 0.5
	for s := 0; s <= 5; s++ {
		if err := ch.SetPower("A", power); err != nil {
			return nil, err
		}
		sirA, err := ch.SIRdB("A")
		if err != nil {
			return nil, err
		}
		sirB, err := ch.SIRdB("B")
		if err != nil {
			return nil, err
		}
		x := float64(s)
		table.Add("power-A-w", x, power)
		table.Add("sir-A-db", x, sirA)
		table.Add("sir-B-db", x, sirB)
		power *= 1.6
	}
	return table, nil
}

// Fig10Result extends the Fig 10 table with the headline drop ratios.
type Fig10Result struct {
	Table *metrics.Table
	// DropOnSecondJoin is client A's relative (linear) SIR drop when
	// client 2 joins; the paper reports ~90 %.
	DropOnSecondJoin float64
	// DropOnThirdJoin is the further relative drop when client 3
	// joins; the paper reports ~23 %.
	DropOnThirdJoin float64
	// AdmissionLimit is the estimated maximum number of equal clients
	// sustaining at least the text threshold.
	AdmissionLimit int
}

// Fig10 reproduces the multi-client experiment: clients join one by
// one with varying distance and power; every client's SIR deteriorates
// with each join, bounding the session size.
func Fig10() (*Fig10Result, error) {
	// The noise floor is calibrated so client A alone sees ~13 dB and
	// the staged joins reproduce the paper's relative drops: ~90 % when
	// client 2 joins, a further ~23 % when client 3 joins.
	ch := radio.NewChannel(radio.Params{NoiseFloor: 2.31e-7})
	th := radio.DefaultThresholds()
	table := metrics.NewTable("step")

	record := func(step int) error {
		for _, id := range ch.IDs() {
			db, err := ch.SIRdB(id)
			if err != nil {
				return err
			}
			table.Add("sir-"+id+"-db", float64(step), db)
			table.Add("tier-"+id, float64(step), tierNumber(th.TierFor(db)))
		}
		table.Add("clients", float64(step), float64(ch.Len()))
		return nil
	}

	// Step 0: client A alone.
	if err := ch.Join("A", 60, 1); err != nil {
		return nil, err
	}
	if err := record(0); err != nil {
		return nil, err
	}
	sirAlone, _ := ch.SIR("A")

	// Step 1: client 2 joins — the dominant interference event.
	if err := ch.Join("B", 90, 1.5); err != nil {
		return nil, err
	}
	if err := record(1); err != nil {
		return nil, err
	}
	sirWith2, _ := ch.SIR("A")

	// Step 2: client 3 joins, farther and weaker — a smaller further
	// drop.
	if err := ch.Join("C", 105, 0.8); err != nil {
		return nil, err
	}
	if err := record(2); err != nil {
		return nil, err
	}
	sirWith3, _ := ch.SIR("A")

	// Steps 3–4: distance and power variation while crowded.
	if err := ch.SetDistance("B", 80); err != nil {
		return nil, err
	}
	if err := record(3); err != nil {
		return nil, err
	}
	if err := ch.SetPower("C", 2); err != nil {
		return nil, err
	}
	if err := record(4); err != nil {
		return nil, err
	}

	return &Fig10Result{
		Table:            table,
		DropOnSecondJoin: (sirAlone - sirWith2) / sirAlone,
		DropOnThirdJoin:  (sirWith2 - sirWith3) / sirWith2,
		AdmissionLimit:   ch.AdmissionLimit(60, 1, th.TextDB),
	}, nil
}
