// Package clock is the time seam every other layer schedules through:
// a Clock interface with a Wall implementation (thin wrappers over the
// time package — the default everywhere, so wall-clock behaviour is
// unchanged) and a deterministic Virtual implementation driven by a
// shared event heap (virtual.go) for discrete-event simulation.
//
// The package deliberately imports nothing from this repository (the
// CI boundary gate enforces it): every layer may depend on the seam,
// the seam depends on no layer.  Conversely, no package outside this
// one may call time.Sleep / time.After / time.AfterFunc / time.Tick /
// time.NewTicker / time.NewTimer directly — scheduling goes through an
// injected Clock, so an entire session can run on virtual time.
// (time.Now for wall-stamping and time formatting remain allowed.)
package clock

import "time"

// Clock abstracts the scheduling surface of package time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once it
	// has advanced by d.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f once the clock has advanced by d.  On a Virtual
	// clock f runs on the goroutine driving the event heap.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker firing every d (d must be > 0).
	NewTicker(d time.Duration) Ticker
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// Timer is the clock-agnostic *time.Timer shape.
type Timer interface {
	// C returns the timer's delivery channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer for d from now, reporting whether it was
	// still pending.
	Reset(d time.Duration) bool
}

// Ticker is the clock-agnostic *time.Ticker shape.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Wall is the process's real-time clock; the zero-config default for
// every layer that takes an injected Clock.
var Wall Clock = wallClock{}

// Or returns c, or Wall when c is nil — the one-line default every
// config field uses.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (wallClock) Since(t time.Time) time.Duration        { return time.Since(t) }

func (wallClock) AfterFunc(d time.Duration, f func()) Timer {
	return wallTimer{t: time.AfterFunc(d, f)}
}

func (wallClock) NewTimer(d time.Duration) Timer {
	t := time.NewTimer(d)
	return wallTimer{t: t, c: t.C}
}

func (wallClock) NewTicker(d time.Duration) Ticker {
	return wallTicker{t: time.NewTicker(d)}
}

type wallTimer struct {
	t *time.Timer
	c <-chan time.Time
}

func (w wallTimer) C() <-chan time.Time        { return w.c }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }
