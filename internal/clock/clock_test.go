package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallBasics(t *testing.T) {
	if got := Or(nil); got != Wall {
		t.Fatalf("Or(nil) = %v, want Wall", got)
	}
	v := NewVirtual(time.Time{})
	if got := Or(v); got != Clock(v) {
		t.Fatalf("Or(v) = %v, want v", got)
	}
	before := time.Now()
	now := Wall.Now()
	if now.Before(before) {
		t.Fatalf("Wall.Now went backwards: %v < %v", now, before)
	}
	if d := Wall.Since(before); d < 0 {
		t.Fatalf("Wall.Since negative: %v", d)
	}
	tm := Wall.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer never fired")
	}
	tk := Wall.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall ticker never fired")
	}
	tk.Stop()
	done := make(chan struct{})
	Wall.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
}

func TestVirtualEpochAndNow(t *testing.T) {
	v := NewVirtual(time.Time{})
	if !v.Now().Equal(DefaultEpoch) {
		t.Fatalf("zero start should read DefaultEpoch, got %v", v.Now())
	}
	start := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	v = NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(3 * time.Second)
	if got := v.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

// Events at the same instant must fire in schedule order, and an event
// may schedule further events inside the same Advance window.
func TestVirtualDeterministicOrdering(t *testing.T) {
	v := NewVirtual(time.Time{})
	var order []int
	v.ScheduleFunc(10*time.Millisecond, func(time.Time) { order = append(order, 1) })
	v.ScheduleFunc(10*time.Millisecond, func(time.Time) { order = append(order, 2) })
	v.ScheduleFunc(5*time.Millisecond, func(now time.Time) {
		order = append(order, 0)
		// Nested event still inside the window: fires between 0 and 1/2? No —
		// scheduled at now+2ms = 7ms < 10ms, so it fires before the 10ms pair.
		v.ScheduleFunc(2*time.Millisecond, func(time.Time) { order = append(order, 99) })
	})
	fired := v.Advance(20 * time.Millisecond)
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
	want := []int{0, 99, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := v.Now().Sub(DefaultEpoch); got != 20*time.Millisecond {
		t.Fatalf("clock should land on the advance target, got +%v", got)
	}
}

func TestVirtualEventSeesItsInstant(t *testing.T) {
	v := NewVirtual(time.Time{})
	var at time.Time
	v.ScheduleFunc(7*time.Millisecond, func(now time.Time) { at = now })
	v.Advance(time.Hour)
	if want := DefaultEpoch.Add(7 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("event saw %v, want %v", at, want)
	}
}

func TestVirtualStopAndStep(t *testing.T) {
	v := NewVirtual(time.Time{})
	var fired bool
	s := v.ScheduleFunc(time.Second, func(time.Time) { fired = true })
	if !s.Stop() {
		t.Fatal("Stop on pending event should report true")
	}
	if s.Stop() {
		t.Fatal("second Stop should report false")
	}
	v.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped event fired")
	}

	v.ScheduleFunc(time.Second, func(time.Time) {})
	v.ScheduleFunc(2*time.Second, func(time.Time) {})
	if n := v.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	next, ok := v.NextAt()
	if !ok || !next.Equal(v.Now().Add(time.Second)) {
		t.Fatalf("NextAt = %v,%v", next, ok)
	}
	if !v.Step() || !v.Step() {
		t.Fatal("Step should fire both pending events")
	}
	if v.Step() {
		t.Fatal("Step on empty heap should report false")
	}
}

func TestVirtualTimerAndTicker(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(10 * time.Millisecond)
	v.Advance(5 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	v.Advance(5 * time.Millisecond)
	select {
	case now := <-tm.C():
		if want := DefaultEpoch.Add(10 * time.Millisecond); !now.Equal(want) {
			t.Fatalf("timer delivered %v, want %v", now, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
	if tm.Reset(3 * time.Millisecond) {
		t.Fatal("Reset after firing should report false")
	}
	v.Advance(3 * time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}

	tk := v.NewTicker(time.Second)
	v.Advance(3500 * time.Millisecond)
	// Depth-1 channel: only the latest undelivered tick is retained.
	ticks := 0
	for {
		select {
		case <-tk.C():
			ticks++
			continue
		default:
		}
		break
	}
	if ticks != 1 {
		t.Fatalf("buffered ticks = %d, want 1 (depth-1 channel)", ticks)
	}
	tk.Stop()
	before := v.Len()
	v.Advance(10 * time.Second)
	if v.Len() > before {
		t.Fatal("stopped ticker kept rescheduling")
	}
}

func TestVirtualAfterFuncTicksOnDrive(t *testing.T) {
	v := NewVirtual(time.Time{})
	var mu sync.Mutex
	count := 0
	v.AfterFunc(time.Second, func() {
		mu.Lock()
		count++
		mu.Unlock()
	})
	v.Advance(500 * time.Millisecond)
	mu.Lock()
	if count != 0 {
		mu.Unlock()
		t.Fatal("AfterFunc fired early")
	}
	mu.Unlock()
	v.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("AfterFunc count = %d, want 1", count)
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	v.Sleep(-time.Second) // returns immediately
	done := make(chan struct{})
	ready := make(chan struct{})
	go func() {
		close(ready)
		v.Sleep(time.Second)
		close(done)
	}()
	<-ready
	// Wait for the sleeper's event to land on the heap before driving.
	for v.Len() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	v.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never woke after Advance past its deadline")
	}
}

// Concurrent scheduling against a driving goroutine must be race-clean
// (run under -race in CI).
func TestVirtualConcurrentScheduleRace(t *testing.T) {
	v := NewVirtual(time.Time{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := v.ScheduleFunc(time.Duration(i%7)*time.Millisecond, func(time.Time) {})
				if i%3 == 0 {
					s.Stop()
				}
				v.Now()
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		v.Advance(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	v.Advance(time.Second)
}
