package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Event is work scheduled on a Virtual clock's heap.  Implementing it
// directly (rather than going through ScheduleFunc's closure) lets hot
// schedulers — the discrete-event network's per-delivery records — pay
// one allocation per event instead of two.
type Event interface {
	// Fire runs the event at its scheduled instant.  It executes on the
	// goroutine driving Advance/AdvanceTo/Step, with no clock locks
	// held, so it may schedule further events freely.
	Fire(now time.Time)
}

// DefaultEpoch anchors a zero-configured Virtual clock.  A fixed,
// non-zero epoch keeps virtual timestamps stable across runs (the
// determinism contract) while staying clear of the zero time.Time that
// several layers treat as "unset".
var DefaultEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a deterministic discrete-event clock: time advances only
// when the driving goroutine says so, and all scheduled work runs on
// that goroutine in (instant, schedule-order) order — no real sleeping
// anywhere.  Concurrent use of the scheduling surface (Now, After,
// AfterFunc, timers, tickers, Sleep) is safe; Advance/AdvanceTo/Step
// must be driven by one goroutine at a time (a second driver blocks).
//
// Goroutines blocked in Sleep or on timer channels wake when the
// driver advances past their deadline; they run concurrently with the
// driver, so full run-for-run determinism holds when the simulation's
// work happens inside Event.Fire callbacks (the discrete-event network
// delivers to handler-mode attachments for exactly this reason).
type Virtual struct {
	mu    sync.Mutex
	nowNS int64
	heap  eventHeap
	seq   uint64 // schedule-order tiebreak for identical instants

	advMu sync.Mutex // serializes drivers
}

// NewVirtual creates a virtual clock reading start (the zero time
// means DefaultEpoch).
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = DefaultEpoch
	}
	return &Virtual{nowNS: start.UnixNano()}
}

// vevent is one heap entry.
type vevent struct {
	atNS    int64
	seq     uint64
	ev      Event
	index   int  // heap position, -1 when popped/stopped
	stopped bool // Stop raced a pending fire
}

// eventHeap is a min-heap on (atNS, seq).
type eventHeap []*vevent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].atNS != h[j].atNS {
		return h[i].atNS < h[j].atNS
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*vevent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return time.Unix(0, v.nowNS)
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Schedule enqueues ev to fire once the clock has advanced by d
// (d <= 0 fires on the next Advance/Step, before time moves).  The
// returned handle cancels it.
func (v *Virtual) Schedule(d time.Duration, ev Event) *Scheduled {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.scheduleLocked(d, ev)
}

func (v *Virtual) scheduleLocked(d time.Duration, ev Event) *Scheduled {
	if d < 0 {
		d = 0
	}
	e := &vevent{atNS: v.nowNS + int64(d), seq: v.seq, ev: ev}
	v.seq++
	heap.Push(&v.heap, e)
	return &Scheduled{v: v, e: e}
}

// ScheduleFunc is Schedule for a plain func.
func (v *Virtual) ScheduleFunc(d time.Duration, f func(now time.Time)) *Scheduled {
	return v.Schedule(d, funcEvent(f))
}

type funcEvent func(now time.Time)

func (f funcEvent) Fire(now time.Time) { f(now) }

// Scheduled is a handle to one pending event.
type Scheduled struct {
	v *Virtual
	e *vevent
}

// Stop cancels the event, reporting whether it was still pending.
func (s *Scheduled) Stop() bool {
	s.v.mu.Lock()
	defer s.v.mu.Unlock()
	if s.e.stopped || s.e.index < 0 {
		s.e.stopped = true
		return false
	}
	heap.Remove(&s.v.heap, s.e.index)
	s.e.stopped = true
	return true
}

// Len reports the number of pending events.
func (v *Virtual) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.heap)
}

// NextAt reports the earliest pending event's instant.
func (v *Virtual) NextAt() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.heap) == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, v.heap[0].atNS), true
}

// Advance moves the clock forward by d, firing every event scheduled
// in (now, now+d] in deterministic (instant, schedule-order) order.
// Events fired may schedule further events; those whose instants also
// fall within the window fire in the same pass.  Returns the number of
// events fired.
func (v *Virtual) Advance(d time.Duration) int {
	return v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo is Advance toward an absolute instant (a target at or
// before the current reading fires nothing and leaves time unchanged).
func (v *Virtual) AdvanceTo(t time.Time) int {
	v.advMu.Lock()
	defer v.advMu.Unlock()
	targetNS := t.UnixNano()
	fired := 0
	for {
		v.mu.Lock()
		if len(v.heap) == 0 || v.heap[0].atNS > targetNS {
			if targetNS > v.nowNS {
				v.nowNS = targetNS
			}
			v.mu.Unlock()
			return fired
		}
		e := heap.Pop(&v.heap).(*vevent)
		if e.atNS > v.nowNS {
			v.nowNS = e.atNS
		}
		now := time.Unix(0, v.nowNS)
		v.mu.Unlock()
		if !e.stopped {
			e.ev.Fire(now)
			fired++
		}
	}
}

// Step fires the single earliest pending event, moving time to its
// instant; it reports false with an empty heap.
func (v *Virtual) Step() bool {
	v.advMu.Lock()
	defer v.advMu.Unlock()
	for {
		v.mu.Lock()
		if len(v.heap) == 0 {
			v.mu.Unlock()
			return false
		}
		e := heap.Pop(&v.heap).(*vevent)
		if e.atNS > v.nowNS {
			v.nowNS = e.atNS
		}
		now := time.Unix(0, v.nowNS)
		v.mu.Unlock()
		if e.stopped {
			continue
		}
		e.ev.Fire(now)
		return true
	}
}

// RunUntilIdle fires events until the heap drains or max fire (max <= 0
// means no bound), returning the count fired.  Self-rescheduling work
// (tickers) never drains, so bound those drives with AdvanceTo.
func (v *Virtual) RunUntilIdle(max int) int {
	fired := 0
	for max <= 0 || fired < max {
		if !v.Step() {
			break
		}
		fired++
	}
	return fired
}

// --- Clock interface: Sleep / After / timers / tickers ---

// Sleep implements Clock: it blocks the calling goroutine until the
// driver advances the clock by d.  Sleeping on a Virtual clock nobody
// drives blocks forever; d <= 0 returns immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	v.ScheduleFunc(d, func(time.Time) { close(ch) })
	<-ch
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.ScheduleFunc(d, func(now time.Time) { ch <- now })
	return ch
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	t := &virtualTimer{v: v}
	t.s = v.ScheduleFunc(d, func(time.Time) {
		t.mu.Lock()
		t.fired = true
		t.mu.Unlock()
		f()
	})
	return t
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	ch := make(chan time.Time, 1)
	t := &virtualTimer{v: v, ch: ch}
	t.s = v.ScheduleFunc(d, func(now time.Time) {
		t.mu.Lock()
		t.fired = true
		t.mu.Unlock()
		ch <- now
	})
	return t
}

type virtualTimer struct {
	v  *Virtual
	ch chan time.Time

	mu    sync.Mutex
	s     *Scheduled
	fired bool
}

func (t *virtualTimer) C() <-chan time.Time { return t.ch }

func (t *virtualTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired {
		return false
	}
	return t.s.Stop()
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := !t.fired && t.s.Stop()
	t.fired = false
	t.s = t.v.ScheduleFunc(d, func(now time.Time) {
		t.mu.Lock()
		t.fired = true
		ch := t.ch
		t.mu.Unlock()
		if ch != nil {
			select {
			case ch <- now:
			default:
			}
		}
	})
	return active
}

// NewTicker implements Clock.  Like time.Ticker, a slow consumer
// misses ticks rather than blocking the driver (channel depth 1).
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive Virtual ticker interval")
	}
	t := &virtualTicker{v: v, d: d, ch: make(chan time.Time, 1)}
	t.mu.Lock()
	t.s = v.Schedule(d, t)
	t.mu.Unlock()
	return t
}

type virtualTicker struct {
	v  *Virtual
	d  time.Duration
	ch chan time.Time

	mu      sync.Mutex
	s       *Scheduled
	stopped bool
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

// Fire implements Event: deliver the tick (dropping it on a full
// channel, like time.Ticker) and rearm.
func (t *virtualTicker) Fire(now time.Time) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.s = t.v.Schedule(t.d, t)
	t.mu.Unlock()
	select {
	case t.ch <- now:
	default:
	}
}

func (t *virtualTicker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.stopped = true
	t.s.Stop()
}
