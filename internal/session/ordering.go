package session

import (
	"sync"
	"time"

	"adaptiveqos/internal/obs"
)

// OrderBuffer restores the session's total event order at a replica:
// events arrive over the multicast substrate in arbitrary order (per
// sender) but carry the coordinator-assigned sequence number; the
// buffer releases them strictly in sequence.  Unlike the RTP reorder
// buffer there is no skipping — session events are not loss-tolerant,
// and the replica instead requests history for persistent gaps.
type OrderBuffer struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]Event

	// held stamps parked events' arrival (UnixNano) while
	// instrumentation is on; releases feed the pipeline reorder-stage
	// histogram so gap-induced session stalls are visible.
	held map[uint64]int64
}

// NewOrderBuffer creates a buffer expecting sequence numbers starting
// at afterSeq+1 (pass a session's LastSeq at join time, or 0 for a
// fresh session).
func NewOrderBuffer(afterSeq uint64) *OrderBuffer {
	return &OrderBuffer{next: afterSeq + 1, pending: make(map[uint64]Event)}
}

// Push ingests an event and returns the events now releasable in
// order.  Duplicates and already-released events are ignored.
func (b *OrderBuffer) Push(ev Event) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Seq < b.next {
		return nil
	}
	b.pending[ev.Seq] = ev
	if obs.Enabled() {
		if b.held == nil {
			b.held = make(map[uint64]int64)
		}
		b.held[ev.Seq] = time.Now().UnixNano()
	}
	var out []Event
	for {
		next, ok := b.pending[b.next]
		if !ok {
			break
		}
		delete(b.pending, b.next)
		if b.held != nil {
			if t, ok := b.held[b.next]; ok {
				obs.StageHistogram(obs.StageReorder).Observe(time.Now().UnixNano() - t)
				delete(b.held, b.next)
			}
		}
		out = append(out, next)
		b.next++
	}
	return out
}

// Gap reports the first missing sequence number the buffer is waiting
// for and how many events are parked behind it.
func (b *OrderBuffer) Gap() (waitingFor uint64, parked int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next, len(b.pending)
}

// LamportClock provides causal timestamps for the distributed (peer)
// configuration, where no single coordinator assigns sequence numbers.
type LamportClock struct {
	mu   sync.Mutex
	time uint64
}

// Tick advances the clock for a local event and returns its timestamp.
func (c *LamportClock) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.time++
	return c.time
}

// Witness merges a remote timestamp (receive rule) and returns the
// updated local time.
func (c *LamportClock) Witness(remote uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if remote > c.time {
		c.time = remote
	}
	c.time++
	return c.time
}

// Now returns the current time without advancing it.
func (c *LamportClock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.time
}
