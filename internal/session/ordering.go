package session

import (
	"fmt"
	"sync"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/obs"
)

// OrderBuffer restores the session's total event order at a replica:
// events arrive over the multicast substrate in arbitrary order (per
// sender) but carry the coordinator-assigned sequence number; the
// buffer releases them strictly in sequence.  Unlike the RTP reorder
// buffer there is no skipping — session events are not loss-tolerant,
// and the replica instead requests history for persistent gaps.
type OrderBuffer struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]Event

	// limit bounds pending (0 = unlimited): a corrupt or far-future
	// sequence number must not park events forever, so overflow evicts
	// the farthest-ahead event and counts the eviction.
	limit    int
	overflow uint64
	onEvict  func(Event)

	// held stamps parked events' arrival (UnixNano on clk) while
	// instrumentation is on; releases feed the pipeline reorder-stage
	// histogram so gap-induced session stalls are visible.
	held map[uint64]int64

	// clk stamps held; nil means wall time.  Under a virtual clock the
	// reorder-latency histogram measures simulated stall time, not the
	// (meaningless) wall time of the driving loop.
	clk clock.Clock
}

// NewOrderBuffer creates a buffer expecting sequence numbers starting
// at afterSeq+1 (pass a session's LastSeq at join time, or 0 for a
// fresh session).
func NewOrderBuffer(afterSeq uint64) *OrderBuffer {
	return &OrderBuffer{next: afterSeq + 1, pending: make(map[uint64]Event)}
}

// SetClock pins held-event timestamps to c (nil restores wall time).
func (b *OrderBuffer) SetClock(c clock.Clock) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clk = c
}

// SetLimit bounds the parked-event count to n (0 = unlimited).  When a
// Push would exceed the bound, the farthest-ahead event is evicted:
// onEvict (optional) observes it, Overflow counts it, and the gap the
// buffer is stalled on stays visible through Gap so a repair loop can
// act.  onEvict runs with the buffer lock held and must not call back
// into the buffer.
func (b *OrderBuffer) SetLimit(n int, onEvict func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.limit = n
	b.onEvict = onEvict
}

// Overflow returns the number of events evicted by the SetLimit bound.
func (b *OrderBuffer) Overflow() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.overflow
}

// Push ingests an event and returns the events now releasable in
// order.  Duplicates and already-released events are ignored.
func (b *OrderBuffer) Push(ev Event) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Seq < b.next {
		return nil
	}
	if _, dup := b.pending[ev.Seq]; !dup && b.limit > 0 && len(b.pending) >= b.limit {
		// Full: keep the events nearest the gap (they release first)
		// and evict whichever of {farthest parked, new} is farther.
		far := ev.Seq
		for s := range b.pending {
			if s > far {
				far = s
			}
		}
		b.overflow++
		if obs.Enabled() {
			obs.Note(0, obs.StageReorder,
				fmt.Sprintf("order buffer overflow: evicting seq %d (limit %d, waiting for %d)", far, b.limit, b.next))
		}
		if far == ev.Seq {
			if b.onEvict != nil {
				b.onEvict(ev)
			}
			return nil
		}
		evicted := b.pending[far]
		delete(b.pending, far)
		delete(b.held, far)
		if b.onEvict != nil {
			b.onEvict(evicted)
		}
	}
	b.pending[ev.Seq] = ev
	if obs.Enabled() {
		if b.held == nil {
			b.held = make(map[uint64]int64)
		}
		b.held[ev.Seq] = clock.Or(b.clk).Now().UnixNano()
	}
	return b.releaseLocked()
}

// releaseLocked drains the contiguous run starting at next.
func (b *OrderBuffer) releaseLocked() []Event {
	var out []Event
	for {
		next, ok := b.pending[b.next]
		if !ok {
			break
		}
		delete(b.pending, b.next)
		if b.held != nil {
			if t, ok := b.held[b.next]; ok {
				obs.StageHistogram(obs.StageReorder).Observe(clock.Or(b.clk).Now().UnixNano() - t)
				delete(b.held, b.next)
			}
		}
		out = append(out, next)
		b.next++
	}
	return out
}

// Skip abandons the gap the buffer is stalled on: it advances next to
// the smallest parked sequence number and returns the events now
// releasable in order, plus the skipped range [from, to).  With
// nothing parked it is a no-op (from == to).  Repair loops call this
// when their retry budget is exhausted, trading the lost events for
// liveness.
func (b *OrderBuffer) Skip() (released []Event, from, to uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.next
	if len(b.pending) == 0 {
		return nil, from, from
	}
	min := uint64(0)
	for s := range b.pending {
		if min == 0 || s < min {
			min = s
		}
	}
	b.next = min
	return b.releaseLocked(), from, min
}

// Gap reports the first missing sequence number the buffer is waiting
// for and how many events are parked behind it.
func (b *OrderBuffer) Gap() (waitingFor uint64, parked int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next, len(b.pending)
}

// LamportClock provides causal timestamps for the distributed (peer)
// configuration, where no single coordinator assigns sequence numbers.
type LamportClock struct {
	mu   sync.Mutex
	time uint64
}

// Tick advances the clock for a local event and returns its timestamp.
func (c *LamportClock) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.time++
	return c.time
}

// Witness merges a remote timestamp (receive rule) and returns the
// updated local time.
func (c *LamportClock) Witness(remote uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if remote > c.time {
		c.time = remote
	}
	c.time++
	return c.time
}

// Now returns the current time without advancing it.
func (c *LamportClock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.time
}
