package session

import (
	"errors"
	"fmt"
	"sync"
)

// Concurrency control: arbitration and consistency maintenance when
// multiple clients concurrently manipulate the same set of shared
// objects.  Two complementary mechanisms are provided, matching
// centralized and optimistic styles:
//
//   - ObjectLocks: explicit arbitration.  A client acquires the lock
//     on an object before mutating it; competing clients queue FIFO.
//   - VersionStore: optimistic control.  Updates carry the base
//     version they were computed against; a stale base is rejected and
//     the client rebases, so no concurrent update is silently lost.

// Concurrency errors.
var (
	ErrLockHeld   = errors.New("session: object lock held by another client")
	ErrNotHolder  = errors.New("session: client does not hold the lock")
	ErrStale      = errors.New("session: update based on a stale version")
	ErrNoSuchLock = errors.New("session: no such object lock state")
)

// ObjectLocks arbitrates exclusive access to named shared objects.
type ObjectLocks struct {
	mu    sync.Mutex
	locks map[string]*lockState
}

type lockState struct {
	holder  string
	waiters []string
}

// NewObjectLocks returns an empty lock table.
func NewObjectLocks() *ObjectLocks {
	return &ObjectLocks{locks: make(map[string]*lockState)}
}

// TryAcquire attempts to take the lock on object for client.  If the
// lock is free (or already held by the same client) it succeeds;
// otherwise the client is appended to the FIFO wait queue (once) and
// ErrLockHeld is returned.
func (l *ObjectLocks) TryAcquire(object, client string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.locks[object]
	if !ok {
		l.locks[object] = &lockState{holder: client}
		return nil
	}
	if st.holder == "" {
		st.holder = client
		return nil
	}
	if st.holder == client {
		return nil // re-entrant
	}
	for _, w := range st.waiters {
		if w == client {
			return fmt.Errorf("%w: %q (queued)", ErrLockHeld, st.holder)
		}
	}
	st.waiters = append(st.waiters, client)
	return fmt.Errorf("%w: %q (queued)", ErrLockHeld, st.holder)
}

// Release gives up the lock; the first waiter (if any) becomes the new
// holder, and its ID is returned so the arbiter can notify it.
func (l *ObjectLocks) Release(object, client string) (next string, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.locks[object]
	if !ok || st.holder != client {
		return "", fmt.Errorf("%w: %s/%s", ErrNotHolder, object, client)
	}
	if len(st.waiters) > 0 {
		st.holder = st.waiters[0]
		st.waiters = st.waiters[1:]
		return st.holder, nil
	}
	delete(l.locks, object)
	return "", nil
}

// Holder reports the current holder of an object's lock ("" if free).
func (l *ObjectLocks) Holder(object string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.locks[object]; ok {
		return st.holder
	}
	return ""
}

// QueueLen reports the number of waiters on an object.
func (l *ObjectLocks) QueueLen(object string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.locks[object]; ok {
		return len(st.waiters)
	}
	return 0
}

// Drop removes a client from every lock and wait queue (departure
// handling) and returns the objects whose lock passed to a waiter,
// keyed by object name with the new holder as value.
func (l *ObjectLocks) Drop(client string) map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	promoted := make(map[string]string)
	for object, st := range l.locks {
		// Remove from waiters.
		keep := st.waiters[:0]
		for _, w := range st.waiters {
			if w != client {
				keep = append(keep, w)
			}
		}
		st.waiters = keep
		if st.holder == client {
			if len(st.waiters) > 0 {
				st.holder = st.waiters[0]
				st.waiters = st.waiters[1:]
				promoted[object] = st.holder
			} else {
				delete(l.locks, object)
			}
		}
	}
	return promoted
}

// VersionedObject is the stored state of one shared object under
// optimistic control.
type VersionedObject struct {
	Version uint64
	Data    []byte
	Writer  string // client that wrote this version
}

// VersionStore applies optimistic concurrency control to shared
// objects: an update is accepted only when computed against the
// current version, so two users selecting information for sharing at
// the same time cannot silently overwrite each other — the loser is
// told to rebase, and no information is lost.
type VersionStore struct {
	mu      sync.RWMutex
	objects map[string]VersionedObject
}

// NewVersionStore returns an empty store.
func NewVersionStore() *VersionStore {
	return &VersionStore{objects: make(map[string]VersionedObject)}
}

// Get returns the current state of an object (zero-version empty
// object if never written).
func (v *VersionStore) Get(object string) VersionedObject {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.objects[object]
}

// Update installs new data computed against baseVersion.  It returns
// the new version, or ErrStale (with the current state) when another
// client committed in between.
func (v *VersionStore) Update(object, client string, baseVersion uint64, data []byte) (VersionedObject, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.objects[object]
	if cur.Version != baseVersion {
		return cur, fmt.Errorf("%w: %s at v%d, update based on v%d", ErrStale, object, cur.Version, baseVersion)
	}
	next := VersionedObject{
		Version: cur.Version + 1,
		Data:    append([]byte(nil), data...),
		Writer:  client,
	}
	v.objects[object] = next
	return next, nil
}

// Objects returns the number of objects with at least one version.
func (v *VersionStore) Objects() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.objects)
}
