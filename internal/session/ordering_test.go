package session

import "testing"

func TestOrderBufferLimitEvictsFarthest(t *testing.T) {
	b := NewOrderBuffer(0)
	var evicted []uint64
	b.SetLimit(3, func(ev Event) { evicted = append(evicted, ev.Seq) })
	ev := func(seq uint64) Event { return Event{Seq: seq} }

	// Seq 1 is missing; park 3 far-ahead events to fill the bound.
	for _, s := range []uint64{5, 3, 9} {
		if out := b.Push(ev(s)); out != nil {
			t.Fatalf("seq %d released across the gap", s)
		}
	}
	// A nearer event displaces the farthest parked one (9).
	if out := b.Push(ev(2)); out != nil {
		t.Fatal("2 released while 1 is missing")
	}
	if len(evicted) != 1 || evicted[0] != 9 {
		t.Fatalf("evicted = %v, want [9]", evicted)
	}
	// A farther-than-everything event is rejected outright.
	if out := b.Push(ev(100)); out != nil {
		t.Fatal("100 released")
	}
	if len(evicted) != 2 || evicted[1] != 100 {
		t.Fatalf("evicted = %v, want [9 100]", evicted)
	}
	if got := b.Overflow(); got != 2 {
		t.Errorf("overflow = %d, want 2", got)
	}
	// The gap stays visible and, once filled, the survivors release:
	// near-gap events were kept, so 1..3 and 5 come out in order.
	if w, parked := b.Gap(); w != 1 || parked != 3 {
		t.Fatalf("gap = %d/%d, want 1/3", w, parked)
	}
	out := b.Push(ev(1))
	want := []uint64{1, 2, 3}
	if len(out) != len(want) {
		t.Fatalf("released %d events, want %d", len(out), len(want))
	}
	for i, ev := range out {
		if ev.Seq != want[i] {
			t.Errorf("release[%d] = %d, want %d", i, ev.Seq, want[i])
		}
	}
	// Duplicates of parked events never trigger eviction.
	before := b.Overflow()
	b.Push(ev(5))
	b.Push(ev(5))
	b.Push(ev(5))
	if b.Overflow() != before {
		t.Error("duplicate of a parked event counted as overflow")
	}
}

func TestOrderBufferSkip(t *testing.T) {
	b := NewOrderBuffer(0)
	ev := func(seq uint64) Event { return Event{Seq: seq} }

	// Nothing parked: Skip is a no-op.
	if rel, from, to := b.Skip(); rel != nil || from != to {
		t.Fatalf("empty skip = %v [%d,%d)", rel, from, to)
	}

	b.Push(ev(4))
	b.Push(ev(5))
	b.Push(ev(7))
	rel, from, to := b.Skip()
	if from != 1 || to != 4 {
		t.Fatalf("skipped [%d,%d), want [1,4)", from, to)
	}
	if len(rel) != 2 || rel[0].Seq != 4 || rel[1].Seq != 5 {
		t.Fatalf("released = %v, want seqs 4,5", rel)
	}
	if w, parked := b.Gap(); w != 6 || parked != 1 {
		t.Errorf("gap after skip = %d/%d, want 6/1", w, parked)
	}
	// The stream continues normally past the skipped range.
	if out := b.Push(ev(6)); len(out) != 2 || out[0].Seq != 6 || out[1].Seq != 7 {
		t.Errorf("post-skip release = %v", out)
	}
}
