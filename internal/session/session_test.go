package session

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

func member(id string, media string) *profile.Profile {
	p := profile.New(id)
	p.Interests.SetString("media", media)
	return p
}

func TestGroupFormation(t *testing.T) {
	g := Group{
		Objective:   "crisis-sector-7",
		ResultSpace: []string{"comments", "images"},
		Filter:      selector.MustCompile(`media in ["image", "text"]`),
	}
	if !g.Admits(member("a", "image")) {
		t.Error("image client should be admitted")
	}
	if g.Admits(member("b", "video")) {
		t.Error("video client should be filtered out")
	}
	if !g.Offers("images") || g.Offers("video-calls") {
		t.Error("result space")
	}
	open := Group{Objective: "open"}
	if !open.Admits(member("c", "anything")) {
		t.Error("nil filter admits everyone")
	}
}

func TestSessionMembership(t *testing.T) {
	s := New(Group{Objective: "o", Filter: selector.MustCompile(`media == "image"`)})
	a := member("a", "image")
	if err := s.Join(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(a); !errors.Is(err, ErrMember) {
		t.Errorf("double join: %v", err)
	}
	if err := s.Join(member("b", "video")); !errors.Is(err, ErrNotAdmitted) {
		t.Errorf("filtered join: %v", err)
	}
	if !s.IsMember("a") || s.IsMember("b") || s.Members() != 1 {
		t.Error("membership state")
	}

	// Stored profiles are snapshots.
	a.Interests.SetString("media", "changed")
	got := s.MatchMembers(selector.MustCompile(`media == "image"`))
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("MatchMembers = %v", got)
	}

	// Profile update changes matching.
	a2 := member("a", "image")
	a2.Preferences.SetString("modality", "text")
	if err := s.UpdateProfile(a2); err != nil {
		t.Fatal(err)
	}
	if len(s.MatchMembers(selector.MustCompile(`modality == "text"`))) != 1 {
		t.Error("updated profile not matched")
	}
	if err := s.UpdateProfile(member("ghost", "image")); !errors.Is(err, ErrNotMember) {
		t.Errorf("update non-member: %v", err)
	}

	if err := s.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave("a"); !errors.Is(err, ErrNotMember) {
		t.Errorf("double leave: %v", err)
	}
}

func TestCommitAndHistory(t *testing.T) {
	s := New(Group{Objective: "o"})
	s.Join(member("a", "image"))
	s.Join(member("b", "image"))

	ev1, err := s.Commit("a", "chat", "", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	ev2, _ := s.Commit("b", "whiteboard", "stroke-1", []byte("line"))
	if ev1.Seq != 1 || ev2.Seq != 2 {
		t.Errorf("sequence: %d, %d", ev1.Seq, ev2.Seq)
	}
	if _, err := s.Commit("ghost", "chat", "", nil); !errors.Is(err, ErrNotMember) {
		t.Errorf("commit by non-member: %v", err)
	}

	// Late joiner catch-up.
	hist := s.History(0)
	if len(hist) != 2 || hist[0].Seq != 1 || string(hist[1].Payload) != "line" {
		t.Errorf("history: %v", hist)
	}
	if len(s.History(1)) != 1 {
		t.Error("partial history")
	}
	if s.LastSeq() != 2 {
		t.Errorf("LastSeq = %d", s.LastSeq())
	}

	// Payload isolation.
	payload := []byte("mutate me")
	ev, _ := s.Commit("a", "chat", "", payload)
	payload[0] = 'X'
	if s.History(ev.Seq - 1)[0].Payload[0] == 'X' {
		t.Error("archive aliases caller payload")
	}
}

func TestArchiveCap(t *testing.T) {
	s := New(Group{Objective: "o"})
	s.Join(member("a", "x"))
	s.SetArchiveCap(3)
	for i := 0; i < 10; i++ {
		s.Commit("a", "chat", "", []byte{byte(i)})
	}
	hist := s.History(0)
	if len(hist) != 3 || hist[0].Seq != 8 || hist[2].Seq != 10 {
		t.Errorf("capped history: %v", hist)
	}
}

func TestObjectLocks(t *testing.T) {
	l := NewObjectLocks()
	if err := l.TryAcquire("img-1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := l.TryAcquire("img-1", "a"); err != nil {
		t.Errorf("re-entrant acquire: %v", err)
	}
	if err := l.TryAcquire("img-1", "b"); !errors.Is(err, ErrLockHeld) {
		t.Errorf("contended acquire: %v", err)
	}
	if err := l.TryAcquire("img-1", "b"); !errors.Is(err, ErrLockHeld) {
		t.Errorf("repeat queue: %v", err)
	}
	if l.QueueLen("img-1") != 1 {
		t.Errorf("queue length = %d, want 1 (no duplicates)", l.QueueLen("img-1"))
	}
	l.TryAcquire("img-1", "c")
	if l.Holder("img-1") != "a" || l.QueueLen("img-1") != 2 {
		t.Error("holder/queue state")
	}

	// FIFO handover.
	next, err := l.Release("img-1", "a")
	if err != nil || next != "b" {
		t.Errorf("release: next=%q, %v", next, err)
	}
	if l.Holder("img-1") != "b" {
		t.Error("handover")
	}
	if _, err := l.Release("img-1", "a"); !errors.Is(err, ErrNotHolder) {
		t.Errorf("release by non-holder: %v", err)
	}
	next, _ = l.Release("img-1", "b")
	if next != "c" {
		t.Errorf("second handover: %q", next)
	}
	next, _ = l.Release("img-1", "c")
	if next != "" || l.Holder("img-1") != "" {
		t.Error("final release should free the lock")
	}
	// Independent objects don't contend.
	l.TryAcquire("x", "a")
	if err := l.TryAcquire("y", "b"); err != nil {
		t.Errorf("independent lock: %v", err)
	}
}

func TestObjectLocksDrop(t *testing.T) {
	l := NewObjectLocks()
	l.TryAcquire("o1", "a")
	l.TryAcquire("o1", "b")
	l.TryAcquire("o2", "b")
	l.TryAcquire("o2", "a")
	l.TryAcquire("o3", "a")

	promoted := l.Drop("a")
	if promoted["o1"] != "" && l.Holder("o1") != "b" {
		t.Error("o1 should pass to b")
	}
	if promoted["o2"] != "" {
		t.Error("o2 was held by b; nothing to promote")
	}
	if l.Holder("o3") != "" {
		t.Error("o3 should be free after drop")
	}
	if l.QueueLen("o2") != 0 {
		t.Error("a must be out of o2's queue")
	}
}

func TestVersionStore(t *testing.T) {
	v := NewVersionStore()
	if got := v.Get("doc"); got.Version != 0 || got.Data != nil {
		t.Errorf("fresh object: %+v", got)
	}

	v1, err := v.Update("doc", "a", 0, []byte("first"))
	if err != nil || v1.Version != 1 {
		t.Fatalf("first update: %+v, %v", v1, err)
	}

	// Concurrent writer based on version 0 must be rejected — no
	// information is silently lost.
	cur, err := v.Update("doc", "b", 0, []byte("conflicting"))
	if !errors.Is(err, ErrStale) {
		t.Fatalf("stale update: %v", err)
	}
	if cur.Version != 1 || string(cur.Data) != "first" {
		t.Errorf("stale response carries current state: %+v", cur)
	}

	// Rebase and retry.
	v2, err := v.Update("doc", "b", cur.Version, []byte("merged"))
	if err != nil || v2.Version != 2 || v2.Writer != "b" {
		t.Errorf("rebased update: %+v, %v", v2, err)
	}
	if v.Objects() != 1 {
		t.Errorf("objects = %d", v.Objects())
	}
}

func TestVersionStoreConcurrentNoLostUpdate(t *testing.T) {
	v := NewVersionStore()
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	var accepted int64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for {
					cur := v.Get("counter")
					_, err := v.Update("counter", fmt.Sprintf("w%d", w), cur.Version, []byte{byte(w)})
					if err == nil {
						mu.Lock()
						accepted++
						mu.Unlock()
						break
					}
					if !errors.Is(err, ErrStale) {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	final := v.Get("counter")
	if final.Version != uint64(writers*perWriter) {
		t.Errorf("version = %d, want %d (every accepted update counted exactly once)",
			final.Version, writers*perWriter)
	}
	if accepted != writers*perWriter {
		t.Errorf("accepted = %d", accepted)
	}
}

func TestOrderBuffer(t *testing.T) {
	b := NewOrderBuffer(0)
	ev := func(seq uint64) Event { return Event{Seq: seq} }

	if out := b.Push(ev(2)); out != nil {
		t.Error("2 must wait for 1")
	}
	if w, parked := b.Gap(); w != 1 || parked != 1 {
		t.Errorf("gap: %d, %d", w, parked)
	}
	out := b.Push(ev(1))
	if len(out) != 2 || out[0].Seq != 1 || out[1].Seq != 2 {
		t.Errorf("release: %v", out)
	}
	// Duplicates and old events ignored.
	if out := b.Push(ev(1)); out != nil {
		t.Error("old event released")
	}
	// Join mid-session.
	b2 := NewOrderBuffer(10)
	if out := b2.Push(ev(11)); len(out) != 1 {
		t.Error("mid-session start")
	}
}

func TestLamportClock(t *testing.T) {
	var c LamportClock
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Error("tick")
	}
	if got := c.Witness(10); got != 11 {
		t.Errorf("witness ahead = %d", got)
	}
	if got := c.Witness(3); got != 12 {
		t.Errorf("witness behind = %d", got)
	}
	if c.Now() != 12 {
		t.Error("now")
	}
}

// TestQuickOrderBufferTotalOrder: any permutation of a sequence is
// released exactly once, in order.
func TestQuickOrderBufferTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		b := NewOrderBuffer(0)
		perm := r.Perm(n)
		var released []uint64
		for _, i := range perm {
			for _, ev := range b.Push(Event{Seq: uint64(i + 1)}) {
				released = append(released, ev.Seq)
			}
		}
		if len(released) != n {
			return false
		}
		for i, seq := range released {
			if seq != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVersionStoreLinear: sequential updates with correct bases
// always succeed and versions increase by exactly one.
func TestQuickVersionStoreLinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := NewVersionStore()
		var base uint64
		for i := 0; i < 1+r.Intn(50); i++ {
			next, err := v.Update("o", "w", base, []byte{byte(i)})
			if err != nil || next.Version != base+1 {
				return false
			}
			base = next.Version
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
