// Package session implements collaboration sessions: group formation
// around an objective and result space, membership tracking, total
// event ordering, concurrency control for shared objects, and session
// archival so late joiners can catch up with history.
package session

import (
	"errors"
	"fmt"
	"sync"

	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

// Session errors.
var (
	ErrNotMember   = errors.New("session: client is not a member")
	ErrMember      = errors.New("session: client is already a member")
	ErrNotAdmitted = errors.New("session: profile does not satisfy the group filter")
)

// Group defines what a collaboration session is about.  A more precise
// objective definition yields higher satisfaction; the result space
// lists the outcomes the session supports (sharing comments, documents,
// images, ...).  The filter forms smaller groups among members with
// closer interests.
type Group struct {
	// Objective names the shared goal ("crisis-response-sector-7",
	// "auction:modems").
	Objective string
	// ResultSpace lists the capabilities the session offers.
	ResultSpace []string
	// Filter admits only clients whose profile satisfies it; nil
	// admits everyone.
	Filter *selector.Selector
}

// Admits reports whether a client profile may join the group.
func (g *Group) Admits(p *profile.Profile) bool {
	return g.Filter == nil || p.Matches(g.Filter)
}

// Offers reports whether the group's result space includes a
// capability.
func (g *Group) Offers(result string) bool {
	for _, r := range g.ResultSpace {
		if r == result {
			return true
		}
	}
	return false
}

// Event is one archived session event.
type Event struct {
	// Seq is the global sequence number assigned by the session.
	Seq uint64
	// Sender is the originating client.
	Sender string
	// App names the application ("chat", "whiteboard", "imageviewer").
	App string
	// Object is the shared object concerned, if any.
	Object string
	// Payload is the application-encoded event body.
	Payload []byte
}

// Session is one collaboration session: membership plus a totally
// ordered, archived event history.  The session plays the role of the
// central coordinator where one exists (the base station for wireless
// legs); wired peers each hold a replica that converges because events
// carry the coordinator-assigned sequence.
type Session struct {
	Group Group

	mu      sync.RWMutex
	members map[string]*profile.Profile
	nextSeq uint64
	archive []Event
	// archiveCap bounds history; 0 = unlimited.
	archiveCap int
}

// New creates an empty session for the group.
func New(g Group) *Session {
	return &Session{Group: g, members: make(map[string]*profile.Profile)}
}

// SetArchiveCap bounds the archived history to the most recent n
// events (0 = unlimited).
func (s *Session) SetArchiveCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.archiveCap = n
	s.trimLocked()
}

// Join admits a client; its profile must satisfy the group filter.
func (s *Session) Join(p *profile.Profile) error {
	if !s.Group.Admits(p) {
		return fmt.Errorf("%w: %s", ErrNotAdmitted, p.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[p.ID]; ok {
		return fmt.Errorf("%w: %s", ErrMember, p.ID)
	}
	s.members[p.ID] = p.Clone()
	return nil
}

// Leave removes a client.
func (s *Session) Leave(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, id)
	}
	delete(s.members, id)
	return nil
}

// IsMember reports membership.
func (s *Session) IsMember(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.members[id]
	return ok
}

// Members returns the current member count.
func (s *Session) Members() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.members)
}

// UpdateProfile refreshes a member's stored profile snapshot.
func (s *Session) UpdateProfile(p *profile.Profile) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[p.ID]; !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, p.ID)
	}
	s.members[p.ID] = p.Clone()
	return nil
}

// MatchMembers returns the IDs of members whose profile satisfies sel,
// sorted is not guaranteed.
func (s *Session) MatchMembers(sel *selector.Selector) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for id, p := range s.members {
		if p.Matches(sel) {
			out = append(out, id)
		}
	}
	return out
}

// Commit assigns the next global sequence number to an event from a
// member, archives it and returns the sequenced event.
func (s *Session) Commit(sender, app, object string, payload []byte) (Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[sender]; !ok {
		return Event{}, fmt.Errorf("%w: %s", ErrNotMember, sender)
	}
	s.nextSeq++
	ev := Event{
		Seq:     s.nextSeq,
		Sender:  sender,
		App:     app,
		Object:  object,
		Payload: append([]byte(nil), payload...),
	}
	s.archive = append(s.archive, ev)
	s.trimLocked()
	return ev, nil
}

func (s *Session) trimLocked() {
	if s.archiveCap > 0 && len(s.archive) > s.archiveCap {
		drop := len(s.archive) - s.archiveCap
		s.archive = append([]Event(nil), s.archive[drop:]...)
	}
}

// History returns archived events with Seq > afterSeq, in order — the
// catch-up stream for a late joiner.
func (s *Session) History(afterSeq uint64) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Event
	for _, ev := range s.archive {
		if ev.Seq > afterSeq {
			out = append(out, ev)
		}
	}
	return out
}

// LastSeq returns the highest assigned sequence number.
func (s *Session) LastSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextSeq
}
