package selector_test

import (
	"fmt"

	"adaptiveqos/internal/selector"
)

// A message's semantic selector names its receivers descriptively; any
// client whose profile satisfies the expression accepts the message.
func ExampleSelector_Matches() {
	sel := selector.MustCompile(
		`media == "video" and encoding in ["MPEG2", "JPEG"] and size <= 1048576`)

	jpegClient := selector.Attributes{
		"media":    selector.S("video"),
		"encoding": selector.S("JPEG"),
		"size":     selector.N(500_000),
	}
	textClient := selector.Attributes{
		"media": selector.S("text"),
	}

	fmt.Println(sel.Matches(jpegClient))
	fmt.Println(sel.Matches(textClient))
	// Output:
	// true
	// false
}

// Parse returns the expression tree; Format renders the canonical form.
func ExampleParse() {
	expr, err := selector.Parse(`a==1 && (b=="x" || not exists(c))`)
	if err != nil {
		panic(err)
	}
	fmt.Println(selector.Format(expr))
	// Output:
	// a == 1 and (b == "x" or not exists(c))
}
