package selector

import (
	"path"
	"sort"
	"strings"
)

// Op is a comparison operator in the selector language.
type Op uint8

// Comparison operators.
const (
	OpEq Op = iota // ==
	OpNe           // !=
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
)

// String returns the operator's source form.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "??"
	}
}

// negate returns the complementary operator.
func (o Op) negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default: // OpGe
		return OpLt
	}
}

// Expr is a node of the selector abstract syntax tree.  Eval reports
// whether the expression is satisfied by the attribute set; missing
// attributes make comparisons unsatisfied (use Exists to test presence).
type Expr interface {
	// Eval evaluates the expression against an attribute set.
	Eval(attrs Attributes) bool
	// append renders the expression in canonical source form.
	append(sb *strings.Builder)
	// Attrs adds every attribute name referenced by the expression to set.
	Attrs(set map[string]bool)
}

// BoolLit is the constant true or false.
type BoolLit struct{ Val bool }

// Eval implements Expr.
func (b *BoolLit) Eval(Attributes) bool { return b.Val }

func (b *BoolLit) append(sb *strings.Builder) {
	if b.Val {
		sb.WriteString("true")
	} else {
		sb.WriteString("false")
	}
}

// Attrs implements Expr.
func (b *BoolLit) Attrs(map[string]bool) {}

// Cmp compares an attribute against a literal value.
type Cmp struct {
	Attr string
	Op   Op
	Lit  Value
}

// Eval implements Expr.  A missing attribute or a kind mismatch makes
// the comparison false (and its negation, !=, true only when the
// attribute is present with a different value of the same kind —
// mirroring SQL-style semantics would treat it as unknown; we follow
// the simpler "absent never matches" rule and surface presence via
// Exists).
func (c *Cmp) Eval(attrs Attributes) bool {
	v, ok := attrs[c.Attr]
	if !ok {
		return false
	}
	switch c.Op {
	case OpEq:
		return v.Equal(c.Lit)
	case OpNe:
		return v.Kind() == c.Lit.Kind() && !v.Equal(c.Lit)
	default:
		r, err := v.Compare(c.Lit)
		if err != nil {
			return false
		}
		switch c.Op {
		case OpLt:
			return r < 0
		case OpLe:
			return r <= 0
		case OpGt:
			return r > 0
		default: // OpGe
			return r >= 0
		}
	}
}

func (c *Cmp) append(sb *strings.Builder) {
	sb.WriteString(c.Attr)
	sb.WriteByte(' ')
	sb.WriteString(c.Op.String())
	sb.WriteByte(' ')
	sb.WriteString(c.Lit.String())
}

// Attrs implements Expr.
func (c *Cmp) Attrs(set map[string]bool) { set[c.Attr] = true }

// In tests whether an attribute equals any member of a literal list.
type In struct {
	Attr string
	List []Value
}

// Eval implements Expr.
func (in *In) Eval(attrs Attributes) bool {
	v, ok := attrs[in.Attr]
	if !ok {
		return false
	}
	for _, lit := range in.List {
		if v.Equal(lit) {
			return true
		}
	}
	return false
}

func (in *In) append(sb *strings.Builder) {
	sb.WriteString(in.Attr)
	sb.WriteString(" in [")
	for i, lit := range in.List {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(lit.String())
	}
	sb.WriteByte(']')
}

// Attrs implements Expr.
func (in *In) Attrs(set map[string]bool) { set[in.Attr] = true }

// Like matches a string attribute against a glob pattern with the
// syntax of path.Match ('*', '?', character classes).
type Like struct {
	Attr    string
	Pattern string
}

// Eval implements Expr.
func (lk *Like) Eval(attrs Attributes) bool {
	v, ok := attrs[lk.Attr]
	if !ok || v.Kind() != KindString {
		return false
	}
	matched, err := path.Match(lk.Pattern, v.Str())
	return err == nil && matched
}

func (lk *Like) append(sb *strings.Builder) {
	sb.WriteString(lk.Attr)
	sb.WriteString(" like ")
	sb.WriteString(S(lk.Pattern).String())
}

// Attrs implements Expr.
func (lk *Like) Attrs(set map[string]bool) { set[lk.Attr] = true }

// Exists tests whether an attribute is present, regardless of value.
type Exists struct{ Attr string }

// Eval implements Expr.
func (e *Exists) Eval(attrs Attributes) bool {
	_, ok := attrs[e.Attr]
	return ok
}

func (e *Exists) append(sb *strings.Builder) {
	sb.WriteString("exists(")
	sb.WriteString(e.Attr)
	sb.WriteByte(')')
}

// Attrs implements Expr.
func (e *Exists) Attrs(set map[string]bool) { set[e.Attr] = true }

// Not negates its operand.
type Not struct{ X Expr }

// Eval implements Expr.
func (n *Not) Eval(attrs Attributes) bool { return !n.X.Eval(attrs) }

func (n *Not) append(sb *strings.Builder) {
	sb.WriteString("not ")
	if needsParens(n.X) {
		sb.WriteByte('(')
		n.X.append(sb)
		sb.WriteByte(')')
	} else {
		n.X.append(sb)
	}
}

// Attrs implements Expr.
func (n *Not) Attrs(set map[string]bool) { n.X.Attrs(set) }

// And is the conjunction of its operands.
type And struct{ X, Y Expr }

// Eval implements Expr.
func (a *And) Eval(attrs Attributes) bool { return a.X.Eval(attrs) && a.Y.Eval(attrs) }

func (a *And) append(sb *strings.Builder) {
	appendOperand(sb, a.X, true)
	sb.WriteString(" and ")
	appendOperand(sb, a.Y, true)
}

// Attrs implements Expr.
func (a *And) Attrs(set map[string]bool) { a.X.Attrs(set); a.Y.Attrs(set) }

// Or is the disjunction of its operands.
type Or struct{ X, Y Expr }

// Eval implements Expr.
func (o *Or) Eval(attrs Attributes) bool { return o.X.Eval(attrs) || o.Y.Eval(attrs) }

func (o *Or) append(sb *strings.Builder) {
	appendOperand(sb, o.X, false)
	sb.WriteString(" or ")
	appendOperand(sb, o.Y, false)
}

// Attrs implements Expr.
func (o *Or) Attrs(set map[string]bool) { o.X.Attrs(set); o.Y.Attrs(set) }

// needsParens reports whether x must be parenthesized when it appears
// as the operand of a unary not.
func needsParens(x Expr) bool {
	switch x.(type) {
	case *And, *Or:
		return true
	}
	return false
}

// appendOperand renders x as an operand of a binary operator,
// parenthesizing a lower-precedence 'or' under an 'and'.
func appendOperand(sb *strings.Builder, x Expr, underAnd bool) {
	if _, isOr := x.(*Or); isOr && underAnd {
		sb.WriteByte('(')
		x.append(sb)
		sb.WriteByte(')')
		return
	}
	x.append(sb)
}

// Format renders the expression in canonical source form; parsing the
// result yields a structurally identical expression.
func Format(e Expr) string {
	var sb strings.Builder
	e.append(&sb)
	return sb.String()
}

// ReferencedAttrs returns the sorted set of attribute names the
// expression depends on.
func ReferencedAttrs(e Expr) []string {
	set := make(map[string]bool)
	e.Attrs(set)
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
