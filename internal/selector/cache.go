package selector

import (
	"container/list"
	"sync"
	"sync/atomic"

	"adaptiveqos/internal/metrics"
)

// Cache is a concurrency-safe compiled-selector cache: a sharded LRU
// keyed by selector source text.  Every message on the wire carries its
// selector as text and every receiver must evaluate it, so without a
// cache each delivered message pays a full lex+parse.  Sessions reuse a
// small working set of distinct selectors (per application, per topic),
// so caching compiles each distinct selector once per process.
//
// Compile errors are cached too (negative caching): a corrupt selector
// arriving in a flood of messages is rejected by a map lookup rather
// than a fresh failed parse per message.
type Cache struct {
	shards [cacheShards]cacheShard
	// perShard is the LRU capacity of each shard.
	perShard     int
	hits, misses atomic.Uint64
}

const cacheShards = 16

// DefaultCacheCapacity is the total entry budget of NewCache(0) and of
// the process-global cache: generous for any realistic working set of
// distinct selectors, small enough that pathological selector churn
// (an attacker minting unique selectors) stays bounded.
const DefaultCacheCapacity = 4096

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	src string
	sel *Selector // nil when err != nil
	err error
}

// NewCache creates a cache holding up to capacity compiled selectors
// (0 means DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// shardFor hashes src (FNV-1a) to a shard so concurrent compiles of
// different selectors rarely contend on one lock.
func (c *Cache) shardFor(src string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(src); i++ {
		h ^= uint32(src[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Compile returns the compiled selector for src, parsing it only on the
// first sighting (per eviction lifetime).  The returned *Selector is
// shared: it is immutable after compilation and safe for concurrent
// Matches calls.
func (c *Cache) Compile(src string) (*Selector, error) {
	sh := c.shardFor(src)
	sh.mu.Lock()
	if el, ok := sh.entries[src]; ok {
		sh.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		c.hits.Add(1)
		ctrCacheHit.Inc()
		return e.sel, e.err
	}
	sh.mu.Unlock()

	// Parse outside the shard lock: a slow parse of one selector must
	// not stall cache hits for every other selector in the shard.
	// Concurrent first sightings may both parse; the second install is
	// a no-op.
	sel, err := Compile(src)

	sh.mu.Lock()
	if el, ok := sh.entries[src]; ok { // raced with another first sighting
		sh.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		c.hits.Add(1)
		ctrCacheHit.Inc()
		return e.sel, e.err
	}
	el := sh.order.PushFront(&cacheEntry{src: src, sel: sel, err: err})
	sh.entries[src] = el
	for sh.order.Len() > c.perShard {
		old := sh.order.Back()
		sh.order.Remove(old)
		delete(sh.entries, old.Value.(*cacheEntry).src)
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	ctrCacheMiss.Inc()
	return sel, err
}

// CacheStats reports cache activity.
type CacheStats struct {
	Hits, Misses uint64
	Entries      int
}

// Stats returns a snapshot of the hit/miss counters and resident size.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.order.Len()
		sh.mu.Unlock()
	}
	return st
}

// Purge empties the cache (tests and long-lived processes rotating
// selector vocabularies).
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*list.Element)
		sh.order.Init()
		sh.mu.Unlock()
	}
}

var (
	ctrCacheHit  = metrics.C(metrics.CtrSelectorCacheHit)
	ctrCacheMiss = metrics.C(metrics.CtrSelectorCacheMiss)
)

// defaultCache is the process-global compiled-selector cache used by
// the message dispatch path.
var defaultCache = NewCache(0)

// DefaultCache returns the process-global compiled-selector cache.
func DefaultCache() *Cache { return defaultCache }

// CompileCached compiles src through the process-global cache.
func CompileCached(src string) (*Selector, error) {
	return defaultCache.Compile(src)
}
