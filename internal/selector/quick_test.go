package selector

import (
	"math"
	"math/rand"

	"testing"
	"testing/quick"
)

// genExpr builds a random selector expression of bounded depth.
func genExpr(r *rand.Rand, depth int) Expr {
	attrs := []string{"a", "b", "video.enc", "cpu-load", "x_1"}
	attr := func() string { return attrs[r.Intn(len(attrs))] }
	lit := func() Value {
		switch r.Intn(3) {
		case 0:
			return S(randString(r))
		case 1:
			return N(randNumber(r))
		default:
			return B(r.Intn(2) == 0)
		}
	}
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &BoolLit{Val: r.Intn(2) == 0}
		case 1:
			return &Cmp{Attr: attr(), Op: Op(r.Intn(6)), Lit: lit()}
		case 2:
			n := 1 + r.Intn(3)
			list := make([]Value, n)
			for i := range list {
				list[i] = lit()
			}
			return &In{Attr: attr(), List: list}
		default:
			return &Exists{Attr: attr()}
		}
	}
	switch r.Intn(4) {
	case 0:
		return &And{X: genExpr(r, depth-1), Y: genExpr(r, depth-1)}
	case 1:
		return &Or{X: genExpr(r, depth-1), Y: genExpr(r, depth-1)}
	case 2:
		return &Not{X: genExpr(r, depth-1)}
	default:
		return &Like{Attr: attr(), Pattern: "img-*"}
	}
}

func randString(r *rand.Rand) string {
	const alphabet = `abcXYZ 0123"\'\n_-.`
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func randNumber(r *rand.Rand) float64 {
	// Values that round-trip through the canonical 'g' formatting.
	switch r.Intn(4) {
	case 0:
		return float64(r.Intn(2000) - 1000)
	case 1:
		return math.Trunc(r.Float64()*1e6) / 1e3
	case 2:
		return r.NormFloat64()
	default:
		return float64(r.Int63())
	}
}

func genAttributes(r *rand.Rand) Attributes {
	a := make(Attributes)
	names := []string{"a", "b", "video.enc", "cpu-load", "x_1"}
	for _, n := range names {
		if r.Intn(2) == 0 {
			continue
		}
		switch r.Intn(3) {
		case 0:
			a[n] = S(randString(r))
		case 1:
			a[n] = N(randNumber(r))
		default:
			a[n] = B(r.Intn(2) == 0)
		}
	}
	return a
}

// TestQuickFormatParseRoundTrip checks that formatting an arbitrary
// expression and re-parsing it yields a structurally identical tree.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 1+r.Intn(3))
		src := Format(e)
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: Parse(%q) failed: %v", seed, src, err)
			return false
		}
		// Binary operators flatten associativity when printed, so compare
		// canonical forms (a fixed point of Format∘Parse) rather than trees.
		if got := Format(parsed); got != src {
			t.Logf("seed %d: round-trip mismatch:\n src: %s\n got: %s", seed, src, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvalAgreesAfterRoundTrip checks that evaluation is preserved
// by the format/parse round trip against random attribute sets.
func TestQuickEvalAgreesAfterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 1+r.Intn(3))
		parsed, err := Parse(Format(e))
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			a := genAttributes(r)
			if e.Eval(a) != parsed.Eval(a) {
				t.Logf("seed %d: eval divergence for %s on %v", seed, Format(e), a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeMorgan checks a semantic identity: not(x and y) evaluates
// identically to (not x) or (not y) for arbitrary subtrees and profiles.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := genExpr(r, 2)
		y := genExpr(r, 2)
		lhs := &Not{X: &And{X: x, Y: y}}
		rhs := &Or{X: &Not{X: x}, Y: &Not{X: y}}
		for i := 0; i < 8; i++ {
			a := genAttributes(r)
			if lhs.Eval(a) != rhs.Eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOpNegate checks that Cmp with a negated operator evaluates
// as the logical complement whenever the attribute is present with a
// comparable kind (the only regime where negate() is meaningful).
func TestQuickOpNegate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := Op(r.Intn(6))
		lit := N(randNumber(r))
		c := &Cmp{Attr: "v", Op: op, Lit: lit}
		nc := &Cmp{Attr: "v", Op: op.negate(), Lit: lit}
		for i := 0; i < 16; i++ {
			a := Attributes{"v": N(randNumber(r))}
			if c.Eval(a) == nc.Eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
