package selector

import "fmt"

// Parse compiles a selector expression into an evaluable Expr.
//
// Grammar (precedence lowest to highest):
//
//	expr       = orExpr .
//	orExpr     = andExpr { ("or" | "||") andExpr } .
//	andExpr    = notExpr { ("and" | "&&") notExpr } .
//	notExpr    = ("not" | "!") notExpr | primary .
//	primary    = "(" expr ")" | "true" | "false"
//	           | "exists" "(" ident ")"
//	           | ident relOp literal
//	           | ident "in" "[" literal { "," literal } "]"
//	           | ident "like" string .
//	relOp      = "==" | "=" | "!=" | "<>" | "<" | "<=" | ">" | ">=" .
//	literal    = string | number | "true" | "false" .
//
// Identifiers may contain letters, digits, '_', '-' and '.', permitting
// dotted attribute names such as "video.encoding".
func Parse(src string) (Expr, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok.kind)
	}
	return e, nil
}

// MustParse is Parse that panics on error; intended for selectors that
// are compile-time constants of the program.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errorf("expected %s, found %s", k, p.tok.kind)
	}
	return p.advance()
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &And{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.tok.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokTrue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BoolLit{Val: true}, nil
	case tokFalse:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BoolLit{Val: false}, nil
	case tokExists:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected attribute name in exists(), found %s", p.tok.kind)
		}
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Exists{Attr: attr}, nil
	case tokIdent:
		return p.parsePredicate()
	default:
		return nil, p.errorf("expected expression, found %s", p.tok.kind)
	}
}

// parsePredicate parses a comparison, 'in' or 'like' predicate whose
// left operand is the attribute name currently in p.tok.
func (p *parser) parsePredicate() (Expr, error) {
	attr := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		op := map[tokenKind]Op{
			tokEq: OpEq, tokNe: OpNe, tokLt: OpLt,
			tokLe: OpLe, tokGt: OpGt, tokGe: OpGe,
		}[p.tok.kind]
		if err := p.advance(); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Cmp{Attr: attr, Op: op, Lit: lit}, nil
	case tokIn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLBrack); err != nil {
			return nil, err
		}
		var list []Value
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			list = append(list, lit)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokRBrack); err != nil {
			return nil, err
		}
		return &In{Attr: attr, List: list}, nil
	case tokLike:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errorf("'like' requires a string pattern, found %s", p.tok.kind)
		}
		pat := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Like{Attr: attr, Pattern: pat}, nil
	default:
		return nil, p.errorf("expected comparison operator, 'in' or 'like' after attribute %q, found %s", attr, p.tok.kind)
	}
}

func (p *parser) parseLiteral() (Value, error) {
	switch p.tok.kind {
	case tokString:
		v := S(p.tok.text)
		return v, p.advance()
	case tokNumber:
		v := N(p.tok.num)
		return v, p.advance()
	case tokTrue:
		return B(true), p.advance()
	case tokFalse:
		return B(false), p.advance()
	default:
		return Value{}, p.errorf("expected literal, found %s", p.tok.kind)
	}
}
