package selector

import (
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical Format output
	}{
		{`true`, `true`},
		{`false`, `false`},
		{`media == "video"`, `media == "video"`},
		{`media = "video"`, `media == "video"`},
		{`size <= 1048576`, `size <= 1048576`},
		{`size < 10.5`, `size < 10.5`},
		{`size >= -3`, `size >= -3`},
		{`color != true`, `color != true`},
		{`color <> true`, `color != true`},
		{`encoding in ["MPEG2", "JPEG"]`, `encoding in ["MPEG2", "JPEG"]`},
		{`rate in [1, 2, 4]`, `rate in [1, 2, 4]`},
		{`name like "img-*"`, `name like "img-*"`},
		{`exists(modality)`, `exists(modality)`},
		{`not exists(modality)`, `not exists(modality)`},
		{`! exists(modality)`, `not exists(modality)`},
		{`a == 1 and b == 2`, `a == 1 and b == 2`},
		{`a == 1 && b == 2`, `a == 1 and b == 2`},
		{`a == 1 or b == 2`, `a == 1 or b == 2`},
		{`a == 1 || b == 2`, `a == 1 or b == 2`},
		{`a == 1 and b == 2 or c == 3`, `a == 1 and b == 2 or c == 3`},
		{`a == 1 and (b == 2 or c == 3)`, `a == 1 and (b == 2 or c == 3)`},
		{`not (a == 1 and b == 2)`, `not (a == 1 and b == 2)`},
		{`video.encoding == "MPEG2"`, `video.encoding == "MPEG2"`},
		{`cpu-load > 30`, `cpu-load > 30`},
		{`x == 'single quoted'`, `x == "single quoted"`},
		{`x == "esc\"aped\n"`, `x == "esc\"aped\n"`},
		{`x == 1e3`, `x == 1000`},
		{`x == 2.5e-2`, `x == 0.025`},
		{`AND.or.not == 1`, `AND.or.not == 1`}, // dotted name, not keywords
	}
	for _, tc := range cases {
		e, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error: %v", tc.src, err)
			continue
		}
		if got := Format(e); got != tc.want {
			t.Errorf("Format(Parse(%q)) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseCanonicalIsFixedPoint(t *testing.T) {
	srcs := []string{
		`a == 1 and (b == 2 or c == 3) and not exists(d)`,
		`media == "video" and encoding in ["MPEG2", "JPEG"] and size <= 1048576`,
		`not (a == 1 or b like "x*") or c >= 2.75`,
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		canon := Format(e1)
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(canonical %q): %v", canon, err)
		}
		if again := Format(e2); again != canon {
			t.Errorf("canonical form not stable: %q -> %q", canon, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`and`,
		`a ==`,
		`a == "unterminated`,
		`a == 12e`,
		`a in []`,
		`a in [1,]`,
		`a in [1 2]`,
		`a like 42`,
		`exists()`,
		`exists(a`,
		`(a == 1`,
		`a == 1)`,
		`a == 1 b == 2`,
		`a & b`,
		`a | b`,
		`== 1`,
		`a == \x01`,
		`a !< 3`,
		`exists(42)`,
		`a == 1 and`,
		`not`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse(`a == 1 @`)
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %T", err)
	}
	if se.Pos != 7 {
		t.Errorf("error position = %d, want 7", se.Pos)
	}
	if !strings.Contains(err.Error(), "offset 7") {
		t.Errorf("error message %q does not mention offset", err.Error())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse(`a ==`)
}

func TestReferencedAttrs(t *testing.T) {
	e := MustParse(`a == 1 and (b in [2] or not exists(c)) and d like "*" and a > 0`)
	got := ReferencedAttrs(e)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("ReferencedAttrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReferencedAttrs = %v, want %v", got, want)
		}
	}
}

func TestCompileAndSelectorAPI(t *testing.T) {
	s, err := Compile(`media == "image"`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Source() != `media == "image"` {
		t.Errorf("Source = %q", s.Source())
	}
	if !s.Matches(Attributes{"media": S("image")}) {
		t.Error("expected match")
	}
	if s.Matches(Attributes{"media": S("text")}) {
		t.Error("unexpected match")
	}
	if _, err := Compile(`bad ==`); err == nil {
		t.Error("Compile of invalid source should fail")
	}
	if !All().Matches(nil) {
		t.Error("All should match empty profile")
	}
	if None().Matches(Attributes{"x": N(1)}) {
		t.Error("None should never match")
	}
}
