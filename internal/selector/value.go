// Package selector implements the semantic selector language used by the
// publisher/subscriber messaging substrate.
//
// A selector is a propositional expression over message and profile
// attributes, e.g.
//
//	media == "video" and encoding in ["MPEG2", "JPEG"] and size <= 1048576
//
// Messages carry a selector describing the profiles of the clients that
// are to receive them; clients maintain attribute profiles and accept a
// message when its selector is satisfied by their profile.  The selector
// thus descriptively names a dynamic set of clients of arbitrary
// cardinality, subsuming static client or group names.
package selector

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds supported by the selector language.
const (
	KindInvalid Kind = iota
	KindString
	KindNumber
	KindBool
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value: a string, a number
// (float64) or a boolean.  The zero Value is invalid.
type Value struct {
	kind Kind
	str  string
	num  float64
	b    bool
}

// S returns a string Value.
func S(s string) Value { return Value{kind: KindString, str: s} }

// N returns a numeric Value.
func N(f float64) Value { return Value{kind: KindNumber, num: f} }

// B returns a boolean Value.
func B(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether the value holds data of any kind.
func (v Value) Valid() bool { return v.kind != KindInvalid }

// Str returns the string payload; it is "" for non-string values.
func (v Value) Str() string { return v.str }

// Num returns the numeric payload; it is 0 for non-number values.
func (v Value) Num() float64 { return v.num }

// Bool returns the boolean payload; it is false for non-bool values.
func (v Value) Bool() bool { return v.b }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == o.str
	case KindNumber:
		return v.num == o.num || (math.IsNaN(v.num) && math.IsNaN(o.num))
	case KindBool:
		return v.b == o.b
	default:
		return true
	}
}

// Compare orders two values of the same kind: -1, 0 or +1.  Comparing
// values of different kinds (or booleans, which are unordered) returns
// an error.
func (v Value) Compare(o Value) (int, error) {
	if v.kind != o.kind {
		return 0, fmt.Errorf("selector: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str), nil
	case KindNumber:
		switch {
		case v.num < o.num:
			return -1, nil
		case v.num > o.num:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("selector: %s values are unordered", v.kind)
	}
}

// String renders the value as a selector-language literal.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.str)
	case KindNumber:
		// Integral values print without an exponent so that common
		// selectors like "size <= 1048576" keep their source form.
		if v.num == math.Trunc(v.num) && math.Abs(v.num) < 1e15 {
			return strconv.FormatFloat(v.num, 'f', -1, 64)
		}
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Attributes is a set of named attribute values.  It is the common
// currency between message selectors and client profiles.
type Attributes map[string]Value

// Clone returns an independent copy of the attribute set.
func (a Attributes) Clone() Attributes {
	if a == nil {
		return nil
	}
	c := make(Attributes, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Get returns the value for name and whether it is present.
func (a Attributes) Get(name string) (Value, bool) {
	v, ok := a[name]
	return v, ok
}

// SetString stores a string attribute.
func (a Attributes) SetString(name, v string) { a[name] = S(v) }

// SetNumber stores a numeric attribute.
func (a Attributes) SetNumber(name string, v float64) { a[name] = N(v) }

// SetBool stores a boolean attribute.
func (a Attributes) SetBool(name string, v bool) { a[name] = B(v) }

// Names returns the attribute names in sorted order.
func (a Attributes) Names() []string {
	names := make([]string, 0, len(a))
	for k := range a {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the attribute set deterministically, for logs and tests.
func (a Attributes) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, name := range a.Names() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", name, a[name])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Merge returns a new attribute set containing a overlaid with b;
// values in b win on conflict.
func (a Attributes) Merge(b Attributes) Attributes {
	m := a.Clone()
	if m == nil {
		m = make(Attributes, len(b))
	}
	for k, v := range b {
		m[k] = v
	}
	return m
}
