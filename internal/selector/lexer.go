package selector

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexical tokens of the selector language.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokAnd    // and, &&
	tokOr     // or, ||
	tokNot    // not, !
	tokTrue   // true
	tokFalse  // false
	tokIn     // in
	tokLike   // like
	tokExists // exists
	tokEq     // ==, =
	tokNe     // !=, <>
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokComma  // ,
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokNot:
		return "'not'"
	case tokTrue:
		return "'true'"
	case tokFalse:
		return "'false'"
	case tokIn:
		return "'in'"
	case tokLike:
		return "'like'"
	case tokExists:
		return "'exists'"
	case tokEq:
		return "'=='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokComma:
		return "','"
	default:
		return "unknown token"
	}
}

// token is a single lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string  // identifier or decoded string literal
	num  float64 // numeric payload for tokNumber
	pos  int
}

var keywords = map[string]tokenKind{
	"and":    tokAnd,
	"or":     tokOr,
	"not":    tokNot,
	"true":   tokTrue,
	"false":  tokFalse,
	"in":     tokIn,
	"like":   tokLike,
	"exists": tokExists,
}

// lexer scans a selector expression into tokens.
type lexer struct {
	src string
	pos int
}

// SyntaxError describes a lexical or grammatical error in a selector
// expression, with the byte offset at which it occurred.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("selector: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		l.pos += sz
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next scans and returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBrack, pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBrack, pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case '=':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
		}
		return token{kind: tokEq, pos: start}, nil
	case '!':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokNe, pos: start}, nil
		}
		return token{kind: tokNot, pos: start}, nil
	case '<':
		l.pos++
		switch l.peekByte() {
		case '=':
			l.pos++
			return token{kind: tokLe, pos: start}, nil
		case '>':
			l.pos++
			return token{kind: tokNe, pos: start}, nil
		}
		return token{kind: tokLt, pos: start}, nil
	case '>':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokGe, pos: start}, nil
		}
		return token{kind: tokGt, pos: start}, nil
	case '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected '&'")
	case '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected '|'")
	case '"', '\'':
		return l.scanString()
	}

	if c == '+' || c == '-' || (c >= '0' && c <= '9') {
		return l.scanNumber()
	}

	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if isIdentStart(r) {
		return l.scanIdent()
	}
	return token{}, l.errorf(start, "unexpected character %q", r)
}

func (l *lexer) scanString() (token, error) {
	start := l.pos
	quote := l.src[l.pos]
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(esc)
			default:
				return token{}, l.errorf(l.pos, "unknown escape '\\%c'", esc)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	if c := l.src[l.pos]; c == '+' || c == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
			digits++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		expDigits := 0
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
			expDigits++
		}
		if expDigits == 0 {
			l.pos = mark // "12e" is number 12 followed by ident "e"... reject instead
			return token{}, l.errorf(mark, "malformed exponent in number")
		}
	}
	if digits == 0 {
		return token{}, l.errorf(start, "malformed number")
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errorf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, num: f, pos: start}, nil
}

func (l *lexer) scanIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += sz
	}
	text := l.src[start:l.pos]
	if kw, ok := keywords[strings.ToLower(text)]; ok {
		return token{kind: kw, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}
