package selector

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheCompileHitMiss(t *testing.T) {
	c := NewCache(64)
	src := `media == "image" and size <= 1024`

	s1, err := c.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second compile of the same source should return the cached selector")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}
	if !s1.Matches(Attributes{"media": S("image"), "size": N(512)}) {
		t.Error("cached selector does not match")
	}
}

// Compile errors are cached (negative caching): a corrupt selector in a
// message flood costs one parse, then map lookups.
func TestCacheNegativeCaching(t *testing.T) {
	c := NewCache(64)
	if _, err := c.Compile(`media ==`); err == nil {
		t.Fatal("expected compile error")
	}
	if _, err := c.Compile(`media ==`); err == nil {
		t.Fatal("expected cached compile error")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want the error path to hit the cache", st)
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity 16 → one entry per shard; each shard evicts its LRU when
	// a second distinct selector hashes to it.
	c := NewCache(16)
	for i := 0; i < 500; i++ {
		src := fmt.Sprintf(`size == %d`, i)
		if _, err := c.Compile(src); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries > 16 {
		t.Errorf("entries = %d, want ≤ capacity 16", st.Entries)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(64)
	if _, err := c.Compile(`true`); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries after purge = %d", st.Entries)
	}
	if _, err := c.Compile(`true`); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want re-parse after purge", st.Misses)
	}
}

// Many goroutines compiling a mix of shared and distinct selectors must
// be race-free and always receive a working selector (run under -race).
func TestCacheConcurrentCompile(t *testing.T) {
	c := NewCache(128)
	attrs := Attributes{"media": S("image"), "size": N(100)}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				shared, err := c.Compile(`media == "image"`)
				if err != nil {
					t.Error(err)
					return
				}
				if !shared.Matches(attrs) {
					t.Error("shared selector mismatch")
					return
				}
				own, err := c.Compile(fmt.Sprintf(`size == %d`, i%32))
				if err != nil {
					t.Error(err)
					return
				}
				if own.Matches(attrs) != (i%32 == 100%32) {
					_ = own
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stats = %+v, want both hits and misses", st)
	}
}

func TestCompileCachedDefault(t *testing.T) {
	s, err := CompileCached(`exists(cap.display)`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Matches(Attributes{"cap.display": B(true)}) {
		t.Error("default-cache selector mismatch")
	}
	if DefaultCache().Stats().Misses == 0 {
		t.Error("default cache saw no compiles")
	}
}
