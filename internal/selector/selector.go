package selector

// Selector is a compiled semantic selector: the source text paired with
// its parsed expression.  A Selector travels in message headers (as
// text) and is evaluated against client profiles at the receivers.
type Selector struct {
	src  string
	expr Expr
}

// Compile parses src into a reusable Selector.
func Compile(src string) (*Selector, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Selector{src: src, expr: e}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *Selector {
	s, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return s
}

// FromExpr wraps an already-built expression tree as a Selector; the
// source form is the canonical rendering of the expression.
func FromExpr(e Expr) *Selector {
	return &Selector{src: Format(e), expr: e}
}

// Source returns the selector's source text.
func (s *Selector) Source() string { return s.src }

// Expr returns the parsed expression tree.
func (s *Selector) Expr() Expr { return s.expr }

// Matches reports whether the selector is satisfied by the attribute set.
func (s *Selector) Matches(attrs Attributes) bool {
	return s.expr.Eval(attrs)
}

// String returns the source text.
func (s *Selector) String() string { return s.src }

// All is the selector satisfied by every profile.
func All() *Selector { return &Selector{src: "true", expr: &BoolLit{Val: true}} }

// None is the selector satisfied by no profile.
func None() *Selector { return &Selector{src: "false", expr: &BoolLit{Val: false}} }
