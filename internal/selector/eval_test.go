package selector

import (
	"math"
	"testing"
)

func attrs(pairs ...any) Attributes {
	a := make(Attributes)
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		switch v := pairs[i+1].(type) {
		case string:
			a[name] = S(v)
		case float64:
			a[name] = N(v)
		case int:
			a[name] = N(float64(v))
		case bool:
			a[name] = B(v)
		default:
			panic("bad attr")
		}
	}
	return a
}

func TestEval(t *testing.T) {
	cases := []struct {
		src   string
		attrs Attributes
		want  bool
	}{
		{`true`, nil, true},
		{`false`, nil, false},
		{`media == "video"`, attrs("media", "video"), true},
		{`media == "video"`, attrs("media", "audio"), false},
		{`media == "video"`, attrs(), false}, // absent never matches
		{`media != "video"`, attrs("media", "audio"), true},
		{`media != "video"`, attrs(), false}, // absent never matches, even !=
		{`media != "video"`, attrs("media", 3), false},
		{`size <= 1048576`, attrs("size", 1048576), true},
		{`size <= 1048576`, attrs("size", 1048577), false},
		{`size < 5`, attrs("size", 4.999), true},
		{`size > 5`, attrs("size", 5), false},
		{`size >= 5`, attrs("size", 5), true},
		{`size > "abc"`, attrs("size", 5), false}, // kind mismatch
		{`name > "alpha"`, attrs("name", "beta"), true},
		{`flag == true`, attrs("flag", true), true},
		{`flag < true`, attrs("flag", false), false}, // bools unordered
		{`enc in ["MPEG2", "JPEG"]`, attrs("enc", "JPEG"), true},
		{`enc in ["MPEG2", "JPEG"]`, attrs("enc", "H261"), false},
		{`rate in [1, 2, 4]`, attrs("rate", 4), true},
		{`rate in [1, 2, 4]`, attrs("rate", 3), false},
		{`name like "img-*"`, attrs("name", "img-042"), true},
		{`name like "img-*"`, attrs("name", "doc-042"), false},
		{`name like "img-?"`, attrs("name", "img-4"), true},
		{`name like "img-?"`, attrs("name", "img-42"), false},
		{`name like "*"`, attrs("name", 42), false}, // like on non-string
		{`exists(x)`, attrs("x", 0), true},
		{`exists(x)`, attrs("y", 0), false},
		{`not exists(x)`, attrs("y", 0), true},
		{`a == 1 and b == 2`, attrs("a", 1, "b", 2), true},
		{`a == 1 and b == 2`, attrs("a", 1, "b", 3), false},
		{`a == 1 or b == 2`, attrs("a", 0, "b", 2), true},
		{`a == 1 or b == 2`, attrs("a", 0, "b", 0), false},
		{`a == 1 and b == 2 or c == 3`, attrs("c", 3), true},
		{`a == 1 and (b == 2 or c == 3)`, attrs("a", 1, "c", 3), true},
		{`a == 1 and (b == 2 or c == 3)`, attrs("c", 3), false},
		{`not (a == 1 and b == 2)`, attrs("a", 1, "b", 2), false},
		{`not (a == 1 and b == 2)`, attrs("a", 1), true},
	}
	for _, tc := range cases {
		e := MustParse(tc.src)
		if got := e.Eval(tc.attrs); got != tc.want {
			t.Errorf("Eval(%q, %v) = %v, want %v", tc.src, tc.attrs, got, tc.want)
		}
	}
}

// TestFigure3SemanticInterpretation reproduces the paper's Figure 3
// worked example: an incoming stream described as color video with
// MPEG2 compression and 1 MB of data, evaluated against three client
// profiles.  Profile 1 matches directly; Profile 2 (B/W, no encoding)
// rejects; Profile 3 (color JPEG) does not match directly but the
// client advertises an MPEG2→JPEG transformation capability, so the
// message is accepted with a transformation (the capability check
// itself lives in the media/profile layers; here we verify the
// selector-level accept/reject decisions that drive it).
func TestFigure3SemanticInterpretation(t *testing.T) {
	sel := MustCompile(
		`media == "video" and color == true and encoding == "MPEG2" and size <= 1048576`)

	profile1 := attrs("media", "video", "color", true, "encoding", "MPEG2", "size", 1048576)
	profile2 := attrs("media", "video", "color", false, "size", 1048576) // B/W, no encoding
	profile3 := attrs("media", "video", "color", true, "encoding", "JPEG", "size", 1048576)

	if !sel.Matches(profile1) {
		t.Error("profile 1 should accept the MPEG2 color video message")
	}
	if sel.Matches(profile2) {
		t.Error("profile 2 (B/W, no encoding) should reject the message")
	}
	if sel.Matches(profile3) {
		t.Error("profile 3 should not match directly (it needs a transformation)")
	}

	// Profile 3's transformation capability is expressed by relaxing the
	// encoding term to the set the client can reach via transformers.
	relaxed := MustCompile(
		`media == "video" and color == true and encoding in ["MPEG2", "JPEG"] and size <= 1048576`)
	if !relaxed.Matches(profile3) {
		t.Error("profile 3 should accept once MPEG2->JPEG transformation is considered")
	}
}

func TestValueSemantics(t *testing.T) {
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) || S("a").Equal(N(1)) {
		t.Error("string equality broken")
	}
	if !N(2).Equal(N(2)) || N(2).Equal(N(3)) {
		t.Error("number equality broken")
	}
	nan := N(math.NaN())
	if !nan.Equal(nan) {
		t.Error("NaN should equal itself under attribute semantics")
	}
	if !B(true).Equal(B(true)) || B(true).Equal(B(false)) {
		t.Error("bool equality broken")
	}
	if v := (Value{}); v.Valid() {
		t.Error("zero Value should be invalid")
	}
	if _, err := S("a").Compare(N(1)); err == nil {
		t.Error("cross-kind compare should error")
	}
	if _, err := B(true).Compare(B(false)); err == nil {
		t.Error("bool compare should error")
	}
	if c, err := S("a").Compare(S("b")); err != nil || c != -1 {
		t.Errorf("string compare = %d, %v", c, err)
	}
	if got := N(1000).String(); got != "1000" {
		t.Errorf("N(1000).String() = %q", got)
	}
	if got := S("x\"y").String(); got != `"x\"y"` {
		t.Errorf("S quoting = %q", got)
	}
	if got := (Value{}).String(); got != "<invalid>" {
		t.Errorf("invalid Value String = %q", got)
	}
	for _, k := range []Kind{KindInvalid, KindString, KindNumber, KindBool} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
}

func TestAttributesHelpers(t *testing.T) {
	a := make(Attributes)
	a.SetString("s", "v")
	a.SetNumber("n", 3.5)
	a.SetBool("b", true)

	if v, ok := a.Get("s"); !ok || v.Str() != "v" {
		t.Error("Get(s) failed")
	}
	if _, ok := a.Get("missing"); ok {
		t.Error("Get(missing) should not be ok")
	}
	names := a.Names()
	if len(names) != 3 || names[0] != "b" || names[1] != "n" || names[2] != "s" {
		t.Errorf("Names = %v", names)
	}
	if got := a.String(); got != `{b=true, n=3.5, s="v"}` {
		t.Errorf("String = %q", got)
	}

	c := a.Clone()
	c.SetNumber("n", 99)
	if a["n"].Num() != 3.5 {
		t.Error("Clone is not independent")
	}
	if Attributes(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}

	m := a.Merge(Attributes{"n": N(7), "extra": S("e")})
	if m["n"].Num() != 7 || m["extra"].Str() != "e" || m["s"].Str() != "v" {
		t.Errorf("Merge = %v", m)
	}
	if a["n"].Num() != 3.5 {
		t.Error("Merge mutated receiver")
	}
	var nilA Attributes
	m2 := nilA.Merge(Attributes{"x": N(1)})
	if m2["x"].Num() != 1 {
		t.Error("Merge on nil receiver failed")
	}
}
