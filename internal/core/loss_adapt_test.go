package core

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/inference"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestLossFeedsAdaptation: observed RTP data loss constrains the next
// adaptation decision even when host metrics look healthy.
func TestLossFeedsAdaptation(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 31})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	// Heavy loss toward bob.
	net.SetLink("alice", "bob", transport.Link{Loss: 0.5})

	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	defer a.Close()
	defer b.Close()

	obj, err := media.EncodeImage(wavelet.Circles(64, 64), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Several shares so the reorder window declares losses.
	for i := 0; i < 6; i++ {
		if err := a.ShareImage(fmt.Sprintf("o-%d", i), obj, ""); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	loss, ok := b.observedLoss()
	if !ok {
		t.Fatal("no data packets observed at all")
	}
	if loss <= 0 {
		t.Skip("no losses registered this run (reorder window still holding gaps)")
	}

	d, err := b.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EffectiveBudget(16); got >= 16 {
		t.Errorf("budget %d not constrained despite %.0f%% observed loss", got, loss*100)
	}
	found := false
	for _, r := range d.Fired {
		if r == "loss-budget" {
			found = true
		}
	}
	if !found {
		t.Errorf("loss-budget rule did not fire: %v", d.Fired)
	}
	_ = inference.StateLoss
}

// TestNoLossNoConstraint: a clean link leaves the budget unconstrained
// by the loss rule.
func TestNoLossNoConstraint(t *testing.T) {
	a, b, _ := newPair(t)
	obj, err := media.EncodeImage(wavelet.Circles(32, 32), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("clean", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "clean delivery", func() bool {
		st, err := b.Viewer().Stats("clean")
		return err == nil && st.PacketsReceived == 16
	})
	d, err := b.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EffectiveBudget(16); got != 16 {
		t.Errorf("budget on clean link = %d, want 16", got)
	}
}
