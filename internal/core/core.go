// Package core implements the adaptive QoS collaboration framework:
// the client that joins a multicast session, publishes semantically
// addressed events, filters inbound traffic against its own profile,
// drives the collaboration applications (chat, whiteboard, image
// viewer), and runs the adaptation loop that couples the SNMP network
// state interface to the inference engine.
//
// A wired client is a peer on the multicast substrate.  Wireless
// clients join through a base station (package basestation), which is
// itself a peer built on the same primitives.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/dispatch"
	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/inference"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/repair"
	"adaptiveqos/internal/rtp"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/slo"
	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/transport"
)

// Framework errors.
var (
	ErrClosed = errors.New("core: client closed")
)

// Config parameterizes a client.
type Config struct {
	// TotalPackets is the packet count for shared images (default 16,
	// the paper's value).
	TotalPackets int
	// Contract is the client's QoS contract (nil = empty contract).
	Contract *profile.Contract
	// Registry supplies modality transformers (nil = DefaultRegistry).
	Registry *media.Registry
	// Monitor, when set, is polled by AdaptOnce for system state; when
	// nil the profile's existing state attributes are used directly.
	Monitor *hostagent.Monitor
	// MonitorParams are the parameters sampled from Monitor (default
	// cpu-load and page-faults).
	MonitorParams []string
	// MaxPackets is the budget ceiling used by the default policy
	// (default TotalPackets).
	MaxPackets int
	// SketchBps and TextBps are the default policy's bandwidth tiers
	// (defaults 64 kbit/s and 16 kbit/s).
	SketchBps, TextBps float64
	// Policy overrides the full default-policy parameter set (nil =
	// derived from MaxPackets/SketchBps/TextBps).  The replay harness
	// injects swept candidates here instead of editing constants.
	Policy *inference.Params
	// MTU bounds each wire datagram; larger message frames are
	// fragmented transparently (default 8 KiB).
	MTU int
	// DisableSenderAdaptation turns off RTCP-feedback-driven send-side
	// packet reduction (on by default; see SendReceptionReports).
	DisableSenderAdaptation bool
	// Repair enables automatic gap repair (nil = off): event and data
	// frames pass through per-sender order buffers, and a repair loop
	// NACKs the named coordinator for persistent gaps (DESIGN.md §10).
	Repair *RepairOptions
	// Clock schedules and timestamps everything the client does (nil =
	// wall clock).  A simulation injects a clock.Virtual here and the
	// whole client — message timestamps, RTP arrival stamps, reorder
	// holds, RTCP report TTLs, repair backoff, adaptation ticks — runs
	// on virtual time.
	Clock clock.Clock
}

// RepairOptions configures the client's automatic gap-repair loop.
type RepairOptions struct {
	// Coordinator is the archiving coordinator NACKed for replays.
	Coordinator string
	// StallTimeout, MaxRetries, BaseBackoff, MaxBackoff, Interval and
	// Seed parameterize the retry schedule; zero values take the
	// repair package defaults.
	StallTimeout time.Duration
	MaxRetries   int
	BaseBackoff  time.Duration
	MaxBackoff   time.Duration
	Interval     time.Duration
	Seed         int64
	// MaxPending bounds each sender's order buffer (default 512);
	// overflow evicts the farthest-ahead frame so a corrupt sequence
	// number cannot pin memory.
	MaxPending int
}

func (c Config) withDefaults() Config {
	if c.TotalPackets <= 0 {
		c.TotalPackets = 16
	}
	if c.Registry == nil {
		c.Registry = media.DefaultRegistry()
	}
	if len(c.MonitorParams) == 0 {
		c.MonitorParams = []string{hostagent.ParamCPULoad, hostagent.ParamPageFaults}
	}
	if c.MaxPackets <= 0 {
		c.MaxPackets = c.TotalPackets
	}
	if c.SketchBps == 0 {
		c.SketchBps = 64_000
	}
	if c.TextBps == 0 {
		c.TextBps = 16_000
	}
	return c
}

// Stats counts client-level events.
type Stats struct {
	EventsReceived uint64 // semantic messages accepted
	EventsFiltered uint64 // messages rejected by the profile
	DataPackets    uint64 // image data packets ingested
	DecodeErrors   uint64 // undecodable frames or payloads
}

// Client is one collaborating endpoint.
type Client struct {
	cfg    Config
	conn   transport.Conn
	pm     *profile.Manager
	engine *inference.Engine

	chat    *apps.ChatArea
	wb      *apps.Whiteboard
	viewer  *apps.ImageViewer
	inbox   *apps.MediaInbox
	locks   *lockTable
	reports *reportState

	env    message.Enveloper
	unwrap *message.Unwrapper

	// txMulti/txUni are the shared transmit adapters (the same seam the
	// base station's relay pipelines transmit through).
	txMulti dispatch.Deliverer
	txUni   dispatch.Deliverer

	clk     clock.Clock // injected time source (clock.Wall by default)
	clock   session.LamportClock
	rtpSend *rtp.Sender
	rtpMu   sync.Mutex
	rtpRecv map[string]*rtp.Receiver // per-sender reorder/loss state

	// seq numbers event/data frames (gapless per sender: archive
	// coordinators reorder on it); ctrlSeq numbers control frames
	// separately so they never leave gaps in the event stream.
	seq     atomic.Uint32
	ctrlSeq atomic.Uint32

	mu           sync.RWMutex
	lastDecision inference.Decision

	// pendingData parks image packets that arrive before their
	// announce event (the substrate does not guarantee ordering across
	// messages); flushed when the announce lands.
	pendingMu   sync.Mutex
	pendingData map[string][]pendingPacket

	// Gap repair (cfg.Repair != nil): per-sender order buffers restore
	// each sender's gapless event/data sequence before application;
	// the repair engine NACKs the coordinator for persistent gaps.
	// orderMu serializes buffer pushes AND the application of released
	// messages, so the abandon path (engine goroutine) cannot
	// interleave with the receive loop.
	orderMu sync.Mutex
	order   map[string]*senderOrder // nil = repair disabled
	rep     *repair.Engine

	stats struct {
		received, filtered, data, errors atomic.Uint64
	}

	closeOnce sync.Once
	done      chan struct{}
	loopDone  chan struct{}
}

// NewClient attaches a client to the substrate and starts its receive
// loop.  Callers configure interests/capabilities through Profile().
func NewClient(conn transport.Conn, cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:         cfg,
		clk:         clock.Or(cfg.Clock),
		conn:        conn,
		pm:          profile.NewManager(conn.ID()),
		engine:      inference.New(cfg.Contract),
		chat:        apps.NewChatArea(),
		wb:          apps.NewWhiteboard(),
		viewer:      apps.NewImageViewer(),
		inbox:       apps.NewMediaInbox(),
		locks:       newLockTable(),
		reports:     newReportState(clock.Or(cfg.Clock)),
		rtpSend:     rtp.NewSender(fnv32(conn.ID()), 96, 0),
		rtpRecv:     make(map[string]*rtp.Receiver),
		pendingData: make(map[string][]pendingPacket),
		env:         message.Enveloper{MTU: cfg.MTU, Node: conn.ID()},
		unwrap:      message.NewUnwrapper(),
		done:        make(chan struct{}),
		loopDone:    make(chan struct{}),
	}
	c.unwrap.Node = conn.ID()
	c.engine.SetOwner(conn.ID())
	c.engine.SetClock(cfg.Clock)
	pol := inference.Params{
		MaxPackets: cfg.MaxPackets, SketchBps: cfg.SketchBps, TextBps: cfg.TextBps,
	}
	if cfg.Policy != nil {
		pol = *cfg.Policy
	}
	if err := inference.InstallPolicy(c.engine, pol); err != nil {
		// The default policy is static; failure means a programming error.
		panic(fmt.Sprintf("core: default policy: %v", err))
	}
	c.lastDecision = inference.Decision{PacketBudget: inference.Unlimited}
	c.txMulti = &dispatch.Multicaster{Env: &c.env, Conn: conn}
	c.txUni = &dispatch.Unicaster{Env: &c.env, Conn: conn}
	if cfg.Repair != nil {
		c.order = make(map[string]*senderOrder)
		c.rep = repair.New(repair.Config{
			StallTimeout: cfg.Repair.StallTimeout,
			MaxRetries:   cfg.Repair.MaxRetries,
			BaseBackoff:  cfg.Repair.BaseBackoff,
			MaxBackoff:   cfg.Repair.MaxBackoff,
			Interval:     cfg.Repair.Interval,
			Seed:         cfg.Repair.Seed,
			Owner:        c.ID(),
			Clock:        cfg.Clock,
		}, c.repairRequest, c.repairAbandon)
		c.rep.Start()
	}
	go c.recvLoop()
	return c
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ID returns the client's substrate identifier.
func (c *Client) ID() string { return c.conn.ID() }

// Profile returns the client's profile manager.
func (c *Client) Profile() *profile.Manager { return c.pm }

// Engine returns the client's inference engine for custom policies.
func (c *Client) Engine() *inference.Engine { return c.engine }

// Chat returns the chat application state.
func (c *Client) Chat() *apps.ChatArea { return c.chat }

// Whiteboard returns the whiteboard application state.
func (c *Client) Whiteboard() *apps.Whiteboard { return c.wb }

// Viewer returns the image viewer application state.
func (c *Client) Viewer() *apps.ImageViewer { return c.viewer }

// Inbox returns the direct media-delivery inbox (tiered content from a
// base station arrives here).
func (c *Client) Inbox() *apps.MediaInbox { return c.inbox }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		EventsReceived: c.stats.received.Load(),
		EventsFiltered: c.stats.filtered.Load(),
		DataPackets:    c.stats.data.Load(),
		DecodeErrors:   c.stats.errors.Load(),
	}
}

// LastDecision returns the most recent adaptation decision.
func (c *Client) LastDecision() inference.Decision {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lastDecision
}

// Close detaches the client and stops its loops.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		if c.rep != nil {
			c.rep.Stop()
		}
		err = c.conn.Close()
		<-c.loopDone
	})
	return err
}

// --- Sending ---

func (c *Client) newMessage(kind message.Kind, sel string, attrs selector.Attributes, body []byte) *message.Message {
	return &message.Message{
		Kind:      kind,
		Sender:    c.ID(),
		Seq:       c.seq.Add(1),
		Timestamp: c.clk.Now(),
		Selector:  sel,
		Attrs:     attrs,
		Body:      body,
	}
}

func (c *Client) multicast(m *message.Message) error {
	// Session records carry the publish workload (sender, sequence,
	// payload size, virtual-ns instant) so counterfactual replay can
	// reconstruct and re-drive it (DESIGN.md §15).  Event and data
	// frames consume the gapless per-sender sequence; control traffic
	// is not workload.
	if obs.Recording() && (m.Kind == message.KindEvent || m.Kind == message.KindData) {
		obs.RecordPublish(m.Timestamp.UnixNano(), m.Sender, uint64(m.Seq),
			m.Kind.String(), m.Attrs[message.AttrMedia].Str(),
			int(m.Attrs[message.AttrLevel].Num()), len(m.Body))
	}
	return c.txMulti.Deliver("", m)
}

// unicastMessage sends one message to a specific peer, enveloped.
func (c *Client) unicastMessage(to string, m *message.Message) error {
	return c.txUni.Deliver(to, m)
}

// Say publishes a chat line addressed to profiles matching sel ("" =
// everyone).
func (c *Client) Say(text, sel string) error {
	attrs := selector.Attributes{
		message.AttrApp:   selector.S(apps.AppChat),
		message.AttrMedia: selector.S(string(media.KindText)),
		message.AttrSize:  selector.N(float64(len(text))),
		"lamport":         selector.N(float64(c.clock.Tick())),
	}
	// The local state repository reflects the local action immediately.
	if err := c.chat.Apply(c.ID(), apps.EncodeSay(text)); err != nil {
		return err
	}
	m := c.newMessage(message.KindEvent, sel, attrs, apps.EncodeSay(text))
	obs.AppendHop(obs.MsgID(m.Sender, m.Seq), c.ID(), obs.StagePublish)
	sp := obs.StartStage(obs.MsgID(m.Sender, m.Seq), obs.StagePublish)
	err := c.multicast(m)
	sp.End()
	return err
}

// Draw publishes a whiteboard stroke.
func (c *Client) Draw(s apps.Stroke, sel string) error {
	payload := apps.EncodeStroke(s)
	attrs := selector.Attributes{
		message.AttrApp:   selector.S(apps.AppWhiteboard),
		message.AttrMedia: selector.S("stroke"),
		"lamport":         selector.N(float64(c.clock.Tick())),
	}
	if err := c.wb.Apply(payload); err != nil {
		return err
	}
	m := c.newMessage(message.KindEvent, sel, attrs, payload)
	obs.AppendHop(obs.MsgID(m.Sender, m.Seq), c.ID(), obs.StagePublish)
	sp := obs.StartStage(obs.MsgID(m.Sender, m.Seq), obs.StagePublish)
	err := c.multicast(m)
	sp.End()
	return err
}

// ShareImage publishes a progressive image: an announce event followed
// by TotalPackets data packets, each a prefix-extending slice of the
// embedded stream.  Receivers accept packets up to their own inferred
// budget.
func (c *Client) ShareImage(object string, obj *media.Object, sel string) error {
	meta, packets, err := apps.ShareImage(object, obj, c.cfg.TotalPackets)
	if err != nil {
		return err
	}
	// Local state first.
	c.viewer.Announce(meta)
	for i, p := range packets {
		if err := c.viewer.AddPacket(object, i, p); err != nil {
			return err
		}
	}

	announceAttrs := obj.Attrs().Merge(selector.Attributes{
		message.AttrApp:    selector.S(apps.AppImageViewer),
		message.AttrObject: selector.S(object),
		"lamport":          selector.N(float64(c.clock.Tick())),
	})
	announce := c.newMessage(message.KindEvent, sel, announceAttrs, apps.EncodeImageMeta(meta))
	shareID := obs.MsgID(announce.Sender, announce.Seq)
	obs.AppendHop(shareID, c.ID(), obs.StagePublish)
	psp := obs.StartStage(shareID, obs.StagePublish)
	if err := c.multicast(announce); err != nil {
		if psp.Active() {
			psp.EndErr("announce: " + err.Error())
		}
		return err
	}
	psp.End()

	// Send-side adaptation: when receivers have reported loss, there is
	// no point transmitting tail packets nobody can use — the sender
	// truncates the progressive stream itself.
	if budget := c.sendBudget(len(packets)); budget < len(packets) {
		if obs.Enabled() {
			obs.Note(shareID, obs.StageRTP,
				fmt.Sprintf("send-side truncation to %d/%d packets", budget, len(packets)))
		}
		packets = packets[:budget]
	}
	obs.AppendHop(shareID, c.ID(), obs.StageRTP)
	rsp := obs.StartStage(shareID, obs.StageRTP)
	for i, p := range packets {
		pkt := c.rtpSend.Next(uint32(c.clk.Now().UnixMilli()), i == len(packets)-1, p)
		attrs := selector.Attributes{
			message.AttrApp:    selector.S(apps.AppImageViewer),
			message.AttrObject: selector.S(object),
			message.AttrMedia:  selector.S(string(media.KindImage)),
			message.AttrLevel:  selector.N(float64(i)),
		}
		if err := c.multicast(c.newMessage(message.KindData, sel, attrs, pkt.Marshal())); err != nil {
			if rsp.Active() {
				rsp.EndErr("rtp send: " + err.Error())
			}
			return err
		}
	}
	rsp.End()
	return nil
}

// AnnounceProfile publishes the client's current interests and
// preferences as a profile message — unicast to one peer (typically
// the base station managing QoS on this client's behalf) or, with
// to == "", multicast to the session.  A thin client running low on
// power announces {"modality": "text"} this way and the base station
// degrades its downlink accordingly.
func (c *Client) AnnounceProfile(to string) error {
	snap := c.pm.Snapshot()
	attrs := make(selector.Attributes, len(snap.Interests)+len(snap.Preferences))
	for k, v := range snap.Interests {
		attrs[profile.SectionInterest+"."+k] = v
	}
	for k, v := range snap.Preferences {
		attrs[profile.SectionPreference+"."+k] = v
	}
	m := &message.Message{
		Kind:      message.KindProfile,
		Sender:    c.ID(),
		Seq:       c.ctrlSeq.Add(1),
		Timestamp: c.clk.Now(),
		Attrs:     attrs,
	}
	if to == "" {
		return c.multicast(m)
	}
	return c.unicastMessage(to, m)
}

// --- Receiving ---

func (c *Client) recvLoop() {
	defer close(c.loopDone)
	for pkt := range c.conn.Recv() {
		c.handleFrame(pkt)
	}
}

func (c *Client) handleFrame(pkt transport.Packet) {
	frame, err := c.unwrap.Unwrap(pkt.From, pkt.Data)
	if err != nil {
		c.stats.errors.Add(1)
		return
	}
	if frame == nil {
		return // fragment of a larger message, not yet complete
	}
	m, err := message.Decode(frame)
	if err != nil {
		c.stats.errors.Add(1)
		if obs.Enabled() {
			obs.Drop(0, obs.StageMatch, c.ID()+": undecodable frame from "+pkt.From)
		}
		return
	}
	if m.Sender == c.ID() {
		return // self-delivery via relays
	}
	if c.order != nil && (m.Kind == message.KindEvent || m.Kind == message.KindData) {
		// Repair mode: event/data frames are gapless per sender, so
		// they pass through the sender's order buffer first; profile
		// filtering happens on release (a filtered frame still
		// consumes its sequence number — it is not a gap).
		c.ingestOrdered(m)
		return
	}
	c.process(m)
}

// process interprets one decoded, ordered (or orderless-mode) message:
// semantic profile match, Lamport witness, then application dispatch.
func (c *Client) process(m *message.Message) {
	msgID := obs.MsgID(m.Sender, m.Seq)
	// Semantic interpretation: the message selector is evaluated
	// against this client's profile; non-matching traffic is dropped
	// without any name-based addressing.  The flattened view is
	// memoized by the manager, so steady-state dispatch costs a map
	// read, not a deep copy plus a rebuild per frame.
	msp := obs.StartStage(msgID, obs.StageMatch)
	flat, _ := c.pm.FlatSnapshot()
	if !m.MatchProfile(flat) {
		c.stats.filtered.Add(1)
		if msp.Active() {
			msp.EndErr(c.ID() + ": filtered by profile")
		}
		return
	}
	msp.End()
	obs.AppendHop(msgID, c.ID(), obs.StageMatch)
	if lam, ok := m.Attrs["lamport"]; ok {
		c.clock.Witness(uint64(lam.Num()))
	}

	switch m.Kind {
	case message.KindEvent:
		dsp := obs.StartStage(msgID, obs.StageDeliver)
		c.handleEvent(m)
		dsp.End()
		obs.AppendHop(msgID, c.ID(), obs.StageDeliver)
		c.observeDeliverySLO(m)
	case message.KindData:
		dsp := obs.StartStage(msgID, obs.StageDeliver)
		c.handleData(m)
		dsp.End()
		obs.AppendHop(msgID, c.ID(), obs.StageDeliver)
		c.observeDeliverySLO(m)
	case message.KindControl:
		// RTCP feedback and lock notifications; other control traffic
		// belongs to coordinators and base stations.
		if c.handleRTCPReport(m) {
			return
		}
		c.handleLockControl(m)
	}
}

// observeDeliverySLO feeds one delivery's publish-to-apply latency
// into the SLO engine.  Repair-released frames pass through here too,
// so a repaired gap shows up as the high delivery latency it actually
// cost the user.  One atomic load and no clock read while SLO
// monitoring is off.
func (c *Client) observeDeliverySLO(m *message.Message) {
	if !slo.Enabled() || m.Timestamp.IsZero() {
		return
	}
	slo.ObserveDelivery(c.ID(), c.clk.Since(m.Timestamp))
}

func (c *Client) handleEvent(m *message.Message) {
	app, _ := m.Attr(message.AttrApp)
	switch app.Str() {
	case apps.AppChat:
		if err := c.chat.Apply(m.Sender, m.Body); err != nil {
			c.stats.errors.Add(1)
			return
		}
	case apps.AppWhiteboard:
		if err := c.wb.Apply(m.Body); err != nil {
			c.stats.errors.Add(1)
			return
		}
	case apps.AppImageViewer:
		meta, err := apps.DecodeImageMeta(m.Body)
		if err != nil {
			c.stats.errors.Add(1)
			return
		}
		c.viewer.Announce(meta)
		c.flushPending(meta.Object)
	case apps.AppMedia:
		if err := c.inbox.Apply(m.Sender, m.Body); err != nil {
			c.stats.errors.Add(1)
			return
		}
	default:
		c.stats.errors.Add(1)
		if obs.Enabled() {
			obs.Drop(obs.MsgID(m.Sender, m.Seq), obs.StageDeliver,
				c.ID()+": unknown app "+app.Str())
		}
		return
	}
	c.stats.received.Add(1)
}

func (c *Client) handleData(m *message.Message) {
	app, _ := m.Attr(message.AttrApp)
	if app.Str() != apps.AppImageViewer {
		c.stats.errors.Add(1)
		return
	}
	object, ok := m.Attr(message.AttrObject)
	if !ok {
		c.stats.errors.Add(1)
		return
	}
	level, ok := m.Attr(message.AttrLevel)
	if !ok {
		c.stats.errors.Add(1)
		return
	}
	pkt, err := rtp.Unmarshal(m.Body)
	if err != nil {
		c.stats.errors.Add(1)
		return
	}
	obs.AppendHop(obs.MsgID(m.Sender, m.Seq), c.ID(), obs.StageRTP)
	// Track per-sender reception statistics (loss, jitter) — the
	// RTP/RTCP layer's receiver role.
	c.rtpMu.Lock()
	recv, okR := c.rtpRecv[m.Sender]
	if !okR {
		recv = rtp.NewReceiver(64)
		recv.SetClock(c.clk)
		c.rtpRecv[m.Sender] = recv
	}
	c.rtpMu.Unlock()
	recv.Push(pkt, uint32(c.clk.Now().UnixMilli()))

	if err := c.viewer.AddPacket(object.Str(), int(level.Num()), pkt.Payload); err != nil {
		if errors.Is(err, apps.ErrUnknownImage) {
			// The packet overtook its announce; park it.
			if obs.Enabled() {
				obs.Note(obs.MsgID(m.Sender, m.Seq), obs.StageReorder,
					c.ID()+": packet overtook announce of "+object.Str())
			}
			c.parkPacket(object.Str(), int(level.Num()), pkt.Payload)
			return
		}
		c.stats.errors.Add(1)
		if obs.Enabled() {
			obs.Drop(obs.MsgID(m.Sender, m.Seq), obs.StageDeliver,
				c.ID()+": data packet rejected: "+err.Error())
		}
		return
	}
	c.stats.data.Add(1)
}

// --- Gap repair (cfg.Repair != nil) ---

// senderOrder restores one sender's gapless event/data sequence at a
// replica: the order buffer tracks sequence state (and is what the
// repair engine watches), msgs holds the decoded frames parked behind
// a gap until release.
type senderOrder struct {
	buf  *session.OrderBuffer
	msgs map[uint64]*message.Message
}

// defaultMaxPending bounds each sender's order buffer when
// RepairOptions.MaxPending is zero.
const defaultMaxPending = 512

// ingestOrdered pushes an event/data frame through its sender's order
// buffer and applies whatever becomes releasable, in order.
// Duplicates — replayed frames already applied, or substrate
// duplicate deliveries — are discarded here.  orderMu is held across
// application so the abandon path cannot interleave.
func (c *Client) ingestOrdered(m *message.Message) {
	c.orderMu.Lock()
	defer c.orderMu.Unlock()
	so, ok := c.order[m.Sender]
	if !ok {
		so = &senderOrder{buf: session.NewOrderBuffer(0), msgs: make(map[uint64]*message.Message)}
		so.buf.SetClock(c.clk)
		limit := c.cfg.Repair.MaxPending
		if limit <= 0 {
			limit = defaultMaxPending
		}
		// Overflow evicts the farthest-ahead frame from the buffer;
		// drop its parked payload too (runs under the buffer's lock).
		so.buf.SetLimit(limit, func(ev session.Event) { delete(so.msgs, ev.Seq) })
		c.order[m.Sender] = so
		c.rep.Watch(m.Sender, so.buf)
	}
	seq := uint64(m.Seq)
	so.msgs[seq] = m
	released := so.buf.Push(session.Event{Seq: seq, Sender: m.Sender})
	if len(released) == 0 {
		if w, _ := so.buf.Gap(); seq < w {
			// Already applied (or skipped): a duplicate or replay echo.
			delete(so.msgs, seq)
		}
		return
	}
	c.applyReleasedLocked(so, released)
}

// applyReleasedLocked applies released events in order (orderMu held).
func (c *Client) applyReleasedLocked(so *senderOrder, released []session.Event) {
	for _, ev := range released {
		if mm, ok := so.msgs[ev.Seq]; ok {
			delete(so.msgs, ev.Seq)
			obs.AppendHop(obs.MsgID(mm.Sender, mm.Seq), c.ID(), obs.StageReorder)
			c.process(mm)
		}
	}
}

// repairRequest is the engine's NACK callback: ask the coordinator to
// replay the stalled sender's frames past the last applied seq.
func (c *Client) repairRequest(stream string, afterSeq uint64, attempt int) error {
	return c.RequestHistoryFrom(c.cfg.Repair.Coordinator, stream, afterSeq)
}

// repairAbandon is the engine's budget-exhausted callback: skip the
// stream past the unrepairable gap so delivery resumes, noting what
// was given up.
func (c *Client) repairAbandon(stream string, waitingFor uint64) {
	c.orderMu.Lock()
	defer c.orderMu.Unlock()
	so, ok := c.order[stream]
	if !ok {
		return
	}
	released, from, to := so.buf.Skip()
	if to > from && obs.Enabled() {
		obs.Drop(0, obs.StageRepair, fmt.Sprintf(
			"%s: abandoned seqs [%d,%d) from %s", c.ID(), from, to, stream))
	}
	c.applyReleasedLocked(so, released)
}

// RepairStatus snapshots the per-sender gap-repair state (nil when
// repair is disabled).
func (c *Client) RepairStatus() map[string]repair.StreamStatus {
	if c.rep == nil {
		return nil
	}
	return c.rep.Status()
}

// pendingPacket is one parked early-arriving image packet.
type pendingPacket struct {
	idx  int
	data []byte
}

// Bounds on parked state so unannounced traffic cannot pin memory.
const (
	maxPendingObjects = 32
	maxPendingPerObj  = 64
)

func (c *Client) parkPacket(object string, idx int, data []byte) {
	c.pendingMu.Lock()
	defer c.pendingMu.Unlock()
	if _, ok := c.pendingData[object]; !ok && len(c.pendingData) >= maxPendingObjects {
		return // drop: too many unannounced objects
	}
	q := c.pendingData[object]
	if len(q) >= maxPendingPerObj {
		return
	}
	c.pendingData[object] = append(q, pendingPacket{idx: idx, data: append([]byte(nil), data...)})
}

func (c *Client) flushPending(object string) {
	c.pendingMu.Lock()
	q := c.pendingData[object]
	delete(c.pendingData, object)
	c.pendingMu.Unlock()
	for _, p := range q {
		if err := c.viewer.AddPacket(object, p.idx, p.data); err != nil {
			c.stats.errors.Add(1)
			continue
		}
		c.stats.data.Add(1)
	}
}

// Trap implements snmp.TrapSink: an SNMPv2 trap from a host agent's
// alarm evaluator updates the profile state immediately and re-runs
// the inference engine — push-driven adaptation without waiting for
// the next poll.  Unknown or malformed traps are counted and ignored.
func (c *Client) Trap(frame []byte) {
	msg, err := snmp.DecodeMessage(frame)
	if err != nil || msg.PDU.Type != snmp.TrapV2 {
		c.stats.errors.Add(1)
		return
	}
	state := make(selector.Attributes)
	for _, vb := range msg.PDU.VarBinds {
		param, ok := hostagent.ParamForOID(vb.OID)
		if !ok {
			continue
		}
		if n, numeric := vb.Value.Number(); numeric {
			state.SetNumber(param, n)
		}
	}
	if len(state) == 0 {
		return
	}
	c.pm.Update(func(p *profile.Profile) {
		for k, v := range state {
			p.State[k] = v
		}
	})
	// Decide over the full accumulated state, not just the trap's
	// variables (the trap may only carry the parameter that crossed).
	full := make(selector.Attributes)
	for k, v := range c.pm.Snapshot().State {
		full[k] = v
	}
	if loss, ok := c.observedLoss(); ok {
		full.SetNumber(inference.StateLoss, loss)
	}
	d := c.engine.Decide(full)
	c.viewer.SetBudget(d.EffectiveBudget(c.cfg.TotalPackets))
	if d.Modality != "" {
		c.pm.SetPreference("modality", selector.S(string(d.Modality)))
	}
	c.mu.Lock()
	c.lastDecision = d
	c.mu.Unlock()
}

// observedLoss aggregates the data-packet loss fraction across every
// sender's RTP reception statistics — expected versus unique received
// packets, so duplicate deliveries cannot deflate the figure.  ok is
// false when no data packets have been seen at all.
func (c *Client) observedLoss() (float64, bool) {
	c.rtpMu.Lock()
	defer c.rtpMu.Unlock()
	var expected, uniq uint64
	for _, r := range c.rtpRecv {
		s := r.Snapshot()
		expected += s.ExpectedTotal
		uniq += s.Unique
	}
	if expected == 0 {
		return 0, false
	}
	if uniq >= expected {
		return 0, true
	}
	return float64(expected-uniq) / float64(expected), true
}

// SampleQoS feeds the client's transport-level reception quality into
// the QoS gauge set: per-sender RTCP-style loss fraction and
// interarrival jitter, plus the aggregate loss fraction the inference
// engine adapts to.  The signature matches obs.SamplerFunc so the
// telemetry collector can register the client directly.
func (c *Client) SampleQoS(set func(name string, value float64)) {
	type senderStats struct {
		sender string
		s      rtp.Stats
	}
	c.rtpMu.Lock()
	snaps := make([]senderStats, 0, len(c.rtpRecv))
	for sender, r := range c.rtpRecv {
		snaps = append(snaps, senderStats{sender, r.Snapshot()})
	}
	c.rtpMu.Unlock()
	var expected, uniq uint64
	for _, sn := range snaps {
		label := `{client="` + metrics.EscapeLabel(c.ID()) + `",sender="` + metrics.EscapeLabel(sn.sender) + `"}`
		var frac float64
		if exp := sn.s.ExpectedTotal; exp > sn.s.Unique {
			frac = float64(exp-sn.s.Unique) / float64(exp)
		}
		set("rtp_loss_fraction"+label, frac)
		set("rtp_jitter"+label, sn.s.Jitter)
		expected += sn.s.ExpectedTotal
		uniq += sn.s.Unique
	}
	if expected > 0 {
		var frac float64
		if expected > uniq {
			frac = float64(expected-uniq) / float64(expected)
		}
		set(`client_loss_fraction{client="`+metrics.EscapeLabel(c.ID())+`"}`, frac)
		slo.ObserveLoss(c.ID(), frac)
	}
}

// ReceptionReport returns the RTP-level reception statistics for a
// sender's data stream.
func (c *Client) ReceptionReport(sender string) (rtp.Stats, bool) {
	c.rtpMu.Lock()
	defer c.rtpMu.Unlock()
	r, ok := c.rtpRecv[sender]
	if !ok {
		return rtp.Stats{}, false
	}
	return r.Snapshot(), true
}

// --- Adaptation ---

// AdaptOnce runs one adaptation cycle: sample system state (via the
// SNMP monitor when configured), fold it into the profile, run the
// inference engine, and configure the applications accordingly.  It
// returns the decision taken.
func (c *Client) AdaptOnce() (inference.Decision, error) {
	state := make(selector.Attributes)
	if c.cfg.Monitor != nil {
		sample, err := c.cfg.Monitor.Sample(c.cfg.MonitorParams...)
		if err != nil {
			return inference.Decision{}, fmt.Errorf("core: state sample: %w", err)
		}
		for k, v := range sample {
			state.SetNumber(k, v)
		}
	} else {
		for k, v := range c.pm.Snapshot().State {
			state[k] = v
		}
	}
	// Fold in transport-level reception quality: the RTP layer's loss
	// and jitter accounting is part of the network state the engine
	// (and the QoS contract) adapts to.
	if loss, ok := c.observedLoss(); ok {
		state.SetNumber(inference.StateLoss, loss)
		slo.ObserveLoss(c.ID(), loss)
	}
	if jitter, ok := c.observedJitter(); ok {
		state.SetNumber("jitter", jitter)
	}

	// Fold the observed state into the profile (it is part of the
	// client's selectable identity).
	c.pm.Update(func(p *profile.Profile) {
		for k, v := range state {
			p.State[k] = v
		}
	})

	d := c.engine.Decide(state)
	c.viewer.SetBudget(d.EffectiveBudget(c.cfg.TotalPackets))
	if d.Modality != "" {
		c.pm.SetPreference("modality", selector.S(string(d.Modality)))
	}

	c.mu.Lock()
	c.lastDecision = d
	c.mu.Unlock()
	return d, nil
}

// StartAdaptation runs AdaptOnce every interval until the client is
// closed.  Sampling errors are counted and skipped.
func (c *Client) StartAdaptation(interval time.Duration) {
	go func() {
		ticker := c.clk.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-ticker.C():
				if _, err := c.AdaptOnce(); err != nil {
					c.stats.errors.Add(1)
				}
			}
		}
	}()
}
