package core

import (
	"sync"
	"time"

	"adaptiveqos/internal/message"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
)

// Coordinator is an archiving peer in the multicast session: it
// records every event frame in order and answers history requests from
// late joiners by replaying the original frames over unicast.  The
// framework deliberately has no store-and-forward in the live path
// (collaboration is real-time); the archive is the paper's concession
// for late clients needing session history.
//
// Replayed frames are verbatim originals, so the late joiner's own
// semantic filtering still applies: it only absorbs the history its
// profile admits.
type Coordinator struct {
	conn transport.Conn
	sess *session.Session

	env    message.Enveloper
	unwrap *message.Unwrapper

	mu      sync.Mutex
	frames  map[uint64][]byte        // session seq → original encoded frame
	streams map[string]*senderStream // per-sender arrival reordering
	locks   *session.ObjectLocks     // distributed lock arbitration

	closeOnce sync.Once
	loopDone  chan struct{}
}

// Control-message vocabulary for the history protocol.
const (
	attrCtrl       = "ctrl"
	ctrlHistoryReq = "history-request"
	attrAfterSeq   = "after-seq"
)

// NewCoordinator attaches an archiving coordinator to the substrate.
// group describes the session being archived (used for metadata only;
// the coordinator does not enforce admission — it archives what the
// multicast group carries).
func NewCoordinator(conn transport.Conn, group session.Group) *Coordinator {
	c := &Coordinator{
		conn:     conn,
		sess:     session.New(group),
		unwrap:   message.NewUnwrapper(),
		frames:   make(map[uint64][]byte),
		streams:  make(map[string]*senderStream),
		locks:    session.NewObjectLocks(),
		loopDone: make(chan struct{}),
	}
	go c.loop()
	return c
}

// ID returns the coordinator's substrate identifier.
func (c *Coordinator) ID() string { return c.conn.ID() }

// Session exposes the archive (membership, history, sequence state).
func (c *Coordinator) Session() *session.Session { return c.sess }

// SetArchiveCap bounds retained history to the most recent n events.
func (c *Coordinator) SetArchiveCap(n int) {
	c.sess.SetArchiveCap(n)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Drop frames the session no longer remembers.
	keep := make(map[uint64]bool)
	for _, ev := range c.sess.History(0) {
		keep[ev.Seq] = true
	}
	for seq := range c.frames {
		if !keep[seq] {
			delete(c.frames, seq)
		}
	}
}

// Close detaches the coordinator.
func (c *Coordinator) Close() error {
	var err error
	c.closeOnce.Do(func() {
		err = c.conn.Close()
		<-c.loopDone
	})
	return err
}

func (c *Coordinator) loop() {
	defer close(c.loopDone)
	for pkt := range c.conn.Recv() {
		c.handle(pkt)
	}
}

func (c *Coordinator) handle(pkt transport.Packet) {
	frame, err := c.unwrap.Unwrap(pkt.From, pkt.Data)
	if err != nil || frame == nil {
		return
	}
	m, err := message.Decode(frame)
	if err != nil {
		return
	}
	switch m.Kind {
	case message.KindEvent, message.KindData:
		// The substrate may reorder frames; the archive must reflect
		// each sender's causal order, so frames pass through a
		// per-sender reorder stage keyed on the sender sequence number.
		for _, ordered := range c.reorder(m, frame) {
			c.archive(ordered.msg, ordered.frame)
		}
	case message.KindControl:
		ctrl, ok := m.Attr(attrCtrl)
		if !ok {
			return
		}
		switch ctrl.Str() {
		case ctrlHistoryReq:
			after := uint64(0)
			if v, ok := m.Attr(attrAfterSeq); ok {
				after = uint64(v.Num())
			}
			c.replay(m.Sender, after)
		case ctrlLockRequest, ctrlLockRelease:
			if object, ok := m.Attr(attrObject); ok {
				c.handleLock(m.Sender, ctrl.Str(), object.Str())
			}
		}
	}
}

// handleLock arbitrates a lock request or release and notifies the
// affected clients.
func (c *Coordinator) handleLock(sender, ctrl, object string) {
	switch ctrl {
	case ctrlLockRequest:
		if err := c.locks.TryAcquire(object, sender); err != nil {
			c.notifyLock(sender, ctrlLockWait, object, c.locks.Holder(object))
			return
		}
		c.notifyLock(sender, ctrlLockGrant, object, sender)
	case ctrlLockRelease:
		next, err := c.locks.Release(object, sender)
		if err != nil {
			return // not the holder: ignore
		}
		if next != "" {
			c.notifyLock(next, ctrlLockGrant, object, next)
		}
	}
}

func (c *Coordinator) notifyLock(to, ctrl, object, holder string) {
	m := &message.Message{
		Kind:      message.KindControl,
		Sender:    c.ID(),
		Timestamp: time.Now(),
		Attrs: selector.Attributes{
			attrCtrl:   selector.S(ctrl),
			attrObject: selector.S(object),
			attrHolder: selector.S(holder),
		},
	}
	frame, err := message.Encode(m)
	if err != nil {
		return
	}
	datagrams, err := c.env.Wrap(frame)
	if err != nil {
		return
	}
	for _, d := range datagrams {
		c.conn.Unicast(to, d)
	}
}

// orderedFrame pairs a decoded message with its original frame.
type orderedFrame struct {
	msg   *message.Message
	frame []byte
}

// senderStream restores one sender's frame order.
type senderStream struct {
	next    uint32
	pending map[uint32]orderedFrame
}

// maxStreamPending bounds per-sender buffering; past it the stream
// flushes in ascending order (archive completeness beats a perfect
// order when the substrate genuinely lost a frame).
const maxStreamPending = 64

// reorder returns the frames now releasable in the sender's order.
func (c *Coordinator) reorder(m *message.Message, frame []byte) []orderedFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.streams[m.Sender]
	if !ok {
		// Framework clients number their messages from 1, so a fresh
		// stream anchors there; a coordinator attaching mid-session
		// catches up through the flush path below.
		st = &senderStream{next: 1, pending: make(map[uint32]orderedFrame)}
		c.streams[m.Sender] = st
	}
	own := orderedFrame{msg: m, frame: append([]byte(nil), frame...)}
	if m.Seq < st.next {
		// A straggler from before the release point: archive it now
		// rather than dropping history.
		return []orderedFrame{own}
	}
	st.pending[m.Seq] = own

	var out []orderedFrame
	for {
		f, ok := st.pending[st.next]
		if !ok {
			break
		}
		delete(st.pending, st.next)
		out = append(out, f)
		st.next++
	}
	if len(st.pending) > maxStreamPending {
		// Flush: a frame was probably lost.  Release in ascending order.
		seqs := make([]uint32, 0, len(st.pending))
		for s := range st.pending {
			seqs = append(seqs, s)
		}
		for i := 1; i < len(seqs); i++ { // insertion sort, tiny n
			for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
				seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
			}
		}
		for _, s := range seqs {
			out = append(out, st.pending[s])
			delete(st.pending, s)
			st.next = s + 1
		}
	}
	return out
}

func (c *Coordinator) archive(m *message.Message, frame []byte) {
	// The session requires membership for Commit; the coordinator
	// auto-registers senders it hears (they are in the multicast group
	// by construction).
	if !c.sess.IsMember(m.Sender) {
		if err := c.sess.Join(profile.New(m.Sender)); err != nil {
			return // filtered by the group: not archived
		}
	}
	app, _ := m.Attr(message.AttrApp)
	object, _ := m.Attr(message.AttrObject)
	ev, err := c.sess.Commit(m.Sender, app.Str(), object.Str(), nil)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.frames[ev.Seq] = append([]byte(nil), frame...)
	c.mu.Unlock()
}

// replay unicasts archived frames with Seq > after, in order.
func (c *Coordinator) replay(to string, after uint64) {
	events := c.sess.History(after)
	c.mu.Lock()
	frames := make([][]byte, 0, len(events))
	for _, ev := range events {
		if f, ok := c.frames[ev.Seq]; ok {
			frames = append(frames, f)
		}
	}
	c.mu.Unlock()
	for _, f := range frames {
		datagrams, err := c.env.Wrap(f)
		if err != nil {
			return
		}
		for _, d := range datagrams {
			if err := c.conn.Unicast(to, d); err != nil {
				return
			}
		}
	}
}

// ArchivedEvents returns the number of archived events.
func (c *Coordinator) ArchivedEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// RequestHistory asks the coordinator to replay the session history
// with sequence numbers greater than afterSeq.  Replayed events arrive
// through the normal receive path, subject to this client's semantic
// filtering.
func (c *Client) RequestHistory(coordinator string, afterSeq uint64) error {
	m := &message.Message{
		Kind:      message.KindControl,
		Sender:    c.ID(),
		Seq:       c.ctrlSeq.Add(1),
		Timestamp: time.Now(),
		Attrs: selector.Attributes{
			attrCtrl:     selector.S(ctrlHistoryReq),
			attrAfterSeq: selector.N(float64(afterSeq)),
		},
	}
	return c.unicastMessage(coordinator, m)
}
