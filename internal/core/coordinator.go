package core

import (
	"sync"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
)

// Coordinator is an archiving peer in the multicast session: it
// records every event frame in order and answers history requests from
// late joiners by replaying the original frames over unicast.  The
// framework deliberately has no store-and-forward in the live path
// (collaboration is real-time); the archive is the paper's concession
// for late clients needing session history.
//
// Replayed frames are verbatim originals, so the late joiner's own
// semantic filtering still applies: it only absorbs the history its
// profile admits.
type Coordinator struct {
	conn transport.Conn
	clk  clock.Clock
	sess *session.Session

	env    message.Enveloper
	unwrap *message.Unwrapper

	mu      sync.Mutex
	frames  map[uint64]archivedFrame // session seq → original frame + sender seq
	streams map[string]*senderStream // per-sender arrival reordering
	locks   *session.ObjectLocks     // distributed lock arbitration

	closeOnce sync.Once
	loopDone  chan struct{}
}

// archivedFrame is one archived original frame plus the sender-scoped
// sequence number it carried, so NACK-style repair requests can be
// answered per sender without re-decoding the archive.
type archivedFrame struct {
	data      []byte
	senderSeq uint32
}

// Control-message vocabulary for the history protocol.
const (
	attrCtrl       = "ctrl"
	ctrlHistoryReq = "history-request"
	attrAfterSeq   = "after-seq"
	// attrForSender scopes a history request to one sender's frames,
	// with attrAfterSeq then counted in that sender's own sequence
	// space — the NACK a gap-repair loop issues.
	attrForSender = "for-sender"
)

// NewCoordinator attaches an archiving coordinator to the substrate.
// group describes the session being archived (used for metadata only;
// the coordinator does not enforce admission — it archives what the
// multicast group carries).
func NewCoordinator(conn transport.Conn, group session.Group) *Coordinator {
	return NewCoordinatorClock(conn, group, nil)
}

// NewCoordinatorClock is NewCoordinator with an injected clock (nil =
// wall) timestamping replies and replay notifications.
func NewCoordinatorClock(conn transport.Conn, group session.Group, clk clock.Clock) *Coordinator {
	c := &Coordinator{
		conn:     conn,
		clk:      clock.Or(clk),
		sess:     session.New(group),
		unwrap:   message.NewUnwrapper(),
		frames:   make(map[uint64]archivedFrame),
		streams:  make(map[string]*senderStream),
		locks:    session.NewObjectLocks(),
		loopDone: make(chan struct{}),
	}
	c.env.Node = conn.ID()
	c.unwrap.Node = conn.ID()
	go c.loop()
	return c
}

// ID returns the coordinator's substrate identifier.
func (c *Coordinator) ID() string { return c.conn.ID() }

// Session exposes the archive (membership, history, sequence state).
func (c *Coordinator) Session() *session.Session { return c.sess }

// SetArchiveCap bounds retained history to the most recent n events.
func (c *Coordinator) SetArchiveCap(n int) {
	c.sess.SetArchiveCap(n)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Drop frames the session no longer remembers.
	keep := make(map[uint64]bool)
	for _, ev := range c.sess.History(0) {
		keep[ev.Seq] = true
	}
	for seq := range c.frames {
		if !keep[seq] {
			delete(c.frames, seq)
		}
	}
}

// Close detaches the coordinator.
func (c *Coordinator) Close() error {
	var err error
	c.closeOnce.Do(func() {
		err = c.conn.Close()
		<-c.loopDone
	})
	return err
}

func (c *Coordinator) loop() {
	defer close(c.loopDone)
	for pkt := range c.conn.Recv() {
		c.handle(pkt)
	}
}

func (c *Coordinator) handle(pkt transport.Packet) {
	frame, err := c.unwrap.Unwrap(pkt.From, pkt.Data)
	if err != nil || frame == nil {
		return
	}
	m, err := message.Decode(frame)
	if err != nil {
		return
	}
	switch m.Kind {
	case message.KindEvent, message.KindData:
		// The substrate may reorder frames; the archive must reflect
		// each sender's causal order, so frames pass through a
		// per-sender reorder stage keyed on the sender sequence number.
		for _, ordered := range c.reorder(m, frame) {
			c.archive(ordered.msg, ordered.frame)
		}
	case message.KindControl:
		ctrl, ok := m.Attr(attrCtrl)
		if !ok {
			return
		}
		switch ctrl.Str() {
		case ctrlHistoryReq:
			after := uint64(0)
			if v, ok := m.Attr(attrAfterSeq); ok {
				after = uint64(v.Num())
			}
			if forSender, ok := m.Attr(attrForSender); ok {
				c.replayFor(m.Sender, forSender.Str(), uint32(after))
			} else {
				c.replay(m.Sender, after)
			}
		case ctrlLockRequest, ctrlLockRelease:
			if object, ok := m.Attr(attrObject); ok {
				c.handleLock(m.Sender, ctrl.Str(), object.Str())
			}
		}
	}
}

// handleLock arbitrates a lock request or release and notifies the
// affected clients.
func (c *Coordinator) handleLock(sender, ctrl, object string) {
	switch ctrl {
	case ctrlLockRequest:
		if err := c.locks.TryAcquire(object, sender); err != nil {
			c.notifyLock(sender, ctrlLockWait, object, c.locks.Holder(object))
			return
		}
		c.notifyLock(sender, ctrlLockGrant, object, sender)
	case ctrlLockRelease:
		next, err := c.locks.Release(object, sender)
		if err != nil {
			return // not the holder: ignore
		}
		if next != "" {
			c.notifyLock(next, ctrlLockGrant, object, next)
		}
	}
}

func (c *Coordinator) notifyLock(to, ctrl, object, holder string) {
	m := &message.Message{
		Kind:      message.KindControl,
		Sender:    c.ID(),
		Timestamp: c.clk.Now(),
		Attrs: selector.Attributes{
			attrCtrl:   selector.S(ctrl),
			attrObject: selector.S(object),
			attrHolder: selector.S(holder),
		},
	}
	frame, err := message.Encode(m)
	if err != nil {
		return
	}
	datagrams, err := c.env.Wrap(frame)
	if err != nil {
		return
	}
	for _, d := range datagrams {
		c.conn.Unicast(to, d)
	}
}

// orderedFrame pairs a decoded message with its original frame.
type orderedFrame struct {
	msg   *message.Message
	frame []byte
}

// senderStream restores one sender's frame order.
type senderStream struct {
	next    uint32
	pending map[uint32]orderedFrame
	// missing records sequence numbers the flush path skipped past
	// without archiving: a straggler carrying one of them is genuine
	// lost history and archives once; any other seq below next is a
	// duplicate delivery of an already-archived frame and is dropped.
	missing map[uint32]struct{}
}

// maxStreamPending bounds per-sender buffering; past it the stream
// flushes in ascending order (archive completeness beats a perfect
// order when the substrate genuinely lost a frame).
const maxStreamPending = 64

// maxStreamMissing bounds the skipped-seq memory per sender; past it
// the oldest (smallest) entries give way and an extremely late
// straggler is treated as a duplicate — the archive-safe direction.
const maxStreamMissing = 1024

// noteMissing records [from, to) as skipped without archiving.
func (st *senderStream) noteMissing(from, to uint32) {
	for s := from; s < to; s++ {
		if len(st.missing) >= maxStreamMissing {
			oldest, have := uint32(0), false
			for m := range st.missing {
				if !have || m < oldest {
					oldest, have = m, true
				}
			}
			delete(st.missing, oldest)
		}
		st.missing[s] = struct{}{}
	}
}

// reorder returns the frames now releasable in the sender's order.
func (c *Coordinator) reorder(m *message.Message, frame []byte) []orderedFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.streams[m.Sender]
	if !ok {
		// Framework clients number their messages from 1, so a fresh
		// stream anchors there; a coordinator attaching mid-session
		// catches up through the flush path below.
		st = &senderStream{
			next:    1,
			pending: make(map[uint32]orderedFrame),
			missing: make(map[uint32]struct{}),
		}
		c.streams[m.Sender] = st
	}
	own := orderedFrame{msg: m, frame: append([]byte(nil), frame...)}
	if m.Seq < st.next {
		if _, lost := st.missing[m.Seq]; lost {
			// A straggler the flush path skipped past: genuine lost
			// history, archive it now (exactly once).
			delete(st.missing, m.Seq)
			return []orderedFrame{own}
		}
		// Duplicate delivery of an already-archived frame: committing
		// it again would mint a second session event.
		metrics.C(metrics.CtrArchiveDupDrops).Inc()
		if obs.Enabled() {
			obs.Drop(obs.MsgID(m.Sender, m.Seq), obs.StageReorder,
				c.ID()+": duplicate frame from "+m.Sender+" dropped before archive")
		}
		return nil
	}
	st.pending[m.Seq] = own

	var out []orderedFrame
	for {
		f, ok := st.pending[st.next]
		if !ok {
			break
		}
		delete(st.pending, st.next)
		out = append(out, f)
		st.next++
	}
	if len(st.pending) > maxStreamPending {
		// Flush: a frame was probably lost.  Release in ascending
		// order, remembering the skipped seqs as repairable holes.
		seqs := make([]uint32, 0, len(st.pending))
		for s := range st.pending {
			seqs = append(seqs, s)
		}
		for i := 1; i < len(seqs); i++ { // insertion sort, tiny n
			for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
				seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
			}
		}
		for _, s := range seqs {
			out = append(out, st.pending[s])
			delete(st.pending, s)
			st.noteMissing(st.next, s)
			st.next = s + 1
		}
	}
	return out
}

func (c *Coordinator) archive(m *message.Message, frame []byte) {
	// The session requires membership for Commit; the coordinator
	// auto-registers senders it hears (they are in the multicast group
	// by construction).
	if !c.sess.IsMember(m.Sender) {
		if err := c.sess.Join(profile.New(m.Sender)); err != nil {
			return // filtered by the group: not archived
		}
	}
	app, _ := m.Attr(message.AttrApp)
	object, _ := m.Attr(message.AttrObject)
	ev, err := c.sess.Commit(m.Sender, app.Str(), object.Str(), nil)
	if err != nil {
		return
	}
	obs.AppendHop(obs.MsgID(m.Sender, m.Seq), c.ID(), obs.StageArchive)
	c.mu.Lock()
	c.frames[ev.Seq] = archivedFrame{data: append([]byte(nil), frame...), senderSeq: m.Seq}
	c.mu.Unlock()
}

// replayFrame pairs an archived frame with the trace identity of the
// message it carries, so a replay continues the original trace (the
// flight recorder shows the repair hop on the message's own timeline).
type replayFrame struct {
	data    []byte
	traceID uint64
}

// replay unicasts archived frames with Seq > after, in order.
func (c *Coordinator) replay(to string, after uint64) {
	events := c.sess.History(after)
	c.mu.Lock()
	frames := make([]replayFrame, 0, len(events))
	for _, ev := range events {
		if f, ok := c.frames[ev.Seq]; ok {
			frames = append(frames, replayFrame{data: f.data, traceID: obs.MsgID(ev.Sender, f.senderSeq)})
		}
	}
	c.mu.Unlock()
	c.unicastFrames(to, frames)
}

// replayFor answers a NACK-style repair request: it unicasts the
// archived frames originated by sender whose sender-scoped sequence
// number exceeds afterSenderSeq, in archive order.  Repeated requests
// with an advancing afterSenderSeq resume where the previous replay
// left off, and requests for already-delivered ranges are harmless —
// the requester's order buffer discards what it has already applied.
func (c *Coordinator) replayFor(to, sender string, afterSenderSeq uint32) {
	events := c.sess.History(0)
	c.mu.Lock()
	frames := make([]replayFrame, 0, 8)
	for _, ev := range events {
		if ev.Sender != sender {
			continue
		}
		if f, ok := c.frames[ev.Seq]; ok && f.senderSeq > afterSenderSeq {
			frames = append(frames, replayFrame{data: f.data, traceID: obs.MsgID(sender, f.senderSeq)})
		}
	}
	c.mu.Unlock()
	c.unicastFrames(to, frames)
}

// unicastFrames ships replayed frames, appending a repair hop to each
// frame's trace and re-attaching the trace extension so the requester
// sees the replay on the message's original timeline.
func (c *Coordinator) unicastFrames(to string, frames []replayFrame) {
	for _, f := range frames {
		obs.AppendHop(f.traceID, c.ID(), obs.StageRepair)
		var datagrams [][]byte
		var err error
		if obs.TraceEnabled() {
			datagrams, err = c.env.WrapTraced(f.data, f.traceID)
		} else {
			datagrams, err = c.env.Wrap(f.data)
		}
		if err != nil {
			return
		}
		for _, d := range datagrams {
			if err := c.conn.Unicast(to, d); err != nil {
				return
			}
		}
	}
}

// ArchivedEvents returns the number of archived events.
func (c *Coordinator) ArchivedEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// RequestHistory asks the coordinator to replay the session history
// with sequence numbers greater than afterSeq.  Replayed events arrive
// through the normal receive path, subject to this client's semantic
// filtering.
func (c *Client) RequestHistory(coordinator string, afterSeq uint64) error {
	m := &message.Message{
		Kind:      message.KindControl,
		Sender:    c.ID(),
		Seq:       c.ctrlSeq.Add(1),
		Timestamp: c.clk.Now(),
		Attrs: selector.Attributes{
			attrCtrl:     selector.S(ctrlHistoryReq),
			attrAfterSeq: selector.N(float64(afterSeq)),
		},
	}
	return c.unicastMessage(coordinator, m)
}

// RequestHistoryFrom asks the coordinator to replay one sender's
// archived frames with sender-scoped sequence numbers greater than
// afterSeq — the NACK the gap-repair loop issues when that sender's
// event stream stalls on a missing frame.  Replayed frames arrive
// through the normal receive path and are deduplicated against
// already-applied sequence numbers by the per-sender order buffer.
func (c *Client) RequestHistoryFrom(coordinator, sender string, afterSeq uint64) error {
	m := &message.Message{
		Kind:      message.KindControl,
		Sender:    c.ID(),
		Seq:       c.ctrlSeq.Add(1),
		Timestamp: c.clk.Now(),
		Attrs: selector.Attributes{
			attrCtrl:      selector.S(ctrlHistoryReq),
			attrForSender: selector.S(sender),
			attrAfterSeq:  selector.N(float64(afterSeq)),
		},
	}
	return c.unicastMessage(coordinator, m)
}
