package core

import (
	"strings"
	"testing"
	"time"

	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
)

// withFlightRecorder runs the body with wire tracing on and restores a
// clean disabled state afterwards.
func withFlightRecorder(t *testing.T, body func()) {
	t.Helper()
	obs.SetTraceEnabled(true)
	obs.ResetFlight()
	t.Cleanup(func() {
		obs.SetTraceEnabled(false)
		obs.ResetFlight()
	})
	body()
}

func hasHop(hops []obs.Hop, node string, stage obs.Stage) bool {
	for _, h := range hops {
		if h.Node == node && h.Stage == stage {
			return true
		}
	}
	return false
}

// TestTraceTimelineEndToEnd reconstructs a cross-node timeline over the
// simulated substrate: a whole-frame chat line and a fragmented one,
// each expected to show the sender's publish/fragment hops and the
// receiver's match/deliver hops on a single merged trace.
func TestTraceTimelineEndToEnd(t *testing.T) {
	withFlightRecorder(t, func() {
		net := transport.NewSimNet(transport.SimNetConfig{Seed: 171})
		t.Cleanup(net.Close)
		connA, err := net.Attach("wired-0")
		if err != nil {
			t.Fatal(err)
		}
		connB, err := net.Attach("wired-1")
		if err != nil {
			t.Fatal(err)
		}
		// A small MTU forces the second (long) message to fragment.
		a := NewClient(connA, Config{MTU: 256})
		t.Cleanup(func() { a.Close() })
		b := NewClient(connB, Config{MTU: 256})
		t.Cleanup(func() { b.Close() })

		if err := a.Say("short line", ""); err != nil {
			t.Fatal(err)
		}
		long := strings.Repeat("a long collaborative line ", 64) // ~1.6 KB, fragments at MTU 256
		if err := a.Say(long, ""); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "both lines delivered", func() bool {
			return len(b.Chat().Lines()) == 2
		})

		for i, id := range []uint64{obs.MsgID("wired-0", 1), obs.MsgID("wired-0", 2)} {
			hops, ok := obs.Timeline(id)
			if !ok {
				t.Fatalf("message %d: no trace retained", i+1)
			}
			if hops[0].Stage != obs.StagePublish || hops[0].Node != "wired-0" {
				t.Errorf("message %d: first hop = %+v, want publish@wired-0", i+1, hops[0])
			}
			for _, want := range []struct {
				node  string
				stage obs.Stage
			}{
				{"wired-0", obs.StagePublish},
				{"wired-0", obs.StageFragment},
				{"wired-1", obs.StageMatch},
				{"wired-1", obs.StageDeliver},
			} {
				if !hasHop(hops, want.node, want.stage) {
					t.Errorf("message %d: missing hop %s@%s in %v", i+1, want.stage, want.node, hops)
				}
			}
			if last := hops[len(hops)-1]; last.Stage != obs.StageDeliver || last.Node != "wired-1" {
				t.Errorf("message %d: last hop = %+v, want deliver@wired-1", i+1, last)
			}
		}
		// The fragmented message must additionally show the receiver's
		// reassembly-completion hop.
		hops, _ := obs.Timeline(obs.MsgID("wired-0", 2))
		if !hasHop(hops, "wired-1", obs.StageFragment) {
			t.Errorf("fragmented message missing reassembly hop at wired-1: %v", hops)
		}

		// The summary view flags the delivered traces as complete.
		complete := 0
		for _, s := range obs.TraceSummaries(0) {
			if s.Complete() {
				complete++
			}
		}
		if complete < 2 {
			t.Errorf("expected >= 2 complete publish→deliver traces, got %d", complete)
		}
	})
}

// TestRepairReplayAppendsRepairHop drives a real gap-repair cycle: the
// sender's first frames are lost on the replica link, the replica NACKs
// the coordinator, and the replayed frames must carry a repair hop
// attributed to the coordinator on the original message's trace.
func TestRepairReplayAppendsRepairHop(t *testing.T) {
	withFlightRecorder(t, func() {
		net := transport.NewSimNet(transport.SimNetConfig{Seed: 172})
		t.Cleanup(net.Close)
		cc, err := net.Attach("coordinator")
		if err != nil {
			t.Fatal(err)
		}
		coord := NewCoordinator(cc, session.Group{Objective: "trace-repair"})
		t.Cleanup(func() { coord.Close() })
		sc, err := net.Attach("sender-0")
		if err != nil {
			t.Fatal(err)
		}
		sender := NewClient(sc, Config{})
		t.Cleanup(func() { sender.Close() })
		rc, err := net.Attach("replica-0")
		if err != nil {
			t.Fatal(err)
		}
		replica := NewClient(rc, Config{Repair: &RepairOptions{
			Coordinator:  "coordinator",
			StallTimeout: 30 * time.Millisecond,
			Interval:     8 * time.Millisecond,
			MaxRetries:   10,
			Seed:         172,
		}})
		t.Cleanup(func() { replica.Close() })

		// Frames 1 and 2 are lost on the replica link only; the
		// coordinator hears everything and archives.
		net.SetLink("sender-0", "replica-0", transport.Link{Down: true})
		if err := sender.Say("a", ""); err != nil {
			t.Fatal(err)
		}
		if err := sender.Say("b", ""); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "coordinator archiving the lost frames", func() bool {
			return coord.ArchivedEvents() >= 2
		})
		net.SetLink("sender-0", "replica-0", transport.Link{})
		if err := sender.Say("c", ""); err != nil {
			t.Fatal(err)
		}

		// The replica stalls on the gap, NACKs, and converges via replay.
		waitFor(t, "replica absorbing the replayed history", func() bool {
			lines := senderLines(replica, "sender-0")
			return len(lines) == 3 && lines[0] == "a" && lines[1] == "b" && lines[2] == "c"
		})

		for seq := uint32(1); seq <= 2; seq++ {
			hops := obs.Hops(obs.MsgID("sender-0", seq))
			if !hasHop(hops, "coordinator", obs.StageRepair) {
				t.Errorf("seq %d: no repair hop from the coordinator in %v", seq, hops)
			}
			if !hasHop(hops, "coordinator", obs.StageArchive) {
				t.Errorf("seq %d: no archive hop from the coordinator in %v", seq, hops)
			}
			if !hasHop(hops, "replica-0", obs.StageDeliver) {
				t.Errorf("seq %d: replayed frame never delivered at the replica: %v", seq, hops)
			}
			if !hasHop(hops, "replica-0", obs.StageReorder) {
				t.Errorf("seq %d: no reorder-release hop at the replica: %v", seq, hops)
			}
		}
	})
}
