package core

import (
	"testing"
	"time"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestFigure3OverTheWire runs the paper's Figure 3 scenario with real
// content on the real substrate: a color image stream is addressed to
// profiles that either want color or can transform it.  The color
// client renders it in color; the monochrome client with a color→gray
// transformation capability accepts it and renders the grayscale
// rendition; the client with neither never sees it.
func TestFigure3OverTheWire(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 141})
	defer net.Close()

	attach := func(id string) *Client {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(conn, Config{})
		t.Cleanup(func() { c.Close() })
		return c
	}
	sender := attach("sender")
	colorClient := attach("color-client")
	bwTransform := attach("bw-transform-client")
	bwOnly := attach("bw-only-client")

	// Profiles, as in Figure 3.
	colorClient.Profile().SetInterest("accepts-color", selector.B(true))
	bwTransform.Profile().SetInterest("accepts-color", selector.B(false))
	bwTransform.Profile().Update(func(p *profile.Profile) {
		p.SetTransform("color", "gray", true)
	})
	bwOnly.Profile().SetInterest("accepts-color", selector.B(false))

	// The incoming stream's selector: receivers must accept color or be
	// able to transform it away.
	sel := `accepts-color == true or cap.transform.color.gray == true`
	im := wavelet.ColorScene(48, 48, 7)
	obj, err := media.EncodeColorImage(im, "color sequence frame")
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.ShareImage("fig3", obj, sel); err != nil {
		t.Fatal(err)
	}

	// Client 1: accepts directly and renders in color.
	waitFor(t, "color client delivery", func() bool {
		st, err := colorClient.Viewer().Stats("fig3")
		return err == nil && st.PacketsAccepted == 16
	})
	cres, err := colorClient.Viewer().RenderColor("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Lossless || !cres.Image.Equal(im) {
		t.Error("color client should render the original exactly")
	}

	// Client 3: accepts with a transformation (grayscale rendition).
	waitFor(t, "transform client delivery", func() bool {
		st, err := bwTransform.Viewer().Stats("fig3")
		return err == nil && st.PacketsAccepted == 16
	})
	gres, err := bwTransform.Viewer().Render("fig3")
	if err != nil {
		t.Fatal(err)
	}
	want := im.Luma()
	want.Clamp8()
	if !gres.Image.Equal(want) {
		t.Error("transform client should see the exact grayscale rendition")
	}

	// Client 2: rejects — never receives anything.
	time.Sleep(50 * time.Millisecond)
	if _, err := bwOnly.Viewer().Stats("fig3"); err == nil {
		t.Error("B/W-only client received the color stream")
	}
	if st := bwOnly.Stats(); st.EventsFiltered == 0 {
		t.Error("B/W-only client filtered nothing")
	}
}
