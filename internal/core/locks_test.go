package core

import (
	"testing"

	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
)

func lockRig(t *testing.T) (*Coordinator, *Client, *Client) {
	t.Helper()
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 61})
	t.Cleanup(net.Close)
	cc, _ := net.Attach("coordinator")
	coord := NewCoordinator(cc, session.Group{Objective: "locks"})
	t.Cleanup(func() { coord.Close() })
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	t.Cleanup(func() { a.Close(); b.Close() })
	return coord, a, b
}

func waitLock(t *testing.T, c *Client, object string, want LockStatus) {
	t.Helper()
	waitFor(t, string(want)+" on "+object, func() bool {
		return c.LockState(object) == want
	})
}

func TestDistributedLockGrantAndQueue(t *testing.T) {
	_, a, b := lockRig(t)

	if a.LockState("img-1") != LockNone {
		t.Fatal("fresh state should be none")
	}
	if err := a.RequestLock("coordinator", "img-1"); err != nil {
		t.Fatal(err)
	}
	waitLock(t, a, "img-1", LockGranted)

	// Contention: bob queues behind alice.
	if err := b.RequestLock("coordinator", "img-1"); err != nil {
		t.Fatal(err)
	}
	waitLock(t, b, "img-1", LockWaiting)

	// Release promotes bob.
	if err := a.ReleaseLock("coordinator", "img-1"); err != nil {
		t.Fatal(err)
	}
	waitLock(t, b, "img-1", LockGranted)
	if a.LockState("img-1") != LockNone {
		t.Errorf("alice still sees %q", a.LockState("img-1"))
	}

	// Independent object: no contention.
	if err := a.RequestLock("coordinator", "img-2"); err != nil {
		t.Fatal(err)
	}
	waitLock(t, a, "img-2", LockGranted)
}

func TestDistributedLockEvents(t *testing.T) {
	_, a, b := lockRig(t)

	a.RequestLock("coordinator", "doc")
	waitLock(t, a, "doc", LockGranted)
	b.RequestLock("coordinator", "doc")
	waitLock(t, b, "doc", LockWaiting)

	// Drain bob's events: pending then waiting (with holder), then
	// granted after alice releases.
	var seen []LockEvent
	collect := func(n int) {
		t.Helper()
		for len(seen) < n {
			select {
			case ev := <-b.LockEvents():
				seen = append(seen, ev)
			default:
				return
			}
		}
	}
	collect(2)
	if len(seen) < 2 || seen[0].Status != LockPending || seen[1].Status != LockWaiting {
		t.Fatalf("events so far: %+v", seen)
	}
	if seen[1].Holder != "alice" {
		t.Errorf("waiting event holder = %q", seen[1].Holder)
	}

	a.ReleaseLock("coordinator", "doc")
	waitLock(t, b, "doc", LockGranted)
}

func TestReleaseByNonHolderIgnored(t *testing.T) {
	coord, a, b := lockRig(t)
	a.RequestLock("coordinator", "x")
	waitLock(t, a, "x", LockGranted)

	// Bob releasing a lock he does not hold changes nothing at the
	// coordinator.
	if err := b.ReleaseLock("coordinator", "x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "coordinator still sees alice", func() bool {
		return coord.locks.Holder("x") == "alice"
	})
}
