package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
)

// TestLockStressMutualExclusion: many clients hammer one object; at
// most one holds the lock at any time, every requester eventually gets
// it, and the critical-section counter shows no lost updates.
func TestLockStressMutualExclusion(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 71})
	defer net.Close()
	cc, _ := net.Attach("coordinator")
	coord := NewCoordinator(cc, session.Group{Objective: "stress"})
	defer coord.Close()

	const nClients = 6
	const perClient = 5

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := net.Attach(fmt.Sprintf("client-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewClient(conn, Config{})
		defer clients[i].Close()
	}

	var mu sync.Mutex
	inCritical := 0
	maxConcurrent := 0
	total := 0

	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				if err := c.RequestLock("coordinator", "hot"); err != nil {
					t.Errorf("%s: request: %v", c.ID(), err)
					return
				}
				deadline := time.Now().Add(5 * time.Second)
				for c.LockState("hot") != LockGranted {
					if time.Now().After(deadline) {
						t.Errorf("%s: starved waiting for lock", c.ID())
						return
					}
					time.Sleep(time.Millisecond)
				}
				mu.Lock()
				inCritical++
				if inCritical > maxConcurrent {
					maxConcurrent = inCritical
				}
				total++
				mu.Unlock()

				time.Sleep(time.Millisecond) // hold briefly

				mu.Lock()
				inCritical--
				mu.Unlock()
				if err := c.ReleaseLock("coordinator", "hot"); err != nil {
					t.Errorf("%s: release: %v", c.ID(), err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if maxConcurrent != 1 {
		t.Errorf("mutual exclusion violated: %d concurrent holders", maxConcurrent)
	}
	if total != nClients*perClient {
		t.Errorf("critical sections = %d, want %d", total, nClients*perClient)
	}
}
