package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
)

// chaosNet is a repair-enabled topology: an archiving coordinator,
// dedicated senders and pure-receiver replicas.  Fault injection is
// applied only on the sender→replica links; the links into the
// coordinator stay clean (the archive must hear everything to answer
// NACKs) as do the replay links back out.
type chaosNet struct {
	net      *transport.SimNet
	coord    *Coordinator
	senders  []*Client
	replicas []*Client
}

func newChaosNet(t *testing.T, seed int64, nSenders, nReplicas int, link transport.Link) *chaosNet {
	t.Helper()
	net := transport.NewSimNet(transport.SimNetConfig{Seed: seed})
	t.Cleanup(net.Close)
	conn, err := net.Attach("coordinator")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(conn, session.Group{Objective: "chaos-session"})
	t.Cleanup(func() { coord.Close() })

	cn := &chaosNet{net: net, coord: coord}
	for i := 0; i < nSenders; i++ {
		c, err := net.Attach(fmt.Sprintf("sender-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		s := NewClient(c, Config{})
		t.Cleanup(func() { s.Close() })
		cn.senders = append(cn.senders, s)
	}
	for i := 0; i < nReplicas; i++ {
		c, err := net.Attach(fmt.Sprintf("replica-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		r := NewClient(c, Config{Repair: &RepairOptions{
			Coordinator:  "coordinator",
			StallTimeout: 30 * time.Millisecond,
			Interval:     8 * time.Millisecond,
			MaxRetries:   10,
			Seed:         seed + int64(i),
		}})
		t.Cleanup(func() { r.Close() })
		cn.replicas = append(cn.replicas, r)
	}
	cn.setSenderReplicaLinks(link)
	return cn
}

// setSenderReplicaLinks (re)configures every sender→replica directed
// link; pass the zero Link to heal.
func (cn *chaosNet) setSenderReplicaLinks(link transport.Link) {
	for _, s := range cn.senders {
		for _, r := range cn.replicas {
			cn.net.SetLink(s.ID(), r.ID(), link)
		}
	}
}

// senderLines extracts the texts a replica applied from one sender, in
// applied order.
func senderLines(r *Client, sender string) []string {
	var out []string
	for _, l := range r.Chat().Lines() {
		if l.Sender == sender {
			out = append(out, l.Text)
		}
	}
	return out
}

// assertConverged waits until every replica's applied per-sender chat
// sequence equals exactly what that sender sent — same order, zero
// gaps, zero duplicates — i.e. the replica converged to the
// coordinator's archive.
func assertConverged(t *testing.T, cn *chaosNet, want map[string][]string) {
	t.Helper()
	equal := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, r := range cn.replicas {
		for sender, lines := range want {
			r, sender, lines := r, sender, lines
			waitFor(t, fmt.Sprintf("%s converging on %s", r.ID(), sender), func() bool {
				return equal(senderLines(r, sender), lines)
			})
		}
	}
}

// TestRepairChaosMatrix drives the gap-repair loop through the fault
// matrix: loss, duplication, jitter-induced reordering, and their
// combination, each on a seeded SimNet.  Every replica must converge
// to each sender's exact event sequence.
func TestRepairChaosMatrix(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		link transport.Link
	}{
		{"loss", 101, transport.Link{Loss: 0.3}},
		{"duplicate", 102, transport.Link{Duplicate: 0.5}},
		{"jitter", 103, transport.Link{Jitter: 15 * time.Millisecond}},
		{"loss+duplicate+jitter", 104, transport.Link{Loss: 0.25, Duplicate: 0.3, Jitter: 10 * time.Millisecond}},
	}
	const nMsgs = 25
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cn := newChaosNet(t, tc.seed, 2, 2, tc.link)
			want := make(map[string][]string)
			for i := 0; i < nMsgs; i++ {
				for j, s := range cn.senders {
					text := fmt.Sprintf("%s-s%d-%d", tc.name, j, i)
					if err := s.Say(text, ""); err != nil {
						t.Fatal(err)
					}
					want[s.ID()] = append(want[s.ID()], text)
				}
				time.Sleep(2 * time.Millisecond)
			}
			// Heal, then send a marker per sender: tail loss is invisible
			// until a later event parks behind the gap, so the marker is
			// what lets the repair loop see (and close) trailing gaps.
			cn.setSenderReplicaLinks(transport.Link{})
			for j, s := range cn.senders {
				text := fmt.Sprintf("%s-s%d-done", tc.name, j)
				if err := s.Say(text, ""); err != nil {
					t.Fatal(err)
				}
				want[s.ID()] = append(want[s.ID()], text)
			}

			assertConverged(t, cn, want)
			waitFor(t, "coordinator archive", func() bool {
				return cn.coord.ArchivedEvents() == len(cn.senders)*(nMsgs+1)
			})
		})
	}
}

// TestRepairHealedPartition is the acceptance scenario: Loss=0.3 on
// the sender→replica links plus a 2s partition of sender-0 from both
// replicas.  After the partition heals, every replica converges to the
// coordinator's archive, and the repair counters appear in the
// /metrics exposition.
func TestRepairHealedPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("2s partition window")
	}
	before := metrics.Counters()

	cn := newChaosNet(t, 200, 2, 2, transport.Link{Loss: 0.3})
	for _, r := range cn.replicas {
		cn.net.Partition(cn.senders[0].ID(), r.ID(), true)
	}

	want := make(map[string][]string)
	say := func(j int, text string) {
		t.Helper()
		if err := cn.senders[j].Say(text, ""); err != nil {
			t.Fatal(err)
		}
		want[cn.senders[j].ID()] = append(want[cn.senders[j].ID()], text)
	}
	// ~2s of traffic while sender-0 is partitioned from the replicas
	// (the coordinator still hears everything).
	const nMsgs = 25
	start := time.Now()
	for i := 0; i < nMsgs; i++ {
		say(0, fmt.Sprintf("part-s0-%d", i))
		say(1, fmt.Sprintf("part-s1-%d", i))
		time.Sleep(80 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		time.Sleep(2*time.Second - elapsed)
	}

	// Heal everything and mark the stream tails.
	for _, r := range cn.replicas {
		cn.net.Partition(cn.senders[0].ID(), r.ID(), false)
	}
	cn.setSenderReplicaLinks(transport.Link{})
	say(0, "part-s0-done")
	say(1, "part-s1-done")

	assertConverged(t, cn, want)
	waitFor(t, "coordinator archive", func() bool {
		return cn.coord.ArchivedEvents() == 2*(nMsgs+1)
	})

	after := metrics.Counters()
	if after[metrics.CtrRepairRequests] <= before[metrics.CtrRepairRequests] {
		t.Error("no repair requests issued during a 2s partition with 30% loss")
	}
	if after[metrics.CtrRepairSuccess] <= before[metrics.CtrRepairSuccess] {
		t.Error("no repairs recorded despite convergence")
	}

	// The counters must be visible through the exposition endpoint.
	var sb strings.Builder
	if err := obs.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aqos_repair_requests", "aqos_repair_success", "aqos_repair_abandoned"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("/metrics exposition missing %s", name)
		}
	}
}

// TestRepairAbandonsUnrepairableGap exercises graceful degradation:
// with no coordinator to answer NACKs, a deterministic gap exhausts
// the retry budget, is skipped, and delivery resumes.
func TestRepairAbandonsUnrepairableGap(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 300})
	t.Cleanup(net.Close)
	before := metrics.Counters()

	sc, err := net.Attach("alice")
	if err != nil {
		t.Fatal(err)
	}
	sender := NewClient(sc, Config{})
	defer sender.Close()

	rc, err := net.Attach("replica")
	if err != nil {
		t.Fatal(err)
	}
	// The configured coordinator does not exist: every repair request
	// fails, so the gap can only be abandoned.
	replica := NewClient(rc, Config{Repair: &RepairOptions{
		Coordinator:  "coordinator",
		StallTimeout: 20 * time.Millisecond,
		Interval:     5 * time.Millisecond,
		MaxRetries:   2,
		Seed:         300,
	}})
	defer replica.Close()

	// Deterministic gap: the first message is sent into a down link.
	net.SetLink("alice", "replica", transport.Link{Down: true})
	if err := sender.Say("lost forever", ""); err != nil {
		t.Fatal(err)
	}
	net.SetLink("alice", "replica", transport.Link{})
	if err := sender.Say("parked behind the gap", ""); err != nil {
		t.Fatal(err)
	}

	// The second message parks, the repair loop burns its budget, the
	// gap is abandoned and delivery resumes.
	waitFor(t, "abandoned gap released", func() bool {
		return replica.Chat().Len() == 1
	})
	if got := replica.Chat().Lines()[0].Text; got != "parked behind the gap" {
		t.Errorf("released line = %q", got)
	}
	st := replica.RepairStatus()["alice"]
	if st.Abandoned != 1 {
		t.Errorf("abandoned = %d, want 1", st.Abandoned)
	}
	if st.Requests == 0 {
		t.Error("no requests issued before abandoning")
	}
	after := metrics.Counters()
	if after[metrics.CtrRepairAbandoned] <= before[metrics.CtrRepairAbandoned] {
		t.Error("abandon not counted in process metrics")
	}

	// The stream stays usable after the skip.
	if err := sender.Say("life goes on", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-abandon delivery", func() bool {
		return replica.Chat().Len() == 2
	})
}

// TestCoordinatorDuplicateArchiveRegression injects heavy frame
// duplication on the sender→coordinator link: every event must be
// archived exactly once (the straggler path must not re-archive
// duplicates of already-sequenced frames).
func TestCoordinatorDuplicateArchiveRegression(t *testing.T) {
	net, coord := newCoordinatedNet(t)
	before := metrics.Counters()
	ca, err := net.Attach("alice")
	if err != nil {
		t.Fatal(err)
	}
	a := NewClient(ca, Config{})
	defer a.Close()
	net.SetLink("alice", "coordinator", transport.Link{Duplicate: 1})

	const n = 20
	for i := 0; i < n; i++ {
		if err := a.Say(fmt.Sprintf("dup line %d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "archive", func() bool { return coord.ArchivedEvents() == n })
	// Let the duplicate copies land too, then re-check: the count must
	// not keep growing.
	time.Sleep(100 * time.Millisecond)
	if got := coord.ArchivedEvents(); got != n {
		t.Errorf("archived = %d after duplicates, want %d", got, n)
	}
	after := metrics.Counters()
	if after[metrics.CtrArchiveDupDrops] <= before[metrics.CtrArchiveDupDrops] {
		t.Error("duplicate drops not counted")
	}
}
