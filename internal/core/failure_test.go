package core

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestImageShareOverLossyLink: with 20 % loss, the receiver still
// renders a usable image from whatever contiguous prefix survived —
// the progressive stream's whole point.
func TestImageShareOverLossyLink(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 21})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	net.SetLink("alice", "bob", transport.Link{Loss: 0.2})

	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	defer a.Close()
	defer b.Close()

	im := wavelet.Medical(64, 64, 2)
	obj, err := media.EncodeImage(im, "lossy scan")
	if err != nil {
		t.Fatal(err)
	}
	// Share several images: at 20% loss at least one share will lose
	// packets, and every received prefix must still render.
	for i := 0; i < 5; i++ {
		if err := a.ShareImage(fmt.Sprintf("img-%d", i), obj, ""); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	rendered := 0
	var lostSomething bool
	for _, object := range b.Viewer().Objects() {
		st, err := b.Viewer().Stats(object)
		if err != nil {
			continue
		}
		if st.PacketsReceived < st.TotalPackets {
			lostSomething = true
		}
		res, err := b.Viewer().Render(object)
		if err != nil {
			t.Fatalf("%s: render: %v", object, err)
		}
		if res.Image.W != 64 || res.Image.H != 64 {
			t.Fatalf("%s: bad render size", object)
		}
		rendered++
	}
	if rendered == 0 {
		t.Fatal("nothing rendered at all")
	}
	if !lostSomething {
		t.Log("note: no loss observed this run (seed-dependent); prefix path untested here")
	}
}

// TestChatOverDuplicatingReorderingLink: duplicated frames must not
// duplicate chat lines beyond the duplicates themselves being separate
// sends... chat is idempotent per message only at the transport level,
// so the assertion is that nothing crashes and ordering state stays
// sane under duplication + jitter.
func TestChatOverDuplicatingReorderingLink(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 22})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	net.SetLink("alice", "bob", transport.Link{
		Duplicate: 0.5,
		Jitter:    3 * time.Millisecond,
	})

	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	defer a.Close()
	defer b.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if err := a.Say(fmt.Sprintf("line %d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	got := b.Chat().Len()
	if got < n {
		t.Errorf("received %d of %d lines", got, n)
	}
	// Duplicates may add lines (chat is an append log) but never lose
	// any, and the decode-error counter must stay clean.
	if st := b.Stats(); st.DecodeErrors != 0 {
		t.Errorf("decode errors under duplication: %d", st.DecodeErrors)
	}
}

// TestAdaptOnceSurvivesSNMPTimeouts: a flaky agent (dropped requests)
// produces an error from AdaptOnce, and the client keeps its previous
// decision rather than flailing.
func TestAdaptOnceSurvivesSNMPTimeouts(t *testing.T) {
	host := newFlakyHost(t)
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 23})
	defer net.Close()
	conn, _ := net.Attach("c")
	c := NewClient(conn, Config{Monitor: host.monitor})
	defer c.Close()

	// First sample succeeds and constrains the budget.
	host.dropNext(0)
	host.set(90, 80)
	d1, err := c.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	constrained := d1.EffectiveBudget(16)
	if constrained >= 16 {
		t.Fatalf("budget = %d, want constrained", constrained)
	}

	// Now the agent goes dark: AdaptOnce errors, decision unchanged.
	host.dropNext(1000)
	if _, err := c.AdaptOnce(); err == nil {
		t.Fatal("expected sampling error")
	}
	if got := c.LastDecision().EffectiveBudget(16); got != constrained {
		t.Errorf("decision changed on failed sample: %d -> %d", constrained, got)
	}
}

// TestImageShareAcrossPartitionHeal: packets lost to a partition are
// gone (no retransmission — real-time collaboration), but traffic
// after the heal flows again.
func TestImageShareAcrossPartitionHeal(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 24})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	defer a.Close()
	defer b.Close()

	net.Partition("alice", "bob", true)
	if err := a.Say("into the void", ""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if b.Chat().Len() != 0 {
		t.Fatal("message crossed a partition")
	}

	net.Partition("alice", "bob", false)
	if err := a.Say("after heal", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-heal delivery", func() bool { return b.Chat().Len() == 1 })
	if b.Chat().Lines()[0].Text != "after heal" {
		t.Errorf("post-heal line: %+v", b.Chat().Lines())
	}
}
