package core

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestSenderAdaptsToReceiverReports: after a receiver reports heavy
// loss, the sender transmits fewer packets per share — reducing the
// information transferred rather than wasting the path.
func TestSenderAdaptsToReceiverReports(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 121})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	net.SetLink("alice", "bob", transport.Link{Loss: 0.5})

	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	defer a.Close()
	defer b.Close()

	obj, err := media.EncodeImage(wavelet.Medical(64, 64, 13), "x")
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: no feedback yet; alice sends everything.
	for i := 0; i < 4; i++ {
		if err := a.ShareImage(fmt.Sprintf("r1-%d", i), obj, ""); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)

	// Bob reports his reception quality (the report itself crosses the
	// lossy link; retry until it lands).
	deadline := time.Now().Add(3 * time.Second)
	for a.WorstPeerLoss() == 0 && time.Now().Before(deadline) {
		if err := b.SendReceptionReports(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	worst := a.WorstPeerLoss()
	if worst <= 0 {
		t.Skip("no loss registered in reports this run")
	}

	// Round 2: alice truncates her transmissions.
	budget := a.sendBudget(16)
	if budget >= 16 {
		t.Fatalf("send budget %d despite %.0f%% reported loss", budget, worst*100)
	}
	if err := a.ShareImage("r2", obj, ""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	st, err := b.Viewer().Stats("r2")
	if err != nil {
		t.Skip("announce lost this run")
	}
	if st.PacketsReceived > budget {
		t.Errorf("bob received %d packets, sender budget was %d", st.PacketsReceived, budget)
	}
	// The sender's own local viewer still has everything.
	ownStats, _ := a.Viewer().Stats("r2")
	if ownStats.PacketsAccepted != 16 {
		t.Errorf("sender's local state truncated: %+v", ownStats)
	}
}

// TestSenderAdaptationCanBeDisabled: with the flag off, reports are
// recorded but transmissions stay complete.
func TestSenderAdaptationCanBeDisabled(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 122})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	a := NewClient(ca, Config{DisableSenderAdaptation: true})
	b := NewClient(cb, Config{})
	defer a.Close()
	defer b.Close()

	// Inject a severe report directly.
	a.reports.record("bob", 0.9)
	if got := a.sendBudget(16); got != 16 {
		t.Errorf("disabled adaptation budget = %d, want 16", got)
	}

	obj, err := media.EncodeImage(wavelet.Circles(32, 32), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("full", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "full delivery", func() bool {
		st, err := b.Viewer().Stats("full")
		return err == nil && st.PacketsReceived == 16
	})
}

// TestReportStateExpiry: stale reports stop throttling the sender.
func TestReportStateExpiry(t *testing.T) {
	rs := newReportState(nil)
	rs.record("p", 0.8)
	if rs.worst() != 0.8 {
		t.Fatalf("worst = %g", rs.worst())
	}
	// Force expiry.
	rs.mu.Lock()
	rs.expires["p"] = time.Now().Add(-time.Second)
	rs.mu.Unlock()
	if rs.worst() != 0 {
		t.Errorf("expired report still counted: %g", rs.worst())
	}
	// Multiple reporters: the worst wins.
	rs.record("p1", 0.2)
	rs.record("p2", 0.6)
	rs.record("p3", 0.4)
	if rs.worst() != 0.6 {
		t.Errorf("worst = %g, want 0.6", rs.worst())
	}
}

// TestRTCPReportAboutOthersIgnored: a report about a different sender
// does not throttle this client.
func TestRTCPReportAboutOthersIgnored(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 123})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	cc, _ := net.Attach("carol")
	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	c := NewClient(cc, Config{})
	defer a.Close()
	defer b.Close()
	defer c.Close()

	obj, err := media.EncodeImage(wavelet.Circles(32, 32), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Carol receives data from both alice and bob, then reports.
	if err := a.ShareImage("ia", obj, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.ShareImage("ib", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "carol's data", func() bool { return c.Stats().DataPackets == 32 })
	if err := c.SendReceptionReports(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Clean links: zero loss reported either way.
	if a.WorstPeerLoss() != 0 || b.WorstPeerLoss() != 0 {
		t.Errorf("clean links reported loss: %g, %g", a.WorstPeerLoss(), b.WorstPeerLoss())
	}
}
