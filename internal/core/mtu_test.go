package core

import (
	"strings"
	"testing"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestLargeEventFragmentsAcrossMTU: a media event far larger than the
// configured MTU crosses the substrate transparently via envelope
// fragmentation.
func TestLargeEventFragmentsAcrossMTU(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 111})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	// Tiny MTU forces fragmentation of nearly everything.
	a := NewClient(ca, Config{MTU: 256})
	b := NewClient(cb, Config{MTU: 256})
	defer a.Close()
	defer b.Close()

	// A chat line bigger than the MTU.
	long := strings.Repeat("the quick brown fox ", 200) // ~4 KB
	if err := a.Say(long, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fragmented chat", func() bool { return b.Chat().Len() == 1 })
	if b.Chat().Lines()[0].Text != long {
		t.Error("fragmented chat line corrupted")
	}

	// A full image share: every announce/data message re-fragments.
	im := wavelet.Medical(96, 96, 7)
	obj, err := media.EncodeImage(im, "large share")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("big-1", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fragmented image", func() bool {
		st, err := b.Viewer().Stats("big-1")
		return err == nil && st.PacketsAccepted == 16
	})
	res, err := b.Viewer().Render("big-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless || !res.Image.Equal(im) {
		t.Error("fragmented image share should still be lossless")
	}
	if st := b.Stats(); st.DecodeErrors != 0 {
		t.Errorf("decode errors under fragmentation: %d", st.DecodeErrors)
	}
}
