package core

import (
	"testing"

	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/transport"
)

// TestBandwidthTiersDriveModality: the SNMP-observed bandwidth selects
// the preferred modality, end to end: plenty → unchanged; below the
// sketch tier → sketch; below the text tier → text.  The preference is
// folded into the profile, where a base station (or peer) can see it.
func TestBandwidthTiersDriveModality(t *testing.T) {
	host := hostagent.NewHost("h")
	monitor := &hostagent.Monitor{
		Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: hostagent.NewAgent(host)}, snmp.V2c, ""),
	}
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 91})
	defer net.Close()
	conn, _ := net.Attach("c")
	c := NewClient(conn, Config{
		Monitor:       monitor,
		MonitorParams: []string{hostagent.ParamCPULoad, hostagent.ParamBandwidth},
	})
	defer c.Close()
	host.Set(hostagent.ParamCPULoad, 10)

	cases := []struct {
		bps  float64
		want media.Kind
	}{
		{1_000_000, ""},
		{40_000, media.KindSketch},
		{8_000, media.KindText},
	}
	for _, tc := range cases {
		host.Set(hostagent.ParamBandwidth, tc.bps)
		d, err := c.AdaptOnce()
		if err != nil {
			t.Fatal(err)
		}
		if d.Modality != tc.want {
			t.Errorf("bandwidth %g: modality %q, want %q", tc.bps, d.Modality, tc.want)
		}
		if tc.want != "" {
			if !c.Profile().Matches(selector.MustCompile(
				`modality == "` + string(tc.want) + `"`)) {
				t.Errorf("bandwidth %g: preference not in profile", tc.bps)
			}
		}
	}
}
