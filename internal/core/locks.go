package core

import (
	"sync"

	"adaptiveqos/internal/message"
	"adaptiveqos/internal/selector"
)

// Distributed concurrency control: clients request exclusive locks on
// shared objects from the session coordinator, which arbitrates with a
// FIFO queue (session.ObjectLocks).  When two users select the same
// information for sharing at the same time, arbitration ensures no
// information is lost: one edits, the other queues.

// Lock-protocol control vocabulary.
const (
	ctrlLockRequest = "lock-request"
	ctrlLockRelease = "lock-release"
	ctrlLockGrant   = "lock-grant"
	ctrlLockWait    = "lock-wait"
	attrObject      = "object"
	attrHolder      = "holder"
)

// LockStatus is a client's view of one object lock.
type LockStatus string

// Lock states as seen by a client.
const (
	// LockNone: this client holds no claim on the object.
	LockNone LockStatus = ""
	// LockPending: a request is in flight.
	LockPending LockStatus = "pending"
	// LockWaiting: the coordinator queued this client behind a holder.
	LockWaiting LockStatus = "waiting"
	// LockGranted: this client holds the lock.
	LockGranted LockStatus = "granted"
)

// LockEvent notifies a lock-state change.
type LockEvent struct {
	Object string
	Status LockStatus
	// Holder is the current holder when Status is LockWaiting.
	Holder string
}

// lockTable is the client-side lock view.
type lockTable struct {
	mu     sync.Mutex
	states map[string]LockStatus
	events chan LockEvent
}

func newLockTable() *lockTable {
	return &lockTable{
		states: make(map[string]LockStatus),
		events: make(chan LockEvent, 32),
	}
}

func (lt *lockTable) set(object string, st LockStatus, holder string) {
	lt.mu.Lock()
	if st == LockNone {
		delete(lt.states, object)
	} else {
		lt.states[object] = st
	}
	lt.mu.Unlock()
	select {
	case lt.events <- LockEvent{Object: object, Status: st, Holder: holder}:
	default: // slow consumer: state remains queryable via LockState
	}
}

func (lt *lockTable) get(object string) LockStatus {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.states[object]
}

// LockState reports this client's standing on an object lock.
func (c *Client) LockState(object string) LockStatus {
	return c.locks.get(object)
}

// LockEvents delivers lock-state change notifications.  Events are
// dropped for slow consumers; LockState always has the latest truth.
func (c *Client) LockEvents() <-chan LockEvent {
	return c.locks.events
}

func (c *Client) sendLockControl(coordinator, ctrl, object string) error {
	m := &message.Message{
		Kind:      message.KindControl,
		Sender:    c.ID(),
		Seq:       c.ctrlSeq.Add(1),
		Timestamp: c.clk.Now(),
		Attrs: selector.Attributes{
			attrCtrl:   selector.S(ctrl),
			attrObject: selector.S(object),
		},
	}
	return c.unicastMessage(coordinator, m)
}

// RequestLock asks the coordinator for the exclusive lock on object.
// The outcome arrives asynchronously (LockEvents / LockState): either
// LockGranted or LockWaiting behind the current holder.
func (c *Client) RequestLock(coordinator, object string) error {
	c.locks.set(object, LockPending, "")
	return c.sendLockControl(coordinator, ctrlLockRequest, object)
}

// ReleaseLock gives the lock back; the coordinator promotes the first
// waiter, if any.
func (c *Client) ReleaseLock(coordinator, object string) error {
	c.locks.set(object, LockNone, "")
	return c.sendLockControl(coordinator, ctrlLockRelease, object)
}

// handleLockControl processes coordinator → client lock notifications.
func (c *Client) handleLockControl(m *message.Message) bool {
	ctrl, ok := m.Attr(attrCtrl)
	if !ok {
		return false
	}
	object, _ := m.Attr(attrObject)
	switch ctrl.Str() {
	case ctrlLockGrant:
		c.locks.set(object.Str(), LockGranted, c.ID())
		return true
	case ctrlLockWait:
		holder, _ := m.Attr(attrHolder)
		c.locks.set(object.Str(), LockWaiting, holder.Str())
		return true
	default:
		return false
	}
}
