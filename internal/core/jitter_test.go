package core

import (
	"testing"
	"time"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestJitterEntersContractEvaluation: a QoS contract bounding jitter
// is evaluated against the RTP-observed jitter during adaptation.
func TestJitterEntersContractEvaluation(t *testing.T) {
	contract := profile.MustContract("strict",
		profile.Constraint{Param: "jitter", Min: 0, Max: 1000, Hard: true})

	net := transport.NewSimNet(transport.SimNetConfig{Seed: 131})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	// Jittery link so arrival spacing varies.
	net.SetLink("alice", "bob", transport.Link{Jitter: 15 * time.Millisecond})

	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{Contract: contract})
	defer a.Close()
	defer b.Close()

	obj, err := media.EncodeImage(wavelet.Medical(64, 64, 17), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("jittery", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "packets", func() bool { return b.Stats().DataPackets >= 14 })

	d, err := b.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	// The contract saw a jitter measurement (whatever its value: the
	// parameter must not be "missing").
	for _, missing := range d.Contract.Missing {
		if missing == "jitter" {
			t.Fatalf("jitter not observed: %+v", d.Contract)
		}
	}
	if _, ok := b.observedJitter(); !ok {
		t.Fatal("no jitter observation despite received data")
	}

	// With no data streams at all the parameter is missing and a hard
	// jitter contract is unsatisfied (fail-closed).
	cc, _ := net.Attach("carol")
	c := NewClient(cc, Config{Contract: contract})
	defer c.Close()
	d, err = c.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if d.Contract.Satisfied {
		t.Error("contract satisfied without any jitter observation")
	}
}
