package core

import (
	"sync/atomic"
	"testing"

	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/snmp"
)

// flakyHost is a test helper: a simulated host whose SNMP transport
// can be told to drop the next N requests.
type flakyHost struct {
	host    *hostagent.Host
	monitor *hostagent.Monitor
	drops   atomic.Int64
}

func newFlakyHost(t *testing.T) *flakyHost {
	t.Helper()
	f := &flakyHost{host: hostagent.NewHost("flaky")}
	rt := &snmp.AgentRoundTripper{
		Agent: hostagent.NewAgent(f.host),
		Drop: func() bool {
			if f.drops.Load() > 0 {
				f.drops.Add(-1)
				return true
			}
			return false
		},
	}
	f.monitor = &hostagent.Monitor{Client: snmp.NewClient(rt, snmp.V2c, "public")}
	return f
}

func (f *flakyHost) dropNext(n int64) { f.drops.Store(n) }

func (f *flakyHost) set(cpu, faults float64) {
	f.host.Set(hostagent.ParamCPULoad, cpu)
	f.host.Set(hostagent.ParamPageFaults, faults)
}
