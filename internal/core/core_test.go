package core

import (
	"testing"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// waitFor polls cond until it is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func newPair(t *testing.T) (*Client, *Client, *transport.SimNet) {
	t.Helper()
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 1})
	t.Cleanup(net.Close)
	ca, err := net.Attach("alice")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := net.Attach("bob")
	if err != nil {
		t.Fatal(err)
	}
	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, net
}

func TestChatExchange(t *testing.T) {
	a, b, _ := newPair(t)
	// Bob is interested in text.
	b.Profile().SetInterest("media", selector.S("text"))

	if err := a.Say("hello collaboration", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bob's chat line", func() bool { return b.Chat().Len() == 1 })
	lines := b.Chat().Lines()
	if lines[0].Sender != "alice" || lines[0].Text != "hello collaboration" {
		t.Errorf("line: %+v", lines[0])
	}
	// The sender's own repository has it too.
	if a.Chat().Len() != 1 {
		t.Error("sender state repository missing local action")
	}
}

func TestSemanticFiltering(t *testing.T) {
	a, b, _ := newPair(t)
	b.Profile().SetInterest("media", selector.S("text"))
	b.Profile().SetInterest("topic", selector.S("logistics"))

	// Addressed to medical staff only: bob must filter it out.
	if err := a.Say("confidential", `topic == "medical"`); err != nil {
		t.Fatal(err)
	}
	// Addressed to logistics: bob accepts.
	if err := a.Say("trucks at gate 4", `topic == "logistics"`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "filtered + accepted", func() bool {
		st := b.Stats()
		return st.EventsFiltered == 1 && st.EventsReceived == 1
	})
	if b.Chat().Len() != 1 || b.Chat().Lines()[0].Text != "trucks at gate 4" {
		t.Errorf("chat: %+v", b.Chat().Lines())
	}
}

func TestWhiteboardExchange(t *testing.T) {
	a, b, _ := newPair(t)
	s := apps.Stroke{ID: 1, Color: 2, Width: 3,
		Points: []apps.Point{{X: 0, Y: 0}, {X: 5, Y: 5}}}
	if err := a.Draw(s, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bob's stroke", func() bool { return b.Whiteboard().Len() == 1 })
	got := b.Whiteboard().Strokes()[0]
	if got.ID != 1 || len(got.Points) != 2 {
		t.Errorf("stroke: %+v", got)
	}
}

func TestImageShareFullQuality(t *testing.T) {
	a, b, _ := newPair(t)
	im := wavelet.Medical(64, 64, 3)
	obj, err := media.EncodeImage(im, "chest scan")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("img-1", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all packets", func() bool {
		st, err := b.Viewer().Stats("img-1")
		return err == nil && st.PacketsAccepted == 16
	})
	res, err := b.Viewer().Render("img-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless || !res.Image.Equal(im) {
		t.Error("unconstrained share should arrive losslessly")
	}
	if st := b.Stats(); st.DataPackets != 16 {
		t.Errorf("data packets = %d", st.DataPackets)
	}
	if rep, ok := b.ReceptionReport("alice"); !ok || rep.Received != 16 || rep.Lost != 0 {
		t.Errorf("rtp report: %+v ok=%v", rep, ok)
	}
}

// TestAdaptationLoopAgainstSNMP runs the full wired-client pipeline of
// the paper's first experiments: host workload → embedded SNMP agent →
// monitor → inference → image-viewer budget.
func TestAdaptationLoopAgainstSNMP(t *testing.T) {
	host := hostagent.NewHost("wired-host")
	agent := hostagent.NewAgent(host)
	mon := &hostagent.Monitor{
		Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: agent}, snmp.V2c, "public"),
	}

	net := transport.NewSimNet(transport.SimNetConfig{Seed: 2})
	defer net.Close()
	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("bob")
	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{Monitor: mon})
	defer a.Close()
	defer b.Close()

	im := wavelet.Medical(64, 64, 5)
	obj, err := media.EncodeImage(im, "scan")
	if err != nil {
		t.Fatal(err)
	}

	// Low load: everything accepted.
	host.Set(hostagent.ParamCPULoad, 20)
	host.Set(hostagent.ParamPageFaults, 10)
	d, err := b.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if d.EffectiveBudget(16) != 16 {
		t.Fatalf("light-load budget = %d", d.EffectiveBudget(16))
	}
	if err := a.ShareImage("img-light", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "light-load image", func() bool {
		st, err := b.Viewer().Stats("img-light")
		return err == nil && st.PacketsReceived == 16
	})
	st, _ := b.Viewer().Stats("img-light")
	if st.PacketsAccepted != 16 {
		t.Errorf("light-load accepted = %d", st.PacketsAccepted)
	}

	// Heavy load: the budget collapses and the viewer accepts less.
	host.Set(hostagent.ParamCPULoad, 95)
	host.Set(hostagent.ParamPageFaults, 90)
	d, err = b.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	heavy := d.EffectiveBudget(16)
	if heavy >= 4 {
		t.Fatalf("heavy-load budget = %d, want small", heavy)
	}
	if err := a.ShareImage("img-heavy", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "heavy-load image", func() bool {
		st, err := b.Viewer().Stats("img-heavy")
		return err == nil && st.PacketsReceived == 16
	})
	st, _ = b.Viewer().Stats("img-heavy")
	if st.PacketsAccepted != heavy {
		t.Errorf("heavy-load accepted = %d, want %d", st.PacketsAccepted, heavy)
	}
	// Quality degraded but the image still renders.
	res, err := b.Viewer().Render("img-heavy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Lossless && heavy < 16 {
		t.Error("partial acceptance cannot be lossless")
	}
	// The profile now carries the observed state, selectable by peers.
	if !b.Profile().Matches(selector.MustCompile(`state.cpu-load >= 95`)) {
		t.Error("state not folded into profile")
	}
	if d.Contract.Satisfied {
		// The default config has an empty contract; add one and re-check.
		t.Log("empty contract is always satisfied (expected)")
	}
}

func TestStartAdaptation(t *testing.T) {
	host := hostagent.NewHost("h")
	host.Set(hostagent.ParamCPULoad, 95)
	host.Set(hostagent.ParamPageFaults, 10)
	mon := &hostagent.Monitor{
		Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: hostagent.NewAgent(host)}, snmp.V2c, ""),
	}
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 3})
	defer net.Close()
	conn, _ := net.Attach("c")
	c := NewClient(conn, Config{Monitor: mon})
	defer c.Close()

	c.StartAdaptation(5 * time.Millisecond)
	waitFor(t, "periodic adaptation", func() bool {
		return c.LastDecision().EffectiveBudget(16) < 16
	})
}

func TestLamportClockAdvancesOnReceive(t *testing.T) {
	a, b, _ := newPair(t)
	for i := 0; i < 5; i++ {
		if err := a.Say("tick", ""); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "bob receives", func() bool { return b.Chat().Len() == 5 })
	if b.clock.Now() < 5 {
		t.Errorf("bob's clock = %d, want >= 5", b.clock.Now())
	}
}

func TestCloseSemantics(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 4})
	defer net.Close()
	conn, _ := net.Attach("x")
	c := NewClient(conn, Config{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := c.Say("after close", ""); err == nil {
		t.Error("send after close should fail")
	}
}

func TestMalformedTrafficCounted(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 5})
	defer net.Close()
	raw, _ := net.Attach("raw")
	conn, _ := net.Attach("c")
	c := NewClient(conn, Config{})
	defer c.Close()

	raw.Multicast([]byte("not a message"))
	waitFor(t, "decode error counted", func() bool { return c.Stats().DecodeErrors == 1 })
	if c.Stats().EventsReceived != 0 {
		t.Error("garbage counted as event")
	}
}
