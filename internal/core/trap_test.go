package core

import (
	"testing"

	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/transport"
)

// TestTrapDrivenAdaptation: a threshold trap from the host agent
// reconfigures the client immediately, with no polling involved.
func TestTrapDrivenAdaptation(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 41})
	defer net.Close()
	conn, _ := net.Attach("c")
	c := NewClient(conn, Config{})
	defer c.Close()

	host := hostagent.NewHost("h")
	host.Set(hostagent.ParamCPULoad, 40)
	notifier := snmp.NewNotifier("traps")
	notifier.AddSink(c) // the client is a TrapSink
	alarms := hostagent.NewAlarms(host, notifier)
	if err := alarms.Add(hostagent.Alarm{Param: hostagent.ParamCPULoad, Level: 90, Rising: true}); err != nil {
		t.Fatal(err)
	}

	// Quiet: no trap, decision unconstrained.
	if n, _ := alarms.Check(); n != 0 {
		t.Fatal("unexpected trap")
	}
	if got := c.LastDecision().EffectiveBudget(16); got != 16 {
		t.Fatalf("initial budget = %d", got)
	}

	// The host spikes; the alarm pushes a trap; the client adapts.
	host.Set(hostagent.ParamCPULoad, 97)
	if n, _ := alarms.Check(); n != 1 {
		t.Fatal("alarm did not fire")
	}
	d := c.LastDecision()
	if got := d.EffectiveBudget(16); got >= 16 {
		t.Errorf("budget after trap = %d, want constrained", got)
	}
	if c.Viewer().Budget() != d.EffectiveBudget(16) {
		t.Error("viewer budget not applied")
	}
	// The trapped value landed in the profile state.
	snap := c.Profile().Snapshot()
	if snap.State[hostagent.ParamCPULoad].Num() != 97 {
		t.Errorf("profile state: %v", snap.State)
	}
}

// TestTrapIgnoresGarbage: malformed and irrelevant traps are counted
// as errors or ignored without changing the decision.
func TestTrapIgnoresGarbage(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 42})
	defer net.Close()
	conn, _ := net.Attach("c")
	c := NewClient(conn, Config{})
	defer c.Close()

	before := c.LastDecision()

	c.Trap([]byte("not a trap"))
	if c.Stats().DecodeErrors != 1 {
		t.Errorf("garbage trap not counted: %+v", c.Stats())
	}

	// A GET message is not a trap.
	frame, err := snmp.EncodeMessage(&snmp.Message{
		Version: snmp.V2c,
		PDU: snmp.PDU{Type: snmp.GetRequest, RequestID: 1,
			VarBinds: []snmp.VarBind{{OID: snmp.MustOID("1.3.6"), Value: snmp.Null()}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Trap(frame)
	if c.Stats().DecodeErrors != 2 {
		t.Error("non-trap PDU not counted")
	}

	// A real trap about an unknown OID changes nothing.
	frame, err = snmp.EncodeMessage(&snmp.Message{
		Version: snmp.V2c,
		PDU: snmp.PDU{Type: snmp.TrapV2, RequestID: 2,
			VarBinds: []snmp.VarBind{{OID: snmp.MustOID("1.3.6.1.4.1.9.9.9.0"), Value: snmp.Gauge32(5)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Trap(frame)
	if got := c.LastDecision(); got.EffectiveBudget(16) != before.EffectiveBudget(16) {
		t.Error("irrelevant trap changed the decision")
	}
}
