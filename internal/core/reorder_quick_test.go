package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/message"
)

// TestQuickCoordinatorReorder: for any permutation of a sender's
// sequence numbers (starting at 1), the reorder stage releases them
// exactly once, in order.
func TestQuickCoordinatorReorder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60) // stay under the flush threshold
		c := &Coordinator{
			frames:  make(map[uint64]archivedFrame),
			streams: make(map[string]*senderStream),
		}
		perm := r.Perm(n)
		var released []uint32
		for _, i := range perm {
			m := &message.Message{Kind: message.KindEvent, Sender: "s", Seq: uint32(i + 1)}
			for _, of := range c.reorder(m, []byte{byte(i)}) {
				released = append(released, of.msg.Seq)
			}
		}
		if len(released) != n {
			t.Logf("seed %d: released %d of %d", seed, len(released), n)
			return false
		}
		for i, seq := range released {
			if seq != uint32(i+1) {
				t.Logf("seed %d: out of order at %d: %v", seed, i, released)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoordinatorReorderWithLoss: when sequence numbers are
// missing (lost frames), the flush path still releases everything that
// arrived, in ascending order, once the pending buffer overflows.
func TestQuickCoordinatorReorderWithLoss(t *testing.T) {
	f := func(seed int64) bool {
		_ = seed // the scenario is deterministic; quick just repeats it
		c := &Coordinator{
			frames:  make(map[uint64]archivedFrame),
			streams: make(map[string]*senderStream),
		}
		// Lose seq 1 so everything buffers until the flush threshold.
		n := maxStreamPending + 10
		var released []uint32
		for i := 2; i <= n+1; i++ {
			m := &message.Message{Kind: message.KindEvent, Sender: "s", Seq: uint32(i)}
			for _, of := range c.reorder(m, nil) {
				released = append(released, of.msg.Seq)
			}
		}
		if len(released) != n {
			t.Logf("seed %d: released %d of %d after flush", seed, len(released), n)
			return false
		}
		for i := 1; i < len(released); i++ {
			if released[i] <= released[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
