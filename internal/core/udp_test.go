package core

import (
	"testing"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// TestEndToEndOverUDP runs the framework over real UDP sockets on
// loopback: chat, semantic filtering and a full progressive image
// share — the deployment configuration rather than the simulator.
func TestEndToEndOverUDP(t *testing.T) {
	tr := transport.NewUDPTransport()
	ca, err := tr.Listen("alice", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := tr.Listen("bob", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := tr.Listen("carol", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	a := NewClient(ca, Config{})
	b := NewClient(cb, Config{})
	c := NewClient(cc, Config{})
	defer a.Close()
	defer b.Close()
	defer c.Close()

	b.Profile().SetInterest("team", selector.S("field"))
	c.Profile().SetInterest("team", selector.S("hq"))

	// Semantic filtering across real sockets.
	if err := a.Say("field only", `team == "field"`); err != nil {
		t.Fatal(err)
	}
	if err := a.Say("everyone", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bob's lines", func() bool { return b.Chat().Len() == 2 })
	waitFor(t, "carol filtered", func() bool {
		return c.Chat().Len() == 1 && c.Stats().EventsFiltered == 1
	})

	// Full image share over UDP.
	im := wavelet.Medical(64, 64, 8)
	obj, err := media.EncodeImage(im, "udp scan")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("udp-img", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "image over UDP", func() bool {
		st, err := b.Viewer().Stats("udp-img")
		return err == nil && st.PacketsAccepted == 16
	})
	res, err := b.Viewer().Render("udp-img")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless || !res.Image.Equal(im) {
		t.Error("image over UDP loopback should be lossless")
	}
}
