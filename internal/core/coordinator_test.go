package core

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

func newCoordinatedNet(t *testing.T) (*transport.SimNet, *Coordinator) {
	t.Helper()
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 51})
	t.Cleanup(net.Close)
	conn, err := net.Attach("coordinator")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(conn, session.Group{Objective: "test-session"})
	t.Cleanup(func() { coord.Close() })
	return net, coord
}

func TestCoordinatorArchivesAndReplays(t *testing.T) {
	net, coord := newCoordinatedNet(t)
	ca, _ := net.Attach("alice")
	a := NewClient(ca, Config{})
	defer a.Close()

	for i := 0; i < 3; i++ {
		if err := a.Say(fmt.Sprintf("history line %d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "archive", func() bool { return coord.ArchivedEvents() == 3 })
	if coord.Session().LastSeq() != 3 {
		t.Errorf("session seq = %d", coord.Session().LastSeq())
	}
	if !coord.Session().IsMember("alice") {
		t.Error("coordinator should auto-register observed senders")
	}

	// A late joiner requests the history and absorbs it.
	cb, _ := net.Attach("late-bob")
	b := NewClient(cb, Config{})
	defer b.Close()
	if b.Chat().Len() != 0 {
		t.Fatal("late joiner should start empty")
	}
	if err := b.RequestHistory("coordinator", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replayed history", func() bool { return b.Chat().Len() == 3 })
	lines := b.Chat().Lines()
	if lines[0].Sender != "alice" || lines[0].Text != "history line 0" {
		t.Errorf("replayed line: %+v", lines[0])
	}

	// Partial catch-up: only events after seq 2.
	cc, _ := net.Attach("later-carol")
	c := NewClient(cc, Config{})
	defer c.Close()
	if err := c.RequestHistory("coordinator", 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "partial history", func() bool { return c.Chat().Len() == 1 })
	if c.Chat().Lines()[0].Text != "history line 2" {
		t.Errorf("partial replay: %+v", c.Chat().Lines())
	}
}

func TestCoordinatorReplayRespectsSemanticFilter(t *testing.T) {
	net, coord := newCoordinatedNet(t)
	ca, _ := net.Attach("alice")
	a := NewClient(ca, Config{})
	defer a.Close()

	if err := a.Say("for medics", `team == "medical"`); err != nil {
		t.Fatal(err)
	}
	if err := a.Say("for everyone", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "archive", func() bool { return coord.ArchivedEvents() == 2 })

	// The late joiner is on the logistics team: the medical line is
	// filtered out of its replayed history by its own profile.
	cb, _ := net.Attach("bob")
	b := NewClient(cb, Config{})
	defer b.Close()
	b.Profile().SetInterest("team", selector.S("logistics"))
	if err := b.RequestHistory("coordinator", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "filtered replay", func() bool { return b.Stats().EventsFiltered >= 1 })
	time.Sleep(30 * time.Millisecond)
	if b.Chat().Len() != 1 || b.Chat().Lines()[0].Text != "for everyone" {
		t.Errorf("filtered history: %+v", b.Chat().Lines())
	}
}

func TestCoordinatorArchivesImageShares(t *testing.T) {
	net, coord := newCoordinatedNet(t)
	ca, _ := net.Attach("alice")
	a := NewClient(ca, Config{})
	defer a.Close()

	im := wavelet.Circles(32, 32)
	obj, err := media.EncodeImage(im, "archived diagram")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShareImage("arch-1", obj, ""); err != nil {
		t.Fatal(err)
	}
	// 1 announce + 16 data packets.
	waitFor(t, "image archive", func() bool { return coord.ArchivedEvents() == 17 })

	// Late joiner recovers the full image from the archive.
	cb, _ := net.Attach("bob")
	b := NewClient(cb, Config{})
	defer b.Close()
	if err := b.RequestHistory("coordinator", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replayed image", func() bool {
		st, err := b.Viewer().Stats("arch-1")
		return err == nil && st.PacketsAccepted == 16
	})
	res, err := b.Viewer().Render("arch-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless || !res.Image.Equal(im) {
		t.Error("archived image should replay losslessly")
	}
}

func TestCoordinatorArchiveCap(t *testing.T) {
	net, coord := newCoordinatedNet(t)
	ca, _ := net.Attach("alice")
	a := NewClient(ca, Config{})
	defer a.Close()

	for i := 0; i < 10; i++ {
		if err := a.Say(fmt.Sprintf("m%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "archive fill", func() bool { return coord.ArchivedEvents() == 10 })
	coord.SetArchiveCap(4)
	if got := coord.ArchivedEvents(); got != 4 {
		t.Errorf("frames after cap = %d, want 4", got)
	}

	cb, _ := net.Attach("bob")
	b := NewClient(cb, Config{})
	defer b.Close()
	if err := b.RequestHistory("coordinator", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "capped replay", func() bool { return b.Chat().Len() == 4 })
	if b.Chat().Lines()[0].Text != "m6" {
		t.Errorf("oldest retained line: %+v", b.Chat().Lines()[0])
	}
}

func TestCoordinatorGroupFilterSkipsArchival(t *testing.T) {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 52})
	defer net.Close()
	conn, _ := net.Attach("coordinator")
	coord := NewCoordinator(conn, session.Group{
		Objective: "clinical-only",
		Filter:    selector.MustCompile(`client == "alice"`),
	})
	defer coord.Close()

	ca, _ := net.Attach("alice")
	cb, _ := net.Attach("mallory")
	a := NewClient(ca, Config{})
	m := NewClient(cb, Config{})
	defer a.Close()
	defer m.Close()

	a.Say("kept", "")
	m.Say("not archived", "")
	waitFor(t, "selective archive", func() bool { return coord.ArchivedEvents() >= 1 })
	time.Sleep(30 * time.Millisecond)
	if got := coord.ArchivedEvents(); got != 1 {
		t.Errorf("archived %d events, want 1 (group filter)", got)
	}
}
