package core

import (
	"sync"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/inference"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/rtp"
	"adaptiveqos/internal/selector"
)

// RTCP-style feedback: receivers periodically report their reception
// quality per sender; senders aggregate the worst report and reduce
// what they transmit — the send-side half of adaptation ("centralized
// adaptation of the information transferred"), complementing the
// receive-side packet budget.

const (
	ctrlRTCPReport = "rtcp-rr"
	attrSubject    = "subject"       // the sender the report describes
	attrFracLost   = "fraction-lost" // loss fraction in [0,1]
	attrJitterMs   = "jitter-ms"
)

// reportState aggregates inbound reception reports about this client's
// own data streams.
type reportState struct {
	clk     clock.Clock
	mu      sync.Mutex
	byPeer  map[string]float64 // reporter → last fraction lost
	expires map[string]time.Time
}

func newReportState(clk clock.Clock) *reportState {
	return &reportState{
		clk:     clock.Or(clk),
		byPeer:  make(map[string]float64),
		expires: make(map[string]time.Time),
	}
}

// reportTTL bounds how long a stale report keeps throttling a sender.
const reportTTL = 30 * time.Second

func (rs *reportState) record(reporter string, fracLost float64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.byPeer[reporter] = fracLost
	rs.expires[reporter] = rs.clk.Now().Add(reportTTL)
}

// worst returns the highest live loss fraction reported by any peer.
func (rs *reportState) worst() float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	now := rs.clk.Now()
	var worst float64
	for peer, f := range rs.byPeer {
		if now.After(rs.expires[peer]) {
			delete(rs.byPeer, peer)
			delete(rs.expires, peer)
			continue
		}
		if f > worst {
			worst = f
		}
	}
	return worst
}

// SendReceptionReports multicasts one RTCP-style receiver report per
// sender this client has received data from.  Call periodically (or
// after image receptions) so senders can adapt their transmissions.
func (c *Client) SendReceptionReports() error {
	c.rtpMu.Lock()
	type rep struct {
		subject string
		rr      rtp.ReceiverReport
	}
	reps := make([]rep, 0, len(c.rtpRecv))
	for sender, recv := range c.rtpRecv {
		reps = append(reps, rep{subject: sender, rr: recv.Report(fnv32(sender))})
	}
	c.rtpMu.Unlock()

	for _, r := range reps {
		m := &message.Message{
			Kind:      message.KindControl,
			Sender:    c.ID(),
			Seq:       c.ctrlSeq.Add(1),
			Timestamp: c.clk.Now(),
			Attrs: selector.Attributes{
				attrCtrl:     selector.S(ctrlRTCPReport),
				attrSubject:  selector.S(r.subject),
				attrFracLost: selector.N(r.rr.FractionLost),
				attrJitterMs: selector.N(float64(r.rr.Jitter)),
			},
		}
		if err := c.multicast(m); err != nil {
			return err
		}
	}
	return nil
}

// handleRTCPReport records a reception report that concerns this
// client's own streams.
func (c *Client) handleRTCPReport(m *message.Message) bool {
	ctrl, ok := m.Attr(attrCtrl)
	if !ok || ctrl.Str() != ctrlRTCPReport {
		return false
	}
	subject, ok := m.Attr(attrSubject)
	if !ok || subject.Str() != c.ID() {
		return true // a report about someone else: consumed, ignored
	}
	frac, ok := m.Attr(attrFracLost)
	if !ok {
		return true
	}
	f := frac.Num()
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	c.reports.record(m.Sender, f)
	return true
}

// WorstPeerLoss returns the highest loss fraction any receiver has
// recently reported for this client's data streams.
func (c *Client) WorstPeerLoss() float64 { return c.reports.worst() }

// observedJitter returns the mean RTP interarrival jitter across every
// sender this client receives data from, in the arrival clock's units
// (milliseconds here).  ok is false with no data streams.
func (c *Client) observedJitter() (float64, bool) {
	c.rtpMu.Lock()
	defer c.rtpMu.Unlock()
	if len(c.rtpRecv) == 0 {
		return 0, false
	}
	var sum float64
	for _, r := range c.rtpRecv {
		sum += r.Snapshot().Jitter
	}
	return sum / float64(len(c.rtpRecv)), true
}

// sendBudget resolves how many of total packets to actually transmit,
// given receiver feedback.  With no reports (or SenderAdaptation off)
// everything is sent.
func (c *Client) sendBudget(total int) int {
	if c.cfg.DisableSenderAdaptation {
		return total
	}
	worst := c.reports.worst()
	if worst <= 0 {
		return total
	}
	budget := inference.PacketsFromLoss(worst, total)
	if budget < 1 {
		budget = 1 // always send at least the base layer
	}
	return budget
}
