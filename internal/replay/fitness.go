package replay

import (
	"time"

	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/slo"
)

// Fitness scoring (DESIGN.md §15): one scalar per candidate, lower is
// better.  The four SLO objectives are converted to burn rates with the
// same slo.Spec.Burn normalization the live conformance state machine
// applies — one unit means "exactly the error budget consumed" — then
// weighted and summed with the resource terms:
//
//	fitness = 3·burn(loss) + burn(delivery) + burn(repair) + burn(tier)
//	        + 0.5·overhead + 0.5·waste + 0.5·quality + truncation
//
// Loss carries the dominant weight: unrepaired loss is the failure the
// paper's adaptation exists to prevent, and weighting it 3× keeps a
// policy from buying pristine latency numbers by simply not delivering.
// Burns are capped so one blown objective can't swamp every other
// signal, and the resource terms are dimensionless ratios.
const (
	weightLoss     = 3.0
	weightDelivery = 1.0
	weightRepair   = 1.0
	weightTier     = 1.0
	weightBytes    = 0.5 // repair+NACK overhead vs data bytes
	weightWaste    = 0.5 // tiers offered above what the channel sustains
	weightQuality  = 0.5 // tiers lost below what the channel sustains
	weightTrunc    = 1.0 // inference-budget truncation of offered frames
	burnCap        = 10.0
)

// Score is one candidate's fitness breakdown.
type Score struct {
	Fitness float64 `json:"fitness"`

	BurnLoss     float64 `json:"burn_loss"`
	BurnDelivery float64 `json:"burn_delivery"`
	BurnRepair   float64 `json:"burn_repair"`
	BurnTier     float64 `json:"burn_tier"`

	// ByteOverhead is (repair+NACK bytes)/data bytes; TierWaste the
	// mean tiers offered above the sustainable tier per SIR sample;
	// TierQualityLoss the mean tiers lost below it; TruncFrac the
	// fraction of offered frames the inference budget suppressed.
	ByteOverhead    float64 `json:"byte_overhead"`
	TierWaste       float64 `json:"tier_waste"`
	TierQualityLoss float64 `json:"tier_quality_loss"`
	TruncFrac       float64 `json:"trunc_frac"`
}

// Evaluate scores one outcome against the workload under spec.  The
// tier objective is counterfactual: the candidate's thresholds are
// applied to the recorded SIR trace, with the default thresholds as
// the sustainable-tier physics — a candidate offering tiers the SIR
// can't sustain wastes transmit energy, one withholding sustainable
// tiers loses quality, and samples whose effective tier falls below
// the spec floor burn the tier error budget.
func Evaluate(w *Workload, out *Outcome, spec slo.Spec) Score {
	var sc Score

	// Loss: post-repair undelivered fraction.
	sc.BurnLoss = capBurn(spec.Burn(slo.ObjLoss, out.LossFrac))

	// Delivery: late in-order deliveries plus everything never
	// delivered, over the expected total — an undelivered frame is the
	// worst possible latency, and counting it here keeps "drop instead
	// of deliver late" from gaming the p99.
	if out.Expected > 0 {
		late := 0
		for _, ns := range out.DeliveryNS {
			if time.Duration(ns) > spec.DeliveryP99 {
				late++
			}
		}
		undelivered := out.Expected - out.Delivered
		if undelivered < 0 {
			undelivered = 0
		}
		sc.BurnDelivery = capBurn(spec.Burn(slo.ObjDelivery,
			float64(late+undelivered)/float64(out.Expected)))
	}

	// Repair: fraction of converged repairs slower than the bound.
	if n := len(out.ConvergeNS); n > 0 {
		slow := 0
		for _, ns := range out.ConvergeNS {
			if time.Duration(ns) > spec.RepairConverge {
				slow++
			}
		}
		sc.BurnRepair = capBurn(spec.Burn(slo.ObjRepair, float64(slow)/float64(n)))
	}

	// Tier counterfactual over the recorded SIR trace.
	if n := len(w.SIR); n > 0 {
		phys := radio.DefaultThresholds()
		bad, waste, lost := 0, 0, 0
		for _, s := range w.SIR {
			offered := out.Policy.Tier.TierFor(s.SIRdB)
			sustainable := phys.TierFor(s.SIRdB)
			effective := offered
			if sustainable < effective {
				effective = sustainable
			}
			if int(effective) < spec.TierFloor {
				bad++
			}
			waste += int(offered - effective)
			lost += int(sustainable - effective)
		}
		sc.BurnTier = capBurn(spec.Burn(slo.ObjTier, float64(bad)/float64(n)))
		sc.TierWaste = float64(waste) / float64(n)
		sc.TierQualityLoss = float64(lost) / float64(n)
	}

	if out.DataBytes > 0 {
		sc.ByteOverhead = float64(out.RepairBytes+out.NackBytes) / float64(out.DataBytes)
	}
	if out.Offered > 0 {
		sc.TruncFrac = float64(out.Truncated) / float64(out.Offered)
	}

	sc.Fitness = weightLoss*sc.BurnLoss +
		weightDelivery*sc.BurnDelivery +
		weightRepair*sc.BurnRepair +
		weightTier*sc.BurnTier +
		weightBytes*sc.ByteOverhead +
		weightWaste*sc.TierWaste +
		weightQuality*sc.TierQualityLoss +
		weightTrunc*sc.TruncFrac
	return sc
}

func capBurn(b float64) float64 {
	if b > burnCap {
		return burnCap
	}
	return b
}
