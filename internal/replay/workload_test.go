package replay

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"adaptiveqos/internal/obs"
)

func TestParseGaugeName(t *testing.T) {
	cases := []struct {
		in     string
		base   string
		labels map[string]string
		ok     bool
	}{
		{"plain", "plain", map[string]string{}, true},
		{`host_param{host="h0",param="cpu-load"}`, "host_param",
			map[string]string{"host": "h0", "param": "cpu-load"}, true},
		{`client_sir_db{bs="bs0",client="w0"}`, "client_sir_db",
			map[string]string{"bs": "bs0", "client": "w0"}, true},
		{`x{k="a\"b\\c"}`, "x", map[string]string{"k": `a"b\c`}, true},
		{`x{k="unterminated`, "", nil, false},
		{`x{k=}`, "", nil, false},
		{`x{k="v"`, "", nil, false},
	}
	for _, c := range cases {
		base, labels, ok := parseGaugeName(c.in)
		if ok != c.ok || base != c.base {
			t.Errorf("%q: got (%q, %v, %v)", c.in, base, labels, ok)
			continue
		}
		for k, v := range c.labels {
			if labels[k] != v {
				t.Errorf("%q: label %q = %q, want %q", c.in, k, labels[k], v)
			}
		}
	}
}

// recordSession writes a synthetic session through the real recorder
// and loads it back, so extraction is tested against the actual wire
// format.
func recordSession(t *testing.T, emit func()) *obs.Session {
	t.Helper()
	var buf bytes.Buffer
	r := obs.NewRecorder(&buf, "test", 0)
	prev := obs.InstallRecorder(r)
	emit()
	obs.InstallRecorder(prev)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := obs.LoadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExtractWorkload(t *testing.T) {
	s := recordSession(t, func() {
		obs.RecordPublish(2000, "alice", 1, "event", "", 0, 64)
		obs.RecordPublish(1000, "bob", 1, "event", "image", 0, 64)
		obs.RecordPublish(3000, "alice", 2, "data", "image", 1, 900)
		obs.RecordEvent(obs.RecEvent{Type: obs.RecTypeQoS, AtNS: 1500,
			Name: `host_param{host="h0",param="cpu-load"}`, Value: 42})
		obs.RecordEvent(obs.RecEvent{Type: obs.RecTypeQoS, AtNS: 2500,
			Name: `client_sir_db{bs="bs0",client="w0"}`, Value: 5.5})
		obs.RecordEvent(obs.RecEvent{Type: obs.RecTypeQoS, AtNS: 2600,
			Name: `rtp_loss_fraction{client="carol",sender="alice"}`, Value: 0.3})
		obs.RecordEvent(obs.RecEvent{Type: obs.RecTypeQoS, AtNS: 2700,
			Name: `rtp_loss_fraction{client="carol"}`, Value: 0.9}) // aggregate: ignored
	})
	w, err := ExtractWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Publishes) != 3 {
		t.Fatalf("publishes = %d, want 3", len(w.Publishes))
	}
	// Sorted by (AtNS, Sender, Seq).
	if w.Publishes[0].Sender != "bob" || w.Publishes[2].Kind != "data" ||
		w.Publishes[2].Level != 1 || w.Publishes[2].Size != 900 {
		t.Errorf("publish order/fields wrong: %+v", w.Publishes)
	}
	if got := strings.Join(w.Senders, ","); got != "alice,bob" {
		t.Errorf("senders = %q", got)
	}
	if got := strings.Join(w.Receivers, ","); got != "alice,bob,carol" {
		t.Errorf("receivers = %q", got)
	}
	if len(w.Host["cpu-load"]) != 1 || w.Host["cpu-load"][0].Value != 42 {
		t.Errorf("host timeline: %+v", w.Host)
	}
	if len(w.SIR) != 1 || w.SIR[0].Client != "w0" || w.SIR[0].SIRdB != 5.5 {
		t.Errorf("sir trace: %+v", w.SIR)
	}
	if w.MeanLoss != 0.3 {
		t.Errorf("mean loss = %v, want 0.3 (aggregate sample must be excluded)", w.MeanLoss)
	}
	if w.StartNS != 1000 || w.EndNS != 3000 {
		t.Errorf("span = [%d, %d], want [1000, 3000]", w.StartNS, w.EndNS)
	}
	v := w.hostValueAt("cpu-load", 2000)
	if v != 42 {
		t.Errorf("hostValueAt(2000) = %v, want 42", v)
	}
	if v := w.hostValueAt("cpu-load", 1000); !math.IsNaN(v) {
		t.Errorf("hostValueAt before first sample = %v, want NaN", v)
	}
}

func TestExtractWorkloadNoPublishes(t *testing.T) {
	s := recordSession(t, func() {
		obs.RecordEvent(obs.RecEvent{Type: obs.RecTypeQoS, AtNS: 1,
			Name: `host_param{host="h0",param="cpu-load"}`, Value: 1})
	})
	if _, err := ExtractWorkload(s); !errors.Is(err, ErrNoWorkload) {
		t.Fatalf("err = %v, want ErrNoWorkload", err)
	}
}

func TestExtractWorkloadTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	r := obs.NewRecorder(&buf, "test", 0)
	prev := obs.InstallRecorder(r)
	obs.RecordPublish(10, "alice", 1, "event", "", 0, 64)
	obs.RecordPublish(20, "alice", 2, "event", "", 0, 64)
	obs.InstallRecorder(prev)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final line mid-write, as a crash would.
	torn := buf.Bytes()[:buf.Len()-9]
	s, err := obs.LoadSession(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Truncated {
		t.Fatal("session should be flagged truncated")
	}
	w, err := ExtractWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Truncated || len(w.Publishes) != 1 {
		t.Errorf("truncated=%v publishes=%d, want true/1", w.Truncated, len(w.Publishes))
	}
}

func TestExtractWorkloadEmptyRecord(t *testing.T) {
	if _, err := obs.LoadSession(strings.NewReader("")); !errors.Is(err, obs.ErrRecordSchema) {
		t.Fatalf("empty record: err = %v, want ErrRecordSchema", err)
	}
}
