package replay

import (
	"bytes"
	"testing"

	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/slo"
)

// loadFixture loads the checked-in recorded session: cmd/collab with
// two wired clients, 20 workload events, 35% injected wired-link loss
// and gap repair disabled — a session that honestly suffered the loss,
// so the counterfactual question "would repair have fixed it?" has a
// non-trivial answer.
//
// Regenerate with:
//
//	go run ./cmd/collab -events 20 -loss 0.35 -repair-timeout 0 \
//	    -record internal/replay/testdata/collab-loss35.jsonl
func loadFixture(t *testing.T) *Workload {
	t.Helper()
	s, err := obs.LoadSessionFile("testdata/collab-loss35.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ExtractWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFixtureWorkloadShape(t *testing.T) {
	w := loadFixture(t)
	if len(w.Senders) != 2 || len(w.Publishes) == 0 {
		t.Fatalf("fixture shape: %s", w)
	}
	if w.MeanLoss < 0.2 || w.MeanLoss > 0.5 {
		t.Errorf("fixture mean loss = %.3f, want the injected ~35%% to be visible", w.MeanLoss)
	}
	if len(w.SIR) == 0 {
		t.Error("fixture should carry wireless SIR samples for the tier counterfactual")
	}
}

// TestFixtureRepairRanksAboveNoRepair is the PR's acceptance bar: on
// the recorded 35%-loss session, every repair-enabled candidate must
// outrank every repair-disabled one.
func TestFixtureRepairRanksAboveNoRepair(t *testing.T) {
	w := loadFixture(t)
	ranked := Sweep(w, DefaultGrid(), SimConfig{Seed: 1, Loss: -1}, slo.SpecForClass("interactive"))
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score.Fitness < ranked[i-1].Score.Fitness {
			t.Fatalf("ranking not ascending at %d", i)
		}
	}
	worstOn, bestOff := -1, len(ranked)
	for i, r := range ranked {
		if r.Outcome.Policy.Repair.Enabled {
			worstOn = i
		} else if i < bestOff {
			bestOff = i
		}
	}
	if worstOn < 0 || bestOff == len(ranked) {
		t.Fatal("grid must contain both repair-on and repair-off candidates")
	}
	if worstOn >= bestOff {
		t.Fatalf("repair-enabled must rank strictly above repair-disabled: worst-on rank %d, best-off rank %d",
			worstOn+1, bestOff+1)
	}
	// The separation must be strict in fitness too, not a tie.
	if ranked[worstOn].Score.Fitness >= ranked[bestOff].Score.Fitness {
		t.Fatalf("fitness separation not strict: %v vs %v",
			ranked[worstOn].Score.Fitness, ranked[bestOff].Score.Fitness)
	}
}

// TestFixtureSweepByteIdentical reruns the full grid on the recorded
// session twice and requires byte-identical JSON rankings — the
// determinism contract the CLI inherits.
func TestFixtureSweepByteIdentical(t *testing.T) {
	w1 := loadFixture(t)
	w2 := loadFixture(t)
	spec := slo.SpecForClass("interactive")
	cfg := SimConfig{Seed: 1, Loss: -1}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, Sweep(w1, DefaultGrid(), cfg, spec)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, Sweep(w2, DefaultGrid(), cfg, spec)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same record + grid + seed must produce byte-identical rankings")
	}
}
