package replay

import (
	"encoding/binary"
	"sort"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/repair"
	"adaptiveqos/internal/timeline"
	"adaptiveqos/internal/transport"
)

// SimConfig sets the replayed network's link model and seed.  The same
// (workload, policy, config) triple always produces the same Outcome:
// the rerun is single-threaded on a virtual clock, every random draw
// is seeded, and every fan-out and poll iterates in sorted order.
type SimConfig struct {
	// Seed drives the network's loss/jitter draws and the repair
	// engines' backoff jitter (0 means 1).
	Seed int64
	// Delay is the fixed one-way link delay (default 5ms).
	Delay time.Duration
	// Jitter adds uniform random delay in [0, Jitter] on lossy links.
	Jitter time.Duration
	// Loss is the per-frame loss probability on client↔client links; a
	// negative value means "use the workload's recorded mean loss".
	// Links to the replay coordinator are always clean, mirroring the
	// live deployment's wired coordinator.
	Loss float64
	// CurveWindows, when > 0, attaches per-window metric curves to the
	// Outcome: the recorded span splits into this many timeline windows
	// (plus one drain-tail window), each carrying delivery/repair deltas
	// and windowed latency quantiles.
	CurveWindows int
}

func (c SimConfig) withDefaults(w *Workload) SimConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delay <= 0 {
		c.Delay = 5 * time.Millisecond
	}
	if c.Loss < 0 {
		c.Loss = w.MeanLoss
	}
	if c.Loss > 1 {
		c.Loss = 1
	}
	return c
}

// Outcome is one policy's measured rerun.
type Outcome struct {
	Policy Policy `json:"policy"`

	// Offered counts the workload's publish frames; Sent those that
	// survived the candidate inference budget; Truncated the rest.
	Offered   int `json:"offered"`
	Sent      int `json:"sent"`
	Truncated int `json:"truncated"`

	// Expected is sent frames × reachable receivers; Delivered counts
	// in-order deliveries (gap-repaired and abandon-drained included);
	// Abandoned counts gaps given up on.
	Expected  int `json:"expected"`
	Delivered int `json:"delivered"`
	Abandoned int `json:"abandoned"`

	// LossFrac is the post-repair fraction of expected deliveries that
	// never happened.
	LossFrac float64 `json:"loss_frac"`

	// Byte accounting: original data, coordinator repair replays, and
	// NACK control traffic.
	DataBytes   uint64 `json:"data_bytes"`
	RepairBytes uint64 `json:"repair_bytes"`
	NackBytes   uint64 `json:"nack_bytes"`

	// RepairRequests counts NACKs issued; Repaired gaps closed after
	// at least one request.
	RepairRequests int `json:"repair_requests"`
	Repaired       int `json:"repaired"`

	// DeliveryNS holds every in-order delivery latency (publish to
	// in-order arrival, virtual ns), sorted; ConvergeNS every repaired
	// gap's stall-to-fill latency, sorted.
	DeliveryNS []int64 `json:"-"`
	ConvergeNS []int64 `json:"-"`

	// DeliveryP99 and ConvergeP99 summarize the samples above.
	DeliveryP99 time.Duration `json:"delivery_p99_ns"`
	ConvergeP99 time.Duration `json:"converge_p99_ns"`

	// Curve holds the per-window metric series when
	// SimConfig.CurveWindows > 0 — how this candidate's delivery, repair
	// traffic and latency evolved across the replayed span.
	Curve []timeline.SeriesData `json:"curve,omitempty"`
}

// Frame wire format (replay-internal).
const (
	frameData byte = 1
	frameNack byte = 2

	// Data header: type, seq, sentNS, level, senderLen, sender bytes.
	// The stream sender rides in the frame — a coordinator replay
	// arrives with Packet.From = coordinator, and the receiver must
	// still credit the original stream.
	dataHeaderLen = 1 + 8 + 8 + 1 + 1
	// maxReplayPerNack bounds one NACK's replay burst; the engine's
	// retry budget covers longer runs of loss.
	maxReplayPerNack = 16
)

func encodeData(sender string, seq uint64, sentNS int64, level, size int) []byte {
	if size < dataHeaderLen+len(sender) {
		size = dataHeaderLen + len(sender)
	}
	buf := make([]byte, size)
	buf[0] = frameData
	binary.BigEndian.PutUint64(buf[1:], seq)
	binary.BigEndian.PutUint64(buf[9:], uint64(sentNS))
	buf[17] = byte(level)
	buf[18] = byte(len(sender))
	copy(buf[19:], sender)
	return buf
}

func decodeData(buf []byte) (sender string, seq uint64, sentNS int64) {
	seq = binary.BigEndian.Uint64(buf[1:])
	sentNS = int64(binary.BigEndian.Uint64(buf[9:]))
	sender = string(buf[19 : 19+int(buf[18])])
	return
}

func encodeNack(stream string, afterSeq uint64) []byte {
	buf := make([]byte, 1+8+len(stream))
	buf[0] = frameNack
	binary.BigEndian.PutUint64(buf[1:], afterSeq)
	copy(buf[9:], stream)
	return buf
}

// tracker is one receiver's per-sender stream state: the minimal
// OrderBuffer shape the repair engine needs (repair.Stream) plus
// delivery accounting.  Loss and latency are counted at unique
// arrival — the RTP semantics the recorded rtp_loss_fraction gauges
// use — while the next/parked ordering state exists to detect gaps
// for the repair engine.
type tracker struct {
	next     uint64          // first seq not yet passed in order (the gap pointer)
	parked   map[uint64]bool // arrived out-of-order seqs > next
	gapSince int64           // virtual ns the current gap opened; 0 = none

	out *Outcome
	lat *obs.Histogram // optional: windowed delivery latency for curves
}

func newTracker(out *Outcome, lat *obs.Histogram) *tracker {
	return &tracker{next: 1, parked: make(map[uint64]bool), out: out, lat: lat}
}

// Gap implements repair.Stream.
func (t *tracker) Gap() (uint64, int) { return t.next, len(t.parked) }

// accept processes one arriving frame.
func (t *tracker) accept(seq uint64, sentNS int64, now time.Time) {
	if seq < t.next || t.parked[seq] {
		return // duplicate (or a replay of an already-abandoned seq)
	}
	t.out.Delivered++
	t.out.DeliveryNS = append(t.out.DeliveryNS, now.UnixNano()-sentNS)
	if t.lat != nil {
		t.lat.Observe(now.UnixNano() - sentNS)
	}
	if seq > t.next {
		t.parked[seq] = true
		if t.gapSince == 0 {
			t.gapSince = now.UnixNano()
		}
		return
	}
	t.next = seq + 1
	t.advance(now)
}

// advance walks the gap pointer over contiguously arrived seqs and
// refreshes the gap bookkeeping.
func (t *tracker) advance(now time.Time) {
	for t.parked[t.next] {
		delete(t.parked, t.next)
		t.next++
	}
	if len(t.parked) == 0 {
		t.gapSince = 0
	} else if t.gapSince == 0 {
		t.gapSince = now.UnixNano()
	}
}

// skipPast abandons the gap at waitingFor: ordering resumes beyond it
// (the lost frame stays undelivered — abandonment trades completeness
// for liveness, it does not conjure data).
func (t *tracker) skipPast(waitingFor uint64, now time.Time) {
	if t.next <= waitingFor {
		t.next = waitingFor + 1
	}
	t.advance(now)
}

// Simulate reruns the workload under one candidate policy and returns
// the measured outcome.
func Simulate(w *Workload, pol Policy, cfg SimConfig) Outcome {
	pol = pol.withDefaults()
	cfg = cfg.withDefaults(w)
	out := Outcome{Policy: pol, Offered: len(w.Publishes)}

	const coordID = "\x00replay-coord" // NUL prefix: can't collide with client IDs
	clk := clock.NewVirtual(time.Unix(0, w.StartNS))
	net := transport.NewDESNet(transport.DESNetConfig{
		Seed:        cfg.Seed,
		DefaultLink: transport.Link{Delay: cfg.Delay, Jitter: cfg.Jitter, Loss: cfg.Loss},
		MTU:         1 << 22,
		Clock:       clk,
	})
	defer net.Close()

	// Candidate curves: derived delta series over the Outcome's own
	// accounting plus a windowed latency histogram.  Boundary SampleNow
	// events are scheduled before any workload event, so window closes
	// deterministically precede same-instant traffic.
	var tl *timeline.Timeline
	var lat *obs.Histogram
	if cfg.CurveWindows > 0 {
		lat = &obs.Histogram{}
		span := time.Duration(w.EndNS - w.StartNS)
		window := span / time.Duration(cfg.CurveWindows)
		if window <= 0 {
			window = time.Millisecond
		}
		tl = timeline.New(timeline.Config{
			Window:    window,
			Retention: cfg.CurveWindows + 1, // +1: the drain-tail window
			Clock:     clk,
		})
		delta := func(get func() int) func() float64 {
			prev := 0
			return func() float64 {
				cur := get()
				d := cur - prev
				prev = cur
				return float64(d)
			}
		}
		tl.TrackFunc("replay_sent", delta(func() int { return out.Sent }))
		tl.TrackFunc("replay_delivered", delta(func() int { return out.Delivered }))
		tl.TrackFunc("replay_expected", delta(func() int { return out.Expected }))
		tl.TrackFunc("replay_truncated", delta(func() int { return out.Truncated }))
		tl.TrackFunc("replay_repair_requests", delta(func() int { return out.RepairRequests }))
		tl.TrackFunc("replay_abandoned", delta(func() int { return out.Abandoned }))
		tl.TrackHistogram("replay_delivery_latency_ns", lat)
		for i := 1; i <= cfg.CurveWindows; i++ {
			at := time.Duration(int64(i) * int64(span) / int64(cfg.CurveWindows))
			clk.ScheduleFunc(at, func(time.Time) { tl.SampleNow() })
		}
	}

	receiverSet := make(map[string]bool, len(w.Receivers))
	for _, id := range w.Receivers {
		receiverSet[id] = true
	}

	// Coordinator: archives every data frame off the multicast, answers
	// NACKs with bounded unicast replays over its clean links.
	archive := make(map[string]map[uint64][]byte) // stream → seq → frame
	var coordConn transport.Conn
	coordHandler := func(p transport.Packet) {
		switch p.Data[0] {
		case frameData:
			sender, seq, _ := decodeData(p.Data)
			byStream := archive[sender]
			if byStream == nil {
				byStream = make(map[uint64][]byte)
				archive[sender] = byStream
			}
			byStream[seq] = p.Data
		case frameNack:
			afterSeq := binary.BigEndian.Uint64(p.Data[1:])
			stream := string(p.Data[9:])
			byStream := archive[stream]
			seqs := make([]uint64, 0, len(byStream))
			for s := range byStream {
				if s > afterSeq {
					seqs = append(seqs, s)
				}
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			if len(seqs) > maxReplayPerNack {
				seqs = seqs[:maxReplayPerNack]
			}
			for _, s := range seqs {
				frame := byStream[s]
				out.RepairBytes += uint64(len(frame))
				coordConn.Unicast(p.From, frame)
			}
		}
	}
	var err error
	coordConn, err = net.AttachHandler(coordID, coordHandler)
	if err != nil {
		panic("replay: attach coordinator: " + err.Error())
	}

	// Receivers (publishers included — multicast excludes self): one
	// tracker per (receiver, sender) stream, one repair engine per
	// receiver when the candidate enables repair.
	conns := make(map[string]transport.Conn, len(w.Receivers))
	trackers := make(map[string]map[string]*tracker, len(w.Receivers))
	engines := make([]*repair.Engine, 0, len(w.Receivers))
	for i, id := range w.Receivers {
		id := id
		mine := make(map[string]*tracker, len(w.Senders))
		for _, s := range w.Senders {
			if s != id {
				mine[s] = newTracker(&out, lat)
			}
		}
		trackers[id] = mine

		var eng *repair.Engine
		if pol.Repair.Enabled {
			eng = repair.New(repair.Config{
				StallTimeout: pol.Repair.StallTimeout(),
				MaxRetries:   pol.Repair.MaxRetries,
				Seed:         cfg.Seed + int64(i) + 1,
			}, func(stream string, afterSeq uint64, _ int) error {
				nack := encodeNack(stream, afterSeq)
				out.RepairRequests++
				out.NackBytes += uint64(len(nack))
				return conns[id].Unicast(coordID, nack)
			}, func(stream string, waitingFor uint64) {
				t := mine[stream]
				out.Abandoned++
				t.skipPast(waitingFor, clk.Now())
			})
			for s, t := range mine {
				eng.Watch(s, t)
			}
			engines = append(engines, eng)
		}

		conn, err := net.AttachHandler(id, func(p transport.Packet) {
			if p.Data[0] != frameData {
				return
			}
			sender, seq, sentNS := decodeData(p.Data)
			t := mine[sender]
			if t == nil {
				return // own stream or one we don't track
			}
			wasGap := t.gapSince
			t.accept(seq, sentNS, p.At)
			// A closed gap that repair had asked about is a convergence
			// sample: stall-start to fill.
			if wasGap != 0 && t.gapSince == 0 && p.Unicast {
				out.ConvergeNS = append(out.ConvergeNS, p.At.UnixNano()-wasGap)
			}
		})
		if err != nil {
			panic("replay: attach " + id + ": " + err.Error())
		}
		conns[id] = conn
		net.SetLinkBoth(id, coordID, transport.Link{Delay: cfg.Delay})
	}

	// Sender schedule: each surviving publish renumbers with a fresh
	// per-sender seq at send time — candidate budgets change which
	// frames exist *before* sequencing, exactly as the live pipeline
	// truncates before the session layer numbers frames.
	nextSeq := make(map[string]uint64, len(w.Senders))
	senderConns := make(map[string]transport.Conn, len(w.Senders))
	for _, s := range w.Senders {
		nextSeq[s] = 1
		if c, ok := conns[s]; ok {
			senderConns[s] = c
		} else {
			c, err := net.AttachHandler(s, func(transport.Packet) {})
			if err != nil {
				panic("replay: attach sender " + s + ": " + err.Error())
			}
			senderConns[s] = c
			net.SetLinkBoth(s, coordID, transport.Link{Delay: cfg.Delay})
		}
	}
	for i := range w.Publishes {
		pub := w.Publishes[i]
		d := time.Duration(pub.AtNS - w.StartNS)
		clk.ScheduleFunc(d, func(now time.Time) {
			if pub.Kind == "data" {
				budget := pol.Inference.Budget(
					w.hostValueAt("cpu-load", pub.AtNS),
					w.hostValueAt("page-faults", pub.AtNS),
					cfg.Loss)
				if pub.Level >= budget {
					out.Truncated++
					return
				}
			}
			seq := nextSeq[pub.Sender]
			nextSeq[pub.Sender] = seq + 1
			frame := encodeData(pub.Sender, seq, now.UnixNano(), pub.Level, pub.Size)
			out.Sent++
			out.DataBytes += uint64(len(frame))
			reach := len(w.Receivers)
			if receiverSet[pub.Sender] {
				reach--
			}
			out.Expected += reach
			senderConns[pub.Sender].Multicast(frame)
		})
	}

	// Repair poll ticks: one recurring event drives every engine, in
	// receiver order, from the driving goroutine — Poll itself scans
	// streams sorted, so the whole control loop is deterministic.
	end := time.Unix(0, w.EndNS)
	drain := 500 * time.Millisecond
	if pol.Repair.Enabled {
		drain = abandonSpan(pol.Repair) + time.Second
		interval := pol.Repair.StallTimeout() / 4
		if interval <= 0 {
			interval = time.Millisecond
		}
		stopAt := end.Add(drain)
		var tick func(now time.Time)
		tick = func(now time.Time) {
			for _, eng := range engines {
				eng.Poll(now)
			}
			if now.Before(stopAt) {
				clk.ScheduleFunc(interval, tick)
			}
		}
		clk.ScheduleFunc(interval, tick)
	}

	clk.AdvanceTo(end.Add(drain + 4*cfg.Delay + cfg.Jitter))
	if tl != nil {
		// One synchronous close captures the drain tail (repairs and
		// stragglers landing after the recorded span).
		tl.SampleNow()
		out.Curve = tl.Query(timeline.Query{})
	}

	// Repaired-gap counts from the engines (sorted receiver order).
	for _, eng := range engines {
		st := eng.Status()
		streams := make([]string, 0, len(st))
		for name := range st {
			streams = append(streams, name)
		}
		sort.Strings(streams)
		for _, name := range streams {
			out.Repaired += int(st[name].Repaired)
		}
	}

	if out.Expected > 0 {
		out.LossFrac = 1 - float64(out.Delivered)/float64(out.Expected)
		if out.LossFrac < 0 {
			out.LossFrac = 0
		}
	}
	sortInt64(out.DeliveryNS)
	sortInt64(out.ConvergeNS)
	out.DeliveryP99 = time.Duration(p99(out.DeliveryNS))
	out.ConvergeP99 = time.Duration(p99(out.ConvergeNS))
	return out
}

// abandonSpan bounds one full stall→retries→abandon cycle: stall
// timeout plus every backoff at maximum jitter.
func abandonSpan(r RepairPolicy) time.Duration {
	base := r.StallTimeout()
	span := base
	backoff := base
	max := 16 * base
	for i := 0; i < r.MaxRetries; i++ {
		span += backoff
		if backoff < max {
			backoff *= 2
		}
	}
	return span + span/2 // +50%: jitter margin and poll-grid slack
}

func sortInt64(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// p99 returns the 99th-percentile of a sorted sample (0 when empty).
func p99(sorted []int64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*99 + 99) / 100
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
