package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"adaptiveqos/internal/inference"
	"adaptiveqos/internal/radio"
)

// RepairPolicy is the gap-repair candidate: off, or on with a stall
// timeout and a retry budget (repair.Config's two load-bearing knobs;
// backoff and jitter keep their defaults relative to the timeout).
type RepairPolicy struct {
	Enabled        bool  `json:"enabled"`
	StallTimeoutMS int64 `json:"stall_timeout_ms,omitempty"`
	MaxRetries     int   `json:"max_retries,omitempty"`
}

// StallTimeout returns the stall timeout as a duration (default 200ms,
// matching repair.Config).
func (r RepairPolicy) StallTimeout() time.Duration {
	if r.StallTimeoutMS <= 0 {
		return 200 * time.Millisecond
	}
	return time.Duration(r.StallTimeoutMS) * time.Millisecond
}

// Policy is one candidate configuration swept by the replay: the
// repair knobs, the full inference rule-set parameters and the radio
// tier thresholds.  The zero value of each component means "that
// subsystem's defaults".
type Policy struct {
	Name      string           `json:"name"`
	Repair    RepairPolicy     `json:"repair"`
	Inference inference.Params `json:"inference"`
	Tier      radio.Thresholds `json:"tier"`
}

// withDefaults fills unset components.
func (p Policy) withDefaults() Policy {
	p.Inference = p.Inference.WithDefaults()
	if p.Tier == (radio.Thresholds{}) {
		p.Tier = radio.DefaultThresholds()
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("repair=%s budget=%d tier=%+.0f/%+.0f/%+.0f",
			p.repairLabel(), p.Inference.MaxPackets,
			p.Tier.TextDB, p.Tier.SketchDB, p.Tier.ImageDB)
	}
	return p
}

func (p Policy) repairLabel() string {
	if !p.Repair.Enabled {
		return "off"
	}
	return fmt.Sprintf("%v x%d", p.Repair.StallTimeout(), p.Repair.MaxRetries)
}

// DefaultGrid is the standard sweep: repair {off, 100ms×2, 100ms×6,
// 250ms×2, 250ms×6} × inference budget {16, 8} × tier thresholds
// {default, tight (+2 dB), loose (−2 dB)} — 30 candidates.
func DefaultGrid() []Policy {
	repairs := []RepairPolicy{
		{Enabled: false},
		{Enabled: true, StallTimeoutMS: 100, MaxRetries: 2},
		{Enabled: true, StallTimeoutMS: 100, MaxRetries: 6},
		{Enabled: true, StallTimeoutMS: 250, MaxRetries: 2},
		{Enabled: true, StallTimeoutMS: 250, MaxRetries: 6},
	}
	budgets := []int{16, 8}
	def := radio.DefaultThresholds()
	tiers := []radio.Thresholds{
		def,
		{TextDB: def.TextDB + 2, SketchDB: def.SketchDB + 2, ImageDB: def.ImageDB + 2},
		{TextDB: def.TextDB - 2, SketchDB: def.SketchDB - 2, ImageDB: def.ImageDB - 2},
	}
	var grid []Policy
	for _, r := range repairs {
		for _, b := range budgets {
			for _, t := range tiers {
				grid = append(grid, Policy{
					Repair:    r,
					Inference: inference.Params{MaxPackets: b},
					Tier:      t,
				}.withDefaults())
			}
		}
	}
	return grid
}

// LoadGrid reads a JSON policy grid: either a bare array of Policy or
// an object {"policies": [...]}.
func LoadGrid(r io.Reader) ([]Policy, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("replay: read grid: %w", err)
	}
	var grid []Policy
	if err := json.Unmarshal(raw, &grid); err != nil {
		var wrapped struct {
			Policies []Policy `json:"policies"`
		}
		if err2 := json.Unmarshal(raw, &wrapped); err2 != nil || wrapped.Policies == nil {
			return nil, fmt.Errorf("replay: parse grid: %w", err)
		}
		grid = wrapped.Policies
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("replay: empty policy grid")
	}
	seen := make(map[string]bool, len(grid))
	for i := range grid {
		grid[i] = grid[i].withDefaults()
		if seen[grid[i].Name] {
			return nil, fmt.Errorf("replay: duplicate policy name %q", grid[i].Name)
		}
		seen[grid[i].Name] = true
	}
	return grid, nil
}
