package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"adaptiveqos/internal/slo"
)

// Ranked is one candidate's outcome, score and final rank.
type Ranked struct {
	Rank    int     `json:"rank"`
	Outcome Outcome `json:"outcome"`
	Score   Score   `json:"score"`
}

// Sweep reruns the workload under every candidate and returns the
// ranking: ascending fitness, ties broken by policy name so the order
// is total and reruns are byte-identical.
func Sweep(w *Workload, grid []Policy, cfg SimConfig, spec slo.Spec) []Ranked {
	ranked := make([]Ranked, 0, len(grid))
	for _, pol := range grid {
		out := Simulate(w, pol, cfg)
		sc := Evaluate(w, &out, spec)
		ranked = append(ranked, Ranked{Outcome: out, Score: sc})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Score.Fitness != ranked[j].Score.Fitness {
			return ranked[i].Score.Fitness < ranked[j].Score.Fitness
		}
		return ranked[i].Outcome.Policy.Name < ranked[j].Outcome.Policy.Name
	})
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked
}

// WriteTable renders the ranking as a fixed-width text table (top <= 0
// writes every row).
func WriteTable(w io.Writer, ranked []Ranked, top int) {
	if top <= 0 || top > len(ranked) {
		top = len(ranked)
	}
	fmt.Fprintf(w, "%4s  %-34s %8s %7s %9s %8s %8s %7s\n",
		"rank", "policy", "fitness", "loss", "dlvr-p99", "repaired", "abandon", "ovh")
	for _, r := range ranked[:top] {
		fmt.Fprintf(w, "%4d  %-34s %8.3f %6.1f%% %9s %8d %8d %6.2fx\n",
			r.Rank, r.Outcome.Policy.Name, r.Score.Fitness,
			100*r.Outcome.LossFrac, fmtDur(r.Outcome.DeliveryP99),
			r.Outcome.Repaired, r.Outcome.Abandoned, r.Score.ByteOverhead)
	}
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Microsecond).String()
}

// WriteJSON renders the full ranking as deterministic indented JSON.
func WriteJSON(w io.Writer, ranked []Ranked) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ranked)
}
