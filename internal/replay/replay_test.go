package replay

import (
	"bytes"
	"testing"
	"time"

	"adaptiveqos/internal/slo"
)

// syntheticWorkload builds a 3-client session: alice and bob publish
// an event every 25ms for 3 simulated seconds (plus a two-level data
// burst every 4th event), carol only listens; the recorded mean loss
// is lossFrac.
func syntheticWorkload(lossFrac float64) *Workload {
	w := &Workload{
		StartNS:   1_000_000_000,
		Senders:   []string{"alice", "bob"},
		Receivers: []string{"alice", "bob", "carol"},
		Host:      map[string][]HostSample{},
		MeanLoss:  lossFrac,
	}
	var seq = map[string]uint64{}
	for i := 0; i < 120; i++ {
		at := w.StartNS + int64(i)*25_000_000
		for _, sender := range w.Senders {
			seq[sender]++
			w.Publishes = append(w.Publishes, Publish{
				AtNS: at, Sender: sender, Seq: seq[sender],
				Kind: "event", Size: 128,
			})
			if i%4 == 0 {
				for lvl := 0; lvl < 2; lvl++ {
					seq[sender]++
					w.Publishes = append(w.Publishes, Publish{
						AtNS: at + 1_000_000, Sender: sender, Seq: seq[sender],
						Kind: "data", Modality: "image", Level: lvl, Size: 1024,
					})
				}
			}
		}
		w.EndNS = at + 2_000_000
	}
	// A wireless client's SIR trace straddling the sketch/image bands.
	for i := 0; i < 30; i++ {
		w.SIR = append(w.SIR, SIRSample{
			AtNS: w.StartNS + int64(i)*100_000_000, Client: "w0",
			SIRdB: []float64{-2, 1, 3, 5, 7}[i%5],
		})
	}
	return w
}

func TestSimulateLosslessDeliversEverything(t *testing.T) {
	w := syntheticWorkload(0)
	out := Simulate(w, Policy{}, SimConfig{Loss: 0})
	if out.Sent != out.Offered {
		t.Errorf("sent = %d, offered = %d (default budget must pass everything)", out.Sent, out.Offered)
	}
	if out.Delivered != out.Expected || out.Expected == 0 {
		t.Errorf("delivered = %d, expected = %d", out.Delivered, out.Expected)
	}
	if out.LossFrac != 0 || out.RepairRequests != 0 {
		t.Errorf("lossFrac = %v, requests = %d on a clean network", out.LossFrac, out.RepairRequests)
	}
	if out.DeliveryP99 <= 0 || out.DeliveryP99 > 50*time.Millisecond {
		t.Errorf("delivery p99 = %v, want ~link delay", out.DeliveryP99)
	}
}

func TestSimulateRepairRecoversLoss(t *testing.T) {
	w := syntheticWorkload(0.35)
	cfg := SimConfig{Seed: 7, Loss: 0.35}
	off := Simulate(w, Policy{Repair: RepairPolicy{Enabled: false}}, cfg)
	on := Simulate(w, Policy{
		Repair: RepairPolicy{Enabled: true, StallTimeoutMS: 100, MaxRetries: 6},
	}, cfg)

	if off.LossFrac < 0.25 {
		t.Errorf("repair-off lossFrac = %v, want ≈ injected 0.35", off.LossFrac)
	}
	if on.LossFrac > 0.05 {
		t.Errorf("repair-on lossFrac = %v, want < 5%% after NACK replay", on.LossFrac)
	}
	if on.Repaired == 0 || on.RepairRequests == 0 {
		t.Errorf("repair-on: repaired = %d, requests = %d, want > 0", on.Repaired, on.RepairRequests)
	}
	if off.RepairRequests != 0 || off.RepairBytes != 0 {
		t.Errorf("repair-off must issue no requests: %+v", off)
	}
	if len(on.ConvergeNS) == 0 {
		t.Error("repair-on: no convergence samples")
	}
}

func TestSimulateBudgetTruncatesDataFrames(t *testing.T) {
	w := syntheticWorkload(0)
	// cpu-load 95% from the start: the Fig 7 mapping collapses the
	// packet budget, so level-1 data frames must be suppressed.
	w.Host["cpu-load"] = []HostSample{{AtNS: w.StartNS, Host: "h0", Param: "cpu-load", Value: 95}}
	out := Simulate(w, Policy{}, SimConfig{Loss: 0})
	if out.Truncated == 0 {
		t.Fatal("high cpu-load must truncate data frames")
	}
	if out.Delivered != out.Expected {
		t.Errorf("surviving frames must still deliver in order: %d/%d", out.Delivered, out.Expected)
	}
	// Renumbering: no repair traffic may appear — truncation must not
	// look like loss to the gap detector.
	on := Simulate(w, Policy{
		Repair: RepairPolicy{Enabled: true, StallTimeoutMS: 100, MaxRetries: 6},
	}, SimConfig{Loss: 0})
	if on.RepairRequests != 0 {
		t.Errorf("budget truncation leaked into gap detection: %d NACKs on a lossless run", on.RepairRequests)
	}
}

func TestSweepDeterministic(t *testing.T) {
	w := syntheticWorkload(0.35)
	spec := slo.SpecForClass("interactive")
	cfg := SimConfig{Seed: 42, Loss: -1}
	grid := DefaultGrid()[:8]

	var a, b bytes.Buffer
	if err := WriteJSON(&a, Sweep(w, grid, cfg, spec)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, Sweep(w, grid, cfg, spec)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same workload + grid + seed must produce byte-identical rankings")
	}
}

func TestSweepRanksRepairAboveNoRepair(t *testing.T) {
	w := syntheticWorkload(0.35)
	ranked := Sweep(w, DefaultGrid(), SimConfig{Seed: 1, Loss: -1}, slo.SpecForClass("interactive"))
	worstOn, bestOff := -1, len(ranked)
	for i, r := range ranked {
		if r.Outcome.Policy.Repair.Enabled {
			worstOn = i
		} else if i < bestOff {
			bestOff = i
		}
	}
	if worstOn >= bestOff {
		for _, r := range ranked {
			t.Logf("%2d %-40s fit=%.3f loss=%.3f", r.Rank, r.Outcome.Policy.Name,
				r.Score.Fitness, r.Outcome.LossFrac)
		}
		t.Fatalf("repair-enabled policies must rank strictly above repair-disabled: worst-on=%d best-off=%d",
			worstOn+1, bestOff+1)
	}
}

func TestDefaultGridAndLoadGrid(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) != 30 {
		t.Fatalf("default grid = %d candidates, want 30", len(grid))
	}
	seen := map[string]bool{}
	for _, p := range grid {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("grid names must be unique and non-empty: %q", p.Name)
		}
		seen[p.Name] = true
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGrid(bytes.NewReader([]byte(
		`[{"name":"a","repair":{"enabled":true,"stall_timeout_ms":50,"max_retries":3}},{"name":"b"}]`)))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded[0].Repair.StallTimeout() != 50*time.Millisecond {
		t.Errorf("loaded grid: %+v", loaded)
	}
	if loaded[1].Inference.MaxPackets != 16 {
		t.Errorf("defaults must fill unset inference params: %+v", loaded[1].Inference)
	}
	if _, err := LoadGrid(bytes.NewReader([]byte(`[{"name":"x"},{"name":"x"}]`))); err == nil {
		t.Error("duplicate names must be rejected")
	}
	if _, err := LoadGrid(bytes.NewReader([]byte(`[]`))); err == nil {
		t.Error("empty grid must be rejected")
	}
}
