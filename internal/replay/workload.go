// Package replay reruns a recorded collaboration session against
// alternative QoS policies — counterfactual policy replay (DESIGN.md
// §15, ROADMAP 5).  A v1 JSONL session record (obs.LoadSession) is
// reduced to a Workload: the publish schedule (who sent what, when, how
// big), the host-resource timeline the inference rules reacted to, the
// observed per-link loss, and the wireless clients' SIR trace.  The
// workload is then re-simulated on clock.Virtual + transport.DESNet
// under each candidate Policy, and the outcomes are scored with the
// same burn-rate math the live SLO engine uses, so "what would policy X
// have done to this session" is answered deterministically: the same
// record and grid always produce byte-identical rankings.
package replay

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptiveqos/internal/obs"
)

// ErrNoWorkload reports a session record with no publish events — a
// pre-PR-9 record, or a session where nothing was published.  There is
// nothing to replay.
var ErrNoWorkload = errors.New("replay: record carries no publish events")

// Publish is one recorded workload frame.
type Publish struct {
	AtNS   int64  // virtual publish instant (record timeline)
	Sender string // publishing client
	Seq    uint64 // recorded per-sender sequence (reporting only;
	// replay renumbers, since candidate budgets change which
	// frames exist before sequencing)
	Kind     string // "event" or "data"
	Modality string // media attribute ("", "image", ...)
	Level    int    // progressive refinement level (data frames)
	Size     int    // payload bytes
}

// HostSample is one recorded host-resource gauge sample.
type HostSample struct {
	AtNS  int64
	Host  string
	Param string // hostagent param name, e.g. "cpu-load"
	Value float64
}

// SIRSample is one recorded wireless-client SIR sample.
type SIRSample struct {
	AtNS   int64
	Client string
	SIRdB  float64
}

// Workload is everything the replay needs from a recorded session.
type Workload struct {
	StartNS int64 // header start (virtual epoch of the rerun)
	EndNS   int64 // last interesting event instant

	// Publishes, sorted by (AtNS, Sender, Seq): the offered load.
	Publishes []Publish
	// Senders and Receivers (both sorted) are the replayed multicast
	// group: every publisher plus every client that reported RTP loss.
	// Wireless clients present only via SIR samples are not simulated
	// on the network — candidate tier thresholds are scored against
	// their recorded SIR trace instead (see fitness.go).
	Senders   []string
	Receivers []string

	// Host is the resource timeline, per param, each slice sorted by
	// AtNS: the inputs the inference budget reacts to during replay.
	Host map[string][]HostSample

	// SIR is the wireless clients' recorded SIR trace, sorted by
	// (AtNS, Client).
	SIR []SIRSample

	// MeanLoss is the mean of every rtp_loss_fraction sample — the
	// observed link condition the replayed network reproduces (the
	// driver may override it).
	MeanLoss float64

	// Truncated reports the record ended in a half-written line (the
	// workload is everything before the tear).
	Truncated bool
}

// Span returns the workload's duration in nanoseconds.
func (w *Workload) Span() int64 { return w.EndNS - w.StartNS }

// ExtractWorkload reduces a loaded session record to its replayable
// workload.  Records without publish events are rejected with
// ErrNoWorkload: there is nothing to rerun.
func ExtractWorkload(s *obs.Session) (*Workload, error) {
	w := &Workload{
		StartNS:   s.Header.StartNS,
		Host:      make(map[string][]HostSample),
		Truncated: s.Truncated,
	}
	senders := make(map[string]bool)
	receivers := make(map[string]bool)
	var lossSum float64
	var lossN int

	for i := range s.Events {
		ev := &s.Events[i]
		if ev.AtNS > w.EndNS {
			w.EndNS = ev.AtNS
		}
		switch ev.Type {
		case obs.RecTypePublish:
			w.Publishes = append(w.Publishes, Publish{
				AtNS:     ev.AtNS,
				Sender:   ev.Client,
				Seq:      ev.Seq,
				Kind:     ev.Name,
				Modality: ev.Detail,
				Level:    ev.Level,
				Size:     ev.Size,
			})
			senders[ev.Client] = true
		case obs.RecTypeQoS:
			base, labels, ok := parseGaugeName(ev.Name)
			if !ok {
				continue
			}
			switch base {
			case "host_param":
				w.Host[labels["param"]] = append(w.Host[labels["param"]], HostSample{
					AtNS: ev.AtNS, Host: labels["host"],
					Param: labels["param"], Value: ev.Value,
				})
			case "client_sir_db":
				w.SIR = append(w.SIR, SIRSample{
					AtNS: ev.AtNS, Client: labels["client"], SIRdB: ev.Value,
				})
			case "rtp_loss_fraction":
				// Only the per-sender series carry a sender label; the
				// client-wide aggregate (no sender) would double-count.
				if labels["sender"] == "" {
					continue
				}
				receivers[labels["client"]] = true
				lossSum += ev.Value
				lossN++
			}
		}
	}
	if len(w.Publishes) == 0 {
		return nil, ErrNoWorkload
	}
	if lossN > 0 {
		w.MeanLoss = lossSum / float64(lossN)
	}
	if math.IsNaN(w.MeanLoss) || w.MeanLoss < 0 {
		w.MeanLoss = 0
	}

	sort.Slice(w.Publishes, func(i, j int) bool {
		a, b := w.Publishes[i], w.Publishes[j]
		if a.AtNS != b.AtNS {
			return a.AtNS < b.AtNS
		}
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		return a.Seq < b.Seq
	})
	for _, hs := range w.Host {
		sort.Slice(hs, func(i, j int) bool { return hs[i].AtNS < hs[j].AtNS })
	}
	sort.Slice(w.SIR, func(i, j int) bool {
		if w.SIR[i].AtNS != w.SIR[j].AtNS {
			return w.SIR[i].AtNS < w.SIR[j].AtNS
		}
		return w.SIR[i].Client < w.SIR[j].Client
	})

	// The multicast group: publishers plus loss-reporting receivers.
	for id := range senders {
		w.Senders = append(w.Senders, id)
		receivers[id] = true
	}
	sort.Strings(w.Senders)
	for id := range receivers {
		w.Receivers = append(w.Receivers, id)
	}
	sort.Strings(w.Receivers)

	// Anchor: records written before the first event (or with a wall
	// header over a virtual timeline) can place StartNS after the
	// events; clamp to the earliest instant seen.
	if first := w.Publishes[0].AtNS; w.StartNS > first || w.StartNS == 0 {
		w.StartNS = first
	}
	if w.EndNS < w.StartNS {
		w.EndNS = w.StartNS
	}
	return w, nil
}

// hostValueAt returns the mean over hosts of the latest sample at or
// before atNS for one param; NaN when no host has reported yet (the
// inference budget treats NaN as unobserved → unconstrained).
func (w *Workload) hostValueAt(param string, atNS int64) float64 {
	hs := w.Host[param]
	if len(hs) == 0 {
		return math.NaN()
	}
	// Latest sample per host ≤ atNS (slices are AtNS-sorted).
	latest := make(map[string]float64)
	for i := range hs {
		if hs[i].AtNS > atNS {
			break
		}
		latest[hs[i].Host] = hs[i].Value
	}
	if len(latest) == 0 {
		return math.NaN()
	}
	// Sum in sorted host order: float addition is order-sensitive and
	// map iteration would make reruns diverge in the last ulp.
	hosts := make([]string, 0, len(latest))
	for h := range latest {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	var sum float64
	for _, h := range hosts {
		sum += latest[h]
	}
	return sum / float64(len(latest))
}

// parseGaugeName splits a Prometheus-style gauge name
// (`base{k="v",k2="v2"}`) into base and labels.  EscapeLabel's escapes
// (\\ and \") are reversed.  Names without labels return ok with an
// empty map.
func parseGaugeName(name string) (base string, labels map[string]string, ok bool) {
	labels = map[string]string{}
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, labels, true
	}
	if !strings.HasSuffix(name, "}") {
		return "", nil, false
	}
	base = name[:i]
	body := name[i+1 : len(name)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return "", nil, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		var sb strings.Builder
		j := 0
		for ; j < len(rest); j++ {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				j++
				sb.WriteByte(rest[j])
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		if j >= len(rest) {
			return "", nil, false // unterminated value
		}
		labels[key] = sb.String()
		body = rest[j+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return "", nil, false
		}
	}
	return base, labels, true
}

// String summarizes the workload for logs.
func (w *Workload) String() string {
	return fmt.Sprintf("workload: %d publishes from %d sender(s) to %d receiver(s) over %.2fs (mean loss %.1f%%)",
		len(w.Publishes), len(w.Senders), len(w.Receivers),
		float64(w.Span())/1e9, 100*w.MeanLoss)
}
