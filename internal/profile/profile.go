// Package profile implements client profiles and QoS contracts.
//
// A profile is the locally maintained description of a client: its
// interests, preferences, capabilities, and the current system/network
// state it observes.  All messaging in the framework is addressed to
// profiles rather than names: a message's semantic selector is evaluated
// against each client's flattened profile attributes, so the set of
// receivers is determined only at run time.
//
// A QoS contract is the set of user-specified constraints over system
// and application parameters that the inference engine must keep
// satisfied, degrading information quality (gradual gradation) or
// switching modality when it cannot.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"adaptiveqos/internal/selector"
)

// Section names under which profile attributes are flattened.  A
// capability "transform.MPEG2.JPEG" appears to selectors as
// "cap.transform.MPEG2.JPEG".
const (
	SectionInterest   = "interest"
	SectionPreference = "pref"
	SectionCapability = "cap"
	SectionState      = "state"
)

// Profile describes a collaborating client.  The zero value is not
// usable; create profiles with New.  Profile values handed out by
// Manager are snapshots and safe to read without synchronization.
type Profile struct {
	// ID is a stable identifier used for diagnostics and unicast relay
	// bookkeeping.  It never participates in semantic matching.
	ID string

	// Interests describe what the client wants to receive
	// (e.g. media, topics, maximum sizes).
	Interests selector.Attributes

	// Preferences describe how the client wants information delivered
	// (e.g. preferred modality, color/monochrome).
	Preferences selector.Attributes

	// Capabilities describe what the client can process, including
	// transformation capabilities (e.g. decode formats, display depth).
	Capabilities selector.Attributes

	// State carries current system and network conditions observed at
	// the client (CPU load, page faults, bandwidth, signal strength).
	State selector.Attributes

	// Version increments on every mutation through a Manager.
	Version uint64
}

// New creates an empty profile for the given client ID.
func New(id string) *Profile {
	return &Profile{
		ID:           id,
		Interests:    make(selector.Attributes),
		Preferences:  make(selector.Attributes),
		Capabilities: make(selector.Attributes),
		State:        make(selector.Attributes),
	}
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	return &Profile{
		ID:           p.ID,
		Interests:    p.Interests.Clone(),
		Preferences:  p.Preferences.Clone(),
		Capabilities: p.Capabilities.Clone(),
		State:        p.State.Clone(),
		Version:      p.Version,
	}
}

// Flatten merges the profile sections into a single attribute space for
// selector evaluation.  Section attributes are exposed both under their
// prefixed names ("state.cpu-load") and, for interests and preferences,
// under their bare names, which is what message selectors written
// against the shared attribute vocabulary match on.
func (p *Profile) Flatten() selector.Attributes {
	out := make(selector.Attributes,
		2*len(p.Interests)+2*len(p.Preferences)+len(p.Capabilities)+len(p.State)+1)
	for k, v := range p.Interests {
		out[k] = v
		out[SectionInterest+"."+k] = v
	}
	for k, v := range p.Preferences {
		out[k] = v
		out[SectionPreference+"."+k] = v
	}
	for k, v := range p.Capabilities {
		out[SectionCapability+"."+k] = v
	}
	for k, v := range p.State {
		out[SectionState+"."+k] = v
	}
	out["client"] = selector.S(p.ID)
	return out
}

// Matches reports whether the selector is satisfied by this profile.
func (p *Profile) Matches(sel *selector.Selector) bool {
	return sel.Matches(p.Flatten())
}

// TransformCapabilityKey returns the capability attribute name that
// advertises an available from→to transformation, e.g.
// "transform.MPEG2.JPEG" or "transform.image.text".
func TransformCapabilityKey(from, to string) string {
	return "transform." + from + "." + to
}

// CanTransform reports whether the profile advertises a from→to
// transformation capability.
func (p *Profile) CanTransform(from, to string) bool {
	v, ok := p.Capabilities[TransformCapabilityKey(from, to)]
	return ok && (v.Kind() != selector.KindBool || v.Bool())
}

// SetTransform advertises (or revokes) a from→to transformation
// capability on the profile.
func (p *Profile) SetTransform(from, to string, ok bool) {
	key := TransformCapabilityKey(from, to)
	if ok {
		p.Capabilities[key] = selector.B(true)
	} else {
		delete(p.Capabilities, key)
	}
}

// ReachableFormats returns from plus every format the profile can reach
// from it through a single advertised transformation, sorted.
func (p *Profile) ReachableFormats(from string) []string {
	set := map[string]bool{from: true}
	prefix := "transform." + from + "."
	for k, v := range p.Capabilities {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if v.Kind() == selector.KindBool && !v.Bool() {
			continue
		}
		set[strings.TrimPrefix(k, prefix)] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// String renders the profile compactly for logs.
func (p *Profile) String() string {
	return fmt.Sprintf("profile(%s v%d interests=%s prefs=%s caps=%s state=%s)",
		p.ID, p.Version, p.Interests, p.Preferences, p.Capabilities, p.State)
}
