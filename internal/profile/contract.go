package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptiveqos/internal/selector"
)

// Constraint bounds a single numeric system or application parameter.
// A parameter satisfies the constraint when Min <= value <= Max.
// Unbounded ends use -Inf/+Inf.
type Constraint struct {
	// Param is the state attribute name, e.g. "cpu-load" or "bandwidth".
	Param string
	// Min and Max bound acceptable values (inclusive).
	Min, Max float64
	// Weight expresses the relative importance of the constraint when
	// the inference engine must trade constraints off; 0 means 1.0.
	Weight float64
	// Hard constraints must hold for the contract to be satisfied;
	// soft constraints only contribute to the satisfaction score.
	Hard bool
}

// Validate checks internal consistency.
func (c Constraint) Validate() error {
	if c.Param == "" {
		return fmt.Errorf("profile: constraint with empty parameter name")
	}
	if c.Min > c.Max {
		return fmt.Errorf("profile: constraint %q has min %g > max %g", c.Param, c.Min, c.Max)
	}
	if c.Weight < 0 {
		return fmt.Errorf("profile: constraint %q has negative weight", c.Param)
	}
	return nil
}

// weight returns the effective weight (default 1).
func (c Constraint) weight() float64 {
	if c.Weight == 0 {
		return 1
	}
	return c.Weight
}

// holds reports whether v satisfies the constraint, and a degree of
// violation in [0, 1] where 0 means satisfied (used for scoring).
func (c Constraint) holds(v float64) (bool, float64) {
	if v >= c.Min && v <= c.Max {
		return true, 0
	}
	span := c.Max - c.Min
	if math.IsInf(span, 1) || span <= 0 {
		span = math.Max(math.Abs(c.Max), math.Abs(c.Min))
		if span == 0 || math.IsInf(span, 1) {
			span = 1
		}
	}
	var excess float64
	if v < c.Min {
		excess = c.Min - v
	} else {
		excess = v - c.Max
	}
	return false, math.Min(1, excess/span)
}

// Contract is a user-specified QoS contract: the set of constraints on
// system and application parameters that must be satisfied by the
// inference engine.  The engine consults the contract together with
// current state to determine the guarantee it can offer and the amount
// of information that can be processed.
type Contract struct {
	// Name identifies the contract in logs and policies.
	Name        string
	Constraints []Constraint
}

// NewContract builds a validated contract.
func NewContract(name string, cs ...Constraint) (*Contract, error) {
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	sorted := make([]Constraint, len(cs))
	copy(sorted, cs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Param < sorted[j].Param })
	return &Contract{Name: name, Constraints: sorted}, nil
}

// MustContract is NewContract that panics on error.
func MustContract(name string, cs ...Constraint) *Contract {
	c, err := NewContract(name, cs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Evaluation is the result of checking a contract against state.
type Evaluation struct {
	// Satisfied reports whether every hard constraint holds.
	Satisfied bool
	// Score is a weighted satisfaction measure in [0, 1]; 1 means every
	// constraint (hard and soft) holds.
	Score float64
	// Violated lists the parameters of violated constraints, sorted.
	Violated []string
	// Missing lists constrained parameters absent from the state, sorted.
	Missing []string
}

// Evaluate checks the contract against a state attribute set.  A
// missing parameter violates its constraint (the engine cannot certify
// what it cannot observe).
func (ct *Contract) Evaluate(state selector.Attributes) Evaluation {
	ev := Evaluation{Satisfied: true, Score: 1}
	if len(ct.Constraints) == 0 {
		return ev
	}
	var totalW, lostW float64
	for _, c := range ct.Constraints {
		w := c.weight()
		totalW += w
		v, ok := state[c.Param]
		if !ok || v.Kind() != selector.KindNumber {
			ev.Missing = append(ev.Missing, c.Param)
			ev.Violated = append(ev.Violated, c.Param)
			lostW += w
			if c.Hard {
				ev.Satisfied = false
			}
			continue
		}
		holds, degree := c.holds(v.Num())
		if !holds {
			ev.Violated = append(ev.Violated, c.Param)
			lostW += w * degree
			if c.Hard {
				ev.Satisfied = false
			}
		}
	}
	sort.Strings(ev.Violated)
	sort.Strings(ev.Missing)
	if totalW > 0 {
		ev.Score = 1 - lostW/totalW
	}
	return ev
}

// String renders the contract for logs.
func (ct *Contract) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "contract(%s", ct.Name)
	for _, c := range ct.Constraints {
		kind := "soft"
		if c.Hard {
			kind = "hard"
		}
		fmt.Fprintf(&sb, " %s∈[%g,%g]/%s", c.Param, c.Min, c.Max, kind)
	}
	sb.WriteByte(')')
	return sb.String()
}
