package profile

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/selector"
)

func TestConstraintValidate(t *testing.T) {
	cases := []struct {
		c  Constraint
		ok bool
	}{
		{Constraint{Param: "cpu", Min: 0, Max: 100}, true},
		{Constraint{Param: "cpu", Min: 0, Max: math.Inf(1)}, true},
		{Constraint{Param: "", Min: 0, Max: 1}, false},
		{Constraint{Param: "cpu", Min: 2, Max: 1}, false},
		{Constraint{Param: "cpu", Min: 0, Max: 1, Weight: -1}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", tc.c, err, tc.ok)
		}
	}
	if _, err := NewContract("bad", Constraint{Param: "", Min: 0, Max: 1}); err == nil {
		t.Error("NewContract should reject invalid constraints")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustContract should panic on invalid input")
		}
	}()
	MustContract("bad", Constraint{Param: "x", Min: 3, Max: 1})
}

func state(pairs ...any) selector.Attributes {
	a := make(selector.Attributes)
	for i := 0; i < len(pairs); i += 2 {
		switch v := pairs[i+1].(type) {
		case int:
			a[pairs[i].(string)] = selector.N(float64(v))
		case float64:
			a[pairs[i].(string)] = selector.N(v)
		case string:
			a[pairs[i].(string)] = selector.S(v)
		}
	}
	return a
}

func TestContractEvaluate(t *testing.T) {
	ct := MustContract("qos",
		Constraint{Param: "cpu-load", Min: 0, Max: 80, Hard: true},
		Constraint{Param: "bandwidth", Min: 64_000, Max: math.Inf(1), Hard: true},
		Constraint{Param: "jitter", Min: 0, Max: 50, Weight: 0.5},
	)

	ev := ct.Evaluate(state("cpu-load", 40, "bandwidth", 1_000_000, "jitter", 10))
	if !ev.Satisfied || ev.Score != 1 || len(ev.Violated) != 0 {
		t.Errorf("all-good evaluation = %+v", ev)
	}

	ev = ct.Evaluate(state("cpu-load", 95, "bandwidth", 1_000_000, "jitter", 10))
	if ev.Satisfied {
		t.Error("hard cpu violation should unsatisfy contract")
	}
	if len(ev.Violated) != 1 || ev.Violated[0] != "cpu-load" {
		t.Errorf("Violated = %v", ev.Violated)
	}
	if ev.Score >= 1 || ev.Score <= 0 {
		t.Errorf("score = %g, want in (0,1)", ev.Score)
	}

	// Soft violation alone keeps the contract satisfied but lowers score.
	ev = ct.Evaluate(state("cpu-load", 40, "bandwidth", 1_000_000, "jitter", 500))
	if !ev.Satisfied {
		t.Error("soft violation must not unsatisfy")
	}
	if ev.Score >= 1 {
		t.Error("soft violation must lower score")
	}

	// Missing parameter counts as violated (and listed as missing).
	ev = ct.Evaluate(state("cpu-load", 40, "jitter", 10))
	if ev.Satisfied {
		t.Error("missing hard parameter should unsatisfy")
	}
	if len(ev.Missing) != 1 || ev.Missing[0] != "bandwidth" {
		t.Errorf("Missing = %v", ev.Missing)
	}

	// Non-numeric parameter is treated as missing.
	ev = ct.Evaluate(state("cpu-load", 40, "bandwidth", "lots", "jitter", 10))
	if ev.Satisfied || len(ev.Missing) != 1 {
		t.Errorf("string-valued param evaluation = %+v", ev)
	}

	empty := MustContract("empty")
	if ev := empty.Evaluate(nil); !ev.Satisfied || ev.Score != 1 {
		t.Errorf("empty contract = %+v", ev)
	}

	if s := ct.String(); !strings.Contains(s, "cpu-load") || !strings.Contains(s, "hard") {
		t.Errorf("String = %q", s)
	}
}

// TestQuickContractScoreBounds: the satisfaction score always lies in
// [0, 1], and a state satisfying every constraint scores exactly 1.
func TestQuickContractScoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		cs := make([]Constraint, n)
		st := make(selector.Attributes)
		inside := true
		for i := range cs {
			lo := r.Float64()*200 - 100
			hi := lo + r.Float64()*100
			cs[i] = Constraint{
				Param:  string(rune('a' + i)),
				Min:    lo,
				Max:    hi,
				Weight: r.Float64() * 3,
				Hard:   r.Intn(2) == 0,
			}
			if r.Intn(4) == 0 {
				// leave the parameter out or push it outside the bounds
				inside = false
				if r.Intn(2) == 0 {
					st[cs[i].Param] = selector.N(hi + 1 + r.Float64()*1000)
				}
			} else {
				st[cs[i].Param] = selector.N(lo + r.Float64()*(hi-lo))
			}
		}
		ct, err := NewContract("q", cs...)
		if err != nil {
			return false
		}
		ev := ct.Evaluate(st)
		if ev.Score < 0 || ev.Score > 1 {
			t.Logf("seed %d: score %g out of range", seed, ev.Score)
			return false
		}
		if inside && (ev.Score != 1 || !ev.Satisfied || len(ev.Violated) != 0) {
			t.Logf("seed %d: in-bounds state not fully satisfied: %+v", seed, ev)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContractMonotonicity: pushing one parameter further past its
// bound never raises the score.
func TestQuickContractMonotonicity(t *testing.T) {
	ct := MustContract("m",
		Constraint{Param: "p", Min: 0, Max: 100, Hard: true},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 100 + r.Float64()*50
		b := a + r.Float64()*200
		evA := ct.Evaluate(state("p", a))
		evB := ct.Evaluate(state("p", b))
		return evB.Score <= evA.Score+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
