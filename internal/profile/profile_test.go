package profile

import (
	"sync"
	"testing"

	"adaptiveqos/internal/selector"
)

func TestFlattenAndMatch(t *testing.T) {
	p := New("clientA")
	p.Interests.SetString("media", "image")
	p.Preferences.SetString("modality", "speech")
	p.Capabilities.SetBool("display.color", true)
	p.State.SetNumber("cpu-load", 45)

	flat := p.Flatten()
	checks := map[string]selector.Value{
		"media":             selector.S("image"),
		"interest.media":    selector.S("image"),
		"modality":          selector.S("speech"),
		"pref.modality":     selector.S("speech"),
		"cap.display.color": selector.B(true),
		"state.cpu-load":    selector.N(45),
		"client":            selector.S("clientA"),
	}
	for k, want := range checks {
		got, ok := flat[k]
		if !ok || !got.Equal(want) {
			t.Errorf("Flatten()[%q] = %v (ok=%v), want %v", k, got, ok, want)
		}
	}

	if !p.Matches(selector.MustCompile(`media == "image" and state.cpu-load < 50`)) {
		t.Error("profile should match media/cpu selector")
	}
	if p.Matches(selector.MustCompile(`media == "video"`)) {
		t.Error("profile should not match video selector")
	}
	if !p.Matches(selector.MustCompile(`client == "clientA"`)) {
		t.Error("client pseudo-attribute should be matchable")
	}
}

func TestTransformCapabilities(t *testing.T) {
	p := New("c")
	if p.CanTransform("MPEG2", "JPEG") {
		t.Error("fresh profile should have no transforms")
	}
	p.SetTransform("MPEG2", "JPEG", true)
	p.SetTransform("image", "text", true)
	p.SetTransform("image", "speech", true)
	if !p.CanTransform("MPEG2", "JPEG") {
		t.Error("transform MPEG2->JPEG should be advertised")
	}
	if p.CanTransform("JPEG", "MPEG2") {
		t.Error("transforms are directional")
	}
	got := p.ReachableFormats("image")
	want := []string{"image", "speech", "text"}
	if len(got) != len(want) {
		t.Fatalf("ReachableFormats = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReachableFormats = %v, want %v", got, want)
		}
	}
	p.SetTransform("image", "speech", false)
	if p.CanTransform("image", "speech") {
		t.Error("revoked transform should be gone")
	}

	// The flattened capability is visible to selectors too.
	if !p.Matches(selector.MustCompile(`cap.transform.MPEG2.JPEG == true`)) {
		t.Error("transform capability should be selectable")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New("c")
	p.State.SetNumber("x", 1)
	c := p.Clone()
	c.State.SetNumber("x", 2)
	c.Interests.SetString("media", "text")
	if p.State["x"].Num() != 1 {
		t.Error("Clone shares State")
	}
	if _, ok := p.Interests["media"]; ok {
		t.Error("Clone shares Interests")
	}
}

func TestManagerUpdateVersioningAndWatch(t *testing.T) {
	m := NewManager("c1")
	if m.Version() != 0 {
		t.Fatalf("initial version = %d", m.Version())
	}
	ch, cancel := m.Watch()
	defer cancel()

	m.SetState("cpu-load", selector.N(80))
	snap := <-ch
	if snap.Version != 1 {
		t.Errorf("watched version = %d, want 1", snap.Version)
	}
	if snap.State["cpu-load"].Num() != 80 {
		t.Errorf("watched state = %v", snap.State)
	}

	// Identity cannot be mutated through Update.
	m.Update(func(p *Profile) { p.ID = "evil" })
	if got := m.Snapshot().ID; got != "c1" {
		t.Errorf("ID after hostile update = %q, want c1", got)
	}

	m.SetPreference("modality", selector.S("text"))
	m.SetInterest("media", selector.S("image"))
	final := m.Snapshot()
	if final.Version != 4 {
		t.Errorf("version = %d, want 4", final.Version)
	}
	if !m.Matches(selector.MustCompile(`media == "image" and modality == "text"`)) {
		t.Error("manager should match after updates")
	}

	cancel()
	cancel() // double-cancel must be safe
	if _, open := <-ch; open {
		// drain at most buffered snapshots; the channel must eventually close
		for range ch {
		}
	}
}

func TestManagerWatchDropsWhenSlow(t *testing.T) {
	m := NewManager("c")
	ch, cancel := m.Watch()
	defer cancel()
	// Overflow the watcher's buffer; Update must never block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			m.SetState("x", selector.N(float64(i)))
		}
		close(done)
	}()
	<-done
	if m.Version() != 100 {
		t.Errorf("version = %d, want 100", m.Version())
	}
	// The last retrievable snapshot (after draining the small buffer)
	// reflects some prefix of the update sequence, never a torn value.
	for {
		select {
		case p := <-ch:
			if p.State["x"].Num() < 0 || p.State["x"].Num() > 99 {
				t.Fatalf("torn snapshot: %v", p.State)
			}
		default:
			return
		}
	}
}

func TestManagerConcurrentUpdates(t *testing.T) {
	m := NewManager("c")
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.SetState("x", selector.N(float64(w*perWriter+i)))
			}
		}(w)
	}
	wg.Wait()
	if got := m.Version(); got != writers*perWriter {
		t.Errorf("version = %d, want %d (lost updates)", got, writers*perWriter)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatal("fresh registry not empty")
	}
	a := New("a")
	a.Interests.SetString("media", "image")
	b := New("b")
	b.Interests.SetString("media", "text")
	r.Put(a)
	r.Put(b)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}

	got, ok := r.Get("a")
	if !ok || got.ID != "a" {
		t.Fatal("Get(a) failed")
	}
	got.Interests.SetString("media", "hacked")
	again, _ := r.Get("a")
	if again.Interests["media"].Str() != "image" {
		t.Error("Get must return an independent copy")
	}

	matched := r.MatchAll(selector.MustCompile(`media == "image"`))
	if len(matched) != 1 || matched[0].ID != "a" {
		t.Errorf("MatchAll = %v", matched)
	}

	if _, err := r.UpdateState("a", "sir", selector.N(7.5)); err != nil {
		t.Fatal(err)
	}
	p, _ := r.Get("a")
	if p.State["sir"].Num() != 7.5 || p.Version != 1 {
		t.Errorf("UpdateState result: %v", p)
	}
	if _, err := r.UpdateState("missing", "x", selector.N(0)); err == nil {
		t.Error("UpdateState on unknown client should fail")
	}

	ids := r.IDs()
	if len(ids) != 2 {
		t.Errorf("IDs = %v", ids)
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Error("Remove semantics broken")
	}
	if r.Len() != 1 {
		t.Errorf("Len after remove = %d", r.Len())
	}
}
