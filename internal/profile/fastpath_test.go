package profile

import (
	"fmt"
	"sync"
	"testing"

	"adaptiveqos/internal/selector"
)

func TestManagerFlatSnapshotMemoization(t *testing.T) {
	m := NewManager("c1")
	m.SetInterest("media", selector.S("image"))

	flat1, gen1 := m.FlatSnapshot()
	flat2, gen2 := m.FlatSnapshot()
	if gen1 != gen2 {
		t.Fatalf("generation moved without a mutation: %d vs %d", gen1, gen2)
	}
	// Identity check: the memoized map is reused, not rebuilt.
	if fmt.Sprintf("%p", flat1) != fmt.Sprintf("%p", flat2) {
		t.Error("repeated FlatSnapshot rebuilt the flattened view")
	}
	if flat1["media"].Str() != "image" {
		t.Error("flattened view missing interest attribute")
	}

	// A mutation bumps the generation and is visible in the next
	// snapshot; the old snapshot is untouched (copy-on-write).
	m.SetState("cpu-load", selector.N(80))
	flat3, gen3 := m.FlatSnapshot()
	if gen3 <= gen1 {
		t.Errorf("generation did not advance: %d → %d", gen1, gen3)
	}
	if flat3["state.cpu-load"].Num() != 80 {
		t.Error("new snapshot missing mutated state")
	}
	if _, ok := flat1["state.cpu-load"]; ok {
		t.Error("old snapshot mutated in place")
	}
}

func TestManagerMatchesUsesMemoizedFlat(t *testing.T) {
	m := NewManager("c1")
	m.SetInterest("media", selector.S("image"))
	sel := selector.MustCompile(`media == "image" and client == "c1"`)
	if !m.Matches(sel) {
		t.Fatal("expected match")
	}
	m.SetInterest("media", selector.S("text"))
	if m.Matches(sel) {
		t.Fatal("match survived an interest change")
	}
}

// Concurrent Update writers and FlatSnapshot readers must be race-free
// and readers must always observe an internally consistent snapshot
// (run under -race).
func TestManagerFlatSnapshotConcurrent(t *testing.T) {
	m := NewManager("c1")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				m.SetState(fmt.Sprintf("p%d", w), selector.N(float64(i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < 1000; i++ {
				flat, gen := m.FlatSnapshot()
				if gen < lastGen {
					t.Error("generation went backwards")
					return
				}
				lastGen = gen
				if flat["client"].Str() != "c1" {
					t.Error("snapshot missing identity attribute")
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Version() != 4*300 {
		t.Errorf("version = %d, want %d", m.Version(), 4*300)
	}
}

func TestRegistryFlatSnapshot(t *testing.T) {
	r := NewRegistry()
	p := New("a")
	p.Interests.SetString("media", "image")
	r.Put(p)

	flat1, v1, ok := r.FlatSnapshot("a")
	if !ok || flat1["media"].Str() != "image" {
		t.Fatalf("FlatSnapshot = %v %d %v", flat1, v1, ok)
	}
	flat2, _, _ := r.FlatSnapshot("a")
	if fmt.Sprintf("%p", flat1) != fmt.Sprintf("%p", flat2) {
		t.Error("repeated FlatSnapshot rebuilt the flattened view")
	}

	// UpdateState with a new value invalidates; equal value does not.
	if _, err := r.UpdateState("a", "sir", selector.N(9)); err != nil {
		t.Fatal(err)
	}
	flat3, v3, _ := r.FlatSnapshot("a")
	if v3 <= v1 || flat3["state.sir"].Num() != 9 {
		t.Fatalf("post-update snapshot: v=%d flat=%v", v3, flat3)
	}
	if _, err := r.UpdateState("a", "sir", selector.N(9)); err != nil {
		t.Fatal(err)
	}
	flat4, v4, _ := r.FlatSnapshot("a")
	if v4 != v3 {
		t.Error("equal-value UpdateState bumped the version")
	}
	if fmt.Sprintf("%p", flat3) != fmt.Sprintf("%p", flat4) {
		t.Error("equal-value UpdateState invalidated the flattened view")
	}

	if _, _, ok := r.FlatSnapshot("missing"); ok {
		t.Error("FlatSnapshot of unknown client reported ok")
	}
	r.Remove("a")
	if _, _, ok := r.FlatSnapshot("a"); ok {
		t.Error("FlatSnapshot after Remove reported ok")
	}
}

// Concurrent registry writers (UpdateState/Put) and flat readers must
// be race-free (run under -race).
func TestRegistryFlatSnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Put(New(fmt.Sprintf("c%d", i)))
	}
	ids := r.IDs()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(w+i)%len(ids)]
				if _, err := r.UpdateState(id, "sir", selector.N(float64(i%7))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(w+i)%len(ids)]
				flat, _, ok := r.FlatSnapshot(id)
				if !ok || flat["client"].Str() != id {
					t.Errorf("inconsistent snapshot for %s", id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
