package profile

import (
	"fmt"
	"sync"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/selector"
)

// Fast-path counters: the dispatch path asks for a flattened profile on
// every received frame, so reuse-vs-rebuild is worth instrumenting.
var (
	ctrFlattenReuse = metrics.C(metrics.CtrFlattenReuse)
	ctrFlattenBuild = metrics.C(metrics.CtrFlattenBuild)
)

// Manager owns a client's profile, serializes mutations, assigns
// monotonically increasing versions, and notifies watchers of changes.
// The profile is dynamic: it changes locally to reflect changes in the
// client (interests, preferences) or in the observed system state.
//
// The manager memoizes the profile's flattened attribute view
// (copy-on-write): Flatten is rebuilt at most once per mutation, not
// once per delivered message.  See FlatSnapshot.
type Manager struct {
	mu       sync.RWMutex
	p        *Profile
	flat     selector.Attributes // memoized p.Flatten(); nil = stale
	watchers map[int]chan *Profile
	nextID   int
}

// NewManager creates a manager owning a fresh profile for id.
func NewManager(id string) *Manager {
	return &Manager{p: New(id), watchers: make(map[int]chan *Profile)}
}

// Snapshot returns an immutable deep copy of the current profile.
func (m *Manager) Snapshot() *Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.p.Clone()
}

// Version returns the current profile version.
func (m *Manager) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.p.Version
}

// FlatSnapshot returns the flattened attribute view of the current
// profile along with its generation (the profile version it reflects).
// The returned map is memoized and shared: it is immutable by contract
// and MUST NOT be mutated by callers.  Mutations through the manager
// leave previously returned snapshots untouched (copy-on-write) and
// cause the next FlatSnapshot to rebuild.
//
// This is the per-frame dispatch path: matching a message selector
// against the local profile costs a map read instead of a deep copy
// plus a rebuild of the whole attribute space.
func (m *Manager) FlatSnapshot() (selector.Attributes, uint64) {
	m.mu.RLock()
	if m.flat != nil {
		flat, gen := m.flat, m.p.Version
		m.mu.RUnlock()
		ctrFlattenReuse.Inc()
		return flat, gen
	}
	m.mu.RUnlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.flat == nil {
		m.flat = m.p.Flatten()
		ctrFlattenBuild.Inc()
	} else {
		ctrFlattenReuse.Inc()
	}
	return m.flat, m.p.Version
}

// Update applies fn to a copy of the profile under the manager's lock,
// bumps the version, installs the result and notifies watchers.  fn
// must not retain the profile.
func (m *Manager) Update(fn func(*Profile)) *Profile {
	m.mu.Lock()
	next := m.p.Clone()
	fn(next)
	next.ID = m.p.ID // the identity is not mutable
	next.Version = m.p.Version + 1
	m.p = next
	m.flat = nil // stale; rebuilt lazily (readers keep the old map)
	snap := next.Clone()
	watchers := make([]chan *Profile, 0, len(m.watchers))
	for _, ch := range m.watchers {
		watchers = append(watchers, ch)
	}
	m.mu.Unlock()

	for _, ch := range watchers {
		// Non-blocking: a slow watcher drops intermediate versions and
		// will observe the latest state on its next receive.
		select {
		case ch <- snap:
		default:
		}
	}
	return snap
}

// SetState is a convenience for updating a single state attribute,
// the most common mutation (driven by the SNMP poll loop).
func (m *Manager) SetState(name string, v selector.Value) *Profile {
	return m.Update(func(p *Profile) { p.State[name] = v })
}

// SetPreference updates a single preference attribute.
func (m *Manager) SetPreference(name string, v selector.Value) *Profile {
	return m.Update(func(p *Profile) { p.Preferences[name] = v })
}

// SetInterest updates a single interest attribute.
func (m *Manager) SetInterest(name string, v selector.Value) *Profile {
	return m.Update(func(p *Profile) { p.Interests[name] = v })
}

// Watch registers a watcher channel that receives profile snapshots
// after each update.  The returned cancel function unregisters it and
// closes the channel.  Snapshots may be dropped for slow receivers but
// the last delivered snapshot is always at least as new as any dropped
// one at the time of delivery.
func (m *Manager) Watch() (<-chan *Profile, func()) {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	ch := make(chan *Profile, 4)
	m.watchers[id] = ch
	m.mu.Unlock()

	cancel := func() {
		m.mu.Lock()
		if _, ok := m.watchers[id]; ok {
			delete(m.watchers, id)
			close(ch)
		}
		m.mu.Unlock()
	}
	return ch, cancel
}

// Matches evaluates sel against the current profile using the memoized
// flattened view.
func (m *Manager) Matches(sel *selector.Selector) bool {
	flat, _ := m.FlatSnapshot()
	return sel.Matches(flat)
}

// Registry is a thread-safe collection of profiles indexed by client
// ID.  The base station uses a Registry to maintain the profiles of all
// wireless clients connected to it and to answer semantic queries on
// their behalf.  Like Manager, the registry memoizes each profile's
// flattened view so relay loops evaluating a selector against every
// client do not rebuild attribute maps per packet.
type Registry struct {
	mu       sync.RWMutex
	profiles map[string]*regEntry
}

// regEntry pairs a stored profile with its lazily built flattened view.
// Both are copy-on-write: mutations install a fresh entry.
type regEntry struct {
	p    *Profile
	flat selector.Attributes // nil until first FlatSnapshot after install
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{profiles: make(map[string]*regEntry)}
}

// Put installs (or replaces) a profile snapshot.
func (r *Registry) Put(p *Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profiles[p.ID] = &regEntry{p: p.Clone()}
}

// Get returns a copy of the profile for id.
func (r *Registry) Get(id string) (*Profile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.profiles[id]
	if !ok {
		return nil, false
	}
	return e.p.Clone(), true
}

// FlatSnapshot returns the memoized flattened attribute view of the
// profile for id and its version.  The returned map is shared and
// immutable by contract: callers MUST NOT mutate it.  It is rebuilt at
// most once per profile mutation.
func (r *Registry) FlatSnapshot(id string) (selector.Attributes, uint64, bool) {
	r.mu.RLock()
	e, ok := r.profiles[id]
	if ok && e.flat != nil {
		flat, ver := e.flat, e.p.Version
		r.mu.RUnlock()
		ctrFlattenReuse.Inc()
		return flat, ver, true
	}
	r.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok = r.profiles[id]
	if !ok {
		return nil, 0, false
	}
	if e.flat == nil {
		e.flat = e.p.Flatten()
		ctrFlattenBuild.Inc()
	} else {
		ctrFlattenReuse.Inc()
	}
	return e.flat, e.p.Version, true
}

// Remove deletes the profile for id, reporting whether it was present.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.profiles[id]
	delete(r.profiles, id)
	return ok
}

// Len returns the number of registered profiles.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.profiles)
}

// IDs returns the registered client IDs in unspecified order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.profiles))
	for id := range r.profiles {
		ids = append(ids, id)
	}
	return ids
}

// MatchAll returns copies of every profile satisfying sel, evaluated
// against the memoized flattened views.
func (r *Registry) MatchAll(sel *selector.Selector) []*Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Profile
	for _, e := range r.profiles {
		if e.flat == nil {
			e.flat = e.p.Flatten()
			ctrFlattenBuild.Inc()
		} else {
			ctrFlattenReuse.Inc()
		}
		if sel.Matches(e.flat) {
			out = append(out, e.p.Clone())
		}
	}
	return out
}

// MatchIDs returns the IDs of every profile satisfying sel, evaluated
// against the memoized flattened views.  It is MatchAll without the
// per-profile deep copy: the dispatch hot path only needs the IDs (and
// resolves attributes through FlatSnapshot), so matching must not pay
// a profile clone per matching client.
func (r *Registry) MatchIDs(sel *selector.Selector) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, e := range r.profiles {
		if e.flat == nil {
			e.flat = e.p.Flatten()
			ctrFlattenBuild.Inc()
		} else {
			ctrFlattenReuse.Inc()
		}
		if sel.Matches(e.flat) {
			out = append(out, id)
		}
	}
	return out
}

// StateKV pairs one state attribute with the value to install; the
// batch form of UpdateState takes a slice of them.
type StateKV struct {
	Name string
	V    selector.Value
}

// UpdateStates mutates several state attributes of a registered
// profile in one lock pass, bumping the version at most once.  Values
// equal to the stored ones are skipped; when every value is unchanged
// the call is a no-op and the memoized flattened view stays valid —
// the same cache-friendly contract as UpdateState, paid for with one
// lock acquisition instead of len(kvs).  The returned bool reports
// whether the profile actually changed (and so whether any derived
// view — like the sharded registry's match index — must reindex it).
func (r *Registry) UpdateStates(id string, kvs []StateKV) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.profiles[id]
	if !ok {
		return false, fmt.Errorf("profile: unknown client %q", id)
	}
	changed := false
	for _, kv := range kvs {
		if old, ok := e.p.State[kv.Name]; !ok || !old.Equal(kv.V) {
			changed = true
			break
		}
	}
	if !changed {
		return false, nil
	}
	next := &Profile{
		ID:           e.p.ID,
		Interests:    e.p.Interests,
		Preferences:  e.p.Preferences,
		Capabilities: e.p.Capabilities,
		State:        e.p.State.Clone(),
		Version:      e.p.Version + 1,
	}
	for _, kv := range kvs {
		next.State[kv.Name] = kv.V
	}
	r.profiles[id] = &regEntry{p: next}
	return true, nil
}

// UpdateState mutates one state attribute of a registered profile in
// place (bumping its version) and returns the new snapshot.  Writing a
// value equal to the stored one is a no-op: the version does not bump
// and the memoized flattened view stays valid, which keeps the relay
// fast path (Assess refreshes sir/distance/power on every packet)
// cache-friendly when the radio geometry is unchanged.
func (r *Registry) UpdateState(id, name string, v selector.Value) (*Profile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.profiles[id]
	if !ok {
		return nil, fmt.Errorf("profile: unknown client %q", id)
	}
	if old, ok := e.p.State[name]; ok && old.Equal(v) {
		return e.p.Clone(), nil
	}
	// Copy-on-write on the State section only: the other sections are
	// never mutated through the registry, so the new entry can share
	// them with the one it replaces (Get/MatchAll hand out deep copies).
	next := &Profile{
		ID:           e.p.ID,
		Interests:    e.p.Interests,
		Preferences:  e.p.Preferences,
		Capabilities: e.p.Capabilities,
		State:        e.p.State.Clone(),
		Version:      e.p.Version + 1,
	}
	next.State[name] = v
	r.profiles[id] = &regEntry{p: next}
	return next.Clone(), nil
}
