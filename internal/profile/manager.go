package profile

import (
	"fmt"
	"sync"

	"adaptiveqos/internal/selector"
)

// Manager owns a client's profile, serializes mutations, assigns
// monotonically increasing versions, and notifies watchers of changes.
// The profile is dynamic: it changes locally to reflect changes in the
// client (interests, preferences) or in the observed system state.
type Manager struct {
	mu       sync.RWMutex
	p        *Profile
	watchers map[int]chan *Profile
	nextID   int
}

// NewManager creates a manager owning a fresh profile for id.
func NewManager(id string) *Manager {
	return &Manager{p: New(id), watchers: make(map[int]chan *Profile)}
}

// Snapshot returns an immutable deep copy of the current profile.
func (m *Manager) Snapshot() *Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.p.Clone()
}

// Version returns the current profile version.
func (m *Manager) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.p.Version
}

// Update applies fn to a copy of the profile under the manager's lock,
// bumps the version, installs the result and notifies watchers.  fn
// must not retain the profile.
func (m *Manager) Update(fn func(*Profile)) *Profile {
	m.mu.Lock()
	next := m.p.Clone()
	fn(next)
	next.ID = m.p.ID // the identity is not mutable
	next.Version = m.p.Version + 1
	m.p = next
	snap := next.Clone()
	watchers := make([]chan *Profile, 0, len(m.watchers))
	for _, ch := range m.watchers {
		watchers = append(watchers, ch)
	}
	m.mu.Unlock()

	for _, ch := range watchers {
		// Non-blocking: a slow watcher drops intermediate versions and
		// will observe the latest state on its next receive.
		select {
		case ch <- snap:
		default:
		}
	}
	return snap
}

// SetState is a convenience for updating a single state attribute,
// the most common mutation (driven by the SNMP poll loop).
func (m *Manager) SetState(name string, v selector.Value) *Profile {
	return m.Update(func(p *Profile) { p.State[name] = v })
}

// SetPreference updates a single preference attribute.
func (m *Manager) SetPreference(name string, v selector.Value) *Profile {
	return m.Update(func(p *Profile) { p.Preferences[name] = v })
}

// SetInterest updates a single interest attribute.
func (m *Manager) SetInterest(name string, v selector.Value) *Profile {
	return m.Update(func(p *Profile) { p.Interests[name] = v })
}

// Watch registers a watcher channel that receives profile snapshots
// after each update.  The returned cancel function unregisters it and
// closes the channel.  Snapshots may be dropped for slow receivers but
// the last delivered snapshot is always at least as new as any dropped
// one at the time of delivery.
func (m *Manager) Watch() (<-chan *Profile, func()) {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	ch := make(chan *Profile, 4)
	m.watchers[id] = ch
	m.mu.Unlock()

	cancel := func() {
		m.mu.Lock()
		if _, ok := m.watchers[id]; ok {
			delete(m.watchers, id)
			close(ch)
		}
		m.mu.Unlock()
	}
	return ch, cancel
}

// Matches evaluates sel against the current profile.
func (m *Manager) Matches(sel *selector.Selector) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.p.Matches(sel)
}

// Registry is a thread-safe collection of profiles indexed by client
// ID.  The base station uses a Registry to maintain the profiles of all
// wireless clients connected to it and to answer semantic queries on
// their behalf.
type Registry struct {
	mu       sync.RWMutex
	profiles map[string]*Profile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{profiles: make(map[string]*Profile)}
}

// Put installs (or replaces) a profile snapshot.
func (r *Registry) Put(p *Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profiles[p.ID] = p.Clone()
}

// Get returns a copy of the profile for id.
func (r *Registry) Get(id string) (*Profile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.profiles[id]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Remove deletes the profile for id, reporting whether it was present.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.profiles[id]
	delete(r.profiles, id)
	return ok
}

// Len returns the number of registered profiles.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.profiles)
}

// IDs returns the registered client IDs in unspecified order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.profiles))
	for id := range r.profiles {
		ids = append(ids, id)
	}
	return ids
}

// MatchAll returns copies of every profile satisfying sel.
func (r *Registry) MatchAll(sel *selector.Selector) []*Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Profile
	for _, p := range r.profiles {
		if p.Matches(sel) {
			out = append(out, p.Clone())
		}
	}
	return out
}

// UpdateState mutates one state attribute of a registered profile in
// place (bumping its version) and returns the new snapshot.
func (r *Registry) UpdateState(id, name string, v selector.Value) (*Profile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.profiles[id]
	if !ok {
		return nil, fmt.Errorf("profile: unknown client %q", id)
	}
	next := p.Clone()
	next.State[name] = v
	next.Version++
	r.profiles[id] = next
	return next.Clone(), nil
}
