package basestation

import (
	"testing"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/wavelet"
)

// TestColorPreservedOnFullTierDownlink: a color image shared on the
// wired session reaches a full-image-tier wireless client in color;
// a degraded client gets the monochrome/text chain instead.
func TestColorPreservedOnFullTierDownlink(t *testing.T) {
	r := newRig(t, Config{})
	wNear := r.joinWireless(t, "near", 20, 1)
	wFar := r.joinWireless(t, "far", 300, 0.2)

	near, _ := r.bs.Assess("near")
	far, _ := r.bs.Assess("far")
	if near.Tier != radio.TierImage || far.Tier >= radio.TierImage || far.Tier == radio.TierNone {
		t.Skipf("tiers: near=%s far=%s", near.Tier, far.Tier)
	}

	im := wavelet.ColorScene(48, 48, 21)
	obj, err := media.EncodeColorImage(im, "color map")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.wired.ShareImage("cmap-1", obj, ""); err != nil {
		t.Fatal(err)
	}

	// Near client: full color, either via the packets path (viewer) or
	// a direct media event.
	waitFor(t, "near color delivery", func() bool {
		if st, err := wNear.Viewer().Stats("cmap-1"); err == nil && st.PacketsAccepted == st.TotalPackets {
			return true
		}
		for _, d := range wNear.Inbox().Items() {
			if media.IsColor(d.Object) {
				return true
			}
		}
		return false
	})
	if st, err := wNear.Viewer().Stats("cmap-1"); err == nil && st.PacketsAccepted == st.TotalPackets {
		cres, err := wNear.Viewer().RenderColor("cmap-1")
		if err != nil {
			t.Fatal(err)
		}
		if !cres.Lossless || !cres.Image.Equal(im) {
			t.Error("near client's color rendition should be exact")
		}
	}

	// Far client: degraded content only, never the color stream.
	waitFor(t, "far delivery", func() bool { return wFar.Inbox().Len() >= 1 })
	for _, d := range wFar.Inbox().Items() {
		if media.IsColor(d.Object) {
			t.Errorf("far client received color at tier %s", far.Tier)
		}
	}
}
