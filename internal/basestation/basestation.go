// Package basestation implements the wireless extension: the base
// station that links a wireless segment to the rest of the distributed
// collaborative session.  The base station is a peer in the multicast
// session and the control coordinator for its wireless clients: it
// maintains their profiles (distance, signal strength, transmit rate,
// capability), computes per-client SIR from the radio channel model,
// gates the modality it forwards on SIR thresholds (text only / text +
// base sketch / full image), relays uplink events to the multicast
// group while unicasting to the other wireless clients, and runs the
// power-control loop that asks over-target clients to transmit lower —
// conserving battery and reducing interference for everyone.
//
// Since the layered-broker refactor (DESIGN.md §9) this package is
// composition plus uplink protocol handling: membership and per-client
// radio state live in the sharded internal/registry, per-client
// delivery runs through the internal/dispatch worker pool and
// pipeline, and both segments are reached through dispatch transmit
// adapters.  The wired-relay and reassembly paths are in relay.go.
package basestation

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/dispatch"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/registry"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/slo"
	"adaptiveqos/internal/transport"
)

// Base-station errors.
var (
	ErrNotJoined     = errors.New("basestation: client is not joined")
	ErrAlreadyJoined = errors.New("basestation: client already joined")
	ErrAdmission     = errors.New("basestation: admission denied")
	ErrNoService     = errors.New("basestation: SIR below any service tier")
)

// MatchIndexMode selects how the downlink relay enumerates the
// candidate receivers of a message selector.
type MatchIndexMode int

const (
	// MatchIndexOn (the default) enumerates candidates through the
	// registry's inverted predicate index: per-message match cost
	// tracks the matching subset, not the registered population.
	MatchIndexOn MatchIndexMode = iota
	// MatchIndexOff retains the brute-force path — every registered
	// client runs the pipeline's match stage — for A/B benchmarking.
	MatchIndexOff
)

// Config parameterizes a base station.
type Config struct {
	// Thresholds gate forwarded modalities (default DefaultThresholds).
	Thresholds radio.Thresholds
	// Registry supplies modality transformers (default DefaultRegistry).
	Registry *media.Registry
	// MaxClients caps the wireless population; 0 = unlimited (the SIR
	// still degrades naturally as clients join).
	MaxClients int
	// TotalPackets is the packet count used when relaying full images
	// to the multicast session (default 16).
	TotalPackets int
	// AdmissionMinSIRdB, when non-zero, denies joins that would push
	// the *joining* client below this SIR.
	AdmissionMinSIRdB float64
	// FanOutWorkers is the dispatch pool's shard count: per-client
	// delivery work is hashed over this many single-worker queues.
	// 0 means GOMAXPROCS; 1 forces the inline sequential path.
	FanOutWorkers int
	// QueueDepth bounds each dispatch shard's queue (default 256);
	// a full queue sheds work with a recorded drop.
	QueueDepth int
	// RegistryShards is the membership registry's lock-shard count
	// (default registry.DefaultShards, rounded up to a power of two).
	RegistryShards int
	// CollectTTL bounds how long an incomplete wired-side image
	// collection may sit idle before the sweeper evicts it (default
	// 60s; < 0 disables the sweep).
	CollectTTL time.Duration
	// MatchIndex selects index-first candidate enumeration on the
	// relay dispatch path (default on; MatchIndexOff retains the
	// O(clients) brute-force scan for A/B comparison, DESIGN.md §12).
	MatchIndex MatchIndexMode
	// Clock timestamps relayed frames and drives the collection
	// sweeper (nil = wall clock).
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (radio.Thresholds{}) {
		c.Thresholds = radio.DefaultThresholds()
	}
	if c.Registry == nil {
		c.Registry = media.DefaultRegistry()
	}
	if c.TotalPackets <= 0 {
		c.TotalPackets = 16
	}
	if c.FanOutWorkers <= 0 {
		c.FanOutWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CollectTTL == 0 {
		c.CollectTTL = time.Minute
	}
	return c
}

// Assessment is the basic service assessment the base station returns
// to a client when it establishes a connection, and on demand.
type Assessment struct {
	SIRdB float64
	Tier  radio.Tier
	// Power is the client's current transmit power.
	Power float64
	// Distance is the client's current distance from the BS.
	Distance float64
}

// Stats counts base-station activity.
type Stats struct {
	UplinkEvents     uint64 // events relayed from wireless clients
	UplinkDropped    uint64 // uplink attempts below any tier
	ForwardFullImage uint64 // shares forwarded at full-image tier
	ForwardSketch    uint64 // shares degraded to sketch
	ForwardText      uint64 // shares degraded to text
	DownlinkUnicasts uint64 // deliveries to wireless clients
}

// BaseStation links the wireless segment to the collaboration session.
// It composes the three broker layers: the sharded membership registry
// (profiles + radio state), the dispatch pool/pipeline (per-client
// delivery), and the transmit adapters (wired multicast, wireless
// unicast); what remains here is the uplink protocol and the radio
// control plane.
type BaseStation struct {
	id       string
	clk      clock.Clock
	wired    transport.Conn // multicast session peer
	wireless transport.Conn // radio-segment endpoint (unicast to clients)
	cfg      Config
	channel  *radio.Channel

	reg  *registry.Registry
	pool *dispatch.Pool

	wiredTx dispatch.Deliverer // multicast adapter (session)
	rfTx    dispatch.Deliverer // unicast adapter (wireless clients)

	// eventPipe relays one light wired-session event to one wireless
	// client: match → tier gate → transmit.
	eventPipe dispatch.Pipeline

	env    message.Enveloper
	unwrap *message.Unwrapper

	seq atomic.Uint32

	// collect reassembles wired-side image shares so the BS can
	// transform them per wireless client; collections tracks announce
	// metadata, parked early packets and TTL eviction.
	collect     *apps.ImageViewer
	collections *registry.Collections[apps.ImageMeta]

	stats struct {
		uplinkEvents, uplinkDropped          atomic.Uint64
		fwdImage, fwdSketch, fwdText, downlk atomic.Uint64
	}

	closeOnce     sync.Once
	wiredDone     chan struct{}
	rfDone        chan struct{}
	sweepStop     chan struct{}
	sweepDone     chan struct{}
	unregRadioSrc func()
}

// New creates a base station bridging the wired multicast session and
// the wireless segment, using channel as the radio model.  It starts
// relay loops on both connections and the collection sweeper.
func New(id string, wired, wireless transport.Conn, channel *radio.Channel, cfg Config) *BaseStation {
	cfg = cfg.withDefaults()
	bs := &BaseStation{
		id:          id,
		clk:         clock.Or(cfg.Clock),
		wired:       wired,
		wireless:    wireless,
		cfg:         cfg,
		channel:     channel,
		reg:         registry.NewWithIndex(cfg.RegistryShards, cfg.MatchIndex != MatchIndexOff),
		unwrap:      message.NewUnwrapper(),
		collect:     apps.NewImageViewer(),
		collections: registry.NewCollections[apps.ImageMeta](cfg.CollectTTL),
		wiredDone:   make(chan struct{}),
		rfDone:      make(chan struct{}),
		sweepStop:   make(chan struct{}),
		sweepDone:   make(chan struct{}),
	}
	bs.env.Node = id
	bs.unwrap.Node = id
	bs.wiredTx = &dispatch.Multicaster{Env: &bs.env, Conn: wired}
	bs.rfTx = &dispatch.Unicaster{Env: &bs.env, Conn: wireless,
		OnSend: func(string) { bs.stats.downlk.Add(1) }}
	bs.pool = dispatch.NewPool(dispatch.PoolConfig{
		Name:       "bs-" + id,
		Workers:    cfg.FanOutWorkers,
		QueueDepth: cfg.QueueDepth,
	})
	bs.eventPipe = dispatch.NewPipeline(
		dispatch.Match(func(id string) (selector.Attributes, bool) {
			flat, _, ok := bs.reg.FlatSnapshot(id)
			return flat, ok
		}),
		bs.tierGate(radio.TierText),
		dispatch.Transmit(bs.rfTx),
	)
	// SLO violation attributions get the client's radio picture from
	// here (Close unregisters).
	bs.unregRadioSrc = slo.Default().RegisterRadioSource(bs.RadioSnapshot)
	go bs.wiredLoop()
	go bs.wirelessLoop()
	go bs.sweepLoop()
	return bs
}

// ID returns the base station's identifier.
func (bs *BaseStation) ID() string { return bs.id }

// Stats returns a snapshot of the relay counters.
func (bs *BaseStation) Stats() Stats {
	return Stats{
		UplinkEvents:     bs.stats.uplinkEvents.Load(),
		UplinkDropped:    bs.stats.uplinkDropped.Load(),
		ForwardFullImage: bs.stats.fwdImage.Load(),
		ForwardSketch:    bs.stats.fwdSketch.Load(),
		ForwardText:      bs.stats.fwdText.Load(),
		DownlinkUnicasts: bs.stats.downlk.Load(),
	}
}

// Close stops the relay loops, the sweeper and the dispatch pool, and
// detaches both connections.
func (bs *BaseStation) Close() error {
	var err error
	bs.closeOnce.Do(func() {
		bs.unregRadioSrc()
		e1 := bs.wired.Close()
		e2 := bs.wireless.Close()
		close(bs.sweepStop)
		<-bs.wiredDone
		<-bs.rfDone
		<-bs.sweepDone
		bs.pool.Close()
		if e1 != nil {
			err = e1
		} else {
			err = e2
		}
	})
	return err
}

// --- Uplink (wireless client → session) ---
// (Membership and radio control plane: membership.go.)

func (bs *BaseStation) newMessage(kind message.Kind, sender, sel string, attrs selector.Attributes, body []byte) *message.Message {
	return &message.Message{
		Kind:      kind,
		Sender:    sender,
		Seq:       bs.seq.Add(1),
		Timestamp: bs.clk.Now(),
		Selector:  sel,
		Attrs:     attrs,
		Body:      body,
	}
}

// UplinkEvent relays a plain event (chat line, whiteboard stroke) from
// a wireless client: multicast to the session, unicast to the other
// wireless clients.  The uplink must meet at least the text tier.
func (bs *BaseStation) UplinkEvent(sender, app, sel string, payload []byte) error {
	if _, ok := bs.reg.Get(sender); !ok {
		return fmt.Errorf("%w: %s", ErrNotJoined, sender)
	}
	assess, err := bs.Assess(sender)
	if err != nil {
		return err
	}
	if assess.Tier < radio.TierText {
		bs.stats.uplinkDropped.Add(1)
		if obs.Enabled() {
			obs.Drop(0, obs.StagePublish,
				fmt.Sprintf("bs %s: uplink event from %s below text tier (%.1f dB)",
					bs.id, sender, assess.SIRdB))
		}
		return fmt.Errorf("%w: %s at %.1f dB", ErrNoService, sender, assess.SIRdB)
	}
	attrs := selector.Attributes{
		message.AttrApp: selector.S(app),
	}
	m := bs.newMessage(message.KindEvent, sender, sel, attrs, payload)
	msgID := obs.MsgID(m.Sender, m.Seq)
	obs.AppendHop(msgID, bs.id, obs.StagePublish)
	sp := obs.StartStage(msgID, obs.StagePublish)
	if err := bs.wiredTx.Deliver("", m); err != nil {
		if sp.Active() {
			sp.EndErr("bs relay: " + err.Error())
		}
		return err
	}
	if err := bs.pool.Each(msgID, bs.reg.IDs(), func(id string) error {
		if id == sender {
			return nil
		}
		return bs.rfTx.Deliver(id, m)
	}); err != nil {
		if sp.Active() {
			sp.EndErr("bs fan-out: " + err.Error())
		}
		return err
	}
	sp.End()
	bs.stats.uplinkEvents.Add(1)
	return nil
}

// UplinkShare relays an image share from a wireless client.  The base
// station receives the content, selects the data-type format by the
// sender's received SIR — full image, text + base sketch, or text
// description only — and forwards that modality to the multicast
// session; each other wireless client receives the richest modality
// its own SIR supports (never richer than what the uplink admitted).
func (bs *BaseStation) UplinkShare(sender, object, sel string, obj *media.Object) error {
	if _, ok := bs.reg.Get(sender); !ok {
		return fmt.Errorf("%w: %s", ErrNotJoined, sender)
	}
	assess, err := bs.Assess(sender)
	if err != nil {
		return err
	}
	if assess.Tier == radio.TierNone {
		bs.stats.uplinkDropped.Add(1)
		if obs.Enabled() {
			obs.Drop(0, obs.StagePublish,
				fmt.Sprintf("bs %s: uplink share from %s below any tier (%.1f dB)",
					bs.id, sender, assess.SIRdB))
		}
		return fmt.Errorf("%w: %s at %.1f dB", ErrNoService, sender, assess.SIRdB)
	}

	// Forward to the wired session at the uplink-admitted tier.
	if err := bs.forwardTiered(sender, object, sel, obj, assess.Tier, bs.wiredTx, ""); err != nil {
		return err
	}
	switch assess.Tier {
	case radio.TierImage:
		bs.stats.fwdImage.Add(1)
	case radio.TierSketch:
		bs.stats.fwdSketch.Add(1)
	case radio.TierText:
		bs.stats.fwdText.Add(1)
	}

	// Unicast to the other wireless clients at min(uplink tier, their
	// own tier), each peer assessed and served by the dispatch pool.
	if err := bs.pool.Each(0, bs.reg.IDs(), func(id string) error {
		if id == sender {
			return nil
		}
		peerAssess, err := bs.Assess(id)
		if err != nil {
			return nil
		}
		tier := peerAssess.Tier
		if assess.Tier < tier {
			tier = assess.Tier
		}
		if tier == radio.TierNone {
			return nil
		}
		return bs.forwardTiered(sender, object, sel, obj, tier, bs.rfTx, id)
	}); err != nil {
		return err
	}
	bs.stats.uplinkEvents.Add(1)
	return nil
}
