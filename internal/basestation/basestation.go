// Package basestation implements the wireless extension: the base
// station that links a wireless segment to the rest of the distributed
// collaborative session.  The base station is a peer in the multicast
// session and the control coordinator for its wireless clients: it
// maintains their profiles (distance, signal strength, transmit rate,
// capability), computes per-client SIR from the radio channel model,
// gates the modality it forwards on SIR thresholds (text only / text +
// base sketch / full image), relays uplink events to the multicast
// group while unicasting to the other wireless clients, and runs the
// power-control loop that asks over-target clients to transmit lower —
// conserving battery and reducing interference for everyone.
package basestation

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/rtp"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/transport"
)

// fnv32 hashes a string to an RTP SSRC.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Base-station errors.
var (
	ErrNotJoined     = errors.New("basestation: client is not joined")
	ErrAlreadyJoined = errors.New("basestation: client already joined")
	ErrAdmission     = errors.New("basestation: admission denied")
	ErrNoService     = errors.New("basestation: SIR below any service tier")
)

// Config parameterizes a base station.
type Config struct {
	// Thresholds gate forwarded modalities (default DefaultThresholds).
	Thresholds radio.Thresholds
	// Registry supplies modality transformers (default DefaultRegistry).
	Registry *media.Registry
	// MaxClients caps the wireless population; 0 = unlimited (the SIR
	// still degrades naturally as clients join).
	MaxClients int
	// TotalPackets is the packet count used when relaying full images
	// to the multicast session (default 16).
	TotalPackets int
	// AdmissionMinSIRdB, when non-zero, denies joins that would push
	// the *joining* client below this SIR.
	AdmissionMinSIRdB float64
	// FanOutWorkers bounds the worker pool used to match, transform and
	// send one relayed message to the wireless population concurrently.
	// 0 means GOMAXPROCS; 1 forces the sequential path.
	FanOutWorkers int
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (radio.Thresholds{}) {
		c.Thresholds = radio.DefaultThresholds()
	}
	if c.Registry == nil {
		c.Registry = media.DefaultRegistry()
	}
	if c.TotalPackets <= 0 {
		c.TotalPackets = 16
	}
	if c.FanOutWorkers <= 0 {
		c.FanOutWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Fan-out instrumentation (see DESIGN.md "Dispatch fast path").
var (
	ctrFanOutBatches = metrics.C(metrics.CtrFanOutBatches)
	ctrFanOutSends   = metrics.C(metrics.CtrFanOutSends)
	ctrFanOutWorkers = metrics.C(metrics.CtrFanOutWorkerSpawns)
)

// fanOut runs fn once per client ID through a bounded worker pool and
// waits for completion, returning the first error (remaining clients
// are still attempted: one slow or failed peer must not starve the
// rest).  Per-client in-order delivery is preserved: each ID is handled
// by exactly one fn call, and the relay loops invoke fanOut for one
// message at a time, joining before the next message is processed.
func (bs *BaseStation) fanOut(ids []string, fn func(id string) error) error {
	ctrFanOutBatches.Inc()
	ctrFanOutSends.Add(uint64(len(ids)))
	workers := bs.cfg.FanOutWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		var firstErr error
		for _, id := range ids {
			if err := fn(id); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	ctrFanOutWorkers.Add(uint64(workers))
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				if err := fn(ids[i]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Assessment is the basic service assessment the base station returns
// to a client when it establishes a connection, and on demand.
type Assessment struct {
	SIRdB float64
	Tier  radio.Tier
	// Power is the client's current transmit power.
	Power float64
	// Distance is the client's current distance from the BS.
	Distance float64
}

// Stats counts base-station activity.
type Stats struct {
	UplinkEvents     uint64 // events relayed from wireless clients
	UplinkDropped    uint64 // uplink attempts below any tier
	ForwardFullImage uint64 // shares forwarded at full-image tier
	ForwardSketch    uint64 // shares degraded to sketch
	ForwardText      uint64 // shares degraded to text
	DownlinkUnicasts uint64 // deliveries to wireless clients
}

// BaseStation links the wireless segment to the collaboration session.
type BaseStation struct {
	id       string
	wired    transport.Conn // multicast session peer
	wireless transport.Conn // radio-segment endpoint (unicast to clients)
	cfg      Config
	channel  *radio.Channel
	profiles *profile.Registry

	env    message.Enveloper
	unwrap *message.Unwrapper

	seq atomic.Uint32

	// collect reassembles wired-side image shares so the BS can
	// transform them per wireless client.
	collect *apps.ImageViewer

	mu      sync.RWMutex
	meta    map[string]apps.ImageMeta // announced wired shares
	pending map[string][]pendingPkt   // data packets that beat their announce

	stats struct {
		uplinkEvents, uplinkDropped          atomic.Uint64
		fwdImage, fwdSketch, fwdText, downlk atomic.Uint64
	}

	closeOnce sync.Once
	wiredDone chan struct{}
	rfDone    chan struct{}
}

// New creates a base station bridging the wired multicast session and
// the wireless segment, using channel as the radio model.  It starts
// relay loops on both connections.
func New(id string, wired, wireless transport.Conn, channel *radio.Channel, cfg Config) *BaseStation {
	bs := &BaseStation{
		id:        id,
		wired:     wired,
		wireless:  wireless,
		cfg:       cfg.withDefaults(),
		channel:   channel,
		profiles:  profile.NewRegistry(),
		unwrap:    message.NewUnwrapper(),
		collect:   apps.NewImageViewer(),
		meta:      make(map[string]apps.ImageMeta),
		pending:   make(map[string][]pendingPkt),
		wiredDone: make(chan struct{}),
		rfDone:    make(chan struct{}),
	}
	go bs.wiredLoop()
	go bs.wirelessLoop()
	return bs
}

// ID returns the base station's identifier.
func (bs *BaseStation) ID() string { return bs.id }

// Stats returns a snapshot of the relay counters.
func (bs *BaseStation) Stats() Stats {
	return Stats{
		UplinkEvents:     bs.stats.uplinkEvents.Load(),
		UplinkDropped:    bs.stats.uplinkDropped.Load(),
		ForwardFullImage: bs.stats.fwdImage.Load(),
		ForwardSketch:    bs.stats.fwdSketch.Load(),
		ForwardText:      bs.stats.fwdText.Load(),
		DownlinkUnicasts: bs.stats.downlk.Load(),
	}
}

// Close stops the relay loops and detaches both connections.
func (bs *BaseStation) Close() error {
	var err error
	bs.closeOnce.Do(func() {
		e1 := bs.wired.Close()
		e2 := bs.wireless.Close()
		<-bs.wiredDone
		<-bs.rfDone
		if e1 != nil {
			err = e1
		} else {
			err = e2
		}
	})
	return err
}

// --- Membership ---

// Join admits a wireless client at the given geometry.  The base
// station evaluates its distance, transmitting rate and power —
// considering the noise effect of the other wireless clients — and
// returns the basic service assessment.
func (bs *BaseStation) Join(p *profile.Profile, distance, power float64) (Assessment, error) {
	if bs.cfg.MaxClients > 0 && bs.channel.Len() >= bs.cfg.MaxClients {
		return Assessment{}, fmt.Errorf("%w: at capacity (%d)", ErrAdmission, bs.cfg.MaxClients)
	}
	if _, ok := bs.profiles.Get(p.ID); ok {
		return Assessment{}, fmt.Errorf("%w: %s", ErrAlreadyJoined, p.ID)
	}
	if err := bs.channel.Join(p.ID, distance, power); err != nil {
		return Assessment{}, err
	}
	if bs.cfg.AdmissionMinSIRdB != 0 {
		if db, err := bs.channel.SIRdB(p.ID); err == nil && db < bs.cfg.AdmissionMinSIRdB {
			bs.channel.Leave(p.ID)
			return Assessment{}, fmt.Errorf("%w: SIR %.1f dB below %.1f dB",
				ErrAdmission, db, bs.cfg.AdmissionMinSIRdB)
		}
	}
	bs.profiles.Put(p)
	return bs.Assess(p.ID)
}

// Leave removes a wireless client.
func (bs *BaseStation) Leave(id string) error {
	if !bs.profiles.Remove(id) {
		return fmt.Errorf("%w: %s", ErrNotJoined, id)
	}
	bs.channel.Leave(id)
	return nil
}

// Clients returns the joined wireless client IDs.
func (bs *BaseStation) Clients() []string { return bs.profiles.IDs() }

// Assess computes the current service assessment for a client.  The
// assessment is also folded into the stored profile so the client's
// signal state is semantically selectable.
func (bs *BaseStation) Assess(id string) (Assessment, error) {
	db, err := bs.channel.SIRdB(id)
	if err != nil {
		return Assessment{}, err
	}
	cl, err := bs.channel.Get(id)
	if err != nil {
		return Assessment{}, err
	}
	if _, err := bs.profiles.UpdateState(id, "sir", selector.N(db)); err != nil {
		return Assessment{}, err
	}
	bs.profiles.UpdateState(id, "distance", selector.N(cl.Distance))
	bs.profiles.UpdateState(id, "power", selector.N(cl.Power))
	return Assessment{
		SIRdB:    db,
		Tier:     bs.cfg.Thresholds.TierFor(db),
		Power:    cl.Power,
		Distance: cl.Distance,
	}, nil
}

// SampleQoS feeds the wireless segment's QoS state into the gauge
// set: per-client SIR, service tier and power-control state (transmit
// power, distance), plus the population size.  The signature matches
// obs.SamplerFunc so the telemetry collector can register the base
// station directly.
func (bs *BaseStation) SampleQoS(set func(name string, value float64)) {
	ids := bs.profiles.IDs()
	set(`bs_clients{bs="`+bs.id+`"}`, float64(len(ids)))
	for _, id := range ids {
		db, err := bs.channel.SIRdB(id)
		if err != nil {
			continue
		}
		cl, err := bs.channel.Get(id)
		if err != nil {
			continue
		}
		label := `{bs="` + bs.id + `",client="` + id + `"}`
		set("client_sir_db"+label, db)
		set("client_tier"+label, float64(bs.cfg.Thresholds.TierFor(db)))
		set("client_power"+label, cl.Power)
		set("client_distance"+label, cl.Distance)
	}
}

// SetDistance moves a wireless client (mobility).
func (bs *BaseStation) SetDistance(id string, d float64) error {
	return bs.channel.SetDistance(id, d)
}

// SetPower changes a wireless client's transmit power.
func (bs *BaseStation) SetPower(id string, p float64) error {
	return bs.channel.SetPower(id, p)
}

// Channel exposes the radio model (for experiments).
func (bs *BaseStation) Channel() *radio.Channel { return bs.channel }

// PowerControl runs one target-SIR power-control iteration and returns
// the adjusted powers.
func (bs *BaseStation) PowerControl(targetDB, minPower, maxPower float64) (map[string]float64, error) {
	return bs.channel.PowerControlStep(targetDB, minPower, maxPower)
}

// --- Uplink (wireless client → session) ---

func (bs *BaseStation) newMessage(kind message.Kind, sender, sel string, attrs selector.Attributes, body []byte) *message.Message {
	m := &message.Message{
		Kind:      kind,
		Sender:    sender,
		Seq:       bs.seq.Add(1),
		Timestamp: time.Now(),
		Selector:  sel,
		Attrs:     attrs,
		Body:      body,
	}
	return m
}

func (bs *BaseStation) multicastWired(m *message.Message) error {
	datagrams, err := bs.env.WrapMessage(m)
	if err != nil {
		return err
	}
	for _, d := range datagrams {
		if err := bs.wired.Multicast(d); err != nil {
			return err
		}
	}
	return nil
}

func (bs *BaseStation) unicastWireless(to string, m *message.Message) error {
	datagrams, err := bs.env.WrapMessage(m)
	if err != nil {
		return err
	}
	bs.stats.downlk.Add(1)
	for _, d := range datagrams {
		if err := bs.wireless.Unicast(to, d); err != nil {
			return err
		}
	}
	return nil
}

// UplinkEvent relays a plain event (chat line, whiteboard stroke) from
// a wireless client: multicast to the session, unicast to the other
// wireless clients.  The uplink must meet at least the text tier.
func (bs *BaseStation) UplinkEvent(sender, app, sel string, payload []byte) error {
	if _, ok := bs.profiles.Get(sender); !ok {
		return fmt.Errorf("%w: %s", ErrNotJoined, sender)
	}
	assess, err := bs.Assess(sender)
	if err != nil {
		return err
	}
	if assess.Tier < radio.TierText {
		bs.stats.uplinkDropped.Add(1)
		if obs.Enabled() {
			obs.Drop(0, obs.StagePublish,
				fmt.Sprintf("bs %s: uplink event from %s below text tier (%.1f dB)",
					bs.id, sender, assess.SIRdB))
		}
		return fmt.Errorf("%w: %s at %.1f dB", ErrNoService, sender, assess.SIRdB)
	}
	attrs := selector.Attributes{
		message.AttrApp: selector.S(app),
	}
	m := bs.newMessage(message.KindEvent, sender, sel, attrs, payload)
	sp := obs.StartStage(obs.MsgID(m.Sender, m.Seq), obs.StagePublish)
	if err := bs.multicastWired(m); err != nil {
		if sp.Active() {
			sp.EndErr("bs relay: " + err.Error())
		}
		return err
	}
	if err := bs.fanOut(bs.profiles.IDs(), func(id string) error {
		if id == sender {
			return nil
		}
		return bs.unicastWireless(id, m)
	}); err != nil {
		if sp.Active() {
			sp.EndErr("bs fan-out: " + err.Error())
		}
		return err
	}
	sp.End()
	bs.stats.uplinkEvents.Add(1)
	return nil
}

// UplinkShare relays an image share from a wireless client.  The base
// station receives the content, selects the data-type format by the
// sender's received SIR — full image, text + base sketch, or text
// description only — and forwards that modality to the multicast
// session; each other wireless client receives the richest modality
// its own SIR supports (never richer than what the uplink admitted).
func (bs *BaseStation) UplinkShare(sender, object, sel string, obj *media.Object) error {
	if _, ok := bs.profiles.Get(sender); !ok {
		return fmt.Errorf("%w: %s", ErrNotJoined, sender)
	}
	assess, err := bs.Assess(sender)
	if err != nil {
		return err
	}
	if assess.Tier == radio.TierNone {
		bs.stats.uplinkDropped.Add(1)
		if obs.Enabled() {
			obs.Drop(0, obs.StagePublish,
				fmt.Sprintf("bs %s: uplink share from %s below any tier (%.1f dB)",
					bs.id, sender, assess.SIRdB))
		}
		return fmt.Errorf("%w: %s at %.1f dB", ErrNoService, sender, assess.SIRdB)
	}

	// Forward to the wired session at the uplink-admitted tier.
	if err := bs.forwardTiered(sender, object, sel, obj, assess.Tier, bs.multicastWired); err != nil {
		return err
	}
	switch assess.Tier {
	case radio.TierImage:
		bs.stats.fwdImage.Add(1)
	case radio.TierSketch:
		bs.stats.fwdSketch.Add(1)
	case radio.TierText:
		bs.stats.fwdText.Add(1)
	}

	// Unicast to the other wireless clients at min(uplink tier, their
	// own tier), each peer assessed and served by the fan-out pool.
	if err := bs.fanOut(bs.profiles.IDs(), func(id string) error {
		if id == sender {
			return nil
		}
		peerAssess, err := bs.Assess(id)
		if err != nil {
			return nil
		}
		tier := peerAssess.Tier
		if assess.Tier < tier {
			tier = assess.Tier
		}
		if tier == radio.TierNone {
			return nil
		}
		send := func(m *message.Message) error { return bs.unicastWireless(id, m) }
		return bs.forwardTiered(sender, object, sel, obj, tier, send)
	}); err != nil {
		return err
	}
	bs.stats.uplinkEvents.Add(1)
	return nil
}

// forwardTiered emits the object at the given tier through send.
// Full-image tier uses the announce + packets path so receivers can
// still apply their own packet budgets; lower tiers deliver one
// transformed media event.
func (bs *BaseStation) forwardTiered(sender, object, sel string, obj *media.Object,
	tier radio.Tier, send func(*message.Message) error) error {

	deliver := func(o *media.Object) error {
		payload, err := apps.EncodeMediaObject(o)
		if err != nil {
			return err
		}
		attrs := o.Attrs().Merge(selector.Attributes{
			message.AttrApp:    selector.S(apps.AppMedia),
			message.AttrObject: selector.S(object),
		})
		return send(bs.newMessage(message.KindEvent, sender, sel, attrs, payload))
	}

	switch tier {
	case radio.TierImage:
		if obj.Kind == media.KindImage &&
			(obj.Format == media.FormatEZW || obj.Format == media.FormatEZWColor) {
			meta, packets, err := apps.ShareImage(object, obj, bs.cfg.TotalPackets)
			if err != nil {
				return err
			}
			attrs := obj.Attrs().Merge(selector.Attributes{
				message.AttrApp:    selector.S(apps.AppImageViewer),
				message.AttrObject: selector.S(object),
			})
			if err := send(bs.newMessage(message.KindEvent, sender, sel, attrs, apps.EncodeImageMeta(meta))); err != nil {
				return err
			}
			for i, p := range packets {
				dattrs := selector.Attributes{
					message.AttrApp:    selector.S(apps.AppImageViewer),
					message.AttrObject: selector.S(object),
					message.AttrLevel:  selector.N(float64(i)),
				}
				// RTP-framed like core clients' data packets.
				rp := rtp.Packet{
					PayloadType: 96,
					Marker:      i == len(packets)-1,
					Seq:         uint16(i),
					Timestamp:   uint32(time.Now().UnixMilli()),
					SSRC:        fnv32(bs.id + "/" + object),
					Payload:     p,
				}
				if err := send(bs.newMessage(message.KindData, sender, sel, dattrs, rp.Marshal())); err != nil {
					return err
				}
			}
			return nil
		}
		return deliver(obj)
	case radio.TierSketch:
		tsp := obs.StartStage(0, obs.StageTransform)
		sk, err := bs.cfg.Registry.Transmode(obj, media.KindSketch)
		if err != nil {
			// Non-image content cannot be sketched; fall back to text.
			if tsp.Active() {
				tsp.EndErr("bs " + bs.id + ": " + object + " cannot sketch, falling back to text")
			}
			return bs.forwardTiered(sender, object, sel, obj, radio.TierText, send)
		}
		tsp.End()
		return deliver(sk)
	case radio.TierText:
		tsp := obs.StartStage(0, obs.StageTransform)
		txt, err := bs.cfg.Registry.Transmode(obj, media.KindText)
		if err != nil {
			if tsp.Active() {
				tsp.EndErr("bs " + bs.id + ": " + object + " text transform failed")
			}
			return err
		}
		tsp.End()
		return deliver(txt)
	default:
		return ErrNoService
	}
}

// --- Downlink (session → wireless clients) ---

func (bs *BaseStation) wiredLoop() {
	defer close(bs.wiredDone)
	for pkt := range bs.wired.Recv() {
		bs.handleWired(pkt)
	}
}

// handleWired relays wired-session traffic to the wireless clients,
// degrading content to each client's tier.
func (bs *BaseStation) handleWired(pkt transport.Packet) {
	frame, err := bs.unwrap.Unwrap(pkt.From, pkt.Data)
	if err != nil || frame == nil {
		return
	}
	m, err := message.Decode(frame)
	if err != nil {
		return
	}
	if m.Sender == bs.id {
		return
	}
	app, _ := m.Attr(message.AttrApp)
	switch {
	case m.Kind == message.KindEvent && (app.Str() == apps.AppChat || app.Str() == apps.AppWhiteboard || app.Str() == apps.AppMedia):
		// Light events pass through to clients whose profile matches
		// the selector and whose SIR supports at least text.  The
		// cached compiled selector is evaluated against each client's
		// memoized flattened profile by the fan-out pool — no per-packet
		// profile copy or re-parse.
		msgID := obs.MsgID(m.Sender, m.Seq)
		bs.fanOut(bs.profiles.IDs(), func(id string) error {
			msp := obs.StartStage(msgID, obs.StageMatch)
			flat, _, ok := bs.profiles.FlatSnapshot(id)
			if !ok || !m.MatchProfile(flat) {
				msp.End()
				return nil
			}
			msp.End()
			if a, err := bs.Assess(id); err != nil || a.Tier < radio.TierText {
				if obs.Enabled() {
					obs.Drop(msgID, obs.StageDeliver, "bs "+bs.id+": "+id+" below text tier")
				}
				return nil
			}
			bs.unicastWireless(id, m)
			return nil
		})
	case m.Kind == message.KindEvent && app.Str() == apps.AppImageViewer:
		meta, err := apps.DecodeImageMeta(m.Body)
		if err != nil {
			return
		}
		bs.collect.Announce(meta)
		bs.mu.Lock()
		bs.meta[meta.Object] = meta
		parked := bs.pending[meta.Object]
		delete(bs.pending, meta.Object)
		bs.mu.Unlock()
		for _, p := range parked {
			bs.collect.AddPacket(meta.Object, p.idx, p.data)
		}
		bs.maybeDeliver(m.Sender, meta.Object, m.Selector)
	case m.Kind == message.KindData && app.Str() == apps.AppImageViewer:
		object, ok1 := m.Attr(message.AttrObject)
		level, ok2 := m.Attr(message.AttrLevel)
		if !ok1 || !ok2 || len(m.Body) < rtp.HeaderLen {
			return
		}
		chunk := m.Body[rtp.HeaderLen:]
		if err := bs.collect.AddPacket(object.Str(), int(level.Num()), chunk); err != nil {
			if errors.Is(err, apps.ErrUnknownImage) {
				// The packet overtook its announce; park it (bounded).
				bs.mu.Lock()
				if len(bs.pending) < 32 && len(bs.pending[object.Str()]) < 64 {
					bs.pending[object.Str()] = append(bs.pending[object.Str()],
						pendingPkt{idx: int(level.Num()), data: append([]byte(nil), chunk...)})
				}
				bs.mu.Unlock()
			}
			return
		}
		bs.maybeDeliver(m.Sender, object.Str(), m.Selector)
	}
}

// pendingPkt is one parked early-arriving image packet.
type pendingPkt struct {
	idx  int
	data []byte
}

// maybeDeliver forwards a wired-side image to the wireless clients
// once every packet has been collected.
func (bs *BaseStation) maybeDeliver(sender, object, sel string) {
	st, err := bs.collect.Stats(object)
	if err != nil || st.PacketsAccepted != st.TotalPackets {
		return
	}
	bs.deliverCollectedImage(sender, object, sel)
}

// deliverCollectedImage sends a fully collected wired-side image to
// each wireless client at its own tier.
func (bs *BaseStation) deliverCollectedImage(sender, object, sel string) {
	bs.mu.RLock()
	meta := bs.meta[object]
	bs.mu.RUnlock()

	// Re-encode the collected image, preserving color when the wired
	// share carried it (full-image-tier clients see the original hues;
	// lower tiers go through the grayscale/sketch/text chain anyway).
	var obj *media.Object
	if cres, err := bs.collect.RenderColor(object); err == nil && cres.PlanesPresent == 3 {
		obj, err = media.EncodeColorImage(cres.Image, meta.Description)
		if err != nil {
			return
		}
	} else {
		res, err := bs.collect.Render(object)
		if err != nil {
			return
		}
		var encErr error
		obj, encErr = media.EncodeImage(res.Image, meta.Description)
		if encErr != nil {
			return
		}
	}
	bs.fanOut(bs.profiles.IDs(), func(id string) error {
		// The memoized flattened view carries preferences under their
		// prefixed names; no per-client profile copy is needed.
		flat, _, ok := bs.profiles.FlatSnapshot(id)
		if !ok {
			return nil
		}
		a, err := bs.Assess(id)
		if err != nil || a.Tier == radio.TierNone {
			if obs.Enabled() {
				obs.Drop(0, obs.StageDeliver,
					"bs "+bs.id+": collected image "+object+" not deliverable to "+id)
			}
			return nil
		}
		// Respect the client's preferred modality when declared (e.g. a
		// battery-saving client that switched to text mode).
		tier := a.Tier
		if pref, ok := flat[profile.SectionPreference+".modality"]; ok {
			switch media.Kind(pref.Str()) {
			case media.KindText:
				tier = radio.TierText
			case media.KindSketch:
				if tier > radio.TierSketch {
					tier = radio.TierSketch
				}
			}
		}
		send := func(m *message.Message) error { return bs.unicastWireless(id, m) }
		bs.forwardTiered(sender, object, sel, obj, tier, send)
		return nil
	})
}

// wirelessLoop receives uplink frames from wireless clients over the
// radio segment: clients transmit framework messages; the BS relays
// them as if the client had called UplinkEvent/UplinkShare.
func (bs *BaseStation) wirelessLoop() {
	defer close(bs.rfDone)
	for pkt := range bs.wireless.Recv() {
		bs.handleWireless(pkt)
	}
}

func (bs *BaseStation) handleWireless(pkt transport.Packet) {
	frame, err := bs.unwrap.Unwrap("rf:"+pkt.From, pkt.Data)
	if err != nil || frame == nil {
		return
	}
	m, err := message.Decode(frame)
	if err != nil {
		return
	}
	if _, ok := bs.profiles.Get(m.Sender); !ok {
		return // not joined: ignore
	}
	app, _ := m.Attr(message.AttrApp)
	switch {
	case m.Kind == message.KindProfile:
		bs.applyProfileUpdate(m)
	case m.Kind == message.KindEvent && app.Str() == apps.AppMedia:
		obj, err := apps.DecodeMediaObject(m.Body)
		if err != nil {
			return
		}
		object, _ := m.Attr(message.AttrObject)
		bs.UplinkShare(m.Sender, object.Str(), m.Selector, obj)
	case m.Kind == message.KindEvent:
		bs.UplinkEvent(m.Sender, app.Str(), m.Selector, m.Body)
	}
}

// applyProfileUpdate folds a client's announced interests and
// preferences into its stored profile; the paper's "change in
// preference" path (e.g. a client switching to text mode to conserve
// battery).
func (bs *BaseStation) applyProfileUpdate(m *message.Message) {
	p, ok := bs.profiles.Get(m.Sender)
	if !ok {
		return
	}
	intPrefix := profile.SectionInterest + "."
	prefPrefix := profile.SectionPreference + "."
	for k, v := range m.Attrs {
		switch {
		case strings.HasPrefix(k, intPrefix):
			p.Interests[strings.TrimPrefix(k, intPrefix)] = v
		case strings.HasPrefix(k, prefPrefix):
			p.Preferences[strings.TrimPrefix(k, prefPrefix)] = v
		}
	}
	bs.profiles.Put(p)
}
