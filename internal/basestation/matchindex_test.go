package basestation

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/core"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

// joinWithMedia is joinWireless with an explicit media interest, so a
// selector can split the population.
func (r *rig) joinWithMedia(t *testing.T, id, media string) *core.Client {
	t.Helper()
	conn, err := r.radioNet.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewClient(conn, core.Config{})
	t.Cleanup(func() { c.Close() })
	// The receiving endpoint filters by its own local profile too, so
	// the interest must live on both sides.
	c.Profile().SetInterest("media", selector.S(media))
	p := profile.New(id)
	p.Interests.SetString("media", media)
	if _, err := r.bs.Join(p, 50, 1); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRelaySelectorDeliveryIndexModes runs the same selector-addressed
// wired relay with the match index on and off and requires identical
// delivered sets: the index is a pruning pre-filter, never a semantic
// change (DESIGN.md §12).
func TestRelaySelectorDeliveryIndexModes(t *testing.T) {
	for _, mode := range []MatchIndexMode{MatchIndexOn, MatchIndexOff} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			r := newRig(t, Config{MatchIndex: mode})
			if (mode == MatchIndexOn) != r.bs.reg.Indexed() {
				t.Fatalf("Config.MatchIndex=%d but Indexed()=%v", mode, r.bs.reg.Indexed())
			}
			video1 := r.joinWithMedia(t, "v1", "video")
			video2 := r.joinWithMedia(t, "v2", "video")
			audio := r.joinWithMedia(t, "a1", "audio")

			if err := r.wired.Say("field update", `media == "video"`); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "video chat", func() bool {
				return video1.Chat().Len() == 1 && video2.Chat().Len() == 1
			})
			// The non-matching client must stay silent; give any stray
			// delivery time to land before asserting.
			time.Sleep(20 * time.Millisecond)
			if n := audio.Chat().Len(); n != 0 {
				t.Errorf("non-matching client received %d chat lines", n)
			}

			// An unaddressed event reaches everyone in both modes.
			if err := r.wired.Say("to all", ""); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "broadcast chat", func() bool {
				return video1.Chat().Len() == 2 && video2.Chat().Len() == 2 && audio.Chat().Len() == 1
			})
		})
	}
}
