package basestation

import (
	"testing"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/selector"
)

// TestWirelessMediaShareOverRF: a wireless client transmits a media
// object as a framework message over the radio segment; the base
// station relays it at the SIR-admitted tier without any direct API
// call.
func TestWirelessMediaShareOverRF(t *testing.T) {
	r := newRig(t, Config{})
	w := r.joinWireless(t, "w1", 30, 1) // lone client: full-image tier

	obj := testImageObject(t)
	payload, err := apps.EncodeMediaObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	m := &message.Message{
		Kind:      message.KindEvent,
		Sender:    "w1",
		Seq:       1,
		Timestamp: time.Now(),
		Attrs: selector.Attributes{
			message.AttrApp:    selector.S(apps.AppMedia),
			message.AttrObject: selector.S("rf-img-1"),
		},
		Body: payload,
	}
	frame, err := message.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// The wireless client's endpoint transmits to the BS over the RF
	// segment (core clients do this inside ShareImage; here we drive
	// the raw path).
	if err := wConn(t, r, w.ID()).Unicast("bs", message.WrapWhole(frame)); err != nil {
		t.Fatal(err)
	}

	// The wired session receives the full image via the viewer path.
	waitFor(t, "relayed image", func() bool {
		st, err := r.wired.Viewer().Stats("rf-img-1")
		return err == nil && st.PacketsAccepted == 16
	})
	res, err := r.wired.Viewer().Render("rf-img-1")
	if err != nil || !res.Lossless {
		t.Errorf("relayed render: %v lossless=%v", err, res != nil && res.Lossless)
	}
	if st := r.bs.Stats(); st.ForwardFullImage != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestWirelessUnjoinedSenderIgnored: RF frames from a client that
// never joined are dropped.
func TestWirelessUnjoinedSenderIgnored(t *testing.T) {
	r := newRig(t, Config{})
	conn, err := r.radioNet.Attach("stranger")
	if err != nil {
		t.Fatal(err)
	}
	m := &message.Message{
		Kind:      message.KindEvent,
		Sender:    "stranger",
		Seq:       1,
		Timestamp: time.Now(),
		Attrs:     selector.Attributes{message.AttrApp: selector.S(apps.AppChat)},
		Body:      apps.EncodeSay("let me in"),
	}
	frame, _ := message.Encode(m)
	if err := conn.Unicast("bs", message.WrapWhole(frame)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if r.wired.Chat().Len() != 0 {
		t.Error("unjoined sender's chat was relayed")
	}
	if st := r.bs.Stats(); st.UplinkEvents != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestDegradedRFShare: the same RF path under interference degrades
// the forwarded modality.
func TestDegradedRFShare(t *testing.T) {
	r := newRig(t, Config{})
	w1 := r.joinWireless(t, "w1", 50, 1)
	r.joinWireless(t, "w2", 50, 1)
	r.joinWireless(t, "w3", 50, 1)

	if a, _ := r.bs.Assess("w1"); a.Tier >= radio.TierImage {
		t.Skipf("tier = %s, want degraded", a.Tier)
	}
	obj := testImageObject(t)
	payload, err := apps.EncodeMediaObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	m := &message.Message{
		Kind:      message.KindEvent,
		Sender:    "w1",
		Seq:       1,
		Timestamp: time.Now(),
		Attrs: selector.Attributes{
			message.AttrApp:    selector.S(apps.AppMedia),
			message.AttrObject: selector.S("rf-img-2"),
		},
		Body: payload,
	}
	frame, _ := message.Encode(m)
	if err := wConn(t, r, w1.ID()).Unicast("bs", message.WrapWhole(frame)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "degraded relay", func() bool { return r.wired.Inbox().Len() == 1 })
	got, _ := r.wired.Inbox().Latest()
	if got.Object.Kind == "image" {
		t.Errorf("degraded share forwarded as image")
	}
}

// wConn digs out a raw radio-segment connection for a client by
// attaching a sibling endpoint (clients own their conns privately).
func wConn(t *testing.T, r *rig, id string) interface {
	Unicast(string, []byte) error
} {
	t.Helper()
	conn, err := r.radioNet.Attach(id + "-raw")
	if err != nil {
		t.Fatal(err)
	}
	return spoofConn{conn: conn}
}

// spoofConn relays unicast through a sibling attachment; the message's
// Sender field, not the transport node ID, identifies the client to
// the BS (as with real UDP sources behind NAT).
type spoofConn struct {
	conn interface {
		Unicast(string, []byte) error
	}
}

func (s spoofConn) Unicast(to string, frame []byte) error { return s.conn.Unicast(to, frame) }
