package basestation

import (
	"testing"
	"time"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/wavelet"
)

// TestWirelessPreferenceAnnouncement: a wireless client low on battery
// switches to text mode and announces the preference over RF; the base
// station honors it on the next downlink despite an excellent channel.
func TestWirelessPreferenceAnnouncement(t *testing.T) {
	r := newRig(t, Config{})
	w := r.joinWireless(t, "w1", 20, 1) // SIR admits the full image

	if a, _ := r.bs.Assess("w1"); a.Tier < 3 {
		t.Skipf("tier = %s", a.Tier)
	}

	// The client flips to text mode and announces it to its BS.
	w.Profile().SetPreference("modality", selector.S("text"))
	if err := w.AnnounceProfile("bs"); err != nil {
		t.Fatal(err)
	}
	// The announcement lands in the BS registry.
	waitFor(t, "preference at BS", func() bool {
		p, ok := r.bs.reg.Get("w1")
		return ok && p.Preferences["modality"].Str() == "text"
	})

	// A wired share now arrives as text.
	obj, err := media.EncodeImage(wavelet.Circles(48, 48), "site chart")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.wired.ShareImage("chart-1", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "text downlink", func() bool { return w.Inbox().Len() >= 1 })
	got, _ := w.Inbox().Latest()
	if got.Object.Kind != media.KindText {
		t.Errorf("downlink kind = %s, want text", got.Object.Kind)
	}
	if string(got.Object.Data) != "site chart" {
		t.Errorf("downlink content = %q", got.Object.Data)
	}

	// Announcements from strangers are ignored.
	stranger, err := r.radioNet.Attach("stranger-2")
	if err != nil {
		t.Fatal(err)
	}
	_ = stranger
	before := len(r.bs.reg.IDs())
	time.Sleep(20 * time.Millisecond)
	if len(r.bs.reg.IDs()) != before {
		t.Error("stranger changed the registry")
	}
}
