package basestation

// Membership control plane: admission, departure, per-client service
// assessment and the radio/power-control knobs.  Membership state
// itself lives in the sharded internal/registry; these methods are the
// policy around it (admission control, SIR → tier mapping, folding
// assessments back into profile state).

import (
	"fmt"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/registry"
	"adaptiveqos/internal/slo"
)

// Join admits a wireless client at the given geometry.  The base
// station evaluates its distance, transmitting rate and power —
// considering the noise effect of the other wireless clients — and
// returns the basic service assessment.
func (bs *BaseStation) Join(p *profile.Profile, distance, power float64) (Assessment, error) {
	if bs.cfg.MaxClients > 0 && bs.channel.Len() >= bs.cfg.MaxClients {
		return Assessment{}, fmt.Errorf("%w: at capacity (%d)", ErrAdmission, bs.cfg.MaxClients)
	}
	if _, ok := bs.reg.Get(p.ID); ok {
		return Assessment{}, fmt.Errorf("%w: %s", ErrAlreadyJoined, p.ID)
	}
	if err := bs.channel.Join(p.ID, distance, power); err != nil {
		return Assessment{}, err
	}
	if bs.cfg.AdmissionMinSIRdB != 0 {
		if db, err := bs.channel.SIRdB(p.ID); err == nil && db < bs.cfg.AdmissionMinSIRdB {
			bs.channel.Leave(p.ID)
			return Assessment{}, fmt.Errorf("%w: SIR %.1f dB below %.1f dB",
				ErrAdmission, db, bs.cfg.AdmissionMinSIRdB)
		}
	}
	bs.reg.Put(p)
	return bs.Assess(p.ID)
}

// Leave removes a wireless client.
func (bs *BaseStation) Leave(id string) error {
	if !bs.reg.Remove(id) {
		return fmt.Errorf("%w: %s", ErrNotJoined, id)
	}
	bs.channel.Leave(id)
	return nil
}

// Clients returns the joined wireless client IDs.
func (bs *BaseStation) Clients() []string { return bs.reg.IDs() }

// Registry exposes the sharded membership registry (experiments,
// future multi-base-station deployments sharing one registry).
func (bs *BaseStation) Registry() *registry.Registry { return bs.reg }

// Assess computes the current service assessment for a client.  The
// assessment is also folded into the stored profile (one sharded-lock
// pass) so the client's signal state is semantically selectable.
func (bs *BaseStation) Assess(id string) (Assessment, error) {
	db, err := bs.channel.SIRdB(id)
	if err != nil {
		return Assessment{}, err
	}
	cl, err := bs.channel.Get(id)
	if err != nil {
		return Assessment{}, err
	}
	if err := bs.reg.PutAssessment(id, registry.Assessment{
		SIRdB: db, Power: cl.Power, Distance: cl.Distance,
	}); err != nil {
		return Assessment{}, err
	}
	return Assessment{
		SIRdB:    db,
		Tier:     bs.cfg.Thresholds.TierFor(db),
		Power:    cl.Power,
		Distance: cl.Distance,
	}, nil
}

// SampleQoS feeds the wireless segment's QoS state into the gauge
// set: per-client SIR, service tier and power-control state (transmit
// power, distance), the population size, and the dispatch pool's
// per-shard queue depths.  The signature matches obs.SamplerFunc so
// the telemetry collector can register the base station directly.
func (bs *BaseStation) SampleQoS(set func(name string, value float64)) {
	ids := bs.reg.IDs()
	set(`bs_clients{bs="`+metrics.EscapeLabel(bs.id)+`"}`, float64(len(ids)))
	for _, id := range ids {
		db, err := bs.channel.SIRdB(id)
		if err != nil {
			continue
		}
		cl, err := bs.channel.Get(id)
		if err != nil {
			continue
		}
		tier := bs.cfg.Thresholds.TierFor(db)
		label := `{bs="` + metrics.EscapeLabel(bs.id) + `",client="` + metrics.EscapeLabel(id) + `"}`
		set("client_sir_db"+label, db)
		set("client_tier"+label, float64(tier))
		set("client_power"+label, cl.Power)
		set("client_distance"+label, cl.Distance)
		slo.ObserveTier(id, int(tier))
	}
	bs.pool.SampleQoS(set)
}

// RadioSnapshot reports the client's current radio state in the SLO
// attribution shape; ok is false for clients this base station does
// not serve.  Registered with the SLO engine as a RadioSource so
// violation bundles carry the radio context.
func (bs *BaseStation) RadioSnapshot(id string) (slo.RadioSnapshot, bool) {
	db, err := bs.channel.SIRdB(id)
	if err != nil {
		return slo.RadioSnapshot{}, false
	}
	cl, err := bs.channel.Get(id)
	if err != nil {
		return slo.RadioSnapshot{}, false
	}
	return slo.RadioSnapshot{
		BS:       bs.id,
		SIRdB:    db,
		Power:    cl.Power,
		Distance: cl.Distance,
		Tier:     int(bs.cfg.Thresholds.TierFor(db)),
	}, true
}

// SetDistance moves a wireless client (mobility).
func (bs *BaseStation) SetDistance(id string, d float64) error {
	return bs.channel.SetDistance(id, d)
}

// SetPower changes a wireless client's transmit power.
func (bs *BaseStation) SetPower(id string, p float64) error {
	return bs.channel.SetPower(id, p)
}

// Channel exposes the radio model (for experiments).
func (bs *BaseStation) Channel() *radio.Channel { return bs.channel }

// PowerControl runs one target-SIR power-control iteration and returns
// the adjusted powers.
func (bs *BaseStation) PowerControl(targetDB, minPower, maxPower float64) (map[string]float64, error) {
	return bs.channel.PowerControlStep(targetDB, minPower, maxPower)
}
