package basestation

import (
	"errors"
	"testing"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/core"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/transport"
	"adaptiveqos/internal/wavelet"
)

// rig is a complete test topology: a wired multicast net with one wired
// framework client and a base station, plus a radio segment carrying
// the base station and wireless client endpoints.
type rig struct {
	wiredNet *transport.SimNet
	radioNet *transport.SimNet
	bs       *BaseStation
	wired    *core.Client
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	wiredNet := transport.NewSimNet(transport.SimNetConfig{Seed: 1})
	radioNet := transport.NewSimNet(transport.SimNetConfig{Seed: 2})
	t.Cleanup(func() { wiredNet.Close(); radioNet.Close() })

	bsWired, err := wiredNet.Attach("bs")
	if err != nil {
		t.Fatal(err)
	}
	bsRF, err := radioNet.Attach("bs")
	if err != nil {
		t.Fatal(err)
	}
	wiredConn, err := wiredNet.Attach("wired-1")
	if err != nil {
		t.Fatal(err)
	}

	bs := New("bs", bsWired, bsRF, radio.NewChannel(radio.Params{}), cfg)
	wc := core.NewClient(wiredConn, core.Config{})
	t.Cleanup(func() { bs.Close(); wc.Close() })
	return &rig{wiredNet: wiredNet, radioNet: radioNet, bs: bs, wired: wc}
}

// joinWireless attaches a wireless endpoint (a plain framework client
// on the radio segment) and registers it at the base station.
func (r *rig) joinWireless(t *testing.T, id string, distance, power float64) *core.Client {
	t.Helper()
	conn, err := r.radioNet.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewClient(conn, core.Config{})
	t.Cleanup(func() { c.Close() })
	p := profile.New(id)
	p.Interests.SetString("media", "any")
	if _, err := r.bs.Join(p, distance, power); err != nil {
		t.Fatal(err)
	}
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func testImageObject(t *testing.T) *media.Object {
	t.Helper()
	obj, err := media.EncodeImage(wavelet.Medical(64, 64, 1), "field photo")
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestJoinAssessLeave(t *testing.T) {
	r := newRig(t, Config{})
	r.joinWireless(t, "w1", 50, 1)

	a, err := r.bs.Assess("w1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier != radio.TierImage {
		t.Errorf("lone client tier = %s (SIR %.1f dB)", a.Tier, a.SIRdB)
	}
	if a.Distance != 50 || a.Power != 1 {
		t.Errorf("assessment geometry: %+v", a)
	}
	// The SIR is folded into the stored profile.
	p, _ := r.bs.reg.Get("w1")
	if p.State["sir"].Num() != a.SIRdB {
		t.Error("SIR not in profile state")
	}

	// Duplicate join rejected.
	if _, err := r.bs.Join(profile.New("w1"), 10, 1); !errors.Is(err, ErrAlreadyJoined) {
		t.Errorf("duplicate join: %v", err)
	}
	if err := r.bs.Leave("w1"); err != nil {
		t.Fatal(err)
	}
	if err := r.bs.Leave("w1"); !errors.Is(err, ErrNotJoined) {
		t.Errorf("double leave: %v", err)
	}
	if _, err := r.bs.Assess("w1"); err == nil {
		t.Error("assess after leave should fail")
	}
}

func TestAdmissionControl(t *testing.T) {
	r := newRig(t, Config{MaxClients: 2})
	r.joinWireless(t, "w1", 50, 1)
	r.joinWireless(t, "w2", 60, 1)
	_, err := r.bs.Join(profile.New("w3"), 70, 1)
	if !errors.Is(err, ErrAdmission) {
		t.Errorf("over-capacity join: %v", err)
	}
	if len(r.bs.Clients()) != 2 {
		t.Errorf("clients: %v", r.bs.Clients())
	}
}

func TestAdmissionBySIR(t *testing.T) {
	wiredNet := transport.NewSimNet(transport.SimNetConfig{Seed: 3})
	radioNet := transport.NewSimNet(transport.SimNetConfig{Seed: 4})
	defer wiredNet.Close()
	defer radioNet.Close()
	bw, _ := wiredNet.Attach("bs")
	br, _ := radioNet.Attach("bs")
	bs := New("bs", bw, br, radio.NewChannel(radio.Params{}), Config{AdmissionMinSIRdB: -3})
	defer bs.Close()

	if _, err := bs.Join(profile.New("near"), 30, 1); err != nil {
		t.Fatal(err)
	}
	// An equal-power client at the same distance would land both at
	// ~0 dB minus noise — still above -3.  A far, weak client lands
	// below the floor and is denied.
	if _, err := bs.Join(profile.New("weak"), 500, 0.001); !errors.Is(err, ErrAdmission) {
		t.Errorf("weak join: %v", err)
	}
	if len(bs.Clients()) != 1 {
		t.Errorf("clients after denial: %v", bs.Clients())
	}
}

func TestUplinkEventRelay(t *testing.T) {
	r := newRig(t, Config{})
	w1 := r.joinWireless(t, "w1", 40, 1)
	w2 := r.joinWireless(t, "w2", 60, 1)
	_ = w1

	if err := r.bs.UplinkEvent("w1", apps.AppChat, "", apps.EncodeSay("from the field")); err != nil {
		t.Fatal(err)
	}
	// The wired client sees it via multicast.
	waitFor(t, "wired chat", func() bool { return r.wired.Chat().Len() == 1 })
	if r.wired.Chat().Lines()[0].Sender != "w1" {
		t.Errorf("wired line: %+v", r.wired.Chat().Lines())
	}
	// The other wireless client gets a unicast copy.
	waitFor(t, "wireless chat", func() bool { return w2.Chat().Len() == 1 })

	if err := r.bs.UplinkEvent("ghost", apps.AppChat, "", nil); !errors.Is(err, ErrNotJoined) {
		t.Errorf("uplink from stranger: %v", err)
	}
	if st := r.bs.Stats(); st.UplinkEvents != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestUplinkShareFullImageTier(t *testing.T) {
	r := newRig(t, Config{})
	r.joinWireless(t, "w1", 30, 1) // lone client: high SIR → full image

	obj := testImageObject(t)
	if err := r.bs.UplinkShare("w1", "img-1", "", obj); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "wired image", func() bool {
		st, err := r.wired.Viewer().Stats("img-1")
		return err == nil && st.PacketsAccepted == 16
	})
	res, err := r.wired.Viewer().Render("img-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lossless {
		t.Error("full-tier relay should be lossless")
	}
	if st := r.bs.Stats(); st.ForwardFullImage != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestUplinkShareDegradesWithInterference(t *testing.T) {
	r := newRig(t, Config{})
	// Three clients at equal distance: everyone's SIR collapses to
	// roughly -3 dB (two equal interferers) → text tier.
	r.joinWireless(t, "w1", 50, 1)
	w2 := r.joinWireless(t, "w2", 50, 1)
	r.joinWireless(t, "w3", 50, 1)

	a, _ := r.bs.Assess("w1")
	if a.Tier >= radio.TierImage {
		t.Fatalf("crowded channel tier = %s (SIR %.1f dB)", a.Tier, a.SIRdB)
	}

	obj := testImageObject(t)
	if err := r.bs.UplinkShare("w1", "img-2", "", obj); err != nil {
		t.Fatal(err)
	}
	// The wired session receives degraded content via the media inbox,
	// not the progressive image path.
	waitFor(t, "degraded delivery", func() bool { return r.wired.Inbox().Len() == 1 })
	got, _ := r.wired.Inbox().Latest()
	if got.Object.Kind == media.KindImage {
		t.Errorf("crowded uplink forwarded kind %s", got.Object.Kind)
	}
	if got.Object.Description != "field photo" {
		t.Errorf("semantic content lost: %+v", got.Object)
	}
	// Peer wireless client receives its own tiered copy.
	waitFor(t, "peer delivery", func() bool { return w2.Inbox().Len() == 1 })

	st := r.bs.Stats()
	if st.ForwardFullImage != 0 || st.ForwardSketch+st.ForwardText != 1 {
		t.Errorf("tier stats: %+v", st)
	}
}

func TestUplinkBelowServiceDropped(t *testing.T) {
	r := newRig(t, Config{})
	r.joinWireless(t, "w1", 400, 0.01) // weak and far
	r.joinWireless(t, "w2", 10, 5)     // dominant interferer

	a, _ := r.bs.Assess("w1")
	if a.Tier != radio.TierNone {
		t.Skipf("geometry did not produce TierNone (SIR %.1f dB)", a.SIRdB)
	}
	err := r.bs.UplinkShare("w1", "img-x", "", testImageObject(t))
	if !errors.Is(err, ErrNoService) {
		t.Errorf("hopeless uplink: %v", err)
	}
	if err := r.bs.UplinkEvent("w1", apps.AppChat, "", apps.EncodeSay("hello?")); !errors.Is(err, ErrNoService) {
		t.Errorf("hopeless event: %v", err)
	}
	if st := r.bs.Stats(); st.UplinkDropped != 2 {
		t.Errorf("dropped = %d", st.UplinkDropped)
	}
}

func TestDownlinkTieredDelivery(t *testing.T) {
	r := newRig(t, Config{})
	wNear := r.joinWireless(t, "near", 20, 1)  // strong: full image
	wFar := r.joinWireless(t, "far", 300, 0.2) // weak: degraded

	near, _ := r.bs.Assess("near")
	far, _ := r.bs.Assess("far")
	if near.Tier != radio.TierImage {
		t.Skipf("near tier = %s", near.Tier)
	}
	if far.Tier >= radio.TierImage || far.Tier == radio.TierNone {
		t.Skipf("far tier = %s", far.Tier)
	}

	// A wired client shares an image into the session.
	im := wavelet.Medical(64, 64, 9)
	obj, err := media.EncodeImage(im, "hq map")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.wired.ShareImage("map-1", obj, ""); err != nil {
		t.Fatal(err)
	}

	// The near client receives the full image object.
	waitFor(t, "near delivery", func() bool {
		for _, d := range wNear.Inbox().Items() {
			if d.Object.Kind == media.KindImage {
				return true
			}
		}
		return false
	})
	// The far client receives degraded content only.
	waitFor(t, "far delivery", func() bool { return wFar.Inbox().Len() >= 1 })
	for _, d := range wFar.Inbox().Items() {
		if d.Object.Kind == media.KindImage {
			t.Errorf("far client received full image at tier %s", far.Tier)
		}
		if d.Object.Description != "hq map" {
			t.Errorf("description lost: %+v", d.Object)
		}
	}
}

func TestDownlinkHonorsModalityPreference(t *testing.T) {
	r := newRig(t, Config{})
	w := r.joinWireless(t, "w1", 20, 1) // excellent channel
	_ = w
	// The client switches to text mode (battery conservation): the BS
	// must deliver text even though the SIR admits the full image.
	p := profile.New("w1")
	p.Preferences.SetString("modality", "text")
	r.bs.reg.Put(p)

	obj, err := media.EncodeImage(wavelet.Circles(32, 32), "diagram")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.wired.ShareImage("d-1", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "text delivery", func() bool { return w.Inbox().Len() >= 1 })
	got, _ := w.Inbox().Latest()
	if got.Object.Kind != media.KindText {
		t.Errorf("preference ignored: got %s", got.Object.Kind)
	}
	if string(got.Object.Data) != "diagram" {
		t.Errorf("text content: %q", got.Object.Data)
	}
}

func TestWirelessUplinkOverRF(t *testing.T) {
	// A wireless client transmits framework messages over the radio
	// segment; the BS relays them without an explicit API call.
	r := newRig(t, Config{})
	w := r.joinWireless(t, "w1", 30, 1)

	if err := w.Say("over the air", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "relayed chat", func() bool { return r.wired.Chat().Len() == 1 })
	if r.wired.Chat().Lines()[0].Sender != "w1" {
		t.Errorf("relayed sender: %+v", r.wired.Chat().Lines())
	}
}

func TestPowerControlAPI(t *testing.T) {
	r := newRig(t, Config{})
	r.joinWireless(t, "w1", 30, 5)
	r.joinWireless(t, "w2", 100, 5)

	before, _ := r.bs.Assess("w1")
	powers, err := r.bs.PowerControl(-4, 1e-6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(powers) != 2 {
		t.Errorf("powers: %v", powers)
	}
	// The over-target client was asked to reduce power.
	if powers["w1"] >= 5 && before.SIRdB > -4 {
		t.Errorf("w1 power %g not reduced from 5", powers["w1"])
	}
}

func TestMoreClientsDegradeService(t *testing.T) {
	// The Fig 10 mechanism through the BS API: each join drops the
	// first client's SIR; eventually the tier degrades.
	r := newRig(t, Config{})
	r.joinWireless(t, "w1", 50, 1)
	a1, _ := r.bs.Assess("w1")

	r.joinWireless(t, "w2", 50, 1)
	a2, _ := r.bs.Assess("w1")
	if a2.SIRdB >= a1.SIRdB {
		t.Errorf("SIR did not drop on join: %.1f -> %.1f", a1.SIRdB, a2.SIRdB)
	}
	r.joinWireless(t, "w3", 50, 1)
	a3, _ := r.bs.Assess("w1")
	if a3.SIRdB >= a2.SIRdB {
		t.Errorf("SIR did not drop on second join: %.1f -> %.1f", a2.SIRdB, a3.SIRdB)
	}
	if a1.Tier == radio.TierImage && a3.Tier == radio.TierImage {
		t.Error("tier should degrade as the cell fills")
	}
}

// TestChurnDuringTraffic: wireless clients join and leave while events
// flow; the base station keeps serving the surviving population and
// the departed client's service assessments fail cleanly.
func TestChurnDuringTraffic(t *testing.T) {
	r := newRig(t, Config{})
	w1 := r.joinWireless(t, "w1", 40, 1)
	w2 := r.joinWireless(t, "w2", 55, 1)
	_ = w1

	for i := 0; i < 5; i++ {
		if err := r.bs.UplinkEvent("w1", apps.AppChat, "", apps.EncodeSay("before churn")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "pre-churn relay", func() bool { return r.wired.Chat().Len() == 5 })

	// w2 departs mid-session.
	if err := r.bs.Leave("w2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.bs.Assess("w2"); err == nil {
		t.Error("assessment of departed client should fail")
	}
	// w1's SIR improves once its interferer is gone.
	a, err := r.bs.Assess("w1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier != radio.TierImage {
		t.Errorf("post-churn tier = %s (SIR %.1f dB)", a.Tier, a.SIRdB)
	}
	// Traffic continues to the survivors only.
	if err := r.bs.UplinkEvent("w1", apps.AppChat, "", apps.EncodeSay("after churn")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-churn relay", func() bool { return r.wired.Chat().Len() == 6 })
	if got := w2.Chat().Len(); got > 5 {
		t.Errorf("departed client received post-churn traffic: %d", got)
	}

	// A fresh client can take the departed one's place.
	r.joinWireless(t, "w3", 55, 1)
	if len(r.bs.Clients()) != 2 {
		t.Errorf("clients after rejoin: %v", r.bs.Clients())
	}
}
