package basestation

// Downlink relay (session → wireless clients), uplink frame handling
// (radio segment → session) and the wired-side image reassembly path.
// Per-client delivery is expressed as dispatch pipelines/batches over
// the transmit adapters; membership state comes from the sharded
// registry; reassembly bookkeeping (announce metadata, parked early
// packets, TTL eviction) lives in the registry's collection tracker.

import (
	"errors"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/dispatch"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/rtp"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/transport"
)

// fnv32 hashes a string to an RTP SSRC.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// tierGate returns the infer-tier pipeline stage: assess the client
// and skip it (with a recorded drop) when its service tier is below
// min.  The assessed tier is left on the task for later stages.
func (bs *BaseStation) tierGate(min radio.Tier) dispatch.Stage {
	return func(t *dispatch.Task) error {
		a, err := bs.Assess(t.To)
		if err != nil || a.Tier < min {
			if obs.Enabled() {
				obs.Drop(t.MsgID, obs.StageDeliver, "bs "+bs.id+": "+t.To+" below "+min.String()+" tier")
			}
			return dispatch.ErrSkip
		}
		t.Tier = int(a.Tier)
		return nil
	}
}

// forwardTiered emits the object at the given tier through the
// transmit adapter (to is ignored by the multicast adapter).
// Full-image tier uses the announce + packets path so receivers can
// still apply their own packet budgets; lower tiers deliver one
// transformed media event.
func (bs *BaseStation) forwardTiered(sender, object, sel string, obj *media.Object,
	tier radio.Tier, tx dispatch.Deliverer, to string) error {

	deliver := func(o *media.Object, transformed bool) error {
		payload, err := apps.EncodeMediaObject(o)
		if err != nil {
			return err
		}
		attrs := o.Attrs().Merge(selector.Attributes{
			message.AttrApp:    selector.S(apps.AppMedia),
			message.AttrObject: selector.S(object),
		})
		m := bs.newMessage(message.KindEvent, sender, sel, attrs, payload)
		if transformed {
			// The relayed message is minted here, so the transform hop
			// can only be attributed once its trace identity exists.
			obs.AppendHop(obs.MsgID(m.Sender, m.Seq), bs.id, obs.StageTransform)
		}
		return tx.Deliver(to, m)
	}

	switch tier {
	case radio.TierImage:
		if obj.Kind == media.KindImage &&
			(obj.Format == media.FormatEZW || obj.Format == media.FormatEZWColor) {
			meta, packets, err := apps.ShareImage(object, obj, bs.cfg.TotalPackets)
			if err != nil {
				return err
			}
			attrs := obj.Attrs().Merge(selector.Attributes{
				message.AttrApp:    selector.S(apps.AppImageViewer),
				message.AttrObject: selector.S(object),
			})
			if err := tx.Deliver(to, bs.newMessage(message.KindEvent, sender, sel, attrs, apps.EncodeImageMeta(meta))); err != nil {
				return err
			}
			for i, p := range packets {
				dattrs := selector.Attributes{
					message.AttrApp:    selector.S(apps.AppImageViewer),
					message.AttrObject: selector.S(object),
					message.AttrLevel:  selector.N(float64(i)),
				}
				// RTP-framed like core clients' data packets.
				rp := rtp.Packet{
					PayloadType: 96,
					Marker:      i == len(packets)-1,
					Seq:         uint16(i),
					Timestamp:   uint32(bs.clk.Now().UnixMilli()),
					SSRC:        fnv32(bs.id + "/" + object),
					Payload:     p,
				}
				if err := tx.Deliver(to, bs.newMessage(message.KindData, sender, sel, dattrs, rp.Marshal())); err != nil {
					return err
				}
			}
			return nil
		}
		return deliver(obj, false)
	case radio.TierSketch:
		tsp := obs.StartStage(0, obs.StageTransform)
		sk, err := bs.cfg.Registry.Transmode(obj, media.KindSketch)
		if err != nil {
			// Non-image content cannot be sketched; fall back to text.
			if tsp.Active() {
				tsp.EndErr("bs " + bs.id + ": " + object + " cannot sketch, falling back to text")
			}
			return bs.forwardTiered(sender, object, sel, obj, radio.TierText, tx, to)
		}
		tsp.End()
		return deliver(sk, true)
	case radio.TierText:
		tsp := obs.StartStage(0, obs.StageTransform)
		txt, err := bs.cfg.Registry.Transmode(obj, media.KindText)
		if err != nil {
			if tsp.Active() {
				tsp.EndErr("bs " + bs.id + ": " + object + " text transform failed")
			}
			return err
		}
		tsp.End()
		return deliver(txt, true)
	default:
		return ErrNoService
	}
}

// --- Downlink (session → wireless clients) ---

func (bs *BaseStation) wiredLoop() {
	defer close(bs.wiredDone)
	for pkt := range bs.wired.Recv() {
		bs.handleWired(pkt)
	}
}

// handleWired relays wired-session traffic to the wireless clients,
// degrading content to each client's tier.
func (bs *BaseStation) handleWired(pkt transport.Packet) {
	frame, err := bs.unwrap.Unwrap(pkt.From, pkt.Data)
	if err != nil || frame == nil {
		return
	}
	m, err := message.Decode(frame)
	if err != nil {
		return
	}
	if m.Sender == bs.id {
		return
	}
	app, _ := m.Attr(message.AttrApp)
	switch {
	case m.Kind == message.KindEvent && (app.Str() == apps.AppChat || app.Str() == apps.AppWhiteboard || app.Str() == apps.AppMedia):
		// Light events run the relay pipeline per client: candidates
		// come index-first from the registry's inverted predicate
		// index (DESIGN.md §12; Config.MatchIndex off = every client),
		// then each candidate's pipeline re-verifies the cached
		// compiled selector against the memoized flattened profile,
		// gates on the text tier and transmits.  The dispatch pool
		// fans the candidate set across its shards.
		msgID := obs.MsgID(m.Sender, m.Seq)
		ids := dispatch.Candidates(bs.reg, m, bs.cfg.MatchIndex != MatchIndexOff)
		bs.pool.Each(msgID, ids, func(id string) error {
			t := dispatch.Task{MsgID: msgID, To: id, Msg: m, Node: bs.id}
			return bs.eventPipe.Run(&t)
		})
	case m.Kind == message.KindEvent && app.Str() == apps.AppImageViewer:
		meta, err := apps.DecodeImageMeta(m.Body)
		if err != nil {
			return
		}
		bs.collect.Announce(meta)
		parked := bs.collections.Announce(meta.Object, meta, bs.clk.Now())
		for _, p := range parked {
			bs.collect.AddPacket(meta.Object, p.Idx, p.Data)
		}
		bs.maybeDeliver(m.Sender, meta.Object, m.Selector)
	case m.Kind == message.KindData && app.Str() == apps.AppImageViewer:
		object, ok1 := m.Attr(message.AttrObject)
		level, ok2 := m.Attr(message.AttrLevel)
		if !ok1 || !ok2 || len(m.Body) < rtp.HeaderLen {
			return
		}
		chunk := m.Body[rtp.HeaderLen:]
		if err := bs.collect.AddPacket(object.Str(), int(level.Num()), chunk); err != nil {
			if errors.Is(err, apps.ErrUnknownImage) {
				// The packet overtook its announce; park it (bounded).
				bs.collections.Park(object.Str(), int(level.Num()), chunk, bs.clk.Now())
			}
			return
		}
		bs.collections.Touch(object.Str(), bs.clk.Now())
		bs.maybeDeliver(m.Sender, object.Str(), m.Selector)
	}
}

// maybeDeliver forwards a wired-side image to the wireless clients
// once every packet has been collected, then purges the collection
// state (reassembly buffers, announce metadata) — completed transfers
// must not accumulate in the broker.
func (bs *BaseStation) maybeDeliver(sender, object, sel string) {
	st, err := bs.collect.Stats(object)
	if err != nil || st.PacketsAccepted != st.TotalPackets {
		return
	}
	bs.deliverCollectedImage(sender, object, sel)
	bs.collections.Purge(object)
	bs.collect.Forget(object)
}

// deliverCollectedImage sends a fully collected wired-side image to
// each wireless client at its own tier.
func (bs *BaseStation) deliverCollectedImage(sender, object, sel string) {
	meta, _ := bs.collections.Meta(object)

	// Re-encode the collected image, preserving color when the wired
	// share carried it (full-image-tier clients see the original hues;
	// lower tiers go through the grayscale/sketch/text chain anyway).
	var obj *media.Object
	if cres, err := bs.collect.RenderColor(object); err == nil && cres.PlanesPresent == 3 {
		obj, err = media.EncodeColorImage(cres.Image, meta.Description)
		if err != nil {
			return
		}
	} else {
		res, err := bs.collect.Render(object)
		if err != nil {
			return
		}
		var encErr error
		obj, encErr = media.EncodeImage(res.Image, meta.Description)
		if encErr != nil {
			return
		}
	}
	// Per-client pipeline: resolve the flattened profile, infer the
	// tier, clamp to the client's declared modality preference, then
	// transform + transmit through forwardTiered.
	pipe := dispatch.NewPipeline(
		dispatch.Match(func(id string) (selector.Attributes, bool) {
			flat, _, ok := bs.reg.FlatSnapshot(id)
			return flat, ok
		}),
		func(t *dispatch.Task) error {
			a, err := bs.Assess(t.To)
			if err != nil || a.Tier == radio.TierNone {
				if obs.Enabled() {
					obs.Drop(0, obs.StageDeliver,
						"bs "+bs.id+": collected image "+object+" not deliverable to "+t.To)
				}
				return dispatch.ErrSkip
			}
			// Respect the client's preferred modality when declared
			// (e.g. a battery-saving client that switched to text mode).
			tier := a.Tier
			if pref, ok := t.Flat[profile.SectionPreference+".modality"]; ok {
				switch media.Kind(pref.Str()) {
				case media.KindText:
					tier = radio.TierText
				case media.KindSketch:
					if tier > radio.TierSketch {
						tier = radio.TierSketch
					}
				}
			}
			t.Tier = int(tier)
			return nil
		},
		func(t *dispatch.Task) error {
			bs.forwardTiered(sender, object, sel, obj, radio.Tier(t.Tier), bs.rfTx, t.To)
			return nil
		},
	)
	bs.pool.Each(0, bs.reg.IDs(), func(id string) error {
		t := dispatch.Task{To: id, Node: bs.id}
		return pipe.Run(&t)
	})
}

// sweepLoop periodically evicts idle, never-completed collections:
// a wired sender crashing mid-transfer or a lossy segment eating tail
// packets must not leak reassembly buffers and announce metadata.
func (bs *BaseStation) sweepLoop() {
	defer close(bs.sweepDone)
	ttl := bs.collections.TTL()
	if ttl <= 0 {
		<-bs.sweepStop
		return
	}
	interval := ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := bs.clk.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-bs.sweepStop:
			return
		case now := <-ticker.C():
			for _, object := range bs.collections.Sweep(now) {
				bs.collect.Forget(object)
				if obs.Enabled() {
					obs.Drop(0, obs.StageDeliver,
						"bs "+bs.id+": incomplete collection "+object+" expired")
				}
			}
		}
	}
}

// --- Uplink frame handling (wireless segment → relays) ---

// wirelessLoop receives uplink frames from wireless clients over the
// radio segment: clients transmit framework messages; the BS relays
// them as if the client had called UplinkEvent/UplinkShare.
func (bs *BaseStation) wirelessLoop() {
	defer close(bs.rfDone)
	for pkt := range bs.wireless.Recv() {
		bs.handleWireless(pkt)
	}
}

func (bs *BaseStation) handleWireless(pkt transport.Packet) {
	frame, err := bs.unwrap.Unwrap("rf:"+pkt.From, pkt.Data)
	if err != nil || frame == nil {
		return
	}
	m, err := message.Decode(frame)
	if err != nil {
		return
	}
	if _, ok := bs.reg.Get(m.Sender); !ok {
		return // not joined: ignore
	}
	app, _ := m.Attr(message.AttrApp)
	switch {
	case m.Kind == message.KindProfile:
		bs.applyProfileUpdate(m)
	case m.Kind == message.KindEvent && app.Str() == apps.AppMedia:
		obj, err := apps.DecodeMediaObject(m.Body)
		if err != nil {
			return
		}
		object, _ := m.Attr(message.AttrObject)
		bs.UplinkShare(m.Sender, object.Str(), m.Selector, obj)
	case m.Kind == message.KindEvent:
		bs.UplinkEvent(m.Sender, app.Str(), m.Selector, m.Body)
	}
}

// applyProfileUpdate folds a client's announced interests and
// preferences into its stored profile; the paper's "change in
// preference" path (e.g. a client switching to text mode to conserve
// battery).
func (bs *BaseStation) applyProfileUpdate(m *message.Message) {
	p, ok := bs.reg.Get(m.Sender)
	if !ok {
		return
	}
	intPrefix := profile.SectionInterest + "."
	prefPrefix := profile.SectionPreference + "."
	for k, v := range m.Attrs {
		switch {
		case len(k) > len(intPrefix) && k[:len(intPrefix)] == intPrefix:
			p.Interests[k[len(intPrefix):]] = v
		case len(k) > len(prefPrefix) && k[:len(prefPrefix)] == prefPrefix:
			p.Preferences[k[len(prefPrefix):]] = v
		}
	}
	bs.reg.Put(p)
}
