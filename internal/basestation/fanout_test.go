package basestation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/transport"
)

func fanOutFixture(t *testing.T, workers int) *BaseStation {
	t.Helper()
	wiredNet := transport.NewSimNet(transport.SimNetConfig{Seed: 1})
	radioNet := transport.NewSimNet(transport.SimNetConfig{Seed: 2})
	t.Cleanup(func() { wiredNet.Close(); radioNet.Close() })
	bsWired, err := wiredNet.Attach("bs")
	if err != nil {
		t.Fatal(err)
	}
	bsRF, err := radioNet.Attach("bs")
	if err != nil {
		t.Fatal(err)
	}
	bs := New("bs", bsWired, bsRF, radio.NewChannel(radio.Params{}),
		Config{FanOutWorkers: workers})
	t.Cleanup(func() { bs.Close() })
	return bs
}

// The dispatch pool (which replaced the bespoke fanOut) must call fn
// exactly once per ID regardless of worker count, and must report the
// first error while still attempting every client.
func TestFanOutCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			bs := fanOutFixture(t, workers)
			ids := make([]string, 100)
			for i := range ids {
				ids[i] = fmt.Sprintf("c%d", i)
			}
			var mu sync.Mutex
			seen := make(map[string]int)
			err := bs.pool.Each(0, ids, func(id string) error {
				mu.Lock()
				seen[id]++
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(ids) {
				t.Fatalf("fn saw %d distinct ids, want %d", len(seen), len(ids))
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("id %s handled %d times", id, n)
				}
			}
		})
	}
}

func TestFanOutErrorDoesNotStarvePeers(t *testing.T) {
	bs := fanOutFixture(t, 4)
	ids := []string{"a", "b", "c", "d", "e", "f"}
	boom := errors.New("boom")
	var handled atomic.Int64
	err := bs.pool.Each(0, ids, func(id string) error {
		handled.Add(1)
		if id == "b" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if handled.Load() != int64(len(ids)) {
		t.Fatalf("handled %d of %d: one failing peer starved the rest", handled.Load(), len(ids))
	}
}

func TestFanOutEmpty(t *testing.T) {
	bs := fanOutFixture(t, 4)
	if err := bs.pool.Each(0, nil, func(string) error {
		t.Error("fn called for empty id set")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
