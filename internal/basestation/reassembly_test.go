package basestation

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/message"
	"adaptiveqos/internal/rtp"
	"adaptiveqos/internal/selector"
	"adaptiveqos/internal/transport"
)

// wiredInjector crafts raw wired-session frames (announce / data) so
// tests can drive partial image transfers the core client API would
// always complete.
type wiredInjector struct {
	t    *testing.T
	conn transport.Conn
	seq  uint32
}

func newWiredInjector(t *testing.T, r *rig, id string) *wiredInjector {
	t.Helper()
	conn, err := r.wiredNet.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	return &wiredInjector{t: t, conn: conn}
}

func (in *wiredInjector) send(m *message.Message) {
	in.t.Helper()
	in.seq++
	m.Sender = in.conn.ID()
	m.Seq = in.seq
	m.Timestamp = time.Now()
	frame, err := message.Encode(m)
	if err != nil {
		in.t.Fatal(err)
	}
	if err := in.conn.Multicast(message.WrapWhole(frame)); err != nil {
		in.t.Fatal(err)
	}
}

func (in *wiredInjector) announce(object string, meta apps.ImageMeta) {
	in.send(&message.Message{
		Kind: message.KindEvent,
		Attrs: selector.Attributes{
			message.AttrApp:    selector.S(apps.AppImageViewer),
			message.AttrObject: selector.S(object),
		},
		Body: apps.EncodeImageMeta(meta),
	})
}

func (in *wiredInjector) data(object string, idx int, chunk []byte) {
	rp := rtp.Packet{
		PayloadType: 96,
		Seq:         uint16(idx),
		SSRC:        1,
		Payload:     chunk,
	}
	in.send(&message.Message{
		Kind: message.KindData,
		Attrs: selector.Attributes{
			message.AttrApp:    selector.S(apps.AppImageViewer),
			message.AttrObject: selector.S(object),
			message.AttrLevel:  selector.N(float64(idx)),
		},
		Body: rp.Marshal(),
	})
}

// TestReassemblyStateReleasedAfterDelivery: once a wired-side image is
// fully collected and forwarded, the broker must drop ALL reassembly
// state — the collection tracker entry and the viewer's buffers — so
// long sessions do not accumulate per-image memory (the leak this
// refactor fixes).
func TestReassemblyStateReleasedAfterDelivery(t *testing.T) {
	r := newRig(t, Config{})
	w := r.joinWireless(t, "w1", 20, 1)

	obj := testImageObject(t)
	if err := r.wired.ShareImage("rel-1", obj, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery to wireless client", func() bool {
		if st, err := w.Viewer().Stats("rel-1"); err == nil && st.PacketsAccepted == st.TotalPackets {
			return true
		}
		return w.Inbox().Len() > 0
	})
	waitFor(t, "collection state purge", func() bool {
		return r.bs.collections.Len() == 0
	})
	if _, err := r.bs.collect.Stats("rel-1"); err == nil {
		t.Error("viewer still tracks the delivered image")
	}
}

// TestReassemblySweepEvictsIncomplete: an announced transfer whose
// sender disappears mid-stream is TTL-evicted — tracker entry, viewer
// buffers and parked orphan packets all released.
func TestReassemblySweepEvictsIncomplete(t *testing.T) {
	r := newRig(t, Config{CollectTTL: 80 * time.Millisecond})
	in := newWiredInjector(t, r, "crasher")

	obj := testImageObject(t)
	meta, packets, err := apps.ShareImage("halfway", obj, 8)
	if err != nil {
		t.Fatal(err)
	}
	in.announce("halfway", meta)
	in.data("halfway", 0, packets[0]) // ... and the sender crashes here

	// An orphan data packet whose announce never arrives parks in the
	// tracker and must age out the same way.
	in.data("orphan", 0, packets[1])

	waitFor(t, "partial transfer registered", func() bool {
		st, err := r.bs.collect.Stats("halfway")
		return err == nil && st.PacketsAccepted == 1 && r.bs.collections.Len() == 2
	})
	waitFor(t, "TTL eviction", func() bool {
		return r.bs.collections.Len() == 0
	})
	if _, err := r.bs.collect.Stats("halfway"); err == nil {
		t.Error("viewer still tracks the expired transfer")
	}

	// The broker still accepts a fresh, complete transfer of the same
	// object after the eviction.
	meta2, packets2, err := apps.ShareImage("halfway", obj, 8)
	if err != nil {
		t.Fatal(err)
	}
	in.announce("halfway", meta2)
	for i, p := range packets2 {
		in.data("halfway", i, p)
	}
	waitFor(t, "retransfer completes and purges", func() bool {
		_, err := r.bs.collect.Stats("halfway")
		return r.bs.collections.Len() == 0 && err != nil
	})
}

// TestReassemblyJoinLeaveMidTransfer: clients joining and leaving while
// transfers are in flight must not wedge delivery or leak collection
// state.
func TestReassemblyJoinLeaveMidTransfer(t *testing.T) {
	r := newRig(t, Config{CollectTTL: 500 * time.Millisecond})
	r.joinWireless(t, "w1", 30, 1)

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 4; i++ {
			if err := r.wired.ShareImage(fmt.Sprintf("churn-%d", i), testImageObject(t), ""); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Churn membership while the packets stream through the broker.
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("mid-%d", i)
		r.joinWireless(t, id, 40+float64(10*i), 1)
		if i%2 == 0 {
			if err := r.bs.Leave(id); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := r.bs.Leave("w1"); err != nil {
		t.Fatal(err)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all collections drained after churn", func() bool {
		return r.bs.collections.Len() == 0
	})
}
