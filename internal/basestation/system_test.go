package basestation

import (
	"fmt"
	"testing"
	"time"

	"adaptiveqos/internal/apps"
	"adaptiveqos/internal/core"
	"adaptiveqos/internal/hostagent"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/radio"
	"adaptiveqos/internal/session"
	"adaptiveqos/internal/snmp"
	"adaptiveqos/internal/trace"
	"adaptiveqos/internal/transport"
)

// TestFullSystemSession runs the paper's operational overview end to
// end in one process: wired clients with SNMP-driven adaptation, an
// archiving coordinator, a base station with wireless clients, a
// workload generator driving chat/strokes/image shares, and a late
// joiner catching up from the archive.  The assertions are global
// consistency properties rather than any single feature.
func TestFullSystemSession(t *testing.T) {
	wiredNet := transport.NewSimNet(transport.SimNetConfig{Seed: 101})
	radioNet := transport.NewSimNet(transport.SimNetConfig{Seed: 102})
	defer wiredNet.Close()
	defer radioNet.Close()

	// Coordinator archives the session.
	coordConn, _ := wiredNet.Attach("coordinator")
	coord := core.NewCoordinator(coordConn, session.Group{Objective: "system-test"})
	defer coord.Close()

	// Wired clients; the first is monitored via SNMP.
	host := hostagent.NewHost("w0-host")
	host.SetSchedule(hostagent.ParamCPULoad, hostagent.Ramp{From: 20, To: 90, Steps: 30})
	host.Set(hostagent.ParamPageFaults, 15)
	monitor := &hostagent.Monitor{
		Client: snmp.NewClient(&snmp.AgentRoundTripper{Agent: hostagent.NewAgent(host)}, snmp.V2c, ""),
	}
	var wired []*core.Client
	for i := 0; i < 3; i++ {
		conn, err := wiredNet.Attach(fmt.Sprintf("wired-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{}
		if i == 0 {
			cfg.Monitor = monitor
		}
		c := core.NewClient(conn, cfg)
		defer c.Close()
		wired = append(wired, c)
	}

	// Base station + wireless clients.
	bsWired, _ := wiredNet.Attach("bs")
	bsRF, _ := radioNet.Attach("bs")
	bs := New("bs", bsWired, bsRF, radio.NewChannel(radio.Params{}), Config{})
	defer bs.Close()
	var wireless []*core.Client
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("wireless-%d", i)
		conn, err := radioNet.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		c := core.NewClient(conn, core.Config{})
		defer c.Close()
		if _, err := bs.Join(profile.New(id), 45+float64(i)*8, 1); err != nil {
			t.Fatal(err)
		}
		wireless = append(wireless, c)
	}

	// Drive the workload.
	gen := trace.NewGenerator(5, []string{"wired-0", "wired-1", "wired-2"}, trace.DefaultMix())
	senderFor := map[string]*core.Client{
		"wired-0": wired[0], "wired-1": wired[1], "wired-2": wired[2],
	}
	var chats, strokes, images int
	for i := 0; i < 30; i++ {
		host.Step()
		if _, err := wired[0].AdaptOnce(); err != nil {
			t.Fatal(err)
		}
		ev := gen.Next()
		sender := senderFor[ev.Sender]
		switch ev.Kind {
		case trace.EventChat:
			if err := sender.Say(ev.Text, ""); err != nil {
				t.Fatal(err)
			}
			chats++
		case trace.EventStroke:
			s := apps.Stroke{ID: uint32(i + 1), Color: 1, Width: 1,
				Points: []apps.Point{{X: int16(i), Y: 0}, {X: int16(i), Y: 9}}}
			if err := sender.Draw(s, ""); err != nil {
				t.Fatal(err)
			}
			strokes++
		case trace.EventImageShare:
			images++
			obj, err := media.EncodeImage(ev.Image, ev.Description)
			if err != nil {
				t.Fatal(err)
			}
			if err := sender.ShareImage(fmt.Sprintf("sys-img-%d", images), obj, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(300 * time.Millisecond)

	// --- Global consistency -------------------------------------------

	// Every wired client converged on the same chat history length and
	// whiteboard state (each sees every event, including its own).
	for _, c := range wired {
		if got := c.Chat().Len(); got != chats {
			t.Errorf("%s: chat %d, want %d", c.ID(), got, chats)
		}
		if got := c.Whiteboard().Len(); got != strokes {
			t.Errorf("%s: strokes %d, want %d", c.ID(), got, strokes)
		}
		if st := c.Stats(); st.DecodeErrors != 0 {
			t.Errorf("%s: decode errors %d", c.ID(), st.DecodeErrors)
		}
	}

	// The monitored client's budget tightened as its host degraded.
	if d := wired[0].LastDecision(); d.EffectiveBudget(16) >= 16 {
		t.Errorf("wired-0 budget %d never constrained", d.EffectiveBudget(16))
	}

	// Non-sender wired clients received all image packets.
	for _, c := range wired[1:] {
		for i := 1; i <= images; i++ {
			object := fmt.Sprintf("sys-img-%d", i)
			st, err := c.Viewer().Stats(object)
			if err != nil {
				t.Errorf("%s: %s missing", c.ID(), object)
				continue
			}
			if st.PacketsReceived != st.TotalPackets {
				t.Errorf("%s: %s received %d/%d", c.ID(), object, st.PacketsReceived, st.TotalPackets)
			}
		}
	}

	// Wireless clients got every chat line (relayed through the BS)
	// and a tiered copy of every image.
	for _, c := range wireless {
		if got := c.Chat().Len(); got != chats {
			t.Errorf("%s: chat %d, want %d", c.ID(), got, chats)
		}
		delivered := len(c.Viewer().Objects()) + c.Inbox().Len()
		if delivered < images {
			t.Errorf("%s: %d image deliveries, want >= %d", c.ID(), delivered, images)
		}
	}

	// The coordinator archived every event the multicast carried:
	// chats + strokes + per-image (1 announce + 16 packets).
	wantArchived := chats + strokes + images*17
	if got := coord.ArchivedEvents(); got != wantArchived {
		t.Errorf("archived %d, want %d", got, wantArchived)
	}

	// A late joiner reconstructs the whole session from the archive.
	lateConn, _ := wiredNet.Attach("late")
	late := core.NewClient(lateConn, core.Config{})
	defer late.Close()
	if err := late.RequestHistory("coordinator", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "late joiner catch-up", func() bool {
		return late.Chat().Len() == chats && late.Whiteboard().Len() == strokes
	})
	for i := 1; i <= images; i++ {
		object := fmt.Sprintf("sys-img-%d", i)
		waitFor(t, object+" replay", func() bool {
			st, err := late.Viewer().Stats(object)
			return err == nil && st.PacketsAccepted == st.TotalPackets
		})
	}
}
