package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// collect drains up to n packets from ch or times out.
func collect(t *testing.T, ch <-chan Packet, n int, timeout time.Duration) []Packet {
	t.Helper()
	var out []Packet
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case p, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, p)
		case <-deadline:
			t.Fatalf("timeout: received %d of %d packets", len(out), n)
		}
	}
	return out
}

func TestSimNetMulticast(t *testing.T) {
	net := NewSimNet(SimNetConfig{})
	defer net.Close()
	a, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := net.Attach("b")
	c, _ := net.Attach("c")

	if err := a.Multicast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, conn := range []Conn{b, c} {
		p := collect(t, conn.Recv(), 1, time.Second)[0]
		if p.From != "a" || string(p.Data) != "hello" || p.Unicast {
			t.Errorf("%s got %+v", conn.ID(), p)
		}
	}
	// The sender must not receive its own multicast.
	select {
	case p := <-a.Recv():
		t.Errorf("sender received own multicast: %+v", p)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSimNetUnicast(t *testing.T) {
	net := NewSimNet(SimNetConfig{})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	c, _ := net.Attach("c")

	if err := a.Unicast("b", []byte("direct")); err != nil {
		t.Fatal(err)
	}
	p := collect(t, b.Recv(), 1, time.Second)[0]
	if !p.Unicast || string(p.Data) != "direct" {
		t.Errorf("unicast packet: %+v", p)
	}
	select {
	case <-c.Recv():
		t.Error("unicast leaked to third node")
	case <-time.After(20 * time.Millisecond):
	}
	if err := a.Unicast("nobody", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown dest: %v", err)
	}
}

func TestSimNetAttachErrors(t *testing.T) {
	net := NewSimNet(SimNetConfig{})
	defer net.Close()
	if _, err := net.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach("a"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate attach: %v", err)
	}
	net.Close()
	if _, err := net.Attach("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close: %v", err)
	}
}

func TestSimNetLoss(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 42})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	net.SetLink("a", "b", Link{Loss: 1.0})

	for i := 0; i < 10; i++ {
		if err := a.Unicast("b", []byte("gone")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-b.Recv():
		t.Fatal("packet delivered over 100% loss link")
	case <-time.After(30 * time.Millisecond):
	}
	if st := net.Stats("b"); st.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", st.Dropped)
	}

	// Partial loss: with seed fixed, roughly half arrive.
	net.SetLink("a", "b", Link{Loss: 0.5})
	const sent = 200
	for i := 0; i < sent; i++ {
		a.Unicast("b", []byte("maybe"))
	}
	time.Sleep(50 * time.Millisecond)
	st := net.Stats("b")
	got := int(st.Delivered)
	if got < sent/4 || got > sent*3/4 {
		t.Errorf("delivered %d of %d at 50%% loss", got, sent)
	}
}

func TestSimNetDelayAndJitter(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 7})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	net.SetLink("a", "b", Link{Delay: 30 * time.Millisecond, Jitter: 10 * time.Millisecond})

	start := time.Now()
	a.Unicast("b", []byte("slow"))
	collect(t, b.Recv(), 1, time.Second)
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Errorf("delivery after %v, want >= ~30ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("delivery after %v, far beyond delay+jitter", elapsed)
	}
}

func TestSimNetTimeScale(t *testing.T) {
	// 1 simulated second of delay compressed 100× → ~10ms real.
	net := NewSimNet(SimNetConfig{Seed: 7, TimeScale: 100})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	net.SetLink("a", "b", Link{Delay: time.Second})

	start := time.Now()
	a.Unicast("b", []byte("scaled"))
	collect(t, b.Recv(), 1, time.Second)
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond || elapsed > 300*time.Millisecond {
		t.Errorf("scaled delivery after %v, want ~10ms", elapsed)
	}
}

func TestSimNetBandwidthQueueing(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 7})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	// 80 kbit/s: a 1000-byte frame serializes in 100ms.
	net.SetLink("a", "b", Link{BandwidthBps: 80_000})

	frame := make([]byte, 1000)
	start := time.Now()
	a.Unicast("b", frame)
	a.Unicast("b", frame)
	pkts := collect(t, b.Recv(), 2, 3*time.Second)
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("two frames in %v; queueing should serialize to ~200ms", elapsed)
	}
	_ = pkts
}

func TestSimNetDuplicate(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 3})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	net.SetLink("a", "b", Link{Duplicate: 1.0})

	a.Unicast("b", []byte("twice"))
	pkts := collect(t, b.Recv(), 2, time.Second)
	if string(pkts[0].Data) != "twice" || string(pkts[1].Data) != "twice" {
		t.Errorf("duplicate contents: %q, %q", pkts[0].Data, pkts[1].Data)
	}
}

func TestSimNetPartition(t *testing.T) {
	net := NewSimNet(SimNetConfig{})
	defer net.Close()
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")

	net.Partition("a", "b", true)
	a.Unicast("b", []byte("blocked"))
	select {
	case <-b.Recv():
		t.Fatal("delivery across partition")
	case <-time.After(30 * time.Millisecond):
	}

	net.Partition("a", "b", false)
	a.Unicast("b", []byte("healed"))
	p := collect(t, b.Recv(), 1, time.Second)[0]
	if string(p.Data) != "healed" {
		t.Errorf("post-heal packet: %q", p.Data)
	}
}

func TestSimNetMTU(t *testing.T) {
	net := NewSimNet(SimNetConfig{MTU: 100})
	defer net.Close()
	a, _ := net.Attach("a")
	net.Attach("b")
	if err := a.Multicast(make([]byte, 101)); !errors.Is(err, ErrFrameSize) {
		t.Errorf("oversize frame: %v", err)
	}
	if err := a.Multicast(make([]byte, 100)); err != nil {
		t.Errorf("max-size frame: %v", err)
	}
}

func TestSimNetCloseSemantics(t *testing.T) {
	net := NewSimNet(SimNetConfig{})
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Multicast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if err := b.Unicast("a", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("send to detached node: %v", err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel should be closed")
	}
	net.Close()
	net.Close() // idempotent
}

func TestSimNetStatsAndOverflow(t *testing.T) {
	net := NewSimNet(SimNetConfig{InboxDepth: 2})
	defer net.Close()
	a, _ := net.Attach("a")
	net.Attach("b")

	for i := 0; i < 10; i++ {
		a.Unicast("b", []byte{byte(i)})
	}
	time.Sleep(50 * time.Millisecond)
	st := net.Stats("b")
	if st.Delivered != 2 {
		t.Errorf("delivered = %d, want 2 (inbox depth)", st.Delivered)
	}
	if st.Overflow != 8 {
		t.Errorf("overflow = %d, want 8", st.Overflow)
	}
	if st.Bytes != 2 {
		t.Errorf("bytes = %d, want 2", st.Bytes)
	}
	if sa := net.Stats("a"); sa.Sent != 10 {
		t.Errorf("a sent = %d, want 10", sa.Sent)
	}
	if unknown := net.Stats("zzz"); unknown != (Stats{}) {
		t.Errorf("unknown node stats = %+v", unknown)
	}
}

func TestSimNetManyNodesBroadcastStress(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 11})
	defer net.Close()
	const n = 20
	conns := make([]Conn, n)
	for i := range conns {
		c, err := net.Attach(fmt.Sprintf("node-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	const rounds = 25
	for r := 0; r < rounds; r++ {
		if err := conns[r%n].Multicast([]byte{byte(r)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every node receives every multicast it did not send.
	for i, c := range conns {
		var mine int
		for r := 0; r < rounds; r++ {
			if r%n == i {
				mine++
			}
		}
		pkts := collect(t, c.Recv(), rounds-mine, 3*time.Second)
		if len(pkts) != rounds-mine {
			t.Errorf("node %d: %d packets, want %d", i, len(pkts), rounds-mine)
		}
	}
}

// TestSimNetLinkBusyPurgedOnClose is the leak regression: the
// per-directed-pair serialization map must not accumulate entries for
// detached nodes under attach/detach churn.
func TestSimNetLinkBusyPurgedOnClose(t *testing.T) {
	net := NewSimNet(SimNetConfig{
		Seed:        3,
		DefaultLink: Link{BandwidthBps: 1e6}, // finite bandwidth populates linkBusy
	})
	defer net.Close()
	hub, _ := net.Attach("hub")
	go func() { // drain the hub so deliveries don't pile up
		for range hub.Recv() {
		}
	}()

	for round := 0; round < 5; round++ {
		id := fmt.Sprintf("churn-%d", round)
		c, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Multicast([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := hub.Unicast(id, []byte("reply")); err != nil {
			t.Fatal(err)
		}
		net.mu.Lock()
		populated := len(net.linkBusy) > 0
		net.mu.Unlock()
		if !populated {
			t.Fatal("test precondition: bandwidth-limited sends should populate linkBusy")
		}
		c.Close()
		net.mu.Lock()
		for k := range net.linkBusy {
			if k.from == id || k.to == id {
				t.Errorf("round %d: linkBusy leaked %v after close", round, k)
			}
		}
		net.mu.Unlock()
	}

	// After every churn node detached, only hub-internal state may
	// remain (and hub has no one to talk to, so: nothing).
	net.mu.Lock()
	n := len(net.linkBusy)
	net.mu.Unlock()
	if n != 0 {
		t.Errorf("linkBusy retains %d entries after all peers detached", n)
	}
}
