// Package transport provides the communication substrate beneath the
// messaging layer: a multicast-with-unicast abstraction, a simulated
// network with configurable per-link bandwidth, propagation delay,
// jitter, loss and duplication (used by the experiments for
// reproducibility), and a real UDP implementation for running the
// framework across processes.
//
// The model follows the paper: clients join a multicast session;
// multicast carries session traffic to every peer, while unicast is
// used on the wireless leg between a base station and its clients.
package transport

import (
	"errors"
	"time"
)

// Packet is a received frame.
type Packet struct {
	// From is the sender's node ID.
	From string
	// Data is the frame payload (owned by the receiver).
	Data []byte
	// Unicast reports whether the frame was addressed to this node
	// specifically rather than to the multicast group.
	Unicast bool
	// At is the delivery time.
	At time.Time
}

// Conn is one node's attachment to the communication substrate.
type Conn interface {
	// ID returns the node's identifier on the substrate.
	ID() string
	// Multicast sends the frame to every other node in the group.
	Multicast(frame []byte) error
	// Unicast sends the frame to one node.
	Unicast(to string, frame []byte) error
	// Recv returns the channel of inbound packets.  It is closed when
	// the connection closes.
	Recv() <-chan Packet
	// Close detaches the node.  Safe to call more than once.
	Close() error
}

// Substrate-level errors.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrUnknownNode = errors.New("transport: unknown destination node")
	ErrDuplicateID = errors.New("transport: node ID already attached")
	ErrFrameSize   = errors.New("transport: frame exceeds substrate MTU")
)

// Stats counts substrate-level events for a node.
type Stats struct {
	Sent      uint64 // frames passed to Send (multicast counts once)
	Delivered uint64 // frames delivered into this node's inbox
	Dropped   uint64 // frames lost on links toward this node
	Overflow  uint64 // frames dropped because this node's inbox was full
	Bytes     uint64 // payload bytes delivered to this node
}
