package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"adaptiveqos/internal/clock"
)

// UDPTransport runs the substrate over real UDP sockets.  "Multicast"
// is implemented as unicast fan-out to a registered peer set, which
// gives multicast semantics on networks (and containers) where IGMP
// group membership is unavailable; the base station and examples use
// it across loopback.
//
// Each datagram carries a small header naming the logical sender and a
// unicast flag, so receivers see the same Packet shape as on SimNet.
type UDPTransport struct {
	// Clock stamps received packets (nil = wall clock).  Set before
	// Listen; like SimNet and DESNet, arrival timestamps go through the
	// seam so recorded and replayed sessions see consistent time.
	Clock clock.Clock

	mu    sync.Mutex
	peers map[string]*net.UDPAddr
}

// NewUDPTransport returns an empty transport with no peers.
func NewUDPTransport() *UDPTransport {
	return &UDPTransport{peers: make(map[string]*net.UDPAddr)}
}

// AddPeer registers (or updates) the address for a peer ID.
func (t *UDPTransport) AddPeer(id string, addr *net.UDPAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// RemovePeer forgets a peer.
func (t *UDPTransport) RemovePeer(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.peers, id)
}

// Peers returns the registered peer IDs.
func (t *UDPTransport) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	return ids
}

// Listen opens a UDP socket bound to addr (e.g. "127.0.0.1:0") for the
// node id and registers its own address as a peer so other nodes added
// to the same UDPTransport value can reach it.
func (t *UDPTransport) Listen(id, addr string) (Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	c := &udpConn{
		t:     t,
		id:    id,
		clk:   clock.Or(t.Clock),
		sock:  sock,
		inbox: make(chan Packet, 1024),
		done:  make(chan struct{}),
	}
	t.AddPeer(id, sock.LocalAddr().(*net.UDPAddr))
	go c.readLoop()
	return c, nil
}

// udpConn is a node's UDP attachment.
type udpConn struct {
	t     *UDPTransport
	id    string
	clk   clock.Clock
	sock  *net.UDPConn
	inbox chan Packet

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Datagram header: senderLen uint16 | sender | flags uint8 (bit0 = unicast).
func encodeDatagram(sender string, unicast bool, frame []byte) []byte {
	buf := make([]byte, 0, 3+len(sender)+len(frame))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(sender)))
	buf = append(buf, sender...)
	var flags byte
	if unicast {
		flags = 1
	}
	buf = append(buf, flags)
	return append(buf, frame...)
}

func decodeDatagram(dgram []byte) (sender string, unicast bool, frame []byte, ok bool) {
	if len(dgram) < 3 {
		return "", false, nil, false
	}
	n := int(binary.BigEndian.Uint16(dgram))
	if len(dgram) < 2+n+1 {
		return "", false, nil, false
	}
	sender = string(dgram[2 : 2+n])
	unicast = dgram[2+n]&1 != 0
	frame = dgram[2+n+1:]
	return sender, unicast, frame, true
}

// ID implements Conn.
func (c *udpConn) ID() string { return c.id }

// Recv implements Conn.
func (c *udpConn) Recv() <-chan Packet { return c.inbox }

// Multicast implements Conn.
func (c *udpConn) Multicast(frame []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	dgram := encodeDatagram(c.id, false, frame)

	c.t.mu.Lock()
	addrs := make([]*net.UDPAddr, 0, len(c.t.peers))
	for id, a := range c.t.peers {
		if id != c.id {
			addrs = append(addrs, a)
		}
	}
	c.t.mu.Unlock()

	var firstErr error
	for _, a := range addrs {
		if _, err := c.sock.WriteToUDP(dgram, a); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Unicast implements Conn.
func (c *udpConn) Unicast(to string, frame []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()

	c.t.mu.Lock()
	addr, ok := c.t.peers[to]
	c.t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	_, err := c.sock.WriteToUDP(encodeDatagram(c.id, true, frame), addr)
	return err
}

// Close implements Conn.
func (c *udpConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	c.t.RemovePeer(c.id)
	err := c.sock.Close()
	<-c.done // wait for readLoop to finish before closing inbox
	close(c.inbox)
	return err
}

func (c *udpConn) readLoop() {
	defer close(c.done)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := c.sock.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		sender, unicast, frame, ok := decodeDatagram(buf[:n])
		if !ok || sender == c.id {
			continue
		}
		p := Packet{
			From:    sender,
			Data:    append([]byte(nil), frame...),
			Unicast: unicast,
			At:      c.clk.Now(),
		}
		select {
		case c.inbox <- p:
		default: // receiver too slow: drop, as UDP would
		}
	}
}
