package transport

import (
	"errors"
	"testing"
	"time"

	"adaptiveqos/internal/clock"
)

func TestUDPTransportMulticastAndUnicast(t *testing.T) {
	tr := NewUDPTransport()
	a, err := tr.Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tr.Listen("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := tr.Listen("c", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if got := len(tr.Peers()); got != 3 {
		t.Fatalf("peers = %d, want 3", got)
	}

	if err := a.Multicast([]byte("to-all")); err != nil {
		t.Fatal(err)
	}
	for _, conn := range []Conn{b, c} {
		p := collect(t, conn.Recv(), 1, 2*time.Second)[0]
		if p.From != "a" || string(p.Data) != "to-all" || p.Unicast {
			t.Errorf("%s: %+v", conn.ID(), p)
		}
	}

	if err := b.Unicast("c", []byte("direct")); err != nil {
		t.Fatal(err)
	}
	p := collect(t, c.Recv(), 1, 2*time.Second)[0]
	if p.From != "b" || string(p.Data) != "direct" || !p.Unicast {
		t.Errorf("unicast: %+v", p)
	}

	if err := a.Unicast("ghost", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown peer: %v", err)
	}
}

func TestUDPTransportClose(t *testing.T) {
	tr := NewUDPTransport()
	a, err := tr.Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Multicast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel should be closed after Close")
	}
	// a is gone from the peer set.
	if err := b.Unicast("a", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unicast to closed peer: %v", err)
	}
	if got := len(tr.Peers()); got != 1 {
		t.Errorf("peers after close = %d, want 1", got)
	}
}

func TestUDPTransportClockSeam(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(100, 0))
	tr := NewUDPTransport()
	tr.Clock = clk
	a, err := tr.Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tr.Listen("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	clk.Advance(42 * time.Second)
	if err := a.Multicast([]byte("stamp-me")); err != nil {
		t.Fatal(err)
	}
	p := collect(t, b.Recv(), 1, 2*time.Second)[0]
	if want := time.Unix(142, 0); !p.At.Equal(want) {
		t.Errorf("packet At = %v, want virtual now %v", p.At, want)
	}
}

func TestUDPDatagramCodec(t *testing.T) {
	dg := encodeDatagram("sender-1", true, []byte("payload"))
	sender, unicast, frame, ok := decodeDatagram(dg)
	if !ok || sender != "sender-1" || !unicast || string(frame) != "payload" {
		t.Errorf("round trip: %q %v %q %v", sender, unicast, frame, ok)
	}
	if _, _, _, ok := decodeDatagram(nil); ok {
		t.Error("nil datagram should not decode")
	}
	if _, _, _, ok := decodeDatagram([]byte{0, 10, 'x'}); ok {
		t.Error("short datagram should not decode")
	}
	// Empty sender and empty frame are legal.
	sender, unicast, frame, ok = decodeDatagram(encodeDatagram("", false, nil))
	if !ok || sender != "" || unicast || len(frame) != 0 {
		t.Errorf("empty round trip: %q %v %q %v", sender, unicast, frame, ok)
	}
}
