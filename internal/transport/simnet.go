package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adaptiveqos/internal/clock"
)

// Link describes the characteristics of a directed link in the
// simulated network.  The zero value is an ideal link: infinite
// bandwidth, zero delay, no loss.
type Link struct {
	// BandwidthBps is the link bandwidth in bits/s; 0 means unlimited.
	BandwidthBps float64
	// Delay is the fixed propagation delay.
	Delay time.Duration
	// Jitter adds a uniformly distributed random delay in [0, Jitter].
	Jitter time.Duration
	// Loss is the independent per-frame loss probability in [0, 1].
	Loss float64
	// Duplicate is the probability a delivered frame arrives twice.
	Duplicate float64
	// Down disconnects the link entirely (partition injection).
	Down bool
}

// SimNet is a simulated broadcast network.  Nodes attach with an ID;
// multicast reaches every other attached node subject to the pairwise
// link characteristics.  Deliveries are scheduled on wall-clock timers
// scaled by TimeScale, so experiments can compress simulated seconds
// into real milliseconds while preserving ordering behaviour.
//
// Randomness (loss, jitter, duplication) derives from a seeded
// generator, making experiment runs reproducible.
type SimNet struct {
	mu         sync.Mutex
	rng        *rand.Rand
	clk        clock.Clock
	nodes      map[string]*simConn
	links      map[linkKey]Link
	linkBusy   map[linkKey]time.Time // real-time instants links free up
	def        Link
	timeScale  float64
	mtu        int
	inboxDepth int
	closed     bool
	wg         sync.WaitGroup
}

type linkKey struct{ from, to string }

// SimNetConfig configures a simulated network.
type SimNetConfig struct {
	// Seed initializes the network's random source; 0 means 1.
	Seed int64
	// DefaultLink applies to node pairs with no explicit link.
	DefaultLink Link
	// TimeScale divides all simulated delays; 0 means 1 (real time).
	// A scale of 1000 turns simulated seconds into real milliseconds.
	TimeScale float64
	// MTU bounds frame size; 0 means 64 KiB.
	MTU int
	// InboxDepth is each node's receive buffer; 0 means 1024.
	InboxDepth int
	// Clock schedules deliveries and stamps arrivals (nil = wall
	// clock).  For fully deterministic virtual-time simulation prefer
	// DESNet, which owns its clock and delivers on the event heap.
	Clock clock.Clock
}

// NewSimNet creates an empty simulated network.
func NewSimNet(cfg SimNetConfig) *SimNet {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	ts := cfg.TimeScale
	if ts <= 0 {
		ts = 1
	}
	mtu := cfg.MTU
	if mtu <= 0 {
		mtu = 64 << 10
	}
	depth := cfg.InboxDepth
	if depth <= 0 {
		depth = 1024
	}
	return &SimNet{
		rng:        rand.New(rand.NewSource(seed)),
		clk:        clock.Or(cfg.Clock),
		nodes:      make(map[string]*simConn),
		links:      make(map[linkKey]Link),
		linkBusy:   make(map[linkKey]time.Time),
		def:        cfg.DefaultLink,
		timeScale:  ts,
		mtu:        mtu,
		inboxDepth: depth,
	}
}

// Attach joins a node to the network.
func (n *SimNet) Attach(id string) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	c := &simConn{
		net:   n,
		id:    id,
		inbox: make(chan Packet, n.inboxDepth),
	}
	n.nodes[id] = c
	return c, nil
}

// SetLink installs directed link characteristics between two nodes.
func (n *SimNet) SetLink(from, to string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = l
}

// SetLinkBoth installs the same characteristics in both directions.
func (n *SimNet) SetLinkBoth(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// SetDefaultLink replaces the default link characteristics.
func (n *SimNet) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = l
}

// Partition takes the directed link between two nodes down or up.
func (n *SimNet) Partition(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range []linkKey{{a, b}, {b, a}} {
		l := n.linkLocked(k.from, k.to)
		l.Down = down
		n.links[k] = l
	}
}

// NodeIDs returns the attached node IDs.
func (n *SimNet) NodeIDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	return ids
}

// Close detaches every node and waits for in-flight deliveries.
func (n *SimNet) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := make([]*simConn, 0, len(n.nodes))
	for _, c := range n.nodes {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
}

func (n *SimNet) linkLocked(from, to string) Link {
	if l, ok := n.links[linkKey{from, to}]; ok {
		return l
	}
	return n.def
}

// Stats returns delivery statistics for a node ID (zero Stats if the
// node is unknown).
func (n *SimNet) Stats(id string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.nodes[id]; ok {
		return c.statsLocked()
	}
	return Stats{}
}

// send schedules delivery of frame from src to dst, applying the link
// model.  Caller holds no locks.
func (n *SimNet) send(src *simConn, dstID string, frame []byte, unicast bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	dst, ok := n.nodes[dstID]
	if !ok {
		n.mu.Unlock()
		return
	}
	l := n.linkLocked(src.id, dstID)
	key := linkKey{src.id, dstID}
	now := n.clk.Now()
	plan := planLink(l, len(frame), n.rng, n.linkBusy[key], now, n.timeScale)
	if l.BandwidthBps > 0 {
		n.linkBusy[key] = plan.busy
	}
	if plan.drop {
		dst.mu.Lock()
		dst.stats.Dropped++
		dst.mu.Unlock()
		n.mu.Unlock()
		return
	}
	n.wg.Add(plan.copies)
	n.mu.Unlock()

	data := append([]byte(nil), frame...)
	deliver := func() {
		defer n.wg.Done()
		dst.deliver(Packet{From: src.id, Data: data, Unicast: unicast, At: n.clk.Now()})
	}
	for i := 0; i < plan.copies; i++ {
		if plan.delay <= 0 {
			// Zero-delay links deliver synchronously, preserving
			// per-sender FIFO order like a real loopback; inboxes are
			// non-blocking so this cannot deadlock.
			deliver()
		} else {
			n.clk.AfterFunc(plan.delay, deliver)
		}
	}
}

// simConn is a node's attachment to a SimNet.
type simConn struct {
	net   *SimNet
	id    string
	inbox chan Packet

	mu     sync.Mutex
	closed bool
	stats  Stats
}

// ID implements Conn.
func (c *simConn) ID() string { return c.id }

// Recv implements Conn.
func (c *simConn) Recv() <-chan Packet { return c.inbox }

// Multicast implements Conn.
func (c *simConn) Multicast(frame []byte) error {
	if err := c.checkSend(frame); err != nil {
		return err
	}
	c.net.mu.Lock()
	dsts := make([]string, 0, len(c.net.nodes))
	for id := range c.net.nodes {
		if id != c.id {
			dsts = append(dsts, id)
		}
	}
	c.net.mu.Unlock()
	for _, d := range dsts {
		c.net.send(c, d, frame, false)
	}
	return nil
}

// Unicast implements Conn.
func (c *simConn) Unicast(to string, frame []byte) error {
	if err := c.checkSend(frame); err != nil {
		return err
	}
	c.net.mu.Lock()
	_, ok := c.net.nodes[to]
	c.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	c.net.send(c, to, frame, true)
	return nil
}

func (c *simConn) checkSend(frame []byte) error {
	if len(frame) > c.net.mtu {
		return fmt.Errorf("%w: %d > %d", ErrFrameSize, len(frame), c.net.mtu)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.stats.Sent++
	return nil
}

// deliver places a packet in the inbox, dropping on overflow.
func (c *simConn) deliver(p Packet) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	select {
	case c.inbox <- p:
		c.stats.Delivered++
		c.stats.Bytes += uint64(len(p.Data))
	default:
		c.stats.Overflow++
	}
	c.mu.Unlock()
}

// Close implements Conn.
func (c *simConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	c.net.mu.Lock()
	delete(c.net.nodes, c.id)
	// Purge the detached node's serialization state: linkBusy entries
	// are keyed per directed pair and would otherwise accumulate
	// forever under attach/detach churn.
	for k := range c.net.linkBusy {
		if k.from == c.id || k.to == c.id {
			delete(c.net.linkBusy, k)
		}
	}
	c.net.mu.Unlock()
	close(c.inbox)
	return nil
}

func (c *simConn) statsLocked() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
