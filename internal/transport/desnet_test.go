package transport

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

func TestDESNetHandlerDelivery(t *testing.T) {
	n := NewDESNet(DESNetConfig{DefaultLink: Link{Delay: 5 * time.Millisecond}})
	var got []Packet
	a, err := n.AttachHandler("a", func(p Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unicast("a", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("delivery before the clock advanced")
	}
	n.Clock().Advance(4 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("delivery before the link delay elapsed")
	}
	n.Clock().Advance(2 * time.Millisecond)
	if len(got) != 1 || string(got[0].Data) != "hi" || got[0].From != "b" || !got[0].Unicast {
		t.Fatalf("got %+v", got)
	}
	wantAt := n.Clock().Now().Add(-time.Millisecond)
	if !got[0].At.Equal(wantAt) {
		t.Fatalf("arrival stamped %v, want %v", got[0].At, wantAt)
	}
	if s := n.Stats("a"); s.Delivered != 1 || s.Dropped != 0 {
		t.Fatalf("stats %+v", s)
	}
	if s := n.Stats("b"); s.Sent != 1 {
		t.Fatalf("sender stats %+v", s)
	}
	_ = a
}

func TestDESNetMulticastOrderAndSharing(t *testing.T) {
	n := NewDESNet(DESNetConfig{})
	var order []string
	var datas [][]byte
	for _, id := range []string{"w3", "w1", "w2"} {
		id := id
		if _, err := n.AttachHandler(id, func(p Packet) {
			order = append(order, id)
			datas = append(datas, p.Data)
		}); err != nil {
			t.Fatal(err)
		}
	}
	src, err := n.AttachHandler("src", func(Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Clock().Advance(time.Millisecond)
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("zero-delay multicast arrival order = %v, want sorted IDs", order)
	}
	// One shared copy for all recipients.
	if &datas[0][0] != &datas[1][0] || &datas[1][0] != &datas[2][0] {
		t.Error("multicast should share one frame copy across recipients")
	}
}

func TestDESNetLossDupPartition(t *testing.T) {
	n := NewDESNet(DESNetConfig{Seed: 7})
	delivered := 0
	if _, err := n.AttachHandler("rx", func(Packet) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	tx, err := n.AttachHandler("tx", func(Packet) {})
	if err != nil {
		t.Fatal(err)
	}

	n.SetLink("tx", "rx", Link{Loss: 1})
	if err := tx.Unicast("rx", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	n.Clock().Advance(time.Millisecond)
	if delivered != 0 {
		t.Fatal("lossy link delivered")
	}
	if s := n.Stats("rx"); s.Dropped != 1 {
		t.Fatalf("stats %+v", s)
	}

	n.SetLink("tx", "rx", Link{Duplicate: 1})
	if err := tx.Unicast("rx", []byte("twice")); err != nil {
		t.Fatal(err)
	}
	n.Clock().Advance(time.Millisecond)
	if delivered != 2 {
		t.Fatalf("duplicating link delivered %d, want 2", delivered)
	}

	n.SetLink("tx", "rx", Link{})
	n.Partition("tx", "rx", true)
	if err := tx.Unicast("rx", []byte("cut")); err != nil {
		t.Fatal(err)
	}
	n.Clock().Advance(time.Millisecond)
	if delivered != 2 {
		t.Fatal("partitioned link delivered")
	}
	n.Partition("tx", "rx", false)
	if err := tx.Unicast("rx", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	n.Clock().Advance(time.Millisecond)
	if delivered != 3 {
		t.Fatal("healed link did not deliver")
	}
}

func TestDESNetBandwidthSerialization(t *testing.T) {
	n := NewDESNet(DESNetConfig{})
	// 8000 bit/s: a 100-byte frame takes 100ms to serialize.
	n.SetDefaultLink(Link{BandwidthBps: 8000})
	var arrivals []time.Duration
	start := n.Clock().Now()
	if _, err := n.AttachHandler("rx", func(p Packet) {
		arrivals = append(arrivals, p.At.Sub(start))
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := n.AttachHandler("tx", func(Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 100)
	// Back-to-back sends queue behind each other on the link.
	for i := 0; i < 3; i++ {
		if err := tx.Unicast("rx", frame); err != nil {
			t.Fatal(err)
		}
	}
	n.Clock().Advance(time.Second)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals %v, want %v", arrivals, want)
		}
	}
}

func TestDESNetChannelModeCompat(t *testing.T) {
	n := NewDESNet(DESNetConfig{DefaultLink: Link{Delay: time.Millisecond}})
	rx, err := n.Attach("rx")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := n.Attach("tx")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Multicast([]byte("ch")); err != nil {
		t.Fatal(err)
	}
	n.Clock().Advance(2 * time.Millisecond)
	select {
	case p := <-rx.Recv():
		if string(p.Data) != "ch" || p.From != "tx" {
			t.Fatalf("got %+v", p)
		}
	default:
		t.Fatal("channel-mode inbox empty after advance")
	}
	if err := rx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-rx.Recv(); open {
		t.Fatal("inbox should close with the conn")
	}
}

// traceHash runs a small seeded scenario and hashes its trace stream.
func traceHash(seed int64) [32]byte {
	h := sha256.New()
	n := NewDESNet(DESNetConfig{Seed: seed, DefaultLink: Link{
		Delay: 2 * time.Millisecond, Jitter: 3 * time.Millisecond,
		Loss: 0.1, Duplicate: 0.05, BandwidthBps: 1e6,
	}})
	n.SetTrace(func(ev TraceEvent) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(ev.AtNS))
		h.Write(buf[:])
		fmt.Fprintf(h, "%s>%s:%d:%d:%v", ev.From, ev.To, ev.Kind, ev.Size, ev.Unicast)
	})
	conns := make([]Conn, 8)
	for i := range conns {
		id := fmt.Sprintf("n%02d", i)
		var err error
		conns[i], err = n.AttachHandler(id, func(p Packet) {})
		if err != nil {
			panic(err)
		}
	}
	for round := 0; round < 20; round++ {
		src := conns[round%len(conns)]
		_ = src.Multicast([]byte(fmt.Sprintf("round-%d-payload", round)))
		n.Clock().Advance(10 * time.Millisecond)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func TestDESNetDeterministicTrace(t *testing.T) {
	a, b := traceHash(42), traceHash(42)
	if a != b {
		t.Fatal("same seed produced different trace streams")
	}
	if c := traceHash(43); c == a {
		t.Fatal("different seeds produced identical trace streams (rng unused?)")
	}
}
