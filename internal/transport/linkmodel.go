package transport

import (
	"math/rand"
	"time"
)

// linkPlan is the outcome of applying a Link's model to one frame:
// whether it is dropped, how many copies arrive (duplication), the
// latency until delivery, and the link's updated serialization
// horizon.  SimNet and DESNet share this so a scenario run in virtual
// time and one run in scaled wall time see the same network.
type linkPlan struct {
	drop   bool
	copies int
	delay  time.Duration // propagation + jitter + serialization queueing
	busy   time.Time     // instant the link frees up (bandwidth model)
}

// planLink draws one frame's fate from the link model.  busy is the
// link's current serialization horizon and now the clock reading both
// are measured on; timeScale divides every simulated duration into the
// caller's time base (1 for a virtual clock, SimNet's TimeScale for
// compressed wall time).  The rng draws (loss, duplication, jitter)
// must come from a seeded source owned by the caller for
// reproducibility — crucially, the draw sequence is identical for
// every timeScale.
func planLink(l Link, frameLen int, rng *rand.Rand, busy, now time.Time, timeScale float64) linkPlan {
	if l.Down || (l.Loss > 0 && rng.Float64() < l.Loss) {
		return linkPlan{drop: true, busy: busy}
	}
	p := linkPlan{copies: 1, busy: busy}
	if l.Duplicate > 0 && rng.Float64() < l.Duplicate {
		p.copies = 2
	}
	simDelay := l.Delay
	if l.Jitter > 0 {
		simDelay += time.Duration(rng.Int63n(int64(l.Jitter) + 1))
	}
	p.delay = time.Duration(float64(simDelay) / timeScale)
	if l.BandwidthBps > 0 {
		ser := time.Duration(float64(frameLen*8) / l.BandwidthBps * float64(time.Second))
		scaledSer := time.Duration(float64(ser) / timeScale)
		// Serialization occupies the link: back-to-back sends queue
		// behind the instant the link frees up.
		if p.busy.Before(now) {
			p.busy = now
		}
		p.busy = p.busy.Add(scaledSer)
		p.delay += p.busy.Sub(now)
	}
	return p
}
