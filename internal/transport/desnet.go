package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"adaptiveqos/internal/clock"
)

// DESNet is the discrete-event sibling of SimNet: the same directed
// Link model (bandwidth serialization, delay, jitter, loss,
// duplication, partitions — shared via planLink), but every delivery
// is an event on a clock.Virtual heap instead of a wall-clock timer.
// No goroutine ever sleeps: a driver advances the clock and deliveries
// fire inline, so one box can push a 100k-client session through
// simulated minutes in wall-clock seconds, deterministically — the
// same seed replays byte-identical event sequences.
//
// Two attachment modes:
//
//   - Attach returns a channel-mode Conn identical in shape to
//     SimNet's (an inbox drained by the node's own goroutine).  It
//     exists for compatibility — core.Client, Coordinator and the base
//     station run unmodified on it — but crossing goroutines forfeits
//     the determinism guarantee: the consumer races the driver.
//
//   - AttachHandler registers a function invoked inline, on the
//     driving goroutine, for each delivered packet.  All client logic
//     runs inside the event callbacks, the run is single-threaded from
//     the scheduler's point of view, and determinism is total.  The
//     scenario package and cmd/qossim use this mode.
//
// Frame bytes are copied once per send and shared by every recipient
// (including duplicate deliveries, as in SimNet): receivers must treat
// Packet.Data as read-only.
type DESNet struct {
	clk *clock.Virtual

	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[string]*desNode
	order    []string // node IDs, sorted: deterministic fan-out order
	links    map[linkKey]Link
	linkBusy map[linkKey]time.Time // virtual instants links free up
	def      Link
	mtu      int
	depth    int
	closed   bool

	trace func(TraceEvent)
}

// TraceKind labels one DESNet trace event.
type TraceKind uint8

// Trace event kinds.
const (
	TraceDeliver  TraceKind = iota // packet handed to the recipient
	TraceDrop                      // lost on the link (loss or partition)
	TraceOverflow                  // recipient inbox full (channel mode)
)

func (k TraceKind) String() string {
	switch k {
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceOverflow:
		return "overflow"
	}
	return "trace(?)"
}

// TraceEvent describes one network-level event, in virtual time.  The
// determinism test hashes the stream; scenario loss curves count it.
type TraceEvent struct {
	AtNS    int64 // virtual UnixNano
	From    string
	To      string
	Kind    TraceKind
	Size    int
	Unicast bool
}

// DESNetConfig configures a discrete-event network.
type DESNetConfig struct {
	// Seed initializes the network's random source; 0 means 1.
	Seed int64
	// DefaultLink applies to node pairs with no explicit link.
	DefaultLink Link
	// MTU bounds frame size; 0 means 64 KiB.
	MTU int
	// InboxDepth is each channel-mode node's receive buffer; 0 means
	// 1024.  Handler-mode nodes have no buffer.
	InboxDepth int
	// Clock is the virtual clock deliveries are scheduled on; nil
	// creates one at clock.DefaultEpoch.  Share one clock between the
	// network and the rest of the simulated system (SLO pollers,
	// repair tickers) so everything moves together.
	Clock *clock.Virtual
	// Trace, when non-nil, observes every delivery/drop/overflow.  It
	// runs on the driving goroutine (or the sender's, for drops
	// decided at send time) and must not call back into the network.
	Trace func(TraceEvent)
}

// NewDESNet creates an empty discrete-event network.
func NewDESNet(cfg DESNetConfig) *DESNet {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	mtu := cfg.MTU
	if mtu <= 0 {
		mtu = 64 << 10
	}
	depth := cfg.InboxDepth
	if depth <= 0 {
		depth = 1024
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewVirtual(time.Time{})
	}
	return &DESNet{
		clk:      clk,
		rng:      rand.New(rand.NewSource(seed)),
		nodes:    make(map[string]*desNode),
		links:    make(map[linkKey]Link),
		linkBusy: make(map[linkKey]time.Time),
		def:      cfg.DefaultLink,
		mtu:      mtu,
		depth:    depth,
	}
}

// Clock returns the virtual clock deliveries are scheduled on; drive
// it (Advance/AdvanceTo/Step) to make the network move.
func (n *DESNet) Clock() *clock.Virtual { return n.clk }

// SetTrace installs the trace hook (see DESNetConfig.Trace).
func (n *DESNet) SetTrace(f func(TraceEvent)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trace = f
}

// Attach joins a channel-mode node (see the type comment for the
// determinism caveat).
func (n *DESNet) Attach(id string) (Conn, error) {
	return n.attach(id, nil)
}

// AttachHandler joins a handler-mode node: h runs inline on the
// driving goroutine for every delivered packet, and may itself send.
func (n *DESNet) AttachHandler(id string, h func(Packet)) (Conn, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", id)
	}
	return n.attach(id, h)
}

func (n *DESNet) attach(id string, h func(Packet)) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	c := &desNode{net: n, id: id, handler: h}
	if h == nil {
		c.inbox = make(chan Packet, n.depth)
	}
	n.nodes[id] = c
	i := sort.SearchStrings(n.order, id)
	n.order = append(n.order, "")
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = id
	return c, nil
}

// SetLink installs directed link characteristics between two nodes.
func (n *DESNet) SetLink(from, to string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = l
}

// SetLinkBoth installs the same characteristics in both directions.
func (n *DESNet) SetLinkBoth(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// SetDefaultLink replaces the default link characteristics.
func (n *DESNet) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = l
}

// Partition takes the directed links between two nodes down or up.
func (n *DESNet) Partition(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range []linkKey{{a, b}, {b, a}} {
		l := n.linkLocked(k.from, k.to)
		l.Down = down
		n.links[k] = l
	}
}

func (n *DESNet) linkLocked(from, to string) Link {
	if l, ok := n.links[linkKey{from, to}]; ok {
		return l
	}
	return n.def
}

// NodeIDs returns the attached node IDs.
func (n *DESNet) NodeIDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	return ids
}

// Stats returns delivery statistics for a node ID (zero Stats if the
// node is unknown).
func (n *DESNet) Stats(id string) Stats {
	n.mu.Lock()
	c, ok := n.nodes[id]
	n.mu.Unlock()
	if !ok {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close detaches every node.  Pending deliveries still on the heap
// become no-ops.
func (n *DESNet) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := make([]*desNode, 0, len(n.nodes))
	for _, c := range n.nodes {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// desDelivery is one scheduled packet arrival — a clock.Event
// implemented directly so each delivery costs a single allocation.
type desDelivery struct {
	net     *DESNet
	dst     *desNode
	from    string
	data    []byte
	unicast bool
}

// Fire implements clock.Event.
func (d *desDelivery) Fire(now time.Time) {
	d.dst.deliver(Packet{From: d.from, Data: d.data, Unicast: d.unicast, At: now})
}

// sendAll applies the link model and schedules deliveries for one
// frame to each destination.  One shared copy of frame serves every
// recipient.  Caller holds no locks.
func (n *DESNet) sendAll(src *desNode, dsts []string, frame []byte, unicast bool) {
	data := append([]byte(nil), frame...)
	type drop struct {
		atNS int64
		to   string
	}
	var drops []drop
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	trace := n.trace
	now := n.clk.Now()
	for _, dstID := range dsts {
		dst, ok := n.nodes[dstID]
		if !ok {
			continue
		}
		l := n.linkLocked(src.id, dstID)
		key := linkKey{src.id, dstID}
		plan := planLink(l, len(data), n.rng, n.linkBusy[key], now, 1)
		if l.BandwidthBps > 0 {
			n.linkBusy[key] = plan.busy
		}
		if plan.drop {
			dst.mu.Lock()
			dst.stats.Dropped++
			dst.mu.Unlock()
			if trace != nil {
				drops = append(drops, drop{atNS: now.UnixNano(), to: dstID})
			}
			continue
		}
		for i := 0; i < plan.copies; i++ {
			// Every delivery goes through the heap — zero-delay links
			// included — so arrival order is always (instant, schedule
			// order), never a recursion into the recipient mid-send.
			n.clk.Schedule(plan.delay, &desDelivery{
				net: n, dst: dst, from: src.id, data: data, unicast: unicast,
			})
		}
	}
	n.mu.Unlock()
	for _, d := range drops {
		trace(TraceEvent{AtNS: d.atNS, From: src.id, To: d.to, Kind: TraceDrop,
			Size: len(data), Unicast: unicast})
	}
}

// desNode is a node's attachment to a DESNet.
type desNode struct {
	net     *DESNet
	id      string
	handler func(Packet) // nil = channel mode
	inbox   chan Packet  // nil = handler mode

	mu     sync.Mutex
	closed bool
	stats  Stats
}

// ID implements Conn.
func (c *desNode) ID() string { return c.id }

// Recv implements Conn.  Handler-mode nodes return nil: their packets
// go to the handler, and ranging over a nil channel blocks forever —
// do not start a receive loop on a handler-mode Conn.
func (c *desNode) Recv() <-chan Packet { return c.inbox }

// Multicast implements Conn.
func (c *desNode) Multicast(frame []byte) error {
	if err := c.checkSend(frame); err != nil {
		return err
	}
	c.net.mu.Lock()
	// The maintained sorted order keeps fan-out (and so rng draw
	// order) deterministic regardless of map iteration.
	dsts := make([]string, 0, len(c.net.order))
	for _, id := range c.net.order {
		if id != c.id {
			dsts = append(dsts, id)
		}
	}
	c.net.mu.Unlock()
	c.net.sendAll(c, dsts, frame, false)
	return nil
}

// Unicast implements Conn.
func (c *desNode) Unicast(to string, frame []byte) error {
	if err := c.checkSend(frame); err != nil {
		return err
	}
	c.net.mu.Lock()
	_, ok := c.net.nodes[to]
	c.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	c.net.sendAll(c, []string{to}, frame, true)
	return nil
}

func (c *desNode) checkSend(frame []byte) error {
	if len(frame) > c.net.mtu {
		return fmt.Errorf("%w: %d > %d", ErrFrameSize, len(frame), c.net.mtu)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.stats.Sent++
	return nil
}

// deliver hands a packet to the node (driver goroutine).
func (c *desNode) deliver(p Packet) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	h := c.handler
	kind := TraceDeliver
	if h != nil {
		c.stats.Delivered++
		c.stats.Bytes += uint64(len(p.Data))
		c.mu.Unlock()
	} else {
		select {
		case c.inbox <- p:
			c.stats.Delivered++
			c.stats.Bytes += uint64(len(p.Data))
		default:
			c.stats.Overflow++
			kind = TraceOverflow
		}
		c.mu.Unlock()
	}
	c.net.mu.Lock()
	trace := c.net.trace
	c.net.mu.Unlock()
	if trace != nil {
		trace(TraceEvent{AtNS: p.At.UnixNano(), From: p.From, To: c.id,
			Kind: kind, Size: len(p.Data), Unicast: p.Unicast})
	}
	if h != nil && kind == TraceDeliver {
		h(p)
	}
}

// Close implements Conn.
func (c *desNode) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	inbox := c.inbox
	c.mu.Unlock()

	c.net.mu.Lock()
	delete(c.net.nodes, c.id)
	if i := sort.SearchStrings(c.net.order, c.id); i < len(c.net.order) && c.net.order[i] == c.id {
		c.net.order = append(c.net.order[:i], c.net.order[i+1:]...)
	}
	for k := range c.net.linkBusy {
		if k.from == c.id || k.to == c.id {
			delete(c.net.linkBusy, k)
		}
	}
	c.net.mu.Unlock()
	if inbox != nil {
		close(inbox)
	}
	return nil
}
