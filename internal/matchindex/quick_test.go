package matchindex_test

// Property test for the tentpole contract (DESIGN.md §12): for any
// selector the language can express — conjunctions, disjunctions,
// negation, like-globs, in-lists, exists, mixed-kind comparisons —
// index-first matching through the sharded registry must return
// exactly the set the brute-force evaluator returns over the same
// profiles.  The generator deliberately covers the fallback taxonomy
// (residue conjuncts, residue-only branches, match-all, constant
// false) and the numeric edge cases (NaN and ±Inf attribute values).

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/registry"
	"adaptiveqos/internal/selector"
)

var quickAttrs = []string{"media", "region", "size", "cap.display", "state.sir", "client"}

func quickValue(r *rand.Rand) selector.Value {
	switch r.Intn(6) {
	case 0:
		return selector.S([]string{"video", "audio", "image", "text", ""}[r.Intn(5)])
	case 1:
		return selector.N(float64(r.Intn(16) - 8))
	case 2:
		return selector.N(math.Trunc(r.Float64()*1e5) / 1e2)
	case 3:
		return selector.B(r.Intn(2) == 0)
	case 4:
		return selector.N(math.Inf(1 - 2*r.Intn(2)))
	default:
		return selector.N(math.NaN())
	}
}

// quickExpr builds a random expression of bounded depth over the shared
// attribute vocabulary, covering every AST node the planner classifies.
func quickExpr(r *rand.Rand, depth int) selector.Expr {
	attr := func() string { return quickAttrs[r.Intn(len(quickAttrs))] }
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return &selector.BoolLit{Val: r.Intn(2) == 0}
		case 1, 2:
			return &selector.Cmp{Attr: attr(), Op: selector.Op(r.Intn(6)), Lit: quickValue(r)}
		case 3:
			n := r.Intn(4)
			list := make([]selector.Value, n)
			for i := range list {
				list[i] = quickValue(r)
			}
			return &selector.In{Attr: attr(), List: list}
		case 4:
			return &selector.Exists{Attr: attr()}
		default:
			return &selector.Like{Attr: attr(), Pattern: []string{"v*", "*deo", "w?", "[av]*"}[r.Intn(4)]}
		}
	}
	switch r.Intn(4) {
	case 0:
		return &selector.And{X: quickExpr(r, depth-1), Y: quickExpr(r, depth-1)}
	case 1:
		return &selector.Or{X: quickExpr(r, depth-1), Y: quickExpr(r, depth-1)}
	case 2:
		return &selector.Not{X: quickExpr(r, depth-1)}
	default:
		return quickExpr(r, depth-1)
	}
}

// quickPopulation fills both registries with the same randomized
// profiles and returns the flattened views for brute evaluation.
func quickPopulation(r *rand.Rand, regs ...*registry.Registry) map[string]selector.Attributes {
	flats := make(map[string]selector.Attributes)
	n := 16 + r.Intn(48)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		p := profile.New(id)
		if r.Intn(4) != 0 {
			p.Interests["media"] = quickValue(r)
		}
		if r.Intn(4) != 0 {
			p.Interests["region"] = quickValue(r)
		}
		if r.Intn(2) == 0 {
			p.Interests["size"] = selector.N(float64(r.Intn(100) * 1000))
		}
		if r.Intn(2) == 0 {
			p.Capabilities["display"] = quickValue(r)
		}
		if r.Intn(2) == 0 {
			p.State["sir"] = quickValue(r)
		}
		for _, reg := range regs {
			reg.Put(p)
		}
		flats[id] = p.Flatten()
	}
	return flats
}

func sortedMatchIDs(reg *registry.Registry, sel *selector.Selector) []string {
	ids := reg.MatchIDs(sel)
	sort.Strings(ids)
	return ids
}

func bruteMatch(flats map[string]selector.Attributes, sel *selector.Selector) []string {
	out := make([]string, 0, len(flats))
	for id, flat := range flats {
		if sel.Matches(flat) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func idsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickIndexEquivalence is the randomized equivalence harness:
// indexed and brute registries agree with each other and with direct
// evaluation over the flattened views, across random selectors,
// profiles and interleaved state mutations.
func TestQuickIndexEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		indexed := registry.NewWithIndex(4, true)
		brute := registry.NewWithIndex(4, false)
		flats := quickPopulation(r, indexed, brute)

		for round := 0; round < 6; round++ {
			sel := selector.FromExpr(quickExpr(r, 1+r.Intn(3)))
			want := bruteMatch(flats, sel)
			if got := sortedMatchIDs(indexed, sel); !idsEqual(got, want) {
				t.Logf("seed %d round %d: indexed mismatch for %q:\n got %v\nwant %v",
					seed, round, sel.Source(), got, want)
				return false
			}
			if got := sortedMatchIDs(brute, sel); !idsEqual(got, want) {
				t.Logf("seed %d round %d: brute mismatch for %q:\n got %v\nwant %v",
					seed, round, sel.Source(), got, want)
				return false
			}

			// Mutate a few profiles between rounds so the equivalence
			// also covers dirty-set invalidation and reindexing.
			for m := 0; m < 3; m++ {
				id := fmt.Sprintf("w%d", r.Intn(len(flats)))
				v := quickValue(r)
				if _, err := indexed.UpdateState(id, "sir", v); err != nil {
					continue
				}
				if _, err := brute.UpdateState(id, "sir", v); err != nil {
					continue
				}
				p, _ := indexed.Get(id)
				flats[id] = p.Flatten()
			}
		}

		// MatchAll must agree with MatchIDs on the surviving state.
		sel := selector.FromExpr(quickExpr(r, 2))
		want := bruteMatch(flats, sel)
		got := make([]string, 0, len(want))
		for _, p := range indexed.MatchAll(sel) {
			got = append(got, p.ID)
		}
		sort.Strings(got)
		if !idsEqual(got, want) {
			t.Logf("seed %d: MatchAll mismatch for %q:\n got %v\nwant %v", seed, sel.Source(), got, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
