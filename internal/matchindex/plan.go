package matchindex

import (
	"container/list"
	"math"
	"sync"

	"adaptiveqos/internal/selector"
)

// predKind classifies how a conjunct is answered by the inverted index.
type predKind uint8

const (
	// predEq is `attr == lit`: one equality-bucket lookup.
	predEq predKind = iota
	// predNe is `attr != lit`: the attr's same-kind presence set minus
	// the lit's equality bucket (Eval's "present with a different value
	// of the same kind" semantics).
	predNe
	// predRange is `attr </<=/>/>= lit` with a numeric literal: a
	// boundary search over the attr's sorted breakpoint list.
	predRange
	// predIn is `attr in [lits]`: the union of the equality buckets.
	predIn
	// predExists is `exists(attr)`: the attr's presence set.
	predExists
)

// pred is one indexable conjunct of a branch.  src retains the original
// expression so candidates drawn from other predicates can be verified
// with the authoritative evaluator instead of a posting enumeration.
type pred struct {
	kind predKind
	attr string
	op   selector.Op
	lit  selector.Value
	list []selector.Value // predIn, deduplicated
	src  selector.Expr
}

// branch is one disjunct of a plan: a conjunction of indexable
// predicates plus a residue of conjuncts the index cannot answer
// (like/not/nested or), evaluated per candidate.
type branch struct {
	preds   []pred
	residue []selector.Expr
}

// Plan is the index-execution form of a compiled selector: a union of
// conjunctive branches.  The planner is exact-by-construction — any
// shape it cannot decompose degrades to FullScan (the brute-force
// evaluator over every client) rather than approximating.
type Plan struct {
	// MatchAll: some branch is constantly true; every client matches.
	MatchAll bool
	// FullScan: some branch has no indexable predicate at all (pure
	// residue, e.g. a top-level not or like).  The whole selector falls
	// back to one brute-force evaluation per client: the scan must
	// visit everyone anyway, and evaluating the original expression
	// once beats branch-by-branch evaluation.
	FullScan bool
	// Branches are the indexable disjuncts (constant-false branches are
	// dropped during planning).
	Branches []branch
}

// Indexable reports whether the plan answers through the index (as
// opposed to matching everyone or scanning everyone).
func (p *Plan) Indexable() bool { return !p.MatchAll && !p.FullScan && len(p.Branches) > 0 }

// PlanExpr compiles an expression tree into an index plan.
func PlanExpr(e selector.Expr) *Plan {
	p := &Plan{}
	for _, be := range flattenOr(e, nil) {
		br, always, never := planBranch(be)
		switch {
		case never:
			// Constant-false disjunct: contributes nothing.
		case always:
			p.MatchAll = true
		case len(br.preds) == 0:
			// Residue-only branch: nothing for the index to pivot on.
			p.FullScan = true
		default:
			p.Branches = append(p.Branches, br)
		}
	}
	return p
}

// flattenOr appends the disjuncts of e's top-level or-tree to dst.
func flattenOr(e selector.Expr, dst []selector.Expr) []selector.Expr {
	if or, ok := e.(*selector.Or); ok {
		return flattenOr(or.Y, flattenOr(or.X, dst))
	}
	return append(dst, e)
}

// flattenAnd appends the conjuncts of e's top-level and-tree to dst.
func flattenAnd(e selector.Expr, dst []selector.Expr) []selector.Expr {
	if and, ok := e.(*selector.And); ok {
		return flattenAnd(and.Y, flattenAnd(and.X, dst))
	}
	return append(dst, e)
}

// planBranch decomposes one disjunct into indexable predicates plus
// residue.  always/never report constant outcomes (a `true` conjunct is
// dropped; a `false` or never-satisfiable conjunct kills the branch).
func planBranch(e selector.Expr) (br branch, always, never bool) {
	for _, c := range flattenAnd(e, nil) {
		switch x := c.(type) {
		case *selector.BoolLit:
			if !x.Val {
				return branch{}, false, true
			}
			// `true` conjunct: no constraint.
		case *selector.Cmp:
			switch {
			case nanValue(x.Lit):
				// Equal(NaN, NaN) is true but NaN never equals itself
				// as a bucket key; keep the evaluator authoritative.
				br.residue = append(br.residue, c)
			case x.Op == selector.OpEq:
				br.preds = append(br.preds, pred{kind: predEq, attr: x.Attr, lit: x.Lit, src: c})
			case x.Op == selector.OpNe:
				br.preds = append(br.preds, pred{kind: predNe, attr: x.Attr, lit: x.Lit, src: c})
			case x.Lit.Kind() == selector.KindNumber:
				br.preds = append(br.preds, pred{kind: predRange, attr: x.Attr, op: x.Op, lit: x.Lit, src: c})
			case x.Lit.Kind() == selector.KindString:
				// Ordered string comparison: rare enough that a sorted
				// string breakpoint list is not worth its upkeep.
				br.residue = append(br.residue, c)
			default:
				// Ordering a bool (or invalid) literal: Compare always
				// errors, so the conjunct is constantly false.
				return branch{}, false, true
			}
		case *selector.In:
			list, hasNaN := dedupValues(x.List)
			if hasNaN {
				br.residue = append(br.residue, c)
				break
			}
			if len(list) == 0 {
				return branch{}, false, true
			}
			br.preds = append(br.preds, pred{kind: predIn, attr: x.Attr, list: list, src: c})
		case *selector.Exists:
			br.preds = append(br.preds, pred{kind: predExists, attr: x.Attr, src: c})
		default:
			// *Like, *Not, nested *Or, future node types: the index has
			// no posting shape for them; verify per candidate.
			br.residue = append(br.residue, c)
		}
	}
	if len(br.preds) == 0 && len(br.residue) == 0 {
		return branch{}, true, false
	}
	return br, false, false
}

// nanValue reports whether v is a NaN numeric literal.
func nanValue(v selector.Value) bool {
	return v.Kind() == selector.KindNumber && math.IsNaN(v.Num())
}

// dedupValues drops duplicate list members (a client holds one value
// per attribute, so duplicates would double-count in a counting match)
// and reports whether any member is NaN.
func dedupValues(list []selector.Value) (out []selector.Value, hasNaN bool) {
	out = make([]selector.Value, 0, len(list))
	for _, v := range list {
		if nanValue(v) {
			return nil, true
		}
		dup := false
		for _, u := range out {
			if u.Equal(v) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out, false
}

// planCache memoizes selector → plan, LRU-evicted.  Messages repeat a
// small working set of distinct selectors (the same property the
// compiled-selector cache exploits), so each distinct selector is
// decomposed once per process rather than once per message.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	cap     int
}

type planEntry struct {
	src  string
	plan *Plan
}

// defaultPlanCapacity mirrors selector.DefaultCacheCapacity: generous
// for a realistic selector vocabulary, bounded against selector churn.
const defaultPlanCapacity = 4096

var plans = planCache{
	entries: make(map[string]*list.Element),
	order:   list.New(),
	cap:     defaultPlanCapacity,
}

// PlanSelector returns the (process-globally cached) index plan for a
// compiled selector.
func PlanSelector(sel *selector.Selector) *Plan {
	src := sel.Source()
	plans.mu.Lock()
	if el, ok := plans.entries[src]; ok {
		plans.order.MoveToFront(el)
		p := el.Value.(*planEntry).plan
		plans.mu.Unlock()
		return p
	}
	plans.mu.Unlock()

	// Plan outside the lock; concurrent first sightings both plan and
	// the loser's install is a no-op (plans are pure functions of src).
	p := PlanExpr(sel.Expr())

	plans.mu.Lock()
	defer plans.mu.Unlock()
	if el, ok := plans.entries[src]; ok {
		plans.order.MoveToFront(el)
		return el.Value.(*planEntry).plan
	}
	plans.entries[src] = plans.order.PushFront(&planEntry{src: src, plan: p})
	for plans.order.Len() > plans.cap {
		old := plans.order.Back()
		plans.order.Remove(old)
		delete(plans.entries, old.Value.(*planEntry).src)
	}
	return p
}
