package matchindex

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"adaptiveqos/internal/selector"
)

// tablePop is a test population: id → (flattened attributes, generation).
type tablePop map[string]struct {
	flat selector.Attributes
	gen  uint64
}

func (p tablePop) lookup(id string) (selector.Attributes, uint64, bool) {
	e, ok := p[id]
	if !ok {
		return nil, 0, false
	}
	return e.flat, e.gen, true
}

func (p tablePop) set(id string, gen uint64, flat selector.Attributes) {
	p[id] = struct {
		flat selector.Attributes
		gen  uint64
	}{flat, gen}
}

// matchIDs runs sel against the shard and returns the sorted result.
func matchIDs(t *testing.T, s *Shard, pop tablePop, src string) []string {
	t.Helper()
	sel := selector.MustCompile(src)
	plan := PlanSelector(sel)
	if !plan.Indexable() {
		t.Fatalf("plan for %q not indexable (MatchAll=%v FullScan=%v)", src, plan.MatchAll, plan.FullScan)
	}
	out := s.Match(plan, pop.lookup, nil)
	sort.Strings(out)
	return out
}

// bruteIDs evaluates sel against every profile in pop, sorted.
func bruteIDs(pop tablePop, src string) []string {
	sel := selector.MustCompile(src)
	var out []string
	for id, e := range pop {
		if sel.Matches(e.flat) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func testPop() tablePop {
	pop := make(tablePop)
	medias := []string{"video", "audio", "image", "text"}
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("w%d", i)
		flat := selector.Attributes{
			"client": selector.S(id),
			"media":  selector.S(medias[i%len(medias)]),
			"region": selector.N(float64(i % 8)),
			"size":   selector.N(float64(i * 1000)),
		}
		if i%2 == 0 {
			flat["cap.display"] = selector.B(true)
		}
		if i%5 == 0 {
			flat["codec"] = selector.S("h264")
		}
		pop.set(id, 1, flat)
	}
	return pop
}

func syncShard(s *Shard, pop tablePop) {
	for id := range pop {
		s.MarkDirty(id)
	}
}

func TestShardMatchBasics(t *testing.T) {
	pop := testPop()
	s := NewShard()
	syncShard(s, pop)

	for _, src := range []string{
		`media == "video"`,
		`media == "video" and region == 3`,
		`media != "video"`,
		`region >= 6`,
		`size < 5000`,
		`size <= 5000 and media == "audio"`,
		`exists(cap.display)`,
		`media in ["audio", "text"]`,
		`media == "video" or region == 2`,
		`media == "video" and region == 3 and size > 10000`,
		`exists(codec) and cap.display == true`,
		`media == "nope"`,
		`region > 100`,
	} {
		got := matchIDs(t, s, pop, src)
		want := bruteIDs(pop, src)
		if !eq(got, want) {
			t.Errorf("%q: index %v, brute %v", src, got, want)
		}
	}
}

func TestShardResidueVerification(t *testing.T) {
	pop := testPop()
	s := NewShard()
	syncShard(s, pop)

	// like and not are non-indexable: they ride as residue on the
	// indexable region predicate and are verified per candidate.
	for _, src := range []string{
		`region == 3 and client like "w1*"`,
		`region == 3 and not media == "video"`,
		`region == 2 and (media == "video" or media == "audio")`,
	} {
		got := matchIDs(t, s, pop, src)
		want := bruteIDs(pop, src)
		if !eq(got, want) {
			t.Errorf("%q: index %v, brute %v", src, got, want)
		}
	}
}

func TestPlanShapes(t *testing.T) {
	cases := []struct {
		src                string
		matchAll, fullScan bool
		branches           int
	}{
		{`true`, true, false, 0},
		{`false`, false, false, 0},
		{`a == 1`, false, false, 1},
		{`a == 1 or b == 2`, false, false, 2},
		{`a == 1 and false`, false, false, 0},
		{`a == 1 or true`, true, false, 1},
		{`not a == 1`, false, true, 0},
		{`a like "x*"`, false, true, 0},
		{`a == 1 or b like "x*"`, false, true, 1},
		{`a == 1 and b like "x*"`, false, false, 1},
		{`a < "m"`, false, true, 0},   // ordered string: residue-only branch
		{`a < true`, false, false, 0}, // ordering a bool never matches
		{`a == 1 and a < true`, false, false, 0},
	}
	for _, c := range cases {
		p := PlanExpr(selector.MustCompile(c.src).Expr())
		if p.MatchAll != c.matchAll || p.FullScan != c.fullScan || len(p.Branches) != c.branches {
			t.Errorf("%q: got MatchAll=%v FullScan=%v branches=%d, want %v/%v/%d",
				c.src, p.MatchAll, p.FullScan, len(p.Branches), c.matchAll, c.fullScan, c.branches)
		}
	}
}

func TestPlanEmptyInListNeverMatches(t *testing.T) {
	// The parser rejects `a in []`, but FromExpr-built selectors can
	// carry an empty list; it satisfies no profile.
	p := PlanExpr(&selector.In{Attr: "a"})
	if p.MatchAll || p.FullScan || len(p.Branches) != 0 {
		t.Fatalf("empty in-list plan = %+v, want constant false", p)
	}
}

func TestPlanNaNLiteralFallsBack(t *testing.T) {
	e := &selector.Cmp{Attr: "a", Op: selector.OpEq, Lit: selector.N(math.NaN())}
	p := PlanExpr(e)
	if !p.FullScan {
		t.Fatalf("NaN equality literal must degrade to FullScan, got %+v", p)
	}
}

func TestNaNAttributeRangeSemantics(t *testing.T) {
	// Eval: Compare(NaN, x) reports 0, so a NaN-valued attribute
	// satisfies <= and >= against any literal but never < or >.
	pop := make(tablePop)
	pop.set("nan", 1, selector.Attributes{"v": selector.N(math.NaN())})
	pop.set("low", 1, selector.Attributes{"v": selector.N(1)})
	pop.set("high", 1, selector.Attributes{"v": selector.N(9)})
	s := NewShard()
	syncShard(s, pop)

	for _, src := range []string{`v <= 5`, `v >= 5`, `v < 5`, `v > 5`, `v == 1`, `v != 1`} {
		got := matchIDs(t, s, pop, src)
		want := bruteIDs(pop, src)
		if !eq(got, want) {
			t.Errorf("%q: index %v, brute %v", src, got, want)
		}
	}
}

func TestGenerationSkipAndReindex(t *testing.T) {
	pop := make(tablePop)
	pop.set("a", 1, selector.Attributes{"media": selector.S("video")})
	s := NewShard()
	s.MarkDirty("a")

	if got := matchIDs(t, s, pop, `media == "video"`); !eq(got, []string{"a"}) {
		t.Fatalf("initial index: %v", got)
	}

	// Dirty with an unchanged generation: the flattened view must be
	// presumed fresh and the postings kept.
	before := ctrReindex.Load()
	s.MarkDirty("a")
	if got := matchIDs(t, s, pop, `media == "video"`); !eq(got, []string{"a"}) {
		t.Fatalf("after no-op dirty: %v", got)
	}
	if n := ctrReindex.Load() - before; n != 0 {
		t.Errorf("unchanged generation caused %d reindexes", n)
	}

	// A generation bump must reindex: the old posting disappears, the
	// new one answers.
	pop.set("a", 2, selector.Attributes{"media": selector.S("audio")})
	s.MarkDirty("a")
	if got := matchIDs(t, s, pop, `media == "video"`); len(got) != 0 {
		t.Fatalf("stale posting survived reindex: %v", got)
	}
	if got := matchIDs(t, s, pop, `media == "audio"`); !eq(got, []string{"a"}) {
		t.Fatalf("new posting missing: %v", got)
	}
	if n := ctrReindex.Load() - before; n != 1 {
		t.Errorf("generation bump caused %d reindexes, want 1", n)
	}
}

func TestInvalidateForcesReindexOnSameGeneration(t *testing.T) {
	// A wholesale Put may install different attributes under an
	// unchanged version; Invalidate must not trust the generation.
	pop := make(tablePop)
	pop.set("a", 0, selector.Attributes{"media": selector.S("video")})
	s := NewShard()
	s.MarkDirty("a")
	if got := matchIDs(t, s, pop, `media == "video"`); !eq(got, []string{"a"}) {
		t.Fatalf("initial: %v", got)
	}

	pop.set("a", 0, selector.Attributes{"media": selector.S("audio")})
	s.Invalidate("a")
	if got := matchIDs(t, s, pop, `media == "video"`); len(got) != 0 {
		t.Fatalf("stale posting after Invalidate: %v", got)
	}
	if got := matchIDs(t, s, pop, `media == "audio"`); !eq(got, []string{"a"}) {
		t.Fatalf("reindexed posting missing: %v", got)
	}
}

func TestRemovalDropsPostings(t *testing.T) {
	pop := testPop()
	s := NewShard()
	syncShard(s, pop)
	if got := matchIDs(t, s, pop, `media == "video"`); len(got) == 0 {
		t.Fatal("no initial matches")
	}

	delete(pop, "w0")
	s.Invalidate("w0")
	got := matchIDs(t, s, pop, `media == "video"`)
	for _, id := range got {
		if id == "w0" {
			t.Fatal("departed client still matched")
		}
	}
	if s.Len() != len(pop) {
		t.Errorf("Len() = %d, want %d", s.Len(), len(pop))
	}
}

func TestCandidateCounter(t *testing.T) {
	pop := testPop()
	s := NewShard()
	syncShard(s, pop)
	before := ctrCandidates.Load()
	got := matchIDs(t, s, pop, `media == "video" and region == 0`)
	scanned := ctrCandidates.Load() - before
	if scanned == 0 {
		t.Fatal("no candidates counted")
	}
	// The counting match may scan more candidates than survive, but
	// never fewer, and for a selective conjunction it must scan far
	// fewer than the population.
	if scanned < uint64(len(got)) {
		t.Errorf("scanned %d < matched %d", scanned, len(got))
	}
	if scanned > uint64(len(pop))/2 {
		t.Errorf("scanned %d of %d: counting match did not prune", scanned, len(pop))
	}
}
