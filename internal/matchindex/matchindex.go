// Package matchindex implements an inverted predicate index over
// flattened client-profile attributes, making per-message selector
// matching cost proportional to the number of *matching* clients
// rather than the number of *registered* clients.
//
// The broker's native direction of matching is inverted with respect
// to classic content-based pub/sub: here the stored population is the
// client profiles (attribute sets) and each message carries the query
// (a selector).  The index therefore stores postings per profile
// attribute — equality buckets, per-kind presence sets and sorted
// numeric breakpoint lists — and answers a selector by decomposing it
// into conjunctive predicate branches (plan.go) and running a counting
// match: selective predicates enumerate their postings into per-client
// satisfied-predicate counters, clients reaching the required total
// become candidates, and the remaining (unselective or non-indexable)
// conjuncts are verified per candidate with the authoritative
// evaluator.  Results are exact by construction: anything the planner
// cannot decompose falls back to the brute-force evaluator.
//
// A Shard indexes the clients of one registry lock shard; the sharded
// registry keeps one index shard per profile shard so index upkeep
// contends exactly like membership does.  Invalidation is lazy: (see
// MarkDirty/Invalidate) mutations only record the client ID, and the
// next match drains the dirty set, re-reading each client's flattened
// view and skipping the rebuild when the profile generation counter is
// unchanged.
package matchindex

import (
	"sort"
	"sync"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/selector"
)

// Match-index counters: candidates scanned by the counting match,
// brute-force fallback evaluations, and client reindex events.
var (
	ctrCandidates = metrics.C(metrics.CtrMatchIndexCandidates)
	ctrFallback   = metrics.C(metrics.CtrMatchIndexFallback)
	ctrReindex    = metrics.C(metrics.CtrMatchIndexReindex)
)

// CountFallback adds n brute-force evaluations to the fallback
// counter; the registry calls it when a FullScan plan (or a disabled
// index) routes a match through the per-client evaluator.
func CountFallback(n int) {
	if n > 0 {
		ctrFallback.Add(uint64(n))
	}
}

// Lookup resolves a client's current flattened attribute view and its
// generation (profile version).  The registry's FlatSnapshot has this
// exact shape; the returned map is immutable by contract.
type Lookup func(id string) (selector.Attributes, uint64, bool)

// idSet is a set of client IDs.
type idSet map[string]struct{}

// numEntry is one numeric posting in an attribute's breakpoint list.
type numEntry struct {
	num float64
	id  string
}

// attrIndex holds the postings for one flattened attribute name.
type attrIndex struct {
	// eq buckets: value → clients holding exactly that value.
	eq map[selector.Value]idSet
	// kinds: value kind → clients holding a value of that kind (the
	// != complement universe).
	kinds map[selector.Kind]idSet
	// present: clients holding the attribute at all (exists()).
	present idSet
	// sorted is the numeric breakpoint list for range predicates,
	// rebuilt lazily from the eq buckets when sortStale.  NaN-valued
	// clients live in nans: Compare(NaN, x) reports 0, so they satisfy
	// <= and >= against every literal but never < or >.
	sorted    []numEntry
	sortStale bool
	nans      idSet
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		eq:      make(map[selector.Value]idSet),
		kinds:   make(map[selector.Kind]idSet),
		present: make(idSet),
	}
}

// posting records one (attr, value) pair a client contributed, so a
// reindex can remove exactly what it added.
type posting struct {
	attr string
	v    selector.Value
}

// clientEntry is the index's view of one client: the generation its
// postings reflect and the postings themselves.
type clientEntry struct {
	gen      uint64
	postings []posting
}

// Shard indexes the clients of one registry shard.  All methods are
// safe for concurrent use; Match synchronizes with the mutation
// methods through the shard mutex, so a match observes every
// invalidation that completed before it began.
type Shard struct {
	mu      sync.Mutex
	clients map[string]*clientEntry
	attrs   map[string]*attrIndex
	dirty   idSet

	// counts is the counting-match scratch (client → satisfied
	// predicates); seen dedupes candidates across branches.  Both are
	// reused across matches under mu.
	counts map[string]int
	seen   idSet
}

// NewShard returns an empty index shard.
func NewShard() *Shard {
	return &Shard{
		clients: make(map[string]*clientEntry),
		attrs:   make(map[string]*attrIndex),
		dirty:   make(idSet),
		counts:  make(map[string]int),
		seen:    make(idSet),
	}
}

// MarkDirty records that id's profile may have changed; the next match
// re-reads its flattened view and reindexes only if the generation
// counter moved.
func (s *Shard) MarkDirty(id string) {
	s.mu.Lock()
	s.dirty[id] = struct{}{}
	s.mu.Unlock()
}

// Invalidate drops id's postings immediately and marks it dirty, for
// mutations the generation counter cannot vouch for: a wholesale
// profile Put may install different attributes under an unchanged
// version (the registry's Put replaces the entry, it does not bump),
// and a Remove must not leave postings behind.
func (s *Shard) Invalidate(id string) {
	s.mu.Lock()
	if e, ok := s.clients[id]; ok {
		s.removeLocked(id, e)
	}
	s.dirty[id] = struct{}{}
	s.mu.Unlock()
}

// Len returns the number of indexed clients (diagnostics, tests).
func (s *Shard) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

func (s *Shard) removeLocked(id string, e *clientEntry) {
	for _, po := range e.postings {
		a := s.attrs[po.attr]
		if a == nil {
			continue
		}
		if b := a.eq[po.v]; b != nil {
			delete(b, id)
			if len(b) == 0 {
				delete(a.eq, po.v)
			}
		}
		if k := a.kinds[po.v.Kind()]; k != nil {
			delete(k, id)
			if len(k) == 0 {
				delete(a.kinds, po.v.Kind())
			}
		}
		delete(a.present, id)
		if po.v.Kind() == selector.KindNumber {
			if nanValue(po.v) {
				delete(a.nans, id)
			} else {
				a.sortStale = true
			}
		}
	}
	delete(s.clients, id)
}

func (s *Shard) indexLocked(id string, flat selector.Attributes, gen uint64) {
	e := &clientEntry{gen: gen, postings: make([]posting, 0, len(flat))}
	for attr, v := range flat {
		a := s.attrs[attr]
		if a == nil {
			a = newAttrIndex()
			s.attrs[attr] = a
		}
		b := a.eq[v]
		if b == nil {
			b = make(idSet)
			a.eq[v] = b
		}
		b[id] = struct{}{}
		k := a.kinds[v.Kind()]
		if k == nil {
			k = make(idSet)
			a.kinds[v.Kind()] = k
		}
		k[id] = struct{}{}
		a.present[id] = struct{}{}
		if v.Kind() == selector.KindNumber {
			if nanValue(v) {
				if a.nans == nil {
					a.nans = make(idSet)
				}
				a.nans[id] = struct{}{}
			} else {
				a.sortStale = true
			}
		}
		e.postings = append(e.postings, posting{attr: attr, v: v})
	}
	s.clients[id] = e
}

// syncLocked drains the dirty set: departed clients lose their
// postings, clients whose generation moved are reindexed, and clients
// whose flattened view is unchanged cost one map lookup.
func (s *Shard) syncLocked(lookup Lookup) {
	if len(s.dirty) == 0 {
		return
	}
	for id := range s.dirty {
		e := s.clients[id]
		flat, gen, ok := lookup(id)
		if !ok {
			if e != nil {
				s.removeLocked(id, e)
			}
			continue
		}
		if e != nil && e.gen == gen {
			continue
		}
		if e != nil {
			s.removeLocked(id, e)
		}
		s.indexLocked(id, flat, gen)
		ctrReindex.Inc()
	}
	clear(s.dirty)
}

// freshSorted returns attr's numeric breakpoint list, rebuilding it
// from the equality buckets if a numeric posting changed since the
// last range query (lazy re-sort: churn batches amortize to one sort).
func (a *attrIndex) freshSorted() []numEntry {
	if !a.sortStale {
		return a.sorted
	}
	a.sorted = a.sorted[:0]
	for v, b := range a.eq {
		if v.Kind() != selector.KindNumber || nanValue(v) {
			continue
		}
		for id := range b {
			a.sorted = append(a.sorted, numEntry{num: v.Num(), id: id})
		}
	}
	sort.Slice(a.sorted, func(i, j int) bool { return a.sorted[i].num < a.sorted[j].num })
	a.sortStale = false
	return a.sorted
}

// rangeBounds returns the [lo, hi) window of the sorted breakpoint
// list satisfying `x op lit`, and whether NaN-valued clients satisfy
// the operator (Compare(NaN, lit) = 0, so <= and >= admit them).
func rangeBounds(sorted []numEntry, op selector.Op, lit float64) (lo, hi int, incNaN bool) {
	switch op {
	case selector.OpLt:
		return 0, sort.Search(len(sorted), func(i int) bool { return sorted[i].num >= lit }), false
	case selector.OpLe:
		return 0, sort.Search(len(sorted), func(i int) bool { return sorted[i].num > lit }), true
	case selector.OpGt:
		return sort.Search(len(sorted), func(i int) bool { return sorted[i].num > lit }), len(sorted), false
	default: // OpGe
		return sort.Search(len(sorted), func(i int) bool { return sorted[i].num >= lit }), len(sorted), true
	}
}

// estimate returns an upper bound on the predicate's posting count,
// used to pick which predicates enumerate and which verify.
func (s *Shard) estimate(p *pred) int {
	a := s.attrs[p.attr]
	if a == nil {
		return 0
	}
	switch p.kind {
	case predEq:
		return len(a.eq[p.lit])
	case predNe:
		return len(a.kinds[p.lit.Kind()])
	case predExists:
		return len(a.present)
	case predIn:
		n := 0
		for _, v := range p.list {
			n += len(a.eq[v])
		}
		return n
	default: // predRange
		lo, hi, incNaN := rangeBounds(a.freshSorted(), p.op, p.lit.Num())
		n := hi - lo
		if incNaN {
			n += len(a.nans)
		}
		return n
	}
}

// enumerate yields every client satisfying the predicate.
func (s *Shard) enumerate(p *pred, yield func(id string)) {
	a := s.attrs[p.attr]
	if a == nil {
		return
	}
	switch p.kind {
	case predEq:
		for id := range a.eq[p.lit] {
			yield(id)
		}
	case predNe:
		same := a.eq[p.lit]
		for id := range a.kinds[p.lit.Kind()] {
			if _, eq := same[id]; !eq {
				yield(id)
			}
		}
	case predExists:
		for id := range a.present {
			yield(id)
		}
	case predIn:
		// List values are deduplicated at plan time and a client holds
		// one value per attribute, so the buckets are disjoint.
		for _, v := range p.list {
			for id := range a.eq[v] {
				yield(id)
			}
		}
	default: // predRange
		sorted := a.freshSorted()
		lo, hi, incNaN := rangeBounds(sorted, p.op, p.lit.Num())
		for i := lo; i < hi; i++ {
			yield(sorted[i].id)
		}
		if incNaN {
			for id := range a.nans {
				yield(id)
			}
		}
	}
}

// verifyThreshold bounds which predicates join the counting
// enumeration: a predicate whose posting estimate exceeds
// pivot*verifyFactor+verifySlack is verified per candidate instead —
// enumerating a barely-selective predicate (say `media == "video"`
// over a quarter of the population) would cost O(population) and
// defeat the index, while a per-candidate check costs one map lookup.
const (
	verifyFactor = 8
	verifySlack  = 16
)

// Match appends to dst the IDs of every client in the shard matching
// the plan, deduplicated across branches, after draining the dirty
// set.  The plan must be Indexable (MatchAll and FullScan are the
// caller's cases — they need the registry's full population, which the
// index does not own).
func (s *Shard) Match(p *Plan, lookup Lookup, dst []string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLocked(lookup)
	if len(s.clients) == 0 {
		return dst
	}
	clear(s.seen)
	var candidates, fallbacks uint64
	for bi := range p.Branches {
		br := &p.Branches[bi]

		// Split the conjuncts: the most selective predicates enumerate
		// their postings into the counting match, the rest verify.
		pivot := -1
		sizes := make([]int, len(br.preds))
		for i := range br.preds {
			sizes[i] = s.estimate(&br.preds[i])
			if pivot < 0 || sizes[i] < sizes[pivot] {
				pivot = i
			}
		}
		if sizes[pivot] == 0 {
			continue // some conjunct has no satisfying client
		}
		bound := sizes[pivot]*verifyFactor + verifySlack
		counted := make([]*pred, 0, len(br.preds))
		verified := make([]*pred, 0, len(br.preds))
		for i := range br.preds {
			if i == pivot || sizes[i] <= bound {
				counted = append(counted, &br.preds[i])
			} else {
				verified = append(verified, &br.preds[i])
			}
		}

		emit := func(id string) {
			if _, dup := s.seen[id]; dup {
				return
			}
			candidates++
			if len(verified) > 0 || len(br.residue) > 0 {
				flat, _, ok := lookup(id)
				if !ok {
					return
				}
				for _, vp := range verified {
					if !vp.src.Eval(flat) {
						return
					}
				}
				for _, r := range br.residue {
					fallbacks++
					if !r.Eval(flat) {
						return
					}
				}
			}
			s.seen[id] = struct{}{}
			dst = append(dst, id)
		}

		if len(counted) == 1 {
			s.enumerate(counted[0], emit)
			continue
		}
		clear(s.counts)
		for _, cp := range counted {
			s.enumerate(cp, func(id string) { s.counts[id]++ })
		}
		need := len(counted)
		for id, n := range s.counts {
			if n == need {
				emit(id)
			}
		}
	}
	ctrCandidates.Add(candidates)
	ctrFallback.Add(fallbacks)
	return dst
}
