package inference

import (
	"math"
	"testing"
	"testing/quick"

	"adaptiveqos/internal/media"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

func st(pairs ...any) selector.Attributes {
	a := make(selector.Attributes)
	for i := 0; i < len(pairs); i += 2 {
		switch v := pairs[i+1].(type) {
		case int:
			a[pairs[i].(string)] = selector.N(float64(v))
		case float64:
			a[pairs[i].(string)] = selector.N(v)
		}
	}
	return a
}

func TestPacketsFromPageFaults(t *testing.T) {
	// The paper's Fig 6: packets 1..16 in powers of 2 for page faults
	// 30..100.
	cases := []struct {
		pf   float64
		want int
	}{
		{0, 16}, {30, 16}, {100, 1}, {150, 1},
	}
	for _, tc := range cases {
		if got := PacketsFromPageFaults(tc.pf, 16); got != tc.want {
			t.Errorf("PacketsFromPageFaults(%g) = %d, want %d", tc.pf, got, tc.want)
		}
	}
	// Every output is a power of two in [1, 16] and non-increasing.
	prev := 17
	seen := map[int]bool{}
	for pf := 0.0; pf <= 120; pf += 1 {
		got := PacketsFromPageFaults(pf, 16)
		if got < 1 || got > 16 || got&(got-1) != 0 {
			t.Fatalf("pf=%g: %d not a power of two in range", pf, got)
		}
		if got > prev {
			t.Fatalf("pf=%g: budget increased %d -> %d", pf, prev, got)
		}
		prev = got
		seen[got] = true
	}
	// The full ladder 16, 8, 4, 2, 1 appears across the sweep.
	for _, want := range []int{16, 8, 4, 2, 1} {
		if !seen[want] {
			t.Errorf("budget %d never produced across sweep", want)
		}
	}
	// Default maxPackets.
	if PacketsFromPageFaults(0, 0) != 16 {
		t.Error("default maxPackets should be 16")
	}
}

func TestPacketsFromCPULoad(t *testing.T) {
	// Fig 7: 16 packets at <=30 %, 0 at 100 %.
	if got := PacketsFromCPULoad(30, 16); got != 16 {
		t.Errorf("cpu 30 = %d", got)
	}
	if got := PacketsFromCPULoad(100, 16); got != 0 {
		t.Errorf("cpu 100 = %d", got)
	}
	if got := PacketsFromCPULoad(120, 16); got != 0 {
		t.Errorf("cpu 120 = %d", got)
	}
	prev := 17
	for load := 0.0; load <= 110; load += 0.5 {
		got := PacketsFromCPULoad(load, 16)
		if got < 0 || got > 16 {
			t.Fatalf("cpu %g: budget %d out of range", load, got)
		}
		if got > prev {
			t.Fatalf("cpu %g: budget increased %d -> %d", load, prev, got)
		}
		prev = got
	}
}

func TestDecisionComposition(t *testing.T) {
	d := Decision{PacketBudget: Unlimited}
	if d.EffectiveBudget(16) != 16 {
		t.Error("unlimited effective budget")
	}
	d.ConstrainPackets(8)
	d.ConstrainPackets(12) // higher: keeps 8
	if d.PacketBudget != 8 {
		t.Errorf("budget = %d, want 8", d.PacketBudget)
	}
	d.ConstrainPackets(-3) // clamps to 0
	if d.PacketBudget != 0 {
		t.Errorf("budget = %d, want 0", d.PacketBudget)
	}
	d.PacketBudget = 100
	if d.EffectiveBudget(16) != 16 {
		t.Error("budget above total must clamp")
	}
}

func TestEngineDefaultPolicy(t *testing.T) {
	contract := profile.MustContract("qos",
		profile.Constraint{Param: StateCPULoad, Min: 0, Max: 90, Hard: true})
	e := New(contract)
	if err := DefaultPolicy(e, 16, 64_000, 16_000); err != nil {
		t.Fatal(err)
	}
	if len(e.RuleNames()) != 6 {
		t.Fatalf("rules: %v", e.RuleNames())
	}

	// Light load: everything passes.
	d := e.Decide(st(StateCPULoad, 20, StatePageFaults, 10, StateBandwidth, 1e6))
	if d.EffectiveBudget(16) != 16 || d.Modality != "" {
		t.Errorf("light load: %+v", d)
	}
	if !d.Contract.Satisfied {
		t.Error("light-load contract should hold")
	}
	if len(d.Fired) != 2 {
		t.Errorf("fired: %v", d.Fired)
	}

	// Page-fault pressure halves the budget even when CPU is fine.
	d = e.Decide(st(StateCPULoad, 20, StatePageFaults, 65))
	if got := d.EffectiveBudget(16); got >= 16 || got < 1 {
		t.Errorf("page-fault pressure budget = %d", got)
	}

	// The tighter of the two constraints governs.
	d = e.Decide(st(StateCPULoad, 99, StatePageFaults, 35))
	cpuOnly := PacketsFromCPULoad(99, 16)
	if d.EffectiveBudget(16) != cpuOnly {
		t.Errorf("min composition: %d, want %d", d.EffectiveBudget(16), cpuOnly)
	}

	// Saturated CPU: accept nothing, contract violated.
	d = e.Decide(st(StateCPULoad, 100))
	if d.EffectiveBudget(16) != 0 {
		t.Errorf("full load budget = %d", d.EffectiveBudget(16))
	}
	if d.Contract.Satisfied {
		t.Error("contract must be violated at 100% load")
	}

	// Bandwidth tiers.
	d = e.Decide(st(StateBandwidth, 50_000))
	if d.Modality != media.KindSketch {
		t.Errorf("50 kbps modality = %q", d.Modality)
	}
	d = e.Decide(st(StateBandwidth, 10_000))
	if d.Modality != media.KindText {
		t.Errorf("10 kbps modality = %q", d.Modality)
	}
	d = e.Decide(st(StateBandwidth, 1e6))
	if d.Modality != "" {
		t.Errorf("high-bandwidth modality = %q", d.Modality)
	}
}

func TestEnginePriorityAndValidation(t *testing.T) {
	e := New(nil)
	var orderSeen []string
	mk := func(name string, prio int) Rule {
		return Rule{Name: name, Priority: prio, Then: func(_ selector.Attributes, d *Decision) {
			orderSeen = append(orderSeen, name)
		}}
	}
	e.AddRule(mk("low", 1))
	e.AddRule(mk("high", 10))
	e.AddRule(mk("mid-a", 5))
	e.AddRule(mk("mid-b", 5)) // same priority: insertion order preserved

	e.Decide(nil)
	want := []string{"high", "mid-a", "mid-b", "low"}
	for i, n := range want {
		if orderSeen[i] != n {
			t.Fatalf("firing order %v, want %v", orderSeen, want)
		}
	}

	if err := e.AddRule(Rule{Then: func(selector.Attributes, *Decision) {}}); err == nil {
		t.Error("nameless rule accepted")
	}
	if err := e.AddRule(Rule{Name: "x"}); err == nil {
		t.Error("actionless rule accepted")
	}
	if New(nil).Contract() == nil {
		t.Error("nil contract should default to empty contract")
	}
}

// TestQuickBudgetMonotone: both paper mappings are monotone
// non-increasing in their driving parameter, for any maxPackets.
func TestQuickBudgetMonotone(t *testing.T) {
	f := func(a, b float64, maxPackets int) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a = math.Mod(math.Abs(a), 200)
		b = math.Mod(math.Abs(b), 200)
		if a > b {
			a, b = b, a
		}
		maxPackets = maxPackets%64 + 1
		if maxPackets < 1 {
			maxPackets = 1
		}
		return PacketsFromPageFaults(a, maxPackets) >= PacketsFromPageFaults(b, maxPackets) &&
			PacketsFromCPULoad(a, maxPackets) >= PacketsFromCPULoad(b, maxPackets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecideDeterministic: identical state yields identical
// decisions.
func TestQuickDecideDeterministic(t *testing.T) {
	e := New(nil)
	if err := DefaultPolicy(e, 16, 64_000, 16_000); err != nil {
		t.Fatal(err)
	}
	f := func(cpu, pf, bw float64) bool {
		if math.IsNaN(cpu) || math.IsNaN(pf) || math.IsNaN(bw) {
			return true
		}
		state := st(StateCPULoad, math.Mod(math.Abs(cpu), 150),
			StatePageFaults, math.Mod(math.Abs(pf), 150),
			StateBandwidth, math.Mod(math.Abs(bw), 1e7))
		d1 := e.Decide(state)
		d2 := e.Decide(state)
		return d1.PacketBudget == d2.PacketBudget && d1.Modality == d2.Modality &&
			len(d1.Fired) == len(d2.Fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
