package inference

import (
	"net/http/httptest"
	"strings"
	"testing"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/selector"
)

func auditTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(nil)
	if err := DefaultPolicy(e, 16, 64_000, 16_000); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDecideCountsRuleFirings(t *testing.T) {
	e := auditTestEngine(t)
	ctr := metrics.C(metrics.RuleFired("cpu-load-budget"))
	before := ctr.Load()
	e.Decide(selector.Attributes{StateCPULoad: selector.N(80)})
	e.Decide(selector.Attributes{StateCPULoad: selector.N(90)})
	if got := ctr.Load(); got != before+2 {
		t.Errorf("rule counter %d -> %d, want +2", before, got)
	}
	// Installed-but-silent rules are pre-touched: family present at
	// registration, not first firing.
	if _, ok := metrics.Counters()[metrics.RuleFired("page-fault-budget")]; !ok {
		t.Error("page-fault-budget counter not pre-touched at AddRule")
	}
}

func TestDecideRecordsAudit(t *testing.T) {
	ResetAudits()
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		ResetAudits()
	})

	e := auditTestEngine(t)
	e.SetOwner("wired-0")
	e.Decide(selector.Attributes{
		StateCPULoad:   selector.N(80),
		StateBandwidth: selector.N(20_000),
	})

	e2 := auditTestEngine(t)
	e2.SetOwner("wired-1")
	e2.Decide(selector.Attributes{StatePageFaults: selector.N(120)})

	all := Audits("", 0)
	if len(all) != 2 {
		t.Fatalf("audit retained %d entries, want 2", len(all))
	}
	// Newest first.
	if all[0].Client != "wired-1" || all[1].Client != "wired-0" {
		t.Errorf("audit order/owners = %q, %q", all[0].Client, all[1].Client)
	}
	if all[1].Budget != PacketsFromCPULoad(80, 16) {
		t.Errorf("budget = %d", all[1].Budget)
	}
	if all[1].Modality != "sketch" {
		t.Errorf("modality = %q (20kbps is under the sketch threshold)", all[1].Modality)
	}
	if !strings.Contains(all[1].State, "cpu-load=80") {
		t.Errorf("state = %q", all[1].State)
	}
	hasRule := func(fired []string, name string) bool {
		for _, f := range fired {
			if f == name {
				return true
			}
		}
		return false
	}
	if !hasRule(all[1].Fired, "cpu-load-budget") || !hasRule(all[1].Fired, "low-bandwidth-sketch") {
		t.Errorf("fired = %v", all[1].Fired)
	}

	// Client filter.
	only := Audits("wired-0", 0)
	if len(only) != 1 || only[0].Client != "wired-0" {
		t.Errorf("Audits(wired-0) = %+v", only)
	}
}

func TestDecideAuditDisabledByObsFlag(t *testing.T) {
	ResetAudits()
	obs.SetEnabled(false)
	e := auditTestEngine(t)
	e.SetOwner("silent")
	e.Decide(selector.Attributes{StateCPULoad: selector.N(50)})
	if got := Audits("", 0); len(got) != 0 {
		t.Errorf("disabled instrumentation recorded %d audits", len(got))
	}
}

func TestAuditRingOverwritesOldest(t *testing.T) {
	ResetAudits()
	t.Cleanup(ResetAudits)
	for i := 0; i < auditRingCap+10; i++ {
		recordAudit(AuditEntry{At: int64(i), Client: "c"})
	}
	all := Audits("", 0)
	if len(all) != auditRingCap {
		t.Fatalf("retained %d, want %d", len(all), auditRingCap)
	}
	if all[0].At != int64(auditRingCap+9) {
		t.Errorf("newest = %d", all[0].At)
	}
	if all[len(all)-1].At != 10 {
		t.Errorf("oldest retained = %d, want 10 (overwrite-oldest)", all[len(all)-1].At)
	}
	if got := Audits("", 3); len(got) != 3 || got[0].At != int64(auditRingCap+9) {
		t.Errorf("Audits(max=3) = %+v", got)
	}
}

func TestDebugDecisionsEndpoint(t *testing.T) {
	ResetAudits()
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		ResetAudits()
	})
	e := auditTestEngine(t)
	e.SetOwner("wired-0")
	e.Decide(selector.Attributes{StateCPULoad: selector.N(95)})

	h := obs.Handler() // /debug/decisions is registered by this package's init
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "cpu-load-budget") || !strings.Contains(body, "wired-0") {
		t.Errorf("/debug/decisions = %q", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions?client=nobody", nil))
	if body := rec.Body.String(); strings.Contains(body, "cpu-load-budget") {
		t.Errorf("client filter leaked: %q", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions?max=zz", nil))
	if rec.Code != 400 {
		t.Errorf("bad ?max= should 400, got %d", rec.Code)
	}
}
