package inference

import (
	"testing"

	"adaptiveqos/internal/media"
)

func TestPacketsFromLoss(t *testing.T) {
	cases := []struct {
		loss float64
		want int
	}{
		{-0.5, 16},
		{0, 16},
		{0.25, 12},
		{0.5, 8},
		{0.9, 1},
		{1, 0},
		{1.5, 0},
	}
	for _, tc := range cases {
		if got := PacketsFromLoss(tc.loss, 16); got != tc.want {
			t.Errorf("PacketsFromLoss(%g) = %d, want %d", tc.loss, got, tc.want)
		}
	}
	if PacketsFromLoss(0, 0) != 16 {
		t.Error("default maxPackets")
	}
	// Monotone non-increasing.
	prev := 17
	for l := 0.0; l <= 1.0; l += 0.05 {
		got := PacketsFromLoss(l, 16)
		if got > prev {
			t.Fatalf("loss %g: budget rose %d -> %d", l, prev, got)
		}
		prev = got
	}
}

func TestLossRules(t *testing.T) {
	e := New(nil)
	if err := DefaultPolicy(e, 16, 64_000, 16_000); err != nil {
		t.Fatal(err)
	}

	// Moderate loss constrains the budget without changing modality.
	d := e.Decide(st(StateLoss, 0.25))
	if got := d.EffectiveBudget(16); got != 12 {
		t.Errorf("budget at 25%% loss = %d, want 12", got)
	}
	if d.Modality != "" {
		t.Errorf("modality at 25%% loss = %q", d.Modality)
	}

	// Heavy loss degrades modality to sketch.
	d = e.Decide(st(StateLoss, 0.6))
	if d.Modality != media.KindSketch {
		t.Errorf("modality at 60%% loss = %q, want sketch", d.Modality)
	}
	if got := d.EffectiveBudget(16); got != 6 {
		t.Errorf("budget at 60%% loss = %d, want 6", got)
	}

	// Loss composes with CPU pressure by minimum.
	d = e.Decide(st(StateLoss, 0.25, StateCPULoad, 95))
	cpuBudget := PacketsFromCPULoad(95, 16)
	if got := d.EffectiveBudget(16); got != cpuBudget {
		t.Errorf("composed budget = %d, want %d (cpu tighter)", got, cpuBudget)
	}

	// A text-tier bandwidth rule outranks the loss sketch rule.
	d = e.Decide(st(StateLoss, 0.6, StateBandwidth, 10_000))
	if d.Modality != media.KindText {
		t.Errorf("modality with text bandwidth + heavy loss = %q, want text", d.Modality)
	}
}
