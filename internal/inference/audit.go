// Inference decision audit (DESIGN.md §11): every Decide call can be
// recorded — which rules fired, on what input attributes, and what the
// composed decision was — into a bounded overwrite-oldest ring,
// queryable at /debug/decisions and counted per rule as
// aqos_inference_rule_fired{rule="..."}.
//
// Rule-firing counters are always live (one atomic add per firing;
// the family is pre-touched per rule at AddRule so /metrics shows
// every installed rule at zero).  The audit ring only records when the
// obs instrumentation flag is on, keeping the disabled Decide path
// free of ring-buffer work and attribute formatting.
package inference

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/selector"
)

// AuditEntry is one recorded inference decision.
type AuditEntry struct {
	// At is the decision instant (UnixNano).
	At int64
	// Client names the engine's owner (the client being decided for);
	// empty when the engine has no owner set.
	Client string
	// State renders the input attributes as sorted key=value pairs.
	State string
	// Fired lists the rules that fired, in firing order.
	Fired []string
	// Budget is the composed packet budget (Unlimited = -1).
	Budget int
	// Modality is the decided delivery modality ("" = keep source).
	Modality string
	// Satisfied and Violations summarize the contract evaluation.
	Satisfied  bool
	Violations []string
}

// auditRingCap bounds the process-global decision audit.  Adaptation
// cycles run on the order of once per second per client, so 512
// entries retain several minutes of decisions for a busy session
// (DESIGN.md §11 discusses the sizing).
const auditRingCap = 512

var auditRing = struct {
	mu      sync.Mutex
	entries [auditRingCap]AuditEntry
	next    uint64 // total records; next%cap is the write slot
}{}

func recordAudit(e AuditEntry) {
	auditRing.mu.Lock()
	auditRing.entries[auditRing.next%auditRingCap] = e
	auditRing.next++
	auditRing.mu.Unlock()
}

// Audits returns up to max recorded decisions, newest first, filtered
// to one client when client is non-empty (max <= 0 returns all
// retained).
func Audits(client string, max int) []AuditEntry {
	auditRing.mu.Lock()
	defer auditRing.mu.Unlock()
	n := auditRing.next
	retained := uint64(auditRingCap)
	if n < retained {
		retained = n
	}
	out := make([]AuditEntry, 0, retained)
	for i := uint64(1); i <= retained; i++ {
		e := auditRing.entries[(n-i)%auditRingCap]
		if client != "" && e.Client != client {
			continue
		}
		out = append(out, e)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// ResetAudits clears the audit ring (tests).
func ResetAudits() {
	auditRing.mu.Lock()
	auditRing.next = 0
	auditRing.entries = [auditRingCap]AuditEntry{}
	auditRing.mu.Unlock()
}

// formatState renders attributes deterministically (sorted key=value).
func formatState(state selector.Attributes) string {
	if len(state) == 0 {
		return ""
	}
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(state[k].String())
	}
	return sb.String()
}

// WriteDecisions renders the audit (newest first) as text.
func WriteDecisions(w http.ResponseWriter, client string, max int) {
	entries := Audits(client, max)
	var sb strings.Builder
	fmt.Fprintf(&sb, "inference decision audit (%d shown", len(entries))
	if client != "" {
		fmt.Fprintf(&sb, ", client=%s", client)
	}
	sb.WriteString("); filter with ?client=<id>, bound with ?max=<n>\n\n")
	for _, e := range entries {
		t := time.Unix(0, e.At).Format("15:04:05.000")
		budget := fmt.Sprintf("%d", e.Budget)
		if e.Budget == Unlimited {
			budget = "unlimited"
		}
		modality := e.Modality
		if modality == "" {
			modality = "(keep)"
		}
		contract := "satisfied"
		if !e.Satisfied {
			contract = "violated:" + strings.Join(e.Violations, ",")
		}
		fired := strings.Join(e.Fired, ",")
		if fired == "" {
			fired = "(none)"
		}
		fmt.Fprintf(&sb, "%s client=%-10s budget=%-9s modality=%-8s %s\n    fired: %s\n    state: %s\n",
			t, e.Client, budget, modality, contract, fired, e.State)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, sb.String())
}

func init() {
	obs.RegisterDebug("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		max := 64
		if v := q.Get("max"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "inference: bad ?max=", http.StatusBadRequest)
				return
			}
			max = n
		}
		WriteDecisions(w, q.Get("client"), max)
	})
}

// touchRuleCounter returns (registering if new) the rule's firing
// counter; pre-touching at AddRule time means /metrics lists every
// installed rule's family at zero before any firing.
func touchRuleCounter(name string) *metrics.Counter {
	return metrics.C(metrics.RuleFired(name))
}
