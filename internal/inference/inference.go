// Package inference implements the inference engine: a policy database
// that combines the client profile (interests, preferences,
// capabilities), the QoS contract, and the current system/network
// state into concrete adaptation decisions — how many image packets to
// accept, which resolution threshold to apply, and which modality to
// deliver.
//
// Policies are rules: a semantic-selector condition over the state
// attributes plus an action that refines the decision.  Rules fire in
// priority order; actions compose by tightening (a later rule can
// lower the packet budget but the engine keeps the minimum, so the
// most constrained resource governs — the paper's behaviour where
// either page faults or CPU load can throttle the image viewer).
package inference

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/media"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
	"adaptiveqos/internal/profile"
	"adaptiveqos/internal/selector"
)

// Unlimited marks a packet budget with no constraint applied.
const Unlimited = -1

// Decision is the inference engine's output for one adaptation cycle.
type Decision struct {
	// PacketBudget is the maximum number of image packets to accept;
	// Unlimited (-1) when no rule constrained it, 0 meaning "accept
	// nothing" under extreme load.
	PacketBudget int
	// Modality is the delivery modality to request; empty means keep
	// the source modality.
	Modality media.Kind
	// Contract is the QoS contract evaluation for this state.
	Contract profile.Evaluation
	// Fired lists the rules that fired, in firing order.
	Fired []string
}

// ConstrainPackets lowers the budget to at most n (composing by min).
func (d *Decision) ConstrainPackets(n int) {
	if n < 0 {
		n = 0
	}
	if d.PacketBudget == Unlimited || n < d.PacketBudget {
		d.PacketBudget = n
	}
}

// EffectiveBudget resolves the budget against the total packet count.
func (d Decision) EffectiveBudget(total int) int {
	if d.PacketBudget == Unlimited || d.PacketBudget > total {
		return total
	}
	return d.PacketBudget
}

// Rule is one policy: when the condition matches the state, the action
// refines the decision.
type Rule struct {
	// Name identifies the rule in Decision.Fired and logs.
	Name string
	// When guards the action; a nil selector always fires.
	When *selector.Selector
	// Then applies the rule's effect.  It must not retain state.
	Then func(state selector.Attributes, d *Decision)
	// Priority orders evaluation (higher first; ties keep insertion
	// order).
	Priority int

	// fired counts this rule's firings (pre-touched at AddRule so the
	// aqos_inference_rule_fired family lists every installed rule).
	fired *metrics.Counter
}

// Engine evaluates the policy database against observed state.
// It is safe for concurrent use.
type Engine struct {
	mu       sync.RWMutex
	rules    []Rule
	seq      int
	order    []int // insertion sequence parallel to rules
	contract *profile.Contract
	owner    string
	clk      clock.Clock // stamps audit entries; nil = wall
}

// New creates an engine bound to a QoS contract (nil means an empty,
// always-satisfied contract).
func New(contract *profile.Contract) *Engine {
	if contract == nil {
		contract = profile.MustContract("empty")
	}
	return &Engine{contract: contract}
}

// Contract returns the engine's QoS contract.
func (e *Engine) Contract() *profile.Contract { return e.contract }

// SetOwner names the client this engine decides for; the name labels
// the engine's entries in the decision audit (/debug/decisions).
func (e *Engine) SetOwner(name string) {
	e.mu.Lock()
	e.owner = name
	e.mu.Unlock()
}

// SetClock pins audit timestamps to c (nil restores wall time).
func (e *Engine) SetClock(c clock.Clock) {
	e.mu.Lock()
	e.clk = c
	e.mu.Unlock()
}

// AddRule installs a policy rule.
func (e *Engine) AddRule(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("inference: rule without a name")
	}
	if r.Then == nil {
		return fmt.Errorf("inference: rule %q without an action", r.Name)
	}
	r.fired = touchRuleCounter(r.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, r)
	e.order = append(e.order, e.seq)
	e.seq++
	// Stable priority-descending order.
	idx := make([]int, len(e.rules))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if e.rules[idx[a]].Priority != e.rules[idx[b]].Priority {
			return e.rules[idx[a]].Priority > e.rules[idx[b]].Priority
		}
		return e.order[idx[a]] < e.order[idx[b]]
	})
	rules := make([]Rule, len(e.rules))
	order := make([]int, len(e.rules))
	for i, j := range idx {
		rules[i], order[i] = e.rules[j], e.order[j]
	}
	e.rules, e.order = rules, order
	return nil
}

// RuleNames lists the installed rules in evaluation order.
func (e *Engine) RuleNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, len(e.rules))
	for i, r := range e.rules {
		names[i] = r.Name
	}
	return names
}

// Decide evaluates the contract and every matching rule against the
// state and returns the composed decision.  Each firing rule bumps its
// aqos_inference_rule_fired counter; when obs instrumentation is on,
// the decision is also recorded into the audit ring
// (/debug/decisions) with its input attributes and firing list.
func (e *Engine) Decide(state selector.Attributes) Decision {
	e.mu.RLock()
	rules := e.rules
	owner := e.owner
	clk := e.clk
	e.mu.RUnlock()

	d := Decision{PacketBudget: Unlimited, Contract: e.contract.Evaluate(state)}
	for _, r := range rules {
		if r.When != nil && !r.When.Matches(state) {
			continue
		}
		r.Then(state, &d)
		d.Fired = append(d.Fired, r.Name)
		r.fired.Inc()
	}
	if obs.Enabled() {
		at := clock.Or(clk).Now().UnixNano()
		recordAudit(AuditEntry{
			At:         at,
			Client:     owner,
			State:      formatState(state),
			Fired:      append([]string(nil), d.Fired...),
			Budget:     d.PacketBudget,
			Satisfied:  d.Contract.Satisfied,
			Modality:   string(d.Modality),
			Violations: append([]string(nil), d.Contract.Violated...),
		})
		if obs.Recording() {
			obs.RecordEvent(obs.RecEvent{
				Type:   obs.RecTypeDecision,
				AtNS:   at,
				Client: owner,
				Name:   strings.Join(d.Fired, ","),
				Value:  float64(d.PacketBudget),
				Detail: string(d.Modality),
			})
		}
	}
	return d
}

// --- The paper's adaptation mappings (Figs 6 and 7) ---

// Params parameterizes the standard policy's adaptation mappings.  The
// seed hard-coded the paper's numbers (budget breakpoints at 30 and
// 100, bandwidth tiers at 64/16 kbit/s); making them an injectable
// struct lets the counterfactual replay harness (DESIGN.md §15) sweep
// candidate policies against a recorded session instead of rebuilding
// the engine around new constants.  Zero-valued fields take the
// paper's defaults, so Params{} behaves exactly like the seed.
type Params struct {
	// MaxPackets is the budget ceiling every mapping tops out at
	// (default 16, the paper's image packet count).
	MaxPackets int `json:"max_packets,omitempty"`
	// PageFaultLo/Hi bound the Fig 6 mapping: full budget at or below
	// Lo faults, one packet at or above Hi (defaults 30 and 100).
	PageFaultLo float64 `json:"page_fault_lo,omitempty"`
	PageFaultHi float64 `json:"page_fault_hi,omitempty"`
	// CPULoadLo/Hi bound the Fig 7 mapping: full budget at or below Lo
	// percent, zero packets at or above Hi (defaults 30 and 100).
	CPULoadLo float64 `json:"cpu_load_lo,omitempty"`
	CPULoadHi float64 `json:"cpu_load_hi,omitempty"`
	// SketchBps and TextBps are the bandwidth thresholds degrading the
	// delivery modality to sketch and text (defaults 64000 and 16000).
	SketchBps float64 `json:"sketch_bps,omitempty"`
	TextBps   float64 `json:"text_bps,omitempty"`
	// HeavyLossSketch is the observed-loss fraction above which image
	// modality degrades to sketch (default 0.5).
	HeavyLossSketch float64 `json:"heavy_loss_sketch,omitempty"`
}

// DefaultParams returns the paper's standard policy parameters.
func DefaultParams() Params { return Params{}.WithDefaults() }

// WithDefaults fills zero-valued fields with the paper's numbers.
func (p Params) WithDefaults() Params {
	if p.MaxPackets < 1 {
		p.MaxPackets = 16
	}
	if p.PageFaultLo <= 0 {
		p.PageFaultLo = 30
	}
	if p.PageFaultHi <= p.PageFaultLo {
		p.PageFaultHi = p.PageFaultLo + 70
	}
	if p.CPULoadLo <= 0 {
		p.CPULoadLo = 30
	}
	if p.CPULoadHi <= p.CPULoadLo {
		p.CPULoadHi = p.CPULoadLo + 70
	}
	if p.SketchBps == 0 {
		p.SketchBps = 64_000
	}
	if p.TextBps == 0 {
		p.TextBps = 16_000
	}
	if p.HeavyLossSketch <= 0 || p.HeavyLossSketch > 1 {
		p.HeavyLossSketch = 0.5
	}
	return p
}

// PacketsFromPageFaults maps the observed page-fault rate to an image
// packet budget (Fig 6): full budget at ≤PageFaultLo faults, halving
// in powers of two down to 1 packet at ≥PageFaultHi.
func (p Params) PacketsFromPageFaults(pageFaults float64) int {
	p = p.WithDefaults()
	maxExp := int(math.Round(math.Log2(float64(p.MaxPackets))))
	lo, hi := p.PageFaultLo, p.PageFaultHi
	switch {
	case pageFaults <= lo:
		return 1 << uint(maxExp)
	case pageFaults >= hi:
		return 1
	}
	// Linear in the exponent: quantized gradation in powers of two.
	exp := int(math.Round(float64(maxExp) * (hi - pageFaults) / (hi - lo)))
	if exp < 0 {
		exp = 0
	}
	return 1 << uint(exp)
}

// PacketsFromCPULoad maps CPU load (percent) to an image packet budget
// (Fig 7): full budget at ≤CPULoadLo % falling linearly to 0 at
// ≥CPULoadHi % (under full load nothing is accepted).
func (p Params) PacketsFromCPULoad(cpuLoad float64) int {
	p = p.WithDefaults()
	lo, hi := p.CPULoadLo, p.CPULoadHi
	switch {
	case cpuLoad <= lo:
		return p.MaxPackets
	case cpuLoad >= hi:
		return 0
	}
	return int(math.Floor(float64(p.MaxPackets) * (hi - cpuLoad) / (hi - lo)))
}

// PacketsFromLoss maps an observed loss fraction to a packet budget:
// the budget shrinks proportionally to the expected usable prefix.
func (p Params) PacketsFromLoss(loss float64) int {
	p = p.WithDefaults()
	if loss <= 0 {
		return p.MaxPackets
	}
	if loss >= 1 {
		return 0
	}
	return int(math.Floor(float64(p.MaxPackets) * (1 - loss)))
}

// Budget composes the three packet mappings by minimum — the engine's
// tightening semantics without building an Engine.  NaN inputs mark an
// unobserved parameter and leave that mapping unconstrained.  The
// replay harness evaluates candidate Params against recorded host
// state through this single entry point.
func (p Params) Budget(cpuLoad, pageFaults, loss float64) int {
	p = p.WithDefaults()
	budget := p.MaxPackets
	min := func(n int) {
		if n < budget {
			budget = n
		}
	}
	if !math.IsNaN(pageFaults) {
		min(p.PacketsFromPageFaults(pageFaults))
	}
	if !math.IsNaN(cpuLoad) {
		min(p.PacketsFromCPULoad(cpuLoad))
	}
	if !math.IsNaN(loss) {
		min(p.PacketsFromLoss(loss))
	}
	return budget
}

// PacketsFromPageFaults maps the observed page-fault rate to an image
// packet budget with the paper's breakpoints; maxPackets generalizes
// the paper's 16.  Kept as a thin wrapper over Params for existing
// callers.
func PacketsFromPageFaults(pageFaults float64, maxPackets int) int {
	return Params{MaxPackets: maxPackets}.PacketsFromPageFaults(pageFaults)
}

// PacketsFromCPULoad maps CPU load (percent) to an image packet budget
// with the paper's breakpoints (wrapper over Params).
func PacketsFromCPULoad(cpuLoad float64, maxPackets int) int {
	return Params{MaxPackets: maxPackets}.PacketsFromCPULoad(cpuLoad)
}

// StateKey names the state attributes the default policy consumes.
// They match the hostagent parameter vocabulary.
const (
	StatePageFaults = "page-faults"
	StateCPULoad    = "cpu-load"
	StateBandwidth  = "bandwidth"
	StateSIR        = "sir"
	// StateLoss is the observed data-packet loss fraction in [0, 1],
	// reported by the RTP reception statistics.
	StateLoss = "loss-fraction"
)

// PacketsFromLoss maps an observed loss fraction to a packet budget:
// accepting a long stream over a lossy path wastes the sender's
// bandwidth on packets whose predecessors were dropped (prefix
// decoding stalls at the first gap), so the budget shrinks
// proportionally to the expected usable prefix (wrapper over Params).
func PacketsFromLoss(loss float64, maxPackets int) int {
	return Params{MaxPackets: maxPackets}.PacketsFromLoss(loss)
}

// InstallPolicy installs the standard rule set on the engine with the
// given parameters:
//
//   - "page-fault-budget": Fig 6 mapping, fires when page-faults is
//     observed.
//   - "cpu-load-budget": Fig 7 mapping, fires when cpu-load is
//     observed.  Budgets compose by minimum.
//   - "low-bandwidth-sketch": below SketchBps the modality degrades to
//     sketch; below TextBps, to text (the wired-client analogue of the
//     base station's SIR tiers).
//   - "loss-budget" and "heavy-loss-sketch": observed data loss
//     shrinks the budget and, past HeavyLossSketch, the modality.
func InstallPolicy(e *Engine, p Params) error {
	p = p.WithDefaults()
	rules := []Rule{
		{
			Name:     "page-fault-budget",
			When:     selector.MustCompile("exists(" + StatePageFaults + ")"),
			Priority: 10,
			Then: func(state selector.Attributes, d *Decision) {
				d.ConstrainPackets(p.PacketsFromPageFaults(state[StatePageFaults].Num()))
			},
		},
		{
			Name:     "cpu-load-budget",
			When:     selector.MustCompile("exists(" + StateCPULoad + ")"),
			Priority: 10,
			Then: func(state selector.Attributes, d *Decision) {
				d.ConstrainPackets(p.PacketsFromCPULoad(state[StateCPULoad].Num()))
			},
		},
		{
			Name:     "low-bandwidth-sketch",
			When:     selector.MustCompile(fmt.Sprintf("%s < %g", StateBandwidth, p.SketchBps)),
			Priority: 5,
			Then: func(state selector.Attributes, d *Decision) {
				if d.Modality == "" || d.Modality == media.KindImage {
					d.Modality = media.KindSketch
				}
			},
		},
		{
			Name:     "low-bandwidth-text",
			When:     selector.MustCompile(fmt.Sprintf("%s < %g", StateBandwidth, p.TextBps)),
			Priority: 4, // after the sketch rule so text wins when both fire
			Then: func(state selector.Attributes, d *Decision) {
				d.Modality = media.KindText
			},
		},
		{
			Name:     "loss-budget",
			When:     selector.MustCompile("exists(" + StateLoss + ")"),
			Priority: 9,
			Then: func(state selector.Attributes, d *Decision) {
				d.ConstrainPackets(p.PacketsFromLoss(state[StateLoss].Num()))
			},
		},
		{
			Name:     "heavy-loss-sketch",
			When:     selector.MustCompile(fmt.Sprintf("%s >= %g", StateLoss, p.HeavyLossSketch)),
			Priority: 3,
			Then: func(state selector.Attributes, d *Decision) {
				if d.Modality == "" || d.Modality == media.KindImage {
					d.Modality = media.KindSketch
				}
			},
		},
	}
	for _, r := range rules {
		if err := e.AddRule(r); err != nil {
			return err
		}
	}
	return nil
}

// DefaultPolicy installs the standard rules with the paper's
// parameters (wrapper over InstallPolicy for existing callers).
func DefaultPolicy(e *Engine, maxPackets int, sketchBps, textBps float64) error {
	return InstallPolicy(e, Params{
		MaxPackets: maxPackets, SketchBps: sketchBps, TextBps: textBps,
	})
}
