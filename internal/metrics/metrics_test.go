package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 8)
	s.Add(3, 8)
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	if s.YAt(2) != 8 {
		t.Errorf("YAt(2) = %g", s.YAt(2))
	}
	if !math.IsNaN(s.YAt(99)) {
		t.Error("missing x should be NaN")
	}
	sum := s.Summarize()
	if sum.Count != 3 || sum.Min != 8 || sum.Max != 10 || math.Abs(sum.Mean-26.0/3) > 1e-9 {
		t.Errorf("summary: %+v", sum)
	}
	if !s.MonotoneNonIncreasing(0) {
		t.Error("series is non-increasing")
	}
	if s.MonotoneNonDecreasing(0) {
		t.Error("series is not non-decreasing")
	}
	s.Add(4, 9)
	if s.MonotoneNonIncreasing(0) {
		t.Error("rise should break monotonicity")
	}
	if !s.MonotoneNonIncreasing(1.5) {
		t.Error("rise within eps should pass")
	}
	if (&Series{}).Summarize().Count != 0 {
		t.Error("empty summary")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("page-faults")
	tb.Add("packets", 30, 16)
	tb.Add("packets", 100, 1)
	tb.Add("bpp", 30, 2.1)
	tb.Add("bpp", 100, 0.125)
	tb.Add("cr", 30, math.Inf(1))

	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows: %q", out)
	}
	if !strings.Contains(lines[0], "page-faults") || !strings.Contains(lines[0], "packets") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "30") || !strings.Contains(lines[1], "16") ||
		!strings.Contains(lines[1], "2.100") || !strings.Contains(lines[1], "inf") {
		t.Errorf("row 30: %q", lines[1])
	}
	if !strings.Contains(lines[2], "100") || !strings.Contains(lines[2], "0.125") {
		t.Errorf("row 100: %q", lines[2])
	}

	names := tb.SeriesNames()
	if len(names) != 3 || names[0] != "packets" || names[2] != "cr" {
		t.Errorf("names: %v", names)
	}
	// Series identity: same name returns same series.
	tb.Series("packets").Add(50, 8)
	if tb.Series("packets").Len() != 3 {
		t.Error("Series should return the same instance")
	}
}

// Rendering must agree with YAt semantics (first sample at x wins) now
// that renderers use a per-series x→index map instead of scanning.
func TestRenderMatchesYAt(t *testing.T) {
	tb := NewTable("x")
	s := tb.Series("dup")
	s.Add(1, 5)
	s.Add(1, 99) // duplicate x: first occurrence must render
	s.Add(2, 7)
	tb.Add("sparse", 3, 4) // only present at x=3

	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := []string{"x,dup,sparse", "1,5,", "2,7,", "3,,4"}
	if len(lines) != len(want) {
		t.Fatalf("csv: %q", sb.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}

	text := tb.String()
	if !strings.Contains(text, "5") || strings.Contains(text, "99") {
		t.Errorf("text render should show first duplicate only: %q", text)
	}
}

// Large-table render should scale linearly in rows; this is a sanity
// bound, not a benchmark — quadratic YAt scans blew well past it.
func TestRenderLargeTable(t *testing.T) {
	tb := NewTable("x")
	const rows = 2000
	for _, name := range []string{"a", "b", "c"} {
		s := tb.Series(name)
		for i := 0; i < rows; i++ {
			s.Add(float64(i), float64(i)*2)
		}
	}
	out := tb.String()
	if got := strings.Count(out, "\n"); got != rows+1 {
		t.Fatalf("rendered %d lines, want %d", got, rows+1)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("x,axis") // comma forces escaping
	tb.Add("a", 1, 10)
	tb.Add(`b"q`, 1, 0.5)
	tb.Add("a", 2, 20)

	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv: %q", sb.String())
	}
	if lines[0] != `"x,axis",a,"b""q"` {
		t.Errorf("header: %q", lines[0])
	}
	if lines[1] != "1,10,0.500" {
		t.Errorf("row 1: %q", lines[1])
	}
	if lines[2] != "2,20," { // missing cell stays empty
		t.Errorf("row 2: %q", lines[2])
	}
}
