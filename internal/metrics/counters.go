package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter, safe for
// concurrent use.  Hot paths hold a *Counter and pay one atomic add per
// event; the registry is only consulted at lookup time.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter (benchmarks measuring deltas).
func (c *Counter) Reset() { c.v.Store(0) }

// CounterSet is a registry of named counters.
type CounterSet struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewCounterSet returns an empty registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{counters: make(map[string]*Counter)}
}

// Counter returns (creating on demand) the named counter.
func (s *CounterSet) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Each calls fn for every registered counter.  The set's lock is held
// for the duration, so fn must not call back into the registry; hot
// consumers (the timeline sampler) grab handles here once and read
// them lock-free afterwards.  Iteration order is unspecified.
func (s *CounterSet) Each(fn func(name string, c *Counter)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		fn(name, c)
	}
}

// Len reports the number of registered counters.
func (s *CounterSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counters)
}

// Snapshot returns the current value of every registered counter.
func (s *CounterSet) Snapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Load()
	}
	return out
}

// Render writes the counters as "name value" lines in sorted order.
func (s *CounterSet) Render(w io.Writer) error {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%s %d\n", name, snap[name])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// defaultCounters is the process-global registry the substrate's fast
// paths report into (selector cache hits, flatten reuse, pooled-buffer
// reuse, fan-out activity).
var defaultCounters = NewCounterSet()

// C returns the named counter from the process-global registry.
func C(name string) *Counter { return defaultCounters.Counter(name) }

// Counters returns the process-global counter snapshot.
func Counters() map[string]uint64 { return defaultCounters.Snapshot() }

// EachCounter iterates the process-global registry (see CounterSet.Each
// for the locking contract).
func EachCounter(fn func(name string, c *Counter)) { defaultCounters.Each(fn) }

// NumCounters reports the process-global registry's size — a cheap
// change detector for consumers that cache handle lists.
func NumCounters() int { return defaultCounters.Len() }

// Names of the dispatch fast-path counters (see DESIGN.md "Dispatch
// fast path").  Declared here so instrumented packages and tools agree
// on spelling.
const (
	CtrSelectorCacheHit  = "selector.cache.hit"
	CtrSelectorCacheMiss = "selector.cache.miss"
	CtrFlattenReuse      = "profile.flatten.reuse"
	CtrFlattenBuild      = "profile.flatten.build"
	CtrEncodeBufReuse    = "message.encodebuf.reuse"
	CtrEncodeBufAlloc    = "message.encodebuf.alloc"
	// Dispatch-pool counters (exposed as aqos_dispatch_*; the pool
	// replaced the base station's per-batch fan-out goroutines).
	CtrDispatchBatches    = "dispatch.batches"
	CtrDispatchJobs       = "dispatch.jobs"
	CtrDispatchQueueDrops = "dispatch.queue.drops"
	// Collection-tracker counters (image reassembly bookkeeping).
	CtrCollectEvictions = "registry.collect.evictions"
	// Gap-repair counters (internal/repair, DESIGN.md §10): NACK-style
	// history requests issued, gaps closed by a replay, and gaps
	// abandoned after the retry budget (exposed as aqos_repair_*).
	CtrRepairRequests  = "repair.requests"
	CtrRepairSuccess   = "repair.success"
	CtrRepairAbandoned = "repair.abandoned"
	// Duplicate frames dropped before the session archive instead of
	// being committed as second events (coordinator straggler path).
	CtrArchiveDupDrops = "archive.duplicate.drops"
	// Flight-recorder counters (DESIGN.md §11): hops dropped past the
	// per-trace cap, wire trace extensions merged on receive, and
	// malformed extensions rejected.
	CtrTraceHopsDropped = "trace.hops.dropped"
	CtrTraceWireMerged  = "trace.wire.merged"
	CtrTraceWireBad     = "trace.wire.bad"
	// Match-index counters (internal/matchindex, DESIGN.md §12):
	// counting-match candidates scanned, brute-force fallback
	// evaluations (full-scan plans, disabled-index scans and
	// per-candidate residue checks), and client reindex events
	// (exposed as aqos_match_index_*).
	CtrMatchIndexCandidates = "match.index.candidates"
	CtrMatchIndexFallback   = "match.index.fallback"
	CtrMatchIndexReindex    = "match.index.reindex"
	// SLO conformance counters (internal/slo, DESIGN.md §13): state
	// transitions, entries into the violated state, violated→recovered
	// recoveries, and the adaptation-effectiveness verdicts (did the
	// adaptation restore conformance within the recovery deadline).
	CtrSLOTransitions        = "slo.transitions"
	CtrSLOViolations         = "slo.violations"
	CtrSLORecoveries         = "slo.recoveries"
	CtrAdaptationEffective   = "slo.adaptation.effective"
	CtrAdaptationIneffective = "slo.adaptation.ineffective"
	// Session-recorder counters (internal/obs record.go, DESIGN.md
	// §13): events accepted into the JSONL stream and events shed when
	// the bounded buffer was full.
	CtrRecordAppended = "record.appended"
	CtrRecordDropped  = "record.dropped"
	// Gauge-cardinality cap (internal/obs, DESIGN.md §16): sets against
	// a labeled gauge family already at its child limit, folded into the
	// family's min/mean/max overflow aggregate instead of registering.
	CtrGaugeCardinalityDropped = "gauge.cardinality.dropped"
)

// SLOClientViolations names the per-client violation counter (exposed
// as aqos_slo_client_violations{client="..."}); the client ID is
// escaped so hostile names cannot break the exposition format.
func SLOClientViolations(client string) string {
	return `slo.client.violations{client="` + EscapeLabel(client) + `"}`
}

// RuleFired names the per-rule inference firing counter (exposed as
// aqos_inference_rule_fired{rule="..."}); the label-bearing family is
// pre-touched per rule at AddRule time, not here.
func RuleFired(rule string) string {
	return `inference.rule.fired{rule="` + EscapeLabel(rule) + `"}`
}

// EscapeLabel escapes a label value per the Prometheus text
// exposition format: backslash, double-quote and newline become \\,
// \" and \n.  Every metric name that embeds a runtime string in a
// label (client IDs, sender names, hosts — some arrive off the wire)
// must pass it through here, or a hostile name could split a sample
// line or forge extra labels.  Values without escapable bytes are
// returned unchanged, allocation-free.
func EscapeLabel(v string) string {
	i := 0
	for ; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			break
		}
	}
	if i == len(v) {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	sb.WriteString(v[:i])
	for ; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// UnescapeLabel reverses EscapeLabel (exposition-format parsers and
// round-trip tests).
func UnescapeLabel(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default: // unknown escape: keep both bytes
				sb.WriteByte(c)
				sb.WriteByte(v[i])
			}
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// defaultCounterNames lists every unlabeled counter family declared
// above.  TouchDefaults registers them all, so each aqos_* counter is
// present (at zero) in /metrics from process start instead of
// appearing only after its first event.  Keep in sync with the
// constants; TestDefaultCounterFamiliesPreTouched guards the list.
var defaultCounterNames = []string{
	CtrSelectorCacheHit, CtrSelectorCacheMiss,
	CtrFlattenReuse, CtrFlattenBuild,
	CtrEncodeBufReuse, CtrEncodeBufAlloc,
	CtrDispatchBatches, CtrDispatchJobs, CtrDispatchQueueDrops,
	CtrCollectEvictions,
	CtrRepairRequests, CtrRepairSuccess, CtrRepairAbandoned,
	CtrArchiveDupDrops,
	CtrTraceHopsDropped, CtrTraceWireMerged, CtrTraceWireBad,
	CtrMatchIndexCandidates, CtrMatchIndexFallback, CtrMatchIndexReindex,
	CtrSLOTransitions, CtrSLOViolations, CtrSLORecoveries,
	CtrAdaptationEffective, CtrAdaptationIneffective,
	CtrRecordAppended, CtrRecordDropped,
	CtrGaugeCardinalityDropped,
}

// TouchDefaults pre-registers every declared counter family in the
// process-global registry.  It runs at init (so exposition always
// shows complete families) and is idempotent.
func TouchDefaults() {
	for _, name := range defaultCounterNames {
		defaultCounters.Counter(name)
	}
}

func init() { TouchDefaults() }
