package metrics

import (
	"strings"
	"testing"
)

func TestEscapeLabelRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"plain-client-7",
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all three: \ " ` + "\n" + ` mixed`,
		`trailing backslash\`,
		"\n\"\\",
	}
	for _, in := range cases {
		esc := EscapeLabel(in)
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("EscapeLabel(%q) = %q carries a raw newline", in, esc)
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] == '\\' {
				i++ // whatever follows is escaped
				continue
			}
			if esc[i] == '"' {
				t.Errorf("EscapeLabel(%q) = %q carries an unescaped quote", in, esc)
			}
		}
		if got := UnescapeLabel(esc); got != in {
			t.Errorf("round trip %q -> %q -> %q", in, esc, got)
		}
	}
}

func TestEscapeLabelCleanValueUnchanged(t *testing.T) {
	const v = "wired-0.site_a:42"
	if got := EscapeLabel(v); got != v {
		t.Fatalf("EscapeLabel(%q) = %q, want unchanged", v, got)
	}
	if n := testing.AllocsPerRun(100, func() { _ = EscapeLabel(v) }); n != 0 {
		t.Fatalf("EscapeLabel on a clean value allocates %.1f per run, want 0", n)
	}
}

func TestUnescapeLabelUnknownEscapeKeepsBytes(t *testing.T) {
	if got := UnescapeLabel(`a\xb`); got != `a\xb` {
		t.Fatalf("unknown escape: got %q, want both bytes kept", got)
	}
	if got := UnescapeLabel(`lone trailing \`); got != `lone trailing \` {
		t.Fatalf("trailing backslash: got %q", got)
	}
}

func TestLabeledCounterNameConstructorsEscape(t *testing.T) {
	hostile := "evil\"} forged_metric 1\n"
	for _, tc := range []struct{ name, prefix string }{
		{SLOClientViolations(hostile), `slo.client.violations{client="`},
		{RuleFired(hostile), `inference.rule.fired{rule="`},
	} {
		if strings.ContainsRune(tc.name, '\n') {
			t.Errorf("%q carries a raw newline: a hostile id can split the sample line", tc.name)
		}
		if !strings.HasPrefix(tc.name, tc.prefix) || !strings.HasSuffix(tc.name, `"}`) {
			t.Fatalf("%q lost its label-block shape", tc.name)
		}
		val := strings.TrimSuffix(strings.TrimPrefix(tc.name, tc.prefix), `"}`)
		if got := UnescapeLabel(val); got != hostile {
			t.Errorf("embedded value round trip = %q, want %q", got, hostile)
		}
	}
	if got := SLOClientViolations("c1"); got != `slo.client.violations{client="c1"}` {
		t.Errorf("SLOClientViolations(c1) = %q", got)
	}
}
