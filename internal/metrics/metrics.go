// Package metrics provides the experiment instrumentation used by the
// benchmark harness: named series, summaries and fixed-width table
// rendering so each bench prints the rows/curves the paper's figures
// plot.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Series is one named curve: ordered (x, y) samples.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the first sample at x (NaN if absent).
func (s *Series) YAt(x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// xIndex builds a map from x value to the index of its first sample.
// Renderers build this once per series per render so each cell lookup
// is O(1) instead of a linear scan over the series.
func (s *Series) xIndex() map[float64]int {
	idx := make(map[float64]int, len(s.X))
	for i, x := range s.X {
		if _, ok := idx[x]; !ok {
			idx[x] = i
		}
	}
	return idx
}

// Summary describes a series' y values.
type Summary struct {
	Count          int
	Min, Max, Mean float64
}

// Summarize computes a summary of the series' y values.
func (s *Series) Summarize() Summary {
	if len(s.Y) == 0 {
		return Summary{}
	}
	out := Summary{Count: len(s.Y), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, y := range s.Y {
		if y < out.Min {
			out.Min = y
		}
		if y > out.Max {
			out.Max = y
		}
		sum += y
	}
	out.Mean = sum / float64(len(s.Y))
	return out
}

// MonotoneNonIncreasing reports whether y never rises along the series
// (within tolerance eps) — the shape check used for the Fig 6/7 curves.
func (s *Series) MonotoneNonIncreasing(eps float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]+eps {
			return false
		}
	}
	return true
}

// MonotoneNonDecreasing reports whether y never falls along the series.
func (s *Series) MonotoneNonDecreasing(eps float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-eps {
			return false
		}
	}
	return true
}

// Table collects series sharing an x axis and renders them as an
// aligned text table, one row per x value.
type Table struct {
	mu     sync.Mutex
	XLabel string
	series []*Series
	byName map[string]*Series
}

// NewTable creates a table with the given x-axis label.
func NewTable(xLabel string) *Table {
	return &Table{XLabel: xLabel, byName: make(map[string]*Series)}
}

// Series returns (creating on demand) the named series.
func (t *Table) Series(name string) *Series {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byName[name]; ok {
		return s
	}
	s := &Series{Name: name}
	t.series = append(t.series, s)
	t.byName[name] = s
	return s
}

// Add appends y under the named series at x.
func (t *Table) Add(name string, x, y float64) {
	t.Series(name).Add(x, y)
}

// SeriesNames lists the series in insertion order.
func (t *Table) SeriesNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, len(t.series))
	for i, s := range t.series {
		names[i] = s.Name
	}
	return names
}

// axisLocked returns the distinct x values in ascending order plus one
// x→sample-index map per series, built once so rendering an n-row,
// k-series table costs O(n·k) cell lookups rather than O(n·k·n) scans.
func (t *Table) axisLocked() (xs []float64, indexes []map[float64]int) {
	xsSet := make(map[float64]bool)
	indexes = make([]map[float64]int, len(t.series))
	for i, s := range t.series {
		indexes[i] = s.xIndex()
		for x := range indexes[i] {
			xsSet[x] = true
		}
	}
	xs = make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs, indexes
}

// Render writes the table: a header row, then one row per distinct x
// in ascending order with each series' value (blank when missing).
func (t *Table) Render(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	xs, indexes := t.axisLocked()

	cols := make([]string, 0, len(t.series)+1)
	cols = append(cols, t.XLabel)
	for _, s := range t.series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 10 {
			widths[i] = 10
		}
	}

	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}

	if err := writeRow(cols); err != nil {
		return err
	}
	for _, x := range xs {
		cells := make([]string, 0, len(cols))
		cells = append(cells, formatNum(x))
		for i, s := range t.series {
			if j, ok := indexes[i][x]; ok {
				cells = append(cells, formatNum(s.Y[j]))
			} else {
				cells = append(cells, "")
			}
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as comma-separated values with a header
// row, suitable for plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	xs, indexes := t.axisLocked()

	var sb strings.Builder
	sb.WriteString(csvEscape(t.XLabel))
	for _, s := range t.series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Name))
	}
	sb.WriteByte('\n')
	for _, x := range xs {
		sb.WriteString(formatNum(x))
		for i, s := range t.series {
			sb.WriteByte(',')
			if j, ok := indexes[i][x]; ok {
				sb.WriteString(formatNum(s.Y[j]))
			}
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return "metrics: render error: " + err.Error()
	}
	return sb.String()
}

func formatNum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
