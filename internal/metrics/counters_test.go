package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	s := NewCounterSet()
	c := s.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("count = %d", c.Load())
	}
	if s.Counter("x") != c {
		t.Error("same name must return the same counter")
	}
	s.Counter("y").Inc()
	snap := s.Snapshot()
	if snap["x"] != 5 || snap["y"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Error("reset failed")
	}

	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x 0\ny 1\n" {
		t.Errorf("render = %q", sb.String())
	}
}

func TestCounterConcurrent(t *testing.T) {
	s := NewCounterSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared = %d", got)
	}
}

// TestDefaultCounterFamiliesPreTouched guards the pre-touch contract:
// every declared counter family must be present in the global snapshot
// from process start, before any instrumented code path has run.
func TestDefaultCounterFamiliesPreTouched(t *testing.T) {
	snap := Counters()
	for _, name := range defaultCounterNames {
		if _, ok := snap[name]; !ok {
			t.Errorf("counter family %q not pre-touched at init", name)
		}
	}
	if len(defaultCounterNames) < 20 {
		t.Errorf("defaultCounterNames has %d entries; did a new Ctr* constant miss the list?", len(defaultCounterNames))
	}
}

func TestGlobalCounters(t *testing.T) {
	C("test.global").Add(3)
	if Counters()["test.global"] < 3 {
		t.Error("global counter not visible in snapshot")
	}
}
