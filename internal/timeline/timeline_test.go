package timeline

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// newVirtualTimeline builds a timeline on a fresh virtual clock with a
// small ring — the workhorse fixture.
func newVirtualTimeline(window time.Duration, retention int) (*Timeline, *clock.Virtual) {
	clk := clock.NewVirtual(clock.DefaultEpoch)
	return New(Config{Window: window, Retention: retention, Clock: clk}), clk
}

func TestCounterWindows(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var c metrics.Counter
	c.Add(7) // pre-track activity must not leak into the first window
	tl.TrackCounter("reqs", &c)
	tl.Start()

	c.Add(3)
	clk.Advance(time.Second) // closes [0s,1s): delta 3
	c.Add(5)
	clk.Advance(time.Second) // closes [1s,2s): delta 5
	clk.Advance(time.Second) // closes [2s,3s): delta 0

	got := tl.Query(Query{Series: []string{"reqs"}})
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1", len(got))
	}
	pts := got[0].Points
	if len(pts) != 3 {
		t.Fatalf("windows = %d, want 3", len(pts))
	}
	wantDeltas := []float64{3, 5, 0}
	for i, p := range pts {
		if p.Value != wantDeltas[i] {
			t.Errorf("window %d delta = %v, want %v", i, p.Value, wantDeltas[i])
		}
		if p.Rate != wantDeltas[i] {
			t.Errorf("window %d rate = %v, want %v (1s windows)", i, p.Rate, wantDeltas[i])
		}
		wantStart := clock.DefaultEpoch.Add(time.Duration(i) * time.Second).UnixNano()
		if p.StartNS != wantStart || p.EndNS != wantStart+int64(time.Second) {
			t.Errorf("window %d bounds = [%d,%d), want [%d,%d)",
				i, p.StartNS, p.EndNS, wantStart, wantStart+int64(time.Second))
		}
	}
	if got[0].Kind != "counter" {
		t.Errorf("kind = %q, want counter", got[0].Kind)
	}
}

func TestGaugeAndDerivedWindows(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var g obs.Gauge
	var level float64
	tl.TrackGauge("depth", &g)
	tl.TrackFunc("level", func() float64 { return level })
	tl.Start()

	g.Set(4.5)
	level = 1
	clk.Advance(time.Second)
	g.Set(2.25)
	level = 2
	clk.Advance(time.Second)

	got := tl.Query(Query{})
	if len(got) != 2 {
		t.Fatalf("series = %d, want 2", len(got))
	}
	// Name-sorted: depth before level.
	if got[0].Name != "depth" || got[1].Name != "level" {
		t.Fatalf("names = %q,%q, want depth,level", got[0].Name, got[1].Name)
	}
	if got[0].Points[0].Value != 4.5 || got[0].Points[1].Value != 2.25 {
		t.Errorf("gauge windows = %v,%v, want 4.5,2.25", got[0].Points[0].Value, got[0].Points[1].Value)
	}
	if got[1].Points[0].Value != 1 || got[1].Points[1].Value != 2 {
		t.Errorf("derived windows = %v,%v, want 1,2", got[1].Points[0].Value, got[1].Points[1].Value)
	}
	if got[0].Points[0].Rate != 0 {
		t.Errorf("gauge rate = %v, want 0 (rates are for counters/histograms)", got[0].Points[0].Rate)
	}
}

func TestHistogramWindowedQuantiles(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var h obs.Histogram
	tl.TrackHistogram("lat", &h)
	tl.Start()

	// Window 1: fast observations.  Window 2: slow ones.  The windowed
	// p99 must track each window, not the lifetime distribution.
	for i := 0; i < 100; i++ {
		h.Observe(1_000)
	}
	clk.Advance(time.Second)
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	clk.Advance(time.Second)
	clk.Advance(time.Second) // empty window

	got := tl.Query(Query{Series: []string{"lat"}})
	pts := got[0].Points
	if len(pts) != 3 {
		t.Fatalf("windows = %d, want 3", len(pts))
	}
	if pts[0].Count != 100 || pts[1].Count != 100 || pts[2].Count != 0 {
		t.Fatalf("counts = %d,%d,%d, want 100,100,0", pts[0].Count, pts[1].Count, pts[2].Count)
	}
	// Log-bucketed: quantiles land within a power-of-two bucket.
	if pts[0].P99 > 4_096 {
		t.Errorf("window 1 p99 = %v, want <= 4096 (fast window)", pts[0].P99)
	}
	if pts[1].P99 < 500_000 {
		t.Errorf("window 2 p99 = %v, want >= 500000 (slow window)", pts[1].P99)
	}
	if pts[2].P99 != 0 || pts[2].Mean != 0 {
		t.Errorf("empty window p99/mean = %v/%v, want 0/0", pts[2].P99, pts[2].Mean)
	}
	lifetime := h.Snapshot().Quantile(0.50)
	if pts[0].P50 >= lifetime {
		t.Errorf("window 1 p50 %v should sit below the lifetime p50 %v", pts[0].P50, lifetime)
	}
	if pts[0].Rate != 100 {
		t.Errorf("window 1 rate = %v, want 100/s", pts[0].Rate)
	}
	if pts[1].Mean != 1_000_000 {
		t.Errorf("window 2 mean = %v, want 1000000", pts[1].Mean)
	}
}

func TestTrackAllRescan(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	tl.TrackAll()
	tl.Start()

	// Metrics registered after TrackAll are picked up at the next window
	// close (with that window zeroed — deltas flow from the next one, so
	// pre-tracking history never dumps into a single window).
	c := metrics.C("timeline.test.rescan")
	g := obs.G("timeline_test_rescan_gauge")
	h := obs.H("timeline_test_rescan_hist")
	clk.Advance(time.Second) // close 1: rescan adopts the new series
	c.Add(2)
	g.Set(9)
	h.Observe(50)
	clk.Advance(time.Second) // close 2: first window with their deltas

	byName := make(map[string]SeriesData)
	for _, sd := range tl.Query(Query{Contains: []string{"rescan"}}) {
		byName[sd.Name] = sd
	}
	if sd, ok := byName["timeline.test.rescan"]; !ok || sd.Points[len(sd.Points)-1].Value != 2 {
		t.Errorf("rescanned counter missing or wrong: %+v", sd)
	}
	if sd, ok := byName["timeline_test_rescan_gauge"]; !ok || sd.Points[len(sd.Points)-1].Value != 9 {
		t.Errorf("rescanned gauge missing or wrong: %+v", sd)
	}
	if sd, ok := byName["timeline_test_rescan_hist"]; !ok || sd.Points[len(sd.Points)-1].Count != 1 {
		t.Errorf("rescanned histogram missing or wrong: %+v", sd)
	}
}

func TestRingWrapAround(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 4)
	var c metrics.Counter
	tl.TrackCounter("c", &c)
	tl.Start()
	for i := 1; i <= 6; i++ {
		c.Add(uint64(i))
		clk.Advance(time.Second)
	}
	if tl.WindowCount() != 4 {
		t.Fatalf("WindowCount = %d, want 4 (retention)", tl.WindowCount())
	}
	pts := tl.Query(Query{})[0].Points
	if len(pts) != 4 {
		t.Fatalf("windows = %d, want 4", len(pts))
	}
	// Oldest two (deltas 1, 2) evicted; 3..6 retained oldest-first.
	for i, want := range []float64{3, 4, 5, 6} {
		if pts[i].Value != want {
			t.Errorf("window %d delta = %v, want %v", i, pts[i].Value, want)
		}
	}
}

func TestStopHaltsSampling(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var c metrics.Counter
	tl.TrackCounter("c", &c)
	tl.Start()
	clk.Advance(2 * time.Second)
	tl.Stop()
	clk.Advance(5 * time.Second)
	if tl.WindowCount() != 2 {
		t.Errorf("WindowCount after Stop = %d, want 2", tl.WindowCount())
	}
	tl.Start() // restartable
	clk.Advance(time.Second)
	if tl.WindowCount() != 3 {
		t.Errorf("WindowCount after restart = %d, want 3", tl.WindowCount())
	}
}

func TestFlushClosesPartialWindow(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var c metrics.Counter
	tl.TrackCounter("c", &c)

	tl.Flush() // no time passed: nothing to close
	if tl.WindowCount() != 0 {
		t.Fatalf("WindowCount after no-op Flush = %d, want 0", tl.WindowCount())
	}
	c.Add(4)
	clk.Advance(300 * time.Millisecond)
	tl.Flush()
	if tl.WindowCount() != 1 {
		t.Fatalf("WindowCount after Flush = %d, want 1", tl.WindowCount())
	}
	p := tl.Query(Query{})[0].Points[0]
	if p.Value != 4 {
		t.Errorf("partial window delta = %v, want 4", p.Value)
	}
	if got := p.EndNS - p.StartNS; got != int64(300*time.Millisecond) {
		t.Errorf("partial window width = %dns, want 300ms", got)
	}
}

func TestSampleNowIgnoresStartState(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var c metrics.Counter
	tl.TrackCounter("c", &c)
	// Discrete-event callers drive window closes themselves.
	for i := 0; i < 3; i++ {
		c.Inc()
		clk.Advance(250 * time.Millisecond)
		tl.SampleNow()
	}
	if tl.WindowCount() != 3 {
		t.Fatalf("WindowCount = %d, want 3", tl.WindowCount())
	}
	for i, p := range tl.Query(Query{})[0].Points {
		if p.Value != 1 {
			t.Errorf("window %d delta = %v, want 1", i, p.Value)
		}
	}
}

func TestDuplicateTrackIgnored(t *testing.T) {
	tl, _ := newVirtualTimeline(time.Second, 4)
	var c1, c2 metrics.Counter
	tl.TrackCounter("dup", &c1)
	tl.TrackCounter("dup", &c2) // first wins
	var g obs.Gauge
	tl.TrackGauge("dup", &g) // cross-kind duplicate too
	if tl.SeriesCount() != 1 {
		t.Fatalf("SeriesCount = %d, want 1", tl.SeriesCount())
	}
	c1.Add(5)
	tl.SampleNow()
	if v := tl.Query(Query{})[0].Points[0].Value; v != 5 {
		t.Errorf("delta = %v, want 5 (from the first registration)", v)
	}
}

func TestQueryFilters(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 16)
	var a, b, c metrics.Counter
	tl.TrackCounter("alpha.sent", &a)
	tl.TrackCounter("beta.sent", &b)
	tl.TrackCounter("gamma.drop", &c)
	tl.Start()
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
	}

	if got := tl.Query(Query{Series: []string{"beta.sent"}}); len(got) != 1 || got[0].Name != "beta.sent" {
		t.Errorf("exact filter: %+v", got)
	}
	if got := tl.Query(Query{Contains: []string{".sent"}}); len(got) != 2 {
		t.Errorf("contains filter matched %d series, want 2", len(got))
	}
	// Series and Contains compose as a union.
	if got := tl.Query(Query{Series: []string{"gamma.drop"}, Contains: []string{"alpha"}}); len(got) != 2 {
		t.Errorf("union filter matched %d series, want 2", len(got))
	}
	if got := tl.Query(Query{MaxSeries: 2}); len(got) != 2 || got[0].Name != "alpha.sent" {
		t.Errorf("MaxSeries: %+v", got)
	}
	if got := tl.Query(Query{MaxWindows: 2}); len(got[0].Points) != 2 {
		t.Errorf("MaxWindows kept %d windows, want 2", len(got[0].Points))
	}
	// MaxWindows keeps the most recent windows.
	latest := tl.Query(Query{MaxWindows: 1})[0].Points[0]
	wantEnd := clock.DefaultEpoch.Add(5 * time.Second).UnixNano()
	if latest.EndNS != wantEnd {
		t.Errorf("MaxWindows=1 end = %d, want %d", latest.EndNS, wantEnd)
	}
	// Since/Until bound by window overlap.
	mid := clock.DefaultEpoch.Add(2 * time.Second).UnixNano()
	if got := tl.Query(Query{SinceNS: mid}); len(got[0].Points) != 3 {
		t.Errorf("SinceNS kept %d windows, want 3", len(got[0].Points))
	}
	if got := tl.Query(Query{UntilNS: mid}); len(got[0].Points) != 2 {
		t.Errorf("UntilNS kept %d windows, want 2", len(got[0].Points))
	}
}

func TestEnableActiveDisable(t *testing.T) {
	Disable()
	if Active() != nil {
		t.Fatal("Active should be nil when no timeline is enabled")
	}
	tl, _ := newVirtualTimeline(time.Second, 4)
	Enable(tl)
	if Active() != tl {
		t.Fatal("Active should return the enabled timeline")
	}
	Disable()
	if Active() != nil {
		t.Fatal("Active should be nil after Disable")
	}
}

func TestWriteTextRendersSparklines(t *testing.T) {
	tl, clk := newVirtualTimeline(time.Second, 8)
	var c metrics.Counter
	tl.TrackCounter("sent", &c)
	tl.Start()
	for i := 0; i < 4; i++ {
		c.Add(uint64(i * i))
		clk.Advance(time.Second)
	}
	var buf bytes.Buffer
	if err := tl.WriteText(&buf, Query{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sent") || !strings.Contains(out, "counter") {
		t.Errorf("text output missing series row:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("text output missing sparkline:\n%s", out)
	}
}
