package timeline

import (
	"testing"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// TestDisabledPathZeroAllocs pins the house rule for call sites: with
// no timeline enabled, the check they pay is one atomic load and zero
// allocations.
func TestDisabledPathZeroAllocs(t *testing.T) {
	Disable()
	var sink *Timeline
	allocs := testing.AllocsPerRun(1000, func() {
		if tl := Active(); tl != nil {
			sink = tl
		}
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f per check, want 0", allocs)
	}
	_ = sink
}

// populateGuardTimeline tracks a representative mixed series set: 8
// counters, 8 gauges, 4 histograms and 2 derived series.
func populateGuardTimeline(tl *Timeline) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range names {
		var c metrics.Counter
		c.Add(12345)
		tl.TrackCounter("ctr."+n, &c)
		var g obs.Gauge
		g.Set(3.25)
		tl.TrackGauge("gauge."+n, &g)
	}
	for _, n := range names[:4] {
		h := &obs.Histogram{}
		for i := 0; i < 100; i++ {
			h.Observe(int64(1000 * (i + 1)))
		}
		tl.TrackHistogram("hist."+n, h)
	}
	tl.TrackFunc("derived.x", func() float64 { return 1.5 })
	tl.TrackFunc("derived.y", func() float64 { return 2.5 })
}

// TestSampleZeroAllocs pins the enabled steady-state house rule: once
// the rings exist, closing a window allocates nothing regardless of the
// series mix (histogram deltas stay on the stack).
func TestSampleZeroAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; measure without -race")
	}
	clk := clock.NewVirtual(clock.DefaultEpoch)
	tl := New(Config{Window: time.Second, Retention: 64, Clock: clk})
	populateGuardTimeline(tl)
	tl.SampleNow() // settle prev snapshots
	allocs := testing.AllocsPerRun(200, func() {
		clk.Advance(time.Second)
		tl.SampleNow()
	})
	if allocs != 0 {
		t.Errorf("steady-state sample allocates %.1f per window, want 0", allocs)
	}
}

// TestTimelineOverheadGuard is the CI guard for the <5% overhead
// budget: a workload that exercises the instrumented hot path
// (counter increments and histogram observes) must not slow by more
// than 5% while an enabled timeline samples it at an aggressive 1ms
// cadence on the wall clock.  Min-of-rounds with re-measurement keeps
// the guard stable on shared CI hosts.
func TestTimelineOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("race detector multiplies atomic-access cost; budget is meaningless")
	}

	var c metrics.Counter
	var h obs.Histogram
	const iters = 200_000
	const rounds = 7

	workload := func() {
		for i := 0; i < iters; i++ {
			c.Inc()
			h.Observe(int64(i)&0xfff + 1)
		}
	}
	minTime := func(fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	tl := New(Config{Window: time.Millisecond, Retention: 128})
	tl.TrackCounter("guard.ctr", &c)
	tl.TrackHistogram("guard.hist", &h)

	workload() // warm-up
	const attempts = 3
	var overhead float64
	for a := 1; a <= attempts; a++ {
		bareBest := minTime(workload)
		tl.Start()
		sampledBest := minTime(workload)
		tl.Stop()
		overhead = float64(sampledBest-bareBest) / float64(bareBest)
		t.Logf("attempt %d: bare %v, sampled %v, overhead %.2f%%",
			a, bareBest, sampledBest, overhead*100)
		if overhead <= 0.05 {
			return
		}
	}
	t.Errorf("timeline sampling overhead %.2f%% exceeds the 5%% budget", overhead*100)
}
