package timeline

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// buildExportFixture runs a deterministic mini-workload and exports it
// as JSONL — called twice by the determinism test.
func buildExportFixture(t *testing.T) []byte {
	t.Helper()
	clk := clock.NewVirtual(clock.DefaultEpoch)
	tl := New(Config{Window: 250 * time.Millisecond, Retention: 32, Clock: clk})
	var sent metrics.Counter
	var depth obs.Gauge
	var lat obs.Histogram
	tl.TrackCounter("sent", &sent)
	tl.TrackGauge("depth", &depth)
	tl.TrackHistogram("lat", &lat)
	tl.Start()
	for i := 0; i < 10; i++ {
		sent.Add(uint64(3 * i))
		depth.Set(float64(i % 4))
		lat.Observe(int64(1000 * (i + 1)))
		clk.Advance(250 * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf, Query{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteJSONLDeterministic(t *testing.T) {
	a := buildExportFixture(t)
	b := buildExportFixture(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same workload exported different bytes:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestWriteJSONLShape(t *testing.T) {
	out := buildExportFixture(t)
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	// Meta line + 3 series × 10 windows.
	if len(lines) != 1+3*10 {
		t.Fatalf("lines = %d, want %d", len(lines), 1+3*10)
	}
	var meta Meta
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta.Schema != SchemaV1 || meta.WindowMS != 250 || meta.Series != 3 || meta.Windows != 10 {
		t.Errorf("meta = %+v", meta)
	}
	var rec struct {
		Series string `json:"series"`
		Kind   string `json:"kind"`
		Point
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("body line: %v", err)
	}
	// Series-major in name order: depth first.
	if rec.Series != "depth" || rec.Kind != "gauge" {
		t.Errorf("first body line = %+v, want depth/gauge", rec)
	}
}

func TestWriteCSVShape(t *testing.T) {
	clk := clock.NewVirtual(clock.DefaultEpoch)
	tl := New(Config{Window: time.Second, Retention: 8, Clock: clk})
	var sent metrics.Counter
	var lat obs.Histogram
	tl.TrackCounter("sent", &sent)
	tl.TrackHistogram("lat", &lat)
	tl.Start()
	for i := 0; i < 3; i++ {
		sent.Inc()
		lat.Observe(1000)
		clk.Advance(time.Second)
	}
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf, Query{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	header := lines[0]
	for _, col := range []string{"window_ms", "lat.count", "lat.p50", "lat.p90", "lat.p99", "sent"} {
		if !strings.Contains(header, col) {
			t.Errorf("csv header missing %q: %s", col, header)
		}
	}
	// x axis is ms relative to the first exported window.
	if !strings.HasPrefix(lines[1], "0,") || !strings.HasPrefix(lines[2], "1000,") {
		t.Errorf("csv x axis rows: %q, %q", lines[1], lines[2])
	}
}

func TestDebugEndpoint(t *testing.T) {
	h := obs.Handler()

	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		return rr
	}

	Disable()
	if body := get("/debug/timeline").Body.String(); !strings.Contains(body, "not enabled") {
		t.Errorf("disabled body = %q, want a not-enabled notice", body)
	}

	tl, clk := newVirtualTimeline(time.Second, 8)
	var c metrics.Counter
	tl.TrackCounter("dbg.sent", &c)
	tl.Start()
	c.Add(6)
	clk.Advance(time.Second)
	Enable(tl)
	defer Disable()

	if body := get("/debug/timeline").Body.String(); !strings.Contains(body, "dbg.sent") {
		t.Errorf("text body missing series:\n%s", body)
	}
	rr := get("/debug/timeline?format=json&series=dbg.sent")
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var doc struct {
		Meta   Meta         `json:"meta"`
		Series []SeriesData `json:"series"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("json body: %v", err)
	}
	if doc.Meta.Series != 1 || len(doc.Series) != 1 || doc.Series[0].Points[0].Value != 6 {
		t.Errorf("json doc = %+v", doc)
	}
	if body := get("/debug/timeline?format=jsonl").Body.String(); !strings.Contains(body, SchemaV1) {
		t.Errorf("jsonl body missing schema header:\n%s", body)
	}
	if body := get("/debug/timeline?format=csv&windows=1").Body.String(); !strings.Contains(body, "dbg.sent") {
		t.Errorf("csv body missing column:\n%s", body)
	}
	// The /debug index advertises the endpoint.
	if body := get("/debug").Body.String(); !strings.Contains(body, "/debug/timeline") {
		t.Errorf("/debug index missing /debug/timeline:\n%s", body)
	}
}
