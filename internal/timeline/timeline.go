// Package timeline is the windowed telemetry store: it periodically
// snapshots tracked metrics — counters, gauges, histograms, derived
// functions — on the clock.Clock seam into a bounded ring of per-window
// deltas, so observability gains a time axis without unbounded memory.
// Counter windows carry deltas (and rates); histogram windows carry
// *windowed* p50/p90/p99 computed from bucket deltas, not the lifetime
// quantiles /metrics exposes.
//
// The store is exposed three ways: the /debug/timeline endpoint
// (debug.go), JSONL/CSV/text exporters for EXPERIMENTS.md figures
// (export.go), and the typed Query API (query.go) the SLO attribution
// bundle consumes.  On a clock.Virtual the sampler is driven by the
// event heap, so qossim and qosreplay produce byte-deterministic
// per-window curves; discrete-event callers that need exact window
// boundaries call SampleNow from their own scheduled events instead of
// Start's fixed cadence.
//
// House rules: the disabled path (timeline.Active() == nil) is one
// atomic load and zero allocations; an enabled steady-state sample is
// zero allocations however many series are tracked (all rings are
// preallocated; verified by TestTimelineSampleZeroAllocs and the CI
// overhead guard).
package timeline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveqos/internal/clock"
	"adaptiveqos/internal/metrics"
	"adaptiveqos/internal/obs"
)

// Defaults for Config.
const (
	DefaultWindow    = time.Second
	DefaultRetention = 600
)

// Config parameterizes a Timeline.
type Config struct {
	// Window is the sampling period Start uses (default 1s).  Callers
	// driving SampleNow themselves may ignore it.
	Window time.Duration
	// Retention is how many closed windows the ring keeps (default 600
	// — ten minutes of 1s windows).
	Retention int
	// Clock schedules the sampler (default clock.Wall).  On a
	// clock.Virtual the ticks ride the event heap deterministically.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Retention <= 0 {
		c.Retention = DefaultRetention
	}
	c.Clock = clock.Or(c.Clock)
	return c
}

// Kind classifies a tracked series.
type Kind uint8

// The series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindDerived
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindDerived:
		return "derived"
	}
	return "unknown"
}

// histWindow is one histogram series' closed window: the observation
// delta plus windowed quantiles computed at close time.
type histWindow struct {
	count         uint64
	sum           uint64
	p50, p90, p99 float64
}

// series is one tracked metric and its preallocated ring.
type series struct {
	name string
	kind Kind

	ctr   *metrics.Counter
	gauge *obs.Gauge
	hist  *obs.Histogram
	fn    func() float64

	prevCount uint64                // counter value at the last window close
	prevSnap  obs.HistogramSnapshot // histogram state at the last window close

	vals []float64    // counter deltas / gauge values / derived values
	hws  []histWindow // histogram windows
}

// winBound is one closed window's [start, end) in clock nanoseconds.
type winBound struct{ startNS, endNS int64 }

// Timeline is the windowed store.  All sampling and registration is
// guarded by one mutex; sampling itself allocates nothing, so the
// critical section is short even with hundreds of series.
type Timeline struct {
	cfg Config
	clk clock.Clock

	mu       sync.Mutex
	series   []*series
	byName   map[string]*series
	trackAll bool
	regSizes [3]int // counter/gauge/histogram registry sizes at last rescan

	bounds  []winBound
	head    int   // next ring slot to write
	filled  int   // closed windows retained (<= Retention)
	lastNS  int64 // start of the currently open window
	timer   clock.Timer
	running bool
}

// New creates a timeline.  The open window starts at the clock's
// current instant; nothing is sampled until a tick (Start) or an
// explicit SampleNow.
func New(cfg Config) *Timeline {
	cfg = cfg.withDefaults()
	t := &Timeline{
		cfg:    cfg,
		clk:    cfg.Clock,
		byName: make(map[string]*series),
		bounds: make([]winBound, cfg.Retention),
	}
	t.lastNS = t.clk.Now().UnixNano()
	return t
}

// Window reports the configured sampling period.
func (t *Timeline) Window() time.Duration { return t.cfg.Window }

// Retention reports the ring capacity in windows.
func (t *Timeline) Retention() int { return t.cfg.Retention }

// WindowCount reports how many closed windows are retained.
func (t *Timeline) WindowCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.filled
}

// SeriesCount reports how many series are tracked.
func (t *Timeline) SeriesCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.series)
}

// Names returns the tracked series names, sorted.
func (t *Timeline) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.series))
	for i, s := range t.series {
		out[i] = s.name
	}
	return out
}

// TrackCounter samples c's per-window delta under name.  The first
// registration of a name wins; duplicates are ignored.  Series
// registered mid-run show zeros for windows closed before they joined.
func (t *Timeline) TrackCounter(name string, c *metrics.Counter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackCounterLocked(name, c)
	t.sortLocked()
}

// TrackGauge samples g's value at each window close under name.
func (t *Timeline) TrackGauge(name string, g *obs.Gauge) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackGaugeLocked(name, g)
	t.sortLocked()
}

// TrackHistogram samples h's per-window observation delta and windowed
// p50/p90/p99 under name.
func (t *Timeline) TrackHistogram(name string, h *obs.Histogram) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackHistogramLocked(name, h)
	t.sortLocked()
}

// TrackFunc samples fn() at each window close under name — derived
// series (a windowed loss ratio, a population count).  fn runs with
// the timeline lock held and must not allocate if the zero-alloc
// sampling contract matters to the caller.
func (t *Timeline) TrackFunc(name string, fn func() float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byName[name]; dup || fn == nil {
		return
	}
	s := &series{name: name, kind: KindDerived, fn: fn, vals: make([]float64, t.cfg.Retention)}
	t.addLocked(s)
	t.sortLocked()
}

// TrackAll tracks the entire registered metrics surface: every
// process-global counter (internal/metrics), gauge and histogram
// (internal/obs).  The registries are rescanned whenever their sizes
// change, so metrics registered after TrackAll are picked up on the
// next window close; the steady-state sample stays allocation-free.
func (t *Timeline) TrackAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackAll = true
	t.rescanLocked()
}

func (t *Timeline) trackCounterLocked(name string, c *metrics.Counter) {
	if _, dup := t.byName[name]; dup || c == nil {
		return
	}
	s := &series{name: name, kind: KindCounter, ctr: c, vals: make([]float64, t.cfg.Retention)}
	s.prevCount = c.Load()
	t.addLocked(s)
}

func (t *Timeline) trackGaugeLocked(name string, g *obs.Gauge) {
	if _, dup := t.byName[name]; dup || g == nil {
		return
	}
	s := &series{name: name, kind: KindGauge, gauge: g, vals: make([]float64, t.cfg.Retention)}
	t.addLocked(s)
}

func (t *Timeline) trackHistogramLocked(name string, h *obs.Histogram) {
	if _, dup := t.byName[name]; dup || h == nil {
		return
	}
	s := &series{name: name, kind: KindHistogram, hist: h, hws: make([]histWindow, t.cfg.Retention)}
	s.prevSnap = h.Snapshot()
	t.addLocked(s)
}

func (t *Timeline) addLocked(s *series) {
	t.series = append(t.series, s)
	t.byName[s.name] = s
}

// sortLocked keeps the series name-sorted so queries and exports are
// deterministic regardless of registration (or map iteration) order.
func (t *Timeline) sortLocked() {
	sort.Slice(t.series, func(i, j int) bool { return t.series[i].name < t.series[j].name })
}

// rescanLocked syncs the tracked set with the global registries.
func (t *Timeline) rescanLocked() {
	metrics.EachCounter(func(name string, c *metrics.Counter) { t.trackCounterLocked(name, c) })
	obs.EachGauge(func(name string, g *obs.Gauge) { t.trackGaugeLocked(name, g) })
	obs.EachHistogram(func(name string, h *obs.Histogram) { t.trackHistogramLocked(name, h) })
	t.regSizes = [3]int{metrics.NumCounters(), obs.NumGauges(), obs.NumHistograms()}
	t.sortLocked()
}

// Start launches the periodic sampler: every Window on the configured
// clock the open window closes into the ring.  A second Start without
// an intervening Stop is a no-op.  On a clock.Virtual the first tick
// is scheduled immediately, so schedule-order determinism holds when
// Start runs before the workload is scheduled.
func (t *Timeline) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return
	}
	t.running = true
	t.lastNS = t.clk.Now().UnixNano()
	t.armLocked()
}

// armLocked schedules the next tick.  AfterFunc rather than NewTicker:
// a Virtual ticker delivers through a channel consumed by an arbitrary
// goroutine (and drops ticks at depth 1), while an AfterFunc fires on
// the goroutine driving the event heap — the determinism contract.
func (t *Timeline) armLocked() {
	t.timer = t.clk.AfterFunc(t.cfg.Window, t.tick)
}

func (t *Timeline) tick() {
	t.mu.Lock()
	if !t.running {
		t.mu.Unlock()
		return
	}
	t.sampleLocked(t.clk.Now().UnixNano())
	t.armLocked()
	t.mu.Unlock()
}

// Stop halts the periodic sampler; the ring and the open window remain
// queryable.  Stop does not close the open window — call Flush for
// that.
func (t *Timeline) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.running {
		return
	}
	t.running = false
	if t.timer != nil {
		t.timer.Stop()
		t.timer = nil
	}
}

// SampleNow closes the open window at the clock's current instant,
// regardless of Start state.  Discrete-event callers (the scenario and
// replay engines) schedule this from their own virtual-clock events to
// get exact window boundaries instead of Start's fixed cadence.
func (t *Timeline) SampleNow() {
	t.mu.Lock()
	t.sampleLocked(t.clk.Now().UnixNano())
	t.mu.Unlock()
}

// Flush closes the open window if any time has passed since the last
// close — the partial tail a run's final export should include.
func (t *Timeline) Flush() {
	t.mu.Lock()
	if now := t.clk.Now().UnixNano(); now > t.lastNS {
		t.sampleLocked(now)
	}
	t.mu.Unlock()
}

// sampleLocked closes the open window [lastNS, nowNS) into the ring.
// Zero allocations in steady state: rings are preallocated, histogram
// snapshots and deltas live on the stack, and the TrackAll rescan only
// runs when a registry size changed.
func (t *Timeline) sampleLocked(nowNS int64) {
	if t.trackAll {
		if t.regSizes != [3]int{metrics.NumCounters(), obs.NumGauges(), obs.NumHistograms()} {
			t.rescanLocked()
		}
	}
	slot := t.head
	t.bounds[slot] = winBound{startNS: t.lastNS, endNS: nowNS}
	for _, s := range t.series {
		switch s.kind {
		case KindCounter:
			cur := s.ctr.Load()
			s.vals[slot] = float64(cur - s.prevCount)
			s.prevCount = cur
		case KindGauge:
			s.vals[slot] = s.gauge.Load()
		case KindDerived:
			s.vals[slot] = s.fn()
		case KindHistogram:
			snap := s.hist.Snapshot()
			var d obs.HistogramSnapshot
			d.Count = snap.Count - s.prevSnap.Count
			d.Sum = snap.Sum - s.prevSnap.Sum
			for i := range snap.Buckets {
				d.Buckets[i] = snap.Buckets[i] - s.prevSnap.Buckets[i]
			}
			s.prevSnap = snap
			hw := &s.hws[slot]
			hw.count = d.Count
			hw.sum = d.Sum
			hw.p50 = d.Quantile(0.50)
			hw.p90 = d.Quantile(0.90)
			hw.p99 = d.Quantile(0.99)
		}
	}
	t.head = (slot + 1) % t.cfg.Retention
	if t.filled < t.cfg.Retention {
		t.filled++
	}
	t.lastNS = nowNS
}

// active is the process-global timeline consumers check: one atomic
// load, nil when disabled (the near-free default), so call sites pay
// nothing unless a timeline was explicitly enabled.
var active atomic.Pointer[Timeline]

// Enable installs t as the process-global timeline (/debug/timeline,
// SLO attribution curves).  Enable(nil) disables.
func Enable(t *Timeline) { active.Store(t) }

// Disable clears the process-global timeline.
func Disable() { active.Store(nil) }

// Active returns the process-global timeline, or nil when disabled.
func Active() *Timeline { return active.Load() }
