package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"adaptiveqos/internal/metrics"
)

// Meta is the header line of a JSONL export: one self-describing
// record before the per-window records, so downstream plotting never
// guesses the window size or schema version.
type Meta struct {
	Schema    string `json:"schema"`
	Label     string `json:"label,omitempty"`
	WindowMS  int64  `json:"window_ms"`
	Retention int    `json:"retention"`
	Series    int    `json:"series"`
	Windows   int    `json:"windows"`
}

// SchemaV1 is the JSONL export schema identifier.
const SchemaV1 = "aqos-timeline/v1"

// lineRec is one JSONL body line: a series' window, series-major.
type lineRec struct {
	Series string `json:"series"`
	Kind   string `json:"kind"`
	Point
}

// WriteSeriesJSONL writes a meta line followed by one compact JSON
// line per (series, window), series-major in name order.  Output bytes
// are a pure function of the input, so same-seed virtual-time runs
// export byte-identical files.
func WriteSeriesJSONL(w io.Writer, meta Meta, series []SeriesData) error {
	if meta.Schema == "" {
		meta.Schema = SchemaV1
	}
	meta.Series = len(series)
	meta.Windows = 0
	for _, sd := range series {
		if len(sd.Points) > meta.Windows {
			meta.Windows = len(sd.Points)
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, sd := range series {
		for _, p := range sd.Points {
			if err := enc.Encode(lineRec{Series: sd.Name, Kind: sd.Kind, Point: p}); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportMeta builds the Meta header for this timeline.
func (t *Timeline) exportMeta(label string) Meta {
	return Meta{Schema: SchemaV1, Label: label, WindowMS: t.cfg.Window.Milliseconds(), Retention: t.cfg.Retention}
}

// WriteJSONL exports the query's selection as JSONL.
func (t *Timeline) WriteJSONL(w io.Writer, q Query) error {
	return WriteSeriesJSONL(w, t.exportMeta(""), t.Query(q))
}

// WriteCSV exports the query's selection wide: one row per window
// (x = milliseconds since the first exported window's start), one
// column per counter/gauge/derived series, and count/p50/p90/p99
// columns per histogram series.
func (t *Timeline) WriteCSV(w io.Writer, q Query) error {
	return writeSeriesCSV(w, t.Query(q))
}

func writeSeriesCSV(w io.Writer, series []SeriesData) error {
	var baseNS int64
	for _, sd := range series {
		if len(sd.Points) > 0 && (baseNS == 0 || sd.Points[0].StartNS < baseNS) {
			baseNS = sd.Points[0].StartNS
		}
	}
	tab := metrics.NewTable("window_ms")
	for _, sd := range series {
		for _, p := range sd.Points {
			x := float64(p.StartNS-baseNS) / 1e6
			if sd.Kind == KindHistogram.String() {
				tab.Add(sd.Name+".count", x, float64(p.Count))
				tab.Add(sd.Name+".p50", x, p.P50)
				tab.Add(sd.Name+".p90", x, p.P90)
				tab.Add(sd.Name+".p99", x, p.P99)
			} else {
				tab.Add(sd.Name, x, p.Value)
			}
		}
	}
	return tab.RenderCSV(w)
}

// sparkRunes is the eight-level bar used by WriteText sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vs scaled into sparkRunes ("·" for a flat/empty
// series keeps column widths stable).
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vs {
		if hi <= lo {
			sb.WriteRune('·')
			continue
		}
		i := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// WriteText renders the query's selection for humans: one sparkline
// row per series (histograms plot the windowed p99) with last/min/max,
// then a table of the most recent windows.
func (t *Timeline) WriteText(w io.Writer, q Query) error {
	series := t.Query(q)
	fmt.Fprintf(w, "timeline: window=%s retention=%d series=%d windows=%d\n\n",
		t.Window(), t.Retention(), len(series), t.WindowCount())

	nameW := len("series")
	for _, sd := range series {
		if len(sd.Name) > nameW {
			nameW = len(sd.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %-9s  %12s  %12s  %12s  curve\n", nameW, "series", "kind", "last", "min", "max")
	for _, sd := range series {
		vs := make([]float64, len(sd.Points))
		for i, p := range sd.Points {
			if sd.Kind == KindHistogram.String() {
				vs[i] = p.P99
			} else {
				vs[i] = p.Value
			}
		}
		var last, lo, hi float64
		if len(vs) > 0 {
			last = vs[len(vs)-1]
			lo, hi = math.Inf(1), math.Inf(-1)
			for _, v := range vs {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		// Sparklines cap at the trailing 60 windows so rows stay terminal-width.
		tail := vs
		if len(tail) > 60 {
			tail = tail[len(tail)-60:]
		}
		fmt.Fprintf(w, "%-*s  %-9s  %12.3f  %12.3f  %12.3f  %s\n", nameW, sd.Name, sd.Kind, last, lo, hi, sparkline(tail))
	}
	return nil
}
