package timeline

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"adaptiveqos/internal/obs"
)

func init() {
	// First-wins: if another package somehow claimed the path, the
	// /debug index still lists it and the owner serves it.
	_ = obs.RegisterDebug("/debug/timeline", serveDebug)
}

// parseQuery maps the endpoint's URL parameters onto a Query.
func parseQuery(r *http.Request) Query {
	var q Query
	v := r.URL.Query()
	if s := v.Get("series"); s != "" {
		q.Series = strings.Split(s, ",")
	}
	if s := v.Get("contains"); s != "" {
		q.Contains = strings.Split(s, ",")
	}
	if s := v.Get("windows"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			q.MaxWindows = n
		}
	}
	return q
}

// serveDebug is the /debug/timeline endpoint: the active timeline's
// curves as text (default), json, jsonl or csv.
func serveDebug(w http.ResponseWriter, r *http.Request) {
	t := Active()
	if t == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("timeline: not enabled (run with a -timeline flag or call timeline.Enable)\n"))
		return
	}
	q := parseQuery(r)
	switch r.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		series := t.Query(q)
		meta := t.exportMeta("")
		meta.Series = len(series)
		for _, sd := range series {
			if len(sd.Points) > meta.Windows {
				meta.Windows = len(sd.Points)
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(struct {
			Meta   Meta         `json:"meta"`
			Series []SeriesData `json:"series"`
		}{meta, series})
	case "jsonl":
		w.Header().Set("Content-Type", "application/jsonl")
		t.WriteJSONL(w, q)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		t.WriteCSV(w, q)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.WriteText(w, q)
	}
}
