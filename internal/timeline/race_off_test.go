//go:build !race

package timeline

// raceDetectorEnabled is false in ordinary (non -race) test builds.
const raceDetectorEnabled = false
